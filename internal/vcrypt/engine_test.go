package vcrypt

import (
	"bytes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// legacyEncryptPacket is the pre-engine per-packet path kept verbatim as
// the reference implementation: a fresh HMAC for IV derivation and a
// fresh crypto/cipher stream per packet. The keystream-engine tests pin
// the optimised path byte-identical to this, and
// BenchmarkEncryptPacketLegacy records its cost so BENCH_PR6.json can
// show the speedup against the pre-PR measurement.
func legacyEncryptPacket(c *Cipher, seq uint64, payload []byte) {
	mac := hmac.New(sha256.New, c.ivKey)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	mac.Write(b[:])
	iv := mac.Sum(nil)[:c.block.BlockSize()]
	var stream cipher.Stream
	if c.alg.counterMode() {
		stream = cipher.NewCTR(c.block, iv)
	} else {
		stream = cipher.NewOFB(c.block, iv)
	}
	stream.XORKeyStream(payload, payload)
}

var allAlgorithms = []Algorithm{AES128, AES256, TripleDES, AES128CTR, AES256CTR}

// TestEngineMatchesLegacy pins the optimised keystream engine
// byte-identical to the legacy per-packet path for every algorithm and a
// spread of payload sizes (including non-block-multiple tails and
// payloads longer than one keystream block). For the OFB algorithms this
// is the paper-fidelity guarantee: wire bytes are unchanged by this PR.
func TestEngineMatchesLegacy(t *testing.T) {
	for _, alg := range allAlgorithms {
		c, err := NewCipher(alg, testKey(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for _, n := range []int{1, 7, 8, 15, 16, 17, 64, 333, 1400} {
			for _, seq := range []uint64{0, 1, 42, 1 << 40} {
				p := make([]byte, n)
				for i := range p {
					p[i] = byte(i*13 + int(seq))
				}
				want := append([]byte(nil), p...)
				legacyEncryptPacket(c, seq, want)
				c.EncryptPacket(seq, p)
				if !bytes.Equal(p, want) {
					t.Fatalf("%v seq=%d len=%d: engine output differs from legacy", alg, seq, n)
				}
			}
		}
	}
}

// TestEncryptPacketsMatchesSingle pins the batch API to the per-packet
// API: payloads[i] under baseSeq+i.
func TestEncryptPacketsMatchesSingle(t *testing.T) {
	for _, alg := range allAlgorithms {
		c, _ := NewCipher(alg, testKey(alg))
		const base = uint64(1000)
		batch := make([][]byte, 9)
		want := make([][]byte, len(batch))
		for i := range batch {
			batch[i] = make([]byte, 50+i*37)
			for j := range batch[i] {
				batch[i][j] = byte(i + j)
			}
			want[i] = append([]byte(nil), batch[i]...)
			c.EncryptPacket(base+uint64(i), want[i])
		}
		c.EncryptPackets(base, batch)
		for i := range batch {
			if !bytes.Equal(batch[i], want[i]) {
				t.Fatalf("%v packet %d: batch output differs from single", alg, i)
			}
		}
	}
}

// TestPrefetchMatchesInline pins the prefetched-keystream path to the
// inline path, including partial consumption (payload shorter than the
// prefetched size) and misses (payload longer — must fall back).
func TestPrefetchMatchesInline(t *testing.T) {
	for _, alg := range []Algorithm{AES256, AES128CTR} {
		ref, _ := NewCipher(alg, testKey(alg))
		c, _ := NewCipher(alg, testKey(alg))
		c.Prefetch(100, 8, 256)
		for i := 0; i < 10; i++ { // packets 108,109 miss the cache
			n := 256 - i*20
			if i%3 == 2 {
				n = 300 // longer than prefetched: must fall back to inline
			}
			p := make([]byte, n)
			for j := range p {
				p[j] = byte(j ^ i)
			}
			want := append([]byte(nil), p...)
			ref.EncryptPacket(100+uint64(i), want)
			c.EncryptPacket(100+uint64(i), p)
			if !bytes.Equal(p, want) {
				t.Fatalf("%v packet %d (len %d): prefetched output differs from inline", alg, i, n)
			}
		}
	}
}

// TestPrefetchConcurrentWithEncrypt races a prefetcher against the send
// loop; run under -race this checks the cache's locking, and the output
// must be correct whether each packet hit or missed.
func TestPrefetchConcurrentWithEncrypt(t *testing.T) {
	c, _ := NewCipher(AES128, testKey(AES128))
	ref, _ := NewCipher(AES128, testKey(AES128))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Prefetch(0, 512, 64)
	}()
	for seq := uint64(0); seq < 512; seq++ {
		p := make([]byte, 64)
		for j := range p {
			p[j] = byte(seq)
		}
		want := append([]byte(nil), p...)
		ref.EncryptPacket(seq, want)
		c.EncryptPacket(seq, p)
		if !bytes.Equal(p, want) {
			t.Fatalf("seq %d: concurrent prefetch corrupted output", seq)
		}
	}
	wg.Wait()
}

// TestPrefetchCacheBounded checks the sweep keeps the cache at or below
// its cap even when prefetched seqs are never consumed.
func TestPrefetchCacheBounded(t *testing.T) {
	c, _ := NewCipher(AES128, testKey(AES128))
	c.Prefetch(0, 3*prefetchCap, 16)
	pc := c.pre.Load()
	pc.mu.Lock()
	n := len(pc.ks)
	pc.mu.Unlock()
	if n > prefetchCap {
		t.Fatalf("prefetch cache grew to %d entries, cap is %d", n, prefetchCap)
	}
}

// TestEncryptPacketZeroAllocs pins the steady-state per-packet encrypt
// path at zero heap allocations for every algorithm — the headline
// property of the keystream engine.
func TestEncryptPacketZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	for _, alg := range allAlgorithms {
		c, _ := NewCipher(alg, testKey(alg))
		payload := make([]byte, 1400)
		seq := uint64(0)
		c.EncryptPacket(seq, payload) // warm the scratch pool
		allocs := testing.AllocsPerRun(100, func() {
			seq++
			c.EncryptPacket(seq, payload)
		})
		if allocs != 0 {
			t.Errorf("%v: EncryptPacket allocates %.1f times per packet, want 0", alg, allocs)
		}
		batch := [][]byte{payload[:700], payload[700:]}
		allocs = testing.AllocsPerRun(100, func() {
			seq += 2
			c.EncryptPackets(seq, batch)
		})
		if allocs != 0 {
			t.Errorf("%v: EncryptPackets allocates %.1f times per batch, want 0", alg, allocs)
		}
	}
}

// TestCTRAlgorithms covers the counter-mode variants' metadata and
// round-trip (the OFB tests cover the rest of the surface).
func TestCTRAlgorithms(t *testing.T) {
	if AES128CTR.String() != "AES128-CTR" || AES256CTR.String() != "AES256-CTR" {
		t.Fatal("CTR algorithm names wrong")
	}
	if AES128CTR.KeySize() != 16 || AES256CTR.KeySize() != 32 {
		t.Fatal("CTR key sizes wrong")
	}
	for _, alg := range []Algorithm{AES128CTR, AES256CTR} {
		c, err := NewCipher(alg, testKey(alg))
		if err != nil {
			t.Fatal(err)
		}
		p := []byte("counter mode round trip payload")
		orig := append([]byte(nil), p...)
		c.EncryptPacket(3, p)
		if bytes.Equal(p, orig) {
			t.Fatalf("%v: encryption left payload unchanged", alg)
		}
		c.DecryptPacket(3, p)
		if !bytes.Equal(p, orig) {
			t.Fatalf("%v: round trip failed", alg)
		}
	}
}

// TestOFBOutputPinned pins the OFB wire bytes against a fixed vector so
// a change to IV derivation or keystream generation cannot slip through
// the legacy-equivalence test by changing both sides at once.
func TestOFBOutputPinned(t *testing.T) {
	c, _ := NewCipher(AES128, testKey(AES128))
	p := make([]byte, 24) // zeros: ciphertext == keystream
	c.EncryptPacket(7, p)
	got := fmt.Sprintf("%x", p)
	const want = "240fd4ef31057fb3bf2d1e066da8d6490f2f1c31f0041706"
	if got != want {
		t.Fatalf("OFB keystream changed:\n got %s\nwant %s", got, want)
	}
}

func benchPayload() []byte {
	p := make([]byte, 1400)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

func BenchmarkEncryptPacket(b *testing.B) {
	for _, alg := range allAlgorithms {
		b.Run(alg.String(), func(b *testing.B) {
			c, _ := NewCipher(alg, testKey(alg))
			p := benchPayload()
			b.SetBytes(int64(len(p)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncryptPacket(uint64(i), p)
			}
		})
	}
}

func BenchmarkEncryptPackets(b *testing.B) {
	for _, alg := range allAlgorithms {
		b.Run(alg.String(), func(b *testing.B) {
			c, _ := NewCipher(alg, testKey(alg))
			const batchSize = 16
			batch := make([][]byte, batchSize)
			for i := range batch {
				batch[i] = benchPayload()
			}
			b.SetBytes(int64(batchSize * len(batch[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncryptPackets(uint64(i*batchSize), batch)
			}
		})
	}
}

// BenchmarkEncryptPacketPrefetched measures the critical-path cost of
// encrypting a packet whose keystream was precomputed off the critical
// path (Cipher.Prefetch runs while the paced sender sleeps / the encoder
// runs): a cache hit is a single XOR pass over the payload. Keystream
// generation happens inside StopTimer windows, mirroring how the
// transport overlaps it with encode; the timed region is exactly what
// the send loop pays per packet.
func BenchmarkEncryptPacketPrefetched(b *testing.B) {
	for _, alg := range allAlgorithms {
		b.Run(alg.String(), func(b *testing.B) {
			c, _ := NewCipher(alg, testKey(alg))
			p := benchPayload()
			b.SetBytes(int64(len(p)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += prefetchCap {
				b.StopTimer()
				n := prefetchCap
				if i+n > b.N {
					n = b.N - i
				}
				c.Prefetch(uint64(i), n, len(p))
				b.StartTimer()
				for j := 0; j < n; j++ {
					c.EncryptPacket(uint64(i+j), p)
				}
			}
		})
	}
}

// BenchmarkEncryptPacketLegacy measures the pre-PR per-packet path (fresh
// HMAC + fresh stream object per packet); the perf gate derives the
// engine's speedup-vs-legacy from this on the same machine and run.
func BenchmarkEncryptPacketLegacy(b *testing.B) {
	for _, alg := range allAlgorithms {
		b.Run(alg.String(), func(b *testing.B) {
			c, _ := NewCipher(alg, testKey(alg))
			p := benchPayload()
			b.SetBytes(int64(len(p)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				legacyEncryptPacket(c, uint64(i), p)
			}
		})
	}
}
