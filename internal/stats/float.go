package stats

import "math"

// Tolerance helpers for floating-point comparison. The numerical
// packages (stats, analytic) are forbidden by thriftylint's floateq
// pass from comparing floats with == or != directly: convergence and
// degeneracy checks written with exact equality either never fire
// after arithmetic or fire one iteration late, and the resulting model
// drift is invisible until reproduced curves diverge. These helpers
// are the sanctioned comparison primitives; code that genuinely needs
// exact equality (sparsity fast paths, guards on exact draws) carries
// a //lint:allow floateq marker instead.

// DefaultEpsilon is the absolute tolerance used by NearZero. The
// models here work in O(1) probabilities, rates and seconds, so a
// fixed absolute epsilon is appropriate.
const DefaultEpsilon = 1e-12

// ApproxEqual reports whether a and b differ by at most tol. NaN
// compares unequal to everything, as with ==.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// NearZero reports whether x is within DefaultEpsilon of zero.
func NearZero(x float64) bool {
	return math.Abs(x) <= DefaultEpsilon
}
