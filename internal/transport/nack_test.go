package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

func TestNACKRoundTrip(t *testing.T) {
	seqs := []uint64{3, 17, 1<<40 + 5}
	got, ok := parseNACK(marshalNACK(seqs))
	if !ok {
		t.Fatal("marshal/parse failed")
	}
	if len(got) != len(seqs) {
		t.Fatalf("got %d seqs", len(got))
	}
	for i := range seqs {
		if got[i] != seqs[i] {
			t.Fatalf("seq %d: %d != %d", i, got[i], seqs[i])
		}
	}
	if _, ok := parseNACK([]byte("RTPX")); ok {
		t.Fatal("bad magic accepted")
	}
	if _, ok := parseNACK(marshalNACK(seqs)[:10]); ok {
		t.Fatal("truncated NACK accepted")
	}
}

// iFrameSeqRange returns the global packet-sequence range [from, from+n)
// of the idx-th I-frame of the clip.
func iFrameSeqRange(t *testing.T, s Session, idx int) (from uint64, n int) {
	t.Helper()
	seq := uint64(0)
	seen := 0
	for _, ef := range s.Encoded {
		pkts, err := codec.Packetize(ef, s.MTU)
		if err != nil {
			t.Fatal(err)
		}
		if ef.Type == codec.IFrame {
			if seen == idx {
				return seq, len(pkts)
			}
			seen++
		}
		seq += uint64(len(pkts))
	}
	t.Fatalf("clip has no I-frame #%d", idx)
	return 0, 0
}

// TestNACKRecoversIFrameBurst burst-drops exactly the packets of the
// second I-frame — the worst case for an IPP stream — and checks the
// NACK/retransmit loop recovers every one of them: the reassembled clip
// must decode bit-identically to the sender's encoding.
func TestNACKRecoversIFrameBurst(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)

	from, n := iFrameSeqRange(t, s, 1) // second I-frame (frame 12 of the GOP-12 clip)
	if n == 0 {
		t.Fatal("empty I-frame")
	}
	burst := netem.NewSeqBurst(from, n)

	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rx.SetDropper(burst)
	rx.EnableNACK(15 * time.Millisecond)

	rep, err := LiveUDPSendReliable(s, rx.Addr(), "", false, ReliableUDPOptions{Drain: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retransmits < n {
		t.Fatalf("retransmitted %d packets, burst dropped %d", rep.Retransmits, n)
	}
	if burst.Dropped() != n {
		t.Fatalf("burst hit %d of %d targets", burst.Dropped(), n)
	}
	if err := rx.WaitForPackets(rep.Packets, 5*time.Second); err != nil {
		t.Fatalf("receiver incomplete after retransmits: %v", err)
	}
	captured, usable := rx.Stats()
	if captured != rep.Packets || usable != rep.Packets {
		t.Fatalf("captured/usable %d/%d of %d", captured, usable, rep.Packets)
	}
	// Bit-identical recovery: every macroblock of every frame matches the
	// sender's encoding.
	got := rx.Frames(len(s.Encoded))
	for i, ef := range s.Encoded {
		if got[i] == nil {
			t.Fatalf("frame %d missing", i)
		}
		if len(got[i].MBData) != len(ef.MBData) {
			t.Fatalf("frame %d has %d MBs, want %d", i, len(got[i].MBData), len(ef.MBData))
		}
		for mb := range ef.MBData {
			if !bytes.Equal(got[i].MBData[mb], ef.MBData[mb]) {
				t.Fatalf("frame %d MB %d differs after recovery", i, mb)
			}
		}
	}
}

// TestNACKWithJitterAndDuplication runs the reliable path through a
// conditioner that drops (bursty), delays, and duplicates packets on the
// sender side; dedup plus retransmit must still deliver every I-frame
// packet exactly once.
func TestNACKWithJitterAndDuplication(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)

	// Cross-check the obs counters against the test's own bookkeeping.
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	dups0 := mRxDuplicates.Value()
	usable0 := mRxUsable.Value()
	retx0 := mNACKRetransmits.Value()
	recov0 := mNACKRecoverySeconds.Count()

	// Burst over the mid-clip I-frame: the P-frames behind it keep
	// arriving, which is what exposes the gap to the NACK loop (a burst
	// over the very last packets is invisible tail loss).
	from, n := iFrameSeqRange(t, s, 1)
	cond, err := netem.NewConditioner(netem.ConditionerConfig{
		DelayJitter: 500 * time.Microsecond,
		DupProb:     0.2,
		Loss:        netem.NewSeqBurst(from, n),
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}

	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rx.EnableNACK(15 * time.Millisecond)

	rep, err := LiveUDPSendReliable(s, rx.Addr(), "", false, ReliableUDPOptions{
		Drain:       2 * time.Second,
		Conditioner: cond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != n {
		t.Fatalf("conditioner dropped %d, want the %d-packet burst", rep.Dropped, n)
	}
	if rep.Duplicated == 0 {
		t.Fatal("conditioner never duplicated")
	}
	if rep.Retransmits < n {
		t.Fatalf("retransmits %d < burst %d", rep.Retransmits, n)
	}
	if err := rx.WaitForPackets(rep.Packets, 5*time.Second); err != nil {
		t.Fatalf("receiver incomplete: %v", err)
	}
	// Dedup: duplicates must not inflate the capture count.
	captured, usable := rx.Stats()
	if captured != rep.Packets || usable != rep.Packets {
		t.Fatalf("captured/usable %d/%d of %d", captured, usable, rep.Packets)
	}
	got := rx.Frames(len(s.Encoded))
	for i, ef := range s.Encoded {
		if got[i] == nil {
			t.Fatalf("frame %d missing", i)
		}
		for mb := range ef.MBData {
			if !bytes.Equal(got[i].MBData[mb], ef.MBData[mb]) {
				t.Fatalf("frame %d MB %d differs", i, mb)
			}
		}
	}
	// Every discarded duplicate the receiver counted must also be in the
	// obs counter, and vice versa; same for usable packets and sender-side
	// retransmits.
	if d := mRxDuplicates.Value() - dups0; d != int64(rx.Duplicates()) {
		t.Fatalf("obs counted %d duplicates, receiver %d", d, rx.Duplicates())
	}
	if u := mRxUsable.Value() - usable0; u != int64(usable) {
		t.Fatalf("obs counted %d usable, receiver %d", u, usable)
	}
	if r := mNACKRetransmits.Value() - retx0; r != int64(rep.Retransmits) {
		t.Fatalf("obs counted %d retransmits, sender %d", r, rep.Retransmits)
	}
	if mNACKRecoverySeconds.Count() == recov0 {
		t.Fatal("no NACK->arrival recovery latency observed despite retransmits")
	}
}

// TestDuplicatesDiscardedWithoutNACK is the regression test for the
// duplicate-inflation bug: dedup used to exist only when NACK was
// enabled, so on a plain (NACK-less) receiver a duplicating link
// inflated captured/usable and re-fed packets to the reassembler. Now
// arrivals are always deduplicated; duplicates land in a separate
// counter and never in Stats.
func TestDuplicatesDiscardedWithoutNACK(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)

	cond, err := netem.NewConditioner(netem.ConditionerConfig{DupProb: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	// Deliberately no EnableNACK: dedup must not depend on it.
	rep, err := LiveUDPSendReliable(s, rx.Addr(), "", false, ReliableUDPOptions{
		Drain:       200 * time.Millisecond,
		Conditioner: cond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicated == 0 {
		t.Fatal("conditioner never duplicated")
	}
	if err := rx.WaitForPackets(rep.Packets, 5*time.Second); err != nil {
		t.Fatalf("receiver incomplete: %v", err)
	}
	// Give stray duplicates time to land, then check they were discarded.
	time.Sleep(100 * time.Millisecond)
	captured, usable := rx.Stats()
	if captured != rep.Packets || usable != rep.Packets {
		t.Fatalf("duplicates inflated stats: captured/usable %d/%d, sent %d", captured, usable, rep.Packets)
	}
	if rx.Duplicates() != rep.Duplicated {
		t.Fatalf("receiver discarded %d duplicates, conditioner injected %d", rx.Duplicates(), rep.Duplicated)
	}
}

// TestWaitForPacketsWakesImmediately checks the Cond-based wait returns
// as soon as the packets are in rather than on a poll tick, and that the
// timeout path still fires.
func TestWaitForPacketsWakesImmediately(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	s.Encoded = s.Encoded[:2]
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rep, err := LiveUDPSend(s, rx.Addr(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.WaitForPackets(rep.Packets, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Timeout path: asking for more packets than will ever arrive must
	// come back in about the timeout, not hang.
	start := time.Now()
	if err := rx.WaitForPackets(rep.Packets+1, 50*time.Millisecond); err == nil {
		t.Fatal("wait for impossible count succeeded")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("timeout wait took %v", el)
	}
}
