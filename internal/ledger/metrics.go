package ledger

import "repro/internal/obs"

// Ledger health counters, registered in the default obs registry like
// every other subsystem. A non-zero drop counter is the signal that a
// run's ledger has coverage gaps (the hot paths never block on audit).
var (
	mAppended = obs.NewCounter("ledger_entries_appended_total",
		"Audit entries accepted into the ledger buffer.")
	mDropped = obs.NewCounter("ledger_entries_dropped_total",
		"Audit entries dropped because the buffer was full or the appender closed.")
	mBatches = obs.NewCounter("ledger_batches_sealed_total",
		"Merkle batches sealed and written.")
	mBytes = obs.NewFloatCounter("ledger_bytes_written_total",
		"Bytes of sealed ledger output written.")
)
