// Package ledger is a miniature stand-in for repro/internal/ledger
// with the event-kind constants and the Emit entry point the auditemit
// fixtures reference.
package ledger

type EventType int

const (
	EventPolicy EventType = iota
	EventPlainPacket
	EventHeaderOnly
	EventDowngrade
	EventReencode
	EventEpoch
	EventSessionStart
	EventSessionEnd
	EventEvict
	EventReject
)

func Emit(t EventType, actor string, aField, bField uint64, note string) {}
