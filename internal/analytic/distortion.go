package analytic

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// This file implements the distortion side of the framework (Section 4.3):
// the packet decryption rate -> frame success rate map of Eq. (20), the
// intra-GOP distortion of Eqs. (21)-(22), the empirically fitted inter-GOP
// distortion polynomial of Fig. 2, and the GOP-chain expected distortion
// of Eqs. (23)-(27), evaluated with a reference-distance Markov recursion
// instead of the intractable product-space enumeration. PSNR is Eq. (28).

// Binomial returns C(n, k) as a float (exact for the small n used here).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// FrameSuccess implements Eq. (20): the probability a frame of n packets
// is decodable when each packet is independently usable with probability
// pd (received AND decryptable), given decoder sensitivity s: the first
// packet must be usable, plus at least s of the remaining n-1.
func FrameSuccess(pd float64, n, s int) float64 {
	if n <= 0 {
		return 0
	}
	if pd <= 0 {
		return 0
	}
	if pd > 1 {
		pd = 1
	}
	if s < 0 {
		s = 0
	}
	if s > n-1 {
		s = n - 1
	}
	var sum float64
	for j := s; j <= n-1; j++ {
		sum += Binomial(n-1, j) * math.Pow(pd, float64(j)) * math.Pow(1-pd, float64(n-1-j))
	}
	return pd * sum
}

// UsableProbability returns the per-packet decryption rate p_d of Section
// 4.3 for a party: ps is the packet success rate on the channel and enc
// the probability a packet of this class is encrypted. A legitimate
// receiver passes enc=0 (it decrypts everything); the eavesdropper's
// encrypted packets are erasures, so p_d = (1-enc)*ps.
func UsableProbability(ps, enc float64) float64 {
	return (1 - enc) * ps
}

// IntraGOPDistortion implements Eq. (21): the GOP-average distortion when
// the first unrecoverable frame is the i-th P-frame (1 <= i <= G-1) and
// every later frame is replaced by frame i-1. dmin is the distortion when
// only the last frame is lost, dmax when the loss starts right after the
// I-frame. (The published equation's typography is ambiguous; this form
// matches its endpoints: i=G-1 gives dmin/G, i=1 gives ~dmax.)
func IntraGOPDistortion(i, g int, dmin, dmax float64) float64 {
	if i < 1 || i > g-1 {
		panic(fmt.Sprintf("analytic: intra-GOP index %d out of [1,%d]", i, g-1))
	}
	fg := float64(g)
	fi := float64(i)
	return (fg - fi) * (fi*dmin + (fg-fi-1)*dmax) / ((fg - 1) * fg)
}

// DistortionModel evaluates the expected distortion of a whole video
// transfer for one party (receiver or eavesdropper).
type DistortionModel struct {
	// G is the GOP size (I plus G-1 P-frames).
	G int
	// PISuccess and PPSuccess are the frame success probabilities of the
	// I- and P-frame classes from Eq. (20).
	PISuccess, PPSuccess float64
	// DMin and DMax parameterise the intra-GOP distortion ramp (Eq. 21);
	// measured from the codec substrate per clip.
	DMin, DMax float64
	// InterGOP maps a reference distance in GOPs (>= 1) to the expected
	// distortion of a GOP concealed entirely from that far back — the
	// degree-5 polynomial regression of Fig. 2.
	InterGOP stats.Polynomial
	// MaxDistance clamps the polynomial's argument to its fitted range.
	MaxDistance int
	// BaseDistortion is the distortion floor of a fully received GOP
	// (coding noise), so clean transfers land at the codec's clean PSNR
	// instead of infinity.
	BaseDistortion float64
	// NoReferenceMSE is the distortion of a GOP concealed with no
	// reference at all (grey frames) — Case 3 of Section 4.3.2, the
	// ceiling reached when no I-frame has ever been decodable (e.g. the
	// eavesdropper against full encryption). Zero falls back to the
	// clamped polynomial.
	NoReferenceMSE float64
}

// Validate checks the model.
func (m DistortionModel) Validate() error {
	switch {
	case m.G < 2:
		return fmt.Errorf("analytic: GOP size %d", m.G)
	case m.PISuccess < 0 || m.PISuccess > 1 || m.PPSuccess < 0 || m.PPSuccess > 1:
		return fmt.Errorf("analytic: frame success probabilities out of range")
	case m.DMin < 0 || m.DMax < m.DMin:
		return fmt.Errorf("analytic: need 0 <= DMin <= DMax")
	case len(m.InterGOP.Coeffs) == 0:
		return fmt.Errorf("analytic: missing inter-GOP polynomial")
	case m.MaxDistance < 1:
		return fmt.Errorf("analytic: MaxDistance %d", m.MaxDistance)
	case m.BaseDistortion < 0:
		return fmt.Errorf("analytic: negative base distortion")
	}
	return nil
}

// interGOPAt evaluates the fitted polynomial with clamping (Case 2/3 of
// Section 4.3.2; Case 3's "initial GOP" ceiling is the clamped maximum).
func (m DistortionModel) interGOPAt(d int) float64 {
	if d < 1 {
		d = 1
	}
	if d > m.MaxDistance {
		d = m.MaxDistance
	}
	v := m.InterGOP.Eval(float64(d))
	if v < m.BaseDistortion {
		v = m.BaseDistortion
	}
	return v
}

// ExpectedDistortion computes the mean per-GOP distortion over a flow of
// numGOPs GOPs (Eq. 27). Instead of enumerating the |S|^N product space of
// Eq. (25), it tracks the distribution of the reference distance — how
// many consecutive preceding GOPs lost their I-frame — which is the only
// inter-GOP state the distortion of Eq. (26) depends on.
func (m DistortionModel) ExpectedDistortion(numGOPs int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if numGOPs < 1 {
		return 0, fmt.Errorf("analytic: numGOPs %d", numGOPs)
	}
	// Expected distortion of a GOP whose I-frame decoded, over the intra
	// cases of Eq. (22).
	pI, pP := m.PISuccess, m.PPSuccess
	intra := 0.0
	probNoLoss := math.Pow(pP, float64(m.G-1))
	intra += probNoLoss * m.BaseDistortion
	for i := 1; i <= m.G-1; i++ {
		probI := math.Pow(pP, float64(i-1)) * (1 - pP)
		d := IntraGOPDistortion(i, m.G, m.DMin, m.DMax)
		if d < m.BaseDistortion {
			d = m.BaseDistortion
		}
		intra += probI * d
	}

	// Forward pass over the reference-distance chain. dist[k] is the
	// probability that k consecutive GOPs immediately before the current
	// one lost their I-frames (k = 0 means the previous GOP decoded);
	// dist[noRef] is the probability nothing has ever decoded (Case 3).
	maxK := m.MaxDistance + 1
	noRef := maxK + 1
	noRefD := m.NoReferenceMSE
	if noRefD <= 0 {
		noRefD = m.interGOPAt(maxK)
	}
	dist := make([]float64, noRef+1)
	dist[noRef] = 1
	var total float64
	for g := 0; g < numGOPs; g++ {
		var gopD float64
		next := make([]float64, noRef+1)
		for k, pk := range dist {
			if pk == 0 { //lint:allow floateq exact zero-mass skip; an epsilon would drop real probability mass
				continue
			}
			// I-frame decodes: intra distortion, distance resets.
			gopD += pk * pI * intra
			next[0] += pk * pI
			// I-frame lost: whole GOP concealed from distance k+1, or
			// from nothing if there has never been a reference.
			if k == noRef {
				gopD += pk * (1 - pI) * noRefD
				next[noRef] += pk * (1 - pI)
				continue
			}
			gopD += pk * (1 - pI) * m.interGOPAt(k+1)
			nk := k + 1
			if nk > maxK {
				nk = maxK
			}
			next[nk] += pk * (1 - pI)
		}
		dist = next
		total += gopD
	}
	return total / float64(numGOPs), nil
}

// ExpectedPSNR maps the expected distortion to dB via Eq. (28).
func (m DistortionModel) ExpectedPSNR(numGOPs int) (float64, error) {
	d, err := m.ExpectedDistortion(numGOPs)
	if err != nil {
		return 0, err
	}
	return PSNRFromDistortion(d), nil
}

// PSNRFromDistortion is Eq. (28) with the same 100 dB cap the measurement
// toolkit applies.
func PSNRFromDistortion(d float64) float64 {
	if d <= 0 {
		return 100
	}
	p := 20 * math.Log10(255/math.Sqrt(d))
	if p > 100 {
		p = 100
	}
	return p
}

// EavesdropperInputs bundles what the distortion model needs about one
// party and policy into frame success probabilities.
type EavesdropperInputs struct {
	// PS is the channel packet success rate for this party.
	PS float64
	// EncI, EncP are the policy's class encryption probabilities (0 for
	// the legitimate receiver, who decrypts).
	EncI, EncP float64
	// NI, NP are the packets per I-/P-frame.
	NI, NP int
	// SI, SP are the decoder sensitivities per class (Section 4.3): the
	// minimum usable packets among the remaining n-1. Fast-motion content
	// has larger s.
	SI, SP int
}

// FrameSuccessRates computes (PISuccess, PPSuccess) from the inputs.
func (e EavesdropperInputs) FrameSuccessRates() (float64, float64) {
	pdI := UsableProbability(e.PS, e.EncI)
	pdP := UsableProbability(e.PS, e.EncP)
	return FrameSuccess(pdI, e.NI, e.SI), FrameSuccess(pdP, e.NP, e.SP)
}
