package codec

import "math"

// blockSize is the transform block size (8x8, as in MPEG-2/4 and the
// classic JPEG pipeline).
const blockSize = 8

// dctCos holds the DCT-II basis cos((2x+1) u pi / 16) scaled by the
// orthonormal factors, precomputed at init.
var dctCos [blockSize][blockSize]float64

func init() {
	for u := 0; u < blockSize; u++ {
		c := math.Sqrt(2.0 / blockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / blockSize)
		}
		for x := 0; x < blockSize; x++ {
			dctCos[u][x] = c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*blockSize))
		}
	}
}

// fdct8 computes the 2-D orthonormal DCT-II of an 8x8 block (row-major
// in/out, separable implementation).
func fdct8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < blockSize; y++ {
		for u := 0; u < blockSize; u++ {
			var s float64
			for x := 0; x < blockSize; x++ {
				s += in[y*blockSize+x] * dctCos[u][x]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Columns.
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				s += tmp[y*blockSize+u] * dctCos[v][y]
			}
			out[v*blockSize+u] = s
		}
	}
}

// idct8 computes the inverse 2-D DCT.
func idct8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Columns first.
	for u := 0; u < blockSize; u++ {
		for y := 0; y < blockSize; y++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				s += in[v*blockSize+u] * dctCos[v][y]
			}
			tmp[y*blockSize+u] = s
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for u := 0; u < blockSize; u++ {
				s += tmp[y*blockSize+u] * dctCos[u][x]
			}
			out[y*blockSize+x] = s
		}
	}
}

// zigzag maps coefficient index 0..63 to the raster position within the
// block, ordering coefficients from low to high frequency.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// quantStep returns the quantisation step for zig-zag position zz under
// base step q: a mild frequency ramp that spends bits on low frequencies,
// like the default MPEG intra matrix.
func quantStep(q float64, zz int) float64 {
	return q * (1 + float64(zz)/16)
}
