// Quickstart: the whole pipeline in one sitting. Generate a synthetic
// clip, encode it into the IPP...P GOP structure, pick the cheapest
// encryption policy that keeps an eavesdropper blind (the paper's Fig. 1
// workflow), then stream it across the simulated open-WiFi medium and
// compare what the legitimate receiver and the eavesdropper actually see.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

func main() {
	// 1. Capture: a 4-second fast-motion CIF-like clip.
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 120, Motion: video.MotionHigh, Seed: 7})
	fmt.Printf("clip: %d frames, motion class %s\n", len(clip), video.AnalyzeMotion(clip))

	// 2. Encode: GOP 30, like the paper's Table 1.
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Calibrate the analytical model and plan a policy: the cheapest
	// one that keeps the eavesdropper's PSNR at or below 17 dB (the
	// achievable floor is the clip's grey-concealment PSNR, ~16 dB here).
	dist, err := core.MeasureDistortion(clip, cfg, 1400)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(encoded, cfg, 30, 1400, energy.SamsungGalaxySII(), core.DefaultNetwork(), dist)
	if err != nil {
		log.Fatal(err)
	}
	candidates := []vcrypt.Policy{
		{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256},
		{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256},
		{Mode: vcrypt.ModeIPlusFracP, FracP: 0.2, Alg: vcrypt.AES256},
		{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256},
	}
	best, all, err := core.Plan(cal, candidates, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npolicy predictions (analysis):")
	for _, pr := range all {
		fmt.Printf("  %-14s delay %6.2f ms, eavesdropper %5.1f dB, power %.2f W\n",
			pr.Policy.Name(), pr.MeanSojourn*1e3, pr.EavesdropperPSNR, pr.AveragePowerW)
	}
	fmt.Printf("chosen: %s\n\n", best.Policy.Name())

	// 4. Stream over the simulated open WiFi network.
	params := wifi.NewDefaultDCF(3)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		log.Fatal(err)
	}
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, wifi.Rate54, dcf, wifi.BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(1))
	med.ReceiverError = 0.01
	med.EavesdropperError = 0.03
	session := transport.Session{
		Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
		Policy: best.Policy,
		Key:    make([]byte, best.Policy.Alg.KeySize()),
		Device: energy.SamsungGalaxySII(),
		Medium: med,
	}
	res, err := transport.RunUDP(session, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare reconstructions.
	rx, err := codec.DecodeSequence(res.ReceiverFrames, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := codec.DecodeSequence(res.EavesFrames, cfg)
	if err != nil {
		log.Fatal(err)
	}
	qr, err := evalvid.Evaluate(clip, rx)
	if err != nil {
		log.Fatal(err)
	}
	qe, err := evalvid.Evaluate(clip, ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured on the simulated testbed:")
	fmt.Printf("  per-packet delay:   %.2f ms mean sojourn (%d packets, %.0f%% encrypted)\n",
		res.MeanSojourn*1e3, len(res.Records), res.EncryptedFraction*100)
	fmt.Printf("  receiver:           %.1f dB PSNR (MOS %.1f)\n", qr.PSNR, qr.MOS)
	fmt.Printf("  eavesdropper:       %.1f dB PSNR (MOS %.1f) — the stolen copy is unwatchable\n", qe.PSNR, qe.MOS)
	fmt.Printf("  average power:      %.2f W\n", res.AveragePowerW)
}
