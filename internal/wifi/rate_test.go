package wifi

import (
	"math"
	"testing"
)

func TestBitErrorRateMonotoneInSNR(t *testing.T) {
	for _, r := range AllRates {
		prev := 1.0
		for snr := -5.0; snr <= 40; snr += 5 {
			ber, err := BitErrorRate(r, snr)
			if err != nil {
				t.Fatal(err)
			}
			if ber < 0 || ber > 0.5+1e-9 {
				t.Fatalf("rate %d snr %v: BER %v out of range", r, snr, ber)
			}
			if ber > prev+1e-15 {
				t.Fatalf("rate %d: BER must fall with SNR", r)
			}
			prev = ber
		}
	}
}

func TestBitErrorRateOrderingAcrossRates(t *testing.T) {
	// At a fixed mid SNR, the more aggressive the modulation, the higher
	// the BER.
	snr := 12.0
	b6, _ := BitErrorRate(Rate6, snr)
	b24, _ := BitErrorRate(Rate24, snr)
	b54, _ := BitErrorRate(Rate54, snr)
	if !(b6 < b24 && b24 < b54) {
		t.Fatalf("BER ordering violated: %v %v %v", b6, b24, b54)
	}
}

func TestBitErrorRateUnknownRate(t *testing.T) {
	if _, err := BitErrorRate(Rate(7), 10); err == nil {
		t.Fatal("unknown rate should fail")
	}
}

func TestPacketErrorRate(t *testing.T) {
	// High SNR: essentially error free even for big packets at 54M.
	per, err := PacketErrorRate(Rate54, 35, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if per > 1e-6 {
		t.Fatalf("PER at 35 dB = %v", per)
	}
	// Low SNR: 54M is hopeless.
	per, _ = PacketErrorRate(Rate54, 5, 1400)
	if per < 0.99 {
		t.Fatalf("PER at 5 dB = %v should be ~1", per)
	}
	// Bigger packets fail more often at equal SNR.
	small, _ := PacketErrorRate(Rate24, 14, 200)
	big, _ := PacketErrorRate(Rate24, 14, 1400)
	if big <= small {
		t.Fatalf("PER must grow with size: %v vs %v", small, big)
	}
	if _, err := PacketErrorRate(Rate24, 10, -1); err == nil {
		t.Fatal("negative size should fail")
	}
}

func TestSelectRateAdapts(t *testing.T) {
	phy := PHY80211g()
	// Excellent channel: the fastest rate wins.
	r, err := SelectRate(phy, 35, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if r != Rate54 {
		t.Fatalf("at 35 dB want 54M, got %d", r)
	}
	// Poor channel: a robust rate wins.
	r, err = SelectRate(phy, 6, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if r > Rate12 {
		t.Fatalf("at 6 dB want a robust rate, got %d", r)
	}
	// Monotone: the selected rate never speeds up as SNR falls.
	prev := Rate54
	for snr := 35.0; snr >= 0; snr -= 2.5 {
		r, err := SelectRate(phy, snr, 1400)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev {
			t.Fatalf("rate went up (%d -> %d) as SNR fell to %v", prev, r, snr)
		}
		prev = r
	}
	if _, err := SelectRate(phy, 10, 0); err == nil {
		t.Fatal("zero size should fail")
	}
}

func TestSelectRateHopelessChannel(t *testing.T) {
	phy := PHY80211g()
	r, err := SelectRate(phy, -30, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if r != Rate6 {
		t.Fatalf("hopeless channel should fall back to 6M, got %d", r)
	}
}

func TestQFunc(t *testing.T) {
	if math.Abs(qfunc(0)-0.5) > 1e-12 {
		t.Fatal("Q(0) != 0.5")
	}
	if qfunc(5) > 1e-6 || qfunc(5) <= 0 {
		t.Fatalf("Q(5) = %v", qfunc(5))
	}
}

func TestNewMediumFromSNR(t *testing.T) {
	phy := PHY80211g()
	med, err := NewMediumFromSNR(phy, 3, 30, 12, 1400, statsRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if med.Rate() != Rate54 {
		t.Fatalf("good channel should pick 54M, got %d", med.Rate())
	}
	// A distant eavesdropper loses far more packets than the receiver.
	if med.EavesdropperError <= med.ReceiverError {
		t.Fatalf("eavesdropper error %v should exceed receiver %v",
			med.EavesdropperError, med.ReceiverError)
	}
	if med.SuccessRate <= 0 || med.SuccessRate >= 1 {
		t.Fatalf("success rate %v", med.SuccessRate)
	}
	if _, err := NewMediumFromSNR(phy, 0, 30, 12, 1400, statsRNG(1)); err == nil {
		t.Fatal("zero stations should fail")
	}
	if _, err := NewMediumFromSNR(phy, 3, 30, 12, 0, statsRNG(1)); err == nil {
		t.Fatal("zero packet size should fail")
	}
}
