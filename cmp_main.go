package main

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/codec"
	"repro/internal/video"
)

func main() {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 12, Motion: video.MotionHigh, Seed: 7})
	cfg := codec.DefaultConfig(5)
	cfg.Width, cfg.Height = 96, 96
	enc, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		panic(err)
	}
	h := sha256.New()
	total := 0
	for _, f := range enc {
		for _, mb := range f.MBData {
			h.Write(mb)
			total += len(mb)
		}
	}
	fmt.Printf("bytes=%d sha=%x\n", total, h.Sum(nil))
}
