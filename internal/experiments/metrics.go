package experiments

import (
	"repro/internal/obs"
)

// Observability wiring (PR3): cache effectiveness of the fixture and
// per-cell wall time of the experiment runner. Gated inside obs on one
// atomic load when disabled.
var (
	mWorkloadCacheHits = obs.NewCounter(`experiments_workload_cache_total{result="hit"}`,
		"Workload cache lookups, by outcome.")
	mWorkloadCacheMisses = obs.NewCounter(`experiments_workload_cache_total{result="miss"}`,
		"Workload cache lookups, by outcome.")
	mCalCacheHits = obs.NewCounter(`experiments_calibration_cache_total{result="hit"}`,
		"Calibration cache lookups, by outcome.")
	mCalCacheMisses = obs.NewCounter(`experiments_calibration_cache_total{result="miss"}`,
		"Calibration cache lookups, by outcome.")
	mCellSeconds = obs.NewHistogram("experiments_cell_seconds",
		"Wall time of one experiment cell (all repetitions).", nil)
)
