package rtp

import (
	"bytes"
	"testing"
)

// FuzzParse feeds arbitrary datagrams to the RTP header parser.
// Anything accepted must survive a Marshal/Parse round trip unchanged —
// the property the sender/receiver pair depends on.
func FuzzParse(f *testing.F) {
	seed := Packet{
		PayloadType: PayloadTypeVideo,
		Marker:      true,
		Sequence:    512,
		Timestamp:   90000,
		SSRC:        0xDECAFBAD,
		Payload:     []byte("slice bytes"),
	}
	f.Add(seed.Marshal())
	f.Add(seed.Marshal()[:HeaderSize])   // header only
	f.Add(seed.Marshal()[:HeaderSize-1]) // one byte short
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		q, err := Parse(p.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if q.PayloadType != p.PayloadType || q.Marker != p.Marker ||
			q.Sequence != p.Sequence || q.Timestamp != p.Timestamp ||
			q.SSRC != p.SSRC || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("round trip changed the packet: %+v != %+v", q, p)
		}
	})
}
