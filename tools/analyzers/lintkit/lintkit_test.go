package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestAppliesTo(t *testing.T) {
	unscoped := &Analyzer{Name: "any"}
	scoped := &Analyzer{Name: "scoped", Packages: []string{"internal/vcrypt"}}
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{unscoped, "whatever/pkg", true},
		{scoped, "internal/vcrypt", true},       // exact match
		{scoped, "repro/internal/vcrypt", true}, // suffix at a path boundary
		{scoped, "repro/internal/vcrypt/sub", false},
		{scoped, "repro/notinternal/vcrypt", false}, // no mid-segment matches
		{scoped, "internal/vcryptx", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) on %s = %v, want %v", c.path, c.a.Name, got, c.want)
		}
	}
}

const allowSrc = `package demo

func f() {
	_ = 1 //lint:allow alpha first marker

	_ = 2 //lint:allow alpha,beta comma-separated names share one marker

	_ = 3 //nolint:errcheck // legacy spelling

	//lint:allow alpha the marker may sit on the line above
	_ = 4
	_ = 5
}
`

func TestAllowIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", allowSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ai := buildAllowIndex(fset, []*ast.File{f})
	alpha := &Analyzer{Name: "alpha"}
	beta := &Analyzer{Name: "beta"}
	aliased := &Analyzer{Name: "other", Aliases: []string{"errcheck"}}
	cases := []struct {
		line int
		a    *Analyzer
		want bool
	}{
		{4, alpha, true},
		{4, beta, false},
		{6, alpha, true},
		{6, beta, true},
		{8, aliased, true},
		{8, alpha, false},
		{11, alpha, true},  // marker on line 10 covers line 11
		{12, alpha, false}, // but not line 12
	}
	for _, c := range cases {
		if got := ai.allows("demo.go", c.line, c.a); got != c.want {
			t.Errorf("allows(line %d, %s) = %v, want %v", c.line, c.a.Name, got, c.want)
		}
	}
}
