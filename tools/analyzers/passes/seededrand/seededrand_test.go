package seededrand_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/seededrand"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, seededrand.Analyzer, "testdata/flagged", "repro/internal/netem")
}

func TestAllowMarker(t *testing.T) {
	lintkit.RunTestNone(t, seededrand.Analyzer, "testdata/allowed", "repro/internal/stats")
}

func TestPackageFilter(t *testing.T) {
	// The same flagged source is silent outside the deterministic
	// packages.
	lintkit.RunTestNone(t, seededrand.Analyzer, "testdata/flagged", "repro/cmd/seedtool")
}
