package netem

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// FlakyProxy is a loopback TCP relay that stands between an HTTP client
// and its upload server and misbehaves like an open WiFi uplink: it
// paces bytes through a (runtime-variable) token bucket, severs
// connections after a configured number of upstream bytes ("the link
// died mid-upload"), refuses and kills connections during outage windows,
// and can enter a blackout the moment a cut fires — a deterministic
// 100%-loss window for chaos tests. All faults surface to the client as
// ordinary connection errors, exactly what retry logic must absorb.
type FlakyProxy struct {
	ln      net.Listener
	backend string
	pacer   *Pacer
	sched   *OutageSchedule

	mu        sync.Mutex
	cutAfter  int64 // upstream bytes until severing; 0 = disarmed
	blackout  time.Duration
	downUntil time.Time
	conns     map[net.Conn]bool
	refused   int
	severed   int
	closed    bool

	wg sync.WaitGroup
}

// NewFlakyProxy starts a relay on an ephemeral loopback port forwarding
// to backend ("host:port"). pacer and sched may be nil.
func NewFlakyProxy(backend string, pacer *Pacer, sched *OutageSchedule) (*FlakyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netem: proxy listen: %w", err)
	}
	p := &FlakyProxy{ln: ln, backend: backend, pacer: pacer, sched: sched, conns: make(map[net.Conn]bool)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *FlakyProxy) Addr() string { return p.ln.Addr().String() }

// SetCutAfter arms the relay to sever the active connection after n more
// upstream (client→server) bytes have been forwarded. The cut disarms
// itself, so retry attempts pass; if SetBlackout configured a duration,
// the cut also starts a blackout.
func (p *FlakyProxy) SetCutAfter(n int64) {
	p.mu.Lock()
	p.cutAfter = n
	p.mu.Unlock()
}

// SetBlackout makes every future cut open a 100%-loss window of duration
// d: new connections are refused and active ones severed until it ends.
func (p *FlakyProxy) SetBlackout(d time.Duration) {
	p.mu.Lock()
	p.blackout = d
	p.mu.Unlock()
}

// closeQuiet tears down one side of a relay. Severing links
// mid-transfer is the proxy's purpose, so teardown is best-effort and
// a close error carries no signal worth propagating.
func closeQuiet(c io.Closer) {
	c.Close() //lint:allow bitioerr chaos teardown is best-effort by design
}

// KillActive severs every in-flight connection immediately.
func (p *FlakyProxy) KillActive() {
	p.mu.Lock()
	for c := range p.conns {
		closeQuiet(c)
	}
	p.severed += len(p.conns)
	mProxySevered.Add(int64(len(p.conns)))
	p.mu.Unlock()
}

// Stats returns how many connections were refused at accept and how many
// were severed mid-flight.
func (p *FlakyProxy) Stats() (refused, severed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refused, p.severed
}

// Close stops the relay and tears down every connection.
func (p *FlakyProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		closeQuiet(c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// down reports whether the link is currently in a 100%-loss condition.
func (p *FlakyProxy) down() bool {
	p.mu.Lock()
	blackout := time.Now().Before(p.downUntil) //lint:allow walltime real-socket feature: blackout windows on live TCP relays are wall-clock by design
	p.mu.Unlock()
	return blackout || (p.sched != nil && p.sched.Active())
}

// takeBudget consumes up to n bytes of the cut budget. It returns how
// many bytes may still be forwarded and whether the link must be severed
// after them (also starting the blackout, if one is configured).
func (p *FlakyProxy) takeBudget(n int) (allowed int, sever bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cutAfter <= 0 {
		return n, false
	}
	if int64(n) < p.cutAfter {
		p.cutAfter -= int64(n)
		return n, false
	}
	allowed = int(p.cutAfter)
	p.cutAfter = 0
	if p.blackout > 0 {
		p.downUntil = time.Now().Add(p.blackout) //lint:allow walltime real-socket feature: blackout windows on live TCP relays are wall-clock by design
	}
	return allowed, true
}

func (p *FlakyProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.down() {
			p.mu.Lock()
			p.refused++
			p.mu.Unlock()
			mProxyRefused.Inc()
			closeQuiet(client)
			continue
		}
		p.wg.Add(1)
		go p.relay(client)
	}
}

func (p *FlakyProxy) relay(client net.Conn) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		closeQuiet(client)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		closeQuiet(client)
		closeQuiet(server)
		return
	}
	p.conns[client] = true
	p.conns[server] = true
	p.mu.Unlock()

	kill := func(counted bool) {
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, server)
		if counted {
			p.severed++
		}
		p.mu.Unlock()
		if counted {
			mProxySevered.Inc()
		}
		closeQuiet(client)
		closeQuiet(server)
	}

	// Downstream (server→client): responses are small; relay verbatim.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(client, server) //nolint:errcheck // a severed relay is the point
		closeQuiet(client)
	}()

	// Upstream (client→server): the faulty direction.
	buf := make([]byte, 4096)
	for {
		n, err := client.Read(buf)
		if n > 0 {
			if p.down() {
				kill(true)
				return
			}
			allowed, sever := p.takeBudget(n)
			if p.pacer != nil && allowed > 0 {
				p.pacer.Wait(allowed)
			}
			if allowed > 0 {
				if _, werr := server.Write(buf[:allowed]); werr != nil {
					kill(true)
					return
				}
			}
			if sever {
				kill(true)
				return
			}
		}
		if err != nil {
			kill(false)
			return
		}
	}
}
