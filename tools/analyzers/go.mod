module repro/tools/analyzers

go 1.22

// Intentionally dependency-free. The canonical implementation of a vet
// suite would build on golang.org/x/tools/go/analysis; this module
// instead ships a small stdlib-only framework (lintkit) with the same
// shape so that the whole repository — root module and tooling alike —
// builds offline with nothing but the Go toolchain. If x/tools ever
// becomes an acceptable dependency, the analyzers port mechanically:
// lintkit.Analyzer/Pass mirror analysis.Analyzer/Pass on purpose.
