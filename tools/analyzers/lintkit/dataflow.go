package lintkit

import (
	"go/ast"
)

// Forward dataflow over the CFG of one function. The framework is
// lattice-agnostic: a FlowProblem supplies the entry fact, the join,
// and the transfer functions; Solve iterates a worklist in reverse
// post-order to a fixpoint. Facts must be treated as immutable by the
// solver's clients — Transfer and TransferEdge receive a private clone
// they may mutate and return.

// Fact is an opaque dataflow fact. The concrete representation belongs
// to the FlowProblem.
type Fact any

// FlowProblem defines one forward dataflow analysis.
type FlowProblem interface {
	// EntryFact is the fact holding at function entry.
	EntryFact() Fact
	// Transfer applies one node of a block to the fact (mutating and
	// returning it). The node set is documented on Block.Nodes.
	Transfer(n ast.Node, f Fact) Fact
	// TransferEdge refines the block-exit fact along one outgoing edge
	// (branch-condition refinement). It may mutate and return f.
	TransferEdge(e *Edge, f Fact) Fact
	// Join combines facts at a control-flow merge (mutating a or
	// returning a fresh fact).
	Join(a, b Fact) Fact
	// Equal reports lattice equality (fixpoint detection).
	Equal(a, b Fact) bool
	// Clone deep-copies a fact.
	Clone(f Fact) Fact
}

// Solve runs the analysis to a fixpoint and returns the fact holding at
// the entry of every reachable block. Unreachable blocks are absent.
func Solve(c *CFG, p FlowProblem) map[*Block]Fact {
	in := make(map[*Block]Fact, len(c.Blocks))
	in[c.Entry] = p.EntryFact()

	order := postorder(c)
	// Reverse post-order: predecessors before successors where possible.
	rpo := make([]*Block, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	onList := make(map[*Block]bool, len(rpo))
	work := make([]*Block, 0, len(rpo))
	push := func(b *Block) {
		if !onList[b] {
			onList[b] = true
			work = append(work, b)
		}
	}
	for _, b := range rpo {
		push(b)
	}
	for iter := 0; len(work) > 0; iter++ {
		if iter > 1000*len(c.Blocks)+10000 {
			break // non-monotone client; bail rather than spin
		}
		b := work[0]
		work = work[1:]
		onList[b] = false
		f, ok := in[b]
		if !ok {
			continue // unreachable so far
		}
		out := transferBlock(p, b, p.Clone(f))
		for _, e := range b.Succs {
			ef := p.TransferEdge(e, p.Clone(out))
			old, ok := in[e.To]
			if !ok {
				in[e.To] = ef
				push(e.To)
				continue
			}
			joined := p.Join(p.Clone(old), ef)
			if !p.Equal(joined, old) {
				in[e.To] = joined
				push(e.To)
			}
		}
	}
	return in
}

func transferBlock(p FlowProblem, b *Block, f Fact) Fact {
	for _, n := range b.Nodes {
		f = p.Transfer(n, f)
	}
	return f
}

// BlockExitFacts derives the fact at the end of each reachable block
// from the solved entry facts — convenient for clients that report
// during a final visit.
func BlockExitFacts(c *CFG, p FlowProblem, in map[*Block]Fact) map[*Block]Fact {
	out := make(map[*Block]Fact, len(in))
	for b, f := range in {
		out[b] = transferBlock(p, b, p.Clone(f))
	}
	return out
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(c *CFG) []*Block {
	seen := make(map[*Block]bool, len(c.Blocks))
	var order []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			visit(e.To)
		}
		order = append(order, b)
	}
	visit(c.Entry)
	return order
}
