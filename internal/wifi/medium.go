package wifi

import (
	"fmt"

	"repro/internal/stats"
)

// Medium simulates the shared, broadcast nature of an open WiFi network:
// every transmission attempt occupies the channel, collides with
// probability 1-ps (then backs off and retries, per the geometric model of
// Eq. 6), and once cleanly transmitted is overheard by the legitimate
// receiver and by the eavesdropper, each subject to independent residual
// channel error. This is the "testbed" counterpart of the analytical p_s /
// Tb / Tt machinery.
type Medium struct {
	phy  PHY
	rate Rate

	// SuccessRate is the per-attempt collision-free probability p_s from
	// the DCF fixed point.
	SuccessRate float64
	// BackoffRate is lambda_b of Eq. (7).
	BackoffRate float64
	// ReceiverError and EavesdropperError are residual per-packet error
	// probabilities after a collision-free transmission (e.g. fading at
	// each station's location).
	ReceiverError     float64
	EavesdropperError float64

	rng *stats.RNG
}

// NewMedium builds a medium from a solved DCF operating point.
func NewMedium(phy PHY, rate Rate, dcf DCFResult, backoffRate float64, rng *stats.RNG) *Medium {
	return &Medium{
		phy:         phy,
		rate:        rate,
		SuccessRate: dcf.SuccessRate,
		BackoffRate: backoffRate,
		rng:         rng,
	}
}

// NewMediumFromSNR builds a medium from the physical channel qualities of
// the two listeners: it auto-selects the sender's data rate for the
// receiver's SNR (goodput-optimal, see SelectRate) and derives each
// station's residual packet error rate from the BER model at that rate.
// typicalPacket sizes the rate decision (use the MTU payload).
func NewMediumFromSNR(phy PHY, stations int, snrReceiverDB, snrEavesdropperDB float64, typicalPacket int, rng *stats.RNG) (*Medium, error) {
	params := NewDefaultDCF(stations)
	dcf, err := SolveDCF(params)
	if err != nil {
		return nil, err
	}
	rate, err := SelectRate(phy, snrReceiverDB, typicalPacket)
	if err != nil {
		return nil, err
	}
	rxErr, err := PacketErrorRate(rate, snrReceiverDB, typicalPacket)
	if err != nil {
		return nil, err
	}
	evErr, err := PacketErrorRate(rate, snrEavesdropperDB, typicalPacket)
	if err != nil {
		return nil, err
	}
	med := NewMedium(phy, rate, dcf, BackoffRate(params, dcf, phy.SlotTime), rng)
	med.ReceiverError = rxErr
	med.EavesdropperError = evErr
	return med, nil
}

// Reseed resets the medium's random stream, making a run reproducible
// regardless of how much traffic the medium carried before.
func (m *Medium) Reseed(seed uint64) { m.rng = stats.NewRNG(seed) }

// TxReport describes the fate of one packet offered to the medium.
type TxReport struct {
	Airtime     float64 // airtime of the final (successful) attempt
	Backoff     float64 // total collision backoff time before success
	Attempts    int     // 1 + number of collisions
	ReceiverGot bool    // receiver decoded the frame
	EavesGot    bool    // eavesdropper captured the frame
}

// Duration returns the total channel time consumed by the packet.
func (r TxReport) Duration() float64 { return r.Airtime + r.Backoff }

// Transmit sends one application packet of the given size through the
// medium and reports the outcome. Collisions repeat until the frame clears
// the channel (matching the unbounded geometric retry model of Eq. 6);
// residual per-station errors then decide delivery.
func (m *Medium) Transmit(appPayloadBytes int) (TxReport, error) {
	if appPayloadBytes < 0 {
		return TxReport{}, fmt.Errorf("wifi: negative payload")
	}
	air, err := m.phy.PacketTxTime(appPayloadBytes, m.rate)
	if err != nil {
		return TxReport{}, err
	}
	rep := TxReport{Airtime: air, Attempts: 1}
	if m.SuccessRate < 1 {
		k := m.rng.Geometric(m.SuccessRate)
		rep.Attempts += k
		for i := 0; i < k; i++ {
			rep.Backoff += m.rng.Exp(m.BackoffRate)
		}
	}
	rep.ReceiverGot = !m.rng.Bool(m.ReceiverError)
	rep.EavesGot = !m.rng.Bool(m.EavesdropperError)
	return rep, nil
}

// TxTimeStats returns the mean and standard deviation of the transmission
// time Tt for a packet-size class, the quantities Eq. (16) models with a
// Gaussian. sizes lists the observed application payload sizes of the
// class.
func (m *Medium) TxTimeStats(sizes []int) (mean, sigma float64, err error) {
	if len(sizes) == 0 {
		return 0, 0, fmt.Errorf("wifi: empty size class")
	}
	times := make([]float64, len(sizes))
	for i, s := range sizes {
		t, err := m.phy.PacketTxTime(s, m.rate)
		if err != nil {
			return 0, 0, err
		}
		times[i] = t
	}
	return stats.Mean(times), stats.StdDev(times), nil
}

// Rate returns the configured data rate.
func (m *Medium) Rate() Rate { return m.rate }

// PHY returns the configured PHY timing.
func (m *Medium) PHY() PHY { return m.phy }
