package obs

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withMetrics runs the test body with recording enabled and restores
// the previous state afterwards.
func withMetrics(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestCounterDisabledByDefault(t *testing.T) {
	if Enabled() {
		t.Fatal("metrics enabled at process start")
	}
	c := NewCounter("test_disabled_total", "disabled counter")
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter advanced to %d", got)
	}
}

func TestCounterGaugeFloatCounter(t *testing.T) {
	withMetrics(t)
	c := NewCounter("test_counter_total", "c")
	g := NewGauge("test_gauge", "g")
	f := NewFloatCounter("test_float_seconds_total", "f")
	c.Inc()
	c.Add(41)
	g.Set(7)
	g.Add(-2)
	f.Add(0.25)
	f.Add(0.5)
	if c.Value() != 42 {
		t.Fatalf("counter %d", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge %d", g.Value())
	}
	if math.Abs(f.Value()-0.75) > 1e-12 {
		t.Fatalf("float counter %g", f.Value())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test_dup_total", "first")
	NewCounter("test_dup_total", "second")
}

func TestHistogramQuantiles(t *testing.T) {
	withMetrics(t)
	h := NewHistogram("test_quantiles_seconds", "q", ExpBuckets(0.001, 2, 16))
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	// 1000 uniform observations over (0, 1]: p50 ≈ 0.5, p95 ≈ 0.95.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if math.Abs(h.Sum()-500.5) > 1e-9 {
		t.Fatalf("sum %g", h.Sum())
	}
	// Exponential buckets are coarse; accept the bucket-interpolation
	// error bound (one bucket width).
	if p50 := h.Quantile(0.5); p50 < 0.35 || p50 > 0.75 {
		t.Fatalf("p50 %g", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.9 || p99 > 1.1 {
		t.Fatalf("p99 %g", p99)
	}
	if p0 := h.Quantile(0); p0 < 0 || p0 > 0.01 {
		t.Fatalf("p0 %g", p0)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	withMetrics(t)
	h := NewHistogram("test_overflow_seconds", "o", []float64{1, 2})
	h.Observe(100)
	// The +Inf bucket clamps to the highest finite bound.
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile %g", got)
	}
}

func TestExposition(t *testing.T) {
	withMetrics(t)
	reg := NewRegistry()
	c := &Counter{name: `test_exp_total{kind="a"}`, help: "labelled counter"}
	reg.register(c)
	h := &Histogram{
		name: "test_exp_seconds", help: "hist",
		bounds: []float64{0.1, 1},
		counts: make([]atomic.Int64, 3),
	}
	reg.register(h)
	c.v.Add(3)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	reg.Expose(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_exp_total counter",
		`test_exp_total{kind="a"} 3`,
		"# TYPE test_exp_seconds histogram",
		`test_exp_seconds_bucket{le="0.1"} 1`,
		`test_exp_seconds_bucket{le="1"} 2`,
		`test_exp_seconds_bucket{le="+Inf"} 3`,
		"test_exp_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.add(Event{Name: string(rune('a' + i))})
	}
	if r.Len() != 4 || r.Total() != 6 {
		t.Fatalf("len %d total %d", r.Len(), r.Total())
	}
	got := r.Snapshot()
	want := []string{"c", "d", "e", "f"}
	for i, e := range got {
		if e.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
}

func TestSpanRecordsIntoTrace(t *testing.T) {
	withMetrics(t)
	before := Trace.Total()
	sp := StartSpan("test_span").Annotate("cell %d", 7)
	time.Sleep(time.Millisecond)
	sp.End()
	if Trace.Total() != before+1 {
		t.Fatalf("trace total %d, want %d", Trace.Total(), before+1)
	}
	events := Trace.Snapshot()
	last := events[len(events)-1]
	if last.Name != "test_span" || last.Note != "cell 7" {
		t.Fatalf("last event %+v", last)
	}
	if last.Dur <= 0 {
		t.Fatalf("span duration %v", last.Dur)
	}
}

func TestSpanNoopWhenDisabled(t *testing.T) {
	SetEnabled(false)
	before := Trace.Total()
	sp := StartSpan("test_disabled_span")
	sp.End()
	if Trace.Total() != before {
		t.Fatal("disabled span recorded")
	}
}

func TestConcurrentRecording(t *testing.T) {
	withMetrics(t)
	c := NewCounter("test_concurrent_total", "c")
	h := NewHistogram("test_concurrent_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%100) * 1e-4)
				StartSpan("test_concurrent").End()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("lost counter updates: %d", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("lost observations: %d", h.Count())
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	withMetrics(t)
	NewCounter("test_mux_total", "m").Add(9)
	addr, shutdown, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %s", path, resp.Status)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "test_mux_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, `"test_mux_total":9`) {
		t.Fatalf("/debug/vars missing obs mirror:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	StartSpan("test_mux_span").End()
	if out := get("/debug/trace"); !strings.Contains(out, "test_mux_span") {
		t.Fatalf("/debug/trace missing span:\n%s", out)
	}
}
