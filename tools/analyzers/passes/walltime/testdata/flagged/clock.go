// Testdata for the walltime pass: every wall-clock read is flagged;
// duration arithmetic and explicit time values are fine.
package clockdemo

import "time"

func stamp() time.Time {
	return time.Now() // want `wall-clock time\.Now in deterministic model code`
}

func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since in deterministic model code`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `wall-clock time\.Until in deterministic model code`
}

func simulated(step time.Duration, n int) time.Duration {
	return step * time.Duration(n)
}
