package wifi

import (
	"fmt"
	"math"
)

// SNR/BER-based rate selection. The paper takes the channel's packet
// success rate as an input; this file supplies the missing link from a
// physical channel quality (SNR) to per-rate packet error rates and an
// auto-rate policy, so experiments can be parameterised by "how far the
// eavesdropper sits" instead of raw loss probabilities.
//
// The BER model is the standard AWGN approximation for the 802.11g OFDM
// modes: BPSK/QPSK use the Q-function form, 16/64-QAM the nearest-
// neighbour approximation, each scaled by its convolutional coding rate
// (treated as an SNR gain, a common first-order simplification).

// qfunc is the Gaussian tail function Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// modulation describes one 802.11g OFDM mode.
type modulation struct {
	bitsPerSymbol int     // per subcarrier
	codingRate    float64 // convolutional code rate
}

var rateModulation = map[Rate]modulation{
	Rate6:  {1, 1. / 2}, // BPSK 1/2
	Rate9:  {1, 3. / 4}, // BPSK 3/4
	Rate12: {2, 1. / 2}, // QPSK 1/2
	Rate18: {2, 3. / 4}, // QPSK 3/4
	Rate24: {4, 1. / 2}, // 16-QAM 1/2
	Rate36: {4, 3. / 4}, // 16-QAM 3/4
	Rate48: {6, 2. / 3}, // 64-QAM 2/3
	Rate54: {6, 3. / 4}, // 64-QAM 3/4
}

// BitErrorRate returns the approximate BER of the given rate at the given
// SNR (dB).
func BitErrorRate(rate Rate, snrDB float64) (float64, error) {
	mod, ok := rateModulation[rate]
	if !ok {
		return 0, fmt.Errorf("wifi: unsupported rate %d", rate)
	}
	// Coding acts as an effective SNR gain relative to rate-1 coding.
	gain := 10 * math.Log10(1/mod.codingRate)
	snr := math.Pow(10, (snrDB+gain)/10)
	switch mod.bitsPerSymbol {
	case 1: // BPSK
		return qfunc(math.Sqrt(2 * snr)), nil
	case 2: // QPSK
		return qfunc(math.Sqrt(snr)), nil
	default: // M-QAM nearest-neighbour approximation
		m := float64(int(1) << mod.bitsPerSymbol)
		k := float64(mod.bitsPerSymbol)
		return 4 / k * (1 - 1/math.Sqrt(m)) * qfunc(math.Sqrt(3*k*snr/(m-1))), nil
	}
}

// PacketErrorRate returns the probability a packet of the given size is
// corrupted at the given rate and SNR (independent bit errors).
func PacketErrorRate(rate Rate, snrDB float64, packetBytes int) (float64, error) {
	ber, err := BitErrorRate(rate, snrDB)
	if err != nil {
		return 0, err
	}
	if packetBytes < 0 {
		return 0, fmt.Errorf("wifi: negative packet size")
	}
	bits := float64(8 * (packetBytes + MACOverheadBytes))
	// 1 - (1-ber)^bits, computed stably.
	return -math.Expm1(bits * math.Log1p(-ber)), nil
}

// AllRates lists the 802.11g rates fastest first.
var AllRates = []Rate{Rate54, Rate48, Rate36, Rate24, Rate18, Rate12, Rate9, Rate6}

// SelectRate picks the rate that maximises expected goodput for packets of
// the given size at the given SNR: payload bits over airtime, discounted
// by the delivery probability.
func SelectRate(phy PHY, snrDB float64, packetBytes int) (Rate, error) {
	if packetBytes <= 0 {
		return 0, fmt.Errorf("wifi: packet size %d", packetBytes)
	}
	best := Rate(0)
	bestGoodput := -1.0
	for _, r := range AllRates {
		per, err := PacketErrorRate(r, snrDB, packetBytes)
		if err != nil {
			return 0, err
		}
		air, err := phy.FrameAirtime(packetBytes, r)
		if err != nil {
			return 0, err
		}
		goodput := float64(8*packetBytes) * (1 - per) / air
		if goodput > bestGoodput {
			bestGoodput = goodput
			best = r
		}
	}
	if bestGoodput <= 0 {
		// Nothing gets through; fall back to the most robust rate.
		return Rate6, nil
	}
	return best, nil
}
