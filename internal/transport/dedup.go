package transport

// seqWindow is a seen-packet dedup set with bounded memory: a contiguous
// floor below which every sequence counts as delivered, plus a sparse map
// of delivered sequences at or above it. Marking the floor's sequence
// compacts it away, so for an in-order stream the map stays empty no
// matter how long the session runs — the fix for the old unbounded
// seen map, and what makes per-session state affordable across
// thousands of ingest tenants.
//
// span caps how far the exact state may trail the stream head. When an
// arrival would stretch the window past span, the floor is forced up and
// everything below it is forgotten: a straggler older than span is then
// indistinguishable from a replay and treated as a duplicate, the same
// tradeoff an SRTP replay window makes. span 0 disables the cap.
//
// Not concurrency-safe; callers hold their own locks.
type seqWindow struct {
	floor uint64
	above map[uint64]bool
	span  uint64
}

// defaultSeqSpan keeps exact dedup state for one full 16-bit epoch behind
// the head — far wider than any NACK recovery reaches, and a hard ~64k
// bound on entries per session.
const defaultSeqSpan = 1 << 16

func newSeqWindow(span uint64) *seqWindow {
	return &seqWindow{above: make(map[uint64]bool), span: span}
}

// Seen reports whether seq already counts as delivered. Sequences below
// the floor are implicitly seen: the floor only advances over delivered
// sequences, or over sequences abandoned by the span cap.
func (w *seqWindow) Seen(seq uint64) bool {
	return seq < w.floor || w.above[seq]
}

// Mark records seq as delivered and reports whether it already was.
func (w *seqWindow) Mark(seq uint64) bool {
	if w.Seen(seq) {
		return true
	}
	w.above[seq] = true
	w.compact()
	if w.span > 0 && seq >= w.span && seq-w.span+1 > w.floor {
		w.advance(seq - w.span + 1)
	}
	return false
}

// compact slides the floor over every contiguously delivered sequence,
// dropping the exact entries it absorbs.
func (w *seqWindow) compact() {
	for w.above[w.floor] {
		delete(w.above, w.floor)
		w.floor++
	}
}

// advance force-moves the floor to lo, forgetting exact state below it.
// The cheaper of walking the gap or walking the map is used, so a huge
// sequence jump cannot turn one arrival into a billion-step sweep.
func (w *seqWindow) advance(lo uint64) {
	if lo <= w.floor {
		return
	}
	if lo-w.floor <= uint64(len(w.above)) {
		for s := w.floor; s < lo; s++ {
			delete(w.above, s)
		}
	} else {
		for s := range w.above {
			if s < lo {
				delete(w.above, s)
			}
		}
	}
	w.floor = lo
	w.compact()
}

// Floor returns the contiguous floor: every sequence below it counts as
// delivered.
func (w *seqWindow) Floor() uint64 { return w.floor }

// Pending returns how many sequences are tracked exactly above the floor
// — the window's only non-constant memory.
func (w *seqWindow) Pending() int { return len(w.above) }
