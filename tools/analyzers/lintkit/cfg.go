package lintkit

import (
	"go/ast"
)

// This file builds function-level control-flow graphs over go/ast. The
// CFG is the substrate of the flow-sensitive passes (plainleak,
// lockheld): blocks hold straight-line statements in evaluation order,
// edges carry the branch condition they are guarded by, so a dataflow
// client can refine facts along the true and false arms of a test
// (TransferEdge). Deferred calls are appended to the exit block in
// LIFO order — every return path reaches them, which is exactly the
// semantics a lock- or taint-tracking client wants.

// Block is one straight-line run of statements.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, dense).
	Index int
	// Nodes are the statements and clause headers executed in order.
	// Besides plain statements this includes *ast.RangeStmt (once per
	// iteration, binding the key/value variables), *ast.CaseClause /
	// *ast.CommClause headers, and — in the exit block — the deferred
	// call expressions in LIFO order.
	Nodes []ast.Node
	// Succs are the outgoing edges.
	Succs []*Edge
}

// Edge is one control-flow edge, optionally guarded by a condition.
type Edge struct {
	To *Block
	// Cond is the branch condition evaluated at the end of the source
	// block; nil for unconditional edges. The edge is taken when Cond
	// evaluates to !Negated.
	Cond    ast.Expr
	Negated bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists the deferred calls in declaration order (they run
	// reversed; the exit block already holds them reversed).
	Defers []*ast.DeferStmt
}

type loopCtx struct {
	label            string
	breakTo, contTo  *Block
	isSwitchOrSelect bool
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil while the current point is unreachable
	loops  []loopCtx
	labels map[string]*Block // goto targets
	gotos  []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of a function body. It handles the full
// statement grammar the repository uses: if/for/range/switch/
// type-switch/select, labeled break and continue, goto, fallthrough,
// defer and return. Panics and runtime exits are not modeled (a fact
// holding at a call site is assumed to flow past it).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Exit = b.newBlock() // allocate early so returns can target it
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.jump(b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, &Edge{To: target})
		}
	}
	// Deferred calls run on every exit path, last registered first.
	for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, b.cfg.Defers[i].Call)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge to target.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, &Edge{To: target})
	}
	b.cur = nil
}

// branch ends the current block with a conditional two-way split.
func (b *cfgBuilder) branch(cond ast.Expr, t, f *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs,
			&Edge{To: t, Cond: cond},
			&Edge{To: f, Cond: cond, Negated: true})
	}
	b.cur = nil
}

// startBlock makes target the current block (creating the fall-through
// edge when the previous block is still open).
func (b *cfgBuilder) startBlock(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, &Edge{To: target})
	}
	b.cur = target
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code still gets a block
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) findLoop(label string, wantBreak bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := &b.loops[i]
		if label != "" && l.label != label {
			continue
		}
		if !wantBreak && l.isSwitchOrSelect {
			continue // continue never targets a switch
		}
		return l
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		then := b.newBlock()
		after := b.newBlock()
		elseB := after
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.branch(s.Cond, then, elseB)
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else, "")
			b.jump(after)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(head)
		if s.Cond != nil {
			b.branch(s.Cond, body, after)
		} else {
			b.cur.Succs = append(b.cur.Succs, &Edge{To: body})
			b.cur = nil
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, contTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		// The range statement itself is the per-iteration header: a
		// transfer function sees it once per loop entry and binds the
		// key/value variables from the ranged expression.
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.Succs = append(b.cur.Succs, &Edge{To: body}, &Edge{To: after})
		b.cur = nil
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, contTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.jump(head)
		b.cur = after
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, label)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, label)
	case *ast.SelectStmt:
		// The statement itself lands in the header block so a blocking-
		// call client can see "select with no default parks here";
		// clients must not descend into its clause bodies (those are in
		// the clause blocks).
		b.add(s)
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, isSwitchOrSelect: true})
		src := b.cur
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			src.Succs = append(src.Succs, &Edge{To: clause})
			b.cur = clause
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.EmptyStmt:
	default:
		// Straight-line statements: assignments, declarations,
		// expression statements, go, send, inc/dec.
		b.add(s)
	}
}

// switchStmt lowers value and type switches: the tag is evaluated once,
// every clause is a successor of the header, and a missing default adds
// a skip edge past the whole switch. Fallthrough chains clause bodies.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(&ast.ExprStmt{X: tag})
	}
	if assign != nil {
		b.add(assign)
	}
	after := b.newBlock()
	src := b.cur
	if src == nil {
		src = b.newBlock()
		b.cur = src
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, isSwitchOrSelect: true})
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		clause := b.newBlock()
		src.Succs = append(src.Succs, &Edge{To: clause})
		clauses = append(clauses, cc)
		blocks = append(blocks, clause)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		src.Succs = append(src.Succs, &Edge{To: after})
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.cur.Nodes = append(b.cur.Nodes, cc)
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if l := b.findLoop(label, true); l != nil {
			b.jump(l.breakTo)
		} else {
			b.jump(b.cfg.Exit)
		}
	case "continue":
		if l := b.findLoop(label, false); l != nil {
			b.jump(l.contTo)
		} else {
			b.jump(b.cfg.Exit)
		}
	case "goto":
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.cur = nil
	case "fallthrough":
		// handled by switchStmt; a stray one is ignored
	}
}
