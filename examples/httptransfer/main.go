// Httptransfer demonstrates the HTTP/TCP mode of Section 6.4 over real
// sockets — on a link that fails mid-upload. The clip is uploaded as
// marker-tagged segments through a flaky loopback proxy that severs the
// connection halfway through and then goes dark for a blackout window;
// the resumable uploader retries with capped backoff, asks the server
// where it stopped, and finishes without re-sending a single
// acknowledged segment. A wire tap (standing in for tcpdump on the open
// WiFi network) captures every segment that crossed and shows the
// encrypted ones are useless to an observer even though TCP delivers
// every byte to the legitimate server.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

func main() {
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug endpoints on this address while the transfer runs (e.g. 127.0.0.1:9090)")
	flag.Parse()
	if *metricsAddr != "" {
		bound, stop, err := obs.ServeDebug(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("metrics on http://%s/metrics — curl it while the upload fights the flaky link\n", bound)
	}
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 60, Motion: video.MotionMedium, Seed: 5})
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pol := vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: 0.2, Alg: vcrypt.AES256}
	key := make([]byte, pol.Alg.KeySize())

	// The upload endpoint (legitimate receiver).
	server, err := transport.NewHTTPUploadServer(cfg, pol.Alg, key)
	if err != nil {
		log.Fatal(err)
	}

	// The eavesdropper: a tap on the wire with its own loss and no key.
	tapAsm, err := codec.NewReassembler(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tapFilter, err := netem.NewFilter(0.03, 11)
	if err != nil {
		log.Fatal(err)
	}
	var tapMu sync.Mutex
	var tapSeen, tapUsable int
	server.Tap = func(seq uint64, encrypted bool, payload []byte) {
		tapMu.Lock()
		defer tapMu.Unlock()
		tapSeen++
		if tapFilter.Drop() || encrypted {
			return // lost on the air, or ciphertext the tap cannot read
		}
		if err := tapAsm.Add(payload); err == nil {
			tapUsable++
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/upload", server)
	listener, err := netListen()
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(listener, mux)

	// The flaky link: a loopback proxy standing in for an open WiFi
	// association that drops mid-transfer. It severs the TCP connection
	// after half the clip's bytes have crossed and refuses reconnects for
	// a 300ms blackout.
	totalBytes := 0
	for _, ef := range encoded {
		totalBytes += ef.Size()
	}
	proxy, err := netem.NewFlakyProxy(listener.Addr().String(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetBlackout(300 * time.Millisecond)
	proxy.SetCutAfter(int64(totalBytes / 2))
	url := fmt.Sprintf("http://%s/upload", proxy.Addr())

	// Pace the upload through a WiFi-like bottleneck so the cut lands
	// mid-flight, and retry with capped exponential backoff.
	pacer, err := netem.NewPacer(2e6) // ~16 Mb/s effective
	if err != nil {
		log.Fatal(err)
	}
	session := transport.Session{
		Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
		Policy: pol, Key: key, Device: energy.SamsungGalaxySII(),
	}
	rp := transport.RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 50 * time.Millisecond,
		MaxBackoff: time.Second, AttemptTimeout: 5 * time.Second, Seed: 7,
	}
	rep, err := transport.ResumableHTTPUpload(session, url, pacer, rp, nil)
	if err != nil {
		log.Fatal(err)
	}
	refused, severed := proxy.Stats()
	fmt.Printf("uploaded %d segments (%d encrypted, %d bytes) in %v under policy %s\n",
		rep.Segments, rep.Encrypted, rep.Bytes, rep.Elapsed.Round(1e6), pol.Name())
	fmt.Printf("flaky link: %d connection(s) severed, %d refused during blackout\n", severed, refused)
	fmt.Printf("recovery: %d attempts, %d resumed mid-clip, %v backing off, %d duplicate segments re-sent\n",
		rep.Attempts, rep.Resumes, rep.BackoffTotal.Round(time.Millisecond), server.DuplicateSegments())

	// Server-side reconstruction: resume delivered everything exactly
	// once; the server decrypts the marked segments.
	rx, err := codec.DecodeSequence(server.Frames(len(encoded)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	qr, err := evalvid.Evaluate(clip, rx)
	if err != nil {
		log.Fatal(err)
	}
	// Tap-side reconstruction.
	ev, err := codec.DecodeSequence(tapAsm.Frames(len(encoded)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	qe, err := evalvid.Evaluate(clip, ev)
	if err != nil {
		log.Fatal(err)
	}
	tapMu.Lock()
	fmt.Printf("wire tap: saw %d segments, could use %d\n", tapSeen, tapUsable)
	tapMu.Unlock()
	fmt.Printf("server reconstruction: %.1f dB PSNR (MOS %.2f)\n", qr.PSNR, qr.MOS)
	fmt.Printf("tap reconstruction:    %.1f dB PSNR (MOS %.2f)\n", qe.PSNR, qe.MOS)
}
