package analytic

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// MMPP2 is a two-state Markov-modulated Poisson process (Eq. 1). State 1
// models the arrival of I-frame packets (small interarrival times, rate
// Lambda1); state 2 models P-frame packets (rate Lambda2). P1 is the
// transition rate from state 1 to state 2 and P2 from state 2 to state 1.
type MMPP2 struct {
	P1, P2           float64 // state-switch rates (1/s)
	Lambda1, Lambda2 float64 // arrival rates per state (packets/s)
}

// Validate reports whether the parameters describe a proper MMPP.
func (m MMPP2) Validate() error {
	if m.P1 <= 0 || m.P2 <= 0 {
		return fmt.Errorf("analytic: MMPP switch rates must be positive (p1=%g p2=%g)", m.P1, m.P2)
	}
	if m.Lambda1 < 0 || m.Lambda2 < 0 || stats.NearZero(m.Lambda1+m.Lambda2) {
		return fmt.Errorf("analytic: MMPP arrival rates invalid (l1=%g l2=%g)", m.Lambda1, m.Lambda2)
	}
	return nil
}

// Generator returns the infinitesimal generator R of Eq. (1).
func (m MMPP2) Generator() *stats.Matrix {
	return stats.MatrixFromRows([][]float64{
		{-m.P1, m.P1},
		{m.P2, -m.P2},
	})
}

// RateMatrix returns the diagonal rate matrix Lambda of Eq. (1).
func (m MMPP2) RateMatrix() *stats.Matrix {
	return stats.MatrixFromRows([][]float64{
		{m.Lambda1, 0},
		{0, m.Lambda2},
	})
}

// Stationary returns the equilibrium probability vector pi of Eq. (2):
// pi = (p2, p1)/(p1+p2).
func (m MMPP2) Stationary() [2]float64 {
	s := m.P1 + m.P2
	return [2]float64{m.P2 / s, m.P1 / s}
}

// MeanRate returns the long-run packet arrival rate pi*lambda.
func (m MMPP2) MeanRate() float64 {
	pi := m.Stationary()
	return pi[0]*m.Lambda1 + pi[1]*m.Lambda2
}

// IFramePacketFraction returns p_I, the stationary probability that an
// arriving packet belongs to an I-frame. Arrivals are biased towards the
// high-rate state, so the fraction is rate-weighted:
// p_I = pi1*l1 / (pi1*l1 + pi2*l2).
func (m MMPP2) IFramePacketFraction() float64 {
	pi := m.Stationary()
	num := pi[0] * m.Lambda1
	den := num + pi[1]*m.Lambda2
	if stats.NearZero(den) {
		return 0
	}
	return num / den
}

// D0 returns the MAP "no-arrival" matrix D0 = R - Lambda, and D1 the
// arrival matrix Lambda. Together they express the MMPP as a Markovian
// arrival process, the form the QBD solver consumes.
func (m MMPP2) D0() *stats.Matrix {
	return stats.MatrixFromRows([][]float64{
		{-m.P1 - m.Lambda1, m.P1},
		{m.P2, -m.P2 - m.Lambda2},
	})
}

// D1 returns the MAP arrival-rate matrix (diagonal Lambda).
func (m MMPP2) D1() *stats.Matrix { return m.RateMatrix() }

// ArrivalSample is one observed packet arrival used for model calibration:
// its timestamp (seconds) and whether it belongs to an I-frame.
type ArrivalSample struct {
	Time   float64
	IFrame bool
}

// ErrInsufficientData is returned by FitMMPP2 when the measurement prefix
// does not contain enough of both packet classes.
var ErrInsufficientData = errors.New("analytic: not enough samples to fit MMPP")

// FitMMPP2 estimates MMPP parameters from a measurement prefix of packet
// arrivals, the calibration step of Section 6.1 ("Applying the mathematical
// framework"). Arrivals must be in non-decreasing time order.
//
// The estimator segments the trace into maximal runs of same-class packets:
// runs of I-frame packets are visits to state 1, runs of P-frame packets
// visits to state 2. Within-run interarrival times estimate Lambda1 and
// Lambda2; mean run durations estimate the state sojourn times 1/P1 and
// 1/P2.
func FitMMPP2(samples []ArrivalSample) (MMPP2, error) {
	if len(samples) < 8 {
		return MMPP2{}, ErrInsufficientData
	}
	// First pass: within-run interarrival gaps per class and the run
	// boundaries.
	type run struct {
		classI  bool
		span    float64
		packets int
	}
	var gapI, gapP []float64
	var runs []run
	cur := run{classI: samples[0].IFrame, packets: 1}
	runStart := samples[0].Time
	prev := samples[0].Time
	for _, s := range samples[1:] {
		if s.Time < prev {
			return MMPP2{}, fmt.Errorf("analytic: arrival samples out of order (%g after %g)", s.Time, prev)
		}
		if s.IFrame == cur.classI {
			gap := s.Time - prev
			if cur.classI {
				gapI = append(gapI, gap)
			} else {
				gapP = append(gapP, gap)
			}
			cur.packets++
			cur.span = s.Time - runStart
		} else {
			runs = append(runs, cur)
			cur = run{classI: s.IFrame, packets: 1}
			runStart = s.Time
		}
		prev = s.Time
	}
	runs = append(runs, cur)
	if len(gapI) < 2 || len(gapP) < 2 {
		return MMPP2{}, ErrInsufficientData
	}
	mGapI, mGapP := stats.Mean(gapI), stats.Mean(gapP)
	if mGapI <= 0 || mGapP <= 0 {
		return MMPP2{}, ErrInsufficientData
	}
	// Second pass: run durations. A run of n packets spans n-1 gaps; a
	// single-packet run still occupies roughly one interarrival of its
	// own class — crucially at the CLASS's gap scale, never the gap to
	// the next (other-class) packet, which can be orders of magnitude
	// larger and would wildly inflate the state's sojourn (and with it
	// the predicted burst length).
	var durI, durP []float64
	for _, r := range runs {
		gapScale := mGapP
		if r.classI {
			gapScale = mGapI
		}
		// An n-packet run spans n-1 gaps; floor at one gap so single-packet
		// runs get a sojourn at their class's own time scale.
		spans := r.packets - 1
		if spans < 1 {
			spans = 1
		}
		d := r.span
		if floor := gapScale * float64(spans); d < floor {
			d = floor
		}
		if r.classI {
			durI = append(durI, d)
		} else {
			durP = append(durP, d)
		}
	}
	if len(durI) < 1 || len(durP) < 1 {
		return MMPP2{}, ErrInsufficientData
	}
	mDurI, mDurP := stats.Mean(durI), stats.Mean(durP)
	if mGapI <= 0 || mGapP <= 0 || mDurI <= 0 || mDurP <= 0 {
		return MMPP2{}, ErrInsufficientData
	}
	m := MMPP2{
		Lambda1: 1 / mGapI,
		Lambda2: 1 / mGapP,
		P1:      1 / mDurI,
		P2:      1 / mDurP,
	}
	return m, m.Validate()
}

// FitMMPP2Bursts fits the MMPP on timing alone: every interarrival gap
// below gapThreshold belongs to the high-rate burst state (frame
// fragmentation bursts — I-frames always, and large P-frames too), larger
// gaps to the low-rate state. This captures the queueing-relevant
// burstiness better than class-labelled fitting when P-frames also
// fragment into multi-packet bursts (fast motion), where a class-based
// state assignment averages 50 us intra-burst gaps with 33 ms inter-frame
// gaps and badly understates the variance the queue sees.
//
// The low-rate state is matched so that one visit produces one arrival on
// average (lambda2 = p2 = 1/mean large gap).
func FitMMPP2Bursts(samples []ArrivalSample, gapThreshold float64) (MMPP2, error) {
	if len(samples) < 8 {
		return MMPP2{}, ErrInsufficientData
	}
	if gapThreshold <= 0 {
		return MMPP2{}, fmt.Errorf("analytic: gap threshold must be positive")
	}
	var small, large []float64
	var burstDurs []float64
	burstStart := samples[0].Time
	prev := samples[0].Time
	inBurst := false
	for _, s := range samples[1:] {
		if s.Time < prev {
			return MMPP2{}, fmt.Errorf("analytic: arrival samples out of order (%g after %g)", s.Time, prev)
		}
		gap := s.Time - prev
		if gap < gapThreshold {
			small = append(small, gap)
			inBurst = true
		} else {
			large = append(large, gap)
			if inBurst {
				burstDurs = append(burstDurs, prev-burstStart)
			}
			burstStart = s.Time
			inBurst = false
		}
		prev = s.Time
	}
	if inBurst && prev > burstStart {
		burstDurs = append(burstDurs, prev-burstStart)
	}
	if len(small) < 2 || len(large) < 2 || len(burstDurs) < 1 {
		return MMPP2{}, ErrInsufficientData
	}
	mSmall, mLarge := stats.Mean(small), stats.Mean(large)
	mBurst := stats.Mean(burstDurs)
	if mSmall <= 0 || mLarge <= 0 || mBurst <= 0 {
		return MMPP2{}, ErrInsufficientData
	}
	m := MMPP2{
		Lambda1: 1 / mSmall,
		P1:      1 / mBurst,
		Lambda2: 1 / mLarge,
		P2:      1 / mLarge,
	}
	return m, m.Validate()
}

// Sample draws interarrival-labelled packet arrivals from the MMPP for a
// duration of dur seconds, used by the queue simulator and in tests.
func (m MMPP2) Sample(rng *stats.RNG, dur float64) []ArrivalSample {
	var out []ArrivalSample
	t := 0.0
	state := 1
	if rng.Float64() >= m.Stationary()[0] {
		state = 2
	}
	for t < dur {
		var rate, sw float64
		if state == 1 {
			rate, sw = m.Lambda1, m.P1
		} else {
			rate, sw = m.Lambda2, m.P2
		}
		total := rate + sw
		t += rng.Exp(total)
		if t >= dur {
			break
		}
		if rng.Float64() < rate/total {
			out = append(out, ArrivalSample{Time: t, IFrame: state == 1})
		} else {
			state = 3 - state
		}
	}
	return out
}
