package transport

import "testing"

func TestSeqWindowInOrderStaysEmpty(t *testing.T) {
	w := newSeqWindow(0)
	for seq := uint64(0); seq < 100000; seq++ {
		if w.Mark(seq) {
			t.Fatalf("seq %d misreported as duplicate", seq)
		}
	}
	if w.Pending() != 0 {
		t.Fatalf("in-order stream left %d exact entries, want 0", w.Pending())
	}
	if w.Floor() != 100000 {
		t.Fatalf("floor = %d, want 100000", w.Floor())
	}
	if !w.Seen(42) || !w.Mark(42) {
		t.Fatal("compacted sequence no longer counts as seen")
	}
}

func TestSeqWindowGapsAndDuplicates(t *testing.T) {
	w := newSeqWindow(0)
	for _, seq := range []uint64{0, 1, 3, 4} {
		if w.Mark(seq) {
			t.Fatalf("first delivery of %d misreported as duplicate", seq)
		}
	}
	if w.Floor() != 2 {
		t.Fatalf("floor = %d, want 2", w.Floor())
	}
	if w.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (seqs 3,4)", w.Pending())
	}
	if !w.Mark(3) {
		t.Fatal("re-delivery of 3 not flagged as duplicate")
	}
	// Filling the gap compacts everything.
	if w.Mark(2) {
		t.Fatal("first delivery of 2 misreported as duplicate")
	}
	if w.Floor() != 5 || w.Pending() != 0 {
		t.Fatalf("after gap fill: floor=%d pending=%d, want 5/0", w.Floor(), w.Pending())
	}
}

func TestSeqWindowSpanBoundsMemory(t *testing.T) {
	const span = 1024
	w := newSeqWindow(span)
	// Only even sequences arrive: without the cap the map would hold
	// half of every sequence ever seen.
	for seq := uint64(0); seq < 100000; seq += 2 {
		w.Mark(seq)
	}
	if p := w.Pending(); p > span {
		t.Fatalf("pending = %d exceeds span %d", p, span)
	}
	if want := uint64(99998 - span + 1); w.Floor() != want {
		t.Fatalf("floor = %d did not keep up with head, want %d", w.Floor(), want)
	}
	// A straggler behind the forced floor counts as a duplicate (replay
	// window semantics).
	if !w.Mark(10) {
		t.Fatal("straggler below forced floor not treated as duplicate")
	}
}

func TestSeqWindowHugeJumpIsCheap(t *testing.T) {
	w := newSeqWindow(4096)
	w.Mark(0)
	// A spurious jump of ~4 billion must not iterate the gap — it should
	// walk the (tiny) map instead. This completes instantly or the test
	// times out.
	w.Mark(1 << 32)
	if w.Floor() != 1<<32-4096+1 {
		t.Fatalf("floor = %d after huge jump, want %d", w.Floor(), uint64(1<<32-4096+1))
	}
	if w.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", w.Pending())
	}
}
