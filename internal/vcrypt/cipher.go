// Package vcrypt implements the encryption side of the paper: the three
// symmetric algorithms of Table 1 (AES-128, AES-256, 3DES) in Output
// Feedback mode, applied per packet so that a lost or corrupted packet
// never propagates errors into other packets (Section 5), and the
// encryption policies — which packets of a video flow get encrypted —
// whose delay/distortion/energy trade-off the paper quantifies.
package vcrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/des"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Algorithm selects the symmetric cipher of a policy.
type Algorithm int

// The algorithms evaluated in the paper (Table 1).
const (
	AES128 Algorithm = iota
	AES256
	TripleDES
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AES128:
		return "AES128"
	case AES256:
		return "AES256"
	case TripleDES:
		return "3DES"
	default:
		return "unknown"
	}
}

// KeySize returns the key length in bytes.
func (a Algorithm) KeySize() int {
	switch a {
	case AES128:
		return 16
	case AES256:
		return 32
	case TripleDES:
		return 24
	default:
		return 0
	}
}

// Cipher encrypts and decrypts packet payloads under one pre-established
// symmetric key (the paper assumes key agreement happened a priori,
// Section 3). Each packet is processed in OFB mode under a per-packet IV
// derived from the packet sequence number, so packets are independently
// decryptable and errors do not propagate across packets.
type Cipher struct {
	alg   Algorithm
	block cipher.Block
	// ivKey keys the IV derivation PRF so IVs are not predictable from
	// sequence numbers alone.
	ivKey []byte
}

// NewCipher builds a Cipher for the algorithm and key. The key must have
// exactly alg.KeySize() bytes.
func NewCipher(alg Algorithm, key []byte) (*Cipher, error) {
	if len(key) != alg.KeySize() {
		return nil, fmt.Errorf("vcrypt: %v needs a %d-byte key, got %d", alg, alg.KeySize(), len(key))
	}
	var block cipher.Block
	var err error
	switch alg {
	case AES128, AES256:
		block, err = aes.NewCipher(key)
	case TripleDES:
		block, err = des.NewTripleDESCipher(key)
	default:
		return nil, fmt.Errorf("vcrypt: unknown algorithm %d", alg)
	}
	if err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("thriftyvid-iv"))
	return &Cipher{alg: alg, block: block, ivKey: mac.Sum(nil)}, nil
}

// Algorithm returns the cipher's algorithm.
func (c *Cipher) Algorithm() Algorithm { return c.alg }

// iv derives the per-packet IV for a sequence number.
func (c *Cipher) iv(seq uint64) []byte {
	mac := hmac.New(sha256.New, c.ivKey)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	mac.Write(b[:])
	return mac.Sum(nil)[:c.block.BlockSize()]
}

// EncryptPacket encrypts payload in place using OFB keyed by the packet
// sequence number. OFB is an involution: decrypting is the same operation,
// which DecryptPacket makes explicit.
func (c *Cipher) EncryptPacket(seq uint64, payload []byte) {
	stream := cipher.NewOFB(c.block, c.iv(seq)) //nolint:staticcheck // OFB is what the paper specifies
	stream.XORKeyStream(payload, payload)
}

// DecryptPacket reverses EncryptPacket.
func (c *Cipher) DecryptPacket(seq uint64, payload []byte) {
	c.EncryptPacket(seq, payload)
}
