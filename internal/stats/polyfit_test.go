package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolyFitExact(t *testing.T) {
	// p(x) = 2 - 3x + 0.5x^2 sampled exactly must be recovered.
	truth := Polynomial{Coeffs: []float64{2, -3, 0.5}}
	var xs, ys []float64
	for x := -3.0; x <= 3.0; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	p, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Coeffs {
		if !almostEqual(p.Coeffs[i], truth.Coeffs[i], 1e-8) {
			t.Fatalf("coeff %d = %v want %v", i, p.Coeffs[i], truth.Coeffs[i])
		}
	}
	if r2 := RSquared(p, xs, ys); !almostEqual(r2, 1, 1e-12) {
		t.Fatalf("R^2 = %v want 1", r2)
	}
}

func TestPolyFitDegree5(t *testing.T) {
	truth := Polynomial{Coeffs: []float64{1, 0.2, -0.05, 0.3, -0.02, 0.001}}
	var xs, ys []float64
	for x := 0.5; x <= 6; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	p, err := PolyFit(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1.0; x <= 5; x += 0.5 {
		if !almostEqual(p.Eval(x), truth.Eval(x), 1e-6) {
			t.Fatalf("p(%v) = %v want %v", x, p.Eval(x), truth.Eval(x))
		}
	}
}

func TestPolyFitTooFewPoints(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Fatal("expected error for underdetermined fit")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-10) || !almostEqual(b, 2, 1e-10) {
		t.Fatalf("fit = (%v, %v) want (1, 2)", a, b)
	}
}

// Property: a fit of degree d reproduces any polynomial of degree ≤ d
// sampled at d+3 distinct points.
func TestPolyFitRecoversProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		d := 1 + r.Intn(4)
		coeffs := make([]float64, d+1)
		for i := range coeffs {
			coeffs[i] = r.Float64()*4 - 2
		}
		truth := Polynomial{Coeffs: coeffs}
		var xs, ys []float64
		for i := 0; i < d+3; i++ {
			x := float64(i) * 0.7
			xs = append(xs, x)
			ys = append(ys, truth.Eval(x))
		}
		p, err := PolyFit(xs, ys, d)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if math.Abs(p.Eval(x)-truth.Eval(x)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPolynomialEvalHorner(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, 2, 3}}
	if got := p.Eval(2); got != 1+4+12 {
		t.Fatalf("Eval(2) = %v want 17", got)
	}
	if p.Degree() != 2 {
		t.Fatalf("Degree = %d want 2", p.Degree())
	}
}
