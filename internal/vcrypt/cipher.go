// Package vcrypt implements the encryption side of the paper: the three
// symmetric algorithms of Table 1 (AES-128, AES-256, 3DES) in Output
// Feedback mode, applied per packet so that a lost or corrupted packet
// never propagates errors into other packets (Section 5), and the
// encryption policies — which packets of a video flow get encrypted —
// whose delay/distortion/energy trade-off the paper quantifies.
//
// The per-packet hot path is allocation-free: IV derivation reuses a
// cached HMAC state, the keystream is generated inline into per-cipher
// pooled scratch (byte-identical to crypto/cipher's OFB/CTR streams),
// and payloads are XORed in place. Keystreams depend only on the packet
// sequence, so they can also be precomputed ahead of the send schedule
// (Prefetch) and consumed with a single XOR pass.
package vcrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/des"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
)

// Algorithm selects the symmetric cipher of a policy.
type Algorithm int

// The algorithms evaluated in the paper (Table 1), plus the counter-mode
// variants added for the fast-cipher re-sweep. OFB remains the paper's
// mode (and the default everywhere); CTR produces a different keystream
// from the same per-packet IV but has the same erasure semantics — a
// lost packet never damages its neighbours — and pipelines better on
// wide cores because keystream blocks are independent.
const (
	AES128 Algorithm = iota
	AES256
	TripleDES
	AES128CTR
	AES256CTR
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AES128:
		return "AES128"
	case AES256:
		return "AES256"
	case TripleDES:
		return "3DES"
	case AES128CTR:
		return "AES128-CTR"
	case AES256CTR:
		return "AES256-CTR"
	default:
		return "unknown"
	}
}

// KeySize returns the key length in bytes.
func (a Algorithm) KeySize() int {
	switch a {
	case AES128, AES128CTR:
		return 16
	case AES256, AES256CTR:
		return 32
	case TripleDES:
		return 24
	default:
		return 0
	}
}

// counterMode reports whether the algorithm runs its block cipher in CTR
// rather than OFB mode.
func (a Algorithm) counterMode() bool {
	return a == AES128CTR || a == AES256CTR
}

// maxBlockSize is the largest block size across the supported ciphers
// (AES, 16 bytes; 3DES uses 8), sizing the fixed keystream scratch.
const maxBlockSize = aes.BlockSize

// Cipher encrypts and decrypts packet payloads under one pre-established
// symmetric key (the paper assumes key agreement happened a priori,
// Section 3). Each packet is processed in OFB (or CTR) mode under a
// per-packet IV derived from the packet sequence number, so packets are
// independently decryptable and errors do not propagate across packets.
//
// Cipher is safe for concurrent use: mutable per-packet state lives in
// pooled scratch, never in the Cipher itself.
type Cipher struct {
	alg   Algorithm
	block cipher.Block
	// ivKey keys the IV derivation PRF so IVs are not predictable from
	// sequence numbers alone.
	ivKey []byte

	// scratch pools the per-packet mutable state (cached HMAC, keystream
	// block) so the steady-state encrypt path never allocates.
	scratch sync.Pool

	// pre, when non-nil, is the prefetched-keystream cache consumed by
	// EncryptPacket before falling back to inline generation.
	pre atomic.Pointer[prefetchCache]
}

// cipherScratch is the mutable per-packet state: the resettable HMAC used
// for IV derivation (no per-packet hmac.New), its output buffer, and the
// keystream/counter blocks of the inline OFB/CTR generator.
type cipherScratch struct {
	mac hash.Hash
	seq [8]byte
	sum [sha256.Size]byte
	ks  [maxBlockSize]byte
	ctr [maxBlockSize]byte
}

// NewCipher builds a Cipher for the algorithm and key. The key must have
// exactly alg.KeySize() bytes.
func NewCipher(alg Algorithm, key []byte) (*Cipher, error) {
	if len(key) != alg.KeySize() {
		return nil, fmt.Errorf("vcrypt: %v needs a %d-byte key, got %d", alg, alg.KeySize(), len(key))
	}
	var block cipher.Block
	var err error
	switch alg {
	case AES128, AES256, AES128CTR, AES256CTR:
		block, err = aes.NewCipher(key)
	case TripleDES:
		block, err = des.NewTripleDESCipher(key)
	default:
		return nil, fmt.Errorf("vcrypt: unknown algorithm %d", alg)
	}
	if err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("thriftyvid-iv"))
	c := &Cipher{alg: alg, block: block, ivKey: mac.Sum(nil)}
	c.scratch.New = func() interface{} {
		return &cipherScratch{mac: hmac.New(sha256.New, c.ivKey)}
	}
	return c, nil
}

// Algorithm returns the cipher's algorithm.
func (c *Cipher) Algorithm() Algorithm { return c.alg }

// deriveIV computes the per-packet IV for a sequence number into the
// scratch's sum buffer and returns the block-size prefix. The HMAC state
// is cached and reset rather than rebuilt, which removes the dominant
// allocation of the old per-packet path.
func (c *Cipher) deriveIV(s *cipherScratch, seq uint64) []byte {
	s.mac.Reset()
	binary.BigEndian.PutUint64(s.seq[:], seq)
	s.mac.Write(s.seq[:])
	sum := s.mac.Sum(s.sum[:0])
	return sum[:c.block.BlockSize()]
}

// xorKeystream XORs the packet keystream for seq over payload in place.
// The OFB branch is byte-identical to crypto/cipher.NewOFB over the same
// block and IV (keystream blocks E(IV), E(E(IV)), ...); the CTR branch to
// crypto/cipher.NewCTR (E(IV), E(IV+1), ... with big-endian wraparound).
func (c *Cipher) xorKeystream(s *cipherScratch, seq uint64, payload []byte) {
	iv := c.deriveIV(s, seq)
	bs := c.block.BlockSize()
	if c.alg.counterMode() {
		copy(s.ctr[:bs], iv)
		for off := 0; off < len(payload); off += bs {
			c.block.Encrypt(s.ks[:bs], s.ctr[:bs])
			for i := bs - 1; i >= 0; i-- {
				s.ctr[i]++
				if s.ctr[i] != 0 {
					break
				}
			}
			n := len(payload) - off
			if n > bs {
				n = bs
			}
			subtle.XORBytes(payload[off:off+n], payload[off:off+n], s.ks[:n])
		}
		return
	}
	copy(s.ks[:bs], iv)
	for off := 0; off < len(payload); off += bs {
		c.block.Encrypt(s.ks[:bs], s.ks[:bs])
		n := len(payload) - off
		if n > bs {
			n = bs
		}
		subtle.XORBytes(payload[off:off+n], payload[off:off+n], s.ks[:n])
	}
}

// keystreamInto fills dst with the raw keystream for seq (what
// xorKeystream would XOR over a payload of len(dst) bytes).
func (c *Cipher) keystreamInto(s *cipherScratch, seq uint64, dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	c.xorKeystream(s, seq, dst)
}

// EncryptPacket encrypts payload in place using the per-packet keystream
// keyed by the packet sequence number. OFB and CTR keystream modes are
// involutions: decrypting is the same operation, which DecryptPacket
// makes explicit. The steady-state path performs zero heap allocations.
func (c *Cipher) EncryptPacket(seq uint64, payload []byte) {
	if pc := c.pre.Load(); pc != nil {
		if pc.consume(seq, payload) {
			return
		}
	}
	s := c.scratch.Get().(*cipherScratch)
	c.xorKeystream(s, seq, payload)
	c.scratch.Put(s)
}

// EncryptPackets encrypts a batch of packets in place, payloads[i] under
// sequence baseSeq+i. One scratch acquisition serves the whole batch, so
// it is the preferred form for the packetize-encrypt-send hot loop.
func (c *Cipher) EncryptPackets(baseSeq uint64, payloads [][]byte) {
	s := c.scratch.Get().(*cipherScratch)
	for i, p := range payloads {
		c.xorKeystream(s, baseSeq+uint64(i), p)
	}
	c.scratch.Put(s)
}

// DecryptPacket reverses EncryptPacket.
func (c *Cipher) DecryptPacket(seq uint64, payload []byte) {
	c.EncryptPacket(seq, payload)
}

// prefetchCache holds keystreams computed ahead of the send schedule.
// Entries are consumed (removed) on use; stale entries are swept once the
// cache exceeds its cap, so a seq that is never encrypted (the policy
// skipped it) cannot grow the cache without bound.
type prefetchCache struct {
	mu  sync.Mutex
	ks  map[uint64]*ksBuf
	buf sync.Pool // *ksBuf; pooling the pointer avoids boxing allocations
}

// ksBuf wraps a keystream buffer so it can move between the cache map and
// the free pool without allocating a slice-header box on every transfer.
type ksBuf struct {
	b []byte
}

// prefetchCap bounds the number of cached keystreams.
const prefetchCap = 4096

func (pc *prefetchCache) consume(seq uint64, payload []byte) bool {
	pc.mu.Lock()
	ks, ok := pc.ks[seq]
	if ok {
		delete(pc.ks, seq)
	}
	pc.mu.Unlock()
	if !ok {
		return false
	}
	if len(ks.b) < len(payload) {
		pc.buf.Put(ks)
		return false
	}
	subtle.XORBytes(payload, payload, ks.b[:len(payload)])
	pc.buf.Put(ks)
	return true
}

func (pc *prefetchCache) store(seq uint64, ks *ksBuf) {
	pc.mu.Lock()
	if len(pc.ks) >= prefetchCap {
		// Sweep arbitrary stale entries; correctness never depends on a
		// hit, only speed does.
		for k := range pc.ks {
			delete(pc.ks, k)
			if len(pc.ks) < prefetchCap/2 {
				break
			}
		}
	}
	pc.ks[seq] = ks
	pc.mu.Unlock()
}

// Prefetch computes the keystreams for packets [baseSeq, baseSeq+count)
// of up to size bytes each and caches them for EncryptPacket to consume
// with a single XOR pass. It runs synchronously; callers overlap it with
// other work (the paced sender runs it while sleeping until the next
// frame is due). Prefetching is purely an optimisation: output bytes are
// identical whether a packet's keystream was prefetched or generated
// inline, and a miss (size too small, entry swept) falls back to the
// inline path.
func (c *Cipher) Prefetch(baseSeq uint64, count, size int) {
	if count <= 0 || size <= 0 {
		return
	}
	pc := c.pre.Load()
	if pc == nil {
		pc = &prefetchCache{ks: make(map[uint64]*ksBuf)}
		pc.buf.New = func() interface{} { return &ksBuf{b: make([]byte, 0, size)} }
		if !c.pre.CompareAndSwap(nil, pc) {
			pc = c.pre.Load()
		}
	}
	s := c.scratch.Get().(*cipherScratch)
	for i := 0; i < count; i++ {
		ks := pc.buf.Get().(*ksBuf)
		if cap(ks.b) < size {
			ks.b = make([]byte, 0, size)
		}
		ks.b = ks.b[:size]
		c.keystreamInto(s, baseSeq+uint64(i), ks.b)
		pc.store(baseSeq+uint64(i), ks)
	}
	c.scratch.Put(s)
}
