package stats

import (
	"math"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("Mean = %v want 5", m)
	}
	// Sample variance with n-1: sum of squared dev = 32, /7.
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v want %v", v, 32.0/7)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input conventions violated")
	}
}

func TestMoment(t *testing.T) {
	xs := []float64{1, 2, 3}
	if m := Moment(xs, 2); !almostEqual(m, (1.0+4+9)/3, 1e-12) {
		t.Fatalf("second moment = %v", m)
	}
	if m := Moment(xs, 1); !almostEqual(m, 2, 1e-12) {
		t.Fatalf("first moment = %v", m)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 0.5); !almostEqual(p, 3, 1e-12) {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 0.25); !almostEqual(p, 2, 1e-12) {
		t.Fatalf("p25 = %v", p)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 12, 9, 11, 10, 10,
		11, 9, 12, 10, 11, 9, 10, 12, 11, 10} // 20 samples like the paper
	s := Summarize(xs)
	if s.N != 20 {
		t.Fatalf("N = %d", s.N)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI95 must be positive for varied samples")
	}
	// Half width = t(19) * sd / sqrt(20)
	want := 2.093 * s.StdDev / math.Sqrt(20)
	if !almostEqual(s.CI95, want, 1e-12) {
		t.Fatalf("CI95 = %v want %v", s.CI95, want)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -5, 10}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(123)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %v", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	n := 200000
	rate := 4.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	if m := sum / float64(n); math.Abs(m-0.25) > 0.01 {
		t.Fatalf("exp mean = %v want 0.25", m)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(99)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-3) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Fatalf("norm moments = (%v, %v)", mean, sd)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(17)
	p := 0.3
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p
	if m := sum / float64(n); math.Abs(m-want) > 0.05 {
		t.Fatalf("geometric mean = %v want %v", m, want)
	}
}

func TestRNGGeometricEdge(t *testing.T) {
	r := NewRNG(1)
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(2)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
