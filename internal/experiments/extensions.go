package experiments

import (
	"fmt"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/evalvid"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

// ExtensionsTable quantifies the reproduction's beyond-the-paper
// extensions in one run: header-only selective encryption (reference [24]
// style), the pad-to-MTU traffic-analysis countermeasure, and the
// always-encrypted audio mux of the paper's future-work section. Each row
// is one variant of the same fast-motion transfer.
func ExtensionsTable(f *Fixture) (*Table, error) {
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		return nil, err
	}
	device := SamsungDevice()
	t := &Table{
		Title: "Extensions: header-only encryption, padding, audio mux (fast motion, GOP=30, 3DES)",
		Columns: []string{
			"variant", "delay(ms)", "eav PSNR(dB)", "power(W)", "size-attack acc(%)", "guess base(%)",
		},
	}
	type variant struct {
		name  string
		setup func(*transport.Session)
	}
	variants := []variant{
		{"all (full payload)", func(s *transport.Session) {}},
		{"all (header-only 64B)", func(s *transport.Session) { s.Policy.HeaderOnlyBytes = 64 }},
		{"I-only", func(s *transport.Session) { s.Policy.Mode = vcrypt.ModeIFrames }},
		{"I-only + pad-to-MTU", func(s *transport.Session) {
			s.Policy.Mode = vcrypt.ModeIFrames
			s.PadToMTU = true
		}},
		{"all + audio mux", func(s *transport.Session) {
			s.Audio = audio.Generate(8000, float64(len(s.Encoded))/s.FPS, 4)
		}},
	}
	for _, v := range variants {
		pol := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.TripleDES}
		s := f.Session(w, pol, device, f.opts.Seed+99)
		v.setup(&s)
		res, err := transport.RunUDP(s, f.opts.Seed+99)
		if err != nil {
			return nil, err
		}
		ev, err := codec.DecodeSequence(res.EavesFrames, s.Config)
		if err != nil {
			return nil, err
		}
		q, err := evalvid.Evaluate(w.Clip, ev)
		if err != nil {
			return nil, err
		}
		// Mount the size side channel on the capture.
		var obs []traffic.Observation
		var labels []bool
		for _, rec := range res.Records {
			if rec.EavesGot && !rec.Audio {
				obs = append(obs, traffic.Observation{Size: rec.Size, Time: rec.Departure})
				labels = append(labels, rec.IFrame)
			}
		}
		acc, base := 0.0, 0.0
		if len(obs) > 0 {
			clf, err := traffic.TrainSizeClassifier(obs, labels)
			if err != nil {
				return nil, err
			}
			acc = traffic.Accuracy(clf, obs, labels)
			base = traffic.BaseRate(labels)
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			ms(res.MeanSojourn),
			f2(q.PSNR),
			f2(res.AveragePowerW),
			fmt.Sprintf("%.1f", acc*100),
			fmt.Sprintf("%.1f", base*100),
		})
	}
	t.Notes = append(t.Notes,
		"header-only matches full-payload confidentiality at roughly half the delay",
		"an attack accuracy at the guess base rate means the size channel is closed",
		"fast-motion P-frames fragment to MTU size themselves, so the size channel is weak here to begin with; examples/trafficanalysis shows the slow-motion case where padding matters",
		"audio packets are small, so muxing audio lowers the per-packet mean while adding its own (fully encrypted) traffic")
	return t, nil
}

// SNRSweepTable sweeps the eavesdropper's channel quality (its distance
// from the sender, expressed as SNR) under plaintext and I-frame
// encryption: without encryption confidentiality degrades gracefully with
// the eavesdropper's channel, with encryption it is gone even for an
// adjacent eavesdropper with a perfect channel — the reason selective
// encryption, not distance, is the defence.
func SNRSweepTable(f *Fixture) (*Table, error) {
	w, err := f.Workload(video.MotionLow, 30)
	if err != nil {
		return nil, err
	}
	device := SamsungDevice()
	t := &Table{
		Title:   "Extension: eavesdropper PSNR vs its channel SNR (slow motion, GOP=30, AES256)",
		Columns: []string{"eaves SNR(dB)", "rate", "plaintext PSNR(dB)", "I-encrypted PSNR(dB)"},
	}
	phy := wifi.PHY80211g()
	for _, snr := range []float64{30, 16, 13, 11} {
		row := []string{fmt.Sprintf("%.0f", snr)}
		var rateName string
		for _, mode := range []vcrypt.Mode{vcrypt.ModeNone, vcrypt.ModeIFrames} {
			med, err := wifi.NewMediumFromSNR(phy, f.opts.Stations, 30, snr, MTU, stats.NewRNG(f.opts.Seed+7))
			if err != nil {
				return nil, err
			}
			rateName = fmt.Sprintf("%dM", med.Rate())
			pol := vcrypt.Policy{Mode: mode, Alg: vcrypt.AES256}
			s := f.Session(w, pol, device, f.opts.Seed+7)
			s.Medium = med
			res, err := transport.RunUDP(s, f.opts.Seed+7)
			if err != nil {
				return nil, err
			}
			ev, err := codec.DecodeSequence(res.EavesFrames, s.Config)
			if err != nil {
				return nil, err
			}
			q, err := evalvid.Evaluate(w.Clip, ev)
			if err != nil {
				return nil, err
			}
			if mode == vcrypt.ModeNone {
				row = append(row, rateName, f2(q.PSNR))
			} else {
				row = append(row, f2(q.PSNR))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"plaintext leaks less as the eavesdropper's channel worsens; encryption floors the leak regardless of SNR")
	return t, nil
}
