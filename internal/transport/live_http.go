package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/ledger"
	"repro/internal/netem"
	"repro/internal/vcrypt"
)

// HTTP/TCP transfer mode (Section 6.4). The upload body is a sequence of
// segments, each carrying the encrypted-flag in its header — the paper's
// "Marker bit in the option header" moved into an application framing
// header, which is equivalent for the receiver's decrypt-or-not decision:
//
//	flags(1) | seq(8, big endian) | length(4) | payload
//
// The eavesdropper overhears the TCP stream on the WiFi channel; the
// server exposes a Tap so a capture pipeline with its own loss filter can
// be attached, standing in for tcpdump on the open network.

const segmentHeaderSize = 1 + 8 + 4

const flagEncrypted = 0x01

// NextSeqHeader carries the server's next-needed (highest contiguous)
// sequence number on every response, so an interrupted client can resume
// from exactly where the server stopped instead of re-sending the clip.
const NextSeqHeader = "X-Thrifty-Next-Seq"

// RestartHeader announces a fresh sequence epoch on a POST: the client
// abandoned the previous stream (e.g. after a reduced-quality re-encode)
// and restarts at the given base sequence. The epoch jump keeps per-seq
// cipher IVs unique across the old and new clip bytes.
const RestartHeader = "X-Thrifty-Restart"

// SessionHeader names the upload session a request belongs to, letting
// one server carry many tenants' clips at once, each with its own
// reassembler and resume cursor. Requests without it use the default
// session, preserving the original single-flow behaviour.
const SessionHeader = "X-Thrifty-Session"

// putSegmentHeader writes the header of an n-byte segment into hdr's
// first segmentHeaderSize bytes. The flags byte is stored
// unconditionally: on the zero-copy path hdr is the headroom of a
// recycled wire buffer still holding a previous packet's bytes.
func putSegmentHeader(hdr []byte, seq uint64, encrypted bool, n int) {
	hdr[0] = 0
	if encrypted {
		hdr[0] = flagEncrypted
	}
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(n))
}

// WriteSegment frames one payload.
func WriteSegment(w io.Writer, seq uint64, encrypted bool, payload []byte) error {
	var hdr [segmentHeaderSize]byte
	putSegmentHeader(hdr[:], seq, encrypted, len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadSegment parses one framed segment.
func ReadSegment(r io.Reader) (seq uint64, encrypted bool, payload []byte, err error) {
	var hdr [segmentHeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	encrypted = hdr[0]&flagEncrypted != 0
	seq = binary.BigEndian.Uint64(hdr[1:9])
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > 1<<24 {
		return 0, false, nil, fmt.Errorf("transport: implausible segment of %d bytes", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, false, nil, err
	}
	return seq, encrypted, payload, nil
}

// httpSession is the reassembly state of one upload session: one
// tenant's clip, resume cursor and duplicate accounting.
type httpSession struct {
	// writerMu serializes whole POST bodies for the session. Without it,
	// two concurrent uploaders interleave their segment streams against
	// the shared next/asm cursor, and a stale retry carrying
	// RestartHeader swaps the reassembler out from under an in-flight
	// upload mid-body. One writer proceeds, the others wait their turn
	// and then resume from the cursor the winner advanced.
	writerMu sync.Mutex

	mu       sync.Mutex
	asm      *codec.Reassembler
	segments int
	next     uint64 // next-needed sequence (all below arrived contiguously)
	dups     int    // already-acknowledged segments received again
}

// HTTPUploadServer receives video uploads, decrypts marked segments and
// reassembles the clip, playing the commercial-upload-endpoint role of
// Section 6.4. The embedded httpSession is the default session (requests
// without SessionHeader); named sessions live in the sessions map, so
// one server instance carries many concurrent tenants.
type HTTPUploadServer struct {
	cfg    codec.Config
	cipher *vcrypt.Cipher

	// HeaderOnlyBytes mirrors the sender's Policy.HeaderOnlyBytes
	// (0 = whole payload is encrypted). Set before serving.
	HeaderOnlyBytes int

	httpSession // default session ("")

	smu      sync.Mutex
	sessions map[string]*httpSession

	// Tap, when non-nil, sees every segment exactly as it crossed the
	// wire (still encrypted), emulating a radio capture of the TCP
	// stream.
	Tap func(seq uint64, encrypted bool, payload []byte)
}

// NewHTTPUploadServer builds the handler state.
func NewHTTPUploadServer(cfg codec.Config, alg vcrypt.Algorithm, key []byte) (*HTTPUploadServer, error) {
	asm, err := codec.NewReassembler(cfg)
	if err != nil {
		return nil, err
	}
	cipher, err := vcrypt.NewCipher(alg, key)
	if err != nil {
		return nil, err
	}
	return &HTTPUploadServer{cfg: cfg, cipher: cipher, httpSession: httpSession{asm: asm}}, nil
}

// session returns the state for the given session ID, creating named
// sessions on first use.
func (s *HTTPUploadServer) session(id string) (*httpSession, error) {
	if id == "" {
		return &s.httpSession, nil
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	if sess := s.sessions[id]; sess != nil {
		return sess, nil
	}
	asm, err := codec.NewReassembler(s.cfg)
	if err != nil {
		return nil, err
	}
	sess := &httpSession{asm: asm}
	if s.sessions == nil {
		s.sessions = make(map[string]*httpSession)
	}
	s.sessions[id] = sess
	return sess, nil
}

// peek returns the session's state without creating it; nil when the
// named session does not exist yet.
func (s *HTTPUploadServer) peek(id string) *httpSession {
	if id == "" {
		return &s.httpSession
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.sessions[id]
}

// ServeHTTP implements http.Handler: POST uploads marker-tagged
// segments; GET/HEAD report the resume point in NextSeqHeader so a
// client whose connection died mid-upload continues from the first
// unacknowledged segment.
func (s *HTTPUploadServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	sid := req.Header.Get(SessionHeader)
	switch req.Method {
	case http.MethodGet, http.MethodHead:
		next := s.SessionNextSeq(sid)
		w.Header().Set(NextSeqHeader, strconv.FormatUint(next, 10))
		w.WriteHeader(http.StatusOK)
		if req.Method == http.MethodGet {
			fmt.Fprintf(w, "next %d\n", next) //lint:allow bitioerr best-effort status body; the header already carried the answer
		}
		return
	case http.MethodPost:
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
		return
	}
	sess, err := s.session(sid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// One POST body per session at a time (see httpSession.writerMu):
	// losers of the race block here and then resume cleanly from
	// whatever cursor the winner left behind.
	sess.writerMu.Lock()
	defer sess.writerMu.Unlock()
	if h := req.Header.Get(RestartHeader); h != "" {
		base, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			http.Error(w, "bad restart base", http.StatusBadRequest)
			return
		}
		if err := s.restart(sess, base); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	br := bufio.NewReader(req.Body)
	count := 0
	for {
		seq, encrypted, payload, err := ReadSegment(br) //lint:allow lockheld writerMu exists to serialize whole POST bodies per session; a slow body only stalls that session's own concurrent retries, never another tenant
		if err == io.EOF {
			break
		}
		if err != nil {
			// The link died mid-segment: keep everything already
			// reassembled so the client can resume from NextSeq.
			w.Header().Set(NextSeqHeader, strconv.FormatUint(s.SessionNextSeq(sid), 10))
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.Tap != nil {
			tapCopy := append([]byte(nil), payload...)
			s.Tap(seq, encrypted, tapCopy)
		}
		sess.mu.Lock()
		if seq < sess.next {
			// Duplicate of acknowledged data (a resume overshot): count
			// and drop — re-adding would double-decrypt the payload.
			sess.dups++
			sess.segments++
			sess.mu.Unlock()
			mServerSegments.Inc()
			mServerDuplicates.Inc()
			continue
		}
		if seq > sess.next {
			next := sess.next
			sess.mu.Unlock()
			w.Header().Set(NextSeqHeader, strconv.FormatUint(next, 10))
			http.Error(w, fmt.Sprintf("gap: got seq %d, need %d", seq, next), http.StatusConflict)
			return
		}
		if encrypted {
			span := len(payload)
			if s.HeaderOnlyBytes > 0 && s.HeaderOnlyBytes < span {
				span = s.HeaderOnlyBytes
			}
			s.cipher.DecryptPacket(seq, payload[:span])
		}
		if err := sess.asm.Add(payload); err == nil {
			count++
		}
		sess.segments++
		sess.next++
		sess.mu.Unlock()
		mServerSegments.Inc()
	}
	next := s.SessionNextSeq(sid)
	w.Header().Set(NextSeqHeader, strconv.FormatUint(next, 10))
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok %d next %d\n", count, next) //lint:allow bitioerr best-effort status body; the header already carried the answer
}

// restart abandons the session's current reassembly and expects its
// stream to begin again at the given base sequence. Caller holds the
// session's writerMu, so no upload is mid-body when the swap happens.
func (s *HTTPUploadServer) restart(sess *httpSession, base uint64) error {
	asm, err := codec.NewReassembler(s.cfg)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	sess.asm = asm
	sess.next = base
	sess.mu.Unlock()
	return nil
}

// NextSeq returns the next sequence number the server needs — everything
// below it arrived contiguously and is acknowledged.
func (s *HTTPUploadServer) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// DuplicateSegments returns how many already-acknowledged segments were
// received again (zero when resumes never overshoot).
func (s *HTTPUploadServer) DuplicateSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Frames returns the reassembled clip.
func (s *HTTPUploadServer) Frames(total int) []*codec.EncodedFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asm.Frames(total)
}

// Segments returns how many segments arrived.
func (s *HTTPUploadServer) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segments
}

// SessionNextSeq returns the resume point of the given session (0 for a
// named session that has not uploaded yet). The empty ID is the default
// session.
func (s *HTTPUploadServer) SessionNextSeq(id string) uint64 {
	sess := s.peek(id)
	if sess == nil {
		return 0
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.next
}

// SessionSegments returns how many segments the given session received.
func (s *HTTPUploadServer) SessionSegments(id string) int {
	sess := s.peek(id)
	if sess == nil {
		return 0
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.segments
}

// SessionDuplicates returns how many already-acknowledged segments the
// given session received again.
func (s *HTTPUploadServer) SessionDuplicates(id string) int {
	sess := s.peek(id)
	if sess == nil {
		return 0
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.dups
}

// SessionFrames returns the given session's reassembled clip (nil for a
// named session that never uploaded).
func (s *HTTPUploadServer) SessionFrames(id string, total int) []*codec.EncodedFrame {
	sess := s.peek(id)
	if sess == nil {
		return nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.asm.Frames(total)
}

// Sessions returns the IDs of the named sessions seen so far (the
// default session is not listed).
func (s *HTTPUploadServer) Sessions() []string {
	s.smu.Lock()
	defer s.smu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	return ids
}

// HTTPUploadReport summarises a live HTTP upload.
type HTTPUploadReport struct {
	Segments  int
	Encrypted int
	Bytes     int
	Elapsed   time.Duration
}

// LiveHTTPUpload streams the session to the server URL as one POST,
// optionally pacing the body through a netem.Pacer to emulate the WiFi
// bottleneck.
func LiveHTTPUpload(s Session, url string, pacer *netem.Pacer) (HTTPUploadReport, error) {
	var rep HTTPUploadReport
	if err := s.Validate(); err != nil {
		return rep, err
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return rep, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return rep, err
	}
	ledger.Emit(ledger.EventPolicy, "http", 0, 0, s.Policy.Name())
	pr, pw := io.Pipe()
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		defer pw.Close()
		pool := codec.NewBufPool()
		var wps []codec.WirePacket
		seq := uint64(0)
		for _, ef := range s.Encoded {
			var err error
			wps, err = codec.PacketizeInto(ef, s.MTU, segmentHeaderSize, pool, wps[:0])
			if err != nil {
				errCh <- err
				pw.CloseWithError(err) //lint:allow bitioerr pipe CloseWithError is documented to always return nil
				return
			}
			for i := range wps {
				pkt := &wps[i]
				payload := pkt.Payload
				encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
				// The segment header lands in the buffer's headroom and
				// the payload is encrypted where it already lies, so the
				// whole segment crosses the pipe in one copy-free write.
				wire := pkt.Wire(len(payload))
				putSegmentHeader(wire, seq, encrypted, len(payload))
				if encrypted {
					cipher.EncryptPacket(seq, wire[segmentHeaderSize:][:s.Policy.EncryptSpan(len(payload))])
					rep.Encrypted++
					if span := s.Policy.EncryptSpan(len(payload)); span < len(payload) {
						ledger.Emit(ledger.EventHeaderOnly, "http", seq, uint64(span), "")
					}
				} else {
					ledger.Emit(ledger.EventPlainPacket, "http", seq, uint64(len(payload)), "")
				}
				if pacer != nil {
					pacer.Wait(len(wire))
				}
				if _, err := pw.Write(wire); err != nil {
					pool.Put(pkt)
					errCh <- err
					return
				}
				pool.Put(pkt)
				rep.Segments++
				rep.Bytes += len(wire)
				seq++
			}
		}
		errCh <- nil
	}()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		return rep, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if s.SessionID != "" {
		req.Header.Set(SessionHeader, s.SessionID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("transport: upload failed with status %s", resp.Status)
	}
	if err := <-errCh; err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
