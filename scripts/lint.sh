#!/bin/sh
# lint.sh reproduces the CI lint gate locally: formatting, vet, the
# zero-dependency check on the root module, the analyzer module's own
# tests, and the thriftylint invariant suite over the whole tree.
# Run from anywhere inside the repository.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet (root module)"
go vet ./...

echo "==> zero-dependency check (root module)"
deps=$(go list -m all)
if [ "$deps" != "repro" ]; then
    echo "root module grew dependencies:" >&2
    echo "$deps" >&2
    exit 1
fi

echo "==> zero-dependency check (tools/analyzers)"
adeps=$(cd tools/analyzers && go list -m all)
if [ "$adeps" != "repro/tools/analyzers" ]; then
    echo "analyzer module grew dependencies:" >&2
    echo "$adeps" >&2
    exit 1
fi

echo "==> go vet + go test (tools/analyzers)"
(cd tools/analyzers && go vet ./... && go test ./...)

echo "==> thriftylint (14 passes + stale-suppression check; timed — CI pins the analysis budget)"
lint_start=$(date +%s)
(cd tools/analyzers && go run ./cmd/thriftylint -staleallow -C "$root" ./...)
echo "thriftylint sweep took $(($(date +%s) - lint_start))s (load + 14 passes)"

echo "==> lintmut (quick mutation subset; CI runs the full set)"
(cd tools/analyzers && go run ./cmd/lintmut -root "$root" -quick)

echo "lint OK"
