// Package exhaustenum keeps switches over the module's enum-like types
// honest. The codec's FrameType, the vcrypt policy modes and the cipher
// algorithms are closed sets today but are designed to grow (a B-frame
// class, a new degradation rung); a switch that silently falls through
// for the new member is exactly the kind of bug that ships. The pass
// requires every switch whose tag is a module-local constant set to
// either cover all members or carry an explicit default clause — the
// default documents that falling through was a decision, not an
// accident.
//
// A type counts as an enum when it is a named, module-local type with
// at least two package-scope constants of exactly that type. Case arms
// are compared by constant value, so aliases (two names for one value)
// count as covering each other. Tag-less switches and type switches are
// out of scope.
package exhaustenum

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/tools/analyzers/lintkit"
)

// modulePrefix gates the check to types the repository owns; standard
// library "enums" (reflect.Kind and friends) follow their own evolution
// rules.
const modulePrefix = "repro"

// Analyzer is the exhaustenum pass.
var Analyzer = &lintkit.Analyzer{
	Name: "exhaustenum",
	Doc: "Requires switches over module-local enum types (codec.FrameType, " +
		"vcrypt.Mode, vcrypt.Algorithm, ...) to either cover every declared " +
		"member or state a default clause, so new members cannot silently " +
		"fall through existing dispatch sites.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *lintkit.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, members := enumMembers(tv.Type)
	if named == nil || len(members) < 2 {
		return
	}
	covered := make(map[string]bool)
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author decided
		}
		for _, e := range cc.List {
			v := pass.TypesInfo.Types[e].Value
			if v == nil {
				return // non-constant case arm: cannot reason statically
			}
			covered[v.ExactString()] = true
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m.val.ExactString()] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s.%s is not exhaustive: missing %s (add the cases or an explicit default stating why falling through is safe)",
		named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
}

type member struct {
	name string
	val  constant.Value
}

// enumMembers returns the named type and its package-scope constant
// members when t is a module-local enum, or (nil, nil).
func enumMembers(t types.Type) (*types.Named, []member) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil, nil
	}
	if path := pkg.Path(); path != modulePrefix && !strings.HasPrefix(path, modulePrefix+"/") {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil, nil
	}
	var members []member
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		members = append(members, member{name: name, val: c.Val()})
	}
	return named, members
}
