package ivunique_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/ivunique"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTestModule(t, ivunique.Analyzer, "testdata/flagged")
}

func TestAllowed(t *testing.T) {
	lintkit.RunTestModule(t, ivunique.Analyzer, "testdata/allowed")
}
