package transport

// The sanctioned helper file: raw wrap arithmetic here IS the
// implementation of the wrap-safe API, so the pass skips the file by
// name.

type extender struct {
	epoch uint64
	last  uint16
}

func (x *extender) extend(seq uint16) uint64 {
	ref := x.epoch | uint64(x.last)
	best := x.epoch | uint64(seq)
	if best > ref {
		x.last = seq
	}
	delta := seq - x.last // wrapping distance, on purpose
	_ = delta
	return best
}
