package transport

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// Two concurrent uploaders plus a straggling restart retry against one
// session. Before per-session serialization, the three bodies
// interleaved against the shared next/asm cursor and the restart swapped
// the reassembler out from under an in-flight upload; run under -race
// this caught both the data race and the corruption. Now one body runs
// at a time, so whatever the interleaving, the final state is exactly
// one intact clip.
func TestHTTPUploadConcurrentWritersAndStragglingRestart(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionMedium, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := len(segs)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = LiveHTTPUpload(s, hs.URL, nil)
		}(i)
	}
	// The straggler: a stale retry carrying RestartHeader for the epoch
	// base, racing the live uploads with a full body of its own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{}
		_, _, _, next, perr := postSegments(client, hs.URL, "", segs, "0", nil, 10*time.Second)
		if perr == nil && next != uint64(n) {
			perr = errTestRestartShort{got: next, want: uint64(n)}
		}
		errs[2] = perr
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	if got := srv.NextSeq(); got != uint64(n) {
		t.Fatalf("next %d after the dust settled, want %d", got, n)
	}
	if got := srv.Segments(); got != 3*n {
		t.Fatalf("server counted %d segments, want %d", got, 3*n)
	}
	// The restart body is fresh after its reset; of the other two, the
	// ones running after a completed body are pure duplicates. Any
	// serialization order therefore yields n or 2n duplicates.
	if d := srv.DuplicateSegments(); d != n && d != 2*n {
		t.Fatalf("server counted %d duplicates, want %d or %d", d, n, 2*n)
	}
	ref, err := codec.DecodeSequence(s.Encoded, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(decodeServer(t, srv, s.Config, len(s.Encoded)), ref) {
		t.Fatal("reassembled clip differs from the encoded reference")
	}
}

type errTestRestartShort struct{ got, want uint64 }

func (e errTestRestartShort) Error() string {
	return "restart body acknowledged short"
}

// Named sessions are isolated: concurrent tenants never see each
// other's cursor, duplicates or frames, and the default session stays
// untouched.
func TestHTTPUploadNamedSessionsIsolated(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionMedium, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(segs))

	ids := []string{"tenant-a", "tenant-b", "tenant-c"}
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			si := s
			si.SessionID = id
			_, errs[i] = LiveHTTPUpload(si, hs.URL, nil)
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %s: %v", ids[i], err)
		}
	}

	ref, err := codec.DecodeSequence(s.Encoded, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if got := srv.SessionNextSeq(id); got != n {
			t.Fatalf("session %s next %d, want %d", id, got, n)
		}
		if d := srv.SessionDuplicates(id); d != 0 {
			t.Fatalf("session %s absorbed %d duplicates from its neighbours", id, d)
		}
		if got := srv.SessionSegments(id); got != int(n) {
			t.Fatalf("session %s counted %d segments, want %d", id, got, n)
		}
		frames, err := codec.DecodeSequence(srv.SessionFrames(id, len(s.Encoded)), s.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !framesEqual(frames, ref) {
			t.Fatalf("session %s clip differs from the reference", id)
		}
	}
	if got := srv.NextSeq(); got != 0 {
		t.Fatalf("default session advanced to %d on named traffic", got)
	}
	if got := len(srv.Sessions()); got != len(ids) {
		t.Fatalf("server lists %d sessions, want %d", got, len(ids))
	}
}
