//go:build race

package codec

// raceEnabled reports that this test binary was built with -race, under
// which sync.Pool deliberately drops items at random — allocation-count
// assertions are meaningless there.
const raceEnabled = true
