package ledger

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeLedger runs n entries through an appender into a buffer and
// returns the sealed ledger bytes.
func writeLedger(t testing.TB, n int, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	a := NewAppender(&buf, cfg)
	for i := 0; i < n; i++ {
		e := Entry{
			Type:  EventType(i % int(EventReject+1)),
			Actor: "test",
			A:     uint64(i),
			B:     uint64(i * 3),
			Note:  "n",
		}
		if !a.AppendBlocking(e) {
			t.Fatalf("append %d refused", i)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func TestVerifyAcceptsUntampered(t *testing.T) {
	raw := writeLedger(t, 1000, Config{BatchSize: 64, MaxWait: time.Hour})
	rep, err := Verify(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("verify rejected untampered ledger: %v", err)
	}
	if rep.Entries != 1000 {
		t.Fatalf("verified %d entries, want 1000", rep.Entries)
	}
	if want := uint64((1000 + 63) / 64); rep.Batches != want {
		t.Fatalf("verified %d batches, want %d", rep.Batches, want)
	}
	var byType uint64
	for _, c := range rep.ByType {
		byType += c
	}
	if byType != rep.Entries {
		t.Fatalf("ByType sums to %d, want %d", byType, rep.Entries)
	}
}

func TestVerifyCatchesFlippedByte(t *testing.T) {
	raw := writeLedger(t, 300, Config{BatchSize: 32, MaxWait: time.Hour})
	// Flip one byte in an entry's actor field mid-file. Every position
	// inside a quoted string value keeps the JSON parseable, so the
	// failure must come from hashing, not parsing.
	idx := bytes.Index(raw, []byte(`"actor":"test"`))
	if idx < 0 {
		t.Fatal("no actor field found")
	}
	tampered := append([]byte(nil), raw...)
	tampered[idx+len(`"actor":"t`)] ^= 0x01
	if _, err := Verify(bytes.NewReader(tampered)); err == nil {
		t.Fatal("verify accepted a ledger with a flipped byte")
	} else if !strings.Contains(err.Error(), "merkle root mismatch") {
		t.Fatalf("flipped byte rejected for the wrong reason: %v", err)
	}
}

func TestVerifyCatchesDroppedEntry(t *testing.T) {
	raw := writeLedger(t, 300, Config{BatchSize: 32, MaxWait: time.Hour})
	lines := splitLines(raw)
	if len(lines) < 3 {
		t.Fatalf("want >=3 batches, got %d", len(lines))
	}
	// Excise one entry object from the middle batch's "e" array.
	mid := lines[1]
	start := bytes.Index(mid, []byte(`},{"s":`))
	if start < 0 {
		t.Fatal("no entry boundary found")
	}
	end := bytes.Index(mid[start+1:], []byte(`},{"s":`))
	if end < 0 {
		t.Fatal("no second entry boundary found")
	}
	tampered := append([]byte(nil), mid[:start+1]...)
	tampered = append(tampered, mid[start+1+end+1:]...)
	lines[1] = tampered
	if _, err := Verify(bytes.NewReader(joinLines(lines))); err == nil {
		t.Fatal("verify accepted a ledger with a dropped entry")
	}
}

func TestVerifyCatchesReorderedBatch(t *testing.T) {
	raw := writeLedger(t, 300, Config{BatchSize: 32, MaxWait: time.Hour})
	lines := splitLines(raw)
	if len(lines) < 3 {
		t.Fatalf("want >=3 batches, got %d", len(lines))
	}
	lines[0], lines[1] = lines[1], lines[0]
	if _, err := Verify(bytes.NewReader(joinLines(lines))); err == nil {
		t.Fatal("verify accepted a ledger with reordered batches")
	}
}

func TestVerifyCatchesDroppedBatch(t *testing.T) {
	raw := writeLedger(t, 300, Config{BatchSize: 32, MaxWait: time.Hour})
	lines := splitLines(raw)
	if len(lines) < 3 {
		t.Fatalf("want >=3 batches, got %d", len(lines))
	}
	lines = append(lines[:1], lines[2:]...)
	if _, err := Verify(bytes.NewReader(joinLines(lines))); err == nil {
		t.Fatal("verify accepted a ledger with a missing batch")
	}
}

func TestVerifyCatchesUnknownKind(t *testing.T) {
	raw := writeLedger(t, 10, Config{BatchSize: 32, MaxWait: time.Hour})
	tampered := bytes.Replace(raw, []byte(`"k":"policy"`), []byte(`"k":"bogus"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("no policy entry to rename")
	}
	if _, err := Verify(bytes.NewReader(tampered)); err == nil {
		t.Fatal("verify accepted an unknown event kind")
	}
}

func splitLines(raw []byte) [][]byte {
	parts := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	out := make([][]byte, len(parts))
	for i, p := range parts {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

func joinLines(lines [][]byte) []byte {
	var buf bytes.Buffer
	for _, l := range lines {
		buf.Write(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func TestMaxWaitSealsPartialBatch(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	a := NewAppender(w, Config{BatchSize: 1 << 20, MaxWait: 10 * time.Millisecond})
	defer a.Close()
	a.AppendBlocking(Entry{Type: EventPolicy, Actor: "w", Note: "p"})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("MaxWait never sealed the partial batch")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	raw := append([]byte(nil), buf.Bytes()...)
	mu.Unlock()
	if rep, err := Verify(bytes.NewReader(raw)); err != nil || rep.Entries != 1 {
		t.Fatalf("verify of timer-sealed batch: rep=%+v err=%v", rep, err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestAppendDropsWhenFull(t *testing.T) {
	// A writer that blocks until released wedges the sealer, so the
	// bounded buffer fills and non-blocking Append must drop.
	release := make(chan struct{})
	w := writerFunc(func(p []byte) (int, error) {
		<-release
		return len(p), nil
	})
	a := NewAppender(w, Config{BatchSize: 2, MaxWait: time.Hour, Buffer: 4})
	for i := 0; i < 100; i++ {
		a.Append(Entry{Type: EventPlainPacket, Actor: "t", A: uint64(i)})
	}
	if a.Dropped() == 0 {
		t.Fatal("expected drops with a wedged sealer and a full buffer")
	}
	if a.Appended()+a.Dropped() != 100 {
		t.Fatalf("appended %d + dropped %d != 100", a.Appended(), a.Dropped())
	}
	close(release)
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestAppendAfterCloseRefused(t *testing.T) {
	a := NewAppender(io.Discard, Config{})
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if a.Append(Entry{Type: EventPolicy}) {
		t.Fatal("append accepted after close")
	}
	if a.AppendBlocking(Entry{Type: EventPolicy}) {
		t.Fatal("blocking append accepted after close")
	}
}

func TestConcurrentEmitVerifies(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	a := NewAppender(w, Config{BatchSize: 16, MaxWait: 5 * time.Millisecond})
	prev := Install(a)
	defer Install(prev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Emit(EventPlainPacket, fmt.Sprintf("g%d", g), uint64(i), 0, "")
			}
		}(g)
	}
	wg.Wait()
	Install(prev)
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	mu.Lock()
	raw := append([]byte(nil), buf.Bytes()...)
	mu.Unlock()
	rep, err := Verify(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("verify after concurrent emit: %v", err)
	}
	if rep.Entries+a.Dropped() != 8*200 {
		t.Fatalf("entries %d + dropped %d != %d", rep.Entries, a.Dropped(), 8*200)
	}
}

func TestTail(t *testing.T) {
	raw := writeLedger(t, 100, Config{BatchSize: 16, MaxWait: time.Hour})
	tail, err := Tail(bytes.NewReader(raw), 7)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if len(tail) != 7 {
		t.Fatalf("tail returned %d entries, want 7", len(tail))
	}
	for i, e := range tail {
		if want := uint64(93 + i); e.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestMerkleRootOddPromotion(t *testing.T) {
	// Root over [a b c] must differ from [a b] and from [a b c c]
	// (duplication-style trees are a known second-preimage footgun).
	mk := func(n int) [][32]byte {
		ls := make([][32]byte, n)
		for i := range ls {
			e := Entry{Seq: uint64(i), Type: EventPolicy}
			ls[i], _ = leafHash(&e, nil)
		}
		return ls
	}
	r2 := merkleRoot(mk(2))
	r3 := merkleRoot(mk(3))
	ls4 := mk(3)
	ls4 = append(ls4, ls4[2])
	r4 := merkleRoot(ls4)
	if r3 == r2 || r3 == r4 {
		t.Fatal("odd-leaf promotion degenerates into a sibling tree shape")
	}
}

func TestEventTypeStringsRoundTrip(t *testing.T) {
	for ty := EventPolicy; ty <= EventReject; ty++ {
		got, ok := eventTypeByName[ty.String()]
		if !ok || got != ty {
			t.Fatalf("event %d name %q does not round-trip", ty, ty.String())
		}
	}
	if s := EventType(99).String(); s != "event(99)" {
		t.Fatalf("unknown event renders as %q", s)
	}
}

func BenchmarkLedgerPipeline(b *testing.B) {
	for _, size := range []int{1, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			a := NewAppender(io.Discard, Config{
				BatchSize: size,
				MaxWait:   time.Hour,
				Buffer:    4 * size,
			})
			e := Entry{Type: EventPlainPacket, Actor: "bench", A: 1, B: 1316}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.A = uint64(i)
				a.AppendBlocking(e)
			}
			b.StopTimer()
			if err := a.Close(); err != nil {
				b.Fatalf("close: %v", err)
			}
		})
	}
}
