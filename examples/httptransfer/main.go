// Httptransfer demonstrates the HTTP/TCP mode of Section 6.4 over real
// sockets: the clip is uploaded to a local HTTP server as one POST of
// marker-tagged segments, a wire tap (standing in for tcpdump on the open
// WiFi network) captures every segment, and the tap's reconstruction shows
// that the encrypted segments are useless to an observer even though TCP
// delivers every byte to the legitimate server.
package main

import (
	"fmt"
	"log"
	"net/http"
	"sync"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/netem"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

func main() {
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 60, Motion: video.MotionMedium, Seed: 5})
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pol := vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: 0.2, Alg: vcrypt.AES256}
	key := make([]byte, pol.Alg.KeySize())

	// The upload endpoint (legitimate receiver).
	server, err := transport.NewHTTPUploadServer(cfg, pol.Alg, key)
	if err != nil {
		log.Fatal(err)
	}

	// The eavesdropper: a tap on the wire with its own loss and no key.
	tapAsm, err := codec.NewReassembler(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tapFilter, err := netem.NewFilter(0.03, 11)
	if err != nil {
		log.Fatal(err)
	}
	var tapMu sync.Mutex
	var tapSeen, tapUsable int
	server.Tap = func(seq uint64, encrypted bool, payload []byte) {
		tapMu.Lock()
		defer tapMu.Unlock()
		tapSeen++
		if tapFilter.Drop() || encrypted {
			return // lost on the air, or ciphertext the tap cannot read
		}
		if err := tapAsm.Add(payload); err == nil {
			tapUsable++
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/upload", server)
	listener, err := netListen()
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(listener, mux)
	url := fmt.Sprintf("http://%s/upload", listener.Addr())

	// Pace the upload through a WiFi-like bottleneck.
	pacer, err := netem.NewPacer(2e6) // ~16 Mb/s effective
	if err != nil {
		log.Fatal(err)
	}
	session := transport.Session{
		Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
		Policy: pol, Key: key, Device: energy.SamsungGalaxySII(),
	}
	rep, err := transport.LiveHTTPUpload(session, url, pacer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d segments (%d encrypted, %d bytes) in %v under policy %s\n",
		rep.Segments, rep.Encrypted, rep.Bytes, rep.Elapsed.Round(1e6), pol.Name())

	// Server-side reconstruction: TCP delivered everything, the server
	// decrypts the marked segments.
	rx, err := codec.DecodeSequence(server.Frames(len(encoded)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	qr, err := evalvid.Evaluate(clip, rx)
	if err != nil {
		log.Fatal(err)
	}
	// Tap-side reconstruction.
	ev, err := codec.DecodeSequence(tapAsm.Frames(len(encoded)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	qe, err := evalvid.Evaluate(clip, ev)
	if err != nil {
		log.Fatal(err)
	}
	tapMu.Lock()
	fmt.Printf("wire tap: saw %d segments, could use %d\n", tapSeen, tapUsable)
	tapMu.Unlock()
	fmt.Printf("server reconstruction: %.1f dB PSNR (MOS %.2f)\n", qr.PSNR, qr.MOS)
	fmt.Printf("tap reconstruction:    %.1f dB PSNR (MOS %.2f)\n", qe.PSNR, qe.MOS)
}
