package transport

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

// testMedium builds a deterministic medium with mild contention.
func testMedium(t *testing.T, seed uint64) *wifi.Medium {
	t.Helper()
	params := wifi.NewDefaultDCF(6)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		t.Fatal(err)
	}
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, wifi.Rate54, dcf, wifi.BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(seed))
	med.ReceiverError = 0.02
	med.EavesdropperError = 0.05
	return med
}

// testSession encodes a small clip and builds a session around it.
func testSession(t *testing.T, motion video.MotionLevel, policy vcrypt.Policy) (Session, []*video.Frame) {
	t.Helper()
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 24, Motion: motion, Seed: 5})
	cfg := codec.Config{Width: 96, Height: 96, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16}
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, policy.Alg.KeySize())
	for i := range key {
		key[i] = byte(i)
	}
	return Session{
		Config:  cfg,
		Encoded: encoded,
		FPS:     30,
		MTU:     1400,
		Policy:  policy,
		Key:     key,
		Device:  energy.SamsungGalaxySII(),
		Medium:  testMedium(t, 99),
	}, clip
}

func TestRunUDPCleanPolicyNone(t *testing.T) {
	s, clip := testSession(t, video.MotionMedium, vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256})
	s.Medium.ReceiverError = 0
	s.Medium.EavesdropperError = 0
	res, err := RunUDP(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EncryptedFraction != 0 {
		t.Fatalf("none policy encrypted %v of packets", res.EncryptedFraction)
	}
	rx, err := codec.DecodeSequence(res.ReceiverFrames, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	q, err := evalvid.Evaluate(clip, rx)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 30 {
		t.Fatalf("clean receiver PSNR %.1f too low", q.PSNR)
	}
	// With no encryption the eavesdropper sees the same quality.
	ev, _ := codec.DecodeSequence(res.EavesFrames, s.Config)
	qe, _ := evalvid.Evaluate(clip, ev)
	if qe.PSNR < q.PSNR-1 {
		t.Fatalf("eavesdropper (%v dB) should match receiver (%v dB) without encryption", qe.PSNR, q.PSNR)
	}
}

func TestRunUDPEncryptAllBlindsEavesdropper(t *testing.T) {
	s, clip := testSession(t, video.MotionMedium, vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256})
	res, err := RunUDP(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EncryptedFraction != 1 {
		t.Fatalf("all policy encrypted only %v", res.EncryptedFraction)
	}
	// Receiver still fine (decrypts everything it got).
	rx, _ := codec.DecodeSequence(res.ReceiverFrames, s.Config)
	q, _ := evalvid.Evaluate(clip, rx)
	if q.PSNR < 28 {
		t.Fatalf("receiver PSNR %.1f too low", q.PSNR)
	}
	// Eavesdropper got nothing usable: all frames nil.
	for i, ef := range res.EavesFrames {
		if ef != nil {
			t.Fatalf("eavesdropper reassembled frame %d despite full encryption", i)
		}
	}
	ev, _ := codec.DecodeSequence(res.EavesFrames, s.Config)
	qe, _ := evalvid.Evaluate(clip, ev)
	if qe.PSNR > 20 {
		t.Fatalf("eavesdropper PSNR %.1f should be rock bottom", qe.PSNR)
	}
}

func TestRunUDPIFramePolicyDistortsEavesdropper(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, clip := testSession(t, video.MotionLow, pol)
	// Clean receiver channel so the comparison isolates the encryption
	// effect rather than channel luck on a short clip.
	s.Medium.ReceiverError = 0
	res, err := RunUDP(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	rx, _ := codec.DecodeSequence(res.ReceiverFrames, s.Config)
	qr, _ := evalvid.Evaluate(clip, rx)
	ev, _ := codec.DecodeSequence(res.EavesFrames, s.Config)
	qe, _ := evalvid.Evaluate(clip, ev)
	if qe.PSNR > qr.PSNR-8 {
		t.Fatalf("I-frame encryption should crush eavesdropper quality: rx %.1f vs eav %.1f", qr.PSNR, qe.PSNR)
	}
	// The realised encrypted fraction equals the clip's I-packet share.
	st, _ := codec.AnalyzeClip(s.Encoded, s.Config, s.MTU)
	if diff := res.EncryptedFraction - st.IFraction; diff > 0.02 || diff < -0.02 {
		t.Fatalf("encrypted fraction %v vs I share %v", res.EncryptedFraction, st.IFraction)
	}
}

func TestRunUDPDelayOrderingAcrossPolicies(t *testing.T) {
	delays := map[string]float64{}
	powers := map[string]float64{}
	for _, mode := range []vcrypt.Mode{vcrypt.ModeNone, vcrypt.ModeIFrames, vcrypt.ModePFrames, vcrypt.ModeAll} {
		pol := vcrypt.Policy{Mode: mode, Alg: vcrypt.TripleDES}
		s, _ := testSession(t, video.MotionHigh, pol)
		res, err := RunUDP(s, 4)
		if err != nil {
			t.Fatal(err)
		}
		delays[mode.String()] = res.MeanSojourn
		powers[mode.String()] = res.AveragePowerW
	}
	if !(delays["none"] < delays["I"] && delays["I"] < delays["P"] && delays["P"] <= delays["all"]) {
		t.Fatalf("delay ordering violated: %v", delays)
	}
	if !(powers["none"] < powers["I"] && powers["I"] < powers["P"] && powers["P"] <= powers["all"]) {
		t.Fatalf("power ordering violated: %v", powers)
	}
}

func TestRunHTTPReliableAndSlower(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, clip := testSession(t, video.MotionMedium, pol)
	s.Medium.ReceiverError = 0.08
	udp, err := RunUDP(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := testSession(t, video.MotionMedium, pol)
	s2.Medium.ReceiverError = 0.08
	tcp, err := RunHTTP(s2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.MeanSojourn <= udp.MeanSojourn {
		t.Fatalf("TCP (%v) should be slower than UDP (%v)", tcp.MeanSojourn, udp.MeanSojourn)
	}
	// TCP delivery is lossless for the receiver.
	for i, r := range tcp.Records {
		if !r.ReceiverGot {
			t.Fatalf("TCP packet %d not delivered", i)
		}
	}
	rx, _ := codec.DecodeSequence(tcp.ReceiverFrames, s2.Config)
	q, _ := evalvid.Evaluate(clip, rx)
	if q.PSNR < 30 {
		t.Fatalf("TCP receiver PSNR %.1f", q.PSNR)
	}
}

func TestRunUDPDeterministicBySeed(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	a, err := RunUDP(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := testSession(t, video.MotionLow, pol)
	b, err := RunUDP(s2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSojourn != b.MeanSojourn || a.ReceiverLossRate != b.ReceiverLossRate {
		t.Fatal("identical seeds must reproduce identical runs")
	}
	c, _ := RunUDP(s, 43)
	if a.MeanSojourn == c.MeanSojourn && a.ReceiverLossRate == c.ReceiverLossRate {
		t.Fatal("different seeds should differ")
	}
}

func TestSessionValidation(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	bad := s
	bad.FPS = 0
	if _, err := RunUDP(bad, 1); err == nil {
		t.Fatal("zero FPS should fail")
	}
	bad = s
	bad.Key = nil
	if _, err := RunUDP(bad, 1); err == nil {
		t.Fatal("missing key should fail")
	}
	bad = s
	bad.MTU = 1
	if _, err := RunUDP(bad, 1); err == nil {
		t.Fatal("tiny MTU should fail")
	}
	bad = s
	bad.Medium = nil
	if _, err := RunUDP(bad, 1); err == nil {
		t.Fatal("missing medium should fail")
	}
	bad = s
	bad.Encoded = nil
	if _, err := RunUDP(bad, 1); err == nil {
		t.Fatal("empty clip should fail")
	}
}

func TestRunUDP3DESSlowerThanAES(t *testing.T) {
	mk := func(alg vcrypt.Algorithm) float64 {
		pol := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: alg}
		s, _ := testSession(t, video.MotionMedium, pol)
		res, err := RunUDP(s, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanSojourn
	}
	if a, d := mk(vcrypt.AES256), mk(vcrypt.TripleDES); d <= a {
		t.Fatalf("3DES (%v) should be slower than AES256 (%v)", d, a)
	}
}
