package lintkit

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// This file is the value-range abstract interpretation engine: an
// interval lattice over the integer locals and parameters of one
// function body, solved over the BuildCFG control-flow graph with
// widening at loop heads and refinement along branch-condition edges
// (an `if n > len(buf)` narrows n on both arms). Beyond plain constant
// intervals each value can carry *symbolic length bounds* — "v is at
// most len(buf)-1" — which is what turns a dynamic guard into a static
// proof that a slice index is in range. Bottom-up interprocedural
// summaries (per-result ranges plus taint) are built over the module
// call graph, so a helper that returns a parsed-and-capped length
// transfers its proof to every caller.
//
// Soundness caveats, deliberate and documented:
//   - int64 arithmetic saturates at the ±infinity sentinels instead of
//     modeling exact 64-bit wraparound, so a computation that overflows
//     int64 exactly at MinInt64/MaxInt64 is treated as unbounded, not
//     wrapped. Narrower types (including uint64 subtraction, the
//     classic wrap) fall back to their full type range whenever the
//     abstract result leaves it.
//   - `int` and `uint` are modeled as 64-bit, matching every platform
//     this repository targets; a 32-bit port would need the ranges
//     tightened.
//   - taint tracks the integer *results* of configured source calls,
//     not the contents of byte slices those calls read from.
//   - symbolic bounds on closure-mutated locals (the `get := func()`
//     parser idiom reslicing a captured `rest`) are created freely and
//     killed at every call that could run the closure. A goroutine
//     mutating a captured slice *between* statements is not modeled;
//     the repository's parsers are single-goroutine straight-line code,
//     and shared-state discipline is the lock passes' jurisdiction.

// Infinity sentinels for interval bounds. Arithmetic on bounds
// saturates at these values.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// LenSym names the length of a canonical lvalue — a chain of field
// selections rooted at a variable, like `buf` or `f.MBData` — so a
// symbolic bound "v <= len(buf)-1" survives as long as nothing
// reassigns the slice.
type LenSym struct {
	Root types.Object
	Path string // "" for the root itself, ".f.g" for field chains
}

// Value is the abstract value of one integer expression: a constant
// interval, optional symbolic length bounds, and a taint bit.
type Value struct {
	// Lo and Hi bound the mathematical value of the expression;
	// NegInf/PosInf mean unbounded.
	Lo, Hi int64
	// SymHi holds upper bounds of the form v <= len(sym)+off.
	SymHi map[LenSym]int64
	// SymLo holds lower bounds of the form v >= len(sym)+off.
	SymLo map[LenSym]int64
	// Untrusted marks values derived from a source call's results
	// (attacker-controlled network input, for the netbound pass).
	Untrusted bool
}

// Top returns the unconstrained value.
func Top() Value { return Value{Lo: NegInf, Hi: PosInf} }

// Const returns the singleton interval [k, k].
func Const(k int64) Value { return Value{Lo: k, Hi: k} }

// BoundedBy reports whether the value provably satisfies
// v <= len(sym)+off.
func (v Value) BoundedBy(sym LenSym, off int64) bool {
	got, ok := v.SymHi[sym]
	return ok && got <= off
}

// HasSymHi reports whether any symbolic upper bound is known.
func (v Value) HasSymHi() bool { return len(v.SymHi) > 0 }

func (v Value) empty() bool { return v.Lo > v.Hi }

func (v Value) equal(w Value) bool {
	if v.Lo != w.Lo || v.Hi != w.Hi || v.Untrusted != w.Untrusted {
		return false
	}
	return symEqual(v.SymHi, w.SymHi) && symEqual(v.SymLo, w.SymLo)
}

func symEqual(a, b map[LenSym]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || av != bv {
			return false
		}
	}
	return true
}

func copySyms(m map[LenSym]int64) map[LenSym]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[LenSym]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// join is the lattice union: the weaker of each bound survives.
func (v Value) join(w Value) Value {
	out := Value{
		Lo:        min(v.Lo, w.Lo),
		Hi:        max(v.Hi, w.Hi),
		Untrusted: v.Untrusted || w.Untrusted,
	}
	for sym, off := range v.SymHi {
		if woff, ok := w.SymHi[sym]; ok {
			if out.SymHi == nil {
				out.SymHi = make(map[LenSym]int64)
			}
			out.SymHi[sym] = max(off, woff)
		}
	}
	for sym, off := range v.SymLo {
		if woff, ok := w.SymLo[sym]; ok {
			if out.SymLo == nil {
				out.SymLo = make(map[LenSym]int64)
			}
			out.SymLo[sym] = min(off, woff)
		}
	}
	return out
}

// intersect strengthens v with everything w proves (meet). Taint
// survives only when both derivations are untrusted — this is how an
// equality test against a trusted value blesses a parsed field.
func (v Value) intersect(w Value) Value {
	out := Value{
		Lo:        max(v.Lo, w.Lo),
		Hi:        min(v.Hi, w.Hi),
		Untrusted: v.Untrusted && w.Untrusted,
		SymHi:     copySyms(v.SymHi),
		SymLo:     copySyms(v.SymLo),
	}
	for sym, off := range w.SymHi {
		if cur, ok := out.SymHi[sym]; !ok || off < cur {
			if out.SymHi == nil {
				out.SymHi = make(map[LenSym]int64)
			}
			out.SymHi[sym] = off
		}
	}
	for sym, off := range w.SymLo {
		if cur, ok := out.SymLo[sym]; !ok || off > cur {
			if out.SymLo == nil {
				out.SymLo = make(map[LenSym]int64)
			}
			out.SymLo[sym] = off
		}
	}
	return out
}

// widen accelerates convergence at loop heads: any bound the last
// iteration loosened jumps to the 0 threshold or to infinity, and any
// symbolic bound that grew is dropped. Bounds therefore change at most
// a constant number of times per variable, which terminates the solve.
func (v Value) widen(joined Value) Value {
	out := joined
	if joined.Lo < v.Lo {
		if joined.Lo >= 0 {
			out.Lo = 0
		} else {
			out.Lo = NegInf
		}
	}
	if joined.Hi > v.Hi {
		out.Hi = PosInf
	}
	out.SymHi = stableSyms(v.SymHi, joined.SymHi)
	out.SymLo = stableSyms(v.SymLo, joined.SymLo)
	return out
}

// stableSyms keeps only the bounds that did not move between
// iterations.
func stableSyms(old, joined map[LenSym]int64) map[LenSym]int64 {
	var out map[LenSym]int64
	for sym, off := range joined {
		if ooff, ok := old[sym]; ok && ooff == off {
			if out == nil {
				out = make(map[LenSym]int64)
			}
			out[sym] = off
		}
	}
	return out
}

// Saturating bound arithmetic. The callers never mix +inf and -inf on
// one bound (lows add to lows, highs to highs).

func satAdd(a, b int64) int64 {
	switch {
	case a == PosInf || b == PosInf:
		return PosInf
	case a == NegInf || b == NegInf:
		return NegInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return PosInf
		}
		return NegInf
	}
	return s
}

func satNeg(a int64) int64 {
	switch a {
	case NegInf:
		return PosInf
	case PosInf:
		return NegInf
	}
	return -a
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == PosInf || a == NegInf || b == PosInf || b == NegInf {
		if (a > 0) == (b > 0) {
			return PosInf
		}
		return NegInf
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return PosInf
		}
		return NegInf
	}
	return p
}

// floorDiv and ceilDiv round toward -inf / +inf (Go's / truncates
// toward zero), for dividing inequality bounds by a positive
// coefficient.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// IntervalFact maps each tracked integer variable to its abstract
// value. A variable absent from the fact is unconstrained.
type IntervalFact map[types.Object]Value

func (f IntervalFact) clone() IntervalFact {
	out := make(IntervalFact, len(f))
	for obj, v := range f {
		v.SymHi = copySyms(v.SymHi)
		v.SymLo = copySyms(v.SymLo)
		out[obj] = v
	}
	return out
}

func (f IntervalFact) equal(g IntervalFact) bool {
	if len(f) != len(g) {
		return false
	}
	for obj, v := range f {
		w, ok := g[obj]
		if !ok || !v.equal(w) {
			return false
		}
	}
	return true
}

// SourcePredicate classifies functions whose integer results are
// untrusted input (for netbound: the binary.* parse family).
type SourcePredicate func(*types.Func) bool

// IntervalSummaries are the bottom-up per-function summaries: one
// Value per declared result (symbolic bounds stripped — they name
// callee locals — but interval and taint intact).
type IntervalSummaries map[*types.Func][]Value

// litModel is the effect model of a function literal bound to a local
// variable (the `get := func() ...` parser-closure idiom): results to
// substitute at call sites plus the captured objects the body mutates.
type litModel struct {
	results []Value
	kills   []types.Object
}

// IntervalAnalysis is the solved interval analysis of one function
// body: the CFG plus the fact holding at entry to every block.
type IntervalAnalysis struct {
	CFG  *CFG
	info *types.Info
	prog *Program
	sums IntervalSummaries
	src  SourcePredicate

	in      map[*Block]IntervalFact
	heads   map[*Block]bool
	excl    map[types.Object]bool // address-taken / closure-assigned ints: never tracked
	mutRoot map[types.Object]bool // sym roots some closure reassigns
	lits    map[types.Object]*litModel
}

// AnalyzeFunc solves the interval analysis of a declared function.
// sums may be nil (no interprocedural knowledge); src may be nil (no
// taint sources).
func AnalyzeFunc(info *types.Info, prog *Program, sums IntervalSummaries, src SourcePredicate, decl *ast.FuncDecl) *IntervalAnalysis {
	return analyzeBody(info, prog, sums, src, decl.Recv, decl.Type, decl.Body)
}

// AnalyzeFuncLit solves the interval analysis of a function literal
// body in isolation: captured variables start unconstrained, which is
// sound for any calling context.
func AnalyzeFuncLit(info *types.Info, prog *Program, sums IntervalSummaries, src SourcePredicate, lit *ast.FuncLit) *IntervalAnalysis {
	return analyzeBody(info, prog, sums, src, nil, lit.Type, lit.Body)
}

func analyzeBody(info *types.Info, prog *Program, sums IntervalSummaries, src SourcePredicate, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) *IntervalAnalysis {
	a := &IntervalAnalysis{
		CFG:  BuildCFG(body),
		info: info,
		prog: prog,
		sums: sums,
		src:  src,
		in:   make(map[*Block]IntervalFact),
	}
	a.prescan(body)
	a.heads = loopHeads(a.CFG)
	entry := make(IntervalFact)
	seed := func(fields *ast.FieldList, zero bool) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil || !isInteger(obj.Type()) || a.excl[obj] {
					continue
				}
				if zero {
					entry[obj] = Const(0) // named results start at their zero value
				} else {
					entry[obj] = typeRange(obj.Type())
				}
			}
		}
	}
	seed(recv, false)
	seed(ftype.Params, false)
	seed(ftype.Results, true)
	a.in[a.CFG.Entry] = entry
	a.solve()
	return a
}

// prescan walks the body once for the facts the transfer function
// needs up front: which integers have their address taken or are
// assigned inside a closure (never tracked), which sym roots a closure
// mutates (killed at opaque call sites), and the result/kill models of
// locals bound to function literals.
func (a *IntervalAnalysis) prescan(body *ast.BlockStmt) {
	a.excl = make(map[types.Object]bool)
	a.mutRoot = make(map[types.Object]bool)
	a.lits = make(map[types.Object]*litModel)
	var litAssigned func(lit *ast.FuncLit)
	litAssigned = func(lit *ast.FuncLit) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			var targets []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				targets = n.Lhs
			case *ast.IncDecStmt:
				targets = []ast.Expr{n.X}
			}
			for _, lhs := range targets {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := a.info.ObjectOf(id)
				if obj == nil || obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					continue // declared inside the literal
				}
				if isInteger(obj.Type()) {
					a.excl[obj] = true
				} else {
					a.mutRoot[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sym, ok := LenSymFor(a.info, n.X); ok {
					if isInteger(sym.Root.Type()) {
						a.excl[sym.Root] = true
					} else {
						a.mutRoot[sym.Root] = true
					}
				}
			}
		case *ast.FuncLit:
			litAssigned(n)
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if lit, ok := n.Rhs[0].(*ast.FuncLit); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := a.info.ObjectOf(id); obj != nil {
							a.lits[obj] = a.modelLit(lit)
						}
					}
				}
			}
		}
		return true
	})
}

// modelLit builds the call-site model of a function literal: integer
// results are untrusted full type ranges when the body reaches a
// source (directly or through a summarized callee with an untrusted
// result), and calls kill the captured objects the body assigns.
func (a *IntervalAnalysis) modelLit(lit *ast.FuncLit) *litModel {
	m := &litModel{}
	tainted := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := FuncForCall(a.info, call)
		if fn == nil {
			return true
		}
		if a.src != nil && a.src(fn) {
			tainted = true
		}
		for _, rv := range a.sums[fn] {
			if rv.Untrusted {
				tainted = true
			}
		}
		return true
	})
	sig, ok := a.info.Types[lit].Type.(*types.Signature)
	if !ok {
		return m
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		v := typeRange(t)
		v.Untrusted = tainted && isInteger(t)
		m.results = append(m.results, v)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			targets = n.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{n.X}
		}
		for _, lhs := range targets {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := a.info.ObjectOf(id); obj != nil && !(obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()) {
					m.kills = append(m.kills, obj)
				}
			}
		}
		return true
	})
	return m
}

// loopHeads marks the targets of DFS back edges — the blocks where the
// solver widens instead of joining.
func loopHeads(cfg *CFG) map[*Block]bool {
	heads := make(map[*Block]bool)
	state := make(map[*Block]int) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{cfg.Entry, 0}}
	state[cfg.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			next := f.b.Succs[f.i].To
			f.i++
			switch state[next] {
			case 0:
				state[next] = 1
				stack = append(stack, frame{next, 0})
			case 1:
				heads[next] = true
			}
			continue
		}
		state[f.b] = 2
		stack = stack[:len(stack)-1]
	}
	return heads
}

// solve runs the widening worklist to a fixpoint over block-entry
// facts. The iteration cap is a safety net for irreducible graphs the
// back-edge heuristic might miss; the repository's CFGs converge in a
// handful of passes.
func (a *IntervalAnalysis) solve() {
	order := reversePostorder(a.CFG)
	pending := map[*Block]bool{a.CFG.Entry: true}
	visits := make(map[*Block]int)
	for iter := 0; iter < 100*len(a.CFG.Blocks)+100; iter++ {
		var b *Block
		for _, cand := range order {
			if pending[cand] {
				b = cand
				break
			}
		}
		if b == nil {
			return
		}
		delete(pending, b)
		fact := a.in[b].clone()
		for _, n := range b.Nodes {
			a.transfer(fact, n)
		}
		for _, e := range b.Succs {
			out := fact
			if e.Cond != nil {
				out = fact.clone()
				if !a.refine(out, e.Cond, !e.Negated) {
					continue // branch provably infeasible
				}
			}
			cur, seen := a.in[e.To]
			var next IntervalFact
			if !seen {
				next = out.clone()
			} else {
				next = joinFacts(cur, out)
				visits[e.To]++
				if a.heads[e.To] && visits[e.To] > 2 {
					next = widenFacts(cur, next)
				}
				if next.equal(cur) {
					continue
				}
			}
			a.in[e.To] = next
			pending[e.To] = true
		}
	}
}

func reversePostorder(cfg *CFG) []*Block {
	var order []*Block
	seen := make(map[*Block]bool)
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{cfg.Entry, 0}}
	seen[cfg.Entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			next := f.b.Succs[f.i].To
			f.i++
			if !seen[next] {
				seen[next] = true
				stack = append(stack, frame{next, 0})
			}
			continue
		}
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func joinFacts(f, g IntervalFact) IntervalFact {
	out := make(IntervalFact)
	for obj, v := range f {
		if w, ok := g[obj]; ok {
			out[obj] = v.join(w)
		}
		// absent in g means unconstrained there: the join is top, so
		// the entry is dropped
	}
	return out
}

func widenFacts(old, joined IntervalFact) IntervalFact {
	out := make(IntervalFact)
	for obj, jv := range joined {
		if ov, ok := old[obj]; ok {
			out[obj] = ov.widen(jv)
		} else {
			out[obj] = jv
		}
	}
	return out
}

// LoopHead reports whether b is a widening point (the header of a
// loop) — used by clients to tell loop conditions from plain guards.
func (a *IntervalAnalysis) LoopHead(b *Block) bool { return a.heads[b] }

// Walk replays every reachable block once in index order: visit
// receives each node with the fact holding immediately before it, and
// visitEdge (optional) each outgoing edge with the fact at the source
// block's end. Replay applies the same transfer the solver used, so
// the facts are the solver's fixpoint.
func (a *IntervalAnalysis) Walk(visit func(b *Block, n ast.Node, f IntervalFact), visitEdge func(b *Block, e *Edge, f IntervalFact)) {
	for _, b := range a.CFG.Blocks {
		entry, ok := a.in[b]
		if !ok {
			continue // unreachable
		}
		fact := entry.clone()
		for _, n := range b.Nodes {
			if visit != nil {
				visit(b, n, fact)
			}
			a.transfer(fact, n)
		}
		if visitEdge != nil {
			for _, e := range b.Succs {
				visitEdge(b, e, fact)
			}
		}
	}
}

// Eval returns the abstract value of e under fact f.
func (a *IntervalAnalysis) Eval(f IntervalFact, e ast.Expr) Value {
	return a.eval(f, e)
}

// ---- transfer ----

func (a *IntervalAnalysis) transfer(f IntervalFact, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.transferAssign(f, n)
	case *ast.IncDecStmt:
		a.callEffects(f, n.X)
		op := token.ADD
		if n.Tok == token.DEC {
			op = token.SUB
		}
		v := a.binop(f, op, a.eval(f, n.X), Const(1), a.info.TypeOf(n.X))
		a.assignTo(f, n.X, v)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			a.transferValueSpec(f, vs)
		}
	case *ast.RangeStmt:
		a.callEffects(f, n.X)
		a.transferRange(f, n)
	case *ast.ExprStmt:
		a.callEffects(f, n.X)
	case *ast.SendStmt:
		a.callEffects(f, n.Chan)
		a.callEffects(f, n.Value)
	case *ast.GoStmt:
		a.callEffects(f, n.Call)
	case *ast.DeferStmt:
		// Arguments are evaluated here; the call itself is replayed in
		// the exit block as a bare CallExpr node.
		a.callEffects(f, n.Call)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.callEffects(f, r)
		}
	case *ast.CaseClause:
		for _, g := range n.List {
			a.callEffects(f, g)
		}
	case *ast.IfStmt, *ast.SelectStmt:
		// headers only; conditions live on edges, clause bodies in
		// their own blocks
	case ast.Expr:
		// replayed deferred call in the exit block
		a.callEffects(f, n)
	}
}

func (a *IntervalAnalysis) transferValueSpec(f IntervalFact, vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		for _, name := range vs.Names {
			obj := a.info.Defs[name]
			if obj != nil && isInteger(obj.Type()) && !a.excl[obj] {
				f[obj] = Const(0)
			}
		}
		return
	}
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		a.callEffects(f, vs.Values[0])
		vals := a.evalTuple(f, vs.Values[0], len(vs.Names))
		for i, name := range vs.Names {
			a.assignTo(f, name, vals[i])
		}
		return
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		a.callEffects(f, vs.Values[i])
		a.assignTo(f, name, a.eval(f, vs.Values[i]))
	}
}

func (a *IntervalAnalysis) transferAssign(f IntervalFact, n *ast.AssignStmt) {
	for _, r := range n.Rhs {
		a.callEffects(f, r)
	}
	switch {
	case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
		if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
			vals := a.evalTuple(f, n.Rhs[0], len(n.Lhs))
			for i, lhs := range n.Lhs {
				a.assignTo(f, lhs, vals[i])
			}
			return
		}
		// evaluate every rhs before assigning (swap semantics)
		vals := make([]Value, len(n.Rhs))
		for i, r := range n.Rhs {
			vals[i] = a.eval(f, r)
		}
		for i, lhs := range n.Lhs {
			if i < len(vals) {
				a.assignTo(f, lhs, vals[i])
			}
		}
	default: // op-assign: x += e and friends
		var op token.Token
		switch n.Tok {
		case token.ADD_ASSIGN:
			op = token.ADD
		case token.SUB_ASSIGN:
			op = token.SUB
		case token.MUL_ASSIGN:
			op = token.MUL
		case token.QUO_ASSIGN:
			op = token.QUO
		case token.REM_ASSIGN:
			op = token.REM
		case token.AND_ASSIGN:
			op = token.AND
		case token.SHR_ASSIGN:
			op = token.SHR
		case token.SHL_ASSIGN:
			op = token.SHL
		default:
			a.assignTo(f, n.Lhs[0], Top())
			return
		}
		v := a.binop(f, op, a.eval(f, n.Lhs[0]), a.eval(f, n.Rhs[0]), a.info.TypeOf(n.Lhs[0]))
		a.assignTo(f, n.Lhs[0], v)
	}
}

func (a *IntervalAnalysis) transferRange(f IntervalFact, n *ast.RangeStmt) {
	assignKey := func(v Value) {
		if n.Key != nil {
			a.assignTo(f, n.Key, v)
		}
	}
	assignVal := func() {
		if n.Value != nil {
			a.assignTo(f, n.Value, Top())
		}
	}
	t := a.info.TypeOf(n.X)
	if t == nil {
		assignKey(Top())
		assignVal()
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		key := Value{Lo: 0, Hi: PosInf}
		if sym, ok := LenSymFor(a.info, n.X); ok {
			key.SymHi = map[LenSym]int64{sym: -1}
		}
		assignKey(key)
		assignVal()
	case *types.Array:
		assignKey(Value{Lo: 0, Hi: u.Len() - 1})
		assignVal()
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			assignKey(Value{Lo: 0, Hi: arr.Len() - 1})
		} else {
			assignKey(Value{Lo: 0, Hi: PosInf})
		}
		assignVal()
	case *types.Basic:
		switch {
		case u.Info()&types.IsString != 0:
			key := Value{Lo: 0, Hi: PosInf}
			if sym, ok := LenSymFor(a.info, n.X); ok {
				key.SymHi = map[LenSym]int64{sym: -1}
			}
			assignKey(key)
			assignVal()
		case u.Info()&types.IsInteger != 0:
			// range over int: the key sweeps [0, X-1] and inherits the
			// limit's taint — an attacker-sized count yields
			// attacker-reachable key values.
			limit := a.eval(f, n.X)
			key := Value{Lo: 0, Hi: satAdd(limit.Hi, -1), Untrusted: limit.Untrusted}
			if len(limit.SymHi) > 0 {
				key.SymHi = make(map[LenSym]int64, len(limit.SymHi))
				for sym, off := range limit.SymHi {
					key.SymHi[sym] = off - 1
				}
			}
			assignKey(key)
		default:
			assignKey(Top())
			assignVal()
		}
	default: // map, chan, func iterators
		assignKey(Top())
		assignVal()
	}
}

// assignTo writes v into the target of an assignment, invalidating
// whatever symbolic bounds the store may break.
func (a *IntervalAnalysis) assignTo(f IntervalFact, lhs ast.Expr, v Value) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := a.info.ObjectOf(lhs)
		if obj == nil {
			return
		}
		a.killSymsRootedAt(f, obj)
		if isInteger(obj.Type()) && !a.excl[obj] {
			f[obj] = clampToType(v, obj.Type())
		} else {
			delete(f, obj)
		}
	case *ast.SelectorExpr:
		if sym, ok := LenSymFor(a.info, lhs); ok {
			a.killSymsRootedAt(f, sym.Root)
		} else {
			a.killAllSyms(f)
		}
	case *ast.IndexExpr:
		// element store: lengths are unchanged
	case *ast.StarExpr:
		// *p = v may alias any slice the body sees
		a.killAllSyms(f)
	default:
		a.killAllSyms(f)
	}
}

func (a *IntervalAnalysis) killSymsRootedAt(f IntervalFact, root types.Object) {
	for obj, v := range f {
		changed := false
		for sym := range v.SymHi {
			if sym.Root == root {
				if !changed {
					v.SymHi = copySyms(v.SymHi)
					changed = true
				}
				delete(v.SymHi, sym)
			}
		}
		for sym := range v.SymLo {
			if sym.Root == root {
				if !changed || v.SymLo == nil {
					v.SymLo = copySyms(v.SymLo)
				}
				delete(v.SymLo, sym)
				changed = true
			}
		}
		if changed {
			f[obj] = v
		}
	}
}

func (a *IntervalAnalysis) killAllSyms(f IntervalFact) {
	for obj, v := range f {
		if len(v.SymHi) > 0 || len(v.SymLo) > 0 {
			v.SymHi = nil
			v.SymLo = nil
			f[obj] = v
		}
	}
}

// callEffects applies the side effects of every call inside e (without
// descending into nested function literals): closure calls kill the
// bounds on whatever the closure reassigns, and passing a slice's
// address or a function value makes the analysis forget the related
// symbolic lengths.
func (a *IntervalAnalysis) callEffects(f IntervalFact, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		fn := FuncForCall(a.info, call)
		if fn == nil {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if obj := a.info.ObjectOf(id); obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						if m := a.lits[obj]; m != nil {
							for _, k := range m.kills {
								a.killSymsRootedAt(f, k)
								delete(f, k)
							}
						} else {
							// unknown function value: any closure-
							// mutated root may change
							for root := range a.mutRoot {
								a.killSymsRootedAt(f, root)
							}
						}
					}
				}
			} else {
				for root := range a.mutRoot {
					a.killSymsRootedAt(f, root)
				}
			}
		} else if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			// a method may mutate its receiver's slice fields
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if sym, ok := LenSymFor(a.info, sel.X); ok {
					a.killSymsRootedAt(f, sym.Root)
				}
			}
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sym, ok := LenSymFor(a.info, u.X); ok {
					a.killSymsRootedAt(f, sym.Root)
					delete(f, sym.Root)
				}
			}
			if t := a.info.TypeOf(arg); t != nil {
				if _, isFunc := t.Underlying().(*types.Signature); isFunc {
					for root := range a.mutRoot {
						a.killSymsRootedAt(f, root)
					}
				}
			}
		}
		return true
	})
}

// ---- evaluation ----

func (a *IntervalAnalysis) eval(f IntervalFact, e ast.Expr) Value {
	e = ast.Unparen(e)
	t := a.info.TypeOf(e)
	// constant folding covers literals, consts, and constant arithmetic
	if tv, ok := a.info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Int {
			if k, exact := constant.Int64Val(tv.Value); exact {
				return Const(k)
			}
			if u, exact := constant.Uint64Val(tv.Value); exact {
				if u > math.MaxInt64 {
					return Value{Lo: NegInf, Hi: PosInf}
				}
				return Const(int64(u))
			}
		}
		return topOf(t)
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := a.info.ObjectOf(e); obj != nil {
			if v, ok := f[obj]; ok {
				return v
			}
			return topOf(obj.Type())
		}
	case *ast.BinaryExpr:
		return a.binop(f, e.Op, a.eval(f, e.X), a.eval(f, e.Y), t)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return a.eval(f, e.X)
		case token.SUB:
			return clampToType(negValue(a.eval(f, e.X)), t)
		}
	case *ast.CallExpr:
		return a.evalCall(f, e, 1)[0]
	}
	return topOf(t)
}

// evalTuple evaluates a multi-value expression (a call or comma-ok
// form) into want abstract values.
func (a *IntervalAnalysis) evalTuple(f IntervalFact, e ast.Expr, want int) []Value {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		vals := a.evalCall(f, call, want)
		if len(vals) == want {
			return vals
		}
	}
	out := make([]Value, want)
	for i := range out {
		out[i] = Top()
	}
	if want >= 1 {
		out[0] = a.eval(f, e) // comma-ok: first value may still fold
	}
	return out
}

// evalCall models a call's results: conversions, len/cap/min/max, the
// varint decoders, configured sources, closure models, and bottom-up
// summaries, in that order of specificity.
func (a *IntervalAnalysis) evalCall(f IntervalFact, call *ast.CallExpr, want int) []Value {
	tops := func() []Value {
		out := make([]Value, want)
		t := a.info.TypeOf(call)
		if tup, ok := t.(*types.Tuple); ok {
			for i := range out {
				if i < tup.Len() {
					out[i] = topOf(tup.At(i).Type())
				} else {
					out[i] = Top()
				}
			}
			return out
		}
		for i := range out {
			out[i] = Top()
		}
		if want >= 1 {
			out[0] = topOf(t)
		}
		return out
	}
	// conversion: value-preserving when the operand provably fits
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		out := tops()
		out[0] = convert(a.eval(f, call.Args[0]), a.info.TypeOf(call))
		return out
	}
	// builtins
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := a.info.ObjectOf(id).(*types.Builtin); ok {
			out := tops()
			switch b.Name() {
			case "len":
				out[0] = a.lenValue(f, call.Args[0])
			case "cap":
				if arr := arrayTypeOf(a.info.TypeOf(call.Args[0])); arr != nil {
					out[0] = Const(arr.Len())
				} else {
					out[0] = Value{Lo: 0, Hi: PosInf}
				}
			case "min":
				v := a.eval(f, call.Args[0])
				for _, arg := range call.Args[1:] {
					w := a.eval(f, arg)
					vv := Value{
						Lo:        min(v.Lo, w.Lo),
						Hi:        min(v.Hi, w.Hi),
						Untrusted: v.Untrusted || w.Untrusted,
						SymHi:     copySyms(v.SymHi),
					}
					for sym, off := range w.SymHi {
						if cur, ok := vv.SymHi[sym]; !ok || off < cur {
							if vv.SymHi == nil {
								vv.SymHi = make(map[LenSym]int64)
							}
							vv.SymHi[sym] = off
						}
					}
					v = vv
				}
				out[0] = v
			case "max":
				v := a.eval(f, call.Args[0])
				for _, arg := range call.Args[1:] {
					w := a.eval(f, arg)
					v = Value{
						Lo:        max(v.Lo, w.Lo),
						Hi:        max(v.Hi, w.Hi),
						Untrusted: v.Untrusted || w.Untrusted,
					}
				}
				out[0] = v
			}
			return out
		}
	}
	fn := FuncForCall(a.info, call)
	if fn == nil {
		// closure bound to a local?
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := a.info.ObjectOf(id); obj != nil {
				if m := a.lits[obj]; m != nil && len(m.results) >= want {
					out := make([]Value, want)
					for i := range out {
						v := m.results[i]
						v.SymHi = copySyms(v.SymHi)
						v.SymLo = copySyms(v.SymLo)
						out[i] = v
					}
					return out
				}
			}
		}
		return tops()
	}
	out := tops()
	tainted := a.src != nil && a.src(fn)
	// binary.Uvarint/Varint return (value, bytesRead) with the byte
	// count bounded by the input length — the idiom `rest = rest[n:]`
	// depends on that second result being in range.
	if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" && (fn.Name() == "Uvarint" || fn.Name() == "Varint") && len(call.Args) == 1 {
		if want >= 2 {
			n := Value{Lo: -11, Hi: 11}
			if sym, ok := LenSymFor(a.info, call.Args[0]); ok {
				n.SymHi = map[LenSym]int64{sym: 0}
			}
			out[1] = n
		}
		if tainted {
			out[0].Untrusted = true
		}
		return out
	}
	if tainted {
		// mark integer results untrusted at their full type range
		if tup, ok := a.info.TypeOf(call).(*types.Tuple); ok {
			for i := range out {
				if i < tup.Len() && isInteger(tup.At(i).Type()) {
					out[i].Untrusted = true
				}
			}
		} else if want >= 1 && isInteger(a.info.TypeOf(call)) {
			out[0].Untrusted = true
		}
		return out
	}
	if sum, ok := a.sums[fn]; ok {
		for i := 0; i < want && i < len(sum); i++ {
			v := sum[i]
			v.SymHi = copySyms(v.SymHi)
			v.SymLo = copySyms(v.SymLo)
			out[i] = v
		}
		return out
	}
	return out
}

// lenValue is the abstract value of len(arg).
func (a *IntervalAnalysis) lenValue(f IntervalFact, arg ast.Expr) Value {
	if arr := arrayTypeOf(a.info.TypeOf(arg)); arr != nil {
		return Const(arr.Len())
	}
	v := Value{Lo: 0, Hi: PosInf}
	if sym, ok := LenSymFor(a.info, arg); ok {
		v.SymHi = map[LenSym]int64{sym: 0}
		v.SymLo = map[LenSym]int64{sym: 0}
	}
	return v
}

func arrayTypeOf(t types.Type) *types.Array {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u
	case *types.Pointer:
		arr, _ := u.Elem().Underlying().(*types.Array)
		return arr
	}
	return nil
}

// binop evaluates x op y and clamps the result to the expression's
// static type (falling back to the full type range models wraparound).
func (a *IntervalAnalysis) binop(f IntervalFact, op token.Token, x, y Value, t types.Type) Value {
	taint := x.Untrusted || y.Untrusted
	var v Value
	switch op {
	case token.ADD:
		v = Value{Lo: satAdd(x.Lo, y.Lo), Hi: satAdd(x.Hi, y.Hi)}
		// x <= len(s)+o and y <= h  =>  x+y <= len(s)+o+h
		for sym, off := range x.SymHi {
			if y.Hi != PosInf {
				addSymHi(&v, sym, satAdd(off, y.Hi))
			}
		}
		for sym, off := range y.SymHi {
			if x.Hi != PosInf {
				addSymHi(&v, sym, satAdd(off, x.Hi))
			}
		}
		for sym, off := range x.SymLo {
			if y.Lo != NegInf {
				addSymLo(&v, sym, satAdd(off, y.Lo))
			}
		}
		for sym, off := range y.SymLo {
			if x.Lo != NegInf {
				addSymLo(&v, sym, satAdd(off, x.Lo))
			}
		}
	case token.SUB:
		v = Value{Lo: satAdd(x.Lo, satNeg(y.Hi)), Hi: satAdd(x.Hi, satNeg(y.Lo))}
		// x <= len(s)+o and y >= l  =>  x-y <= len(s)+o-l
		for sym, off := range x.SymHi {
			if y.Lo != NegInf {
				addSymHi(&v, sym, satAdd(off, satNeg(y.Lo)))
			}
		}
		for sym, off := range x.SymLo {
			if y.Hi != PosInf {
				addSymLo(&v, sym, satAdd(off, satNeg(y.Hi)))
			}
		}
	case token.MUL:
		v = intervalMul(x, y)
	case token.QUO:
		v = intervalDiv(x, y)
	case token.REM:
		v = intervalRem(x, y)
	case token.AND:
		if x.Lo >= 0 && y.Lo >= 0 {
			v = Value{Lo: 0, Hi: min(x.Hi, y.Hi)}
		} else {
			v = topOf(t)
		}
	case token.OR, token.XOR:
		if x.Lo >= 0 && y.Lo >= 0 && x.Hi != PosInf && y.Hi != PosInf {
			v = Value{Lo: 0, Hi: orCeil(max(x.Hi, y.Hi))}
		} else {
			v = topOf(t)
		}
	case token.SHL:
		if y.Lo == y.Hi && y.Lo >= 0 && y.Lo < 63 {
			m := int64(1) << y.Lo
			v = Value{Lo: satMul(x.Lo, m), Hi: satMul(x.Hi, m)}
		} else if x.Lo >= 0 {
			v = Value{Lo: 0, Hi: PosInf}
		} else {
			v = topOf(t)
		}
	case token.SHR:
		if x.Lo >= 0 && y.Lo >= 0 {
			hi := x.Hi
			if y.Lo > 0 && y.Lo < 63 && hi != PosInf {
				hi >>= y.Lo
			}
			v = Value{Lo: 0, Hi: hi}
			for sym, off := range x.SymHi {
				addSymHi(&v, sym, max(off, 0)) // (len+off)>>k <= len+max(off,0)
			}
		} else {
			v = topOf(t)
		}
	default:
		v = topOf(t)
	}
	v.Untrusted = taint
	return clampToType(v, t)
}

func addSymHi(v *Value, sym LenSym, off int64) {
	if cur, ok := v.SymHi[sym]; ok && cur <= off {
		return
	}
	if v.SymHi == nil {
		v.SymHi = make(map[LenSym]int64)
	}
	v.SymHi[sym] = off
}

func addSymLo(v *Value, sym LenSym, off int64) {
	if cur, ok := v.SymLo[sym]; ok && cur >= off {
		return
	}
	if v.SymLo == nil {
		v.SymLo = make(map[LenSym]int64)
	}
	v.SymLo[sym] = off
}

func intervalMul(x, y Value) Value {
	c := [4]int64{
		satMul(x.Lo, y.Lo), satMul(x.Lo, y.Hi),
		satMul(x.Hi, y.Lo), satMul(x.Hi, y.Hi),
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = min(lo, v), max(hi, v)
	}
	return Value{Lo: lo, Hi: hi}
}

func intervalDiv(x, y Value) Value {
	if y.Lo > 0 && y.Hi != PosInf && x.Lo != NegInf && x.Hi != PosInf {
		c := [4]int64{x.Lo / y.Lo, x.Lo / y.Hi, x.Hi / y.Lo, x.Hi / y.Hi}
		lo, hi := c[0], c[0]
		for _, v := range c[1:] {
			lo, hi = min(lo, v), max(hi, v)
		}
		return Value{Lo: lo, Hi: hi}
	}
	if y.Lo > 0 && x.Lo >= 0 {
		// positive / positive stays in [0, x.Hi]
		hi := x.Hi
		if hi != PosInf && y.Lo > 1 {
			hi /= y.Lo
		}
		return Value{Lo: 0, Hi: hi}
	}
	return Top()
}

func intervalRem(x, y Value) Value {
	if y.Lo > 0 && y.Hi != PosInf {
		if x.Lo >= 0 {
			return Value{Lo: 0, Hi: y.Hi - 1}
		}
		return Value{Lo: -(y.Hi - 1), Hi: y.Hi - 1}
	}
	return Top()
}

// orCeil returns the smallest 2^k-1 >= v, the tight upper bound of a
// bitwise or/xor of non-negatives.
func orCeil(v int64) int64 {
	if v <= 0 {
		return 0
	}
	r := int64(1)
	for r-1 < v {
		if r > math.MaxInt64/2 {
			return PosInf
		}
		r <<= 1
	}
	return r - 1
}

func negValue(v Value) Value {
	return Value{Lo: satNeg(v.Hi), Hi: satNeg(v.Lo), Untrusted: v.Untrusted}
}

// convert models a type conversion: value-preserving when the operand
// provably fits the target's range (bounds and taint survive), a full
// target range otherwise — which is exactly the int(uint16) /
// truncation trap.
func convert(v Value, to types.Type) Value {
	if !isInteger(to) {
		return Top()
	}
	r := typeRange(to)
	if !v.empty() && v.Lo >= r.Lo && v.Hi <= r.Hi {
		return v
	}
	r.Untrusted = v.Untrusted
	return r
}

// clampToType keeps v when it fits t's range and otherwise falls back
// to the full range (a computation that can leave the type wraps).
func clampToType(v Value, t types.Type) Value {
	if t == nil || !isInteger(t) {
		return v
	}
	r := typeRange(t)
	if v.empty() || (v.Lo >= r.Lo && v.Hi <= r.Hi) {
		return v
	}
	r.Untrusted = v.Untrusted
	return r
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// typeRange returns the full range of an integer type. int, uint,
// uintptr, int64 and uint64 saturate at the sentinels.
func typeRange(t types.Type) Value {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return Top()
	}
	switch b.Kind() {
	case types.Int8:
		return Value{Lo: math.MinInt8, Hi: math.MaxInt8}
	case types.Int16:
		return Value{Lo: math.MinInt16, Hi: math.MaxInt16}
	case types.Int32:
		return Value{Lo: math.MinInt32, Hi: math.MaxInt32}
	case types.Uint8:
		return Value{Lo: 0, Hi: math.MaxUint8}
	case types.Uint16:
		return Value{Lo: 0, Hi: math.MaxUint16}
	case types.Uint32:
		return Value{Lo: 0, Hi: math.MaxUint32}
	case types.Uint, types.Uint64, types.Uintptr:
		return Value{Lo: 0, Hi: PosInf}
	default:
		return Top()
	}
}

func topOf(t types.Type) Value {
	if t == nil {
		return Top()
	}
	return typeRange(t)
}

// ---- guard refinement ----

// refine strengthens fact with cond being taken (or not). It returns
// false when the refined fact is contradictory — the edge is provably
// infeasible and the solver skips it.
func (a *IntervalAnalysis) refine(f IntervalFact, cond ast.Expr, taken bool) bool {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return a.refine(f, c.X, !taken)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if taken {
				return a.refine(f, c.X, true) && a.refine(f, c.Y, true)
			}
			return true // !(a && b) refines nothing by itself
		case token.LOR:
			if !taken {
				return a.refine(f, c.X, false) && a.refine(f, c.Y, false)
			}
			return true
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return a.refineCompare(f, c, taken)
		}
	}
	return true
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

func (a *IntervalAnalysis) refineCompare(f IntervalFact, c *ast.BinaryExpr, taken bool) bool {
	if !isInteger(a.info.TypeOf(c.X)) || !isInteger(a.info.TypeOf(c.Y)) {
		return true
	}
	op := c.Op
	if !taken {
		op = negateCmp(op)
	}
	if op == token.NEQ {
		return true
	}
	ok1 := a.refineSide(f, c.X, op, c.Y)
	ok2 := a.refineSide(f, c.Y, flipCmp(op), c.X)
	return ok1 && ok2
}

// refineSide applies `lhs op rhs` to every variable appearing linearly
// in lhs. Strict comparisons become inclusive ones by shifting the
// bound (integers), == applies both directions and blesses taint.
func (a *IntervalAnalysis) refineSide(f IntervalFact, lhs ast.Expr, op token.Token, rhs ast.Expr) bool {
	lin, ok := a.linearize(f, lhs)
	if !ok || len(lin.terms) == 0 {
		return true
	}
	rhsVal := a.eval(f, rhs)
	switch op {
	case token.LSS:
		op = token.LEQ
		rhsVal = a.binop(f, token.SUB, rhsVal, Const(1), nil)
	case token.GTR:
		op = token.GEQ
		rhsVal = a.binop(f, token.ADD, rhsVal, Const(1), nil)
	}
	feasible := true
	for obj, coeff := range lin.terms {
		if coeff == 0 || a.excl[obj] {
			continue
		}
		rest := a.linRestValue(f, lin, obj)
		bound := a.binop(f, token.SUB, rhsVal, rest, nil)
		aCoeff := coeff
		o := op
		if aCoeff < 0 {
			aCoeff = -aCoeff
			o = flipCmp(o)
			bound = negValue(bound)
		}
		cur, seen := f[obj]
		if !seen {
			cur = topOf(obj.Type())
		}
		nv := cur
		nv.SymHi = copySyms(cur.SymHi)
		nv.SymLo = copySyms(cur.SymLo)
		applyLeq := func() {
			if bound.Hi != PosInf {
				nv.Hi = min(nv.Hi, floorDiv(bound.Hi, aCoeff))
			}
			for sym, off := range bound.SymHi {
				eff := off
				if aCoeff != 1 {
					// (len+off)/a <= len+max(off,0) for len >= 0, a >= 1
					eff = max(off, 0)
				}
				if curOff, ok := nv.SymHi[sym]; !ok || eff < curOff {
					addSymHi(&nv, sym, eff)
				}
			}
		}
		applyGeq := func() {
			if bound.Lo != NegInf {
				nv.Lo = max(nv.Lo, ceilDiv(bound.Lo, aCoeff))
			}
			if aCoeff == 1 {
				for sym, off := range bound.SymLo {
					addSymLo(&nv, sym, off)
				}
			}
		}
		switch o {
		case token.LEQ:
			applyLeq()
		case token.GEQ:
			applyGeq()
		case token.EQL:
			applyLeq()
			applyGeq()
			// equality against a fully trusted quantity blesses a
			// parsed value: `if int(n) != want { return err }`
			if len(lin.terms) == 1 && !rhsVal.Untrusted && !rest.Untrusted {
				nv.Untrusted = false
			}
		}
		if nv.empty() {
			feasible = false
		}
		f[obj] = nv
	}
	return feasible
}

// linForm is a linear decomposition sum(coeff*var) + sum(coeff*len(sym)) + k.
type linForm struct {
	terms map[types.Object]int64
	lens  map[LenSym]int64
	k     int64
}

// linearize decomposes e into linear form, peeling conversions that
// are value-preserving under the current fact (so `uint64(len(rest))`
// still yields the len term). It fails on anything non-linear.
func (a *IntervalAnalysis) linearize(f IntervalFact, e ast.Expr) (linForm, bool) {
	lin := linForm{terms: make(map[types.Object]int64), lens: make(map[LenSym]int64)}
	var add func(e ast.Expr, scale int64) bool
	add = func(e ast.Expr, scale int64) bool {
		e = ast.Unparen(e)
		if tv, ok := a.info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if k, exact := constant.Int64Val(tv.Value); exact {
				lin.k = satAdd(lin.k, satMul(k, scale))
				return lin.k != PosInf && lin.k != NegInf
			}
			return false
		}
		switch e := e.(type) {
		case *ast.Ident:
			obj := a.info.ObjectOf(e)
			if obj == nil || !isInteger(obj.Type()) {
				return false
			}
			lin.terms[obj] += scale
			return true
		case *ast.BinaryExpr:
			switch e.Op {
			case token.ADD:
				return add(e.X, scale) && add(e.Y, scale)
			case token.SUB:
				return add(e.X, scale) && add(e.Y, -scale)
			case token.MUL:
				if k, ok := a.constInt(e.X); ok {
					return add(e.Y, satMul(scale, k))
				}
				if k, ok := a.constInt(e.Y); ok {
					return add(e.X, satMul(scale, k))
				}
				return false
			}
			return false
		case *ast.CallExpr:
			if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				inner := a.eval(f, e.Args[0])
				r := typeRange(a.info.TypeOf(e))
				if !inner.empty() && inner.Lo >= r.Lo && inner.Hi <= r.Hi {
					return add(e.Args[0], scale) // value-preserving conversion
				}
				return false
			}
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := a.info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "len" && len(e.Args) == 1 {
					if arr := arrayTypeOf(a.info.TypeOf(e.Args[0])); arr != nil {
						lin.k = satAdd(lin.k, satMul(arr.Len(), scale))
						return true
					}
					if sym, ok := LenSymFor(a.info, e.Args[0]); ok {
						lin.lens[sym] += scale
						return true
					}
				}
			}
			return false
		}
		return false
	}
	if !add(e, 1) {
		return linForm{}, false
	}
	return lin, true
}

func (a *IntervalAnalysis) constInt(e ast.Expr) (int64, bool) {
	if tv, ok := a.info.Types[ast.Unparen(e)]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if k, exact := constant.Int64Val(tv.Value); exact {
			return k, true
		}
	}
	return 0, false
}

// linRestValue evaluates lin minus the `except` term as an abstract
// value, so a*v + rest OP bound can be solved for v.
func (a *IntervalAnalysis) linRestValue(f IntervalFact, lin linForm, except types.Object) Value {
	acc := Const(lin.k)
	for obj, coeff := range lin.terms {
		if obj == except || coeff == 0 {
			continue
		}
		v, ok := f[obj]
		if !ok {
			v = topOf(obj.Type())
		}
		acc = a.binop(f, token.ADD, acc, intervalMul(v, Const(coeff)), nil)
	}
	for sym, coeff := range lin.lens {
		if coeff == 0 {
			continue
		}
		lv := Value{Lo: 0, Hi: PosInf, SymHi: map[LenSym]int64{sym: 0}, SymLo: map[LenSym]int64{sym: 0}}
		acc = a.binop(f, token.ADD, acc, intervalMul2(lv, coeff), nil)
	}
	return acc
}

// intervalMul2 scales a length value by a small constant, keeping the
// sym when the coefficient is 1.
func intervalMul2(v Value, coeff int64) Value {
	if coeff == 1 {
		return v
	}
	out := intervalMul(v, Const(coeff))
	out.Untrusted = v.Untrusted
	return out
}

// LenSymFor canonicalizes e as a length symbol: a variable, possibly
// behind a chain of field selections (`f.MBData`). Pointer
// indirections implicit in selection are allowed; anything else (calls,
// indexing) is not canonical.
func LenSymFor(info *types.Info, e ast.Expr) (LenSym, bool) {
	path := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return LenSym{}, false
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return LenSym{}, false
			}
			return LenSym{Root: obj, Path: path}, true
		case *ast.SelectorExpr:
			path = "." + x.Sel.Name + path
			e = x.X
		default:
			return LenSym{}, false
		}
	}
}

// ---- interprocedural summaries ----

// BuildIntervalSummaries computes bottom-up result summaries for every
// module-local function: the joined abstract value of each declared
// result over all return statements, with callee-local symbolic bounds
// stripped. Callers should memoize the result on the Program cache.
func BuildIntervalSummaries(prog *Program, src SourcePredicate) IntervalSummaries {
	sums := make(IntervalSummaries)
	if prog == nil {
		return sums
	}
	cg := BuildCallGraph(prog)
	for _, scc := range cg.BottomUp() {
		// iterate mutual recursion to a small fixpoint
		for round := 0; round < 3; round++ {
			changed := false
			for _, fn := range scc {
				fsrc := prog.Source(fn)
				if fsrc == nil {
					continue
				}
				s := summarizeFunc(prog, fsrc, sums, src)
				if !summaryEqual(sums[fn], s) {
					sums[fn] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sums
}

func summaryEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].equal(b[i]) {
			return false
		}
	}
	return true
}

func summarizeFunc(prog *Program, fsrc *FuncSource, sums IntervalSummaries, src SourcePredicate) []Value {
	decl := fsrc.Decl
	results := decl.Type.Results
	if results == nil || results.NumFields() == 0 {
		return nil
	}
	info := fsrc.Pkg.Info
	nres := 0
	var resultObjs []types.Object // nil entries for unnamed results
	for _, field := range results.List {
		if len(field.Names) == 0 {
			nres++
			resultObjs = append(resultObjs, nil)
			continue
		}
		for _, name := range field.Names {
			nres++
			resultObjs = append(resultObjs, info.Defs[name])
		}
	}
	ia := analyzeBody(info, prog, sums, src, decl.Recv, decl.Type, decl.Body)
	var joined []Value
	record := func(vals []Value) {
		if joined == nil {
			joined = vals
			return
		}
		for i := range joined {
			joined[i] = joined[i].join(vals[i])
		}
	}
	ia.Walk(func(b *Block, n ast.Node, f IntervalFact) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		vals := make([]Value, nres)
		switch {
		case len(ret.Results) == 0:
			// bare return: named results carry the values
			for i, obj := range resultObjs {
				if obj == nil {
					vals[i] = Top()
				} else if v, ok := f[obj]; ok {
					vals[i] = v
				} else {
					vals[i] = topOf(obj.Type())
				}
			}
		case len(ret.Results) == nres:
			for i, r := range ret.Results {
				vals[i] = ia.Eval(f, r)
			}
		case len(ret.Results) == 1 && nres > 1:
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				copy(vals, ia.evalCall(f, call, nres))
			} else {
				for i := range vals {
					vals[i] = Top()
				}
			}
		default:
			for i := range vals {
				vals[i] = Top()
			}
		}
		record(vals)
	}, nil)
	if joined == nil {
		return nil // no returns reached: treat as unknown
	}
	// strip callee-local symbolic bounds; clamp to the declared types
	i := 0
	for _, field := range results.List {
		n := max(len(field.Names), 1)
		for j := 0; j < n; j++ {
			joined[i].SymHi = nil
			joined[i].SymLo = nil
			joined[i] = clampToType(joined[i], info.TypeOf(field.Type))
			i++
		}
	}
	return joined
}
