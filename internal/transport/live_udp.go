package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/ledger"
	"repro/internal/netem"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
)

// The live backend mirrors the simulated pipeline over real sockets: the
// sender unicasts every RTP packet to the legitimate receiver and to the
// eavesdropper's socket (standing in for the broadcast nature of open
// WiFi, where tcpdump on a nearby device captures the same frames), each
// endpoint applies its own netem loss filter, and only the receiver can
// decrypt marked payloads.

// LiveSendReport summarises a live transmission.
type LiveSendReport struct {
	Packets     int
	Encrypted   int
	Bytes       int
	Elapsed     time.Duration
	CryptoTime  time.Duration // wall time spent inside the cipher
	Retransmits int           // NACK-driven I-frame retransmissions (reliable mode)
	Dropped     int           // packets the sender-side conditioner discarded
	Duplicated  int           // extra copies the conditioner injected
}

// LiveUDPSend streams the session's packets to the receiver and
// eavesdropper addresses. With pace=true packets are released on the
// frame-capture schedule (real-time streaming); otherwise back to back
// (file upload).
func LiveUDPSend(s Session, rxAddr, evAddr string, pace bool) (LiveSendReport, error) {
	var rep LiveSendReport
	if err := s.Validate(); err != nil {
		return rep, err
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return rep, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return rep, err
	}
	ledger.Emit(ledger.EventPolicy, "udp", 0, 0, s.Policy.Name())
	rxConn, err := net.Dial("udp", rxAddr)
	if err != nil {
		return rep, fmt.Errorf("transport: dial receiver: %w", err)
	}
	defer rxConn.Close()
	var evConn net.Conn
	if evAddr != "" {
		evConn, err = net.Dial("udp", evAddr)
		if err != nil {
			return rep, fmt.Errorf("transport: dial eavesdropper: %w", err)
		}
		defer evConn.Close()
	}
	seqr := rtp.NewSequencer(0x7561) // arbitrary SSRC
	pool := codec.NewBufPool()
	var wps []codec.WirePacket
	start := time.Now()
	seq := 0
	for fi, ef := range s.Encoded {
		wps, err = codec.PacketizeInto(ef, s.MTU, rtp.HeaderSize, pool, wps[:0])
		if err != nil {
			return rep, err
		}
		if pace {
			due := start.Add(time.Duration(float64(fi) / s.FPS * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				// Overlap the pacing wait with keystream precompute, so
				// by release time EncryptPacket on the hot path is a
				// single XOR pass over cached keystream.
				go cipher.Prefetch(uint64(seq), len(wps), s.MTU)
				time.Sleep(d)
			}
		}
		for i := range wps {
			pkt := &wps[i]
			payload := pkt.Payload
			if s.PadToMTU && len(payload) < s.MTU {
				payload = zeroPad(payload, s.MTU-len(payload))
			}
			encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
			// Marshal first — the RTP header lands in the buffer's
			// headroom, the payload already aliases the rest — then
			// encrypt the payload region in place: same wire bytes as
			// encrypt-then-marshal, zero copies.
			out := seqr.Next(payload, float64(fi)/s.FPS, encrypted).MarshalInto(pkt.Wire(len(payload)))
			if encrypted {
				t0 := time.Now()
				cipher.EncryptPacket(uint64(seq), out[rtp.HeaderSize:][:s.Policy.EncryptSpan(len(payload))])
				rep.CryptoTime += time.Since(t0)
				rep.Encrypted++
				mUDPEncrypted.Inc()
				if span := s.Policy.EncryptSpan(len(payload)); span < len(payload) {
					ledger.Emit(ledger.EventHeaderOnly, "udp", uint64(seq), uint64(span), "")
				}
			} else {
				ledger.Emit(ledger.EventPlainPacket, "udp", uint64(seq), uint64(len(payload)), "")
			}
			if _, err := rxConn.Write(out); err != nil {
				pool.Put(pkt)
				return rep, fmt.Errorf("transport: send to receiver: %w", err)
			}
			if evConn != nil {
				// Broadcast overhear: the same datagram reaches the
				// eavesdropper's capture socket.
				if _, err := evConn.Write(out); err != nil {
					pool.Put(pkt)
					return rep, fmt.Errorf("transport: send to eavesdropper: %w", err)
				}
			}
			rep.Packets++
			rep.Bytes += len(out)
			mUDPPacketsSent.Inc()
			mUDPBytesSent.Add(int64(len(out)))
			pool.Put(pkt)
			seq++
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// LiveReceiver captures RTP packets on a UDP socket, applies a loss
// filter, decrypts marked payloads when it has the key (the legitimate
// receiver) or discards them as erasures when it does not (the
// eavesdropper), and reassembles frames.
type LiveReceiver struct {
	conn   *net.UDPConn
	cipher *vcrypt.Cipher // nil for the eavesdropper

	mu       sync.Mutex
	cond     *sync.Cond // signalled on every state change and on shutdown
	dropper  netem.Dropper
	asm      *codec.Reassembler
	received int
	captured int
	dups     int // arrivals whose sequence was already delivered
	closed   bool
	dead     bool // loop exited (socket closed)
	done     chan struct{}
	hdrOnly  int

	// window is the per-sequence dedup set. It is always active (allocated
	// by the constructor), not just under NACK: link-layer duplication
	// and retransmit races must never inflate the captured/usable counts,
	// only the dups counter. Delivered sequences compact into a contiguous
	// floor, so the window's memory stays bounded over arbitrarily long
	// sessions.
	window *seqWindow

	// Selective-retransmit state (EnableNACK).
	maxSeq    uint64
	haveSeq   bool
	nackFloor uint64 // sequences below this are never NACKed again
	nackTry   map[uint64]int
	nackAt    map[uint64]time.Time // first-NACK time per missing sequence
	nackFrom  *net.UDPAddr         // sender address learned from arrivals
}

// SetHeaderOnlyBytes tells the receiver the sender uses a header-only
// policy encrypting just the first n bytes of each marked payload
// (0 = whole payload). Must match the sender's Policy.HeaderOnlyBytes.
func (r *LiveReceiver) SetHeaderOnlyBytes(n int) {
	r.mu.Lock()
	r.hdrOnly = n
	r.mu.Unlock()
}

// NewLiveReceiver opens a listening socket. Pass a nil key to create an
// eavesdropper (marked packets become erasures). addr may use port 0.
func NewLiveReceiver(cfg codec.Config, alg vcrypt.Algorithm, key []byte, addr string, loss float64, seed uint64) (*LiveReceiver, error) {
	asm, err := codec.NewReassembler(cfg)
	if err != nil {
		return nil, err
	}
	filter, err := netem.NewFilter(loss, seed)
	if err != nil {
		return nil, err
	}
	var cipher *vcrypt.Cipher
	if key != nil {
		cipher, err = vcrypt.NewCipher(alg, key)
		if err != nil {
			return nil, err
		}
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	r := &LiveReceiver{conn: conn, dropper: filter, cipher: cipher, asm: asm, window: newSeqWindow(defaultSeqSpan), done: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	go r.loop()
	return r, nil
}

// Addr returns the bound address to hand to the sender.
func (r *LiveReceiver) Addr() string { return r.conn.LocalAddr().String() }

// SetDropper replaces the receiver's loss model (the constructor installs
// a Bernoulli filter) with any netem.Dropper — a Gilbert–Elliott bursty
// channel, a targeted SeqBurst, etc. Call before packets arrive.
func (r *LiveReceiver) SetDropper(d netem.Dropper) {
	r.mu.Lock()
	r.dropper = d
	r.mu.Unlock()
}

// EnableNACK turns on gap detection and selective retransmit requests:
// every interval the receiver NACKs the sequences it has not seen below
// the highest received one, addressed to the packet source. The sender
// honours NACKs only for I-frame packets (the frames whose loss wrecks a
// whole GOP), so requests for unbuffered P packets age out after a few
// tries. Arrivals are always deduplicated by extended sequence (see
// Stats), so retransmitted packets are counted and decoded exactly once.
// Call before sending starts.
func (r *LiveReceiver) EnableNACK(interval time.Duration) {
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	r.mu.Lock()
	if r.nackTry == nil {
		r.nackTry = make(map[uint64]int)
		r.nackAt = make(map[uint64]time.Time)
	}
	r.mu.Unlock()
	go r.nackLoop(interval)
}

// maxNackTries bounds how often one missing sequence is requested; P
// packets are never retransmitted, so the receiver must stop asking.
const maxNackTries = 8

// maxNackBatch bounds the sequences carried in one NACK datagram.
const maxNackBatch = 256

// maxNackWindow bounds how far behind the stream head the NACK scan
// reaches. A sender restart or a spurious sequence jump can move maxSeq
// arbitrarily far ahead of the received prefix; sequences that fall more
// than this far behind are abandoned rather than probed, so a single bad
// jump can no longer turn every tick into an O(maxSeq) rescan that NACKs
// tens of thousands of never-sent sequences.
const maxNackWindow = 4096

func (r *LiveReceiver) nackLoop(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		peer := r.nackFrom
		var missing []uint64
		if r.haveSeq && peer != nil {
			// Snap the floor into the scan window first, dropping the
			// bookkeeping of everything it abandons so the maps stay
			// bounded by the window.
			if r.maxSeq > maxNackWindow && r.nackFloor < r.maxSeq-maxNackWindow {
				r.pruneNACKBelow(r.maxSeq - maxNackWindow)
			}
			// Advance the floor past everything delivered or given up on;
			// the scan then covers at most maxNackWindow sequences instead
			// of rescanning [0, maxSeq) every tick.
			for r.nackFloor < r.maxSeq && (r.window.Seen(r.nackFloor) || r.nackTry[r.nackFloor] >= maxNackTries) {
				delete(r.nackTry, r.nackFloor)
				delete(r.nackAt, r.nackFloor)
				r.nackFloor++
			}
			for seq := r.nackFloor; seq < r.maxSeq && len(missing) < maxNackBatch; seq++ {
				if !r.window.Seen(seq) && r.nackTry[seq] < maxNackTries {
					if r.nackTry[seq] == 0 {
						// First request: anchor the recovery-delay clock.
						r.nackAt[seq] = time.Now()
					}
					r.nackTry[seq]++
					missing = append(missing, seq)
				}
			}
		}
		r.mu.Unlock()
		if len(missing) > 0 {
			mNACKsRequested.Add(int64(len(missing)))
			r.conn.WriteToUDP(marshalNACK(missing), peer) //nolint:errcheck // best effort, like the medium
		}
	}
}

// pruneNACKBelow abandons retransmit bookkeeping for every sequence below
// lo, walking whichever is smaller — the gap or the maps — so a huge
// spurious jump is cheap to absorb. Caller holds r.mu.
func (r *LiveReceiver) pruneNACKBelow(lo uint64) {
	if lo-r.nackFloor <= uint64(len(r.nackTry)+len(r.nackAt)) {
		for s := r.nackFloor; s < lo; s++ {
			delete(r.nackTry, s)
			delete(r.nackAt, s)
		}
	} else {
		for s := range r.nackTry {
			if s < lo {
				delete(r.nackTry, s)
			}
		}
		for s := range r.nackAt {
			if s < lo {
				delete(r.nackAt, s)
			}
		}
	}
	r.nackFloor = lo
}

func (r *LiveReceiver) loop() {
	defer func() {
		r.mu.Lock()
		r.dead = true
		r.cond.Broadcast()
		r.mu.Unlock()
		close(r.done)
	}()
	buf := make([]byte, 65536)
	// ext maps the RTP 16-bit sequence onto the sender's 64-bit cipher IV
	// counter by nearest-epoch extension, so a straggler reordered across
	// an epoch wrap still decrypts under its original IV (see seqExtender).
	var ext seqExtender
	for {
		n, from, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt, err := rtp.Parse(buf[:n])
		if err != nil {
			continue
		}
		// Sequence extension happens before the loss decision so
		// sequence-addressed droppers (burst over one I-frame) see every
		// arrival, like the channel would.
		seq64 := ext.Extend(pkt.Sequence)
		r.mu.Lock()
		dropper := r.dropper
		r.mu.Unlock()
		if dropper != nil && dropper.DropSeq(seq64) {
			continue
		}
		payload := append([]byte(nil), pkt.Payload...)
		r.mu.Lock()
		r.nackFrom = from
		if r.window.Mark(seq64) {
			// Duplicate delivery (retransmit raced the original, or
			// link-layer duplication): count it separately and ignore it
			// so captured/usable reflect first deliveries only.
			r.dups++
			mRxDuplicates.Inc()
			r.cond.Broadcast()
			r.mu.Unlock()
			continue
		}
		if seq64 >= r.maxSeq {
			r.maxSeq = seq64 + 1
		}
		r.haveSeq = true
		if r.nackAt != nil {
			if t0, ok := r.nackAt[seq64]; ok {
				mNACKRecoverySeconds.Observe(time.Since(t0).Seconds())
				delete(r.nackAt, seq64)
			}
			// The sequence arrived: its retry count must not linger, or
			// the map grows one entry per recovered loss forever.
			delete(r.nackTry, seq64)
		}
		r.captured++
		mRxCaptured.Inc()
		if pkt.Encrypted() {
			if r.cipher == nil {
				r.cond.Broadcast()
				r.mu.Unlock()
				continue // eavesdropper: erasure
			}
			span := len(payload)
			if r.hdrOnly > 0 && r.hdrOnly < span {
				span = r.hdrOnly
			}
			r.cipher.DecryptPacket(seq64, payload[:span])
		}
		if err := r.asm.Add(payload); err == nil {
			r.received++
			mRxUsable.Inc()
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// WaitForPackets blocks until the receiver has captured at least n
// packets, the timeout elapses, or the receiver is closed. Waiters are
// woken by arrival signalling (no polling).
func (r *LiveReceiver) WaitForPackets(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		// Broadcast under the lock so a waiter between its deadline
		// check and cond.Wait cannot miss the wakeup.
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.captured < n {
		if r.dead {
			return errors.New("transport: receiver closed while waiting for packets")
		}
		if !time.Now().Before(deadline) {
			return errors.New("transport: timed out waiting for packets")
		}
		r.cond.Wait()
	}
	return nil
}

// Frames returns the reassembled (possibly partial) encoded frames.
func (r *LiveReceiver) Frames(total int) []*codec.EncodedFrame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.asm.Frames(total)
}

// Stats returns (captured, usable) packet counts. Both count first
// deliveries only: an arrival whose sequence was already delivered
// (link-layer duplication, a retransmit racing the original) is
// tracked by Duplicates instead of inflating either count.
func (r *LiveReceiver) Stats() (captured, usable int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.captured, r.received
}

// Duplicates returns how many arrivals repeated an already-delivered
// sequence.
func (r *LiveReceiver) Duplicates() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dups
}

// NACK datagrams travel receiver→sender on the same socket pair:
//
//	"TVNK" (4) | count (2, big endian) | count × seq (8, big endian)
//
// The magic cannot begin a valid RTP packet (version bits would be 1),
// so senders and receivers cheaply tell the two apart.
var nackMagic = [4]byte{'T', 'V', 'N', 'K'}

func marshalNACK(seqs []uint64) []byte {
	if len(seqs) > maxNackBatch {
		seqs = seqs[:maxNackBatch]
	}
	out := make([]byte, 6+8*len(seqs))
	copy(out[:4], nackMagic[:])
	binary.BigEndian.PutUint16(out[4:6], uint16(len(seqs)))
	for i, s := range seqs {
		binary.BigEndian.PutUint64(out[6+8*i:], s)
	}
	return out
}

func parseNACK(data []byte) ([]uint64, bool) {
	if len(data) < 6 || [4]byte(data[:4]) != nackMagic {
		return nil, false
	}
	n := int(binary.BigEndian.Uint16(data[4:6]))
	if len(data) < 6+8*n {
		return nil, false
	}
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = binary.BigEndian.Uint64(data[6+8*i:])
	}
	return seqs, true
}

// ReliableUDPOptions tunes LiveUDPSendReliable.
type ReliableUDPOptions struct {
	// Drain is how long the sender keeps servicing NACKs after the last
	// packet (default 500ms).
	Drain time.Duration
	// Conditioner, when non-nil, impairs the sender-side link: packets
	// may be dropped before the socket (lost on the air), delayed
	// (jitter/reordering), or duplicated. Dropped I-frame packets still
	// enter the retransmit buffer, so NACKs recover them.
	Conditioner *netem.Conditioner
}

// LiveUDPSendReliable streams like LiveUDPSend but adds a NACK-driven
// selective-retransmit loop for I-frame packets: every transmitted
// I-frame packet is buffered, a reader goroutine services the receiver's
// NACKs during the transfer and for a drain period after it, and each
// retransmission reuses the original RTP bytes so the receiver's
// per-sequence decrypt and dedup stay correct. P packets are never
// retransmitted — losing one costs a few macroblocks, while losing an
// I-frame burst wrecks the whole GOP (the asymmetry the paper's policies
// are built on). The receiver must have EnableNACK active.
func LiveUDPSendReliable(s Session, rxAddr, evAddr string, pace bool, opts ReliableUDPOptions) (LiveSendReport, error) {
	var rep LiveSendReport
	if err := s.Validate(); err != nil {
		return rep, err
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return rep, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return rep, err
	}
	ledger.Emit(ledger.EventPolicy, "udp-reliable", 0, 0, s.Policy.Name())
	raddr, err := net.ResolveUDPAddr("udp", rxAddr)
	if err != nil {
		return rep, fmt.Errorf("transport: resolve receiver: %w", err)
	}
	rxConn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return rep, fmt.Errorf("transport: dial receiver: %w", err)
	}
	defer rxConn.Close()
	var evConn net.Conn
	if evAddr != "" {
		evConn, err = net.Dial("udp", evAddr)
		if err != nil {
			return rep, fmt.Errorf("transport: dial eavesdropper: %w", err)
		}
		defer evConn.Close()
	}
	drain := opts.Drain
	if drain <= 0 {
		drain = 500 * time.Millisecond
	}

	// Retransmit buffer: extended seq → original marshaled RTP bytes.
	var (
		bufMu       sync.Mutex
		iBuf        = make(map[uint64][]byte)
		retransmits int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 65536)
		for {
			rxConn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck // UDP deadline set cannot fail
			n, err := rxConn.Read(buf)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue // deadline tick; keep listening
				}
			}
			seqs, ok := parseNACK(buf[:n])
			if !ok {
				continue
			}
			// Snapshot the buffered packets under the lock, write after
			// releasing it: the send loop stores fresh I-frame packets
			// under the same mutex, and a UDP write stalled by the OS
			// would otherwise stall the encode path with it.
			var resend [][]byte
			bufMu.Lock()
			for _, seq := range seqs {
				if out, have := iBuf[seq]; have {
					resend = append(resend, out)
					retransmits++
					mNACKRetransmits.Inc()
				}
			}
			bufMu.Unlock()
			for _, out := range resend {
				rxConn.Write(out) //nolint:errcheck // best effort, like the medium
			}
		}
	}()

	seqr := rtp.NewSequencer(0x7561) // same arbitrary SSRC as LiveUDPSend
	pool := codec.NewBufPool()
	var wps []codec.WirePacket
	start := time.Now()
	seq := 0
	for fi, ef := range s.Encoded {
		wps, err = codec.PacketizeInto(ef, s.MTU, rtp.HeaderSize, pool, wps[:0])
		if err != nil {
			close(stop)
			wg.Wait()
			return rep, err
		}
		if pace {
			due := start.Add(time.Duration(float64(fi) / s.FPS * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				// Precompute this frame's keystreams while waiting for
				// its release time (see LiveUDPSend).
				go cipher.Prefetch(uint64(seq), len(wps), s.MTU)
				time.Sleep(d)
			}
		}
		for i := range wps {
			pkt := &wps[i]
			payload := pkt.Payload
			if s.PadToMTU && len(payload) < s.MTU {
				payload = zeroPad(payload, s.MTU-len(payload))
			}
			encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
			out := seqr.Next(payload, float64(fi)/s.FPS, encrypted).MarshalInto(pkt.Wire(len(payload)))
			if encrypted {
				t0 := time.Now()
				cipher.EncryptPacket(uint64(seq), out[rtp.HeaderSize:][:s.Policy.EncryptSpan(len(payload))])
				rep.CryptoTime += time.Since(t0)
				rep.Encrypted++
				mUDPEncrypted.Inc()
				if span := s.Policy.EncryptSpan(len(payload)); span < len(payload) {
					ledger.Emit(ledger.EventHeaderOnly, "udp-reliable", uint64(seq), uint64(span), "")
				}
			} else {
				ledger.Emit(ledger.EventPlainPacket, "udp-reliable", uint64(seq), uint64(len(payload)), "")
			}
			if pkt.IsIFrame() {
				bufMu.Lock()
				iBuf[uint64(seq)] = out
				bufMu.Unlock()
				//lint:retain(I-frame retransmit queue holds the marshaled bytes until the drain ends)
				pkt.Retain()
			}
			send := true
			if opts.Conditioner != nil {
				imp := opts.Conditioner.Next(uint64(seq))
				switch {
				case imp.Drop:
					send = false
					rep.Dropped++
				default:
					if imp.Delay > 0 {
						time.Sleep(imp.Delay)
					}
					for i := 0; i < imp.Duplicates; i++ {
						rxConn.Write(out) //nolint:errcheck // duplicates are opportunistic
						rep.Duplicated++
					}
				}
			}
			if send {
				if _, err := rxConn.Write(out); err != nil {
					pool.Put(pkt)
					close(stop)
					wg.Wait()
					return rep, fmt.Errorf("transport: send to receiver: %w", err)
				}
			}
			if evConn != nil {
				if _, err := evConn.Write(out); err != nil {
					pool.Put(pkt)
					close(stop)
					wg.Wait()
					return rep, fmt.Errorf("transport: send to eavesdropper: %w", err)
				}
			}
			rep.Packets++
			rep.Bytes += len(out)
			mUDPPacketsSent.Inc()
			mUDPBytesSent.Add(int64(len(out)))
			// Retained I-frame buffers live on in the retransmit map and
			// never rejoin the pool (Put after Retain is a no-op); P/B
			// buffers recycle at once.
			pool.Put(pkt)
			seq++
		}
	}
	// Keep answering NACKs while the receiver notices its gaps.
	time.Sleep(drain)
	close(stop)
	wg.Wait()
	bufMu.Lock()
	rep.Retransmits = retransmits
	bufMu.Unlock()
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Close shuts the socket down.
func (r *LiveReceiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.conn.Close()
	<-r.done
	return err
}
