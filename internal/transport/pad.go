package transport

// zeroBlock is the static source for MTU padding. Appending from it in
// chunks zero-fills the pad region explicitly, which matters for pooled
// wire buffers: recycled buffers still hold the previous packet's bytes
// past the payload, and padding must not leak them onto the wire.
var zeroBlock [2048]byte

// zeroPad appends n zero bytes to p. When p has capacity for them (wire
// buffers are sized to hold a full MTU of payload) the extension happens
// in place with no allocation, replacing the old pad-with-make pattern
// on every send path.
func zeroPad(p []byte, n int) []byte {
	for n > 0 {
		c := n
		if c > len(zeroBlock) {
			c = len(zeroBlock)
		}
		p = append(p, zeroBlock[:c]...)
		n -= c
	}
	return p
}
