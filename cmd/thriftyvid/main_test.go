package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

func TestParseMotion(t *testing.T) {
	cases := map[string]video.MotionLevel{
		"slow": video.MotionLow, "low": video.MotionLow,
		"medium": video.MotionMedium, "med": video.MotionMedium,
		"fast": video.MotionHigh, "HIGH": video.MotionHigh,
	}
	for in, want := range cases {
		got, err := parseMotion(in)
		if err != nil || got != want {
			t.Fatalf("parseMotion(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseMotion("warp"); err == nil {
		t.Fatal("bad motion should fail")
	}
}

func TestParseAlg(t *testing.T) {
	for in, want := range map[string]vcrypt.Algorithm{
		"aes128": vcrypt.AES128, "AES256": vcrypt.AES256, "3des": vcrypt.TripleDES,
	} {
		got, err := parseAlg(in)
		if err != nil || got != want {
			t.Fatalf("parseAlg(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlg("rot13"); err == nil {
		t.Fatal("bad algorithm should fail")
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := parsePolicy("i+p", 0.2, vcrypt.AES256)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != vcrypt.ModeIPlusFracP || p.FracP != 0.2 {
		t.Fatalf("policy %+v", p)
	}
	if _, err := parsePolicy("i+p", 9, vcrypt.AES256); err == nil {
		t.Fatal("bad fraction should fail")
	}
	if _, err := parsePolicy("quantum", 0, vcrypt.AES128); err == nil {
		t.Fatal("bad mode should fail")
	}
	for _, mode := range []string{"none", "all", "i", "p", "half-i"} {
		if _, err := parsePolicy(mode, 0, vcrypt.AES128); err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
	}
}

func TestParseDevice(t *testing.T) {
	s, err := parseDevice("samsung")
	if err != nil || s.Name == "" {
		t.Fatalf("samsung: %v", err)
	}
	h, err := parseDevice("htc")
	if err != nil || h.Name == s.Name {
		t.Fatalf("htc: %v", err)
	}
	if _, err := parseDevice("nokia3310"); err == nil {
		t.Fatal("unknown device should fail")
	}
}

func TestDeriveKeySizes(t *testing.T) {
	for _, alg := range []vcrypt.Algorithm{vcrypt.AES128, vcrypt.AES256, vcrypt.TripleDES} {
		k := deriveKey("hunter2", alg)
		if len(k) != alg.KeySize() {
			t.Fatalf("%v: key size %d", alg, len(k))
		}
		if _, err := vcrypt.NewCipher(alg, k); err != nil {
			t.Fatalf("%v: derived key unusable: %v", alg, err)
		}
	}
	a := deriveKey("a", vcrypt.AES256)
	b := deriveKey("b", vcrypt.AES256)
	if bytes.Equal(a, b) {
		t.Fatal("different passphrases must give different keys")
	}
}

func TestYUVAndContainerRoundTripViaHelpers(t *testing.T) {
	dir := t.TempDir()
	clip := video.Generate(video.SceneConfig{W: 32, H: 32, Frames: 4, Motion: video.MotionLow, Seed: 1})
	yuvPath := filepath.Join(dir, "c.yuv")
	f, err := os.Create(yuvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range clip {
		if err := fr.WriteYUV(f); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	got, err := readYUVClip(yuvPath, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("read %d frames", len(got))
	}
	if _, err := readYUVClip(filepath.Join(dir, "missing.yuv"), 32, 32); err == nil {
		t.Fatal("missing file should fail")
	}

	cfg := codec.Config{Width: 32, Height: 32, GOPSize: 4, QI: 8, QP: 10, SearchRange: 8}
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cPath := filepath.Join(dir, "c.tvid")
	cf, err := os.Create(cPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteContainer(cf, cfg, encoded); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	gotCfg, gotFrames, err := loadContainer(cPath)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg != cfg || len(gotFrames) != len(encoded) {
		t.Fatal("container round trip mismatch")
	}
}
