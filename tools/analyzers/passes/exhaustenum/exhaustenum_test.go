package exhaustenum

import (
	"testing"

	"repro/tools/analyzers/lintkit"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, Analyzer, "testdata/flagged", "repro/internal/enumfix")
}

func TestAllowed(t *testing.T) {
	lintkit.RunTestNone(t, Analyzer, "testdata/allowed", "repro/internal/enumfix")
}

// TestOutsideModule pins the module gate: the same defaultless switch
// is silent when the enum type lives outside the repro module.
func TestOutsideModule(t *testing.T) {
	lintkit.RunTestNone(t, Analyzer, "testdata/flagged", "example.com/vendored/enumfix")
}
