package energy

import (
	"math"
	"testing"

	"repro/internal/vcrypt"
)

func TestEncryptTimeOrdering(t *testing.T) {
	for _, p := range Devices() {
		aes128, err := p.EncryptTime(vcrypt.AES128, 1400)
		if err != nil {
			t.Fatal(err)
		}
		aes256, _ := p.EncryptTime(vcrypt.AES256, 1400)
		tdes, _ := p.EncryptTime(vcrypt.TripleDES, 1400)
		if !(aes128 < aes256 && aes256 < tdes) {
			t.Fatalf("%s: cipher cost ordering violated: %v %v %v", p.Name, aes128, aes256, tdes)
		}
	}
}

func TestEncryptTimeGrowsWithSize(t *testing.T) {
	p := SamsungGalaxySII()
	small, _ := p.EncryptTime(vcrypt.AES256, 100)
	big, _ := p.EncryptTime(vcrypt.AES256, 1400)
	if big <= small {
		t.Fatal("larger packets must take longer")
	}
	// Per-packet overhead must matter: encrypting 14 packets of 100 B
	// costs more than one packet of 1400 B (the effect that makes P-frame
	// encryption expensive, Section 6.3).
	if 14*small <= big {
		t.Fatal("per-packet overhead not reflected")
	}
}

func TestHTCFasterThanSamsung(t *testing.T) {
	s, _ := SamsungGalaxySII().EncryptTime(vcrypt.AES256, 1400)
	h, _ := HTCAmaze4G().EncryptTime(vcrypt.AES256, 1400)
	if h >= s {
		t.Fatalf("HTC (%v) should be faster than Samsung (%v)", h, s)
	}
}

func TestEncryptTimeErrors(t *testing.T) {
	p := SamsungGalaxySII()
	if _, err := p.EncryptTime(vcrypt.Algorithm(9), 100); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := p.EncryptTime(vcrypt.AES128, -1); err == nil {
		t.Fatal("negative payload should fail")
	}
}

func TestEncryptTimeStats(t *testing.T) {
	p := SamsungGalaxySII()
	mean, sigma, err := p.EncryptTimeStats(vcrypt.AES256, []int{1400, 1400})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.EncryptTime(vcrypt.AES256, 1400)
	if math.Abs(mean-want) > 1e-15 || sigma != 0 {
		t.Fatalf("stats (%v, %v)", mean, sigma)
	}
	mean2, sigma2, _ := p.EncryptTimeStats(vcrypt.AES256, []int{200, 1400})
	if sigma2 <= 0 || mean2 <= 0 {
		t.Fatal("varied sizes must give positive sigma")
	}
	if _, _, err := p.EncryptTimeStats(vcrypt.AES256, nil); err == nil {
		t.Fatal("empty class should fail")
	}
}

func TestMeterBaselineOnly(t *testing.T) {
	p := SamsungGalaxySII()
	m := NewMeter(p)
	w, err := m.AveragePower(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-p.IdlePower) > 1e-12 {
		t.Fatalf("idle power = %v want %v", w, p.IdlePower)
	}
}

func TestMeterComponentsAdd(t *testing.T) {
	p := SamsungGalaxySII()
	m := NewMeter(p)
	m.AddCrypto(2)
	m.AddTx(3)
	m.AddEnergy(1.5)
	w, err := m.AveragePower(10)
	if err != nil {
		t.Fatal(err)
	}
	want := (p.IdlePower*10 + p.CPUActivePower*2 + p.TxPower*3 + 1.5) / 10
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("power = %v want %v", w, want)
	}
	if math.Abs(m.EnergyJoules()-want*10) > 1e-9 {
		t.Fatalf("energy = %v", m.EnergyJoules())
	}
}

func TestMeterRejectsOverrun(t *testing.T) {
	m := NewMeter(SamsungGalaxySII())
	m.AddCrypto(11)
	if _, err := m.AveragePower(10); err == nil {
		t.Fatal("crypto time exceeding duration should fail")
	}
	if _, err := NewMeter(SamsungGalaxySII()).AveragePower(0); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestMeterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMeter(SamsungGalaxySII()).AddCrypto(-1)
}

func TestMicroAmpHoursConversion(t *testing.T) {
	// Eq. (29): v * 3.9 V * 3600e-6 / duration.
	w, err := MicroAmpHoursToWatts(1000, PaperSupplyVoltage, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * 3.9 * 3600e-6 / 10
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("conversion = %v want %v", w, want)
	}
	if _, err := MicroAmpHoursToWatts(10, 3.9, 0); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestEncryptionPolicyPowerOrdering(t *testing.T) {
	// Simulate a 10-second stream with a fixed byte budget: no encryption,
	// I-only, P-only, all. Power must be strictly increasing in that
	// order when P bytes+packets dominate.
	p := SamsungGalaxySII()
	duration := 10.0
	iSizes := make([]int, 80)
	for i := range iSizes {
		iSizes[i] = 1400
	}
	pSizes := make([]int, 600)
	for i := range pSizes {
		pSizes[i] = 700
	}
	power := func(encI, encP bool) float64 {
		m := NewMeter(p)
		if encI {
			for _, s := range iSizes {
				et, _ := p.EncryptTime(vcrypt.AES256, s)
				m.AddCrypto(et)
			}
		}
		if encP {
			for _, s := range pSizes {
				et, _ := p.EncryptTime(vcrypt.AES256, s)
				m.AddCrypto(et)
			}
		}
		m.AddTx(1.0)
		w, err := m.AveragePower(duration)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	none := power(false, false)
	iOnly := power(true, false)
	pOnly := power(false, true)
	all := power(true, true)
	if !(none < iOnly && iOnly < pOnly && pOnly < all) {
		t.Fatalf("power ordering violated: %v %v %v %v", none, iOnly, pOnly, all)
	}
}
