// Trafficanalysis demonstrates the side channel the paper's threat model
// names but defers (Section 3): a passive observer who cannot decrypt
// anything can still tell I-frame packets from P-frame packets by size —
// and under a class-based policy, the marker bit itself confirms the
// guess. The example mounts the attack on a capture, applies the
// pad-to-MTU countermeasure, quantifies its delay/energy cost, and shows
// the timing-burst attack that padding alone does not close.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

func buildMedium(seed uint64) *wifi.Medium {
	params := wifi.NewDefaultDCF(3)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		log.Fatal(err)
	}
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, wifi.Rate54, dcf, wifi.BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(seed))
	return med
}

func capture(res *transport.Result) (obs []traffic.Observation, labels []bool) {
	for _, rec := range res.Records {
		if !rec.EavesGot {
			continue
		}
		obs = append(obs, traffic.Observation{Size: rec.Size, Time: rec.Departure})
		labels = append(labels, rec.IFrame)
	}
	return obs, labels
}

func main() {
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 90, Motion: video.MotionLow, Seed: 21})
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	base := transport.Session{
		Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
		Policy: pol, Key: make([]byte, pol.Alg.KeySize()),
		Device: energy.SamsungGalaxySII(), Medium: buildMedium(1),
	}

	// 1. The attack on plain traffic.
	res, err := transport.RunUDP(base, 1)
	if err != nil {
		log.Fatal(err)
	}
	obs, labels := capture(res)
	clf, err := traffic.TrainSizeClassifier(obs, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unpadded traffic: size classifier (threshold %d B) identifies I-packets with %.1f%% accuracy (base rate %.1f%%)\n",
		clf.Threshold, traffic.Accuracy(clf, obs, labels)*100, traffic.BaseRate(labels)*100)

	// 2. Pad to MTU and mount the same attack.
	padded := base
	padded.Medium = buildMedium(2)
	padded.PadToMTU = true
	resPad, err := transport.RunUDP(padded, 2)
	if err != nil {
		log.Fatal(err)
	}
	obsPad, labelsPad := capture(resPad)
	clfPad, err := traffic.TrainSizeClassifier(obsPad, labelsPad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("padded traffic:   size classifier accuracy %.1f%% — reduced to the base rate %.1f%%\n",
		traffic.Accuracy(clfPad, obsPad, labelsPad)*100, traffic.BaseRate(labelsPad)*100)

	// 3. The countermeasure's bill.
	fmt.Printf("padding cost:     delay %.2f -> %.2f ms, power %.2f -> %.2f W\n",
		res.MeanSojourn*1e3, resPad.MeanSojourn*1e3, res.AveragePowerW, resPad.AveragePowerW)

	// 4. Timing still leaks: I-frames arrive as multi-packet bursts.
	burst := traffic.BurstClassifier{Gap: 2e-3, MinRun: 3}
	pred := burst.ClassifyAll(obsPad)
	fmt.Printf("timing attack:    burst classifier recovers I-packets with %.1f%% accuracy on PADDED traffic\n",
		traffic.AccuracyAll(pred, labelsPad)*100)
	fmt.Println("\nconclusion: padding hides sizes at a measurable cost, but burst timing still marks the")
	fmt.Println("I-frames — closing the channel needs constant-rate cover traffic, beyond the paper's scope.")
}
