package traffic

import (
	"testing"

	"repro/internal/stats"
)

// synthCapture builds an observation trace shaped like a GOP-30 clip:
// bursts of nI MTU-sized packets every second, single small P packets at
// 30/s otherwise.
func synthCapture(rng *stats.RNG, seconds, nI, pSize, mtu int) (obs []Observation, labels []bool) {
	t := 0.0
	for s := 0; s < seconds; s++ {
		for i := 0; i < nI; i++ {
			obs = append(obs, Observation{Size: mtu, Time: t})
			labels = append(labels, true)
			t += 50e-6
		}
		for p := 0; p < 29; p++ {
			t += 1.0 / 30
			size := pSize + rng.Intn(100)
			obs = append(obs, Observation{Size: size, Time: t})
			labels = append(labels, false)
		}
		t += 1.0 / 30
	}
	return obs, labels
}

func TestSizeClassifierSeparatesClasses(t *testing.T) {
	rng := stats.NewRNG(1)
	obs, labels := synthCapture(rng, 10, 8, 400, 1400)
	c, err := TrainSizeClassifier(obs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(c, obs, labels); acc < 0.99 {
		t.Fatalf("unpadded traffic should be trivially classifiable, accuracy %v", acc)
	}
	// Any boundary strictly between the largest P packet (499 B) and the
	// MTU separates perfectly; the trainer picks the first one.
	if c.Threshold < 500 || c.Threshold > 1400 {
		t.Fatalf("threshold %d implausible", c.Threshold)
	}
}

func TestPaddingDefeatsSizeClassifier(t *testing.T) {
	rng := stats.NewRNG(2)
	obs, labels := synthCapture(rng, 10, 8, 400, 1400)
	for i := range obs {
		obs[i].Size = PadTo(obs[i].Size, 1400)
	}
	c, err := TrainSizeClassifier(obs, labels)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(c, obs, labels)
	base := BaseRate(labels)
	if acc > base+0.01 {
		t.Fatalf("padding should reduce the classifier to the base rate: acc %v base %v", acc, base)
	}
}

func TestBurstClassifierSurvivesPadding(t *testing.T) {
	rng := stats.NewRNG(3)
	obs, labels := synthCapture(rng, 10, 8, 400, 1400)
	for i := range obs {
		obs[i].Size = PadTo(obs[i].Size, 1400) // sizes hidden
	}
	c := BurstClassifier{Gap: 1e-3, MinRun: 3}
	pred := c.ClassifyAll(obs)
	if acc := AccuracyAll(pred, labels); acc < 0.95 {
		t.Fatalf("timing bursts should still identify I-frames: accuracy %v", acc)
	}
}

func TestTrainSizeClassifierErrors(t *testing.T) {
	if _, err := TrainSizeClassifier(nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := TrainSizeClassifier(make([]Observation, 2), make([]bool, 3)); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestBaseRate(t *testing.T) {
	if BaseRate([]bool{true, true, false}) != 2.0/3 {
		t.Fatal("majority-I base rate wrong")
	}
	if BaseRate([]bool{true, false, false, false}) != 0.75 {
		t.Fatal("majority-P base rate wrong")
	}
	if BaseRate(nil) != 0 {
		t.Fatal("empty base rate should be 0")
	}
}

func TestPadTo(t *testing.T) {
	if PadTo(100, 1400) != 1400 || PadTo(1400, 1400) != 1400 || PadTo(1500, 1400) != 1500 {
		t.Fatal("PadTo wrong")
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	if Accuracy(SizeClassifier{}, nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	if AccuracyAll([]bool{true}, []bool{true, false}) != 0 {
		t.Fatal("mismatched AccuracyAll should be 0")
	}
}

func TestTrainSizeClassifierAllOneClass(t *testing.T) {
	obs := []Observation{{Size: 100}, {Size: 200}, {Size: 300}}
	labels := []bool{false, false, false}
	c, err := TrainSizeClassifier(obs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(c, obs, labels); acc != 1 {
		t.Fatalf("single-class training should be perfect, got %v", acc)
	}
}
