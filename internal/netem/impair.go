package netem

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// Window is one link-outage interval, expressed as offsets from the
// schedule's epoch so a plan is deterministic and clock-independent.
type Window struct {
	Start, End time.Duration
}

// OutageSchedule models planned 100%-loss windows — the AP reboots, the
// phone walks through a dead spot — against which retry logic is tested.
// Offsets are evaluated against an epoch armed with Start (or the first
// Active call), while ActiveAt stays a pure function of elapsed time for
// deterministic tests.
type OutageSchedule struct {
	mu      sync.Mutex
	windows []Window
	epoch   time.Time
}

// NewOutageSchedule validates and stores the windows.
func NewOutageSchedule(windows ...Window) (*OutageSchedule, error) {
	for _, w := range windows {
		if w.Start < 0 || w.End <= w.Start {
			return nil, fmt.Errorf("netem: bad outage window [%v,%v)", w.Start, w.End)
		}
	}
	return &OutageSchedule{windows: append([]Window(nil), windows...)}, nil
}

// Start arms the schedule: window offsets count from t. Calling Start
// again re-arms it.
func (o *OutageSchedule) Start(t time.Time) {
	o.mu.Lock()
	o.epoch = t
	o.mu.Unlock()
}

// ActiveAt reports whether the link is down at the given elapsed time
// since the epoch. Pure and deterministic.
func (o *OutageSchedule) ActiveAt(elapsed time.Duration) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, w := range o.windows {
		if elapsed >= w.Start && elapsed < w.End {
			return true
		}
	}
	return false
}

// Active reports whether the link is down now, arming the epoch on first
// use if Start was never called.
func (o *OutageSchedule) Active() bool {
	o.mu.Lock()
	if o.epoch.IsZero() {
		o.epoch = time.Now() //lint:allow walltime real-socket feature: outage epoch is wall-clock by design; ActiveAt is the deterministic form
	}
	elapsed := time.Since(o.epoch) //lint:allow walltime real-socket feature: outage epoch is wall-clock by design; ActiveAt is the deterministic form
	o.mu.Unlock()
	active := o.ActiveAt(elapsed)
	if active {
		mOutageActive.Set(1)
	} else {
		mOutageActive.Set(0)
	}
	return active
}

// ConditionerConfig parameterises link impairments beyond loss.
type ConditionerConfig struct {
	// DelayMean and DelayJitter add a per-packet delay drawn from
	// N(DelayMean, DelayJitter) truncated at zero. Varying delay is what
	// reorders datagrams in flight.
	DelayMean, DelayJitter time.Duration
	// DupProb duplicates a packet with this probability, as WiFi
	// link-layer retransmissions do when an ACK (not the data) was lost.
	DupProb float64
	// Loss, when non-nil, is consulted first; dropped packets are neither
	// delayed nor duplicated.
	Loss Dropper
	// Seed fixes the jitter/duplication randomness.
	Seed uint64
}

// Impairment is the conditioner's verdict for one packet.
type Impairment struct {
	Drop       bool
	Delay      time.Duration
	Duplicates int // extra copies to send beyond the original
}

// Conditioner draws deterministic per-packet impairments (loss, jitter,
// duplication) for a sender-side link emulation. Safe for concurrent use.
type Conditioner struct {
	mu   sync.Mutex
	cfg  ConditionerConfig
	rng  *stats.RNG
	drop int
	dup  int
}

// NewConditioner validates the config.
func NewConditioner(cfg ConditionerConfig) (*Conditioner, error) {
	if cfg.DupProb < 0 || cfg.DupProb >= 1 {
		return nil, fmt.Errorf("netem: duplication probability %g out of [0,1)", cfg.DupProb)
	}
	if cfg.DelayMean < 0 || cfg.DelayJitter < 0 {
		return nil, fmt.Errorf("netem: negative delay parameters")
	}
	return &Conditioner{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// Next returns the impairment for the packet with the given sequence.
func (c *Conditioner) Next(seq uint64) Impairment {
	var imp Impairment
	if c.cfg.Loss != nil && c.cfg.Loss.DropSeq(seq) {
		c.mu.Lock()
		c.drop++
		c.mu.Unlock()
		mCondDrops.Inc()
		imp.Drop = true
		return imp
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.DelayMean > 0 || c.cfg.DelayJitter > 0 {
		d := c.rng.Norm(float64(c.cfg.DelayMean), float64(c.cfg.DelayJitter))
		if d > 0 {
			imp.Delay = time.Duration(d)
		}
	}
	for c.cfg.DupProb > 0 && c.rng.Bool(c.cfg.DupProb) {
		imp.Duplicates++
		c.dup++
		mCondDups.Inc()
		if imp.Duplicates >= 3 { // WiFi retry chains are short
			break
		}
	}
	return imp
}

// Stats returns how many packets were dropped and duplicated so far.
func (c *Conditioner) Stats() (dropped, duplicated int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drop, c.dup
}
