package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SSA-lite taint engine. Values are tracked at the granularity of the
// root variable of an lvalue chain (x, x.f, x[i] and &x all key on x),
// facts flow forward over the CFG, and function boundaries are crossed
// with bottom-up summaries over the module call graph: each function is
// summarised by (a) which of its parameters reach a sink unsanitized
// and (b) which origins its results carry. Origins are a bitset — the
// distinguished Source bit for freshly created taint plus one bit per
// parameter position — so summaries compose by substitution at call
// sites.
//
// Soundness posture (documented in DESIGN.md): joins take the union of
// origins (a value tainted on any path stays tainted), loops re-taint
// through back edges, and unknown callees (function values, interface
// methods outside the sink spec) propagate taint from arguments to
// results and to the receiver. The engine under-approximates in three
// places: it does not model taint through channels or global state, an
// unknown callee is never itself a sink unless it matches a SinkSpec,
// and a function literal called through a variable is analyzed with the
// facts at its creation point, not its call point.

// Origins is a bitset of taint origins: the Source bit marks fresh
// taint, bit i marks "flows from parameter position i" (position 0 is
// the receiver for methods; positions beyond 62 share bit 62).
type Origins uint64

// OriginSource marks taint created inside the current function.
const OriginSource Origins = 1 << 63

// ParamOrigin returns the origin bit of parameter position i.
func ParamOrigin(i int) Origins {
	if i > 62 {
		i = 62
	}
	return 1 << uint(i)
}

const paramMask = ^OriginSource

// FuncMatch names a function or method without linking against its
// package: Path matches the defining package path exactly or as a
// "/"-suffix, Recv the receiver's named type ("" for package-level
// functions), Name the identifier.
type FuncMatch struct {
	Path string
	Recv string
	Name string
}

func matchPath(pkgPath, pat string) bool {
	if pat == "" || pkgPath == pat {
		return true
	}
	n := len(pkgPath) - len(pat)
	return n > 0 && pkgPath[n-1] == '/' && pkgPath[n:] == pat
}

// Matches reports whether fn is the named function.
func (m FuncMatch) Matches(fn *types.Func) bool {
	if fn == nil || fn.Name() != m.Name || fn.Pkg() == nil || !matchPath(fn.Pkg().Path(), m.Path) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if m.Recv == "" {
		return sig.Recv() == nil
	}
	return sig.Recv() != nil && recvTypeName(sig) == m.Recv
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// SinkSpec marks a call whose arguments must not carry taint.
type SinkSpec struct {
	Match FuncMatch
	// Args are the call positions checked (receiver = 0, first argument
	// = 1 for methods; first argument = 0 for package functions). Nil
	// checks every argument but not the receiver.
	Args []int
	// What names the sink in diagnostics ("net.Conn.Write").
	What string
}

// SanitizerSpec marks a call that clears the taint of one argument in
// place (vcrypt.Cipher.EncryptPacket encrypting a payload).
type SanitizerSpec struct {
	Match FuncMatch
	Arg   int // call position of the sanitized argument
}

// ConstMatch names a package-level constant (vcrypt.ModeNone).
type ConstMatch struct {
	Path string
	Name string
}

// TaintSpec configures one taint analysis.
type TaintSpec struct {
	// Sources are calls whose results carry fresh taint.
	Sources []FuncMatch
	// Sanitizers clear the taint of an argument.
	Sanitizers []SanitizerSpec
	// Sinks reject tainted arguments.
	Sinks []SinkSpec
	// PolicyGuards are boolean-returning calls encoding the encryption
	// policy's per-packet decision; true means "this packet will be
	// encrypted". On the branch edge where a guard is known false the
	// policy itself has sanctioned plaintext, so all taint is cleared
	// (the paper's selective-encryption semantics).
	PolicyGuards []FuncMatch
	// PolicyClearConsts are constants whose comparison carries the same
	// authority: `mode == ModeNone` true (or `mode != ModeNone` false)
	// sanctions plaintext on that edge.
	PolicyClearConsts []ConstMatch
	// SinkMessage formats the diagnostic; it receives the sink's What.
	SinkMessage func(what string) string
}

// TaintSummary is the interprocedural summary of one function.
type TaintSummary struct {
	// Result is the union of origins over all returned values,
	// expressed in the function's own parameter positions.
	Result Origins
	// SinkParams has bit i set when parameter position i reaches a sink
	// (directly or through callees) without sanitization.
	SinkParams Origins
}

// TaintEngine computes and caches summaries for one Program+spec and
// checks packages against them.
type TaintEngine struct {
	spec *TaintSpec
	prog *Program
	sums map[*types.Func]*TaintSummary
	// carry memoizes canCarry per type (1 = yes, 2 = no, 3 = in
	// progress, used as "no" to break recursive types).
	carry map[types.Type]int8
}

// canCarry reports whether a value of type t can transitively hold
// payload bytes. Storing taint is restricted to such types: an error, a
// bool or a bare int derived from a tainted buffer cannot leak the
// buffer's bytes, and without this filter the error result of a
// packetizer call would taint every early return.
func (e *TaintEngine) canCarry(t types.Type) bool {
	if t == nil {
		return true // unknown: stay conservative
	}
	switch e.carry[t] {
	case 1:
		return true
	case 2, 3:
		return false
	}
	e.carry[t] = 3
	res := e.carryUncached(t)
	if res {
		e.carry[t] = 1
	} else {
		e.carry[t] = 2
	}
	return res
}

func (e *TaintEngine) carryUncached(t types.Type) bool {
	switch t := t.(type) {
	case *types.Basic:
		return t.Info()&types.IsString != 0
	case *types.Slice:
		if b, ok := t.Elem().Underlying().(*types.Basic); ok {
			return b.Info()&types.IsNumeric != 0 || b.Info()&types.IsString != 0
		}
		return e.canCarry(t.Elem())
	case *types.Array:
		if b, ok := t.Elem().Underlying().(*types.Basic); ok {
			return b.Info()&types.IsNumeric != 0 || b.Info()&types.IsString != 0
		}
		return e.canCarry(t.Elem())
	case *types.Pointer:
		return e.canCarry(t.Elem())
	case *types.Map:
		return e.canCarry(t.Key()) || e.canCarry(t.Elem())
	case *types.Chan:
		return e.canCarry(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if e.canCarry(t.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Named:
		if t.Obj().Pkg() == nil && t.Obj().Name() == "error" {
			return false // the universe error interface carries no payload
		}
		return e.canCarry(t.Underlying())
	case *types.Interface:
		return true // dynamic type unknown
	case *types.Signature:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if e.canCarry(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

type taintCacheKey struct{ spec *TaintSpec }

// NewTaintEngine returns the engine for prog and spec, computing
// bottom-up summaries on first use (cached on the Program, so the cost
// is paid once per run however many packages are checked).
func NewTaintEngine(prog *Program, spec *TaintSpec) *TaintEngine {
	v := prog.Cache(taintCacheKey{spec}, func() any {
		e := &TaintEngine{
			spec:  spec,
			prog:  prog,
			sums:  make(map[*types.Func]*TaintSummary),
			carry: make(map[types.Type]int8),
		}
		e.computeSummaries()
		return e
	})
	return v.(*TaintEngine)
}

// Summary returns the computed summary of a module-local function (nil
// for unknown functions).
func (e *TaintEngine) Summary(fn *types.Func) *TaintSummary { return e.sums[fn] }

func (e *TaintEngine) computeSummaries() {
	cg := BuildCallGraph(e.prog)
	for _, scc := range cg.BottomUp() {
		for _, fn := range scc {
			if e.sums[fn] == nil {
				e.sums[fn] = &TaintSummary{}
			}
		}
		// Iterate the component to a fixpoint (summaries only grow).
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				old := *e.sums[fn]
				e.analyze(fn, nil)
				if *e.sums[fn] != old {
					changed = true
				}
			}
		}
	}
}

// Check reports sink violations in every function of the pass's
// package. Only Source-origin taint is reported here: a parameter
// flowing to a sink is the caller's finding (recorded in the summary
// and reported at the call site that supplies tainted data).
func (e *TaintEngine) Check(pass *Pass) {
	for _, fn := range e.prog.Funcs() {
		src := e.prog.Source(fn)
		if src == nil || src.Pkg.Types != pass.Pkg {
			continue
		}
		if e.sums[fn] == nil {
			e.sums[fn] = &TaintSummary{}
		}
		e.analyze(fn, pass)
	}
}

// analyze runs the flow problem over fn's body, updating its summary in
// place; with a non-nil pass it additionally reports Source-origin sink
// hits in a single deterministic visit.
func (e *TaintEngine) analyze(fn *types.Func, pass *Pass) {
	src := e.prog.Source(fn)
	if src == nil {
		return
	}
	cfg := BuildCFG(src.Decl.Body)
	p := &taintFlow{
		engine: e,
		info:   src.Pkg.Info,
		sum:    e.sums[fn],
		entry:  e.entryFact(src.Decl, src.Pkg.Info),
	}
	in := Solve(cfg, p)
	if pass == nil {
		return
	}
	// Reporting visit: one pass over the solved facts so each sink site
	// fires at most once.
	p.pass = pass
	for _, b := range cfg.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		transferBlock(p, b, p.Clone(f))
	}
}

// entryFact taints every parameter (and the receiver) with its own
// parameter-position origin.
func (e *TaintEngine) entryFact(decl *ast.FuncDecl, info *types.Info) *taintFact {
	f := newTaintFact()
	pos := 0
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && e.canCarry(obj.Type()) {
					f.vals[obj] = ParamOrigin(0)
				}
			}
		}
		pos = 1
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				pos++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && e.canCarry(obj.Type()) {
					f.vals[obj] = ParamOrigin(pos)
				}
				pos++
			}
		}
	}
	return f
}

// taintFact maps root objects to their origins, plus the set of boolean
// variables currently holding a policy decision.
type taintFact struct {
	vals   map[types.Object]Origins
	policy map[types.Object]bool
}

func newTaintFact() *taintFact {
	return &taintFact{vals: make(map[types.Object]Origins), policy: make(map[types.Object]bool)}
}

// taintFlow implements FlowProblem for one function.
type taintFlow struct {
	engine *TaintEngine
	info   *types.Info
	sum    *TaintSummary
	entry  *taintFact
	pass   *Pass // nil during summary fixpoint
	// lit guards against re-walking the same function literal within
	// one transfer chain.
	litDepth int
}

func (p *taintFlow) EntryFact() Fact { return p.Clone(p.entry) }

func (p *taintFlow) Clone(f Fact) Fact {
	t := f.(*taintFact)
	n := newTaintFact()
	for k, v := range t.vals {
		n.vals[k] = v
	}
	for k, v := range t.policy {
		n.policy[k] = v
	}
	return n
}

func (p *taintFlow) Join(a, b Fact) Fact {
	x, y := a.(*taintFact), b.(*taintFact)
	for k, v := range y.vals {
		x.vals[k] |= v
	}
	// A variable is a policy decision only if it is one on every path.
	for k := range x.policy {
		if !y.policy[k] {
			delete(x.policy, k)
		}
	}
	return x
}

func (p *taintFlow) Equal(a, b Fact) bool {
	x, y := a.(*taintFact), b.(*taintFact)
	if len(x.vals) != len(y.vals) || len(x.policy) != len(y.policy) {
		return false
	}
	for k, v := range x.vals {
		if y.vals[k] != v {
			return false
		}
	}
	for k := range x.policy {
		if !y.policy[k] {
			return false
		}
	}
	return true
}

func (p *taintFlow) TransferEdge(e *Edge, f Fact) Fact {
	t := f.(*taintFact)
	if e.Cond != nil && p.blessEdge(e.Cond, !e.Negated, t) {
		// The policy ruled "no encryption" for the value(s) in flight:
		// plaintext on this path is sanctioned, not leaked.
		t.vals = make(map[types.Object]Origins)
	}
	return t
}

// blessEdge reports whether taking cond with the given truth value
// implies the encryption policy sanctioned plaintext.
func (p *taintFlow) blessEdge(cond ast.Expr, taken bool, f *taintFact) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return p.blessEdge(c.X, taken, f)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return p.blessEdge(c.X, !taken, f)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return taken && (p.blessEdge(c.X, true, f) || p.blessEdge(c.Y, true, f))
		case token.LOR:
			return !taken && (p.blessEdge(c.X, false, f) || p.blessEdge(c.Y, false, f))
		}
	}
	isPolicy, trueMeansEncrypt := p.policyPolarity(cond, f)
	return isPolicy && taken != trueMeansEncrypt
}

// policyPolarity classifies an expression as a policy decision and
// tells whether its true value means "encrypt".
func (p *taintFlow) policyPolarity(e ast.Expr, f *taintFact) (isPolicy, trueMeansEncrypt bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return p.policyPolarity(e.X, f)
	case *ast.Ident:
		if obj := p.objOf(e); obj != nil && f.policy[obj] {
			return true, true
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			is, tme := p.policyPolarity(e.X, f)
			return is, !tme
		}
	case *ast.CallExpr:
		if fn := FuncForCall(p.info, e); fn != nil {
			for _, g := range p.engine.spec.PolicyGuards {
				if g.Matches(fn) {
					return true, true
				}
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.EQL || e.Op == token.NEQ {
			if p.isPolicyClearConst(e.X) || p.isPolicyClearConst(e.Y) {
				return true, e.Op == token.NEQ
			}
		}
	}
	return false, false
}

func (p *taintFlow) isPolicyClearConst(e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := p.info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	for _, m := range p.engine.spec.PolicyClearConsts {
		if c.Name() == m.Name && matchPath(c.Pkg().Path(), m.Path) {
			return true
		}
	}
	return false
}

func (p *taintFlow) Transfer(n ast.Node, f Fact) Fact {
	t := f.(*taintFact)
	switch n := n.(type) {
	case *ast.AssignStmt:
		p.assignStmt(n, t)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var o Origins
					var isPol bool
					if i < len(vs.Values) {
						o = p.eval(vs.Values[i], t)
						isPol, _ = p.policyPolarity(vs.Values[i], t)
					}
					p.setIdent(name, o, isPol, t)
				}
			}
		}
	case *ast.ExprStmt:
		p.eval(n.X, t)
	case *ast.RangeStmt:
		o := p.eval(n.X, t)
		if n.Key != nil {
			p.assignTo(n.Key, 0, t) // keys are indices/map keys: untainted
		}
		if n.Value != nil {
			p.assignTo(n.Value, o, t)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			o := p.eval(r, t)
			// Returns inside a function literal describe the literal's
			// result, not the enclosing function's summary.
			if p.litDepth == 0 {
				p.sum.Result |= o
			}
		}
	case *ast.SendStmt:
		p.eval(n.Chan, t)
		p.eval(n.Value, t)
	case *ast.IncDecStmt:
		p.eval(n.X, t)
	case *ast.GoStmt:
		p.evalCall(n.Call, t)
	case *ast.DeferStmt:
		// The call expression re-runs at the exit block; evaluate
		// argument side effects here where they actually happen.
		for _, a := range n.Call.Args {
			p.eval(a, t)
		}
	case *ast.CaseClause:
		for _, e := range n.List {
			p.eval(e, t)
		}
	case *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
	case ast.Expr:
		p.eval(n, t)
	case ast.Stmt:
		// Init statements hoisted by the CFG builder (if/for/switch
		// initializers arrive as their concrete statement types above).
	}
	return t
}

func (p *taintFlow) assignStmt(n *ast.AssignStmt, t *taintFact) {
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			o := p.eval(n.Rhs[i], t)
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				o |= p.eval(n.Lhs[i], t) // op= accumulates
			}
			isPol, _ := p.policyPolarity(n.Rhs[i], t)
			p.assignToPolicy(n.Lhs[i], o, isPol, t)
		}
		return
	}
	// x, y := f()  /  v, ok := m[k]  /  v, ok := x.(T)
	var o Origins
	for _, r := range n.Rhs {
		o |= p.eval(r, t)
	}
	for _, l := range n.Lhs {
		p.assignToPolicy(l, o, false, t)
	}
}

func (p *taintFlow) objOf(id *ast.Ident) types.Object {
	if obj := p.info.Uses[id]; obj != nil {
		return obj
	}
	return p.info.Defs[id]
}

// rootObject finds the root variable of an lvalue chain.
func (p *taintFlow) rootObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return p.objOf(x)
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Qualified package identifiers (pkg.Var) root at the var.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := p.info.Uses[id].(*types.PkgName); isPkg {
					return p.objOf(x.Sel)
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// filter drops origins that the object's type cannot physically hold.
func (p *taintFlow) filter(obj types.Object, o Origins) Origins {
	if o == 0 || p.engine.canCarry(obj.Type()) {
		return o
	}
	return 0
}

func (p *taintFlow) setIdent(id *ast.Ident, o Origins, isPolicy bool, t *taintFact) {
	obj := p.objOf(id)
	if obj == nil || id.Name == "_" {
		return
	}
	o = p.filter(obj, o)
	if o == 0 {
		delete(t.vals, obj)
	} else {
		t.vals[obj] = o
	}
	if isPolicy {
		t.policy[obj] = true
	} else {
		delete(t.policy, obj)
	}
}

// assignTo writes origins to an lvalue: strong update for identifiers,
// weak (accumulating) update for field/index stores.
func (p *taintFlow) assignTo(l ast.Expr, o Origins, t *taintFact) {
	p.assignToPolicy(l, o, false, t)
}

func (p *taintFlow) assignToPolicy(l ast.Expr, o Origins, isPolicy bool, t *taintFact) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		p.setIdent(id, o, isPolicy, t)
		return
	}
	if root := p.rootObject(l); root != nil {
		if o = p.filter(root, o); o != 0 {
			t.vals[root] |= o
		}
	}
}

// eval computes the origins of an expression, performing call side
// effects (sources, sanitizers, sinks, summaries) along the way.
func (p *taintFlow) eval(e ast.Expr, t *taintFact) Origins {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := p.objOf(e); obj != nil {
			return t.vals[obj]
		}
	case *ast.ParenExpr:
		return p.eval(e.X, t)
	case *ast.StarExpr:
		return p.eval(e.X, t)
	case *ast.UnaryExpr:
		return p.eval(e.X, t)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := p.info.Uses[id].(*types.PkgName); isPkg {
				if obj := p.objOf(e.Sel); obj != nil {
					return t.vals[obj]
				}
				return 0
			}
		}
		return p.eval(e.X, t)
	case *ast.IndexExpr:
		p.eval(e.Index, t)
		return p.eval(e.X, t)
	case *ast.SliceExpr:
		if e.Low != nil {
			p.eval(e.Low, t)
		}
		if e.High != nil {
			p.eval(e.High, t)
		}
		return p.eval(e.X, t)
	case *ast.TypeAssertExpr:
		return p.eval(e.X, t)
	case *ast.BinaryExpr:
		return p.eval(e.X, t) | p.eval(e.Y, t)
	case *ast.CompositeLit:
		var o Origins
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				o |= p.eval(kv.Value, t)
				continue
			}
			o |= p.eval(el, t)
		}
		return o
	case *ast.CallExpr:
		return p.evalCall(e, t)
	case *ast.FuncLit:
		p.analyzeLit(e, nil, t)
		return 0
	}
	return 0
}

// evalCall handles builtins, spec matches and summaries.
func (p *taintFlow) evalCall(call *ast.CallExpr, t *taintFact) Origins {
	fun := ast.Unparen(call.Fun)

	// Builtins and conversions.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.info.Uses[id].(*types.Builtin); ok {
			return p.evalBuiltin(b.Name(), call, t)
		}
		if _, isType := p.info.Uses[id].(*types.TypeName); isType {
			var o Origins
			for _, a := range call.Args {
				o |= p.eval(a, t)
			}
			return o // conversion: T(x)
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := p.info.Uses[id].(*types.PkgName); isPkg {
				if _, isType := p.info.Uses[sel.Sel].(*types.TypeName); isType {
					var o Origins
					for _, a := range call.Args {
						o |= p.eval(a, t)
					}
					return o // conversion: pkg.T(x)
				}
			}
		}
	}

	// A literal invoked (or launched) in place: bind its parameters to
	// the argument origins and analyze the body with the current facts.
	if lit, ok := fun.(*ast.FuncLit); ok {
		args := make([]Origins, len(call.Args))
		for i, a := range call.Args {
			args[i] = p.eval(a, t)
		}
		p.analyzeLit(lit, args, t)
		var o Origins
		for _, a := range args {
			o |= a
		}
		return o
	}

	// Positional origins: receiver first for methods.
	callee := FuncForCall(p.info, call)
	var pos []Origins
	var recvExpr ast.Expr
	isMethod := false
	if sel, ok := fun.(*ast.SelectorExpr); ok && callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			isMethod = true
			recvExpr = sel.X
		}
	}
	if isMethod {
		pos = append(pos, p.eval(recvExpr, t))
	}
	for _, a := range call.Args {
		pos = append(pos, p.eval(a, t))
	}

	if callee == nil {
		// Function value or unresolved call: propagate, never a sink.
		var o Origins
		for _, a := range pos {
			o |= a
		}
		p.eval(fun, t)
		return o
	}

	spec := p.engine.spec
	for _, s := range spec.Sanitizers {
		if s.Match.Matches(callee) && s.Arg < len(pos) {
			if root := p.sanitizeTarget(call, isMethod, s.Arg); root != nil {
				delete(t.vals, root)
			}
			pos[s.Arg] = 0
		}
	}
	for _, s := range spec.Sinks {
		if !s.Match.Matches(callee) {
			continue
		}
		checked := s.Args
		if checked == nil {
			first := 0
			if isMethod {
				first = 1
			}
			for i := first; i < len(pos); i++ {
				checked = append(checked, i)
			}
		}
		for _, i := range checked {
			if i < len(pos) {
				p.sinkHit(call, pos[i], s.What)
			}
		}
	}
	for _, s := range spec.Sources {
		if s.Matches(callee) {
			return OriginSource
		}
	}
	for _, g := range spec.PolicyGuards {
		if g.Matches(callee) {
			return 0
		}
	}

	if sum := p.engine.sums[callee]; sum != nil {
		// Module-local callee: substitute this call's origins into the
		// callee's parameter-indexed summary.
		for i, o := range pos {
			if sum.SinkParams&ParamOrigin(i) != 0 {
				p.sinkHit(call, o, fmt.Sprintf("a network write inside %s", callee.Name()))
			}
		}
		var o Origins
		if sum.Result&OriginSource != 0 {
			o |= OriginSource
		}
		for i, po := range pos {
			if sum.Result&ParamOrigin(i) != 0 {
				o |= po
			}
		}
		return o
	}

	// Unknown out-of-module callee: propagate arguments to the result
	// and, for methods, into the receiver (buf.Write(tainted) taints
	// buf).
	var o Origins
	for _, a := range pos {
		o |= a
	}
	if isMethod && o != 0 {
		if root := p.rootObject(recvExpr); root != nil {
			if ro := p.filter(root, o); ro != 0 {
				t.vals[root] |= ro
			}
		}
	}
	return o
}

// sinkHit records (and in reporting mode reports) taint arriving at a
// sink. Parameter origins feed the summary so callers report at their
// own call sites; Source origins are this function's finding.
func (p *taintFlow) sinkHit(call *ast.CallExpr, o Origins, what string) {
	p.sum.SinkParams |= o & paramMask
	if o&OriginSource != 0 && p.pass != nil {
		msg := "tainted packet payload reaches " + what + " without encryption"
		if p.engine.spec.SinkMessage != nil {
			msg = p.engine.spec.SinkMessage(what)
		}
		p.pass.Reportf(call.Pos(), "%s", msg)
	}
}

// sanitizeTarget resolves the root object of the sanitized argument.
func (p *taintFlow) sanitizeTarget(call *ast.CallExpr, isMethod bool, arg int) types.Object {
	idx := arg
	if isMethod {
		idx--
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return p.rootObject(call.Args[idx])
}

func (p *taintFlow) evalBuiltin(name string, call *ast.CallExpr, t *taintFact) Origins {
	switch name {
	case "append":
		var o Origins
		for _, a := range call.Args {
			o |= p.eval(a, t)
		}
		return o
	case "copy":
		if len(call.Args) == 2 {
			src := p.eval(call.Args[1], t)
			if root := p.rootObject(call.Args[0]); root != nil {
				if src = p.filter(root, src); src != 0 {
					t.vals[root] |= src
				}
			}
		}
		return 0
	case "len", "cap", "make", "new", "min", "max", "delete", "clear":
		for _, a := range call.Args {
			p.eval(a, t)
		}
		return 0
	default:
		var o Origins
		for _, a := range call.Args {
			o |= p.eval(a, t)
		}
		return o
	}
}

// analyzeLit walks a function literal's body with the facts at its
// creation point. Captured variables share their types.Object keys with
// the enclosing function, so taint flows in naturally; sink hits inside
// the literal land on the enclosing function's summary. args, when the
// literal is invoked or launched in place, bind the literal's own
// parameters.
func (p *taintFlow) analyzeLit(lit *ast.FuncLit, args []Origins, t *taintFact) {
	if p.litDepth >= 8 {
		return
	}
	entry := p.Clone(t).(*taintFact)
	if lit.Type.Params != nil {
		i := 0
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				var o Origins
				if args != nil && i < len(args) {
					o = args[i]
				}
				if obj := p.info.Defs[name]; obj != nil {
					if o = p.filter(obj, o); o != 0 {
						entry.vals[obj] = o
					}
				}
				i++
			}
		}
	}
	sub := &taintFlow{
		engine:   p.engine,
		info:     p.info,
		sum:      p.sum,
		entry:    entry,
		litDepth: p.litDepth + 1,
	}
	cfg := BuildCFG(lit.Body)
	in := Solve(cfg, sub)
	if p.pass != nil {
		sub.pass = p.pass
		for _, b := range cfg.Blocks {
			f, ok := in[b]
			if !ok {
				continue
			}
			transferBlock(sub, b, sub.Clone(f))
		}
	}
}
