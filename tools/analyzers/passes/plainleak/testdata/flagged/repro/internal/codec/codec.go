// Package codec is the miniature packetizer of the plainleak fixtures:
// Packetize is the taint source, exactly as in the real module.
package codec

// FrameType distinguishes the two slice classes.
type FrameType int

const (
	IFrame FrameType = iota
	PFrame
)

// Packet is one network-ready slice of an encoded frame.
type Packet struct {
	Type    FrameType
	Payload []byte
}

// Packetize splits an encoded frame into slice packets.
func Packetize(frame []byte, mtu int) ([]Packet, error) {
	return []Packet{{Type: IFrame, Payload: frame}}, nil
}
