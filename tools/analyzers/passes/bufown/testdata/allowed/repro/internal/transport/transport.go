// Package transport holds the clean ownership shapes the pass must not
// flag: release on every path (including in-loop error returns), the
// annotated retain branch of the reliable sender, ownership transfer
// out of the function, consumption through a module-local wrapper, and
// the explicit allow escape hatch.
package transport

import (
	"errors"

	"repro/internal/codec"
)

// cleanLoop releases every packet on every path, including the error
// return inside the loop.
func cleanLoop(ef *codec.EncodedFrame, pool *codec.BufPool) error {
	wps, err := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	if err != nil {
		return err
	}
	for i := range wps {
		pkt := &wps[i]
		if len(pkt.Payload) == 0 {
			pool.Put(pkt)
			return errors.New("transport: empty payload")
		}
		pool.Put(pkt)
	}
	return nil
}

// retainBranch mirrors the reliable sender: I-frames are retained for
// the retransmit queue with an annotated reason, everything else
// recycles, and the trailing Put is the documented no-op on the
// retained branch.
func retainBranch(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	for i := range wps {
		pkt := &wps[i]
		if pkt.IsIFrame() {
			//lint:retain(retransmit queue keeps the marshaled bytes alive)
			pkt.Retain()
		}
		pool.Put(pkt)
	}
}

// transferOut moves ownership to the caller with the returned pointer.
func transferOut(ef *codec.EncodedFrame, pool *codec.BufPool) *codec.WirePacket {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	return pkt
}

// helperRelease consumes through a module-local wrapper: the bottom-up
// summary of recycle marks its second parameter consumed.
func helperRelease(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	recycle(pool, pkt)
}

func recycle(pool *codec.BufPool, wp *codec.WirePacket) { pool.Put(wp) }

// allowedLeak demonstrates the escape hatch: the leak finding is
// suppressed by an explicit marker naming the pass.
func allowedLeak(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0] //lint:allow bufown harness frees the whole pool after the measurement run
	_ = pkt.Payload
}
