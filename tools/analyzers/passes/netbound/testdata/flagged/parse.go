package transport

import "encoding/binary"

// Every function here mishandles an attacker-controlled integer in one
// of the ways netbound gates: unproven index, unproven slice bound,
// attacker-sized make, unbounded loop count.

func indexUnchecked(data, table []byte) byte {
	n := int(binary.BigEndian.Uint16(data))
	return table[n] // want "untrusted index lacks a proof against len"
}

func indexNegativePossible(data, table []byte) byte {
	n := int(int16(binary.BigEndian.Uint16(data))) // sign trap: int16 may be negative
	if n < len(table) {
		return table[n] // want "untrusted index may be negative"
	}
	return 0
}

func sliceUnchecked(data []byte) []byte {
	l := binary.BigEndian.Uint32(data)
	return data[4:][:l] // want "untrusted slice bound lacks a proof against len"
}

func makeAttackerSized(data []byte) []byte {
	n := binary.BigEndian.Uint64(data)
	return make([]byte, n) // want "untrusted make size is unbounded"
}

func makeVarintSized(data []byte) [][]byte {
	count, _ := binary.Uvarint(data)
	return make([][]byte, count) // want "untrusted make size is unbounded"
}

func loopAttackerBound(data []byte) int {
	n := binary.BigEndian.Uint64(data)
	total := 0
	for i := uint64(0); i < n; i++ { // want "untrusted loop bound is unbounded"
		total++
	}
	return total
}

func rangeAttackerCount(data []byte) int {
	n := int(binary.BigEndian.Uint64(data))
	total := 0
	for range n { // want "untrusted range count is unbounded"
		total++
	}
	return total
}

func truncationReopensHole(data, table []byte) byte {
	w := binary.BigEndian.Uint32(data)
	if w > uint32(len(table)) {
		return 0
	}
	n := int16(w)   // truncation drops the proof
	return table[n] // want "untrusted index may be negative"
}

func boundKilledByReassign(data, buf []byte) []byte {
	n := int(binary.BigEndian.Uint16(data))
	if n < 0 || n > len(buf) {
		return nil
	}
	buf = buf[1:]  // the proof was against the old len(buf)
	return buf[:n] // want "untrusted slice bound lacks a proof against len"
}
