package analytic

import (
	"errors"
	"math"
	"testing"
)

// poissonArrivals builds a degenerate MMPP that is exactly a Poisson
// process with the given rate (both states identical).
func poissonArrivals(rate float64) MMPP2 {
	return MMPP2{P1: 1, P2: 1, Lambda1: rate, Lambda2: rate}
}

// expService builds service parameters that collapse to a pure
// exponential-like service via a hyper-tight single class. With PI=0 and
// no encryption, service = transmission time of the P class.
func simpleService(mean, sigma float64) ServiceParams {
	return ServiceParams{
		PI:       0,
		TxMeanI:  mean, // unused (PI=0) but must validate
		TxMeanP:  mean,
		TxSigmaP: sigma,
		PS:       1,
	}
}

func TestSolveQueueMM1Limit(t *testing.T) {
	// Exponential service: sigma = mean => cv2 = 1 => PHFit gives Exp.
	mean := 0.01
	sp := simpleService(mean, mean)
	lambda := 60.0
	res, err := SolveQueue(poissonArrivals(lambda), sp)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * mean
	wantW := rho * mean / (1 - rho) // M/M/1: E[W] = rho/(mu-lambda)
	if !relNear(res.MeanWait, wantW, 1e-6) {
		t.Fatalf("E[W] = %v want %v", res.MeanWait, wantW)
	}
	if !relNear(res.Rho, rho, 1e-12) {
		t.Fatalf("rho = %v want %v", res.Rho, rho)
	}
	wantL := rho / (1 - rho)
	if !relNear(res.MeanInSystem, wantL, 1e-6) {
		t.Fatalf("E[L] = %v want %v", res.MeanInSystem, wantL)
	}
}

func TestSolveQueueMG1Limit(t *testing.T) {
	// Low-variance service, Poisson arrivals: must match
	// Pollaczek-Khinchine computed from the same fitted moments.
	mean, sigma := 0.008, 0.002
	sp := simpleService(mean, sigma)
	lambda := 80.0
	res, err := SolveQueue(poissonArrivals(lambda), sp)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := sp.Moments()
	wantW, err := MGOneWait(lambda, m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if !relNear(res.MeanWait, wantW, 1e-6) {
		t.Fatalf("E[W] = %v want PK %v", res.MeanWait, wantW)
	}
}

func TestSolveQueueMD1Limit(t *testing.T) {
	// Near-deterministic service: the Erlang(maxOrder) fit has variance
	// mean^2/k, so compare against P-K with the *fitted* moments and
	// verify we are within a few percent of true M/D/1 too.
	mean := 0.005
	sp := simpleService(mean, 0)
	sp.MaxErlangOrder = 64
	lambda := 120.0
	res, err := SolveQueue(poissonArrivals(lambda), sp)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * mean
	md1 := rho * mean / (2 * (1 - rho)) // true M/D/1 E[W]
	// Erlang(64) slightly inflates the second moment: E[S^2] = m^2(1+1/64).
	fitted := lambda * mean * mean * (1 + 1.0/64) / (2 * (1 - rho))
	if !relNear(res.MeanWait, fitted, 1e-6) {
		t.Fatalf("E[W] = %v want fitted %v", res.MeanWait, fitted)
	}
	if !relNear(res.MeanWait, md1, 0.02) {
		t.Fatalf("E[W] = %v not within 2%% of M/D/1 %v", res.MeanWait, md1)
	}
}

func TestSolveQueueBurstinessRaisesDelay(t *testing.T) {
	// An MMPP with the same mean rate but bursty arrivals must see a
	// larger mean wait than the Poisson process of equal rate.
	mean := 0.004
	sp := simpleService(mean, 0.001)
	bursty := MMPP2{P1: 20, P2: 20, Lambda1: 180, Lambda2: 20} // mean 100
	smooth := poissonArrivals(bursty.MeanRate())
	rb, err := SolveQueue(bursty, sp)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SolveQueue(smooth, sp)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MeanWait <= rs.MeanWait {
		t.Fatalf("bursty E[W]=%v should exceed Poisson E[W]=%v", rb.MeanWait, rs.MeanWait)
	}
}

func TestSolveQueueUnstable(t *testing.T) {
	sp := simpleService(0.02, 0.001)
	_, err := SolveQueue(poissonArrivals(60), sp) // rho = 1.2
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("want ErrUnstable, got %v", err)
	}
}

func TestSolveQueueEncryptionIncreasesDelay(t *testing.T) {
	// Paper-shaped workload: short I-frame bursts (state 1) inside long
	// P-frame stretches, so only ~20% of packets belong to I-frames and the
	// numerous P packets dominate total encryption work (the reason
	// Figs. 7-8 show delay(P) ~ delay(all) >> delay(I)).
	arr := MMPP2{P1: 400, P2: 10, Lambda1: 1000, Lambda2: 100}
	if pI := arr.IFramePacketFraction(); pI > 0.3 {
		t.Fatalf("test workload should be P-dominated, pI = %v", pI)
	}
	base := ServiceParams{
		PI:       arr.IFramePacketFraction(),
		EncMeanI: 0.9e-3, EncSigmaI: 0.1e-3,
		EncMeanP: 0.5e-3, EncSigmaP: 0.05e-3,
		TxMeanI: 1.8e-3, TxSigmaI: 0.1e-3,
		TxMeanP: 0.6e-3, TxSigmaP: 0.05e-3,
		PS: 0.95, LambdaB: 500,
		MaxErlangOrder: 12,
	}
	delays := map[string]float64{}
	for name, enc := range map[string][2]float64{
		"none": {0, 0}, "I": {1, 0}, "P": {0, 1}, "all": {1, 1},
	} {
		sp := base
		sp.EncI, sp.EncP = enc[0], enc[1]
		res, err := SolveQueue(arr, sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		delays[name] = res.MeanSojourn
	}
	if !(delays["none"] < delays["I"] && delays["I"] < delays["all"]) {
		t.Fatalf("expected none < I < all, got %v", delays)
	}
	if !(delays["P"] <= delays["all"] && delays["P"] > delays["I"]) {
		// With mostly P packets (pI small), P-encryption dominates cost,
		// as the paper observes in Fig. 7.
		t.Fatalf("expected I < P <= all, got %v", delays)
	}
}

func TestSolveQueueMatchesPaperOrdering3DESvsAES(t *testing.T) {
	arr := MMPP2{P1: 50, P2: 5, Lambda1: 1200, Lambda2: 40}
	mk := func(encScale float64) float64 {
		sp := ServiceParams{
			PI:   arr.IFramePacketFraction(),
			EncI: 1, EncP: 1,
			MaxErlangOrder: 12,
			EncMeanI:       0.9e-3 * encScale, EncSigmaI: 0.1e-3,
			EncMeanP: 0.3e-3 * encScale, EncSigmaP: 0.05e-3,
			TxMeanI: 1.8e-3, TxSigmaI: 0.1e-3,
			TxMeanP: 0.6e-3, TxSigmaP: 0.05e-3,
			PS: 0.95, LambdaB: 500,
		}
		res, err := SolveQueue(arr, sp)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanSojourn
	}
	aes := mk(1)
	tdes := mk(4) // 3DES is several times slower per byte
	if tdes <= aes {
		t.Fatalf("3DES-like service should be slower: %v vs %v", tdes, aes)
	}
}

func TestServiceMomentsMatchPH(t *testing.T) {
	sp := ServiceParams{
		PI:   0.3,
		EncI: 1, EncP: 0.2,
		EncMeanI: 1e-3, EncSigmaI: 0.2e-3,
		EncMeanP: 0.4e-3, EncSigmaP: 0.1e-3,
		TxMeanI: 2e-3, TxSigmaI: 0.4e-3,
		TxMeanP: 0.7e-3, TxSigmaP: 0.2e-3,
		PS: 0.9, LambdaB: 800,
	}
	m1, m2 := sp.Moments()
	ph := sp.PH()
	if err := ph.Validate(); err != nil {
		t.Fatal(err)
	}
	if !relNear(ph.Mean(), m1, 1e-9) {
		t.Fatalf("PH mean %v vs analytic %v", ph.Mean(), m1)
	}
	// Second moment matches up to the Erlang-order truncation of the
	// within-class variance fits.
	if !relNear(ph.Moment(2), m2, 0.02) {
		t.Fatalf("PH m2 %v vs analytic %v", ph.Moment(2), m2)
	}
}

func TestServiceLSTConsistency(t *testing.T) {
	sp := ServiceParams{
		PI:   0.25,
		EncI: 1, EncP: 0,
		EncMeanI: 1e-3, EncSigmaI: 0.1e-3,
		EncMeanP: 0.4e-3,
		TxMeanI:  2e-3, TxSigmaI: 0.2e-3,
		TxMeanP: 0.7e-3, TxSigmaP: 0.1e-3,
		PS: 0.92, LambdaB: 700,
	}
	// LST(0) = 1 and -LST'(0) = mean.
	if !near(sp.LST(0), 1, 1e-12) {
		t.Fatalf("LST(0) = %v", sp.LST(0))
	}
	h := 1e-4
	m1, _ := sp.Moments()
	numMean := (1 - sp.LST(h)) / h
	if !relNear(numMean, m1, 1e-3) {
		t.Fatalf("numeric mean %v vs %v", numMean, m1)
	}
	// The PH LST tracks the analytic LST closely at moderate s.
	ph := sp.PH()
	for _, s := range []float64{5, 20, 60} {
		if !relNear(ph.LST(s), sp.LST(s), 0.01) {
			t.Fatalf("LST mismatch at s=%v: PH %v analytic %v", s, ph.LST(s), sp.LST(s))
		}
	}
}

func TestServiceEncryptedFraction(t *testing.T) {
	sp := ServiceParams{PI: 0.3, EncI: 1, EncP: 0.5}
	if !near(sp.EncryptedFraction(), 0.3+0.7*0.5, 1e-12) {
		t.Fatalf("q = %v", sp.EncryptedFraction())
	}
}

func TestServiceValidate(t *testing.T) {
	good := simpleService(0.01, 0.001)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("PS=0 should fail")
	}
	bad = good
	bad.PI = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("PI>1 should fail")
	}
	bad = good
	bad.TxMeanP = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero transmission time should fail")
	}
	bad = good
	bad.PS = 0.5
	bad.LambdaB = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("PS<1 with no backoff rate should fail")
	}
}

func TestMGOneWait(t *testing.T) {
	w, err := MGOneWait(50, 0.01, 0.0002)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * 0.0002 / (2 * (1 - 0.5))
	if !near(w, want, 1e-12) {
		t.Fatalf("PK = %v want %v", w, want)
	}
	if _, err := MGOneWait(200, 0.01, 0.0002); !errors.Is(err, ErrUnstable) {
		t.Fatal("expected ErrUnstable")
	}
}

func TestSolveQueueLoadMonotonicity(t *testing.T) {
	sp := simpleService(0.002, 0.0005)
	prev := -1.0
	for _, lambda := range []float64{50, 150, 300, 420} {
		res, err := SolveQueue(poissonArrivals(lambda), sp)
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if res.MeanWait <= prev {
			t.Fatalf("E[W] must grow with load: %v then %v", prev, res.MeanWait)
		}
		prev = res.MeanWait
	}
}

func TestSolveQueueBackoffIncreasesDelay(t *testing.T) {
	arr := poissonArrivals(100)
	noLoss := simpleService(0.003, 0.0005)
	withLoss := noLoss
	withLoss.PS = 0.8
	withLoss.LambdaB = 400
	r1, err := SolveQueue(arr, noLoss)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SolveQueue(arr, withLoss)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MeanSojourn <= r1.MeanSojourn {
		t.Fatalf("backoff should add delay: %v vs %v", r2.MeanSojourn, r1.MeanSojourn)
	}
	if math.Abs((r2.MeanService-r1.MeanService)-(1-0.8)/(0.8*400)) > 1e-9 {
		t.Fatalf("backoff mean contribution wrong: %v", r2.MeanService-r1.MeanService)
	}
}

func TestSolveQueueVarianceMM1(t *testing.T) {
	// M/M/1: Var(L) = rho/(1-rho)^2, P{busy} = rho.
	mean := 0.01
	sp := simpleService(mean, mean) // cv2=1 -> exponential fit
	lambda := 60.0
	res, err := SolveQueue(poissonArrivals(lambda), sp)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * mean
	wantVar := rho / ((1 - rho) * (1 - rho))
	if !relNear(res.VarInSystem, wantVar, 1e-5) {
		t.Fatalf("Var(L) = %v want %v", res.VarInSystem, wantVar)
	}
	if !relNear(res.PBusy, rho, 1e-6) {
		t.Fatalf("P(busy) = %v want %v", res.PBusy, rho)
	}
}

func TestSolveQueueBusyProbabilityIsRho(t *testing.T) {
	// For any single-server queue with unit service per customer,
	// P{busy} = rho regardless of arrival correlations.
	arr := MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	sp := ServiceParams{
		PI: arr.IFramePacketFraction(), TxMeanI: 1.6e-3, TxMeanP: 0.7e-3,
		TxSigmaI: 0.2e-3, TxSigmaP: 0.1e-3, PS: 1, MaxErlangOrder: 16,
	}
	res, err := SolveQueue(arr, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !relNear(res.PBusy, res.Rho, 1e-6) {
		t.Fatalf("P(busy) = %v want rho %v", res.PBusy, res.Rho)
	}
	if res.VarInSystem <= 0 {
		t.Fatal("variance must be positive")
	}
}

func TestSolveQueueTailDecayMM1(t *testing.T) {
	// M/M/1: queue length is geometric with ratio rho, so the dominant
	// eigenvalue of R equals rho.
	mean := 0.01
	sp := simpleService(mean, mean)
	lambda := 70.0
	res, err := SolveQueue(poissonArrivals(lambda), sp)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * mean
	if !relNear(res.TailDecay, rho, 1e-4) {
		t.Fatalf("tail decay %v want rho %v", res.TailDecay, rho)
	}
}

func TestSolveQueueTailDecayInUnitInterval(t *testing.T) {
	arr := MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	sp := ServiceParams{
		PI: arr.IFramePacketFraction(), TxMeanI: 1.6e-3, TxMeanP: 0.7e-3,
		PS: 1, MaxErlangOrder: 12,
	}
	res, err := SolveQueue(arr, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.TailDecay <= 0 || res.TailDecay >= 1 {
		t.Fatalf("tail decay %v out of (0,1)", res.TailDecay)
	}
	// Burstier arrivals must have a heavier tail than Poisson of equal
	// rate and service.
	pois, err := SolveQueue(poissonArrivals(arr.MeanRate()), sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.TailDecay <= pois.TailDecay {
		t.Fatalf("bursty tail %v should exceed Poisson %v", res.TailDecay, pois.TailDecay)
	}
}
