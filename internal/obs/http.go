package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Operational surface: one mux carrying
//
//	/metrics       Prometheus text exposition of the Default registry
//	/debug/vars    expvar JSON (includes an "obs" map mirroring /metrics)
//	/debug/pprof/  the standard pprof handlers
//	/debug/trace   the span ring buffer as text
//
// thriftyvid's -metrics flag and the examples mount this on a side
// listener so the data path never shares a port with diagnostics.

// Handler serves the Default registry in Prometheus text format.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.Expose(w)
	})
}

// publishExpvar mirrors the registry into expvar exactly once per
// process (expvar panics on duplicate names).
var publishExpvar sync.Once

// DebugMux returns a fresh mux with the full diagnostic surface.
func DebugMux() *http.ServeMux {
	publishExpvar.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return snapshotValues()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		Trace.write(w)
	})
	return mux
}

// snapshotValues flattens scalar metrics for the expvar mirror
// (histograms contribute their count, sum, and p50/p95/p99).
func snapshotValues() map[string]any {
	Default.mu.Lock()
	ms := append([]metric(nil), Default.metrics...)
	Default.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		switch v := m.(type) {
		case *Counter:
			out[v.name] = v.Value()
		case *FloatCounter:
			out[v.name] = v.Value()
		case *Gauge:
			out[v.name] = v.Value()
		case *Histogram:
			// Quantile returns NaN on an empty histogram, which
			// encoding/json (hence expvar) cannot marshal.
			q := func(p float64) float64 {
				if v.Count() == 0 {
					return 0
				}
				return v.Quantile(p)
			}
			out[v.name] = map[string]any{
				"count": v.Count(),
				"sum":   v.Sum(),
				"p50":   q(0.50),
				"p95":   q(0.95),
				"p99":   q(0.99),
			}
		}
	}
	return out
}

// ServeDebug enables metrics and serves the debug mux on addr in a
// background goroutine. It returns the bound address (addr may use
// port 0) and a shutdown func. The listener error, if any, is returned
// synchronously so callers fail fast on a bad flag value.
func ServeDebug(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	SetEnabled(true)
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln) // error reported via the returned shutdown path; Serve always errors on close
	return ln.Addr().String(), func() { srv.Close() }, nil
}
