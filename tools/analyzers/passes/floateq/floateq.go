// Package floateq flags == and != between floating-point operands in
// the numerical packages (internal/analytic, internal/stats). The
// QBD/MMPP solvers and fitting routines iterate to convergence; an
// exact float comparison in a convergence or degenerate-case check
// either never fires (cv² == 1 after arithmetic) or fires one
// iteration late, and the resulting model drift is invisible until the
// reproduced curves diverge. Comparisons belong in the tolerance
// helpers (stats.ApproxEqual, stats.NearZero) — inside those helpers,
// and in code annotated //lint:allow floateq with a reason (exact
// sentinel values, guards against log(0) on exact draws), the operator
// is fine.
//
// Skipped on purpose: comparisons where both operands are compile-time
// constants, and the x != x NaN-test idiom (self-comparison).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the numerical packages.
var DefaultPackages = []string{
	"internal/analytic",
	"internal/stats",
}

// ToleranceHelpers are function names whose bodies may compare floats
// exactly: they are the primitives the rest of the code is supposed to
// use instead of ==.
var ToleranceHelpers = map[string]bool{
	"ApproxEqual": true,
	"NearZero":    true,
}

// Analyzer is the floateq pass.
var Analyzer = &lintkit.Analyzer{
	Name:     "floateq",
	Doc:      "flag ==/!= between floats outside tolerance helpers; exact float equality breaks convergence checks",
	Packages: DefaultPackages,
	Run:      run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ToleranceHelpers[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
					return true
				}
				if isConst(pass, be.X) && isConst(pass, be.Y) {
					return true
				}
				if isSelfCompare(be) {
					return true // x != x is the NaN test
				}
				pass.Reportf(be.OpPos, "floating-point %s comparison; use stats.ApproxEqual/stats.NearZero or annotate with //lint:allow floateq", be.Op)
				return true
			})
		}
	}
	return nil
}

func isFloat(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConst(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isSelfCompare reports whether both operands are the same plain
// identifier.
func isSelfCompare(be *ast.BinaryExpr) bool {
	x, ok1 := ast.Unparen(be.X).(*ast.Ident)
	y, ok2 := ast.Unparen(be.Y).(*ast.Ident)
	return ok1 && ok2 && x.Name == y.Name
}
