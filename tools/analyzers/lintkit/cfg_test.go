package lintkit

import (
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` as the body of a function and returns its CFG.
func parseBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// render prints a node compactly for block-content assertions.
func render(n ast.Node) string {
	var sb strings.Builder
	printer.Fprint(&sb, token.NewFileSet(), n)
	return sb.String()
}

// blockWith finds the unique block containing a node whose rendering
// contains want.
func blockWith(t *testing.T, c *CFG, want string) *Block {
	t.Helper()
	var found *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(render(n), want) {
				if found != nil && found != b {
					t.Fatalf("%q appears in more than one block", want)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q", want)
	}
	return found
}

func preds(c *CFG, b *Block) []*Block {
	var ps []*Block
	for _, cand := range c.Blocks {
		for _, e := range cand.Succs {
			if e.To == b {
				ps = append(ps, cand)
				break
			}
		}
	}
	return ps
}

func TestCFGBranchAndJoin(t *testing.T) {
	c := parseBody(t, `
	x := 0
	if x > 0 {
		x = 1
	} else {
		x = 2
	}
	x = 3
`)
	entry := blockWith(t, c, "x := 0")
	thenB := blockWith(t, c, "x = 1")
	elseB := blockWith(t, c, "x = 2")
	join := blockWith(t, c, "x = 3")

	// The branch block carries a true edge and a negated edge with the
	// same condition.
	if len(entry.Succs) != 2 {
		t.Fatalf("branch block has %d successors, want 2", len(entry.Succs))
	}
	var sawTrue, sawFalse bool
	for _, e := range entry.Succs {
		if e.Cond == nil || render(e.Cond) != "x > 0" {
			t.Errorf("branch edge condition = %v, want x > 0", e.Cond)
		}
		if e.Negated {
			sawFalse = true
			if e.To != elseB {
				t.Errorf("negated edge does not reach the else block")
			}
		} else {
			sawTrue = true
			if e.To != thenB {
				t.Errorf("true edge does not reach the then block")
			}
		}
	}
	if !sawTrue || !sawFalse {
		t.Error("branch is missing a polarity")
	}
	// Both arms join before x = 3.
	ps := preds(c, join)
	if len(ps) != 2 {
		t.Fatalf("join block has %d predecessors, want 2 (then + else)", len(ps))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	c := parseBody(t, `
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	_ = s
`)
	// The condition lives on edges, not in block nodes: the head is the
	// block whose successors carry it.
	var headBlock *Block
	for _, b := range c.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil && render(e.Cond) == "i < 10" {
				headBlock = b
			}
		}
	}
	if headBlock == nil {
		t.Fatal("no block branches on the loop condition")
	}
	// Entry fall-in plus the back edge through the post statement.
	if got := len(preds(c, headBlock)); got != 2 {
		t.Fatalf("loop head has %d predecessors, want 2 (entry + back edge)", got)
	}
}

func TestCFGRangeHeaderAndBreak(t *testing.T) {
	c := parseBody(t, `
	var xs []int
	for _, x := range xs {
		if x < 0 {
			break
		}
	}
	xs = nil
`)
	head := blockWith(t, c, "range xs")
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body + after)", len(head.Succs))
	}
	after := blockWith(t, c, "xs = nil")
	// after is reached from the head (loop done) and from the break.
	if got := len(preds(c, after)); got != 2 {
		t.Fatalf("after-loop block has %d predecessors, want 2 (head + break)", got)
	}
}

func TestCFGDeferRunsAtExitLIFO(t *testing.T) {
	c := parseBody(t, `
	defer first()
	defer second()
	if cond() {
		return
	}
	work()
`)
	if len(c.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(c.Defers))
	}
	// Exit block holds the deferred calls in LIFO order, after any
	// other exit content.
	var calls []string
	for _, n := range c.Exit.Nodes {
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, render(call))
		}
	}
	if len(calls) != 2 || calls[0] != "second()" || calls[1] != "first()" {
		t.Fatalf("exit block defers = %v, want [second() first()]", calls)
	}
	// Both the return and the fallthrough path reach the exit.
	if got := len(preds(c, c.Exit)); got < 2 {
		t.Fatalf("exit block has %d predecessors, want >= 2", got)
	}
}

func TestCFGSwitchWithoutDefaultHasSkipEdge(t *testing.T) {
	c := parseBody(t, `
	x := 1
	switch x {
	case 1:
		a()
	case 2:
		b()
	}
	done()
`)
	after := blockWith(t, c, "done()")
	// case 1 exit, case 2 exit, and the no-match skip edge.
	if got := len(preds(c, after)); got != 3 {
		t.Fatalf("after-switch block has %d predecessors, want 3 (two clauses + skip)", got)
	}
}

func TestCFGSwitchWithDefaultHasNoSkipEdge(t *testing.T) {
	c := parseBody(t, `
	x := 1
	switch x {
	case 1:
		a()
	default:
		b()
	}
	done()
`)
	after := blockWith(t, c, "done()")
	if got := len(preds(c, after)); got != 2 {
		t.Fatalf("after-switch block has %d predecessors, want 2 (clause + default)", got)
	}
}

func TestCFGSelectHeaderNode(t *testing.T) {
	c := parseBody(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		use(v)
	case ch <- 1:
	}
	done()
`)
	head := blockWith(t, c, "select {")
	// Two clause edges out of the header block.
	if len(head.Succs) != 2 {
		t.Fatalf("select header has %d successors, want 2", len(head.Succs))
	}
}

func TestCFGGotoResolves(t *testing.T) {
	c := parseBody(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	done()
`)
	target := blockWith(t, c, "i++")
	found := false
	for _, p := range preds(c, target) {
		for _, e := range p.Succs {
			if e.To == target && e.Cond == nil {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("goto edge to the labeled block not found")
	}
	// The labeled block is reached at least twice: fall-in and goto.
	if got := len(preds(c, target)); got < 2 {
		t.Fatalf("labeled block has %d predecessors, want >= 2", got)
	}
}
