package transport

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/evalvid"
	"repro/internal/netem"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

func TestLiveUDPEndToEnd(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, clip := testSession(t, video.MotionLow, pol)
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	ev, err := NewLiveReceiver(s.Config, pol.Alg, nil, "127.0.0.1:0", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()

	rep, err := LiveUDPSend(s, rx.Addr(), ev.Addr(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets == 0 || rep.Encrypted == 0 {
		t.Fatalf("send report %+v", rep)
	}
	if err := rx.WaitForPackets(rep.Packets, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ev.WaitForPackets(rep.Packets, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rxFrames := rx.Frames(len(s.Encoded))
	rxClip, err := codec.DecodeSequence(rxFrames, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	q, err := evalvid.Evaluate(clip, rxClip)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 30 {
		t.Fatalf("live receiver PSNR %.1f", q.PSNR)
	}

	evClip, _ := codec.DecodeSequence(ev.Frames(len(s.Encoded)), s.Config)
	qe, _ := evalvid.Evaluate(clip, evClip)
	if qe.PSNR > q.PSNR-8 {
		t.Fatalf("live eavesdropper too sharp: %.1f vs %.1f", qe.PSNR, q.PSNR)
	}
	// The eavesdropper captured everything but could use only plaintext.
	captured, usable := ev.Stats()
	if captured != rep.Packets {
		t.Fatalf("eavesdropper captured %d of %d", captured, rep.Packets)
	}
	if usable != rep.Packets-rep.Encrypted {
		t.Fatalf("eavesdropper used %d, want %d", usable, rep.Packets-rep.Encrypted)
	}
}

func TestLiveUDPWithLossFilter(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rep, err := LiveUDPSend(s, rx.Addr(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	// Give datagrams time to land, then confirm the filter dropped some.
	time.Sleep(200 * time.Millisecond)
	captured, _ := rx.Stats()
	if captured >= rep.Packets {
		t.Fatalf("loss filter passed everything (%d of %d)", captured, rep.Packets)
	}
}

func TestLiveUDPPacing(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	s.Encoded = s.Encoded[:6]
	s.FPS = 60
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rep, err := LiveUDPSend(s, rx.Addr(), "", true)
	if err != nil {
		t.Fatal(err)
	}
	// 6 frames at 60 fps: at least 5 inter-frame gaps ~ 83 ms.
	if rep.Elapsed < 80*time.Millisecond {
		t.Fatalf("paced send finished too fast: %v", rep.Elapsed)
	}
}

func TestLiveHTTPUpload(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: 0.2, Alg: vcrypt.AES256}
	s, clip := testSession(t, video.MotionMedium, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var tapped, tappedEnc int
	srv.Tap = func(seq uint64, encrypted bool, payload []byte) {
		mu.Lock()
		tapped++
		if encrypted {
			tappedEnc++
		}
		mu.Unlock()
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	rep, err := LiveHTTPUpload(s, hs.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments == 0 || rep.Encrypted == 0 {
		t.Fatalf("upload report %+v", rep)
	}
	if srv.Segments() != rep.Segments {
		t.Fatalf("server saw %d segments, sender sent %d", srv.Segments(), rep.Segments)
	}
	mu.Lock()
	if tapped != rep.Segments || tappedEnc != rep.Encrypted {
		t.Fatalf("tap saw %d/%d, want %d/%d", tapped, tappedEnc, rep.Segments, rep.Encrypted)
	}
	mu.Unlock()

	rxClip, err := codec.DecodeSequence(srv.Frames(len(s.Encoded)), s.Config)
	if err != nil {
		t.Fatal(err)
	}
	q, err := evalvid.Evaluate(clip, rxClip)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 30 {
		t.Fatalf("HTTP receiver PSNR %.1f", q.PSNR)
	}
}

func TestLiveHTTPUploadPaced(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	s.Encoded = s.Encoded[:4]
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	// Total bytes of 4 low-motion frames is a few kB; a 50 kB/s pacer
	// makes the upload take a measurable fraction of a second.
	pacer, err := netem.NewPacer(50e3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LiveHTTPUpload(s, hs.URL, pacer)
	if err != nil {
		t.Fatal(err)
	}
	minTime := time.Duration(float64(rep.Bytes) / 50e3 * float64(time.Second) * 0.5)
	if rep.Elapsed < minTime {
		t.Fatalf("paced upload of %d bytes finished in %v (< %v)", rep.Bytes, rep.Elapsed, minTime)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	var buf syncBuffer
	if err := WriteSegment(&buf, 77, true, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	seq, enc, payload, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 77 || !enc || string(payload) != "hello" {
		t.Fatalf("round trip got (%d, %v, %q)", seq, enc, payload)
	}
}

// syncBuffer is a minimal in-memory io.ReadWriter for segment tests.
type syncBuffer struct {
	data []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *syncBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

var errEOF = errIO("EOF")

type errIO string

func (e errIO) Error() string { return string(e) }
