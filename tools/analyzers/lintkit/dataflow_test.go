package lintkit

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// assignedVars is a toy may-analysis: the fact is the set of variable
// names assigned on some path. It exercises joins, loop fixpoints and
// edge transfers without needing type information.
type assignedVars struct {
	// condsSeen records which branch conditions the solver pushed
	// through TransferEdge, by polarity.
	condsSeen map[string]bool
}

type varSet map[string]bool

func (p *assignedVars) EntryFact() Fact { return varSet{} }

func (p *assignedVars) Clone(f Fact) Fact {
	n := varSet{}
	for k := range f.(varSet) {
		n[k] = true
	}
	return n
}

func (p *assignedVars) Join(a, b Fact) Fact {
	x := a.(varSet)
	for k := range b.(varSet) {
		x[k] = true
	}
	return x
}

func (p *assignedVars) Equal(a, b Fact) bool {
	x, y := a.(varSet), b.(varSet)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if !y[k] {
			return false
		}
	}
	return true
}

func (p *assignedVars) TransferEdge(e *Edge, f Fact) Fact {
	if e.Cond != nil && p.condsSeen != nil {
		key := render(e.Cond)
		if e.Negated {
			key = "!" + key
		}
		p.condsSeen[key] = true
	}
	return f
}

func (p *assignedVars) Transfer(n ast.Node, f Fact) Fact {
	s := f.(varSet)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				s[id.Name] = true
			}
		}
	}
	return s
}

func names(s varSet) string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func exitFact(t *testing.T, c *CFG, p FlowProblem) varSet {
	t.Helper()
	in := Solve(c, p)
	f, ok := in[c.Exit]
	if !ok {
		t.Fatal("exit block unreachable")
	}
	return transferBlock(p, c.Exit, p.Clone(f)).(varSet)
}

func TestSolveJoinsBranches(t *testing.T) {
	c := parseBody(t, `
	if cond() {
		a := 1
		_ = a
	} else {
		b := 2
		_ = b
	}
	c := 3
	_ = c
`)
	got := exitFact(t, c, &assignedVars{})
	if names(got) != "a,b,c" {
		t.Fatalf("exit fact = %s, want a,b,c (union of both arms)", names(got))
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	c := parseBody(t, `
	for i := 0; i < 3; i++ {
		x := 1
		_ = x
	}
	y := 2
	_ = y
`)
	got := exitFact(t, c, &assignedVars{})
	// i from the loop init, x on the taken-path, y always.
	if names(got) != "i,x,y" {
		t.Fatalf("exit fact = %s, want i,x,y", names(got))
	}
}

func TestSolvePushesEdgeConditions(t *testing.T) {
	p := &assignedVars{condsSeen: map[string]bool{}}
	c := parseBody(t, `
	if enc() {
		a := 1
		_ = a
	}
	b := 2
	_ = b
`)
	exitFact(t, c, p)
	if !p.condsSeen["enc()"] || !p.condsSeen["!enc()"] {
		t.Fatalf("edge conditions seen = %v, want both polarities of enc()", p.condsSeen)
	}
}

func TestSolveSkipsUnreachable(t *testing.T) {
	c := parseBody(t, `
	return
	x := 1
	_ = x
`)
	in := Solve(c, &assignedVars{})
	for b, f := range in {
		for _, n := range b.Nodes {
			if strings.Contains(render(n), "x := 1") {
				t.Fatalf("unreachable block solved with fact %v", f)
			}
		}
	}
}

func TestBlockExitFacts(t *testing.T) {
	c := parseBody(t, `
	a := 1
	_ = a
`)
	p := &assignedVars{}
	in := Solve(c, p)
	out := BlockExitFacts(c, p, in)
	entryOut, ok := out[c.Entry]
	if !ok {
		t.Fatal("entry block missing from exit facts")
	}
	if !entryOut.(varSet)["a"] {
		t.Fatal("entry block exit fact should contain a")
	}
}
