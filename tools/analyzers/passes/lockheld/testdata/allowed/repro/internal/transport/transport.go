// Package transport holds the sanctioned shapes: short critical
// sections with the blocking work outside, the Cond.Wait contract used
// correctly, and one documented suppression. The pass must stay silent.
package transport

import (
	"net"
	"sync"
	"time"

	"repro/internal/netem"
)

type sender struct {
	mu    sync.Mutex
	pacer *netem.Pacer
	conn  net.Conn
	ch    chan []byte
	buf   [][]byte
	cond  *sync.Cond
}

// PaceOutside snapshots under the lock and parks after releasing it —
// the fix shape for the NACK-retransmit path.
func (s *sender) PaceOutside(b []byte) {
	s.mu.Lock()
	s.buf = append(s.buf, b)
	n := len(s.buf)
	s.mu.Unlock()
	s.pacer.Wait(n)
}

// WriteOutside copies the staged packets under the lock, writes after.
func (s *sender) WriteOutside() error {
	s.mu.Lock()
	snapshot := make([][]byte, len(s.buf))
	copy(snapshot, s.buf)
	s.mu.Unlock()
	for _, b := range snapshot {
		if _, err := s.conn.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WaitHeld uses sync.Cond exactly as documented: Wait is called with
// the lock held and re-acquires it before returning.
func (s *sender) WaitHeld() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 {
		s.cond.Wait()
	}
	b := s.buf[0]
	s.buf = s.buf[1:]
	return b
}

// PollLocked uses select with a default clause: it never parks, so
// holding the lock is fine.
func (s *sender) PollLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case b := <-s.ch:
		s.buf = append(s.buf, b)
	default:
	}
}

// SpawnWriter starts the blocking work on its own goroutine: the
// literal body runs outside this critical section.
func (s *sender) SpawnWriter(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, b)
	go func() {
		s.conn.Write(b) //nolint:errcheck // fire-and-forget, like the medium
	}()
}

// HandoffLocked releases before the blocking call and re-acquires
// after: the held set is empty at the park point.
func (s *sender) HandoffLocked() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
	s.mu.Lock()
	s.buf = nil
	s.mu.Unlock()
}

// DrainLocked intentionally serialises the drain under the lock; the
// suppression documents the trade.
func (s *sender) DrainLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockheld shutdown path: serialising the final drain under the lock is intentional, no concurrent senders remain
	time.Sleep(time.Millisecond)
}
