// Package codec is the miniature packetizer of the plainleak fixtures:
// Packetize is the taint source, exactly as in the real module.
package codec

// FrameType distinguishes the two slice classes.
type FrameType int

const (
	IFrame FrameType = iota
	PFrame
)

// Packet is one network-ready slice of an encoded frame.
type Packet struct {
	Type    FrameType
	Payload []byte
}

// Packetize splits an encoded frame into slice packets.
func Packetize(frame []byte, mtu int) ([]Packet, error) {
	return []Packet{{Type: IFrame, Payload: frame}}, nil
}

// WirePacket is a Packet marshaled into a reusable wire buffer with
// protocol headroom in front of the payload.
type WirePacket struct {
	Packet
	Headroom int
	buf      []byte
}

// Wire returns the headroom plus the first n payload bytes.
func (wp *WirePacket) Wire(n int) []byte { return wp.buf[:wp.Headroom+n] }

// PacketizeInto marshals slices into buffers with headroom; like the
// real zero-copy packetizer, it is a taint source.
func PacketizeInto(frame []byte, mtu, headroom int) ([]WirePacket, error) {
	buf := make([]byte, headroom+len(frame))
	copy(buf[headroom:], frame)
	return []WirePacket{{Packet: Packet{Type: IFrame, Payload: buf[headroom:]}, Headroom: headroom, buf: buf}}, nil
}
