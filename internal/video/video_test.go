package video

import (
	"bytes"
	"math"
	"testing"
)

func TestNewFrameNeutralChroma(t *testing.T) {
	f := NewFrame(16, 16)
	if len(f.Y) != 256 || len(f.Cb) != 64 || len(f.Cr) != 64 {
		t.Fatalf("plane sizes wrong: %d %d %d", len(f.Y), len(f.Cb), len(f.Cr))
	}
	if f.Cb[0] != 128 || f.Cr[63] != 128 {
		t.Fatal("chroma not neutral")
	}
}

func TestNewFramePanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd dimensions")
		}
	}()
	NewFrame(15, 16)
}

func TestMSEAndPSNR(t *testing.T) {
	a := NewFrame(8, 8)
	b := NewFrame(8, 8)
	if MSE(a, b) != 0 {
		t.Fatal("identical frames must have zero MSE")
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical frames must have infinite PSNR")
	}
	for i := range b.Y {
		b.Y[i] = 10
	}
	if got := MSE(a, b); got != 100 {
		t.Fatalf("MSE = %v want 100", got)
	}
	want := 20 * math.Log10(255.0/10)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PSNR = %v want %v", got, want)
	}
}

func TestSequencePSNRAggregatesMSE(t *testing.T) {
	a := []*Frame{NewFrame(8, 8), NewFrame(8, 8)}
	b := []*Frame{NewFrame(8, 8), NewFrame(8, 8)}
	for i := range b[1].Y {
		b[1].Y[i] = 20 // MSE 400 on one of two frames -> mean 200
	}
	if got := SequenceMSE(a, b); got != 200 {
		t.Fatalf("sequence MSE = %v want 200", got)
	}
	want := 20 * math.Log10(255/math.Sqrt(200))
	if got := SequencePSNR(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sequence PSNR = %v", got)
	}
}

func TestLumaAtClamps(t *testing.T) {
	f := NewFrame(4, 4)
	f.Y[0] = 7
	f.Y[15] = 9
	if f.LumaAt(-3, -3) != 7 || f.LumaAt(99, 99) != 9 {
		t.Fatal("edge clamping broken")
	}
}

func TestYUVRoundTrip(t *testing.T) {
	f := Generate(SceneConfig{W: 32, H: 32, Frames: 1, Motion: MotionMedium, Seed: 5})[0]
	var buf bytes.Buffer
	if err := f.WriteYUV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadYUV(&buf, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Y, g.Y) || !bytes.Equal(f.Cb, g.Cb) || !bytes.Equal(f.Cr, g.Cr) {
		t.Fatal("YUV round trip mismatch")
	}
}

func TestWritePGMHeader(t *testing.T) {
	f := NewFrame(6, 4)
	var buf bytes.Buffer
	if err := f.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	want := "P5\n6 4\n255\n"
	if !bytes.HasPrefix(buf.Bytes(), []byte(want)) {
		t.Fatalf("PGM header = %q", buf.Bytes()[:len(want)])
	}
	if buf.Len() != len(want)+24 {
		t.Fatalf("PGM size = %d", buf.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SceneConfig{W: 64, H: 64, Frames: 5, Motion: MotionHigh, Seed: 3}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if MSE(a[i], b[i]) != 0 {
			t.Fatalf("frame %d differs across identical seeds", i)
		}
	}
	c := Generate(SceneConfig{W: 64, H: 64, Frames: 5, Motion: MotionHigh, Seed: 4})
	if MSE(a[2], c[2]) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateMotionClassesSeparate(t *testing.T) {
	low := Generate(SceneConfig{W: 128, H: 96, Frames: 30, Motion: MotionLow, Seed: 1})
	med := Generate(SceneConfig{W: 128, H: 96, Frames: 30, Motion: MotionMedium, Seed: 1})
	high := Generate(SceneConfig{W: 128, H: 96, Frames: 30, Motion: MotionHigh, Seed: 1})
	sl := SequenceMotionScore(low)
	sm := SequenceMotionScore(med)
	sh := SequenceMotionScore(high)
	if !(sl < sm && sm < sh) {
		t.Fatalf("motion scores not ordered: %v %v %v", sl, sm, sh)
	}
	if AnalyzeMotion(low) != MotionLow {
		t.Fatalf("low clip classified as %v (score %v)", AnalyzeMotion(low), sl)
	}
	if AnalyzeMotion(high) != MotionHigh {
		t.Fatalf("high clip classified as %v (score %v)", AnalyzeMotion(high), sh)
	}
}

func TestMotionScoreIdenticalFrames(t *testing.T) {
	f := NewFrame(16, 16)
	if MotionScore(f, f) != 0 {
		t.Fatal("identical frames must score 0")
	}
	if SequenceMotionScore([]*Frame{f}) != 0 {
		t.Fatal("single frame must score 0")
	}
}

func TestClassifyMotionBoundaries(t *testing.T) {
	if ClassifyMotion(0.01) != MotionLow ||
		ClassifyMotion(0.1) != MotionMedium ||
		ClassifyMotion(0.6) != MotionHigh {
		t.Fatal("classification boundaries wrong")
	}
}

func TestMotionLevelString(t *testing.T) {
	if MotionLow.String() != "low" || MotionHigh.String() != "high" ||
		MotionMedium.String() != "medium" || MotionLevel(9).String() != "unknown" {
		t.Fatal("String() wrong")
	}
}

func TestGenerateDefaultsToCIF(t *testing.T) {
	frames := Generate(SceneConfig{Frames: 1, Motion: MotionLow, Seed: 1})
	if frames[0].W != CIFWidth || frames[0].H != CIFHeight {
		t.Fatalf("default size %dx%d", frames[0].W, frames[0].H)
	}
}
