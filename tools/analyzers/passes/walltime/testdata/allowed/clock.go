// Testdata for the walltime pass: measurement seams carry a marker on
// the offending line or on the line directly above it.
package clockdemo

import "time"

func measure(work func()) time.Duration {
	t0 := time.Now() //lint:allow walltime observability seam: times the work, never feeds the model
	work()
	//lint:allow walltime observability seam: the marker may sit on the line above
	return time.Since(t0)
}
