package wifi

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSolveDCFSingleStation(t *testing.T) {
	res, err := SolveDCF(NewDefaultDCF(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 1 {
		t.Fatalf("single station success = %v want 1", res.SuccessRate)
	}
}

func TestSolveDCFMoreStationsMoreCollisions(t *testing.T) {
	prev := -1.0
	for _, n := range []int{2, 5, 10, 20, 50} {
		res, err := SolveDCF(NewDefaultDCF(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.PCollision <= prev {
			t.Fatalf("collision probability must grow with contention: n=%d p=%v prev=%v", n, res.PCollision, prev)
		}
		if res.SuccessRate <= 0 || res.SuccessRate >= 1 {
			t.Fatalf("n=%d: success rate %v out of (0,1)", n, res.SuccessRate)
		}
		prev = res.PCollision
	}
}

func TestSolveDCFFixedPointConsistency(t *testing.T) {
	params := NewDefaultDCF(8)
	res, err := SolveDCF(params)
	if err != nil {
		t.Fatal(err)
	}
	// p must satisfy p = 1 - (1-tau)^(n-1).
	want := 1 - math.Pow(1-res.Tau, float64(params.Stations-1))
	if math.Abs(res.PCollision-want) > 1e-9 {
		t.Fatalf("fixed point violated: p=%v want %v", res.PCollision, want)
	}
}

func TestSolveDCFChannelError(t *testing.T) {
	clean, _ := SolveDCF(NewDefaultDCF(5))
	p := NewDefaultDCF(5)
	p.ChannelError = 0.1
	noisy, err := SolveDCF(p)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.SuccessRate * 0.9
	if math.Abs(noisy.SuccessRate-want) > 1e-9 {
		t.Fatalf("noisy success = %v want %v", noisy.SuccessRate, want)
	}
}

func TestSolveDCFValidation(t *testing.T) {
	if _, err := SolveDCF(DCFParams{Stations: 0, CWMin: 16}); err == nil {
		t.Fatal("0 stations should fail")
	}
	if _, err := SolveDCF(DCFParams{Stations: 2, CWMin: 1}); err == nil {
		t.Fatal("tiny CW should fail")
	}
	if _, err := SolveDCF(DCFParams{Stations: 2, CWMin: 16, ChannelError: 1}); err == nil {
		t.Fatal("channel error 1 should fail")
	}
}

func TestFrameAirtime(t *testing.T) {
	phy := PHY80211g()
	// 1500-byte payload at 54 Mb/s: bits = 8*(1500+28)+22 = 12246,
	// symbols = ceil(12246/216) = 57, time = 20us + 57*4us = 248us.
	air, err := phy.FrameAirtime(1500, Rate54)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(air-248e-6) > 1e-12 {
		t.Fatalf("airtime = %v want 248us", air)
	}
}

func TestFrameAirtimeMonotonic(t *testing.T) {
	phy := PHY80211g()
	prev := -1.0
	for _, size := range []int{0, 100, 500, 1000, 1500} {
		air, err := phy.FrameAirtime(size, Rate24)
		if err != nil {
			t.Fatal(err)
		}
		if air <= prev {
			t.Fatalf("airtime must grow with size: %v then %v", prev, air)
		}
		prev = air
	}
	// Faster rate, shorter airtime.
	slow, _ := phy.FrameAirtime(1000, Rate6)
	fast, _ := phy.FrameAirtime(1000, Rate54)
	if fast >= slow {
		t.Fatalf("54M (%v) should beat 6M (%v)", fast, slow)
	}
}

func TestFrameAirtimeErrors(t *testing.T) {
	phy := PHY80211g()
	if _, err := phy.FrameAirtime(100, Rate(7)); err == nil {
		t.Fatal("unsupported rate should fail")
	}
	if _, err := phy.FrameAirtime(-1, Rate54); err == nil {
		t.Fatal("negative payload should fail")
	}
}

func TestPacketTxTimeIncludesOverheads(t *testing.T) {
	phy := PHY80211g()
	tx, err := phy.PacketTxTime(1400, Rate54)
	if err != nil {
		t.Fatal(err)
	}
	air, _ := phy.FrameAirtime(1400+IPUDPRTPOverheadBytes, Rate54)
	if tx <= air {
		t.Fatalf("PacketTxTime %v must exceed bare airtime %v", tx, air)
	}
	// Sanity: an MTU packet occupies well under a millisecond at 54M.
	if tx > 1e-3 {
		t.Fatalf("tx time %v implausibly large", tx)
	}
}

func TestBackoffRatePositive(t *testing.T) {
	params := NewDefaultDCF(10)
	res, err := SolveDCF(params)
	if err != nil {
		t.Fatal(err)
	}
	rate := BackoffRate(params, res, PHY80211g().SlotTime)
	if rate <= 0 {
		t.Fatalf("backoff rate %v", rate)
	}
	// Mean backoff interval should be in the tens-to-hundreds of
	// microseconds for 802.11g.
	mean := 1 / rate
	if mean < 10e-6 || mean > 10e-3 {
		t.Fatalf("mean backoff %v out of plausible range", mean)
	}
}

func TestMediumTransmitStatistics(t *testing.T) {
	params := NewDefaultDCF(10)
	dcf, err := SolveDCF(params)
	if err != nil {
		t.Fatal(err)
	}
	phy := PHY80211g()
	med := NewMedium(phy, Rate54, dcf, BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(9))
	med.ReceiverError = 0.05
	med.EavesdropperError = 0.2

	n := 20000
	var rxGot, evGot, collisions int
	var backoff float64
	for i := 0; i < n; i++ {
		rep, err := med.Transmit(1000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ReceiverGot {
			rxGot++
		}
		if rep.EavesGot {
			evGot++
		}
		collisions += rep.Attempts - 1
		backoff += rep.Backoff
	}
	rxFrac := float64(rxGot) / float64(n)
	if math.Abs(rxFrac-0.95) > 0.01 {
		t.Fatalf("receiver delivery %v want ~0.95", rxFrac)
	}
	evFrac := float64(evGot) / float64(n)
	if math.Abs(evFrac-0.8) > 0.01 {
		t.Fatalf("eavesdropper capture %v want ~0.8", evFrac)
	}
	// Mean collisions per packet should match the geometric mean
	// (1-ps)/ps.
	wantColl := (1 - dcf.SuccessRate) / dcf.SuccessRate
	gotColl := float64(collisions) / float64(n)
	if math.Abs(gotColl-wantColl) > 0.05*wantColl+0.01 {
		t.Fatalf("collisions/pkt %v want %v", gotColl, wantColl)
	}
}

func TestMediumTxTimeStats(t *testing.T) {
	dcf, _ := SolveDCF(NewDefaultDCF(1))
	phy := PHY80211g()
	med := NewMedium(phy, Rate54, dcf, 1e4, stats.NewRNG(1))
	mean, sigma, err := med.TxTimeStats([]int{1400, 1400, 1400})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := phy.PacketTxTime(1400, Rate54)
	if math.Abs(mean-want) > 1e-12 || sigma != 0 {
		t.Fatalf("stats = (%v, %v) want (%v, 0)", mean, sigma, want)
	}
	if _, _, err := med.TxTimeStats(nil); err == nil {
		t.Fatal("empty class should fail")
	}
}

func TestMediumTransmitNegative(t *testing.T) {
	dcf, _ := SolveDCF(NewDefaultDCF(2))
	phy := PHY80211g()
	med := NewMedium(phy, Rate54, dcf, 1e4, stats.NewRNG(1))
	if _, err := med.Transmit(-5); err == nil {
		t.Fatal("negative payload should fail")
	}
}

func TestMediumReseedReproduces(t *testing.T) {
	params := NewDefaultDCF(10)
	dcf, err := SolveDCF(params)
	if err != nil {
		t.Fatal(err)
	}
	phy := PHY80211g()
	med := NewMedium(phy, Rate54, dcf, BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(1))
	med.ReceiverError = 0.1
	run := func() []TxReport {
		med.Reseed(42)
		out := make([]TxReport, 50)
		for i := range out {
			rep, err := med.Transmit(800)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = rep
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reseeded run diverged at packet %d", i)
		}
	}
}

func TestBackoffRatePanicsOnBadSlot(t *testing.T) {
	params := NewDefaultDCF(5)
	res, _ := SolveDCF(params)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BackoffRate(params, res, 0)
}

func TestACKAirtimeFallsBackToBasicRate(t *testing.T) {
	phy := PHY80211g()
	// Unknown rate falls back to 6M for the ACK computation.
	if phy.ACKAirtime(Rate(7)) != phy.ACKAirtime(Rate6) {
		t.Fatal("ACK fallback wrong")
	}
}

// statsRNG is a tiny indirection so rate_test.go can build generators
// without importing stats twice.
func statsRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }
