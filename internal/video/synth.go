package video

import (
	"math"

	"repro/internal/stats"
)

// MotionLevel is the content class of Section 4.3.2 / Fig. 2: the paper
// groups its reference clips into low, medium and high motion and observes
// that the class determines both the GOP byte structure and the decoder's
// loss sensitivity.
type MotionLevel int

// Motion classes.
const (
	MotionLow MotionLevel = iota
	MotionMedium
	MotionHigh
)

// String names the class.
func (m MotionLevel) String() string {
	switch m {
	case MotionLow:
		return "low"
	case MotionMedium:
		return "medium"
	case MotionHigh:
		return "high"
	default:
		return "unknown"
	}
}

// SceneConfig parameterises the synthetic clip generator.
type SceneConfig struct {
	W, H   int
	Frames int
	Motion MotionLevel
	Seed   uint64
	// Objects overrides the number of moving objects (0 = per-class
	// default).
	Objects int
}

// DefaultScene returns the configuration used throughout the reproduction:
// a 300-frame CIF clip (the paper's clips are 300 frames at 30 fps).
func DefaultScene(m MotionLevel, seed uint64) SceneConfig {
	return SceneConfig{W: CIFWidth, H: CIFHeight, Frames: 300, Motion: m, Seed: seed}
}

type object struct {
	x, y   float64
	vx, vy float64
	w, h   int
	tone   byte
	phase  float64
}

// Generate renders the synthetic clip: a textured static background with
// moving textured objects, plus (for high motion) global camera pan. The
// per-class velocities are chosen so that the frame-difference statistics
// match the qualitative split of the paper's low/medium/high groups: low
// motion changes a few percent of pixels per frame, high motion changes
// most of them.
func Generate(cfg SceneConfig) []*Frame {
	if cfg.W == 0 {
		cfg.W, cfg.H = CIFWidth, CIFHeight
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 300
	}
	rng := stats.NewRNG(cfg.Seed)
	var speed, panSpeed float64
	objects := cfg.Objects
	switch cfg.Motion {
	case MotionLow:
		speed, panSpeed = 0.6, 0
		if objects == 0 {
			objects = 2
		}
	case MotionMedium:
		speed, panSpeed = 3.0, 0.4
		if objects == 0 {
			objects = 4
		}
	default: // MotionHigh
		speed, panSpeed = 12.0, 5.0
		if objects == 0 {
			objects = 7
		}
	}
	// Object counts are tuned for CIF; scale down for smaller test frames
	// so the scene does not degenerate into full-frame occlusion churn.
	if scale := float64(cfg.W*cfg.H) / float64(CIFWidth*CIFHeight); scale < 1 {
		objects = int(float64(objects)*scale + 0.5)
		if objects < 2 {
			objects = 2
		}
	}
	objs := make([]object, objects)
	for i := range objs {
		angle := rng.Float64() * 2 * math.Pi
		objs[i] = object{
			x:     rng.Float64() * float64(cfg.W),
			y:     rng.Float64() * float64(cfg.H),
			vx:    speed * math.Cos(angle),
			vy:    speed * math.Sin(angle),
			w:     24 + rng.Intn(64),
			h:     24 + rng.Intn(48),
			tone:  byte(60 + rng.Intn(160)),
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	// Background texture: low-frequency gradient plus band-limited value
	// noise (bilinear interpolation of a coarse random grid). Real video
	// textures are band-limited; per-pixel white noise would make the SAD
	// surface basin-free and defeat any real motion estimator.
	const noiseGrid = 8
	gw, gh := cfg.W/noiseGrid+2, cfg.H/noiseGrid+2
	grid := make([]float64, gw*gh)
	for i := range grid {
		grid[i] = rng.Float64() * 28
	}
	noise := make([]byte, cfg.W*cfg.H)
	for y := 0; y < cfg.H; y++ {
		gy := y / noiseGrid
		fy := float64(y%noiseGrid) / noiseGrid
		for x := 0; x < cfg.W; x++ {
			gx := x / noiseGrid
			fx := float64(x%noiseGrid) / noiseGrid
			v := grid[gy*gw+gx]*(1-fx)*(1-fy) +
				grid[gy*gw+gx+1]*fx*(1-fy) +
				grid[(gy+1)*gw+gx]*(1-fx)*fy +
				grid[(gy+1)*gw+gx+1]*fx*fy
			noise[y*cfg.W+x] = byte(v)
		}
	}

	frames := make([]*Frame, cfg.Frames)
	pan := 0.0
	for fi := 0; fi < cfg.Frames; fi++ {
		f := NewFrame(cfg.W, cfg.H)
		// Background with pan offset.
		off := int(pan)
		for y := 0; y < cfg.H; y++ {
			row := f.Y[y*cfg.W : (y+1)*cfg.W]
			for x := 0; x < cfg.W; x++ {
				sx := x + off
				g := 40 + (sx%256)/2 + (y%256)/3
				row[x] = byte(g) + noise[(y*cfg.W+((sx%cfg.W)+cfg.W)%cfg.W)]
			}
		}
		// Objects.
		for oi := range objs {
			o := &objs[oi]
			ox, oy := int(o.x), int(o.y)
			for dy := 0; dy < o.h; dy++ {
				y := oy + dy
				if y < 0 || y >= cfg.H {
					continue
				}
				for dx := 0; dx < o.w; dx++ {
					x := ox + dx
					if x < 0 || x >= cfg.W {
						continue
					}
					// Textured fill so intra coding has real content; the
					// texture rides with the object (pure translation) so
					// motion compensation can track it, with only a slow
					// shimmer so P-frames stay small relative to I-frames.
					tex := byte((dx*dy)%32) + byte(4*math.Sin(o.phase+float64(dx)/7))
					f.Y[y*cfg.W+x] = o.tone + tex
				}
			}
			// Chroma block for the object (subsampled planes).
			cw := cfg.W / 2
			for dy := 0; dy < o.h/2; dy++ {
				y := oy/2 + dy
				if y < 0 || y >= cfg.H/2 {
					continue
				}
				for dx := 0; dx < o.w/2; dx++ {
					x := ox/2 + dx
					if x < 0 || x >= cw {
						continue
					}
					f.Cb[y*cw+x] = o.tone/2 + 64
					f.Cr[y*cw+x] = 255 - o.tone
				}
			}
			// Advance, bouncing at the borders: smooth translation keeps
			// the content motion-compensable, so P-frame size reflects
			// motion level rather than teleport artefacts.
			o.x += o.vx
			o.y += o.vy
			if o.x < -float64(o.w)/2 || o.x+float64(o.w)/2 > float64(cfg.W) {
				o.vx = -o.vx
				o.x += 2 * o.vx
			}
			if o.y < -float64(o.h)/2 || o.y+float64(o.h)/2 > float64(cfg.H) {
				o.vy = -o.vy
				o.y += 2 * o.vy
			}
			o.phase += 0.05
		}
		pan += panSpeed
		frames[fi] = f
	}
	return frames
}
