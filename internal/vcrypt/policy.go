package vcrypt

import (
	"fmt"
)

// Mode is the packet-selection rule of an encryption policy: which subset
// of a video flow's packets gets encrypted (Section 3, "selection policy").
type Mode int

// The selection rules evaluated in the paper.
const (
	// ModeNone transmits everything in the clear (no privacy, no cost).
	ModeNone Mode = iota
	// ModeAll encrypts every packet (full privacy, full cost).
	ModeAll
	// ModeIFrames encrypts only packets belonging to I-frames.
	ModeIFrames
	// ModePFrames encrypts only packets belonging to P-frames.
	ModePFrames
	// ModeIPlusFracP encrypts all I-frame packets plus a fraction alpha of
	// the P-frame packets (the finer-control policy of Section 6.2 /
	// Table 2).
	ModeIPlusFracP
	// ModeHalfI encrypts half of the I-frame packets (examined and
	// rejected by the paper at the end of Section 6.2 — kept so the
	// negative result is reproducible).
	ModeHalfI
)

// String names the mode as in the paper's x-axis labels.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeAll:
		return "all"
	case ModeIFrames:
		return "I"
	case ModePFrames:
		return "P"
	case ModeIPlusFracP:
		return "I+frac(P)"
	case ModeHalfI:
		return "half-I"
	default:
		return "unknown"
	}
}

// Policy is a complete encryption policy P: the algorithm plus the packet
// selection rule.
type Policy struct {
	Mode  Mode
	Alg   Algorithm
	FracP float64 // fraction of P packets for ModeIPlusFracP, in [0,1]

	// HeaderOnlyBytes, when positive, encrypts only the first
	// HeaderOnlyBytes of each selected packet instead of the whole
	// payload — format-aware selective encryption in the spirit of
	// Lookabaugh & Sicker [24]: garbling the slice header makes the
	// whole packet undecodable, so the eavesdropper's distortion matches
	// full-packet encryption at a fraction of the cipher cost. The tail
	// bytes travel in the clear (they leak residual statistics, which is
	// the classic trade-off of the technique). Must be at least
	// MinHeaderOnlyBytes to guarantee the slice header is covered.
	HeaderOnlyBytes int
}

// MinHeaderOnlyBytes is the smallest allowed header-only prefix: it
// covers the slice header (four varints) plus the first macroblock's
// length and leading coefficients with margin.
const MinHeaderOnlyBytes = 24

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.Mode < ModeNone || p.Mode > ModeHalfI {
		return fmt.Errorf("vcrypt: unknown mode %d", p.Mode)
	}
	if p.Mode == ModeIPlusFracP && (p.FracP < 0 || p.FracP > 1) {
		return fmt.Errorf("vcrypt: FracP %g out of [0,1]", p.FracP)
	}
	if p.HeaderOnlyBytes != 0 && p.HeaderOnlyBytes < MinHeaderOnlyBytes {
		return fmt.Errorf("vcrypt: HeaderOnlyBytes %d below minimum %d", p.HeaderOnlyBytes, MinHeaderOnlyBytes)
	}
	return nil
}

// EncryptSpan returns how many bytes of a payload of the given size the
// policy encrypts when the packet is selected.
func (p Policy) EncryptSpan(payloadSize int) int {
	if p.HeaderOnlyBytes > 0 && p.HeaderOnlyBytes < payloadSize {
		return p.HeaderOnlyBytes
	}
	return payloadSize
}

// Name renders the policy for tables ("I+20%P AES256").
func (p Policy) Name() string {
	if p.Mode == ModeIPlusFracP {
		return fmt.Sprintf("I+%d%%P %v", int(p.FracP*100+0.5), p.Alg)
	}
	return fmt.Sprintf("%v %v", p.Mode, p.Alg)
}

// ClassProbabilities returns (encI, encP), the per-class encryption
// selection probabilities the analytical service model consumes
// (analytic.ServiceParams.EncI/EncP).
func (p Policy) ClassProbabilities() (encI, encP float64) {
	switch p.Mode {
	case ModeNone:
		return 0, 0
	case ModeAll:
		return 1, 1
	case ModeIFrames:
		return 1, 0
	case ModePFrames:
		return 0, 1
	case ModeIPlusFracP:
		return 1, p.FracP
	case ModeHalfI:
		return 0.5, 0
	default:
		return 0, 0
	}
}

// Selector applies a policy to a packet stream deterministically: for
// fractional rules it spreads the encrypted packets evenly (Bresenham-style
// accumulation) instead of random sampling, so experiments are exactly
// reproducible and the realised fraction matches alpha to within one
// packet.
type Selector struct {
	policy Policy
	accI   float64
	accP   float64
}

// NewSelector builds a Selector; the policy must validate.
func NewSelector(p Policy) (*Selector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Selector{policy: p}, nil
}

// Policy returns the selector's policy.
func (s *Selector) Policy() Policy { return s.policy }

// ShouldEncrypt decides whether the next packet of the given class is
// encrypted under the policy.
func (s *Selector) ShouldEncrypt(isIFrame bool) bool {
	encI, encP := s.policy.ClassProbabilities()
	if isIFrame {
		return s.step(&s.accI, encI)
	}
	return s.step(&s.accP, encP)
}

func (s *Selector) step(acc *float64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	*acc += frac
	if *acc >= 1 {
		*acc--
		return true
	}
	return false
}

// Downgrade returns the next-cheaper policy on the graceful-degradation
// ladder a sender walks when a transfer deadline or retry budget is
// exhausted: shed crypto cost (and the airtime it buys under header-only
// policies) before giving up on the transfer. The ladder follows the
// paper's cost ordering — all → I+frac(P) → I-only — and never drops
// below I-frame encryption, since that is the cheapest policy the paper
// still considers private (half-I was examined and rejected in Section
// 6.2). Alg and HeaderOnlyBytes are preserved so the receiver's decrypt
// configuration stays valid mid-stream. The second return is false when
// no cheaper policy exists; the sender's next resort is a
// reduced-quality re-encode (transport.PolicyDegrader).
func Downgrade(p Policy) (Policy, bool) {
	q := p
	switch p.Mode {
	case ModeAll:
		q.Mode, q.FracP = ModeIPlusFracP, 0.2
	case ModePFrames, ModeIPlusFracP:
		q.Mode, q.FracP = ModeIFrames, 0
	default:
		return p, false
	}
	return q, true
}

// DowngradeLadder returns p followed by every successive downgrade until
// the ladder is exhausted.
func DowngradeLadder(p Policy) []Policy {
	out := []Policy{p}
	for {
		q, ok := Downgrade(out[len(out)-1])
		if !ok {
			return out
		}
		out = append(out, q)
	}
}

// StandardPolicies returns the twelve policies of Section 6.1 (three
// algorithms x four modes) in a stable order.
func StandardPolicies() []Policy {
	algs := []Algorithm{AES128, AES256, TripleDES}
	modes := []Mode{ModeNone, ModeIFrames, ModePFrames, ModeAll}
	var out []Policy
	for _, a := range algs {
		for _, m := range modes {
			out = append(out, Policy{Mode: m, Alg: a})
		}
	}
	return out
}
