package transport

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// Regression: the shard hash is uint32, and the reduction to a map index
// must stay in uint32 space. The old expression int(h) % len(shards)
// truncates h through int — on 32-bit platforms half the hash range goes
// negative and the modulo indexes out of bounds. The test is
// GOARCH-independent: it emulates the 32-bit truncation explicitly to
// prove the chosen SSRCs exercise the dangerous half, then pins the real
// index math into [0, n) for all of them.
func TestShardIndexUint32Safe(t *testing.T) {
	const n = 16
	negativeIndex := false
	for _, ssrc := range []uint32{0, 1, 2, 3, 7, 0xABCD, 0x10000, 0x08000000, 0xFFFFFFFF} {
		h := ssrc * 2654435761
		if int(int32(h))%n < 0 {
			negativeIndex = true
		}
		idx := shardIndex(ssrc, n)
		if idx < 0 || idx >= n {
			t.Fatalf("shardIndex(%#x, %d) = %d, out of range", ssrc, n, idx)
		}
	}
	if !negativeIndex {
		t.Fatal("no test SSRC made the emulated 32-bit index go negative; the set exercises nothing")
	}
}

// Regression: a session that keeps sending but is mostly rate-limited is
// not idle. The throttled branch of process must refresh lastAt, or the
// sweeper evicts an actively-uploading tenant mid-stream.
func TestIngestThrottledSessionSurvivesSweep(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	// One burst token and a refill rate that is negligible over the test:
	// the first packet is admitted and processed, every later arrival is
	// throttled — so only the throttled branch can keep the session alive.
	cfg.SessionRate = 0.001
	cfg.SessionBurst = 1
	cfg.IdleTimeout = 120 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	const ssrc = 11
	deadline := time.Now().Add(4 * cfg.IdleTimeout)
	for time.Now().Before(deadline) {
		sendSeg(t, conn, buf, ssrc, segs[0])
		time.Sleep(cfg.IdleTimeout / 5)
	}
	st, ok := srv.SessionStats(ssrc)
	if !ok {
		t.Fatalf("throttled session evicted mid-stream after %v of continuous sending (totals %+v)",
			4*cfg.IdleTimeout, srv.Totals())
	}
	if st.Throttled < 5 {
		t.Fatalf("rate limiter never bit (stats %+v); the test exercised nothing", st)
	}
	// Once the client actually goes silent, the eviction machinery still
	// works.
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 0 },
		"the genuinely idle session to be evicted")
}

// Regression: lastAt must be stamped at admission. A session created in
// lookup whose packets never complete the packet path used to sit at
// lastAt zero forever — the sweeper skipped zero timestamps — pinning a
// MaxSessions slot for the life of the server.
func TestIngestAdmittedButUnprocessedSessionEvicted(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.MaxSessions = 1
	cfg.IdleTimeout = 60 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Admit a tenant without ever running a packet through process: the
	// session occupies the only slot with a freshly-admitted state.
	if srv.lookup(99) == nil {
		t.Fatal("admission refused the first tenant")
	}
	if srv.ActiveSessions() != 1 {
		t.Fatalf("active sessions %d after admission", srv.ActiveSessions())
	}
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 0 },
		"the sweeper to evict the never-processed session")
	if tot := srv.Totals(); tot.SessionsEvicted != 1 {
		t.Fatalf("lifecycle totals %+v", tot)
	}
	// The slot is reusable: a real tenant is admitted where the stuck one
	// would have pinned the cap forever.
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	sendSeg(t, conn, buf, 100, segs[0])
	waitFor(t, 2*time.Second, func() bool {
		_, ok := srv.SessionStats(100)
		return ok
	}, "the freed slot to admit a new tenant")
}

// lockedBuffer serializes writes so the ledger sealer goroutine and the
// test's final read cannot race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// A loadgen run with the audit ledger installed produces a log that
// verifies, whose per-kind counts line up with the server's own
// lifecycle totals.
func TestLoadgenLedgerVerifies(t *testing.T) {
	var out lockedBuffer
	a := ledger.NewAppender(&out, ledger.Config{BatchSize: 64, MaxWait: 20 * time.Millisecond})
	prev := ledger.Install(a)
	defer ledger.Install(prev)

	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.MaxSessions = 40
	cfg.RetryAfter = 25 * time.Millisecond
	cfg.IdleTimeout = 250 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lc := LoadgenConfig{
		Sessions:   60,
		ResumeFrac: 0.1,
		AdmitProbe: 150 * time.Millisecond,
		Seed:       9,
	}
	rep, err := RunLoadgen(srv, s, lc)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the lifecycle: every session ends by FIN or eviction before
	// the ledger is sealed, so the event counts are settled.
	waitFor(t, 5*time.Second, func() bool { return srv.ActiveSessions() == 0 },
		"all sessions to close")
	last := srv.Totals()
	waitFor(t, 5*time.Second, func() bool {
		time.Sleep(20 * time.Millisecond)
		tot := srv.Totals()
		settled := tot == last
		last = tot
		return settled
	}, "server totals to settle")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ledger.Install(prev)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	vrep, err := ledger.Verify(bytes.NewReader(out.bytes()))
	if err != nil {
		t.Fatalf("loadgen ledger rejected: %v", err)
	}
	if vrep.Entries == 0 || vrep.ByType["policy"] == 0 {
		t.Fatalf("ledger looks empty: %+v", vrep)
	}
	if rep.Completed == 0 {
		t.Fatalf("no client completed: %v", rep)
	}
	// Non-blocking Append may shed events under pressure; the lifecycle
	// cross-check only holds on a drop-free run (the common case at this
	// scale — a dropped-entry run still proved chain verification above).
	if a.Dropped() == 0 {
		tot := srv.Totals()
		if got := vrep.ByType["session_start"]; got != uint64(tot.SessionsStarted) {
			t.Fatalf("ledger has %d session_start events, server started %d", got, tot.SessionsStarted)
		}
		ends := vrep.ByType["session_end"] + vrep.ByType["evict"]
		if ends != uint64(tot.SessionsFinished+tot.SessionsEvicted) {
			t.Fatalf("ledger has %d close events, server closed %d", ends, tot.SessionsFinished+tot.SessionsEvicted)
		}
		if got := vrep.ByType["reject"]; got != uint64(tot.Rejected) {
			t.Fatalf("ledger has %d reject events, server rejected %d", got, tot.Rejected)
		}
	}
}

// TestRegenerateLedgerFuzzCorpus captures the audit stream of a real
// multi-tenant loadgen run and writes it as a Go fuzz corpus file for
// internal/ledger's FuzzLedgerVerify. It is a generator, not a check:
// it only runs when LEDGER_FUZZ_CORPUS_OUT names the output path, e.g.
//
//	LEDGER_FUZZ_CORPUS_OUT=$PWD/internal/ledger/testdata/fuzz/FuzzLedgerVerify/loadgen-run \
//	  go test ./internal/transport -run TestRegenerateLedgerFuzzCorpus
func TestRegenerateLedgerFuzzCorpus(t *testing.T) {
	out := os.Getenv("LEDGER_FUZZ_CORPUS_OUT")
	if out == "" {
		t.Skip("set LEDGER_FUZZ_CORPUS_OUT to regenerate the ledger fuzz corpus")
	}
	var raw lockedBuffer
	a := ledger.NewAppender(&raw, ledger.Config{BatchSize: 16, MaxWait: 20 * time.Millisecond})
	prev := ledger.Install(a)
	defer ledger.Install(prev)

	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.MaxSessions = 12
	cfg.RetryAfter = 25 * time.Millisecond
	cfg.IdleTimeout = 200 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Oversubscribed with a resume storm so the capture contains every
	// lifecycle kind: starts, rejects, resumes/re-encodes, FINs, evicts.
	lc := LoadgenConfig{
		Sessions:   20,
		ResumeFrac: 0.25,
		AdmitProbe: 150 * time.Millisecond,
		Seed:       7,
	}
	if _, err := RunLoadgen(srv, s, lc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.ActiveSessions() == 0 },
		"all sessions to close")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ledger.Install(prev)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	data := raw.bytes()
	if rep, err := ledger.Verify(bytes.NewReader(data)); err != nil || rep.Entries == 0 {
		t.Fatalf("captured ledger does not verify (%v, %+v); refusing to write corpus", err, rep)
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d ledger bytes to %s", len(data), out)
}
