// Package queuesim is a discrete-event simulator of the sender-side queue
// of Section 4.2: 2-MMPP packet arrivals into a single FIFO server whose
// service time is encryption + backoff + transmission (Eq. 3). It provides
// an independent ground truth for the matrix-geometric solver in
// internal/analytic — the two must agree within simulation noise, which
// the integration tests assert.
package queuesim

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/stats"
)

// Result summarises a simulation run.
type Result struct {
	Packets      int
	MeanWait     float64 // queueing delay before service
	MeanSojourn  float64 // wait + service
	MeanService  float64
	UtilBusy     float64 // fraction of time the server was busy
	WaitCI95     float64 // 95% CI half-width on MeanWait (batch means)
	P99Wait      float64 // 99th percentile of the queueing delay
	IFraction    float64 // realised fraction of I-frame packets
	EncryptedPct float64 // realised fraction of encrypted packets
}

// Options configures a run.
type Options struct {
	// Duration is the simulated time horizon in seconds.
	Duration float64
	// WarmupFraction of the horizon is discarded before statistics
	// accumulate (default 0.1).
	WarmupFraction float64
	// Seed drives all randomness.
	Seed uint64
	// ClassCorrelated selects how a packet's I/P class (and hence its
	// encryption/transmission time class) is chosen. The paper's analysis
	// (Eqs. 4, 8) treats the class as i.i.d. with probability p_I,
	// independent of the arrival phase; with ClassCorrelated=false the
	// simulator does the same, giving a tight validation of the QBD
	// solver. With ClassCorrelated=true the class follows the actual MMPP
	// state (I packets arrive in bursts with their longer service
	// back-to-back), the physically faithful behaviour of the testbed;
	// the difference between the two quantifies the independence
	// approximation baked into the paper's model
	// (BenchmarkAblationClassCorrelation).
	ClassCorrelated bool
}

// sampler draws the per-packet service components per the same parametric
// model the analysis uses: class-conditional Gaussian encryption and
// transmission times (truncated at zero) and geometric-exponential
// backoff.
type sampler struct {
	sp  analytic.ServiceParams
	rng *stats.RNG
	// Bresenham accumulators so fractional policies are spread evenly,
	// matching vcrypt.Selector.
	accI, accP float64
}

func (s *sampler) service(isIFrame bool) (total float64, encrypted bool) {
	enc := 0.0
	encI, encP := s.sp.EncI, s.sp.EncP
	if isIFrame {
		if bresenham(&s.accI, encI) {
			encrypted = true
			enc = positiveNorm(s.rng, s.sp.EncMeanI, s.sp.EncSigmaI)
		}
	} else {
		if bresenham(&s.accP, encP) {
			encrypted = true
			enc = positiveNorm(s.rng, s.sp.EncMeanP, s.sp.EncSigmaP)
		}
	}
	backoff := 0.0
	if s.sp.PS < 1 {
		k := s.rng.Geometric(s.sp.PS)
		for i := 0; i < k; i++ {
			backoff += s.rng.Exp(s.sp.LambdaB)
		}
	}
	var tx float64
	if isIFrame {
		tx = positiveNorm(s.rng, s.sp.TxMeanI, s.sp.TxSigmaI)
	} else {
		tx = positiveNorm(s.rng, s.sp.TxMeanP, s.sp.TxSigmaP)
	}
	return enc + backoff + tx, encrypted
}

func bresenham(acc *float64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	*acc += frac
	if *acc >= 1 {
		*acc--
		return true
	}
	return false
}

func positiveNorm(rng *stats.RNG, mean, sigma float64) float64 {
	if sigma == 0 {
		return mean
	}
	for i := 0; i < 100; i++ {
		if v := rng.Norm(mean, sigma); v > 0 {
			return v
		}
	}
	return mean
}

// Run simulates the queue for the given arrival process and service
// parameters.
func Run(arrival analytic.MMPP2, service analytic.ServiceParams, opts Options) (Result, error) {
	if err := arrival.Validate(); err != nil {
		return Result{}, err
	}
	if err := service.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Duration <= 0 {
		return Result{}, fmt.Errorf("queuesim: non-positive duration")
	}
	warm := opts.WarmupFraction
	if warm <= 0 {
		warm = 0.1
	}
	if warm >= 1 {
		return Result{}, fmt.Errorf("queuesim: warmup fraction %g out of [0,1)", warm)
	}
	rng := stats.NewRNG(opts.Seed)
	arrivals := arrival.Sample(rng, opts.Duration)
	smp := &sampler{sp: service, rng: rng.Split()}

	warmupEnd := warm * opts.Duration
	var serverFree float64
	var waits, sojourns []float64
	var busyTime, serviceSum float64
	var nI, nEnc, counted int
	for _, a := range arrivals {
		start := a.Time
		if serverFree > start {
			start = serverFree
		}
		class := a.IFrame
		if !opts.ClassCorrelated {
			class = rng.Bool(service.PI)
		}
		svc, encrypted := smp.service(class)
		depart := start + svc
		serverFree = depart
		busyTime += svc
		if a.Time < warmupEnd {
			continue
		}
		counted++
		if a.IFrame {
			nI++
		}
		if encrypted {
			nEnc++
		}
		serviceSum += svc
		waits = append(waits, start-a.Time)
		sojourns = append(sojourns, depart-a.Time)
	}
	if counted == 0 {
		return Result{}, fmt.Errorf("queuesim: no packets after warmup; extend Duration")
	}
	res := Result{
		Packets:      counted,
		MeanWait:     stats.Mean(waits),
		MeanSojourn:  stats.Mean(sojourns),
		MeanService:  serviceSum / float64(counted),
		UtilBusy:     busyTime / opts.Duration,
		IFraction:    float64(nI) / float64(counted),
		EncryptedPct: float64(nEnc) / float64(counted),
	}
	res.WaitCI95 = batchMeansCI(waits, 20)
	res.P99Wait = stats.Percentile(waits, 0.99)
	return res, nil
}

// batchMeansCI estimates a 95% confidence half-width for the mean of a
// positively correlated series using the method of batch means.
func batchMeansCI(xs []float64, batches int) float64 {
	if len(xs) < batches*2 {
		return 0
	}
	size := len(xs) / batches
	means := make([]float64, batches)
	for b := 0; b < batches; b++ {
		means[b] = stats.Mean(xs[b*size : (b+1)*size])
	}
	return stats.Summarize(means).CI95
}
