package netem

import (
	"repro/internal/obs"
)

// Observability wiring (PR3). Loss models label their drop counters by
// model so a chaos run's /metrics shows which impairment did the
// damage; every call is gated inside obs on one atomic load.
var (
	mDropsFilter = obs.NewCounter(`netem_drops_total{model="filter"}`,
		"Packets dropped, by loss model.")
	mDropsGilbert = obs.NewCounter(`netem_drops_total{model="gilbert"}`,
		"Packets dropped, by loss model.")
	mDropsSeqBurst = obs.NewCounter(`netem_drops_total{model="seqburst"}`,
		"Packets dropped, by loss model.")
	mBurstLength = obs.NewHistogram("netem_gilbert_burst_packets",
		"Length in packets of completed Gilbert-Elliott drop bursts.",
		obs.ExpBuckets(1, 2, 12))
	mOutageActive = obs.NewGauge("netem_outage_active",
		"1 while an outage window is in force, else 0.")
	mCondDrops = obs.NewCounter("netem_conditioner_drops_total",
		"Packets the sender-side conditioner discarded.")
	mCondDups = obs.NewCounter("netem_conditioner_duplicates_total",
		"Extra packet copies the sender-side conditioner injected.")
	mProxyRefused = obs.NewCounter("netem_proxy_refused_total",
		"Connections the flaky proxy refused at accept.")
	mProxySevered = obs.NewCounter("netem_proxy_severed_total",
		"Connections the flaky proxy severed mid-flight.")
	mPacerSleepSeconds = obs.NewFloatCounter("netem_pacer_sleep_seconds_total",
		"Time spent sleeping in pacer token waits.")
	mPacerRate = obs.NewGauge("netem_pacer_rate_bytes",
		"Most recently configured pacer rate in bytes/second (0 = unlimited).")
)
