package codec

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/video"
)

// TestMetricsDoNotChangeBitstream pins the instrumentation contract:
// the encoder's output is byte-identical whether metrics are recording
// or not, serial and parallel alike. Observability must never leak into
// the bitstream.
func TestMetricsDoNotChangeBitstream(t *testing.T) {
	clip := video.Generate(video.SceneConfig{
		W: video.CIFWidth, H: video.CIFHeight, Frames: 12,
		Motion: video.MotionMedium, Seed: 21,
	})
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig(6)
		cfg.Workers = workers

		obs.SetEnabled(false)
		off, err := EncodeSequence(clip, cfg)
		if err != nil {
			t.Fatal(err)
		}
		obs.SetEnabled(true)
		on, err := EncodeSequence(clip, cfg)
		obs.SetEnabled(false)
		if err != nil {
			t.Fatal(err)
		}

		if len(on) != len(off) {
			t.Fatalf("workers=%d: %d frames with metrics on, %d off", workers, len(on), len(off))
		}
		for i := range off {
			if on[i].Type != off[i].Type || len(on[i].MBData) != len(off[i].MBData) {
				t.Fatalf("workers=%d frame %d: structure differs with metrics on", workers, i)
			}
			for mb := range off[i].MBData {
				if !bytes.Equal(on[i].MBData[mb], off[i].MBData[mb]) {
					t.Fatalf("workers=%d frame %d MB %d: bitstream differs with metrics on", workers, i, mb)
				}
			}
		}
	}
}
