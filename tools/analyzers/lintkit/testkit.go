package lintkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunTest applies the analyzer to the single package formed by the .go
// files in dir, pretending the package lives at importPath (so the
// analyzer's Packages filter is exercised exactly as in production),
// and checks the findings against `// want "regexp"` comments in the
// analysistest convention: every want must be matched by a diagnostic
// on its line, and every diagnostic must be matched by a want.
func RunTest(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	diags, err := runOnDir(a, dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// RunTestNone asserts the analyzer reports nothing for dir when the
// package is placed at importPath — used to prove package filters and
// allowlist markers suppress as designed.
func RunTestNone(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	diags, err := runOnDir(a, dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic for %s: %s", importPath, d)
	}
}

func runOnDir(a *Analyzer, dir, importPath string) ([]Diagnostic, error) {
	pkg, err := checkDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
}

// checkDir parses and type-checks the files of dir as one package,
// resolving imports from the standard library only (testdata imports
// nothing else).
func checkDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(token.NewFileSet(), "source", nil)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		allow:      buildAllowIndex(fset, files),
	}, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func parseWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				pat := arg[1]
				if pat == "" && arg[2] != "" {
					unq, err := strconv.Unquote(`"` + arg[2] + `"`)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string: %v", e.Name(), i+1, err)
					}
					pat = unq
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", e.Name(), i+1, err)
				}
				wants = append(wants, want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// RunTestModule applies the analyzer to a testdata tree laid out as a
// miniature module: every directory below root that contains .go files
// is one package whose import path is its slash-separated path relative
// to root (testdata/flagged/repro/internal/transport becomes
// "repro/internal/transport", exercising the analyzer's Packages filter
// exactly as in production). Imports between these packages resolve
// inside the tree; everything else comes from the standard library.
// Findings are checked against `// want` comments across the whole
// tree, same convention as RunTest.
func RunTestModule(t *testing.T, a *Analyzer, root string) {
	t.Helper()
	pkgs, err := loadTestModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWantsTree(root)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			if matched[i] || !strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), w.file) || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// testModuleImporter resolves the packages of one testdata tree.
type testModuleImporter struct {
	fset     *token.FileSet
	dirs     map[string]string // import path -> directory
	done     map[string]*Package
	checking map[string]bool
	std      types.Importer
}

func (m *testModuleImporter) Import(path string) (*types.Package, error) {
	if _, ok := m.dirs[path]; ok {
		pkg, err := m.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

func (m *testModuleImporter) check(path string) (*Package, error) {
	if pkg, ok := m.done[path]; ok {
		return pkg, nil
	}
	if m.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	m.checking[path] = true
	defer delete(m.checking, path)
	dir := m.dirs[path]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(path, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", dir, err)
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       m.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		allow:      buildAllowIndex(m.fset, files),
	}
	m.done[path] = pkg
	return pkg, nil
}

func loadTestModule(root string) ([]*Package, error) {
	m := &testModuleImporter{
		fset:     token.NewFileSet(),
		dirs:     make(map[string]string),
		done:     make(map[string]*Package),
		checking: make(map[string]bool),
		std:      sharedStdImporter(),
	}
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		if _, ok := m.dirs[ip]; !ok {
			m.dirs[ip] = dir
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files under %s", root)
	}
	sort.Strings(paths)
	var out []*Package
	for _, p := range paths {
		pkg, err := m.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// parseWantsTree collects // want comments from every .go file below
// root; the want's file key is the slash path relative to root.
func parseWantsTree(root string) ([]want, error) {
	var wants []want
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ws, err := parseWantsFile(p, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		wants = append(wants, ws...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// parseWantsFile extracts the want comments of one file, keyed as name.
func parseWantsFile(path, name string) ([]want, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wants []want
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
			pat := arg[1]
			if pat == "" && arg[2] != "" {
				unq, err := strconv.Unquote(`"` + arg[2] + `"`)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string: %v", name, i+1, err)
				}
				pat = unq
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", name, i+1, err)
			}
			wants = append(wants, want{file: name, line: i + 1, re: re})
		}
	}
	return wants, nil
}
