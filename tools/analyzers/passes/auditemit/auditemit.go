// Package auditemit proves audit completeness: every security-relevant
// decision the transport takes must leave a record in the tamper-
// evident ledger. It is the dual of plainleak — plainleak proves
// nothing secret leaves without authorization, auditemit proves
// nothing authorized happens without a trace.
//
// A trigger is a site that takes one of the audited decisions: bumping
// the policy-downgrade or re-encode counters, rejecting an admission,
// starting, finishing or evicting an ingest session (recognized as an
// Inc() on the corresponding package-level obs counter), or minting a
// fresh resume epoch (a call to nextEpoch). Each trigger demands a
// ledger.Emit of the matching EventType either in the trigger's own
// basic block or on every path from the trigger to the function's
// exit — a backward must-analysis over the lintkit CFG, intersecting
// across successors. Emission is interprocedural: a bottom-up summary
// records which event kinds each module-local function emits on every
// path, so delegating the Emit to a helper satisfies the trigger.
//
// Only ledger.Emit calls whose first argument is a constant
// ledger.EventX selector count; an Emit through a variable kind
// satisfies nothing (a documented under-approximation that keeps the
// proof honest). Deferred Emits count — the CFG replays deferred calls
// in the exit block, which every path reaches.
package auditemit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages is where the audited decisions live.
var DefaultPackages = []string{"internal/transport"}

// Analyzer is the auditemit pass.
var Analyzer = &lintkit.Analyzer{
	Name: "auditemit",
	Doc: "Reports audited decisions (policy downgrade, re-encode " +
		"restart, epoch bump, admission reject, session " +
		"start/finish/evict) that are not matched by a ledger.Emit of " +
		"the corresponding EventType in the same block or on every " +
		"path to the function exit. Emits made inside module-local " +
		"helpers are credited through bottom-up must-emit summaries.",
	Packages: DefaultPackages,
	Run:      run,
}

// kinds is the EventType universe as a bitmask; the names match the
// ledger constants.
var kindNames = []string{
	"EventPolicy",
	"EventPlainPacket",
	"EventHeaderOnly",
	"EventDowngrade",
	"EventReencode",
	"EventEpoch",
	"EventSessionStart",
	"EventSessionEnd",
	"EventEvict",
	"EventReject",
}

type kindSet uint16

func kindBit(name string) (kindSet, bool) {
	for i, n := range kindNames {
		if n == name {
			return 1 << uint(i), true
		}
	}
	return 0, false
}

func (s kindSet) name() string {
	for i, n := range kindNames {
		if s == 1<<uint(i) {
			return n
		}
	}
	return "?"
}

var universe = kindSet(1<<uint(len(kindNames))) - 1

// counterTriggers maps package-level obs counter names to the event
// kind their bump must be audited with.
var counterTriggers = []struct {
	counter string
	kind    string
	desc    string
}{
	{"mUploadDowngrades", "EventDowngrade", "policy downgrade"},
	{"mUploadRestarts", "EventReencode", "re-encode restart"},
	{"mIngestRejected", "EventReject", "admission rejection"},
	{"mIngestSessionsStarted", "EventSessionStart", "session admission"},
	{"mIngestSessionsFinished", "EventSessionEnd", "session finish"},
	{"mIngestSessionsEvicted", "EventEvict", "session eviction"},
}

var (
	ledgerEmit = lintkit.FuncMatch{Path: "internal/ledger", Name: "Emit"}
	epochMint  = lintkit.FuncMatch{Path: "internal/transport", Name: "nextEpoch"}
)

func run(pass *lintkit.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	sums := emitSummaries(pass.Prog)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, sums, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, sums, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// trigger is one audited decision site.
type trigger struct {
	pos  token.Pos
	kind kindSet
	desc string
}

// checkBody runs the backward must-emit analysis over one body and
// reports every trigger whose required kind is neither emitted in its
// own block nor guaranteed on all paths ahead.
func checkBody(pass *lintkit.Pass, sums map[*types.Func]kindSet, body *ast.BlockStmt) {
	cfg := lintkit.BuildCFG(body)
	sc := &scanner{info: pass.TypesInfo, sums: sums}
	blockKinds := make([]kindSet, len(cfg.Blocks))
	blockTriggers := make([][]trigger, len(cfg.Blocks))
	any := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			blockKinds[b.Index] |= sc.nodeKinds(n)
			ts := sc.nodeTriggers(n)
			blockTriggers[b.Index] = append(blockTriggers[b.Index], ts...)
			any = any || len(ts) > 0
		}
	}
	if !any {
		return
	}
	mustIn := solveMustEmit(cfg, blockKinds)
	for _, b := range cfg.Blocks {
		// Guaranteed kinds at any point of b: emitted somewhere in this
		// straight-line block, or on every path after it.
		out := universe
		if len(b.Succs) == 0 {
			out = 0
		}
		for _, e := range b.Succs {
			out &= mustIn[e.To.Index]
		}
		have := blockKinds[b.Index] | out
		for _, tr := range blockTriggers[b.Index] {
			if tr.kind&have == 0 {
				pass.Reportf(tr.pos, "%s is not audited: no ledger.Emit(ledger.%s) in this block or on every path to the function exit", tr.desc, tr.kind.name())
			}
		}
	}
}

// solveMustEmit computes, per block, the kinds guaranteed to be
// emitted between the block's entry and the function exit — a backward
// intersection fixpoint, optimistically initialized to the universe.
func solveMustEmit(cfg *lintkit.CFG, blockKinds []kindSet) []kindSet {
	mustIn := make([]kindSet, len(cfg.Blocks))
	for i := range mustIn {
		mustIn[i] = universe
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			out := universe
			if len(b.Succs) == 0 {
				out = 0
			}
			for _, e := range b.Succs {
				out &= mustIn[e.To.Index]
			}
			in := blockKinds[b.Index] | out
			if in != mustIn[b.Index] {
				mustIn[b.Index] = in
				changed = true
			}
		}
	}
	return mustIn
}

// scanner extracts per-node emitted kinds and triggers, respecting the
// CFG decomposition (range headers contribute their ranged expression,
// case clauses their guards, go statements only their argument
// expressions — a spawned goroutine's Emit is not sequenced before the
// trigger's paths) and never descending into function literals.
type scanner struct {
	info *types.Info
	sums map[*types.Func]kindSet
}

func (s *scanner) nodeKinds(n ast.Node) kindSet {
	var out kindSet
	s.walk(n, func(call *ast.CallExpr, fn *types.Func) {
		out |= s.callKinds(call, fn)
	})
	return out
}

func (s *scanner) nodeTriggers(n ast.Node) []trigger {
	var out []trigger
	s.walk(n, func(call *ast.CallExpr, fn *types.Func) {
		if tr, ok := s.callTrigger(call, fn); ok {
			out = append(out, tr)
		}
	})
	return out
}

func (s *scanner) walk(n ast.Node, visit func(*ast.CallExpr, *types.Func)) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		s.walkExpr(n.X, visit)
	case *ast.CaseClause:
		for _, e := range n.List {
			s.walkExpr(e, visit)
		}
	case *ast.SelectStmt:
	case *ast.GoStmt:
		for _, a := range n.Call.Args {
			s.walkExpr(a, visit)
		}
	case *ast.DeferStmt:
		// The deferred call is replayed in the exit block; only the
		// argument expressions run here.
		for _, a := range n.Call.Args {
			s.walkExpr(a, visit)
		}
	case ast.Node:
		s.walkExpr(n, visit)
	}
}

func (s *scanner) walkExpr(n ast.Node, visit func(*ast.CallExpr, *types.Func)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.IfStmt, *ast.ForStmt, *ast.RangeStmt:
			return false // decomposed by the CFG
		case *ast.CallExpr:
			for _, a := range c.Args {
				s.walkExpr(a, visit)
			}
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
				s.walkExpr(sel.X, visit)
			}
			if fn := lintkit.FuncForCall(s.info, c); fn != nil {
				visit(c, fn)
			}
			return false
		}
		return true
	})
}

// callKinds returns the kinds this call is guaranteed to emit: a
// direct ledger.Emit with a constant kind, or a module-local helper's
// must-emit summary.
func (s *scanner) callKinds(call *ast.CallExpr, fn *types.Func) kindSet {
	if ledgerEmit.Matches(fn) {
		if len(call.Args) > 0 {
			if bit, ok := constKindOf(s.info, call.Args[0]); ok {
				return bit
			}
		}
		return 0
	}
	return s.sums[fn]
}

// callTrigger recognizes audited decision sites.
func (s *scanner) callTrigger(call *ast.CallExpr, fn *types.Func) (trigger, bool) {
	if epochMint.Matches(fn) {
		bit, _ := kindBit("EventEpoch")
		return trigger{pos: call.Pos(), kind: bit, desc: "epoch bump (nextEpoch)"}, true
	}
	if fn.Name() != "Inc" {
		return trigger{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return trigger{}, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return trigger{}, false
	}
	obj := s.info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return trigger{}, false // not a package-level counter
	}
	if !pathMatches(obj.Pkg().Path(), "internal/transport") {
		return trigger{}, false
	}
	for _, ct := range counterTriggers {
		if id.Name == ct.counter {
			bit, _ := kindBit(ct.kind)
			return trigger{pos: call.Pos(), kind: bit, desc: ct.desc + " (" + ct.counter + ".Inc)"}, true
		}
	}
	return trigger{}, false
}

// constKindOf resolves an Emit kind argument to its bit when it is a
// constant named EventX from the ledger package.
func constKindOf(info *types.Info, e ast.Expr) (kindSet, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return 0, false
	}
	obj := info.Uses[id]
	cst, ok := obj.(*types.Const)
	if !ok || cst.Pkg() == nil || !pathMatches(cst.Pkg().Path(), "internal/ledger") {
		return 0, false
	}
	return kindBit(cst.Name())
}

func pathMatches(path, pat string) bool {
	return path == pat || strings.HasSuffix(path, "/"+pat)
}

// --- bottom-up must-emit summaries ---

type emitCacheKey struct{}

// emitSummaries computes, bottom-up over the module call graph, the
// kinds each module-local function emits on every path from entry to
// exit. Summaries start empty, so recursion settles conservatively.
func emitSummaries(prog *lintkit.Program) map[*types.Func]kindSet {
	v := prog.Cache(emitCacheKey{}, func() any {
		sums := make(map[*types.Func]kindSet)
		cg := lintkit.BuildCallGraph(prog)
		for _, scc := range cg.BottomUp() {
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					src := prog.Source(fn)
					if src == nil {
						continue
					}
					got := summarize(src, sums)
					if got != sums[fn] {
						sums[fn] = got
						changed = true
					}
				}
			}
		}
		return sums
	})
	return v.(map[*types.Func]kindSet)
}

func summarize(src *lintkit.FuncSource, sums map[*types.Func]kindSet) kindSet {
	cfg := lintkit.BuildCFG(src.Decl.Body)
	sc := &scanner{info: src.Pkg.Info, sums: sums}
	blockKinds := make([]kindSet, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			blockKinds[b.Index] |= sc.nodeKinds(n)
		}
	}
	return solveMustEmit(cfg, blockKinds)[cfg.Entry.Index]
}
