package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/auditemit"
	"repro/tools/analyzers/passes/bufown"
	"repro/tools/analyzers/passes/lockorder"
)

// writeModule lays a throwaway Go module out under a temp dir so the
// tests can prove the gate end to end: LoadDir really shells out to
// `go list`, really type-checks, and the suite really fails a module
// with a seeded violation.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const gateGoMod = "module gatecheck\n\ngo 1.22\n"

func TestSeededViolationFailsTheGate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": gateGoMod,
		"internal/analytic/model.go": `package analytic

import "time"

// Epoch leaks the wall clock into model code — the exact regression
// the walltime gate exists to catch.
func Epoch() int64 { return time.Now().UnixNano() }
`,
	})
	pkgs, err := lintkit.LoadDir(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "walltime" || !strings.Contains(d.Message, "wall-clock time.Now") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestCleanModulePassesTheGate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": gateGoMod,
		"internal/analytic/model.go": `package analytic

// Epoch derives its value from configuration, as model code must.
func Epoch(seed int64) int64 { return seed * 1e9 }
`,
	})
	pkgs, err := lintkit.LoadDir(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestStaleAllowDetection proves the -staleallow mode end to end: a
// module with one live suppression (it hides a real walltime finding)
// and one stale suppression (nothing to hide) reports exactly the
// stale one.
func TestStaleAllowDetection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": gateGoMod,
		"internal/analytic/model.go": `package analytic

import "time"

// Live: the marker below suppresses a real walltime finding.
func Epoch() int64 {
	//lint:allow walltime boot-time anchor is wall clock by design
	return time.Now().UnixNano()
}

// Stale: nothing on the next line trips walltime.
func Scale(seed int64) int64 {
	//lint:allow walltime left behind after a refactor
	return seed * 1e9
}
`,
	})
	pkgs, err := lintkit.LoadDir(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("live suppression failed, findings leaked: %v", diags)
	}
	stale := lintkit.StaleAllows(pkgs, analyzers)
	if len(stale) != 1 {
		t.Fatalf("got %d stale markers, want exactly 1: %v", len(stale), stale)
	}
	if stale[0].Analyzer != "staleallow" || !strings.Contains(stale[0].Message, `"walltime"`) {
		t.Errorf("unexpected stale diagnostic: %s", stale[0])
	}
	if !strings.Contains(stale[0].Pos.Filename, "model.go") || stale[0].Pos.Line != 13 {
		t.Errorf("stale marker reported at %s:%d, want model.go:13 (the marker line)", stale[0].Pos.Filename, stale[0].Pos.Line)
	}
}

// TestRepositoryHasNoStaleAllows keeps the tree's suppression set live:
// every //lint:allow or //nolint naming one of our analyzers must still
// be earning its keep.
func TestRepositoryHasNoStaleAllows(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped in -short mode")
	}
	pkgs := loadRoot(t)
	if _, err := lintkit.RunAnalyzers(pkgs, analyzers); err != nil {
		t.Fatal(err)
	}
	for _, d := range lintkit.StaleAllows(pkgs, analyzers) {
		t.Errorf("stale suppression: %s", d)
	}
}

// loadRoot loads the enclosing root module, skipping the test when it
// is not there (the command also builds standalone).
func loadRoot(t *testing.T) []*lintkit.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("root module not found at %s", root)
	}
	pkgs, err := lintkit.LoadDir(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// lintBudget bounds one full 14-pass sweep of the root module,
// excluding the `go list` + type-check load. The interprocedural passes
// (bufown, lockheld, lockorder, auditemit, plainleak, netbound) all
// memoize their module-wide summaries on the shared Program, so
// analysis cost is essentially one bottom-up fixpoint per pass —
// seconds, not minutes.
// CI asserts this budget on every push; if a new pass blows it, make
// the pass cache, don't raise the number first.
const lintBudget = 30 * time.Second

// TestRepositoryIsClean runs the full suite over the enclosing root
// module — the same invocation CI gates on. It keeps the tree honest
// between CI runs: a finding here means either fix the code or justify
// it with //lint:allow. The analysis phase must also fit lintBudget.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped in -short mode")
	}
	pkgs := loadRoot(t)
	start := time.Now()
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
	t.Logf("%d-pass sweep analyzed %d packages in %v", len(analyzers), len(pkgs), elapsed)
	if elapsed > lintBudget {
		t.Errorf("analysis took %v, over the %v budget — a pass stopped caching its summaries", elapsed, lintBudget)
	}
}

// TestLifecycleSummariesBuiltOncePerRun pins the caching contract of
// the three lifecycle passes: bufown's ownership summaries, lockorder's
// acquisition graph (two cache entries: the graph and the may-acquire
// summaries beneath it), and auditemit's must-emit summaries are each
// built exactly once per Program, then shared by every per-package
// analyzer invocation. Without the caches each in-scope package would
// re-run a module-wide bottom-up fixpoint and the sweep would scale
// quadratically with the module.
func TestLifecycleSummariesBuiltOncePerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped in -short mode")
	}
	pkgs := loadRoot(t)
	lifecycle := []*lintkit.Analyzer{auditemit.Analyzer, bufown.Analyzer, lockorder.Analyzer}
	prog := lintkit.NewProgram(pkgs)
	diags, err := lintkit.RunProgram(prog, lifecycle)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
	builds, hits := prog.CacheStats()
	// auditemit: 1 (must-emit summaries). bufown: 1 (ownership report).
	// lockorder: 2 (order graph + may-acquire summaries).
	const wantBuilds = 4
	if builds != wantBuilds {
		t.Errorf("lifecycle passes built %d cached values, want %d — a pass is rebuilding per package or grew an unpinned cache", builds, wantBuilds)
	}
	// Each pass runs once per in-scope package; every run after the
	// first must hit. Scopes overlap on internal/transport alone, so
	// with >1 in-scope package there are strictly more hits than builds.
	if hits <= builds {
		t.Errorf("only %d cache hits for %d builds — per-package runs are not sharing the Program caches", hits, builds)
	}
}
