package transport

import "testing"

func TestSeqExtenderInOrderWrap(t *testing.T) {
	var x seqExtender
	// Two full epochs in order: the extension must be the identity plus
	// the accumulated epoch base.
	want := uint64(0)
	for i := 0; i < 2*65536; i++ {
		s := uint16(i)
		if got := x.Extend(s); got != want {
			t.Fatalf("Extend(%d) = %d, want %d", s, got, want)
		}
		want++
	}
}

func TestSeqExtenderReorderedStragglerAcrossWrap(t *testing.T) {
	var x seqExtender
	// Stream wraps 65534, 65535, 0, 1 — then a reordered straggler 65533
	// from before the wrap arrives. The old heuristic ("backwards step
	// > 32768 bumps the epoch") extended it into the NEW epoch as
	// 65536+65533 = 131069, garbling its decrypt IV and leaping maxSeq.
	for _, s := range []uint16{65534, 65535, 0, 1} {
		x.Extend(s)
	}
	if got := x.Extend(65533); got != 65533 {
		t.Fatalf("straggler extended to %d, want 65533 (previous epoch)", got)
	}
	// The straggler must not have dragged the reference backwards: the
	// stream continues in the new epoch.
	if got := x.Extend(2); got != 65536+2 {
		t.Fatalf("post-straggler Extend(2) = %d, want %d", got, 65536+2)
	}
}

func TestSeqExtenderBackwardReorderWithinEpoch(t *testing.T) {
	var x seqExtender
	x.Extend(100)
	x.Extend(101)
	// Small reorder: 99 stays in the current epoch, reference unmoved.
	if got := x.Extend(99); got != 99 {
		t.Fatalf("Extend(99) = %d, want 99", got)
	}
	if got := x.Extend(102); got != 102 {
		t.Fatalf("Extend(102) = %d, want 102", got)
	}
}

func TestSeqExtenderForwardWrapAhead(t *testing.T) {
	var x seqExtender
	x.Extend(65530)
	// A forward jump across the wrap (losses ate the boundary packets)
	// must land in the next epoch, not 65525 steps backwards.
	if got := x.Extend(5); got != 65536+5 {
		t.Fatalf("Extend(5) after 65530 = %d, want %d", got, 65536+5)
	}
}

func TestSeqExtenderDeepEpochs(t *testing.T) {
	var x seqExtender
	// Drive the extender a few epochs deep with a straggler near each
	// wrap; every extension must stay exact.
	seq := 0
	for e := 0; e < 3; e++ {
		for i := 0; i < 65536; i++ {
			if got, want := x.Extend(uint16(seq)), uint64(seq); got != want {
				t.Fatalf("epoch %d: Extend = %d, want %d", e, got, want)
			}
			seq++
		}
		// Straggler from two packets back (previous epoch once wrapped).
		strag := seq - 2
		if got := x.Extend(uint16(strag)); got != uint64(strag) {
			t.Fatalf("epoch %d straggler: got %d, want %d", e, got, strag)
		}
	}
}
