// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (one benchmark per table/figure, wrapping the
// internal/experiments implementations), benchmarks the hot substrates,
// and runs the ablation studies DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks use reduced clip geometry so a full sweep
// completes in minutes; cmd/figures -full reproduces the paper-scale runs.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/analytic"
	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/queuesim"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// benchOpts is the reduced geometry shared by the per-figure benchmarks:
// every structural element of the paper's setup is retained (GOP 30/50,
// slow/fast motion, all levels, both devices) on a smaller canvas.
func benchOpts() experiments.Options {
	return experiments.Options{
		Width: 96, Height: 96, Frames: 150, Repetitions: 1, Seed: 1, Stations: 3,
	}
}

var (
	fixtureOnce sync.Once
	fixture     *experiments.Fixture
	fixtureErr  error
)

func benchFixture(b *testing.B) *experiments.Fixture {
	b.Helper()
	fixtureOnce.Do(func() {
		fixture, fixtureErr = experiments.NewFixture(benchOpts())
		if fixtureErr != nil {
			return
		}
		// Pre-build the workloads so figure benchmarks measure the
		// experiment, not the clip encoding.
		for _, m := range []video.MotionLevel{video.MotionLow, video.MotionMedium, video.MotionHigh} {
			for _, gop := range []int{30, 50} {
				if _, err := fixture.Workload(m, gop); err != nil {
					fixtureErr = err
					return
				}
			}
		}
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixture
}

func benchTable(b *testing.B, fn func(*experiments.Fixture) (*experiments.Table, error)) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := fn(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- One benchmark per table and figure of the evaluation section ---

func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Table1(); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2DistortionVsDistance(b *testing.B) { benchTable(b, experiments.Fig2) }

func BenchmarkFig4Distortion(b *testing.B) { benchTable(b, experiments.Fig4) }

func BenchmarkFig5MOS(b *testing.B) { benchTable(b, experiments.Fig5) }

func BenchmarkFig6Screenshots(b *testing.B) {
	f := benchFixture(b)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(f, dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7DelaySamsung(b *testing.B) { benchTable(b, experiments.Fig7) }

func BenchmarkFig8DelayHTC(b *testing.B) { benchTable(b, experiments.Fig8) }

func BenchmarkFig9FractionalP(b *testing.B) { benchTable(b, experiments.Fig9) }

func BenchmarkTable2MixedPolicy(b *testing.B) { benchTable(b, experiments.Table2) }

func BenchmarkFig10PowerSamsung(b *testing.B) { benchTable(b, experiments.Fig10) }

func BenchmarkFig11PowerHTC(b *testing.B) { benchTable(b, experiments.Fig11) }

func BenchmarkFig12HTTPDelaySamsung(b *testing.B) { benchTable(b, experiments.Fig12) }

func BenchmarkFig13HTTPDelayHTC(b *testing.B) { benchTable(b, experiments.Fig13) }

func BenchmarkFig14HTTPDistortion(b *testing.B) { benchTable(b, experiments.Fig14) }

func BenchmarkFig15HTTPMOS(b *testing.B) { benchTable(b, experiments.Fig15) }

// --- Substrate micro-benchmarks ---

func benchClip(b *testing.B, motion video.MotionLevel, frames int) []*video.Frame {
	b.Helper()
	return video.Generate(video.SceneConfig{W: 176, H: 144, Frames: frames, Motion: motion, Seed: 1})
}

func BenchmarkCodecEncode(b *testing.B) {
	clip := benchClip(b, video.MotionMedium, 30)
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncodeSequence(clip, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(clip)*b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkCodecDecode(b *testing.B) {
	clip := benchClip(b, video.MotionMedium, 30)
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeSequence(encoded, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(clip)*b.N)/b.Elapsed().Seconds(), "frames/s")
}

func benchCipher(b *testing.B, alg vcrypt.Algorithm) {
	key := make([]byte, alg.KeySize())
	c, err := vcrypt.NewCipher(alg, key)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncryptPacket(uint64(i), payload)
	}
}

func BenchmarkCipherAES128(b *testing.B) { benchCipher(b, vcrypt.AES128) }

func BenchmarkCipherAES256(b *testing.B) { benchCipher(b, vcrypt.AES256) }

func BenchmarkCipher3DES(b *testing.B) { benchCipher(b, vcrypt.TripleDES) }

func BenchmarkQBDSolve(b *testing.B) {
	arr := analytic.MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	sp := analytic.ServiceParams{
		PI:   arr.IFramePacketFraction(),
		EncI: 1, EncP: 0.2,
		EncMeanI: 0.8e-3, EncSigmaI: 0.1e-3,
		EncMeanP: 0.4e-3, EncSigmaP: 0.05e-3,
		TxMeanI: 1.6e-3, TxSigmaI: 0.15e-3,
		TxMeanP: 0.7e-3, TxSigmaP: 0.08e-3,
		PS: 0.93, LambdaB: 900,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.SolveQueue(arr, sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistortionModel(b *testing.B) {
	m := analytic.DistortionModel{
		G: 30, PISuccess: 0.9, PPSuccess: 0.95,
		DMin: 50, DMax: 800,
		InterGOP:       stats.Polynomial{Coeffs: []float64{100, 200, -10}},
		MaxDistance:    4,
		BaseDistortion: 5,
		NoReferenceMSE: 2500,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ExpectedDistortion(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueueSim(b *testing.B) {
	arr := analytic.MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	sp := analytic.ServiceParams{
		PI: arr.IFramePacketFraction(), TxMeanI: 1.6e-3, TxMeanP: 0.7e-3, PS: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queuesim.Run(arr, sp, queuesim.Options{Duration: 100, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureDistortion(b *testing.B) {
	clip := benchClip(b, video.MotionMedium, 72)
	cfg := codec.DefaultConfig(24)
	cfg.Width, cfg.Height = 176, 144
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MeasureDistortion(clip, cfg, 1400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketize(b *testing.B) {
	clip := benchClip(b, video.MotionMedium, 2)
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Packetize(encoded[0], 1400); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation studies (DESIGN.md) ---

// BenchmarkAblationErlangOrder quantifies the accuracy/cost trade-off of
// the PH fit order behind the QBD solver: E[W] drift relative to the
// highest order, against solve time.
func BenchmarkAblationErlangOrder(b *testing.B) {
	arr := analytic.MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	base := analytic.ServiceParams{
		PI: arr.IFramePacketFraction(), EncI: 1, EncP: 0.2,
		EncMeanI: 0.8e-3, EncMeanP: 0.4e-3,
		TxMeanI: 1.6e-3, TxMeanP: 0.7e-3,
		PS: 0.93, LambdaB: 900,
	}
	ref := base
	ref.MaxErlangOrder = 64
	refRes, err := analytic.SolveQueue(arr, ref)
	if err != nil {
		b.Fatal(err)
	}
	for _, order := range []int{4, 8, 16, 32, 64} {
		order := order
		b.Run(benchName("order", order), func(b *testing.B) {
			sp := base
			sp.MaxErlangOrder = order
			var last analytic.QueueResult
			for i := 0; i < b.N; i++ {
				last, err = analytic.SolveQueue(arr, sp)
				if err != nil {
					b.Fatal(err)
				}
			}
			drift := (last.MeanWait - refRes.MeanWait) / refRes.MeanWait
			b.ReportMetric(drift*100, "%driftEW")
			b.ReportMetric(float64(last.Phases), "phases")
		})
	}
}

// BenchmarkAblationDistortionDP compares the reference-distance dynamic
// program against a Monte-Carlo evaluation of the same GOP chain: the DP
// is exact and orders of magnitude faster.
func BenchmarkAblationDistortionDP(b *testing.B) {
	m := analytic.DistortionModel{
		G: 30, PISuccess: 0.9, PPSuccess: 0.95,
		DMin: 50, DMax: 800,
		InterGOP:       stats.Polynomial{Coeffs: []float64{100, 200, -10}},
		MaxDistance:    4,
		BaseDistortion: 5,
		NoReferenceMSE: 2500,
	}
	const numGOPs = 10
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ExpectedDistortion(numGOPs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("montecarlo", func(b *testing.B) {
		want, err := m.ExpectedDistortion(numGOPs)
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.NewRNG(1)
		var got float64
		for i := 0; i < b.N; i++ {
			got = monteCarloDistortion(m, numGOPs, 2000, rng)
		}
		drift := (got - want) / want
		b.ReportMetric(drift*100, "%driftMC")
	})
}

// monteCarloDistortion simulates the GOP chain of Section 4.3.3 directly.
func monteCarloDistortion(m analytic.DistortionModel, numGOPs, trials int, rng *stats.RNG) float64 {
	var total float64
	for t := 0; t < trials; t++ {
		noRef := true
		dist := 0
		for g := 0; g < numGOPs; g++ {
			if rng.Float64() < m.PISuccess {
				noRef = false
				dist = 0
				// Intra: find first lost P.
				lost := -1
				for i := 1; i <= m.G-1; i++ {
					if rng.Float64() >= m.PPSuccess {
						lost = i
						break
					}
				}
				if lost < 0 {
					total += m.BaseDistortion
				} else {
					d := analytic.IntraGOPDistortion(lost, m.G, m.DMin, m.DMax)
					if d < m.BaseDistortion {
						d = m.BaseDistortion
					}
					total += d
				}
				continue
			}
			if noRef {
				total += m.NoReferenceMSE
				continue
			}
			dist++
			dd := dist
			if dd > m.MaxDistance {
				dd = m.MaxDistance
			}
			v := m.InterGOP.Eval(float64(dd))
			if v < m.BaseDistortion {
				v = m.BaseDistortion
			}
			total += v
		}
	}
	return total / float64(trials*numGOPs)
}

// BenchmarkAblationPerPacketIV compares per-packet OFB (the paper's
// error-containment design) against a single stream-wide OFB pass:
// the throughput cost of re-keying the stream per packet.
func BenchmarkAblationPerPacketIV(b *testing.B) {
	key := make([]byte, 32)
	c, err := vcrypt.NewCipher(vcrypt.AES256, key)
	if err != nil {
		b.Fatal(err)
	}
	const pktSize = 1400
	const packets = 64
	payload := make([]byte, pktSize*packets)
	b.Run("per-packet", func(b *testing.B) {
		b.SetBytes(pktSize * packets)
		for i := 0; i < b.N; i++ {
			for p := 0; p < packets; p++ {
				c.EncryptPacket(uint64(p), payload[p*pktSize:(p+1)*pktSize])
			}
		}
	})
	b.Run("stream-wide", func(b *testing.B) {
		b.SetBytes(pktSize * packets)
		for i := 0; i < b.N; i++ {
			c.EncryptPacket(0, payload)
		}
	})
}

// BenchmarkAblationMotionSearch compares diamond search (with predictors)
// against exhaustive search: compression parity at a fraction of the cost.
func BenchmarkAblationMotionSearch(b *testing.B) {
	clip := benchClip(b, video.MotionHigh, 12)
	for _, full := range []bool{false, true} {
		name := "diamond"
		if full {
			name = "full"
		}
		full := full
		b.Run(name, func(b *testing.B) {
			cfg := codec.DefaultConfig(12)
			cfg.Width, cfg.Height = 176, 144
			cfg.FullSearch = full
			var bytes int
			for i := 0; i < b.N; i++ {
				encoded, err := codec.EncodeSequence(clip, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bytes = 0
				for _, ef := range encoded {
					bytes += ef.Size()
				}
			}
			b.ReportMetric(float64(bytes), "clipbytes")
		})
	}
}

// BenchmarkAblationClassCorrelation quantifies the independence
// approximation in the paper's service model (Eqs. 4/8): the queue
// simulator with the I/P service class following the actual MMPP state
// versus drawn i.i.d.
func BenchmarkAblationClassCorrelation(b *testing.B) {
	arr := analytic.MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	sp := analytic.ServiceParams{
		PI:   arr.IFramePacketFraction(),
		EncI: 1, EncP: 1,
		EncMeanI: 0.8e-3, EncMeanP: 0.4e-3,
		TxMeanI: 1.6e-3, TxMeanP: 0.7e-3,
		PS: 1,
	}
	var iid, corr float64
	for _, correlated := range []bool{false, true} {
		name := "iid"
		if correlated {
			name = "correlated"
		}
		correlated := correlated
		b.Run(name, func(b *testing.B) {
			var res queuesim.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = queuesim.Run(arr, sp, queuesim.Options{
					Duration: 300, Seed: uint64(i + 1), ClassCorrelated: correlated,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanWait*1e3, "EW-ms")
			if correlated {
				corr = res.MeanWait
			} else {
				iid = res.MeanWait
			}
		})
	}
	if iid > 0 && corr > 0 {
		b.Logf("class correlation raises E[W] by %.0f%%", (corr/iid-1)*100)
	}
}

// BenchmarkAblationUniformQ compares the per-class eavesdropper model
// (default, matches the experiments) against the literal uniform-q form of
// Section 4.3 across the four levels.
func BenchmarkAblationUniformQ(b *testing.B) {
	f := benchFixture(b)
	w, err := f.Workload(video.MotionLow, 30)
	if err != nil {
		b.Fatal(err)
	}
	cal, err := f.Calibrate(w, energy.SamsungGalaxySII())
	if err != nil {
		b.Fatal(err)
	}
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	b.ResetTimer()
	var perClass, uniform core.Prediction
	for i := 0; i < b.N; i++ {
		cal.UniformQEavesdropper = false
		perClass, err = cal.Predict(pol)
		if err != nil {
			b.Fatal(err)
		}
		cal.UniformQEavesdropper = true
		uniform, err = cal.Predict(pol)
		if err != nil {
			b.Fatal(err)
		}
	}
	cal.UniformQEavesdropper = false
	b.ReportMetric(perClass.EavesdropperPSNR, "perClass-dB")
	b.ReportMetric(uniform.EavesdropperPSNR, "uniformQ-dB")
}

// transportRunUDP aliases the transport entry point for the ablations.
var transportRunUDP = transport.RunUDP

func benchName(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationBFrames compares the paper's IPP...P structure against
// the optional IBBP structure (Section 2): bits spent and encode cost.
func BenchmarkAblationBFrames(b *testing.B) {
	clip := benchClip(b, video.MotionMedium, 24)
	for _, nb := range []int{0, 2} {
		nb := nb
		b.Run(benchName("B", nb), func(b *testing.B) {
			cfg := codec.DefaultConfig(24)
			cfg.Width, cfg.Height = 176, 144
			cfg.BFrames = nb
			var bytes int
			for i := 0; i < b.N; i++ {
				encoded, err := codec.EncodeSequenceB(clip, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bytes = 0
				for _, ef := range encoded {
					bytes += ef.Size()
				}
			}
			b.ReportMetric(float64(bytes), "clipbytes")
		})
	}
}

// BenchmarkAblationHeaderOnly compares full-payload encryption against the
// header-only selective variant: identical confidentiality (the slice
// header is unreadable), far less cipher work.
func BenchmarkAblationHeaderOnly(b *testing.B) {
	f := benchFixture(b)
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		b.Fatal(err)
	}
	for _, hdr := range []int{0, 64} {
		hdr := hdr
		name := "full-payload"
		if hdr > 0 {
			name = "header-only"
		}
		b.Run(name, func(b *testing.B) {
			pol := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.TripleDES, HeaderOnlyBytes: hdr}
			var last float64
			for i := 0; i < b.N; i++ {
				s := f.Session(w, pol, energy.SamsungGalaxySII(), uint64(i+1))
				res, err := transportRunUDP(s, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanSojourn
			}
			b.ReportMetric(last*1e3, "sojourn-ms")
		})
	}
}

// BenchmarkAblationPadding quantifies the pad-to-MTU countermeasure's
// delay cost (internal/traffic closes the size side channel with it).
func BenchmarkAblationPadding(b *testing.B) {
	f := benchFixture(b)
	w, err := f.Workload(video.MotionLow, 30)
	if err != nil {
		b.Fatal(err)
	}
	for _, pad := range []bool{false, true} {
		pad := pad
		name := "plain"
		if pad {
			name = "padded"
		}
		b.Run(name, func(b *testing.B) {
			pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
			var last float64
			for i := 0; i < b.N; i++ {
				s := f.Session(w, pol, energy.SamsungGalaxySII(), uint64(i+1))
				s.PadToMTU = pad
				res, err := transportRunUDP(s, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanSojourn
			}
			b.ReportMetric(last*1e3, "sojourn-ms")
		})
	}
}

// BenchmarkAudioCodec measures the ADPCM substrate.
func BenchmarkAudioCodec(b *testing.B) {
	track := audio.Generate(8000, 10, 1)
	b.SetBytes(int64(len(track.Samples) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames, err := audio.Encode(track)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := audio.Decode(frames, track.SampleRate); err != nil {
			b.Fatal(err)
		}
	}
}
