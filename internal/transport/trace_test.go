package transport

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vcrypt"
	"repro/internal/video"
)

func TestTraceWriters(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	res, err := RunUDP(s, 21)
	if err != nil {
		t.Fatal(err)
	}
	var snd bytes.Buffer
	if err := WriteSenderTrace(&snd, res.Records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(snd.String()), "\n")
	if len(lines) != len(res.Records)+1 {
		t.Fatalf("sender trace has %d lines for %d records", len(lines), len(res.Records))
	}
	if !strings.HasPrefix(lines[0], "# seq arrival") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	// Every data line has seven fields and class I or P.
	for _, l := range lines[1:] {
		fields := strings.Fields(l)
		if len(fields) != 7 {
			t.Fatalf("bad sender line %q", l)
		}
		if fields[5] != "I" && fields[5] != "P" {
			t.Fatalf("bad class in %q", l)
		}
	}
	var rcv bytes.Buffer
	if err := WriteReceiverTrace(&rcv, res.Records); err != nil {
		t.Fatal(err)
	}
	rl := strings.Split(strings.TrimSpace(rcv.String()), "\n")
	if len(rl) != len(res.Records)+1 {
		t.Fatalf("receiver trace has %d lines", len(rl))
	}
}
