// Package video provides the raw-video substrate of the reproduction: YUV
// 4:2:0 frames (the format of the paper's CIF reference clips), a
// deterministic synthetic scene generator with tunable motion level
// (replacing the tkn.tu-berlin.de YUV test sequences), an AForge-like
// motion-level analyzer, and PGM/PPM dumping for the "screenshot" figures.
package video

import (
	"fmt"
	"io"
	"math"
)

// CIF dimensions, the frame size used in all the paper's experiments
// (Table 1).
const (
	CIFWidth  = 352
	CIFHeight = 288
)

// Frame is a YUV 4:2:0 picture. Y has W*H samples; Cb and Cr have
// (W/2)*(H/2) samples each. W and H must be even.
type Frame struct {
	W, H      int
	Y, Cb, Cr []byte
}

// NewFrame allocates a zeroed (black, neutral chroma) frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: invalid frame size %dx%d", w, h))
	}
	f := &Frame{
		W: w, H: h,
		Y:  make([]byte, w*h),
		Cb: make([]byte, w*h/4),
		Cr: make([]byte, w*h/4),
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
	return f
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	c := &Frame{W: f.W, H: f.H,
		Y:  append([]byte(nil), f.Y...),
		Cb: append([]byte(nil), f.Cb...),
		Cr: append([]byte(nil), f.Cr...),
	}
	return c
}

// SameSize reports whether g has the same dimensions.
func (f *Frame) SameSize(g *Frame) bool { return f.W == g.W && f.H == g.H }

// LumaAt returns the luma sample at (x, y) with edge clamping.
func (f *Frame) LumaAt(x, y int) byte {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Y[y*f.W+x]
}

// MSE returns the mean squared error between the luma planes of f and g,
// the distortion measure of Section 4.3.2.
func MSE(f, g *Frame) float64 {
	if !f.SameSize(g) {
		panic("video: MSE frames differ in size")
	}
	var sum float64
	for i := range f.Y {
		d := float64(f.Y[i]) - float64(g.Y[i])
		sum += d * d
	}
	return sum / float64(len(f.Y))
}

// PSNR returns the peak signal-to-noise ratio in dB between f and g
// (Eq. 28): 20*log10(255/sqrt(MSE)). Identical frames return +Inf.
func PSNR(f, g *Frame) float64 {
	mse := MSE(f, g)
	if mse == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(255/math.Sqrt(mse))
}

// SequenceMSE returns the mean luma MSE across two equal-length sequences.
func SequenceMSE(a, b []*Frame) float64 {
	if len(a) != len(b) {
		panic("video: SequenceMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		sum += MSE(a[i], b[i])
	}
	return sum / float64(len(a))
}

// SequencePSNR returns the PSNR corresponding to the mean sequence MSE,
// the aggregation EvalVid reports.
func SequencePSNR(a, b []*Frame) float64 {
	mse := SequenceMSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(255/math.Sqrt(mse))
}

// WritePGM writes the luma plane as a binary PGM image, the format used
// for the reproduction's counterpart of the screenshot figures (Fig. 6,
// Fig. 9b).
func (f *Frame) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	_, err := w.Write(f.Y)
	return err
}

// WriteYUV appends the raw planar YUV420 bytes of the frame (the on-disk
// format of the original reference clips).
func (f *Frame) WriteYUV(w io.Writer) error {
	if _, err := w.Write(f.Y); err != nil {
		return err
	}
	if _, err := w.Write(f.Cb); err != nil {
		return err
	}
	_, err := w.Write(f.Cr)
	return err
}

// ReadYUV reads one planar YUV420 frame of the given size.
func ReadYUV(r io.Reader, w, h int) (*Frame, error) {
	f := NewFrame(w, h)
	if _, err := io.ReadFull(r, f.Y); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, f.Cb); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, f.Cr); err != nil {
		return nil, err
	}
	return f, nil
}
