package codec

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Zero-copy packetization. PacketizeInto forms the same slices as
// Packetize but marshals each one directly into a pooled buffer with
// caller-specified headroom in front of the payload, so the transport
// can encrypt in place, write its protocol header into the headroom, and
// hand the very same buffer to the socket — no copies and no per-packet
// allocations in steady state.
//
// Buffer ownership: PacketizeInto transfers ownership of each packet's
// backing buffer to the caller. The caller returns it with BufPool.Put
// once the bytes are on the wire (or retains it, e.g. for retransmit
// queues — retained buffers simply never rejoin the pool). Payloads of
// different packets never share a buffer.

// WirePacket is a Packet whose payload lives inside a reusable wire
// buffer, preceded by Headroom spare bytes for a protocol header.
type WirePacket struct {
	Packet
	// Headroom is the number of reserved bytes in front of the payload.
	Headroom int
	buf      *wireBuf
}

// Wire returns the buffer region spanning the headroom plus the first n
// payload bytes — the datagram a transport sends after writing its
// header into the first Headroom bytes. n may exceed the payload length
// if the caller extended the payload in place (zero-padding to the MTU);
// it must not exceed the buffer's capacity beyond the payload, which
// PacketizeInto sizes to hold at least an MTU of payload.
func (wp *WirePacket) Wire(n int) []byte {
	return wp.buf.b[:wp.Headroom+n]
}

// wireBuf wraps a wire buffer so pooled buffers move without boxing
// allocations. owner is the pool that issued the buffer (nil for the
// pool-less PacketizeInto path), so Put can refuse buffers that belong
// to a different pool instead of poisoning its free list with them.
type wireBuf struct {
	b     []byte
	owner *BufPool
}

// BufPool recycles wire buffers across frames. The zero value is not
// usable; call NewBufPool.
type BufPool struct {
	pool sync.Pool
}

// NewBufPool returns an empty wire-buffer pool.
func NewBufPool() *BufPool {
	p := &BufPool{}
	p.pool.New = func() interface{} { return &wireBuf{owner: p} }
	return p
}

func (p *BufPool) get(size int) *wireBuf {
	wb := p.pool.Get().(*wireBuf)
	if cap(wb.b) < size {
		wb.b = make([]byte, 0, size)
	}
	wb.b = wb.b[:0]
	return wb
}

// Put returns wp's backing buffer to the pool. The packet's payload (and
// anything derived from Wire) must not be used afterwards.
//
// Put trusts no caller: a nil packet, an already-released packet (double
// Put), and a buffer issued by a different pool (or by the pool-less
// PacketizeInto path) are all safe no-ops on this pool's free list. A
// foreign buffer is still detached from the packet — the caller said it
// was done with it — it just never enters a pool it did not come from.
func (p *BufPool) Put(wp *WirePacket) {
	if wp == nil || wp.buf == nil {
		return
	}
	if wp.buf.owner == p {
		p.pool.Put(wp.buf)
	}
	wp.buf = nil
	wp.Payload = nil
}

// Retain detaches wp's backing buffer from its pool: the payload (and
// anything derived from Wire) stays valid indefinitely, and the buffer
// never rejoins the free list. It is the explicit form of keeping a
// pooled buffer alive — retransmit queues and resumable-segment stores
// call it so buffer ownership is visible to the bufown analyzer (every
// Retain site carries a //lint:retain(reason) annotation).
func (wp *WirePacket) Retain() {
	if wp != nil {
		wp.buf = nil
	}
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// sliceLen returns the exact marshaled size of the slice covering
// mbCount macroblocks from mbStart — what AppendSlice will append.
func sliceLen(ef *EncodedFrame, mbStart, mbCount int) int {
	n := uvarintLen(uint64(ef.Number)) +
		uvarintLen(uint64(ef.Type)) +
		uvarintLen(uint64(mbStart)) +
		uvarintLen(uint64(mbCount))
	for i := mbStart; i < mbStart+mbCount; i++ {
		l := len(ef.MBData[i])
		n += uvarintLen(uint64(l)) + l
	}
	return n
}

// AppendSlice appends the wire encoding of the slice covering mbCount
// macroblocks from mbStart to dst and returns the extended slice. The
// encoding is exactly the payload Packetize produces; sliceLen gives its
// size so callers can allocate exactly.
func AppendSlice(dst []byte, ef *EncodedFrame, mbStart, mbCount int) []byte {
	dst = appendUvarint(dst, uint64(ef.Number))
	dst = appendUvarint(dst, uint64(ef.Type))
	dst = appendUvarint(dst, uint64(mbStart))
	dst = appendUvarint(dst, uint64(mbCount))
	for i := mbStart; i < mbStart+mbCount; i++ {
		mb := ef.MBData[i]
		dst = appendUvarint(dst, uint64(len(mb)))
		dst = append(dst, mb...)
	}
	return dst
}

// appendUvarint appends v as an unsigned varint.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// PacketizeInto splits an encoded frame into the exact slices Packetize
// would form (same boundaries, byte-identical payloads), marshaling each
// into a buffer from pool with headroom spare bytes in front. Buffers
// are sized to hold at least headroom+mtu bytes so payloads can be
// zero-padded to the MTU in place. A nil pool allocates fresh buffers
// (for callers that retain payloads indefinitely). Results are appended
// to dst and returned.
func PacketizeInto(ef *EncodedFrame, mtu, headroom int, pool *BufPool, dst []WirePacket) ([]WirePacket, error) {
	if mtu < 64 {
		return nil, fmt.Errorf("codec: mtu %d too small", mtu)
	}
	if headroom < 0 {
		return nil, fmt.Errorf("codec: negative headroom %d", headroom)
	}
	start := 0
	for start < len(ef.MBData) {
		end := nextSliceEnd(ef, start, mtu)
		exact := sliceLen(ef, start, end-start)
		need := headroom + exact
		if min := headroom + mtu; need < min {
			need = min
		}
		var wb *wireBuf
		if pool != nil {
			wb = pool.get(need)
		} else {
			wb = &wireBuf{b: make([]byte, 0, need)}
		}
		wb.b = wb.b[:headroom]
		wb.b = AppendSlice(wb.b, ef, start, end-start)
		dst = append(dst, WirePacket{
			Packet: Packet{
				FrameNumber: ef.Number,
				Type:        ef.Type,
				MBStart:     start,
				MBCount:     end - start,
				Payload:     wb.b[headroom:],
			},
			Headroom: headroom,
			buf:      wb,
		})
		start = end
	}
	return dst, nil
}

// nextSliceEnd chooses the end of the slice starting at start under the
// same conservative size estimate Packetize has always used, so slice
// boundaries (and therefore wire bytes) are unchanged by the zero-copy
// path.
func nextSliceEnd(ef *EncodedFrame, start, mtu int) int {
	headerMax := 4 * binary.MaxVarintLen32
	size := headerMax
	end := start
	for end < len(ef.MBData) {
		mbLen := len(ef.MBData[end])
		add := mbLen + binary.MaxVarintLen32
		if end > start && size+add > mtu {
			break
		}
		size += add
		end++
	}
	if end == start {
		end = start + 1 // oversized single macroblock
	}
	return end
}
