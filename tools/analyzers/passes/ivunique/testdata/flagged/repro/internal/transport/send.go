package transport

import "repro/internal/vcrypt"

type sender struct {
	cipher vcrypt.Cipher
	seq16  uint16
}

func (s *sender) sendRaw(payload []byte) []byte {
	s.seq16++
	return s.cipher.EncryptPacket(uint64(s.seq16), payload) // want "IV sequence derives from a narrow wrapping counter"
}

func (s *sender) sendTruncated(seq uint64, payload []byte) []byte {
	return s.cipher.EncryptPacket(uint64(uint16(seq)), payload) // want "IV sequence derives from a narrow wrapping counter"
}

func (s *sender) sendLaundered(payload []byte) []byte {
	iv := uint64(s.seq16)                      // the narrow origin survives the assignment
	return s.cipher.EncryptPacket(iv, payload) // want "IV sequence derives from a narrow wrapping counter"
}

func (s *sender) sendBatchRaw(counter uint32, payloads [][]byte) [][]byte {
	return s.cipher.EncryptPackets(uint64(counter)<<4, payloads) // want "IV sequence derives from a narrow wrapping counter"
}
