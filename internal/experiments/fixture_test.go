package experiments

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/video"
)

// tinyOptions keeps fixture builds fast for the cache tests.
func tinyOptions() Options {
	return Options{Width: 64, Height: 48, Frames: 16, Repetitions: 1, Seed: 1, Stations: 3, Workers: 1}
}

// TestWorkloadCacheRetriesAfterError is the regression test for the
// error-poisoning bug: a transient build failure used to be captured by
// a sync.Once, so every later request for the same key replayed the
// stale error forever. Only successes may be cached.
func TestWorkloadCacheRetriesAfterError(t *testing.T) {
	f, err := NewFixture(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	real := f.buildWorkloadFn
	calls := 0
	f.buildWorkloadFn = func(m video.MotionLevel, gop int) (*Workload, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient build failure")
		}
		return real(m, gop)
	}
	if _, err := f.Workload(video.MotionLow, 4); err == nil {
		t.Fatal("first build should have failed")
	}
	w, err := f.Workload(video.MotionLow, 4)
	if err != nil {
		t.Fatalf("second request replayed the stale error: %v", err)
	}
	if w == nil {
		t.Fatal("second request returned no workload")
	}
	// The success is cached: a third request must not rebuild.
	w2, err := f.Workload(video.MotionLow, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w2 != w {
		t.Fatal("cached workload not reused")
	}
	if calls != 2 {
		t.Fatalf("builder ran %d times, want 2 (one failure, one success)", calls)
	}
}

// TestCalibrationCacheRetriesAfterError is the same regression for the
// calibration cache.
func TestCalibrationCacheRetriesAfterError(t *testing.T) {
	f, err := NewFixture(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	w, err := f.Workload(video.MotionLow, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The stub stands in for core.Calibrate (the tiny clip is too short
	// for the real MMPP fit); the cache must not tell the difference.
	calls := 0
	f.calibrateFn = func(w *Workload, device energy.Profile) (*core.Calibration, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient calibration failure")
		}
		return &core.Calibration{}, nil
	}
	device := SamsungDevice()
	if _, err := f.Calibrate(w, device); err == nil {
		t.Fatal("first calibration should have failed")
	}
	cal, err := f.Calibrate(w, device)
	if err != nil {
		t.Fatalf("second request replayed the stale error: %v", err)
	}
	if cal == nil {
		t.Fatal("second request returned no calibration")
	}
	if _, err := f.Calibrate(w, device); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calibrator ran %d times, want 2 (one failure, one success)", calls)
	}
}

// TestWorkloadCacheConcurrentSingleBuild confirms the mutex-per-entry
// scheme still builds each key exactly once under concurrency.
func TestWorkloadCacheConcurrentSingleBuild(t *testing.T) {
	f, err := NewFixture(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	real := f.buildWorkloadFn
	f.buildWorkloadFn = func(m video.MotionLevel, gop int) (*Workload, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return real(m, gop)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Workload(video.MotionLow, 4)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("builder ran %d times for one key, want 1", calls)
	}
	// A distinct key builds separately.
	if _, err := f.Workload(video.MotionLow, 2); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("builder ran %d times for two keys, want 2", calls)
	}
}
