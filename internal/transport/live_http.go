package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/netem"
	"repro/internal/vcrypt"
)

// HTTP/TCP transfer mode (Section 6.4). The upload body is a sequence of
// segments, each carrying the encrypted-flag in its header — the paper's
// "Marker bit in the option header" moved into an application framing
// header, which is equivalent for the receiver's decrypt-or-not decision:
//
//	flags(1) | seq(8, big endian) | length(4) | payload
//
// The eavesdropper overhears the TCP stream on the WiFi channel; the
// server exposes a Tap so a capture pipeline with its own loss filter can
// be attached, standing in for tcpdump on the open network.

const segmentHeaderSize = 1 + 8 + 4

const flagEncrypted = 0x01

// WriteSegment frames one payload.
func WriteSegment(w io.Writer, seq uint64, encrypted bool, payload []byte) error {
	var hdr [segmentHeaderSize]byte
	if encrypted {
		hdr[0] = flagEncrypted
	}
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadSegment parses one framed segment.
func ReadSegment(r io.Reader) (seq uint64, encrypted bool, payload []byte, err error) {
	var hdr [segmentHeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	encrypted = hdr[0]&flagEncrypted != 0
	seq = binary.BigEndian.Uint64(hdr[1:9])
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > 1<<24 {
		return 0, false, nil, fmt.Errorf("transport: implausible segment of %d bytes", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, false, nil, err
	}
	return seq, encrypted, payload, nil
}

// HTTPUploadServer receives video uploads, decrypts marked segments and
// reassembles the clip, playing the commercial-upload-endpoint role of
// Section 6.4.
type HTTPUploadServer struct {
	cfg    codec.Config
	cipher *vcrypt.Cipher

	// HeaderOnlyBytes mirrors the sender's Policy.HeaderOnlyBytes
	// (0 = whole payload is encrypted). Set before serving.
	HeaderOnlyBytes int

	mu       sync.Mutex
	asm      *codec.Reassembler
	segments int

	// Tap, when non-nil, sees every segment exactly as it crossed the
	// wire (still encrypted), emulating a radio capture of the TCP
	// stream.
	Tap func(seq uint64, encrypted bool, payload []byte)
}

// NewHTTPUploadServer builds the handler state.
func NewHTTPUploadServer(cfg codec.Config, alg vcrypt.Algorithm, key []byte) (*HTTPUploadServer, error) {
	asm, err := codec.NewReassembler(cfg)
	if err != nil {
		return nil, err
	}
	cipher, err := vcrypt.NewCipher(alg, key)
	if err != nil {
		return nil, err
	}
	return &HTTPUploadServer{cfg: cfg, cipher: cipher, asm: asm}, nil
}

// ServeHTTP implements http.Handler for POST /upload.
func (s *HTTPUploadServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	br := bufio.NewReader(req.Body)
	count := 0
	for {
		seq, encrypted, payload, err := ReadSegment(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.Tap != nil {
			tapCopy := append([]byte(nil), payload...)
			s.Tap(seq, encrypted, tapCopy)
		}
		if encrypted {
			span := len(payload)
			if s.HeaderOnlyBytes > 0 && s.HeaderOnlyBytes < span {
				span = s.HeaderOnlyBytes
			}
			s.cipher.DecryptPacket(seq, payload[:span])
		}
		s.mu.Lock()
		if err := s.asm.Add(payload); err == nil {
			count++
		}
		s.segments++
		s.mu.Unlock()
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok %d\n", count)
}

// Frames returns the reassembled clip.
func (s *HTTPUploadServer) Frames(total int) []*codec.EncodedFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asm.Frames(total)
}

// Segments returns how many segments arrived.
func (s *HTTPUploadServer) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segments
}

// HTTPUploadReport summarises a live HTTP upload.
type HTTPUploadReport struct {
	Segments  int
	Encrypted int
	Bytes     int
	Elapsed   time.Duration
}

// LiveHTTPUpload streams the session to the server URL as one POST,
// optionally pacing the body through a netem.Pacer to emulate the WiFi
// bottleneck.
func LiveHTTPUpload(s Session, url string, pacer *netem.Pacer) (HTTPUploadReport, error) {
	var rep HTTPUploadReport
	if err := s.Validate(); err != nil {
		return rep, err
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return rep, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return rep, err
	}
	pr, pw := io.Pipe()
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		defer pw.Close()
		seq := uint64(0)
		for _, ef := range s.Encoded {
			pkts, err := codec.Packetize(ef, s.MTU)
			if err != nil {
				errCh <- err
				pw.CloseWithError(err)
				return
			}
			for _, pkt := range pkts {
				payload := append([]byte(nil), pkt.Payload...)
				encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
				if encrypted {
					cipher.EncryptPacket(seq, payload[:s.Policy.EncryptSpan(len(payload))])
					rep.Encrypted++
				}
				if pacer != nil {
					pacer.Wait(segmentHeaderSize + len(payload))
				}
				if err := WriteSegment(pw, seq, encrypted, payload); err != nil {
					errCh <- err
					return
				}
				rep.Segments++
				rep.Bytes += segmentHeaderSize + len(payload)
				seq++
			}
		}
		errCh <- nil
	}()
	resp, err := http.Post(url, "application/octet-stream", pr)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("transport: upload failed with status %s", resp.Status)
	}
	if err := <-errCh; err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
