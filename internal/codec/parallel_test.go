package codec

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/video"
)

// naiveFDCT8 and naiveIDCT8 are the direct O(N^3) inner-product
// transforms the AAN butterflies replaced; they stay here as the
// reference the fast kernels are validated against.
func naiveDCTCos() *[8][8]float64 {
	var c [8][8]float64
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			c[k][n] = math.Cos(math.Pi * float64(k) * (2*float64(n) + 1) / 16)
		}
	}
	return &c
}

func naiveFDCT8(in, out *[64]float64) {
	c := naiveDCTCos()
	norm := func(k int) float64 {
		if k == 0 {
			return math.Sqrt(1.0 / 8)
		}
		return math.Sqrt(2.0 / 8)
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var sum float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += in[y*8+x] * c[u][y] * c[v][x]
				}
			}
			out[u*8+v] = norm(u) * norm(v) * sum
		}
	}
}

func naiveIDCT8(in, out *[64]float64) {
	c := naiveDCTCos()
	norm := func(k int) float64 {
		if k == 0 {
			return math.Sqrt(1.0 / 8)
		}
		return math.Sqrt(2.0 / 8)
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var sum float64
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					sum += norm(u) * norm(v) * in[u*8+v] * c[u][y] * c[v][x]
				}
			}
			out[y*8+x] = sum
		}
	}
}

// TestDCTMatchesNaiveReference pins the AAN butterflies to the
// inner-product definition of the orthonormal 2-D DCT-II.
func TestDCTMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var in, fast, ref [64]float64
		for i := range in {
			in[i] = rng.Float64()*255 - 128
		}
		fdct8(&in, &fast)
		naiveFDCT8(&in, &ref)
		for i := range fast {
			if math.Abs(fast[i]-ref[i]) > 1e-9 {
				t.Fatalf("trial %d: fdct8[%d] = %g, reference %g", trial, i, fast[i], ref[i])
			}
		}
		idct8(&in, &fast)
		naiveIDCT8(&in, &ref)
		for i := range fast {
			if math.Abs(fast[i]-ref[i]) > 1e-9 {
				t.Fatalf("trial %d: idct8[%d] = %g, reference %g", trial, i, fast[i], ref[i])
			}
		}
	}
}

func TestFrameTypeString(t *testing.T) {
	cases := []struct {
		t    FrameType
		want string
	}{
		{IFrame, "I"},
		{PFrame, "P"},
		{BFrame, "B"},
		{FrameType(9), "FrameType(9)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("FrameType(%d).String() = %q, want %q", uint8(c.t), got, c.want)
		}
	}
}

// encodedEqual asserts two streams are bit-identical, macroblock by
// macroblock.
func encodedEqual(t *testing.T, a, b []*EncodedFrame, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: frame count %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Number != b[i].Number {
			t.Fatalf("%s: frame %d header mismatch", label, i)
		}
		if len(a[i].MBData) != len(b[i].MBData) {
			t.Fatalf("%s: frame %d MB count mismatch", label, i)
		}
		for j := range a[i].MBData {
			if !bytes.Equal(a[i].MBData[j], b[i].MBData[j]) {
				t.Fatalf("%s: frame %d MB %d differs (%x vs %x)", label, i, j, a[i].MBData[j], b[i].MBData[j])
			}
		}
	}
}

// TestParallelEncodeBitIdentical is the tentpole determinism guarantee:
// any worker count yields the serial bitstream, across I/P structure,
// motion levels, and the full-search estimator.
func TestParallelEncodeBitIdentical(t *testing.T) {
	for _, motion := range []video.MotionLevel{video.MotionLow, video.MotionHigh} {
		for _, full := range []bool{false, true} {
			clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 12, Motion: motion, Seed: 11})
			cfg := smallConfig(5)
			cfg.FullSearch = full
			serial, err := EncodeSequence(clip, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 4, 16} {
				pcfg := cfg
				pcfg.Workers = workers
				par, err := EncodeSequence(clip, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				encodedEqual(t, serial, par, fmt.Sprintf("motion=%v full=%v workers=%d", motion, full, workers))
			}
		}
	}
}

// TestParallelEncodeBitIdenticalB covers the B-frame sequence encoder.
func TestParallelEncodeBitIdenticalB(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 14, Motion: video.MotionMedium, Seed: 19})
	cfg := smallConfig(6)
	cfg.BFrames = 1
	serial, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Workers = 4
	par, err := EncodeSequenceB(clip, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	encodedEqual(t, serial, par, "bframes workers=4")
}

// TestParallelDecodeIdentical checks the decoder row split, including
// concealment of damaged and missing macroblocks and leading loss.
func TestParallelDecodeIdentical(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 10, Motion: video.MotionMedium, Seed: 23})
	cfg := smallConfig(5)
	enc, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the stream: drop the first frame entirely (leading loss),
	// null some chunks, corrupt another.
	enc[0] = nil
	enc[3].MBData[7] = nil
	enc[5].MBData[2] = []byte{0xff, 0x00, 0x13}
	serial, err := DecodeSequence(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Workers = 4
	par, err := DecodeSequence(enc, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("decoded %d vs %d frames", len(serial), len(par))
	}
	for i := range serial {
		if video.MSE(serial[i], par[i]) != 0 {
			t.Fatalf("frame %d: parallel decode differs from serial", i)
		}
	}
}

// TestParallelEncoderStateMatchesSerial runs two encoders frame by frame
// and checks the stateful pieces (reference chain, MV predictor seeding)
// stay in lockstep even when the parallel one is reset mid-stream.
func TestParallelEncoderStateMatchesSerial(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 8, Motion: video.MotionHigh, Seed: 31})
	cfg := smallConfig(4)
	pcfg := cfg
	pcfg.Workers = 3
	es, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewEncoder(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i, f := range clip {
			a, err := es.Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ep.Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			encodedEqual(t, []*EncodedFrame{a}, []*EncodedFrame{b}, fmt.Sprintf("pass %d frame %d", pass, i))
		}
		es.Reset()
		ep.Reset()
	}
}
