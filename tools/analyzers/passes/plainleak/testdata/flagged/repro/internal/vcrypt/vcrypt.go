// Package vcrypt is the miniature cipher/policy layer of the plainleak
// fixtures: EncryptPacket sanitizes, ShouldEncrypt and ModeNone are the
// policy vocabulary the pass understands.
package vcrypt

// Mode is the encryption level.
type Mode int

const (
	ModeNone Mode = iota
	ModeIFrames
	ModeAll
)

// Policy selects a level.
type Policy struct{ Mode Mode }

// Cipher encrypts packet payloads in place.
type Cipher struct{}

// EncryptPacket encrypts payload in place under the packet sequence.
func (c *Cipher) EncryptPacket(seq uint64, payload []byte) {}

// Selector answers per-packet encryption questions for one policy.
type Selector struct{ mode Mode }

// NewSelector builds a selector.
func NewSelector(p Policy) *Selector { return &Selector{mode: p.Mode} }

// ShouldEncrypt reports whether the policy encrypts this packet.
func (s *Selector) ShouldEncrypt(isIFrame bool) bool { return s.mode != ModeNone }

// EncryptPackets encrypts a batch of payloads in place under
// consecutive sequence numbers starting at baseSeq.
func (c *Cipher) EncryptPackets(baseSeq uint64, payloads [][]byte) {}
