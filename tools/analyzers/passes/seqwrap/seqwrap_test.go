package seqwrap_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/seqwrap"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, seqwrap.Analyzer, "testdata/flagged", "repro/internal/transport")
}

func TestAllowed(t *testing.T) {
	lintkit.RunTestNone(t, seqwrap.Analyzer, "testdata/allowed", "repro/internal/transport")
}
