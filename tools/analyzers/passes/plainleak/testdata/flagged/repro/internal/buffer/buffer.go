// Package buffer is a staging layer one call away from the socket: its
// network write is invisible at the transport call site except through
// the taint engine's bottom-up sink summaries.
package buffer

import "io"

// Flush writes a staged payload to the wire.
func Flush(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}
