package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/netem"
	"repro/internal/rtp"
	"repro/internal/stats"
)

// Load-generator harness for the multi-tenant ingest server: thousands
// of simulated mobile clients, each a goroutine with its own UDP socket
// and SSRC, pushing the same pre-encrypted clip through a client-side
// Gilbert–Elliott uplink (plus optional outage windows and a resume
// storm) and measuring per-session completion latency against the
// server's goodput.
//
// The wire segments are built once with buildSegments — packetized and
// encrypted under the session policy exactly like a resumable upload —
// and shared read-only by every client; each client re-wraps them in RTP
// headers carrying its own SSRC inside one reusable scratch buffer, so
// the steady-state send path allocates nothing per packet. All sessions
// therefore share one key and sequence space, which collapses cipher IVs
// across tenants: acceptable in an emulation harness whose subject is
// the server's concurrency behaviour, never in a deployment (real
// tenants hold per-session keys).

// LoadgenConfig shapes a load run. Clip, policy, key and MTU come from
// the Session passed to RunLoadgen.
type LoadgenConfig struct {
	// Sessions is how many concurrent simulated clients to run.
	Sessions int

	// BaseSSRC numbers the sessions BaseSSRC..BaseSSRC+Sessions-1
	// (default 0x10000).
	BaseSSRC uint32

	// MeanLoss/MeanBurst drive each client's Gilbert–Elliott uplink
	// (fraction of packets lost / mean drop-burst length). MeanLoss 0
	// disables loss; MeanBurst defaults to 4 when loss is on.
	MeanLoss  float64
	MeanBurst float64

	// Outages, when non-nil, blacks every client's uplink out during its
	// windows (measured from the start of the run).
	Outages *netem.OutageSchedule

	// ResumeFrac is the fraction of clients that cut their connection
	// halfway through the clip, go dark for ResumeGap (default 20ms),
	// then redial and re-send from the beginning — a resume storm the
	// server's dedup window must absorb.
	ResumeFrac float64
	ResumeGap  time.Duration

	// Gap paces each client's packets (0 = blast back to back).
	Gap time.Duration

	// AdmitProbe is how long a client listens for an admission reject
	// after its first packet (default 15ms); MaxAdmitRetries bounds how
	// often it retries after rejects (default 20) before giving up.
	AdmitProbe      time.Duration
	MaxAdmitRetries int

	// Seed makes the loss processes and retry jitter deterministic.
	Seed uint64
}

// LoadReport summarises one load run.
type LoadReport struct {
	Sessions     int           // clients launched
	Completed    int           // clients that sent their whole clip
	Unadmitted   int           // clients that gave up after admission rejects
	Resumes      int           // clients that cut and re-dialed mid-clip
	AdmitRetries int           // admission retries across all clients
	PacketsSent  int64         // datagrams clients actually wrote
	PacketsLost  int64         // datagrams eaten by the simulated uplink
	Elapsed      time.Duration // wall time of the whole run
	P50          time.Duration // median session completion latency
	P99          time.Duration // tail session completion latency
	GoodputBps   float64       // server-side payload bytes/second over the run
	Server       IngestTotals  // server counter deltas attributable to this run
}

func (r LoadReport) String() string {
	return fmt.Sprintf(
		"sessions=%d completed=%d unadmitted=%d resumes=%d admit_retries=%d\n"+
			"sent=%d lost=%d server_rx=%d dups=%d throttled=%d rejected=%d usable=%d\n"+
			"elapsed=%v p50=%v p99=%v goodput=%.1f KB/s",
		r.Sessions, r.Completed, r.Unadmitted, r.Resumes, r.AdmitRetries,
		r.PacketsSent, r.PacketsLost, r.Server.Packets, r.Server.Duplicates,
		r.Server.Throttled, r.Server.Rejected, r.Server.Usable,
		r.Elapsed.Round(time.Millisecond), r.P50.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.GoodputBps/1024)
}

type loadClientResult struct {
	latency    time.Duration
	sent       int64
	lost       int64
	retries    int
	resumed    bool
	completed  bool
	unadmitted bool
	err        error
}

// RunLoadgen drives cfg.Sessions concurrent clients against the ingest
// server and reports latency percentiles and goodput. The server is left
// running; sessions end with FIN datagrams (best-effort, so a handful
// may linger until idle eviction).
func RunLoadgen(srv *IngestServer, s Session, cfg LoadgenConfig) (LoadReport, error) {
	var rep LoadReport
	if cfg.Sessions <= 0 {
		return rep, fmt.Errorf("transport: loadgen needs at least one session")
	}
	if err := s.Validate(); err != nil {
		return rep, err
	}
	ledger.Emit(ledger.EventPolicy, "loadgen", 0, 0, s.Policy.Name())
	segs, err := buildSegments(s, 0)
	if err != nil {
		return rep, err
	}
	if cfg.BaseSSRC == 0 {
		cfg.BaseSSRC = 0x10000
	}
	if cfg.MeanLoss > 0 && cfg.MeanBurst <= 0 {
		cfg.MeanBurst = 4
	}
	if cfg.ResumeGap <= 0 {
		cfg.ResumeGap = 20 * time.Millisecond
	}
	if cfg.AdmitProbe <= 0 {
		cfg.AdmitProbe = 15 * time.Millisecond
	}
	if cfg.MaxAdmitRetries <= 0 {
		cfg.MaxAdmitRetries = 20
	}
	before := srv.Totals()
	addr := srv.Addr()
	results := make([]loadClientResult, cfg.Sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runLoadClient(addr, segs, s.MTU, cfg, i, start)
		}(i)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.Sessions = cfg.Sessions
	var latencies []float64
	for i := range results {
		r := &results[i]
		rep.PacketsSent += r.sent
		rep.PacketsLost += r.lost
		rep.AdmitRetries += r.retries
		if r.resumed {
			rep.Resumes++
		}
		switch {
		case r.completed:
			rep.Completed++
			latencies = append(latencies, r.latency.Seconds())
			mLoadgenSessionSeconds.Observe(r.latency.Seconds())
		case r.unadmitted:
			rep.Unadmitted++
		}
		if err == nil && r.err != nil {
			err = r.err
		}
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		rep.P50 = time.Duration(stats.Percentile(latencies, 0.50) * float64(time.Second))
		rep.P99 = time.Duration(stats.Percentile(latencies, 0.99) * float64(time.Second))
	}
	after := srv.Totals()
	rep.Server = IngestTotals{
		Packets:          after.Packets - before.Packets,
		Usable:           after.Usable - before.Usable,
		Duplicates:       after.Duplicates - before.Duplicates,
		Throttled:        after.Throttled - before.Throttled,
		Rejected:         after.Rejected - before.Rejected,
		BadPackets:       after.BadPackets - before.BadPackets,
		Bytes:            after.Bytes - before.Bytes,
		SessionsStarted:  after.SessionsStarted - before.SessionsStarted,
		SessionsFinished: after.SessionsFinished - before.SessionsFinished,
		SessionsEvicted:  after.SessionsEvicted - before.SessionsEvicted,
	}
	if rep.Elapsed > 0 {
		rep.GoodputBps = float64(rep.Server.Bytes) / rep.Elapsed.Seconds()
		mLoadgenGoodputBps.Set(int64(rep.GoodputBps))
	}
	return rep, err
}

// runLoadClient is one simulated mobile client: admission probe with
// reject backoff, the clip pushed through a lossy uplink, an optional
// mid-clip cut-and-resume, and a FIN. The returned latency spans dial to
// FIN — admission retries and resume gaps included, which is what a user
// waiting on an upload experiences.
func runLoadClient(addr string, segs []wireSegment, mtu int, cfg LoadgenConfig, i int, runStart time.Time) loadClientResult {
	var res loadClientResult
	rng := stats.NewRNG(cfg.Seed*0x9E3779B9 + uint64(i) + 1)
	var drop netem.Dropper
	if cfg.MeanLoss > 0 {
		ge, err := netem.NewBurstyLoss(cfg.MeanLoss, cfg.MeanBurst, cfg.Seed+uint64(i)+1)
		if err != nil {
			res.err = err
			return res
		}
		drop = ge
	}
	ssrc := cfg.BaseSSRC + uint32(i)
	start := time.Now()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		res.err = err
		return res
	}
	defer func() { conn.Close() }() //nolint:errcheck // client teardown is best effort
	buf := make([]byte, rtp.HeaderSize+mtu+64)
	rbuf := make([]byte, 64)
	send := func(seg wireSegment) error {
		p := rtp.Packet{
			PayloadType: rtp.PayloadTypeVideo,
			Marker:      seg.encrypted,
			Sequence:    uint16(seg.seq),
			Timestamp:   uint32(seg.seq),
			SSRC:        ssrc,
			Payload:     seg.payload,
		}
		_, werr := conn.Write(p.MarshalInto(buf))
		if werr == nil {
			res.sent++
		}
		return werr
	}

	// Admission probe: push the first segment, listen briefly for a
	// reject. Silence means admitted (the server sends nothing on the
	// happy path); a reject datagram means back off and try again.
	admitted := false
	for try := 0; try <= cfg.MaxAdmitRetries; try++ {
		if err := send(segs[0]); err != nil {
			res.err = err
			return res
		}
		conn.SetReadDeadline(time.Now().Add(cfg.AdmitProbe)) //nolint:errcheck // UDP deadline set cannot fail
		n, rerr := conn.Read(rbuf)
		if rerr != nil {
			admitted = true // timeout: no reject arrived
			break
		}
		if retryAfter, ok := parseReject(rbuf[:n]); ok {
			res.retries++
			// Jittered backoff around the server's hint so a thundering
			// herd of rejected clients does not re-arrive in lockstep.
			time.Sleep(time.Duration((0.75 + 0.5*rng.Float64()) * float64(retryAfter)))
			continue
		}
		admitted = true // some other datagram; treat as admitted
		break
	}
	if !admitted {
		res.unadmitted = true
		res.latency = time.Since(start)
		return res
	}

	resumeAt := -1
	if cfg.ResumeFrac > 0 && rng.Bool(cfg.ResumeFrac) {
		resumeAt = len(segs) / 2
	}
	idx := 1
	for idx < len(segs) {
		if idx == resumeAt && !res.resumed {
			// Connection cut mid-clip: go dark, redial, start over from
			// segment zero. The server's dedup window absorbs the replays.
			res.resumed = true
			conn.Close() //nolint:errcheck // the cut IS the scenario
			time.Sleep(cfg.ResumeGap)
			conn, err = net.Dial("udp", addr)
			if err != nil {
				res.err = err
				return res
			}
			idx = 0
			continue
		}
		seg := segs[idx]
		lost := false
		if cfg.Outages != nil && cfg.Outages.ActiveAt(time.Since(runStart)) {
			lost = true
		} else if drop != nil && drop.DropSeq(seg.seq) {
			lost = true
		}
		if lost {
			res.lost++
		} else if err := send(seg); err != nil {
			res.err = err
			return res
		}
		if cfg.Gap > 0 {
			time.Sleep(cfg.Gap)
		}
		idx++
	}
	// Close the session eagerly; duplicated because FINs are as lossy as
	// everything else, and a lost FIN only defers to idle eviction. The
	// short pause lets tail data packets clear the reader pool first —
	// a FIN overtaking them on another reader would resurrect the session.
	time.Sleep(2 * time.Millisecond)
	fin := marshalFIN(ssrc)
	conn.Write(fin) //nolint:errcheck // best effort, like the medium
	conn.Write(fin) //nolint:errcheck // best effort, like the medium
	res.completed = true
	res.latency = time.Since(start)
	return res
}
