// Package transport holds the flagged lock-discipline shapes: every
// function below parks the goroutine while a mutex is held (or parks a
// condition variable without one).
package transport

import (
	"net"
	"sync"
	"time"

	"repro/internal/netem"
)

type sender struct {
	mu    sync.Mutex
	state sync.RWMutex
	pacer *netem.Pacer
	conn  net.Conn
	ch    chan []byte
	buf   [][]byte
}

// PaceLocked holds the buffer lock across the pacing sleep — the exact
// head-of-line blocking shape of the live path.
func (s *sender) PaceLocked(b []byte) {
	s.mu.Lock()
	s.buf = append(s.buf, b)
	s.pacer.Wait(len(b)) // want `s\.mu held across blocking call to netem\.Pacer\.Wait`
	s.mu.Unlock()
}

// WriteLocked performs network I/O with the lock held to the end of the
// function by the deferred unlock.
func (s *sender) WriteLocked(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b) // want `s\.mu held across blocking call to net\.Conn\.Write`
	return err
}

// SendLocked parks on a channel send under the lock.
func (s *sender) SendLocked(b []byte) {
	s.mu.Lock()
	s.ch <- b // want `s\.mu held across blocking channel send`
	s.mu.Unlock()
}

// RecvLocked parks on a channel receive under the read lock.
func (s *sender) RecvLocked() []byte {
	s.state.RLock()
	defer s.state.RUnlock()
	return <-s.ch // want `s\.state held across blocking channel receive`
}

// SleepLocked holds the lock over a plain sleep.
func (s *sender) SleepLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `s\.mu held across blocking call to time\.Sleep`
	s.mu.Unlock()
}

// SelectLocked parks on a bare select under the lock. Only the select
// header is the park point: the chosen clause's receive runs when the
// channel is already ready and is not reported again.
func (s *sender) SelectLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `s\.mu held across blocking select with no default clause`
	case b := <-s.ch:
		s.buf = append(s.buf, b)
	}
}

// flush is a module-local callee whose body blocks; its blocking-ness
// reaches FlushLocked through the bottom-up summary.
func (s *sender) flush() error {
	_, err := s.conn.Write(nil)
	return err
}

// FlushLocked blocks through a module-local call.
func (s *sender) FlushLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want `s\.mu held across blocking call to flush`
}

// DoubleLocked reports both held locks, sorted.
func (s *sender) DoubleLocked() {
	s.mu.Lock()
	s.state.Lock()
	time.Sleep(time.Millisecond) // want `s\.mu, s\.state held across blocking call to time\.Sleep`
	s.state.Unlock()
	s.mu.Unlock()
}

// WaitNoLock parks the condition variable without holding its lock:
// Wait's contract requires c.L held, so this panics at runtime.
func (s *sender) WaitNoLock(c *sync.Cond) {
	c.Wait() // want `sync\.Cond\.Wait called without holding any lock`
}
