package transport

import (
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter: tokens accrue at
// rate per second up to burst, and each admitted event spends one. It is
// concurrency-safe and allocation-free per call, so the ingest server can
// afford one per session.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	nowFn  func() time.Time // test seam; defaults to time.Now
}

// NewTokenBucket returns a bucket refilling at rate tokens/second with
// the given burst capacity (the bucket starts full). rate <= 0 builds an
// unlimited bucket whose Allow always succeeds.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), nowFn: time.Now}
}

// Allow spends one token if available and reports whether the event is
// admitted.
func (b *TokenBucket) Allow() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.nowFn()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
