package transport

import "testing"

func TestSeqExtenderInOrderWrap(t *testing.T) {
	var x seqExtender
	// Two full epochs in order: the extension must be the identity plus
	// the accumulated epoch base.
	want := uint64(0)
	for i := 0; i < 2*65536; i++ {
		s := uint16(i)
		if got := x.Extend(s); got != want {
			t.Fatalf("Extend(%d) = %d, want %d", s, got, want)
		}
		want++
	}
}

func TestSeqExtenderReorderedStragglerAcrossWrap(t *testing.T) {
	var x seqExtender
	// Stream wraps 65534, 65535, 0, 1 — then a reordered straggler 65533
	// from before the wrap arrives. The old heuristic ("backwards step
	// > 32768 bumps the epoch") extended it into the NEW epoch as
	// 65536+65533 = 131069, garbling its decrypt IV and leaping maxSeq.
	for _, s := range []uint16{65534, 65535, 0, 1} {
		x.Extend(s)
	}
	if got := x.Extend(65533); got != 65533 {
		t.Fatalf("straggler extended to %d, want 65533 (previous epoch)", got)
	}
	// The straggler must not have dragged the reference backwards: the
	// stream continues in the new epoch.
	if got := x.Extend(2); got != 65536+2 {
		t.Fatalf("post-straggler Extend(2) = %d, want %d", got, 65536+2)
	}
}

func TestSeqExtenderBackwardReorderWithinEpoch(t *testing.T) {
	var x seqExtender
	x.Extend(100)
	x.Extend(101)
	// Small reorder: 99 stays in the current epoch, reference unmoved.
	if got := x.Extend(99); got != 99 {
		t.Fatalf("Extend(99) = %d, want 99", got)
	}
	if got := x.Extend(102); got != 102 {
		t.Fatalf("Extend(102) = %d, want 102", got)
	}
}

func TestSeqExtenderForwardWrapAhead(t *testing.T) {
	var x seqExtender
	x.Extend(65530)
	// A forward jump across the wrap (losses ate the boundary packets)
	// must land in the next epoch, not 65525 steps backwards.
	if got := x.Extend(5); got != 65536+5 {
		t.Fatalf("Extend(5) after 65530 = %d, want %d", got, 65536+5)
	}
}

// TestSeqExtenderTieDistance pins the one genuinely ambiguous input:
// an arrival exactly 1<<15 away from the stream head is equidistant
// from two epochs (adjacent candidates differ by 1<<16, so both sit
// 32768 away). The extender must resolve the tie to the CURRENT epoch
// — never crossing a wrap on evidence that supports both readings —
// whichever side of the head the current-epoch candidate falls on.
func TestSeqExtenderTieDistance(t *testing.T) {
	// Forward tie. Head at extended 65636 (epoch 1<<16, last 100); the
	// arrival 32868 extends to 98404 in the current epoch (32768 ahead
	// of the head) or 32868 in the previous (32768 behind). Current
	// epoch wins, so the reading is forward and the head advances.
	var x seqExtender
	x.Extend(65535)
	if got := x.Extend(100); got != 65536+100 {
		t.Fatalf("setup: Extend(100) = %d, want %d", got, 65536+100)
	}
	if got := x.Extend(32868); got != 65536+32868 {
		t.Fatalf("forward tie: Extend(32868) = %d, want %d (current epoch)", got, 65536+32868)
	}
	if got := x.Extend(32869); got != 65536+32869 {
		t.Fatalf("head did not advance past the tie: Extend(32869) = %d, want %d", got, 65536+32869)
	}

	// Backward tie. Head at extended 105536 (epoch 1<<16, last 40000);
	// the arrival 7232 extends to 72768 in the current epoch (32768
	// behind) or 138304 in the next (32768 ahead). Current epoch wins:
	// the arrival is a straggler, and the head must not move.
	var y seqExtender
	y.Extend(65535)
	y.Extend(32000)
	if got := y.Extend(40000); got != 65536+40000 {
		t.Fatalf("setup: Extend(40000) = %d, want %d", got, 65536+40000)
	}
	if got := y.Extend(7232); got != 65536+7232 {
		t.Fatalf("backward tie: Extend(7232) = %d, want %d (current epoch)", got, 65536+7232)
	}
	if got := y.Extend(40001); got != 65536+40001 {
		t.Fatalf("straggler moved the head: Extend(40001) = %d, want %d", got, 65536+40001)
	}
}

// TestSeqExtenderHeadOnEpochEdge walks the head exactly onto an epoch
// base (extended sequence 1<<16, wire sequence 0) and checks both
// directions from the edge: the final sequence of the old epoch still
// extends backwards into it, and the next in-order arrival continues
// the new epoch with the head unmoved by the straggler.
func TestSeqExtenderHeadOnEpochEdge(t *testing.T) {
	var x seqExtender
	if got := x.Extend(65535); got != 65535 {
		t.Fatalf("Extend(65535) = %d, want 65535", got)
	}
	if got := x.Extend(0); got != 65536 {
		t.Fatalf("Extend(0) = %d, want 65536 (head exactly on the epoch base)", got)
	}
	if got := x.Extend(65535); got != 65535 {
		t.Fatalf("straggler at the edge: Extend(65535) = %d, want 65535 (old epoch)", got)
	}
	if got := x.Extend(1); got != 65537 {
		t.Fatalf("post-straggler Extend(1) = %d, want 65537", got)
	}
}

func TestSeqExtenderDeepEpochs(t *testing.T) {
	var x seqExtender
	// Drive the extender a few epochs deep with a straggler near each
	// wrap; every extension must stay exact.
	seq := 0
	for e := 0; e < 3; e++ {
		for i := 0; i < 65536; i++ {
			if got, want := x.Extend(uint16(seq)), uint64(seq); got != want {
				t.Fatalf("epoch %d: Extend = %d, want %d", e, got, want)
			}
			seq++
		}
		// Straggler from two packets back (previous epoch once wrapped).
		strag := seq - 2
		if got := x.Extend(uint16(strag)); got != uint64(strag) {
			t.Fatalf("epoch %d straggler: got %d, want %d", e, got, strag)
		}
	}
}
