package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// Fast-cipher re-sweep (ROADMAP item 2, PR 6). The paper's central
// trade-off — selective encryption buys delay and energy at the price of
// residual leakage — was measured on 2011 phones running software OFB.
// This experiment re-runs the Fig. 7/Fig. 9 style policy sweep with the
// zero-copy CTR pipeline (precomputable keystreams, lower per-packet
// setup) and with a modern AES-extension device profile, to answer: once
// encryption is cheap, does "encrypt everything" dominate and selective
// encryption only pay on weak devices?

// fastCipherLevels are the policy rungs compared: cleartext floor, the
// paper's recommended selective policy, and full encryption.
var fastCipherLevels = []vcrypt.Mode{vcrypt.ModeNone, vcrypt.ModeIFrames, vcrypt.ModeAll}

// fastCipherAlgs pit the paper-era software cipher against the fast CTR
// variants on the same transfers.
var fastCipherAlgs = []vcrypt.Algorithm{vcrypt.AES256, vcrypt.AES128CTR, vcrypt.AES256CTR}

// FastCipherDevices returns the device ladder for the sweep: the two
// testbed phones plus the modern hardware-AES profile.
func FastCipherDevices() []energy.Profile {
	return []energy.Profile{energy.SamsungGalaxySII(), energy.HTCAmaze4G(), energy.ModernARMv8()}
}

// FastCipherSweep runs the fast-motion GOP-30 workload (the Fig. 9
// geometry) over device x algorithm x policy level and reports per-packet
// delay and average power for each cell.
func FastCipherSweep(f *Fixture) ([]FastCipherResult, error) {
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		return nil, err
	}
	type cellSpec struct {
		device energy.Profile
		alg    vcrypt.Algorithm
		level  vcrypt.Mode
	}
	var specs []cellSpec
	for _, device := range FastCipherDevices() {
		for _, alg := range fastCipherAlgs {
			for _, level := range fastCipherLevels {
				specs = append(specs, cellSpec{device, alg, level})
			}
		}
	}
	out := make([]FastCipherResult, len(specs))
	err = parallelFor(f.workers(), len(specs), func(i int) error {
		sp := specs[i]
		pol := vcrypt.Policy{Mode: sp.level, Alg: sp.alg}
		cell, err := f.runCell(w, pol, sp.device, false, false)
		if err != nil {
			return err
		}
		out[i] = FastCipherResult{
			Device: sp.device.Name, Alg: sp.alg, Level: sp.level,
			DelayMean: cell.Delay.Mean, DelayCI: cell.Delay.CI95,
			PowerMean: cell.Power.Mean, PowerCI: cell.Power.CI95,
			EavesPSNR: cell.PSNR.Mean,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FastCipherResult is one cell of the fast-cipher policy sweep.
type FastCipherResult struct {
	Device    string
	Alg       vcrypt.Algorithm
	Level     vcrypt.Mode
	DelayMean float64 // seconds
	DelayCI   float64
	PowerMean float64 // Watts
	PowerCI   float64
	EavesPSNR float64 // dB at the eavesdropper
}

// fastCipherVerdict distills the encrypt-everything-vs-selective question
// into one note per device: the delay and power premium of ModeAll over
// ModeIFrames under the fastest cipher in the sweep.
func fastCipherVerdict(res []FastCipherResult) []string {
	cell := func(dev string, alg vcrypt.Algorithm, level vcrypt.Mode) *FastCipherResult {
		for i := range res {
			r := &res[i]
			if r.Device == dev && r.Alg == alg && r.Level == level {
				return r
			}
		}
		return nil
	}
	seen := map[string]bool{}
	var notes []string
	for _, r := range res {
		if seen[r.Device] {
			continue
		}
		seen[r.Device] = true
		all := cell(r.Device, vcrypt.AES128CTR, vcrypt.ModeAll)
		sel := cell(r.Device, vcrypt.AES128CTR, vcrypt.ModeIFrames)
		none := cell(r.Device, vcrypt.AES128CTR, vcrypt.ModeNone)
		if all == nil || sel == nil || none == nil || sel.DelayMean <= 0 || none.PowerMean <= 0 {
			continue
		}
		dPct := (all.DelayMean/sel.DelayMean - 1) * 100
		pPct := (all.PowerMean/none.PowerMean - 1) * 100
		notes = append(notes, fmt.Sprintf(
			"%s, AES128-CTR: encrypt-everything costs %+.1f%% delay vs I-only and %+.1f%% power vs cleartext",
			r.Device, dPct, pPct))
	}
	return notes
}

// FastCipherTable renders the sweep with the per-device verdict notes —
// the "fastcipher" figure of the figures command.
func FastCipherTable(f *Fixture) (*Table, error) {
	res, err := FastCipherSweep(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fast-cipher re-sweep: delay and power per policy level (fast motion, GOP=30, RTP/UDP)",
		Columns: []string{"device", "alg", "level", "exp delay(ms)", "power(W)", "eaves PSNR(dB)"},
	}
	for _, r := range res {
		t.Rows = append(t.Rows, []string{
			r.Device, r.Alg.String(), r.Level.String(),
			msCI(r.DelayMean, r.DelayCI),
			dbCI(r.PowerMean, r.PowerCI),
			f2(r.EavesPSNR),
		})
	}
	t.Notes = append(t.Notes, fastCipherVerdict(res)...)
	t.Notes = append(t.Notes,
		"verdict basis: selective encryption pays where the all-vs-I delay premium is large (2011 software ciphers); where it collapses, encrypt everything")
	return t, nil
}
