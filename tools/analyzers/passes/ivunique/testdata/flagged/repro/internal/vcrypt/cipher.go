package vcrypt

type Cipher struct{}

func (c *Cipher) EncryptPacket(seq uint64, payload []byte) []byte { return payload }

func (c *Cipher) EncryptPackets(baseSeq uint64, payloads [][]byte) [][]byte { return payloads }
