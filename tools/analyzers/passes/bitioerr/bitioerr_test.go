package bitioerr_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/bitioerr"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, bitioerr.Analyzer, "testdata/flagged", "repro/internal/codec")
}

func TestAllowMarkers(t *testing.T) {
	lintkit.RunTestNone(t, bitioerr.Analyzer, "testdata/allowed", "repro/internal/rtp")
}

func TestPackageFilter(t *testing.T) {
	// Packages that neither produce nor move bitstreams are out of
	// scope.
	lintkit.RunTestNone(t, bitioerr.Analyzer, "testdata/flagged", "repro/internal/wifi")
}
