// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the reproduction's substrates. Each FigNN /
// TableNN function returns a Table whose rows mirror the bars/series of
// the corresponding plot; cmd/figures prints them and bench_test.go wraps
// each one in a benchmark so `go test -bench` re-derives the whole
// evaluation.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

// Options scales the experiments. The paper uses 300-frame CIF clips and
// 20 repetitions; Quick() keeps the same structure on smaller inputs so
// the full suite runs in seconds.
type Options struct {
	Width, Height int
	Frames        int
	Repetitions   int
	Seed          uint64
	// Stations sets WiFi contention for the medium.
	Stations int
}

// Full returns the paper-scale settings.
func Full() Options {
	return Options{Width: video.CIFWidth, Height: video.CIFHeight, Frames: 300, Repetitions: 20, Seed: 1, Stations: 3}
}

// Quick returns reduced settings for tests and benchmarks.
func Quick() Options {
	return Options{Width: 128, Height: 96, Frames: 200, Repetitions: 3, Seed: 1, Stations: 3}
}

func (o Options) fill() Options {
	if o.Width == 0 || o.Height == 0 {
		o.Width, o.Height = video.CIFWidth, video.CIFHeight
	}
	if o.Frames == 0 {
		o.Frames = 300
	}
	if o.Repetitions == 0 {
		o.Repetitions = 5
	}
	if o.Stations == 0 {
		o.Stations = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// MTU is the application payload bound used throughout (WiFi MTU minus
// IP/UDP/RTP headers).
const MTU = 1400

// FPS is the clip frame rate (Section 4.3.2: 30 fps).
const FPS = 30.0

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Workload is one encoded clip under one GOP size.
type Workload struct {
	Name    string
	Motion  video.MotionLevel
	GOP     int
	Clip    []*video.Frame
	Cfg     codec.Config
	Encoded []*codec.EncodedFrame
	Dist    core.DistortionCalibration
}

// Fixture caches workloads and channel state across figures.
type Fixture struct {
	opts      Options
	workloads map[string]*Workload
	dcfParams wifi.DCFParams
	dcf       wifi.DCFResult
	backoff   float64
}

// NewFixture prepares a fixture.
func NewFixture(opts Options) (*Fixture, error) {
	opts = opts.fill()
	params := wifi.NewDefaultDCF(opts.Stations)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		return nil, err
	}
	return &Fixture{
		opts:      opts,
		workloads: make(map[string]*Workload),
		dcfParams: params,
		dcf:       dcf,
		backoff:   wifi.BackoffRate(params, dcf, wifi.PHY80211g().SlotTime),
	}, nil
}

// Options returns the fixture's (filled) options.
func (f *Fixture) Options() Options { return f.opts }

// Workload encodes (and caches) a clip for a motion class and GOP size.
func (f *Fixture) Workload(motion video.MotionLevel, gop int) (*Workload, error) {
	key := fmt.Sprintf("%v/%d", motion, gop)
	if w, ok := f.workloads[key]; ok {
		return w, nil
	}
	clip := video.Generate(video.SceneConfig{
		W: f.opts.Width, H: f.opts.Height, Frames: f.opts.Frames,
		Motion: motion, Seed: f.opts.Seed + uint64(motion),
	})
	cfg := codec.DefaultConfig(gop)
	cfg.Width, cfg.Height = f.opts.Width, f.opts.Height
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		return nil, err
	}
	dist, err := core.MeasureDistortion(clip, cfg, MTU)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name:    fmt.Sprintf("%v-motion GOP=%d", motion, gop),
		Motion:  motion,
		GOP:     gop,
		Clip:    clip,
		Cfg:     cfg,
		Encoded: encoded,
		Dist:    dist,
	}
	f.workloads[key] = w
	return w, nil
}

// Medium builds a fresh simulated channel.
func (f *Fixture) Medium(seed uint64) *wifi.Medium {
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, wifi.Rate54, f.dcf, f.backoff, stats.NewRNG(seed))
	med.ReceiverError = 0.01
	med.EavesdropperError = 0.03
	return med
}

// Calibrate runs the model calibration for a workload and device.
func (f *Fixture) Calibrate(w *Workload, device energy.Profile) (*core.Calibration, error) {
	net := core.Network{
		Stations: f.opts.Stations, Rate: wifi.Rate54,
		ReceiverError: 0.01, EavesdropperError: 0.03,
	}
	return core.Calibrate(w.Encoded, w.Cfg, FPS, MTU, device, net, w.Dist)
}

// Session assembles a transport session.
func (f *Fixture) Session(w *Workload, policy vcrypt.Policy, device energy.Profile, seed uint64) transport.Session {
	key := make([]byte, policy.Alg.KeySize())
	for i := range key {
		key[i] = byte(i*3 + 1)
	}
	return transport.Session{
		Config:  w.Cfg,
		Encoded: w.Encoded,
		FPS:     FPS,
		MTU:     MTU,
		Policy:  policy,
		Key:     key,
		Device:  device,
		Medium:  f.Medium(seed),
	}
}

// runStats are repeated-run summaries of one experimental cell.
type runStats struct {
	Delay  stats.Summary // mean per-packet sojourn (seconds)
	Wait   stats.Summary
	PSNR   stats.Summary // eavesdropper PSNR unless noted
	RxPSNR stats.Summary
	MOS    stats.Summary
	Power  stats.Summary
}

// runCell executes Repetitions transfers of one (workload, policy, device)
// cell and aggregates the measurements. unpaced selects the back-to-back
// upload mode (used by the power figures, matching the paper's
// methodology) instead of 30 fps streaming.
func (f *Fixture) runCell(w *Workload, policy vcrypt.Policy, device energy.Profile, tcp, unpaced bool) (runStats, error) {
	var delays, waits, psnrs, rxpsnrs, moss, powers []float64
	for rep := 0; rep < f.opts.Repetitions; rep++ {
		seed := f.opts.Seed*1000 + uint64(rep) + uint64(policy.Mode)*77 + uint64(w.GOP)
		s := f.Session(w, policy, device, seed)
		s.Unpaced = unpaced
		var res *transport.Result
		var err error
		if tcp {
			res, err = transport.RunHTTP(s, seed)
		} else {
			res, err = transport.RunUDP(s, seed)
		}
		if err != nil {
			return runStats{}, err
		}
		delays = append(delays, res.MeanSojourn)
		waits = append(waits, res.MeanWait)
		powers = append(powers, res.AveragePowerW)
		q, rq, err := evaluateReconstruction(w, s.Config, res)
		if err != nil {
			return runStats{}, err
		}
		psnrs = append(psnrs, q.psnr)
		moss = append(moss, q.mos)
		rxpsnrs = append(rxpsnrs, rq.psnr)
	}
	return runStats{
		Delay:  stats.Summarize(delays),
		Wait:   stats.Summarize(waits),
		PSNR:   stats.Summarize(psnrs),
		RxPSNR: stats.Summarize(rxpsnrs),
		MOS:    stats.Summarize(moss),
		Power:  stats.Summarize(powers),
	}, nil
}

type qualityPair struct {
	psnr, mos float64
}

func evaluateReconstruction(w *Workload, cfg codec.Config, res *transport.Result) (eav, rx qualityPair, err error) {
	evDec, err := codec.DecodeSequence(res.EavesFrames, cfg)
	if err != nil {
		return eav, rx, err
	}
	qe, err := evalQuality(w.Clip, evDec)
	if err != nil {
		return eav, rx, err
	}
	rxDec, err := codec.DecodeSequence(res.ReceiverFrames, cfg)
	if err != nil {
		return eav, rx, err
	}
	qr, err := evalQuality(w.Clip, rxDec)
	if err != nil {
		return eav, rx, err
	}
	return qe, qr, nil
}

// WriteCSV renders the table as RFC-4180 CSV for external plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
