#!/usr/bin/env bash
# perfgate.sh — CI perf-regression gate over a bench.sh report.
#
# Reads the JSON report bench.sh wrote and fails (exit 1) when the
# hot path regressed:
#
#   1. speedup_vs_legacy < 2.0 for any algorithm — the per-packet encrypt
#      engine must stay at least 2x faster than the pre-engine
#      construction, measured in the same run on the same machine (so the
#      check is machine-independent);
#   2. a steady-state hot-path benchmark (EncryptPacket, EncryptPackets,
#      EncryptPacketPrefetched, PacketizeInto) reports allocs_per_op > 0 —
#      the zero-copy pipeline must not regrow per-packet garbage;
#   3. ns/op more than 5% above the checked-in baseline for any benchmark
#      the baseline records — applied only when the report's cpu string
#      matches the baseline's, because absolute ns comparisons across
#      machine classes are noise, not signal.
#
# Usage: scripts/perfgate.sh [report.json] [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

report=${1:-BENCH_PR6.json}
baseline=${2:-scripts/baselines/seed.json}

if [ ! -f "$report" ]; then
	echo "perfgate: report $report not found (run scripts/bench.sh first)" >&2
	exit 1
fi
if [ ! -f "$baseline" ]; then
	echo "perfgate: baseline $baseline not found" >&2
	exit 1
fi

awk -v basefile="$baseline" '
function jstr(line, key,   m) {
	if (match(line, "\"" key "\": *\"[^\"]*\"")) {
		m = substr(line, RSTART, RLENGTH)
		sub("\"" key "\": *\"", "", m)
		sub("\"$", "", m)
		return m
	}
	return ""
}
function jnum(line, key,   m) {
	if (match(line, "\"" key "\": *-?[0-9.eE+]+")) {
		m = substr(line, RSTART, RLENGTH)
		sub("\"" key "\": *", "", m)
		return m
	}
	return ""
}
function fail(msg) { printf "perfgate: FAIL: %s\n", msg; failed = 1 }
BEGIN {
	base_cpu = ""
	while ((getline line < basefile) > 0) {
		c = jstr(line, "cpu"); if (c != "" && base_cpu == "") base_cpu = c
		bn = jstr(line, "name")
		if (bn != "") {
			v = jnum(line, "ns_per_op"); if (v != "") base_ns[bn] = v
		}
	}
	close(basefile)
	cpu = ""; hot = 0; checked_hot = 0
}
{
	c = jstr($0, "cpu"); if (c != "" && cpu == "" && $0 !~ /baseline_cpu/) cpu = c

	name = jstr($0, "name")
	if (name != "") {
		ns = jnum($0, "ns_per_op")
		allocs = jnum($0, "allocs_per_op")
		# Check 2: zero-alloc pins on the steady-state hot path.
		if (name ~ /^BenchmarkEncryptPacket(s|Prefetched)?\// || name == "BenchmarkPacketizeInto") {
			if (allocs != "" && allocs + 0 > 0)
				fail(name " allocates " allocs " times per op; the steady-state hot path must be 0")
		}
		# Check 3: >5% ns regression vs the baseline, same machine only.
		if (name in base_ns && ns != "") {
			if (cpu == base_cpu && base_cpu != "") {
				if (ns + 0 > base_ns[name] * 1.05)
					fail(sprintf("%s regressed: %.0f ns/op vs baseline %.0f (+%.1f%%, budget 5%%)",
						name, ns, base_ns[name], (ns / base_ns[name] - 1) * 100))
				else
					printf "perfgate: ok: %s %.0f ns/op within 5%% of baseline %.0f\n", name, ns, base_ns[name]
			} else if (!warned_cpu++) {
				printf "perfgate: note: cpu %s != baseline cpu %s; skipping absolute ns comparisons\n", cpu, base_cpu
			}
		}
	}

	# Check 1: the hot-path summary entries.
	alg = jstr($0, "alg")
	if (alg != "") {
		checked_hot++
		sp = jnum($0, "speedup_vs_legacy")
		if (sp == "")
			fail("hot_path entry for " alg " has no speedup_vs_legacy")
		else if (sp + 0 < 2.0)
			fail(sprintf("per-packet encrypt speedup for %s is %.2fx vs legacy; gate requires >= 2x", alg, sp + 0))
		else
			printf "perfgate: ok: %s encrypt hot path %.2fx vs legacy\n", alg, sp + 0
	}
}
END {
	if (checked_hot == 0)
		fail("report has no hot_path entries; bench.sh did not run the vcrypt benchmarks")
	if (failed)
		exit 1
	printf "perfgate: PASS\n"
}
' "$report"
