package transport

type header struct {
	Sequence uint16
	Epoch    uint32
}

// Equality is wrap-clean and stays legal.
func dedup(p, q header) bool {
	return p.Sequence == q.Sequence && p.Epoch != q.Epoch
}

// Extended 64-bit sequences are the sanctioned representation; ordering
// them is the whole point.
func orderedExtended(a, b uint64) bool {
	extSeqA, extSeqB := a, b
	return extSeqA < extSeqB
}

// Narrow integers without seq/epoch in the name are someone else's
// problem (lengths, counts, widths).
func widths(w, h uint16) bool {
	return w > h
}

// A justified raw comparison can be allowed explicitly.
func handshakeGate(seq uint16) bool {
	//lint:allow seqwrap initial handshake window is below 2^15 by protocol
	return seq > 0x10
}
