// Package audio implements the audio substrate the paper defers to future
// work (Section 3: "we expect that the volume of audio content is going to
// be much lower than video and thus, all of it can be encrypted"). It
// provides 16-bit PCM tracks, an IMA-ADPCM codec (4:1 compression, the
// classic low-cost speech/VoIP coder), frame packetization at a fixed
// cadence, and the always-encrypt cost accounting that lets the transport
// verify the paper's expectation quantitatively.
package audio

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Track is a mono 16-bit PCM stream.
type Track struct {
	SampleRate int
	Samples    []int16
}

// Duration returns the track length in seconds.
func (t *Track) Duration() float64 {
	if t.SampleRate <= 0 {
		return 0
	}
	return float64(len(t.Samples)) / float64(t.SampleRate)
}

// Generate synthesises a speech-band test tone mix: a few drifting
// sinusoids plus a little noise, deterministic from the seed.
func Generate(sampleRate int, seconds float64, seed uint64) *Track {
	n := int(float64(sampleRate) * seconds)
	rng := stats.NewRNG(seed)
	samples := make([]int16, n)
	f1 := 180 + rng.Float64()*80
	f2 := 450 + rng.Float64()*200
	f3 := 1200 + rng.Float64()*600
	for i := range samples {
		ts := float64(i) / float64(sampleRate)
		v := 0.45*math.Sin(2*math.Pi*f1*ts) +
			0.3*math.Sin(2*math.Pi*f2*ts+0.7) +
			0.15*math.Sin(2*math.Pi*f3*ts*(1+0.05*math.Sin(ts))) +
			0.05*(rng.Float64()*2-1)
		samples[i] = int16(v * 20000)
	}
	return &Track{SampleRate: sampleRate, Samples: samples}
}

// IMA-ADPCM step table (standard).
var stepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

var indexTable = [16]int{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

type adpcmState struct {
	predictor int
	index     int
}

func (s *adpcmState) encodeSample(sample int16) byte {
	step := stepTable[s.index]
	diff := int(sample) - s.predictor
	var nibble byte
	if diff < 0 {
		nibble = 8
		diff = -diff
	}
	delta := 0
	if diff >= step {
		nibble |= 4
		diff -= step
		delta += step
	}
	step >>= 1
	if diff >= step {
		nibble |= 2
		diff -= step
		delta += step
	}
	step >>= 1
	if diff >= step {
		nibble |= 1
		delta += step
	}
	delta += stepTable[s.index] >> 3
	if nibble&8 != 0 {
		s.predictor -= delta
	} else {
		s.predictor += delta
	}
	if s.predictor > 32767 {
		s.predictor = 32767
	}
	if s.predictor < -32768 {
		s.predictor = -32768
	}
	s.index += indexTable[nibble]
	if s.index < 0 {
		s.index = 0
	}
	if s.index > 88 {
		s.index = 88
	}
	return nibble
}

func (s *adpcmState) decodeSample(nibble byte) int16 {
	step := stepTable[s.index]
	delta := step >> 3
	if nibble&4 != 0 {
		delta += step
	}
	if nibble&2 != 0 {
		delta += step >> 1
	}
	if nibble&1 != 0 {
		delta += step >> 2
	}
	if nibble&8 != 0 {
		s.predictor -= delta
	} else {
		s.predictor += delta
	}
	if s.predictor > 32767 {
		s.predictor = 32767
	}
	if s.predictor < -32768 {
		s.predictor = -32768
	}
	s.index += indexTable[nibble]
	if s.index < 0 {
		s.index = 0
	}
	if s.index > 88 {
		s.index = 88
	}
	return int16(s.predictor)
}

// Frame is one encoded audio frame: an independently decodable ADPCM
// block (it carries its own predictor seed), so a lost frame never
// corrupts its neighbours — the audio analogue of per-packet OFB.
type Frame struct {
	Seq     int
	Samples int
	Data    []byte
}

// FrameDuration is the packetization cadence (20 ms, the usual VoIP
// frame).
const FrameDuration = 0.020

// Encode compresses the track into 20 ms ADPCM frames.
//
// Frame layout: predictor (int16, big endian) | index (byte) | nibbles.
func Encode(t *Track) ([]Frame, error) {
	if t.SampleRate <= 0 || len(t.Samples) == 0 {
		return nil, fmt.Errorf("audio: empty track")
	}
	per := int(float64(t.SampleRate) * FrameDuration)
	if per < 2 {
		return nil, fmt.Errorf("audio: sample rate %d too low", t.SampleRate)
	}
	var frames []Frame
	// The step index adapts across frames at the encoder and each frame
	// stores its own starting (predictor, index) pair, so frames stay
	// independently decodable without paying the adaptation ramp on every
	// frame boundary.
	runningIndex := 0
	for off, seq := 0, 0; off < len(t.Samples); off, seq = off+per, seq+1 {
		end := off + per
		if end > len(t.Samples) {
			end = len(t.Samples)
		}
		chunk := t.Samples[off:end]
		st := adpcmState{predictor: int(chunk[0]), index: runningIndex}
		data := make([]byte, 0, 3+(len(chunk)+1)/2)
		data = append(data, byte(uint16(chunk[0])>>8), byte(uint16(chunk[0])), byte(st.index))
		var cur byte
		half := false
		for _, s := range chunk {
			n := st.encodeSample(s)
			if !half {
				cur = n << 4
				half = true
			} else {
				data = append(data, cur|n)
				half = false
			}
		}
		if half {
			data = append(data, cur)
		}
		runningIndex = st.index
		frames = append(frames, Frame{Seq: seq, Samples: len(chunk), Data: data})
	}
	return frames, nil
}

// Decode reconstructs a track from frames; nil frames (lost packets) are
// concealed with silence.
func Decode(frames []Frame, sampleRate int) (*Track, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("audio: bad sample rate")
	}
	var samples []int16
	for _, f := range frames {
		if f.Data == nil {
			samples = append(samples, make([]int16, f.Samples)...)
			continue
		}
		if len(f.Data) < 3 {
			return nil, fmt.Errorf("audio: frame %d truncated", f.Seq)
		}
		st := adpcmState{
			predictor: int(int16(uint16(f.Data[0])<<8 | uint16(f.Data[1]))),
			index:     int(f.Data[2]),
		}
		if st.index > 88 {
			return nil, fmt.Errorf("audio: frame %d has bad index %d", f.Seq, st.index)
		}
		out := make([]int16, 0, f.Samples)
		for i := 0; i < f.Samples; i++ {
			b := f.Data[3+i/2]
			var n byte
			if i%2 == 0 {
				n = b >> 4
			} else {
				n = b & 0x0F
			}
			out = append(out, st.decodeSample(n))
		}
		samples = append(samples, out...)
	}
	return &Track{SampleRate: sampleRate, Samples: samples}, nil
}

// SNR returns the signal-to-noise ratio in dB of a reconstruction against
// the original (higher is better; ADPCM lands in the 20-35 dB range).
func SNR(orig, recon *Track) (float64, error) {
	if orig.SampleRate != recon.SampleRate || len(orig.Samples) != len(recon.Samples) {
		return 0, fmt.Errorf("audio: tracks differ in shape")
	}
	var sig, noise float64
	for i := range orig.Samples {
		s := float64(orig.Samples[i])
		d := s - float64(recon.Samples[i])
		sig += s * s
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}

// Bitrate returns the encoded bitrate in bits/second.
func Bitrate(frames []Frame, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	bytes := 0
	for _, f := range frames {
		bytes += len(f.Data)
	}
	return float64(bytes) * 8 / duration
}
