package codec

// Transform-block coding: DCT -> frequency-ramped uniform quantisation ->
// zig-zag run-length -> Exp-Golomb entropy coding, and the exact inverse.
// Every block is independently decodable given its bit position, and the
// encoder reconstructs through the same inverse path the decoder uses, so
// prediction never drifts.

// encodeBlock transforms, quantises and entropy-codes one 8x8 sample block
// (values already centred, e.g. pixel-128 for intra or residuals for
// inter). It returns the reconstructed (dequantised) samples so the caller
// can maintain the reference frame.
//
// It is split into quantiseBlock (DCT + quantisation) and
// entropyCodeBlock (bitstream + reconstruction) so the row coder can
// batch the numeric phase across a whole macroblock row while the
// per-block math — and therefore the bitstream — stays exactly this.
func encodeBlock(w *bitWriter, samples *[64]float64, q float64, recon *[64]float64) {
	var quant [64]int32
	nonzero := quantiseBlock(samples, q, &quant)
	entropyCodeBlock(w, &quant, nonzero, q, recon)
}

// quantiseBlock runs the forward transform and frequency-ramped
// quantisation of encodeBlock, filling quant in zig-zag order and
// returning the index of the last nonzero coefficient (-1 for an
// all-zero block).
func quantiseBlock(samples *[64]float64, q float64, quant *[64]int32) int {
	var coeff [64]float64
	fdct8(samples, &coeff)
	nonzero := -1
	invQ := 1 / q
	for zz := 0; zz < 64; zz++ {
		v := coeff[zigzag[zz]] * invQ * invQuantRamp[zz]
		var iv int32
		if v >= 0 {
			iv = int32(v + 0.5)
		} else {
			iv = int32(v - 0.5)
		}
		quant[zz] = iv
		if iv != 0 {
			nonzero = zz
		}
	}
	return nonzero
}

// entropyCodeBlock writes the coded-block flag and (run, level) stream of
// a quantised block and reconstructs the dequantised samples.
func entropyCodeBlock(w *bitWriter, quant *[64]int32, nonzero int, q float64, recon *[64]float64) {
	// Coded-block flag.
	if nonzero < 0 {
		w.writeBit(0)
		for i := range recon {
			recon[i] = 0
		}
		return
	}
	w.writeBit(1)
	// (run, level) pairs over the zig-zag order, terminated by run-to-end.
	zz := 0
	for zz <= nonzero {
		run := 0
		for quant[zz] == 0 {
			run++
			zz++
		}
		w.writeUE(uint64(run))
		w.writeSE(int64(quant[zz]))
		zz++
	}
	// End-of-block marker: an impossible run.
	w.writeUE(64)

	// Reconstruction (dequantise + inverse transform).
	var deq [64]float64
	for p := 0; p < 64; p++ {
		if quant[p] != 0 {
			deq[zigzag[p]] = float64(quant[p]) * quantStep(q, p)
		}
	}
	idct8(&deq, recon)
}

// decodeBlock reverses encodeBlock into the reconstructed sample block.
func decodeBlock(r *bitReader, q float64, recon *[64]float64) error {
	for i := range recon {
		recon[i] = 0
	}
	coded, err := r.readBit()
	if err != nil {
		return err
	}
	if coded == 0 {
		return nil
	}
	var deq [64]float64
	zz := 0
	for {
		run, err := r.readUE()
		if err != nil {
			return err
		}
		if run >= 64 {
			break // end of block
		}
		zz += int(run)
		if zz >= 64 {
			return errCorrupt
		}
		level, err := r.readSE()
		if err != nil {
			return err
		}
		deq[zigzag[zz]] = float64(level) * quantStep(q, zz)
		zz++
		if zz > 64 {
			return errCorrupt
		}
	}
	idct8(&deq, recon)
	return nil
}

// clampByte converts a float sample to a byte with saturation.
func clampByte(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}
