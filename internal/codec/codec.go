package codec

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/video"
)

// FrameType distinguishes intra-coded and predicted frames.
type FrameType uint8

// Frame types of the IPP...P GOP structure.
const (
	IFrame FrameType = iota
	PFrame
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	case BFrame:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// mbSize is the macroblock size (16x16 luma, 8x8 per chroma plane).
const mbSize = 16

// errCorrupt is returned when a bitstream decodes to impossible values;
// the affected macroblock is concealed.
var errCorrupt = errors.New("codec: corrupt bitstream")

// Config parameterises the codec.
type Config struct {
	Width, Height int
	// GOPSize is the distance between consecutive I-frames (Table 1 uses
	// 30 and 50).
	GOPSize int
	// QI and QP are the base quantisation steps for I- and P-frames.
	QI, QP float64
	// SearchRange bounds the motion search in pixels.
	SearchRange int
	// FullSearch switches the motion estimator from diamond search to
	// exhaustive search (slower, slightly better compression); kept for
	// the ablation benchmark.
	FullSearch bool
	// BFrames inserts this many bidirectionally predicted frames between
	// anchors (0 = the paper's IPP...P structure). Only the sequence APIs
	// (EncodeSequenceB / DecodeSequenceB) understand B streams.
	BFrames int
	// Workers bounds the number of goroutines coding macroblock rows of a
	// frame concurrently. 0 and 1 both select the serial path (so the zero
	// value behaves exactly as before); larger values are clamped to the
	// row count. The bitstream is bit-identical for every setting — see
	// parallel.go for the wavefront argument. Callers typically set it to
	// runtime.NumCPU().
	Workers int
}

// DefaultConfig returns the settings used by the experiment harness:
// CIF frames, the given GOP size, and quantisation tuned so a clean
// transfer lands in the high-30s dB PSNR range typical of the paper's
// unimpaired receptions.
func DefaultConfig(gop int) Config {
	return Config{
		Width:       video.CIFWidth,
		Height:      video.CIFHeight,
		GOPSize:     gop,
		QI:          8,
		QP:          10,
		SearchRange: 16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("codec: invalid dimensions %dx%d", c.Width, c.Height)
	case c.Width%mbSize != 0 || c.Height%mbSize != 0:
		return fmt.Errorf("codec: dimensions %dx%d not multiples of %d", c.Width, c.Height, mbSize)
	case c.GOPSize < 1:
		return fmt.Errorf("codec: GOP size %d", c.GOPSize)
	case c.QI <= 0 || c.QP <= 0:
		return fmt.Errorf("codec: quantisation steps must be positive")
	case c.SearchRange < 0 || c.SearchRange > 64:
		return fmt.Errorf("codec: search range %d out of [0,64]", c.SearchRange)
	case c.Workers < 0:
		return fmt.Errorf("codec: negative worker count %d", c.Workers)
	}
	return nil
}

// MBCols and MBRows return the macroblock grid dimensions.
func (c Config) MBCols() int { return c.Width / mbSize }

// MBRows returns the number of macroblock rows.
func (c Config) MBRows() int { return c.Height / mbSize }

// EncodedFrame is one compressed frame: a sequence of independently
// decodable macroblock chunks (the property that lets the packetizer form
// self-contained slices). A nil chunk marks a macroblock lost in transit.
type EncodedFrame struct {
	Number int
	Type   FrameType
	MBData [][]byte
}

// Size returns the total compressed size in bytes.
func (f *EncodedFrame) Size() int {
	n := 0
	for _, mb := range f.MBData {
		n += len(mb)
	}
	return n
}

// Clone deep-copies the frame (the transport mutates MBData on loss).
func (f *EncodedFrame) Clone() *EncodedFrame {
	c := &EncodedFrame{Number: f.Number, Type: f.Type, MBData: make([][]byte, len(f.MBData))}
	for i, mb := range f.MBData {
		if mb != nil {
			c.MBData[i] = append([]byte(nil), mb...)
		}
	}
	return c
}

// Encoder compresses a frame sequence into the IPP...P GOP structure,
// maintaining the same reconstructed reference the decoder will see.
type Encoder struct {
	cfg   Config
	ref   *video.Frame // last reconstruction
	count int
	// prevMVs holds the motion field of the previous P-frame; together
	// with the left-neighbour vector it seeds the diamond search, which is
	// what lets it track global pan on textured content.
	prevMVs [][2]int
	// retainRefs disables recycling of superseded reference frames. The
	// B-frame sequence encoder sets it because it keeps anchor
	// reconstructions alive across Encode calls.
	retainRefs bool
}

// NewEncoder returns an encoder for the configuration.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{cfg: cfg}, nil
}

// Encode compresses the next frame of the sequence.
func (e *Encoder) Encode(f *video.Frame) (*EncodedFrame, error) {
	ft := PFrame
	if e.count%e.cfg.GOPSize == 0 || e.ref == nil {
		ft = IFrame
	}
	return e.encodeAs(f, ft)
}

// encodeAs compresses the next frame with an explicit type (the B-frame
// path uses it to keep trailing frames predicted).
func (e *Encoder) encodeAs(f *video.Frame, ft FrameType) (*EncodedFrame, error) {
	if f.W != e.cfg.Width || f.H != e.cfg.Height {
		return nil, fmt.Errorf("codec: frame %dx%d does not match config %dx%d", f.W, f.H, e.cfg.Width, e.cfg.Height)
	}
	if ft == PFrame && e.ref == nil {
		ft = IFrame
	}
	// Pooled frames come back dirty, which is fine: every macroblock coder
	// writes its full pixel footprint, so the whole reconstruction is
	// overwritten below.
	recon := getFrame(f.W, f.H)
	cols, rows := e.cfg.MBCols(), e.cfg.MBRows()
	out := &EncodedFrame{Number: e.count, Type: ft, MBData: make([][]byte, cols*rows)}
	mvs := make([][2]int, cols*rows)
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now() //lint:allow walltime observability seam: times the encode, never feeds the model
	}
	e.encodeRows(f, recon, out, mvs, ft)
	if obs.Enabled() {
		mEncodeFrameSeconds.Observe(time.Since(t0).Seconds()) //lint:allow walltime observability seam: times the encode, never feeds the model
		countEncodedFrame(out)
	}
	if ft == PFrame {
		e.prevMVs = mvs
	} else {
		e.prevMVs = nil
	}
	if e.ref != nil && !e.retainRefs {
		putFrame(e.ref)
	}
	e.ref = recon
	e.count++
	return out, nil
}

// Reset returns the encoder to the start-of-stream state.
func (e *Encoder) Reset() {
	if e.ref != nil && !e.retainRefs {
		putFrame(e.ref)
	}
	e.ref, e.count, e.prevMVs = nil, 0, nil
}

// Decoder reconstructs a frame sequence, concealing lost macroblocks and
// frames by copying from the most recent reference (the substitution rule
// of Section 4.3.2).
type Decoder struct {
	cfg Config
	ref *video.Frame
}

// NewDecoder returns a decoder for the configuration.
func NewDecoder(cfg Config) (*Decoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{cfg: cfg}, nil
}

// Decode reconstructs one frame. A nil EncodedFrame, or one whose chunks
// are all missing, is concealed entirely by repeating the previous
// reconstruction (grey for a leading loss). Individual nil/corrupt chunks
// are concealed per macroblock. Decode never fails on damaged input; the
// damage shows up as distortion, as in the testbed.
func (d *Decoder) Decode(ef *EncodedFrame) *video.Frame {
	mFramesDecoded.Inc()
	out := video.NewFrame(d.cfg.Width, d.cfg.Height)
	cols, rows := d.cfg.MBCols(), d.cfg.MBRows()
	if ef == nil {
		d.concealFrame(out)
		d.ref = out
		return out
	}
	if cols*rows != len(ef.MBData) {
		d.concealFrame(out)
		d.ref = out
		return out
	}
	// Resolve the leading-loss reference once per frame instead of per
	// macroblock so inter rows share one pooled grey frame.
	ref := d.ref
	var grey *video.Frame
	if ef.Type != IFrame && ref == nil {
		grey = getGreyFrame(d.cfg.Width, d.cfg.Height)
		ref = grey
	}
	if workers := d.cfg.rowWorkers(rows); workers > 1 {
		parallelRows(workers, rows, func(my int) {
			d.decodeRow(ef, ref, out, my)
		})
	} else {
		for my := 0; my < rows; my++ {
			d.decodeRow(ef, ref, out, my)
		}
	}
	if grey != nil {
		putFrame(grey)
	}
	d.ref = out
	return out
}

// Reset returns the decoder to the start-of-stream state.
func (d *Decoder) Reset() { d.ref = nil }

// concealFrame copies the previous reconstruction (or mid-grey when there
// is none).
func (d *Decoder) concealFrame(out *video.Frame) {
	if d.ref == nil {
		for i := range out.Y {
			out.Y[i] = 128
		}
		return
	}
	copy(out.Y, d.ref.Y)
	copy(out.Cb, d.ref.Cb)
	copy(out.Cr, d.ref.Cr)
}

// concealMB copies one macroblock region from the reference.
func (d *Decoder) concealMB(out *video.Frame, mx, my int) {
	x0, y0 := mx*mbSize, my*mbSize
	if d.ref == nil {
		for y := y0; y < y0+mbSize; y++ {
			for x := x0; x < x0+mbSize; x++ {
				out.Y[y*out.W+x] = 128
			}
		}
		return
	}
	for y := y0; y < y0+mbSize; y++ {
		copy(out.Y[y*out.W+x0:y*out.W+x0+mbSize], d.ref.Y[y*out.W+x0:y*out.W+x0+mbSize])
	}
	cw := out.W / 2
	cx0, cy0 := x0/2, y0/2
	for y := cy0; y < cy0+mbSize/2; y++ {
		copy(out.Cb[y*cw+cx0:y*cw+cx0+mbSize/2], d.ref.Cb[y*cw+cx0:y*cw+cx0+mbSize/2])
		copy(out.Cr[y*cw+cx0:y*cw+cx0+mbSize/2], d.ref.Cr[y*cw+cx0:y*cw+cx0+mbSize/2])
	}
}
