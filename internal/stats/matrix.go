// Package stats provides the small numerical toolbox shared by the
// analytical framework and the experiment harnesses: dense matrix algebra,
// polynomial least-squares regression, descriptive statistics with
// confidence intervals, and deterministic pseudo-random helpers.
//
// Everything here is intentionally self-contained (stdlib only) and sized
// for the dimensions that actually occur in the reproduction: matrices up to
// a few hundred rows (the QBD phase space) and sample sets up to a few
// hundred thousand points.
package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stats: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("stats: MatrixFromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("stats: ragged rows in MatrixFromRows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.mustMatch(other)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + other.Data[i]
	}
	return out
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.mustMatch(other)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - other.Data[i]
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m*other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("stats: dimension mismatch in Mul: %dx%d * %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 { //lint:allow floateq exact sparsity fast path; skipped terms contribute exactly zero
				continue
			}
			ok := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j, okj := range ok {
				oi[j] += mik * okj
			}
		}
	}
	return out
}

// MulVec returns m*v for a column vector v (len == m.Cols).
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("stats: dimension mismatch in MulVec")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns the row-vector product v*m (len(v) == m.Rows).
func (m *Matrix) VecMul(v []float64) []float64 {
	if len(v) != m.Rows {
		panic("stats: dimension mismatch in VecMul")
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 { //lint:allow floateq exact sparsity fast path; skipped terms contribute exactly zero
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, rv := range row {
			out[j] += vi * rv
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbsDiff returns max_ij |m_ij - other_ij|, a convergence metric for
// fixed-point iterations.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	m.mustMatch(other)
	var d float64
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - other.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("stats: singular matrix")

// Solve solves m*x = b for x using Gaussian elimination with partial
// pivoting. m must be square; b must have length m.Rows. m and b are not
// modified.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.Rows != m.Cols {
		panic("stats: Solve requires a square matrix")
	}
	if len(b) != m.Rows {
		panic("stats: Solve rhs length mismatch")
	}
	n := m.Rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pivotAbs := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > pivotAbs {
				pivot, pivotAbs = r, v
			}
		}
		if pivotAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 { //lint:allow floateq exact zero-row skip in elimination; an epsilon would skip real work
				continue
			}
			a.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= a.At(r, c) * x[c]
		}
		x[r] = s / a.At(r, r)
	}
	return x, nil
}

// Inverse returns m⁻¹, or ErrSingular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("stats: Inverse requires a square matrix")
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot, pivotAbs := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > pivotAbs {
				pivot, pivotAbs = r, v
			}
		}
		if pivotAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		d := 1 / a.At(col, col)
		for c := 0; c < n; c++ {
			a.Set(col, c, a.At(col, c)*d)
			inv.Set(col, c, inv.At(col, c)*d)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 { //lint:allow floateq exact zero-row skip in elimination; an epsilon would skip real work
				continue
			}
			for c := 0; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
				inv.Set(r, c, inv.At(r, c)-f*inv.At(col, c))
			}
		}
	}
	return inv, nil
}

// SolveLeft solves x*m = b for the row vector x (i.e. mᵀ xᵀ = bᵀ).
func (m *Matrix) SolveLeft(b []float64) ([]float64, error) {
	return m.Transpose().Solve(b)
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Matrix) mustMatch(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("stats: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// StationaryVector returns the stationary probability row vector π of an
// irreducible CTMC generator Q (πQ = 0, πe = 1) or of a DTMC transition
// matrix P (πP = π, πe = 1). The kind is detected from the diagonal: a
// generator has non-positive diagonal entries and zero row sums.
func StationaryVector(q *Matrix) ([]float64, error) {
	if q.Rows != q.Cols {
		panic("stats: StationaryVector requires a square matrix")
	}
	n := q.Rows
	// Build A = Qᵀ (or (P-I)ᵀ) with the last equation replaced by Σπ = 1.
	a := NewMatrix(n, n)
	isGenerator := true
	for i := 0; i < n; i++ {
		if q.At(i, i) > 1e-12 {
			isGenerator = false
			break
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := q.At(j, i) // transpose
			if !isGenerator && i == j {
				v -= 1 // P - I
			} else if !isGenerator {
				// off-diagonal of (P-I)ᵀ is just Pᵀ
			}
			a.Set(i, j, v)
		}
	}
	b := make([]float64, n)
	// Replace the last row with the normalisation Σπ_j = 1.
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b[n-1] = 1
	pi, err := a.Solve(b)
	if err != nil {
		return nil, err
	}
	// Clamp tiny negative round-off.
	var sum float64
	for i, v := range pi {
		if v < 0 && v > -1e-9 {
			pi[i] = 0
		}
		sum += pi[i]
	}
	if sum <= 0 {
		return nil, ErrSingular
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}
