// Testdata for the bitioerr pass: discarded error results are flagged
// whether dropped bare or through blank assignments; deferred calls,
// handled errors and hash.Hash.Write are out of scope.
package iodemo

import (
	"crypto/sha256"
	"errors"
)

type bitWriter struct{ n int }

func (w *bitWriter) WriteBits(v uint64, width int) error {
	if width < 0 {
		return errors.New("iodemo: negative width")
	}
	w.n += width
	return nil
}

func (w *bitWriter) Flush() (int, error) { return w.n, nil }

func (w *bitWriter) Reset() { w.n = 0 }

func discards(w *bitWriter) {
	w.WriteBits(1, 2)     // want `error result of WriteBits discarded`
	_ = w.WriteBits(3, 4) // want `error result of WriteBits discarded`
	_, _ = w.Flush()      // want `error result of Flush discarded`
}

func handled(w *bitWriter) error {
	w.Reset() // no error in the result set
	if err := w.WriteBits(1, 2); err != nil {
		return err
	}
	n, err := w.Flush()
	_ = n
	return err
}

func outOfScope(w *bitWriter, data []byte) {
	defer w.WriteBits(9, 9) // deferred: the error cannot be consumed anyway
	h := sha256.New()
	h.Write(data) // hash.Hash.Write is documented to never return an error
}
