package codec

import (
	"bytes"
	"testing"

	"repro/internal/video"
)

// testFrames returns encoded I, P and B frames for packetizer tests.
func testFrames(t testing.TB) []*EncodedFrame {
	t.Helper()
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 6, Motion: video.MotionMedium, Seed: 9})
	cfg := smallConfig(4)
	cfg.BFrames = 1
	enc, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byType := map[FrameType]*EncodedFrame{}
	for _, ef := range enc {
		byType[ef.Type] = ef
	}
	out := []*EncodedFrame{}
	for _, ft := range []FrameType{IFrame, PFrame, BFrame} {
		ef := byType[ft]
		if ef == nil {
			t.Fatalf("no %v frame in test clip", ft)
		}
		out = append(out, ef)
	}
	return out
}

// TestPacketizeIntoMatchesPacketize is the wire-format golden test: the
// zero-copy packetizer must produce byte-identical payloads and
// identical slice boundaries to Packetize for I, P and B frames, across
// MTUs and headrooms, pooled and pool-less.
func TestPacketizeIntoMatchesPacketize(t *testing.T) {
	pool := NewBufPool()
	for _, ef := range testFrames(t) {
		for _, mtu := range []int{64, 200, 1400} {
			for _, headroom := range []int{0, 12, 13} {
				want, err := Packetize(ef, mtu)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range []*BufPool{nil, pool} {
					got, err := PacketizeInto(ef, mtu, headroom, p, nil)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%v mtu=%d: %d packets, want %d", ef.Type, mtu, len(got), len(want))
					}
					for i := range got {
						if got[i].Packet.FrameNumber != want[i].FrameNumber ||
							got[i].Packet.Type != want[i].Type ||
							got[i].Packet.MBStart != want[i].MBStart ||
							got[i].Packet.MBCount != want[i].MBCount {
							t.Fatalf("%v mtu=%d packet %d: header mismatch", ef.Type, mtu, i)
						}
						if !bytes.Equal(got[i].Payload, want[i].Payload) {
							t.Fatalf("%v mtu=%d packet %d: payload differs", ef.Type, mtu, i)
						}
						if got[i].Headroom != headroom {
							t.Fatalf("packet %d headroom %d, want %d", i, got[i].Headroom, headroom)
						}
						wire := got[i].Wire(len(got[i].Payload))
						if len(wire) != headroom+len(got[i].Payload) {
							t.Fatalf("packet %d wire length %d", i, len(wire))
						}
						if !bytes.Equal(wire[headroom:], want[i].Payload) {
							t.Fatalf("packet %d: wire payload region differs", i)
						}
					}
					if p != nil {
						for i := range got {
							p.Put(&got[i])
						}
					}
				}
			}
		}
	}
}

// TestPacketizeIntoPadInPlace checks the contract that payloads can be
// extended to the MTU within the buffer (no reallocation, headroom
// preserved).
func TestPacketizeIntoPadInPlace(t *testing.T) {
	pool := NewBufPool()
	ef := testFrames(t)[1] // P-frame: small packets, far below MTU
	const mtu, headroom = 1400, 12
	wps, err := PacketizeInto(ef, mtu, headroom, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wps {
		wp := &wps[i]
		if cap(wp.Payload) < mtu {
			t.Fatalf("packet %d payload cap %d < mtu", i, cap(wp.Payload))
		}
		grown := wp.Payload[:mtu]
		if &grown[0] != &wp.Payload[0] {
			t.Fatalf("packet %d: padding reallocated", i)
		}
		wire := wp.Wire(mtu)
		if len(wire) != headroom+mtu {
			t.Fatalf("packet %d: wire len %d", i, len(wire))
		}
		if !bytes.Equal(wire[headroom:], grown) {
			t.Fatalf("packet %d: wire and padded payload disagree", i)
		}
		pool.Put(wp)
	}
}

// TestPacketizeIntoZeroAllocs pins the steady-state packetize path at
// zero allocations once the pool and destination slice are warm.
func TestPacketizeIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are not meaningful")
	}
	pool := NewBufPool()
	ef := testFrames(t)[0]
	var wps []WirePacket
	run := func() {
		var err error
		wps, err = PacketizeInto(ef, 1400, 12, pool, wps[:0])
		if err != nil {
			t.Fatal(err)
		}
		for i := range wps {
			pool.Put(&wps[i])
		}
	}
	run() // warm pool and dst capacity
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("PacketizeInto allocates %.1f times per frame, want 0", allocs)
	}
}

// TestUvarintLenMatchesEncoding cross-checks the size function against
// the encoder on boundary values.
func TestUvarintLenMatchesEncoding(t *testing.T) {
	for _, v := range []uint64{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1 << 21, 1<<63 - 1, 1 << 63} {
		got := uvarintLen(v)
		if want := len(appendUvarint(nil, v)); got != want {
			t.Fatalf("uvarintLen(%d) = %d, encoded length %d", v, got, want)
		}
	}
}

func BenchmarkPacketizeInto(b *testing.B) {
	ef := testFrames(b)[0]
	pool := NewBufPool()
	var wps []WirePacket
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		wps, err = PacketizeInto(ef, 1400, 12, pool, wps[:0])
		if err != nil {
			b.Fatal(err)
		}
		for j := range wps {
			pool.Put(&wps[j])
		}
	}
}

// BenchmarkPacketize measures the allocating packetizer for comparison
// (exact-size buffers since this PR, but still one allocation per
// packet).
func BenchmarkPacketize(b *testing.B) {
	ef := testFrames(b)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Packetize(ef, 1400); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBufPoolPutHardening pins the ownership guards Put makes no
// assumptions about: nil packets, double Puts, buffers issued by a
// different pool and pool-less buffers must all be no-ops on the pool's
// free list — the runtime contract the bufown analyzer checks statically.
func TestBufPoolPutHardening(t *testing.T) {
	ef := testFrames(t)[0]
	pool := NewBufPool()
	other := NewBufPool()

	// Nil packet and zero-value packet: no panic, no pool entry.
	pool.Put(nil)
	pool.Put(&WirePacket{})

	// Double Put must insert the buffer exactly once: after the second
	// Put, two gets must return distinct buffers (a poisoned free list
	// would hand the same wireBuf out twice).
	wps, err := PacketizeInto(ef, 200, 4, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	wp := &wps[0]
	buf := wp.buf
	pool.Put(wp)
	if wp.buf != nil || wp.Payload != nil {
		t.Fatal("Put did not detach the packet")
	}
	pool.Put(wp) // double Put: must be a no-op
	a, b := pool.get(1), pool.get(1)
	if a == b {
		t.Fatal("double Put inserted the buffer twice")
	}
	if a != buf && b != buf {
		t.Fatal("first Put never reached the pool")
	}

	// Foreign buffer: detached from the packet but never enters this
	// pool's free list.
	fw, err := PacketizeInto(ef, 200, 4, other, nil)
	if err != nil {
		t.Fatal(err)
	}
	foreign := &fw[0]
	foreignBuf := foreign.buf
	pool.Put(foreign)
	if foreign.buf != nil {
		t.Fatal("foreign Put did not detach the packet")
	}
	for i := 0; i < 64; i++ {
		if pool.get(1) == foreignBuf {
			t.Fatal("foreign buffer entered the wrong pool")
		}
	}

	// Pool-less buffers have no owner: Put anywhere detaches only.
	nw, err := PacketizeInto(ef, 200, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb := nw[0].buf
	pool.Put(&nw[0])
	for i := 0; i < 64; i++ {
		if pool.get(1) == nb {
			t.Fatal("pool-less buffer entered a pool")
		}
	}
}

// TestWirePacketRetain pins the sanctioned-retain path: Retain detaches
// the buffer (a later Put is a no-op), the payload stays valid, and the
// buffer never rejoins the pool.
func TestWirePacketRetain(t *testing.T) {
	ef := testFrames(t)[0]
	pool := NewBufPool()
	wps, err := PacketizeInto(ef, 200, 4, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	wp := &wps[0]
	retained := wp.buf
	payload := append([]byte(nil), wp.Payload...)
	wp.Retain()
	if wp.buf != nil {
		t.Fatal("Retain did not detach the buffer")
	}
	if !bytes.Equal(wp.Payload, payload) {
		t.Fatal("Retain invalidated the payload")
	}
	pool.Put(wp) // must be a no-op after Retain
	if !bytes.Equal(wp.Payload, payload) {
		t.Fatal("Put after Retain invalidated the payload")
	}
	for i := 0; i < 64; i++ {
		if pool.get(1) == retained {
			t.Fatal("retained buffer rejoined the pool")
		}
	}
	var nilWP *WirePacket
	nilWP.Retain() // must not panic
}
