package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func relNear(a, b, rel float64) bool {
	if b == 0 {
		return math.Abs(a) < rel
	}
	return math.Abs(a-b) <= rel*math.Abs(b)
}

func TestPHExponentialMoments(t *testing.T) {
	p := PHExponential(4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !near(p.Mean(), 0.25, 1e-12) {
		t.Fatalf("mean = %v", p.Mean())
	}
	if !near(p.Variance(), 1.0/16, 1e-12) {
		t.Fatalf("var = %v", p.Variance())
	}
	// LST of Exp(r) is r/(r+s).
	if !near(p.LST(2), 4.0/6, 1e-12) {
		t.Fatalf("LST = %v", p.LST(2))
	}
}

func TestPHErlangMoments(t *testing.T) {
	p := PHErlang(5, 2.0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !near(p.Mean(), 2.0, 1e-10) {
		t.Fatalf("mean = %v", p.Mean())
	}
	// Var of Erlang(k) with mean m is m^2/k.
	if !near(p.Variance(), 4.0/5, 1e-10) {
		t.Fatalf("var = %v", p.Variance())
	}
}

func TestPHZero(t *testing.T) {
	p := PHZero()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Mean() != 0 || p.LST(3) != 1 {
		t.Fatalf("zero distribution misbehaves: mean=%v lst=%v", p.Mean(), p.LST(3))
	}
}

func TestPHFit2MomentMatchesTargets(t *testing.T) {
	cases := []struct{ mean, cv2 float64 }{
		{1.0, 0.05}, {1.0, 0.3}, {2.5, 0.7}, {0.01, 0.5},
		{1.0, 1.0}, {1.0, 2.5}, {3.0, 8.0},
	}
	for _, c := range cases {
		variance := c.cv2 * c.mean * c.mean
		p := PHFit2Moment(c.mean, variance, 0)
		if err := p.Validate(); err != nil {
			t.Fatalf("cv2=%v: %v", c.cv2, err)
		}
		if !relNear(p.Mean(), c.mean, 1e-9) {
			t.Fatalf("cv2=%v: mean=%v want %v", c.cv2, p.Mean(), c.mean)
		}
		if c.cv2 >= 1.0/float64(DefaultMaxErlangOrder) && !relNear(p.Variance(), variance, 1e-6) {
			t.Fatalf("cv2=%v: var=%v want %v", c.cv2, p.Variance(), variance)
		}
	}
}

func TestPHFit2MomentDeterministic(t *testing.T) {
	p := PHFit2Moment(3, 0, 32)
	if !relNear(p.Mean(), 3, 1e-9) {
		t.Fatalf("mean = %v", p.Mean())
	}
	// Erlang(32) is the closest representable: var = mean^2/32.
	if !relNear(p.Variance(), 9.0/32, 1e-9) {
		t.Fatalf("var = %v", p.Variance())
	}
}

func TestMixtureMoments(t *testing.T) {
	a := PHExponential(1) // mean 1, E[X^2]=2
	b := PHErlang(4, 3)   // mean 3, var 9/4, E[X^2]=9+9/4
	mix := Mixture([]float64{0.25, 0.75}, []PH{a, b})
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	wantMean := 0.25*1 + 0.75*3
	if !near(mix.Mean(), wantMean, 1e-10) {
		t.Fatalf("mean = %v want %v", mix.Mean(), wantMean)
	}
	wantM2 := 0.25*2 + 0.75*(9+9.0/4)
	if !near(mix.Moment(2), wantM2, 1e-9) {
		t.Fatalf("m2 = %v want %v", mix.Moment(2), wantM2)
	}
}

func TestConvolveMoments(t *testing.T) {
	a := PHExponential(2)
	b := PHErlang(3, 1.5)
	c := Convolve(a, b)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !near(c.Mean(), 0.5+1.5, 1e-10) {
		t.Fatalf("mean = %v", c.Mean())
	}
	wantVar := 0.25 + 1.5*1.5/3
	if !near(c.Variance(), wantVar, 1e-9) {
		t.Fatalf("var = %v want %v", c.Variance(), wantVar)
	}
	// LST multiplies under convolution.
	s := 1.7
	if !near(c.LST(s), a.LST(s)*b.LST(s), 1e-10) {
		t.Fatalf("LST(conv) = %v want %v", c.LST(s), a.LST(s)*b.LST(s))
	}
}

func TestConvolveWithAtom(t *testing.T) {
	// Backoff-like: zero w.p. 0.8, else Exp(5).
	b := PHExponential(5)
	b.Alpha[0] = 0.2
	b.Mass0 = 0.8
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !near(b.Mean(), 0.2/5, 1e-12) {
		t.Fatalf("atom mean = %v", b.Mean())
	}
	c := Convolve(b, PHErlang(2, 1))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !near(c.Mean(), 0.04+1, 1e-10) {
		t.Fatalf("conv mean = %v", c.Mean())
	}
	if c.Mass0 != 0 {
		t.Fatalf("conv with positive part should have no atom, got %v", c.Mass0)
	}
}

func TestCompressRemovesDeadPhases(t *testing.T) {
	mix := Mixture([]float64{1, 0}, []PH{PHExponential(1), PHErlang(10, 2)})
	compressed := mix.Compress()
	if compressed.Dim() != 1 {
		t.Fatalf("dim = %d want 1", compressed.Dim())
	}
	if !near(compressed.Mean(), 1, 1e-12) {
		t.Fatalf("mean changed: %v", compressed.Mean())
	}
}

func TestCompressPreservesMoments(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		comps := []PH{
			PHErlang(1+r.Intn(5), 0.1+r.Float64()),
			PHExponential(0.5 + r.Float64()),
			PHZero(),
		}
		w := []float64{r.Float64(), r.Float64(), 0}
		sum := w[0] + w[1]
		w[0], w[1] = w[0]/sum, w[1]/sum
		mix := Mixture(w, comps)
		c := mix.Compress()
		return relNear(c.Mean(), mix.Mean(), 1e-9) &&
			relNear(c.Moment(2), mix.Moment(2), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPHSampleMatchesMean(t *testing.T) {
	rng := stats.NewRNG(11)
	p := Convolve(PHErlang(3, 2), PHExponential(4))
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	m := sum / float64(n)
	if !relNear(m, p.Mean(), 0.02) {
		t.Fatalf("sample mean %v vs analytic %v", m, p.Mean())
	}
}

func TestPHSampleAtom(t *testing.T) {
	rng := stats.NewRNG(3)
	b := PHExponential(5)
	b.Alpha[0] = 0.3
	b.Mass0 = 0.7
	zeros := 0
	n := 20000
	for i := 0; i < n; i++ {
		if b.Sample(rng) == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(n)
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("atom frequency %v want 0.7", frac)
	}
}

func TestPHLSTAtZeroIsOne(t *testing.T) {
	p := Mixture([]float64{0.5, 0.5}, []PH{PHErlang(4, 1), PHExponential(2)})
	if !near(p.LST(0), 1, 1e-10) {
		t.Fatalf("LST(0) = %v", p.LST(0))
	}
}

func TestPHLSTMatchesMomentExpansion(t *testing.T) {
	// -d/ds LST at 0 ≈ mean (finite difference).
	p := PHErlang(6, 2.4)
	h := 1e-6
	numMean := (1 - p.LST(h)) / h
	if !relNear(numMean, p.Mean(), 1e-4) {
		t.Fatalf("numeric mean %v vs %v", numMean, p.Mean())
	}
}
