package analytic

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// QueueResult holds the stationary performance metrics of the sender queue
// under one encryption policy, the analytical counterparts of the
// measurements in Figs. 7-8.
type QueueResult struct {
	Rho          float64 // traffic intensity lambda * E[S]
	MeanWait     float64 // E[W]: mean time in queue before service (Eq. 19)
	MeanSojourn  float64 // E[W] + E[S]: queue entry to transmission complete
	MeanService  float64 // E[S]
	MeanQueueLen float64 // E[Lq]: mean number waiting
	MeanInSystem float64 // E[L]
	VarInSystem  float64 // Var[L]: queue-length variance (jitter indicator)
	PBusy        float64 // P{server busy}
	// TailDecay is the geometric decay rate of the queue-length tail,
	// the spectral radius of the R matrix: P{L >= k} ~ C * TailDecay^k.
	// A playout buffer sized for k levels misses with roughly this
	// geometric probability.
	TailDecay  float64
	Phases     int // QBD phase count (diagnostics)
	Iterations int // logarithmic-reduction iterations (diagnostics)
}

// ErrUnstable is returned when the offered load is at or beyond capacity.
var ErrUnstable = errors.New("analytic: queue unstable (rho >= 1)")

// SolveQueue computes the stationary mean delay of the 2-MMPP/G/1 sender
// queue of Section 4.2 for the given arrival process and service
// parameters. The service distribution is represented as a phase-type fit
// (exact in its first two moments per component) and the resulting
// MMPP/PH/1 queue is solved exactly with the logarithmic-reduction
// matrix-geometric method. This is the same quantity the numerical
// procedure of [18]/[16] behind Eq. (19) computes; in the Poisson limit
// (Lambda1 = Lambda2) it reduces to Pollaczek-Khinchine, which the tests
// assert.
func SolveQueue(arrival MMPP2, service ServiceParams) (QueueResult, error) {
	if err := arrival.Validate(); err != nil {
		return QueueResult{}, err
	}
	if err := service.Validate(); err != nil {
		return QueueResult{}, err
	}
	m1, _ := service.Moments()
	lambda := arrival.MeanRate()
	rho := lambda * m1
	if rho >= 1 {
		return QueueResult{Rho: rho}, fmt.Errorf("%w: rho=%.4f", ErrUnstable, rho)
	}
	ph := service.PH()
	if ph.Mass0 > 1e-12 {
		return QueueResult{}, fmt.Errorf("analytic: service time has an atom at zero (%.3g); transmission must take positive time", ph.Mass0)
	}
	return solveMAPPH1(arrival.D0(), arrival.D1(), ph, lambda, m1, rho)
}

// solveMAPPH1 solves the MAP/PH/1 queue with arrival MAP (d0, d1) and
// service PH (beta, S). Levels count customers in system; the phase within
// a level ≥ 1 is (arrival phase) x (service phase).
func solveMAPPH1(d0, d1 *stats.Matrix, ph PH, lambda, meanService, rho float64) (QueueResult, error) {
	ma := d0.Rows  // arrival phases
	ms := ph.Dim() // service phases
	n := ma * ms   // QBD phase count per level
	idx := func(a, s int) int { return a*ms + s }

	exit := ph.ExitVector()

	// A0: arrival (level up), phase (a,s) -> (a',s): D1 ⊗ I.
	a0 := stats.NewMatrix(n, n)
	// A1: local transitions: D0 ⊗ I + I ⊗ S.
	a1 := stats.NewMatrix(n, n)
	// A2: service completion (level down), restart service: I ⊗ (s* beta).
	a2 := stats.NewMatrix(n, n)
	for a := 0; a < ma; a++ {
		for s := 0; s < ms; s++ {
			row := idx(a, s)
			for a2i := 0; a2i < ma; a2i++ {
				a0.Set(row, idx(a2i, s), d1.At(a, a2i))
				a1.Set(row, idx(a2i, s), a1.At(row, idx(a2i, s))+d0.At(a, a2i))
			}
			for s2 := 0; s2 < ms; s2++ {
				a1.Set(row, idx(a, s2), a1.At(row, idx(a, s2))+ph.S.At(s, s2))
				a2.Set(row, idx(a, s2), exit[s]*ph.Alpha[s2])
			}
		}
	}

	g, iters, err := logarithmicReductionG(a0, a1, a2)
	if err != nil {
		return QueueResult{}, err
	}
	// R = A0 * (-(A1 + A0*G))^{-1}.
	u := a1.Add(a0.Mul(g)).Scale(-1)
	uinv, err := u.Inverse()
	if err != nil {
		return QueueResult{}, fmt.Errorf("analytic: QBD U matrix singular: %w", err)
	}
	r := a0.Mul(uinv)

	// Boundary: level 0 has only the arrival phases (idle server).
	// B00 = D0 (ma x ma), B01 = D1 ⊗ beta (ma x n), B10 = I ⊗ s* (n x ma).
	b01 := stats.NewMatrix(ma, n)
	for a := 0; a < ma; a++ {
		for a2i := 0; a2i < ma; a2i++ {
			for s := 0; s < ms; s++ {
				b01.Set(a, idx(a2i, s), d1.At(a, a2i)*ph.Alpha[s])
			}
		}
	}
	b10 := stats.NewMatrix(n, ma)
	for a := 0; a < ma; a++ {
		for s := 0; s < ms; s++ {
			b10.Set(idx(a, s), a, exit[s])
		}
	}
	// Note: with a defective service start (sum beta < 1) a completed
	// service could instantly complete the next one; SolveQueue rejects
	// that case up front (Mass0 must be 0).

	// Assemble the boundary generator for z = [x0, x1]:
	//   x0 B00 + x1 B10 = 0
	//   x0 B01 + x1 (A1 + R A2) = 0
	dim := ma + n
	mboundary := stats.NewMatrix(dim, dim)
	for i := 0; i < ma; i++ {
		for j := 0; j < ma; j++ {
			mboundary.Set(i, j, d0.At(i, j))
		}
		for j := 0; j < n; j++ {
			mboundary.Set(i, ma+j, b01.At(i, j))
		}
	}
	a1ra2 := a1.Add(r.Mul(a2))
	for i := 0; i < n; i++ {
		for j := 0; j < ma; j++ {
			mboundary.Set(ma+i, j, b10.At(i, j))
		}
		for j := 0; j < n; j++ {
			mboundary.Set(ma+i, ma+j, a1ra2.At(i, j))
		}
	}
	// Solve z M = 0 with normalisation z * w = 1 where
	// w = [e ; (I-R)^{-1} e].
	iMinusR := stats.Identity(n).Sub(r)
	iMinusRInv, err := iMinusR.Inverse()
	if err != nil {
		return QueueResult{}, fmt.Errorf("analytic: (I-R) singular: %w", err)
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	geom := iMinusRInv.MulVec(ones) // (I-R)^{-1} e
	// Transpose system: M^T z^T = 0; replace last equation by the
	// normalisation.
	sys := mboundary.Transpose()
	rhs := make([]float64, dim)
	for j := 0; j < ma; j++ {
		sys.Set(dim-1, j, 1)
	}
	for j := 0; j < n; j++ {
		sys.Set(dim-1, ma+j, geom[j])
	}
	rhs[dim-1] = 1
	z, err := sys.Solve(rhs)
	if err != nil {
		return QueueResult{}, fmt.Errorf("analytic: boundary solve failed: %w", err)
	}
	x1 := z[ma:]

	// E[L] = sum_{k>=1} k x_k e = x1 (I-R)^{-2} e,
	// E[Lq] = sum_{k>=1} (k-1) x_k e = E[L] - x1 (I-R)^{-1} e,
	// E[L^2] = sum_{k>=1} k^2 x_k e = x1 (I+R)(I-R)^{-3} e.
	geom2 := iMinusRInv.MulVec(geom)  // (I-R)^{-2} e
	geom3 := iMinusRInv.MulVec(geom2) // (I-R)^{-3} e
	iPlusR3 := stats.Identity(n).Add(r).MulVec(geom3)
	var meanL, meanL2, busy float64
	for i, v := range x1 {
		meanL += v * geom2[i]
		meanL2 += v * iPlusR3[i]
		busy += v * geom[i]
	}
	meanLq := meanL - busy
	if meanLq < 0 && meanLq > -1e-9 {
		meanLq = 0
	}
	res := QueueResult{
		Rho:          rho,
		MeanService:  meanService,
		MeanQueueLen: meanLq,
		MeanInSystem: meanL,
		VarInSystem:  meanL2 - meanL*meanL,
		PBusy:        busy,
		TailDecay:    spectralRadius(r),
		MeanWait:     meanLq / lambda,
		Phases:       n,
		Iterations:   iters,
	}
	res.MeanSojourn = res.MeanWait + meanService
	return res, nil
}

// logarithmicReductionG computes the minimal non-negative solution G of
// A0 + A1 G + A2 G^2 ... specifically the QBD first-passage matrix G
// solving A2 + A1 G + A0 G^2 = 0, via the Latouche-Ramaswami logarithmic
// reduction algorithm (quadratic convergence).
func logarithmicReductionG(a0, a1, a2 *stats.Matrix) (*stats.Matrix, int, error) {
	n := a1.Rows
	negA1inv, err := a1.Scale(-1).Inverse()
	if err != nil {
		return nil, 0, fmt.Errorf("analytic: A1 singular: %w", err)
	}
	h := negA1inv.Mul(a0) // up
	l := negA1inv.Mul(a2) // down
	g := l.Clone()
	t := h.Clone()
	const maxIter = 96
	prevWorst := math.Inf(1)
	stalled := 0
	for iter := 1; iter <= maxIter; iter++ {
		u := h.Mul(l).Add(l.Mul(h))
		m := h.Mul(h)
		iu := stats.Identity(n).Sub(u)
		iuInv, err := iu.Inverse()
		if err != nil {
			return nil, iter, fmt.Errorf("analytic: logarithmic reduction singular at iter %d: %w", iter, err)
		}
		h = iuInv.Mul(m)
		m = l.Mul(l)
		l = iuInv.Mul(m)
		g = g.Add(t.Mul(l))
		t = t.Mul(h)
		// Convergence: G row sums approach 1 (positive-recurrent case).
		var worst float64
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += g.At(i, j)
			}
			if d := math.Abs(1 - s); d > worst {
				worst = d
			}
		}
		if worst < 1e-11 {
			return g, iter, nil
		}
		// On widely separated time scales the row-sum residual can
		// stagnate just above the tight tolerance from floating-point
		// round-off while G itself is fully converged; accept a stalled
		// residual once it is far below any modelling error.
		if worst >= prevWorst*0.5 {
			stalled++
			if stalled >= 3 && worst < 1e-7 {
				return g, iter, nil
			}
		} else {
			stalled = 0
		}
		prevWorst = worst
	}
	return nil, maxIter, errors.New("analytic: logarithmic reduction did not converge")
}

// spectralRadius estimates the dominant eigenvalue of a non-negative
// matrix by power iteration (the R matrix of a stable QBD has spectral
// radius in [0, 1)).
func spectralRadius(m *stats.Matrix) float64 {
	n := m.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	radius := 0.0
	for iter := 0; iter < 200; iter++ {
		w := m.MulVec(v)
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if stats.NearZero(norm) {
			return 0
		}
		for i := range w {
			w[i] /= norm
		}
		// Rayleigh quotient.
		mv := m.MulVec(w)
		var num, den float64
		for i := range w {
			num += w[i] * mv[i]
			den += w[i] * w[i]
		}
		next := num / den
		if math.Abs(next-radius) < 1e-12 {
			return next
		}
		radius = next
		v = w
	}
	return radius
}

// MGOneWait returns the Pollaczek-Khinchine mean waiting time of an M/G/1
// queue with arrival rate lambda and service moments (m1, m2):
// E[W] = lambda*m2 / (2(1-rho)). It is the degenerate-MMPP reference used
// in validation tests.
func MGOneWait(lambda, m1, m2 float64) (float64, error) {
	rho := lambda * m1
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return lambda * m2 / (2 * (1 - rho)), nil
}
