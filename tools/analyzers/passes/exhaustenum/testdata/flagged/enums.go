// Flagged shapes: switches over module-local enums that miss members
// without stating a default.
package enumfix

// FrameType mirrors the codec's frame classes.
type FrameType int

const (
	IFrame FrameType = iota
	PFrame
	BFrame
)

// Mode mirrors the vcrypt encryption ladder.
type Mode string

const (
	ModeNone Mode = "none"
	ModeI    Mode = "i"
	ModeAll  Mode = "all"
)

func frameName(t FrameType) string {
	switch t { // want `switch over enumfix\.FrameType is not exhaustive: missing BFrame`
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	}
	return "?"
}

func modeCost(m Mode) int {
	switch m { // want `switch over enumfix\.Mode is not exhaustive: missing ModeAll, ModeI`
	case ModeNone:
		return 0
	}
	return 1
}
