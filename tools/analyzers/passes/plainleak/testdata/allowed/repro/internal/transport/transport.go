// Package transport holds the sanctioned shapes: encryption before the
// write, explicit policy decisions on every plaintext path, and one
// documented suppression. The pass must stay silent on all of them.
package transport

import (
	"net"

	"repro/internal/codec"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
)

// SendEncrypted is the canonical correct path: every payload passes
// through the cipher before the socket.
func SendEncrypted(conn net.Conn, c *vcrypt.Cipher, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for i, p := range pkts {
		c.EncryptPacket(uint64(i), p.Payload)
		if _, err := conn.Write(p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// SendSelective is the paper's I-frame-only ladder: the selector
// blesses the plaintext arm, the cipher covers the other.
func SendSelective(conn net.Conn, c *vcrypt.Cipher, sel *vcrypt.Selector, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for i, p := range pkts {
		if sel.ShouldEncrypt(p.Type == codec.IFrame) {
			c.EncryptPacket(uint64(i), p.Payload)
		}
		if _, err := conn.Write(p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// SendDowngraded walks the downgrade ladder correctly: when the policy
// lands on ModeNone the plaintext send is an explicit decision, every
// other mode encrypts first.
func SendDowngraded(conn net.Conn, c *vcrypt.Cipher, pol vcrypt.Policy, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for i, p := range pkts {
		if pol.Mode == vcrypt.ModeNone {
			if _, err := conn.Write(p.Payload); err != nil {
				return err
			}
			continue
		}
		c.EncryptPacket(uint64(i), p.Payload)
		if _, err := conn.Write(p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// SendHeaderOnly writes a locally built header in the clear — headers
// carry no payload bytes — then the encrypted body.
func SendHeaderOnly(conn net.Conn, c *vcrypt.Cipher, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for i, p := range pkts {
		hdr := []byte{0x80, byte(i)}
		if _, err := conn.Write(hdr); err != nil {
			return err
		}
		c.EncryptPacket(uint64(i), p.Payload)
		if _, err := conn.Write(p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// Forward relays a packet whose header records the encryption
// decision: the Encrypted guard blesses the plaintext branch, and the
// ciphertext branch runs the payload through the cipher before the
// wire.
func Forward(conn net.Conn, c *vcrypt.Cipher, pkt rtp.Packet, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	pkt.Payload = pkts[0].Payload
	if !pkt.Encrypted() {
		// The wire header says this packet travels in the clear: the
		// policy decision was made upstream and recorded on the packet.
		_, err := conn.Write(pkt.Payload)
		return err
	}
	c.EncryptPacket(0, pkt.Payload)
	_, err = conn.Write(pkt.Payload)
	return err
}

// Replay retransmits captured plaintext on purpose; the suppression
// documents why this is not a leak.
func Replay(conn net.Conn, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	//lint:allow plainleak lab replay tool retransmits captured plaintext by design; no user payload involved
	_, err = conn.Write(pkts[0].Payload)
	return err
}

// SendZeroCopy is the zero-copy hot path: the protocol header is
// written into the wire buffer's headroom, the payload region is
// encrypted in place, and the single buffer reaches the socket.
func SendZeroCopy(conn net.Conn, c *vcrypt.Cipher, frame []byte) error {
	wps, err := codec.PacketizeInto(frame, 1200, 2)
	if err != nil {
		return err
	}
	for i := range wps {
		pkt := &wps[i]
		out := pkt.Wire(len(pkt.Payload))
		out[0], out[1] = 0x80, byte(i)
		c.EncryptPacket(uint64(i), out[2:])
		if _, err := conn.Write(out); err != nil {
			return err
		}
	}
	return nil
}

// SendBatch encrypts a whole frame's payloads with one batch call
// before any of them reaches the wire.
func SendBatch(conn net.Conn, c *vcrypt.Cipher, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	payloads := make([][]byte, 0, len(pkts))
	for _, p := range pkts {
		payloads = append(payloads, p.Payload)
	}
	c.EncryptPackets(0, payloads)
	for _, p := range payloads {
		if _, err := conn.Write(p); err != nil {
			return err
		}
	}
	return nil
}
