package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// With zero variances the Gaussian-variation transforms (Eqs. 17-18) must
// collapse to the constant-time special cases of Eqs. (12) and (14).
func TestLSTConstantSpecialCases(t *testing.T) {
	sp := ServiceParams{
		PI:   0.3,
		EncI: 0.8, EncP: 0.8, // the paper's class-independent q
		EncMeanI: 1.2e-3,
		EncMeanP: 0.5e-3,
		TxMeanI:  2.0e-3,
		TxMeanP:  0.8e-3,
		PS:       1,
	}
	q := 0.8
	for _, s := range []float64{0, 5, 50, 400} {
		// Eq. (12): He(s) = q pI e^{-s uI} + q(1-pI) e^{-s uP} + (1-q).
		wantE := q*sp.PI*math.Exp(-s*sp.EncMeanI) +
			q*(1-sp.PI)*math.Exp(-s*sp.EncMeanP) + (1 - q)
		if !relNear(sp.lstEnc(s), wantE, 1e-12) {
			t.Fatalf("He(%v) = %v want %v", s, sp.lstEnc(s), wantE)
		}
		// Eq. (14): Ht(s) = pI e^{-s uI} + (1-pI) e^{-s uP}.
		wantT := sp.PI*math.Exp(-s*sp.TxMeanI) + (1-sp.PI)*math.Exp(-s*sp.TxMeanP)
		if !relNear(sp.lstTx(s), wantT, 1e-12) {
			t.Fatalf("Ht(%v) = %v want %v", s, sp.lstTx(s), wantT)
		}
		// Eq. (10): the product form.
		if !relNear(sp.LST(s), wantE*wantT, 1e-12) {
			t.Fatalf("H(%v) product form violated", s)
		}
	}
}

// Eq. (7): the backoff transform has the closed form ps(lb+s)/(s+ps*lb),
// equal to the mixture "0 w.p. ps else Exp(ps*lb)".
func TestLSTBackoffClosedForm(t *testing.T) {
	sp := ServiceParams{PI: 0, TxMeanI: 1e-3, TxMeanP: 1e-3, PS: 0.85, LambdaB: 1000}
	for _, s := range []float64{0, 10, 100, 800} {
		want := sp.PS*1 + (1-sp.PS)*(sp.PS*sp.LambdaB)/(sp.PS*sp.LambdaB+s)
		if !relNear(sp.lstBackoff(s), want, 1e-12) {
			t.Fatalf("Hb(%v) = %v want %v", s, sp.lstBackoff(s), want)
		}
	}
	// The condition s < ps*lambdaB of Eq. (7) guards the two-sided
	// transform; for the right half-plane evaluation used here the form
	// stays finite and in (0, 1].
	if v := sp.lstBackoff(5000); v <= 0 || v > 1 {
		t.Fatalf("Hb out of range: %v", v)
	}
}

// LSTs are completely monotone; at minimum they must be decreasing in s.
func TestLSTMonotonicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		sp := ServiceParams{
			PI:   r.Float64(),
			EncI: r.Float64(), EncP: r.Float64(),
			EncMeanI: 0.5e-3 + r.Float64()*2e-3, EncSigmaI: r.Float64() * 0.2e-3,
			EncMeanP: 0.2e-3 + r.Float64()*1e-3, EncSigmaP: r.Float64() * 0.1e-3,
			TxMeanI: 1e-3 + r.Float64()*2e-3, TxSigmaI: r.Float64() * 0.2e-3,
			TxMeanP: 0.5e-3 + r.Float64()*1e-3, TxSigmaP: r.Float64() * 0.1e-3,
			PS: 0.8 + r.Float64()*0.2, LambdaB: 500 + r.Float64()*1000,
		}
		prev := sp.LST(0)
		if math.Abs(prev-1) > 1e-9 {
			return false
		}
		for s := 10.0; s <= 200; s += 10 {
			v := sp.LST(s)
			if v > prev+1e-12 || v < 0 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FrameSuccess must be non-decreasing in pd and non-increasing in s for
// any (n, s) pair.
func TestFrameSuccessMonotonicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 1 + r.Intn(12)
		s := r.Intn(n)
		prev := -1.0
		for pd := 0.0; pd <= 1.0001; pd += 0.05 {
			v := FrameSuccess(pd, n, s)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The intra-GOP ramp must stay within [dmin/G, dmax] for any valid setup.
func TestIntraGOPDistortionBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		g := 3 + r.Intn(60)
		dmin := r.Float64() * 100
		dmax := dmin + r.Float64()*1000
		for i := 1; i <= g-1; i++ {
			d := IntraGOPDistortion(i, g, dmin, dmax)
			if d < dmin/float64(g)-1e-9 || d > dmax+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
