package analytic

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestMMPPStationary(t *testing.T) {
	m := MMPP2{P1: 2, P2: 3, Lambda1: 100, Lambda2: 10}
	pi := m.Stationary()
	if !near(pi[0], 0.6, 1e-12) || !near(pi[1], 0.4, 1e-12) {
		t.Fatalf("pi = %v", pi)
	}
	if !near(m.MeanRate(), 0.6*100+0.4*10, 1e-12) {
		t.Fatalf("mean rate = %v", m.MeanRate())
	}
}

func TestMMPPValidate(t *testing.T) {
	if err := (MMPP2{P1: 1, P2: 1, Lambda1: 1, Lambda2: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MMPP2{
		{P1: 0, P2: 1, Lambda1: 1, Lambda2: 1},
		{P1: 1, P2: -1, Lambda1: 1, Lambda2: 1},
		{P1: 1, P2: 1, Lambda1: -1, Lambda2: 1},
		{P1: 1, P2: 1, Lambda1: 0, Lambda2: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestMMPPGeneratorRowSums(t *testing.T) {
	m := MMPP2{P1: 2.5, P2: 0.5, Lambda1: 9, Lambda2: 1}
	g := m.Generator()
	for i := 0; i < 2; i++ {
		if s := g.At(i, 0) + g.At(i, 1); !near(s, 0, 1e-12) {
			t.Fatalf("generator row %d sums to %v", i, s)
		}
	}
	// D0 + D1 must equal the generator.
	d := m.D0().Add(m.D1())
	if d.MaxAbsDiff(g) > 1e-12 {
		t.Fatal("D0 + D1 != R")
	}
}

func TestMMPPIFrameFraction(t *testing.T) {
	m := MMPP2{P1: 10, P2: 10, Lambda1: 900, Lambda2: 100}
	// Equal state occupancy; arrivals weighted 9:1.
	if f := m.IFramePacketFraction(); !near(f, 0.9, 1e-12) {
		t.Fatalf("pI = %v", f)
	}
}

func TestMMPPSampleRate(t *testing.T) {
	m := MMPP2{P1: 5, P2: 5, Lambda1: 200, Lambda2: 50}
	rng := stats.NewRNG(77)
	dur := 400.0
	samples := m.Sample(rng, dur)
	rate := float64(len(samples)) / dur
	if !relNear(rate, m.MeanRate(), 0.05) {
		t.Fatalf("sampled rate %v vs %v", rate, m.MeanRate())
	}
}

func TestFitMMPPRecovers(t *testing.T) {
	truth := MMPP2{P1: 30, P2: 6, Lambda1: 2000, Lambda2: 60}
	rng := stats.NewRNG(42)
	samples := truth.Sample(rng, 600)
	if len(samples) < 1000 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	got, err := FitMMPP2(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The run-based estimator is biased (runs end at the first
	// opposite-class packet, not at the hidden state switch), so allow a
	// generous tolerance; what matters downstream is the overall rate and
	// the I-fraction.
	if !relNear(got.MeanRate(), truth.MeanRate(), 0.25) {
		t.Fatalf("fitted mean rate %v vs %v", got.MeanRate(), truth.MeanRate())
	}
	if math.Abs(got.IFramePacketFraction()-truth.IFramePacketFraction()) > 0.15 {
		t.Fatalf("fitted pI %v vs %v", got.IFramePacketFraction(), truth.IFramePacketFraction())
	}
	if got.Lambda1 < got.Lambda2 {
		t.Fatal("fit should keep state 1 the fast (I-frame) state")
	}
}

func TestFitMMPPErrors(t *testing.T) {
	if _, err := FitMMPP2(nil); err == nil {
		t.Fatal("empty input should fail")
	}
	// Out-of-order timestamps.
	bad := []ArrivalSample{
		{0, true}, {1, true}, {0.5, false}, {2, false},
		{3, true}, {4, false}, {5, true}, {6, false},
	}
	if _, err := FitMMPP2(bad); err == nil {
		t.Fatal("out-of-order input should fail")
	}
	// Single-class input.
	var single []ArrivalSample
	for i := 0; i < 20; i++ {
		single = append(single, ArrivalSample{Time: float64(i), IFrame: true})
	}
	if _, err := FitMMPP2(single); err == nil {
		t.Fatal("single-class input should fail")
	}
}
