package wifi

import "fmt"

// PHY captures the 802.11g OFDM timing constants (ERP-OFDM, long
// preamble-compatible mode disabled: pure 802.11g timing).
type PHY struct {
	Name          string
	SlotTime      float64 // seconds
	SIFS          float64
	DIFS          float64
	PreambleTime  float64 // PLCP preamble + header
	SymbolTime    float64 // OFDM symbol duration
	BitsPerSymbol map[Rate]int
}

// Rate is an 802.11g OFDM data rate in Mb/s.
type Rate int

// Supported 802.11g rates.
const (
	Rate6  Rate = 6
	Rate9  Rate = 9
	Rate12 Rate = 12
	Rate18 Rate = 18
	Rate24 Rate = 24
	Rate36 Rate = 36
	Rate48 Rate = 48
	Rate54 Rate = 54
)

// PHY80211g returns the ERP-OFDM timing of IEEE 802.11g, the network used
// in the paper's experiments (Section 6.1).
func PHY80211g() PHY {
	return PHY{
		Name:         "802.11g",
		SlotTime:     9e-6,
		SIFS:         10e-6,
		DIFS:         28e-6, // SIFS + 2*slot
		PreambleTime: 20e-6, // PLCP preamble (16us) + SIGNAL (4us)
		SymbolTime:   4e-6,
		BitsPerSymbol: map[Rate]int{
			Rate6: 24, Rate9: 36, Rate12: 48, Rate18: 72,
			Rate24: 96, Rate36: 144, Rate48: 192, Rate54: 216,
		},
	}
}

// MACOverheadBytes is the 802.11 MAC header + FCS (3-address data frame).
const MACOverheadBytes = 28

// IPUDPRTPOverheadBytes is the IP + UDP + RTP header overhead carried in
// every video packet.
const IPUDPRTPOverheadBytes = 20 + 8 + 12

// ServiceBits is the OFDM SERVICE (16 bits) + tail (6 bits) overhead per
// PPDU.
const ServiceBits = 22

// FrameAirtime returns the time to put one MAC-layer frame with the given
// payload (bytes above the MAC, e.g. IP packet) on the air at the given
// rate, including PLCP preamble and OFDM symbol rounding. It does not
// include DIFS/backoff/ACK: those are accounted separately (backoff through
// the queue model's Tb, the rest through TxOverhead).
func (p PHY) FrameAirtime(payloadBytes int, rate Rate) (float64, error) {
	bps, ok := p.BitsPerSymbol[rate]
	if !ok {
		return 0, fmt.Errorf("wifi: unsupported rate %d", rate)
	}
	if payloadBytes < 0 {
		return 0, fmt.Errorf("wifi: negative payload %d", payloadBytes)
	}
	bits := 8*(payloadBytes+MACOverheadBytes) + ServiceBits
	symbols := (bits + bps - 1) / bps
	return p.PreambleTime + float64(symbols)*p.SymbolTime, nil
}

// ACKAirtime returns the airtime of a MAC ACK (14 bytes) at the basic
// rate.
func (p PHY) ACKAirtime(rate Rate) float64 {
	bits := 8*14 + ServiceBits
	bps := p.BitsPerSymbol[rate]
	if bps == 0 {
		bps = p.BitsPerSymbol[Rate6]
	}
	symbols := (bits + bps - 1) / bps
	return p.PreambleTime + float64(symbols)*p.SymbolTime
}

// PacketTxTime returns the full per-packet channel occupancy for a video
// packet with the given application payload: frame airtime + SIFS + ACK +
// DIFS. This is the transmission-time component Tt of Eq. (3); its
// distribution across the I/P packet-size classes is what Eqs. (13)/(16)
// capture.
func (p PHY) PacketTxTime(appPayloadBytes int, rate Rate) (float64, error) {
	air, err := p.FrameAirtime(appPayloadBytes+IPUDPRTPOverheadBytes, rate)
	if err != nil {
		return 0, err
	}
	return air + p.SIFS + p.ACKAirtime(Rate24) + p.DIFS, nil
}
