// Command thriftyvid is the reproduction's end-to-end tool: generate
// synthetic clips, encode them into the codec's container, calibrate the
// analytical model, plan an encryption policy (the Fig. 1 workflow), and
// move video over real sockets or the simulated WiFi testbed under any
// policy, as sender, receiver, or eavesdropper.
//
// Usage:
//
//	thriftyvid generate -out clip.yuv -motion fast -frames 120
//	thriftyvid encode   -in clip.yuv -out clip.tvid -gop 30
//	thriftyvid analyze  -in clip.tvid
//	thriftyvid plan     -in clip.tvid -device samsung -target 20
//	thriftyvid simulate -in clip.tvid -policy I -alg aes256 -device samsung
//	thriftyvid recv     -addr 127.0.0.1:5004 -in clip.tvid -key secret -nack 20ms
//	thriftyvid eavesdrop -addr 127.0.0.1:5005 -in clip.tvid
//	thriftyvid send     -in clip.tvid -rx 127.0.0.1:5004 -ev 127.0.0.1:5005 -policy I -alg aes256 -key secret -reliable
//	thriftyvid serve    -addr 127.0.0.1:8080 -in clip.tvid -key secret -metrics 127.0.0.1:9090
//	thriftyvid upload   -in clip.tvid -url http://127.0.0.1:8080/upload -key secret -deadline 30s -degrade
//	thriftyvid loadgen  -sessions 5000 -loss 0.02 -resume 0.1 -max-sessions 4000
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(args)
	case "encode":
		err = cmdEncode(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "plan":
		err = cmdPlan(args)
	case "simulate":
		err = cmdSimulate(args)
	case "send":
		err = cmdSend(args)
	case "recv":
		err = cmdRecv(args, true)
	case "eavesdrop":
		err = cmdRecv(args, false)
	case "serve":
		err = cmdServe(args)
	case "upload":
		err = cmdUpload(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "audit":
		err = cmdAudit(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "thriftyvid:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: thriftyvid <generate|encode|analyze|plan|simulate|send|recv|eavesdrop|serve|upload|loadgen|audit> [flags]
run "thriftyvid <command> -h" for command flags`)
}

func parseMotion(s string) (video.MotionLevel, error) {
	switch strings.ToLower(s) {
	case "low", "slow":
		return video.MotionLow, nil
	case "medium", "med":
		return video.MotionMedium, nil
	case "high", "fast":
		return video.MotionHigh, nil
	}
	return 0, fmt.Errorf("unknown motion level %q (want slow|medium|fast)", s)
}

func parseAlg(s string) (vcrypt.Algorithm, error) {
	switch strings.ToLower(s) {
	case "aes128":
		return vcrypt.AES128, nil
	case "aes256":
		return vcrypt.AES256, nil
	case "3des", "tripledes", "des3":
		return vcrypt.TripleDES, nil
	case "aes128-ctr", "aes128ctr", "ctr128":
		return vcrypt.AES128CTR, nil
	case "aes256-ctr", "aes256ctr", "ctr256":
		return vcrypt.AES256CTR, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want aes128|aes256|3des|aes128-ctr|aes256-ctr)", s)
}

func parsePolicy(mode string, frac float64, alg vcrypt.Algorithm) (vcrypt.Policy, error) {
	p := vcrypt.Policy{Alg: alg, FracP: frac}
	switch strings.ToLower(mode) {
	case "none":
		p.Mode = vcrypt.ModeNone
	case "all":
		p.Mode = vcrypt.ModeAll
	case "i":
		p.Mode = vcrypt.ModeIFrames
	case "p":
		p.Mode = vcrypt.ModePFrames
	case "i+p", "ifracp", "mixed":
		p.Mode = vcrypt.ModeIPlusFracP
	case "half-i", "halfi":
		p.Mode = vcrypt.ModeHalfI
	default:
		return p, fmt.Errorf("unknown policy %q (want none|I|P|all|I+P|half-I)", mode)
	}
	return p, p.Validate()
}

func parseDevice(s string) (energy.Profile, error) {
	switch strings.ToLower(s) {
	case "samsung", "s2", "galaxy":
		return energy.SamsungGalaxySII(), nil
	case "htc", "amaze":
		return energy.HTCAmaze4G(), nil
	case "modern", "armv8":
		return energy.ModernARMv8(), nil
	}
	return energy.Profile{}, fmt.Errorf("unknown device %q (want samsung|htc|modern)", s)
}

// deriveKey stretches a passphrase to the algorithm's key size.
func deriveKey(pass string, alg vcrypt.Algorithm) []byte {
	sum := sha256.Sum256([]byte("thriftyvid:" + pass))
	key := sum[:]
	for len(key) < alg.KeySize() {
		next := sha256.Sum256(key)
		key = append(key, next[:]...)
	}
	return key[:alg.KeySize()]
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "clip.yuv", "output YUV420 file")
	motion := fs.String("motion", "medium", "motion level: slow|medium|fast")
	frames := fs.Int("frames", 120, "number of frames")
	width := fs.Int("width", video.CIFWidth, "frame width")
	height := fs.Int("height", video.CIFHeight, "frame height")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)
	m, err := parseMotion(*motion)
	if err != nil {
		return err
	}
	clip := video.Generate(video.SceneConfig{W: *width, H: *height, Frames: *frames, Motion: m, Seed: *seed})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, fr := range clip {
		if err := fr.WriteYUV(f); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d %dx%d frames (%s motion) to %s\n", len(clip), *width, *height, m, *out)
	return nil
}

func readYUVClip(path string, w, h int) ([]*video.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var clip []*video.Frame
	for {
		fr, err := video.ReadYUV(f, w, h)
		if err != nil {
			break
		}
		clip = append(clip, fr)
	}
	if len(clip) == 0 {
		return nil, fmt.Errorf("no frames read from %s (check -width/-height)", path)
	}
	return clip, nil
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "clip.yuv", "input YUV420 file")
	out := fs.String("out", "clip.tvid", "output container")
	width := fs.Int("width", video.CIFWidth, "frame width")
	height := fs.Int("height", video.CIFHeight, "frame height")
	gop := fs.Int("gop", 30, "GOP size")
	workers := workersFlag(fs)
	metrics := metricsFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	clip, err := readYUVClip(*in, *width, *height)
	if err != nil {
		return err
	}
	cfg := codec.DefaultConfig(*gop)
	cfg.Width, cfg.Height = *width, *height
	cfg.Workers = resolveWorkers(*workers)
	start := time.Now()
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := codec.WriteContainer(f, cfg, encoded); err != nil {
		return err
	}
	total := 0
	for _, ef := range encoded {
		total += ef.Size()
	}
	fmt.Printf("encoded %d frames (GOP %d) -> %s: %d bytes in %v\n",
		len(encoded), *gop, *out, total, time.Since(start).Round(time.Millisecond))
	return nil
}

// workersFlag registers the shared -workers flag. The worker count only
// changes wall-clock time: macroblock rows land in the bitstream in row
// order regardless, so the output is identical at any setting.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker goroutines for macroblock rows (0 = NumCPU, 1 = serial; output is identical at any setting)")
}

// resolveWorkers maps the flag's 0 default to one worker per CPU.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// metricsFlag registers the shared -metrics flag: an address for the
// observability side listener (empty = metrics stay disabled, the
// default, so hot paths pay only an atomic load).
func metricsFlag(fs *flag.FlagSet) *string {
	return fs.String("metrics", "", "serve /metrics, /debug/vars, /debug/pprof/ and /debug/trace on this address (e.g. 127.0.0.1:9090; empty = off)")
}

// startMetrics enables recording and starts the debug listener when
// addr is non-empty; the returned func shuts it down.
func startMetrics(addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	bound, shutdown, err := obs.ServeDebug(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof/, /debug/trace)\n", bound)
	return shutdown, nil
}

func loadContainer(path string) (codec.Config, []*codec.EncodedFrame, error) {
	f, err := os.Open(path)
	if err != nil {
		return codec.Config{}, nil, err
	}
	defer f.Close()
	return codec.ReadContainer(f)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "clip.tvid", "input container")
	mtu := fs.Int("mtu", 1400, "network MTU payload")
	workers := workersFlag(fs)
	fs.Parse(args)
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	cfg.Workers = resolveWorkers(*workers)
	st, err := codec.AnalyzeClip(encoded, cfg, *mtu)
	if err != nil {
		return err
	}
	decoded, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		return err
	}
	motion := video.AnalyzeMotion(decoded)
	fmt.Printf("clip: %d frames, %dx%d, GOP %d, %s motion\n", st.Frames, cfg.Width, cfg.Height, cfg.GOPSize, motion)
	fmt.Printf("frames: %d I (mean %.0f B), %d P (mean %.0f B)\n", st.IFrames, st.MeanISize, st.PFrames, st.MeanPSize)
	fmt.Printf("packets @MTU %d: %d I + %d P, p_I = %.3f, I share of bytes = %.3f\n",
		*mtu, st.IPackets, st.PPackets, st.IFraction, st.BytesFraction)
	fmt.Printf("packets per frame: I %.1f, P %.1f\n", st.MeanPacketsPerIFrame(), st.MeanPacketsPerPFrame())
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	in := fs.String("in", "clip.tvid", "input container")
	device := fs.String("device", "samsung", "device profile: samsung|htc")
	alg := fs.String("alg", "aes256", "algorithm: aes128|aes256|3des|aes128-ctr|aes256-ctr")
	target := fs.Float64("target", 20, "maximum tolerable eavesdropper PSNR (dB)")
	fps := fs.Float64("fps", 30, "stream frame rate")
	mtu := fs.Int("mtu", 1400, "network MTU payload")
	workers := workersFlag(fs)
	fs.Parse(args)
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	cfg.Workers = resolveWorkers(*workers)
	dev, err := parseDevice(*device)
	if err != nil {
		return err
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	decoded, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		return err
	}
	fmt.Println("calibrating distortion model (controlled loss injection)...")
	dist, err := core.MeasureDistortion(decoded, cfg, *mtu)
	if err != nil {
		return err
	}
	cal, err := core.Calibrate(encoded, cfg, *fps, *mtu, dev, core.DefaultNetwork(), dist)
	if err != nil {
		return err
	}
	candidates := []vcrypt.Policy{
		{Mode: vcrypt.ModeNone, Alg: a},
		{Mode: vcrypt.ModeIFrames, Alg: a},
		{Mode: vcrypt.ModePFrames, Alg: a},
		{Mode: vcrypt.ModeAll, Alg: a},
	}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.5} {
		candidates = append(candidates, vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: frac, Alg: a})
	}
	best, all, err := core.Plan(cal, candidates, *target)
	if err != nil && err != core.ErrNoPolicyMeetsTarget {
		return err
	}
	fmt.Printf("%-14s %10s %12s %6s %9s %6s\n", "policy", "delay(ms)", "eavPSNR(dB)", "MOS", "power(W)", "q")
	for _, pr := range all {
		marker := " "
		if pr.Policy == best.Policy {
			marker = "*"
		}
		fmt.Printf("%s%-13s %10.2f %12.2f %6d %9.2f %6.2f\n",
			marker, pr.Policy.Name(), pr.MeanSojourn*1e3, pr.EavesdropperPSNR, pr.EavesdropperMOS,
			pr.AveragePowerW, pr.EncryptedFraction)
	}
	if err == core.ErrNoPolicyMeetsTarget {
		fmt.Printf("no policy meets the %.1f dB target; strongest is %s\n", *target, best.Policy.Name())
	} else {
		fmt.Printf("recommended: %s (eavesdropper PSNR %.1f dB <= %.1f dB target)\n",
			best.Policy.Name(), best.EavesdropperPSNR, *target)
	}
	return nil
}

func buildMedium(seed uint64) (*wifi.Medium, error) {
	net := core.DefaultNetwork()
	params := wifi.NewDefaultDCF(net.Stations)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		return nil, err
	}
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, net.Rate, dcf, wifi.BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(seed))
	med.ReceiverError = net.ReceiverError
	med.EavesdropperError = net.EavesdropperError
	return med, nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("in", "clip.tvid", "input container")
	device := fs.String("device", "samsung", "device profile")
	alg := fs.String("alg", "aes256", "algorithm")
	policy := fs.String("policy", "I", "policy: none|I|P|all|I+P|half-I")
	frac := fs.Float64("frac", 0.2, "P fraction for the I+P policy")
	tcpMode := fs.Bool("tcp", false, "HTTP/TCP semantics instead of RTP/UDP")
	seed := fs.Uint64("seed", 1, "simulation seed")
	fps := fs.Float64("fps", 30, "stream frame rate")
	pad := fs.Bool("pad", false, "pad every packet to the MTU (traffic-analysis countermeasure)")
	snrRx := fs.Float64("snr-rx", 0, "receiver channel SNR in dB (with -snr-ev, builds the medium from the BER model and auto-selects the rate)")
	snrEv := fs.Float64("snr-ev", 0, "eavesdropper channel SNR in dB")
	headerOnly := fs.Int("headeronly", 0, "encrypt only the first N bytes of each selected packet (0 = whole payload)")
	unpaced := fs.Bool("unpaced", false, "upload back to back instead of streaming at the frame rate")
	workers := workersFlag(fs)
	metrics := metricsFlag(fs)
	audit := auditFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	stopAudit, err := startAudit(*audit)
	if err != nil {
		return err
	}
	defer stopAudit()
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	cfg.Workers = resolveWorkers(*workers)
	dev, err := parseDevice(*device)
	if err != nil {
		return err
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy, *frac, a)
	if err != nil {
		return err
	}
	pol.HeaderOnlyBytes = *headerOnly
	if err := pol.Validate(); err != nil {
		return err
	}
	var med *wifi.Medium
	if *snrRx > 0 && *snrEv > 0 {
		med, err = wifi.NewMediumFromSNR(wifi.PHY80211g(), core.DefaultNetwork().Stations,
			*snrRx, *snrEv, 1400, stats.NewRNG(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("SNR medium: rate %dM, receiver loss %.3f, eavesdropper loss %.3f\n",
			med.Rate(), med.ReceiverError, med.EavesdropperError)
	} else {
		med, err = buildMedium(*seed)
		if err != nil {
			return err
		}
	}
	s := transport.Session{
		Config: cfg, Encoded: encoded, FPS: *fps, MTU: 1400,
		Policy: pol, Key: deriveKey("simulate", a), Device: dev, Medium: med,
		PadToMTU: *pad, Unpaced: *unpaced,
	}
	var res *transport.Result
	if *tcpMode {
		res, err = transport.RunHTTP(s, *seed)
	} else {
		res, err = transport.RunUDP(s, *seed)
	}
	if err != nil {
		return err
	}
	orig, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		return err
	}
	rx, _ := codec.DecodeSequence(res.ReceiverFrames, cfg)
	ev, _ := codec.DecodeSequence(res.EavesFrames, cfg)
	qr, err := evalvid.Evaluate(orig, rx)
	if err != nil {
		return err
	}
	qe, err := evalvid.Evaluate(orig, ev)
	if err != nil {
		return err
	}
	fmt.Printf("policy %s on %s (%s):\n", pol.Name(), dev.Name, map[bool]string{false: "RTP/UDP", true: "HTTP/TCP"}[*tcpMode])
	fmt.Printf("  packets: %d (%.1f%% encrypted), receiver loss %.2f%%\n",
		len(res.Records), res.EncryptedFraction*100, res.ReceiverLossRate*100)
	fmt.Printf("  delay: mean wait %.2f ms, mean sojourn %.2f ms\n", res.MeanWait*1e3, res.MeanSojourn*1e3)
	fmt.Printf("  receiver:     PSNR %.2f dB (MOS %.2f)\n", qr.PSNR, qr.MOS)
	fmt.Printf("  eavesdropper: PSNR %.2f dB (MOS %.2f)\n", qe.PSNR, qe.MOS)
	fmt.Printf("  power: %.2f W over %.2f s (%.1f J)\n", res.AveragePowerW, res.Duration, res.EnergyJ)
	return nil
}

func cmdSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	in := fs.String("in", "clip.tvid", "input container")
	rx := fs.String("rx", "127.0.0.1:5004", "receiver address")
	ev := fs.String("ev", "", "eavesdropper address (optional)")
	alg := fs.String("alg", "aes256", "algorithm")
	policy := fs.String("policy", "I", "policy")
	frac := fs.Float64("frac", 0.2, "P fraction for I+P")
	key := fs.String("key", "open-sesame", "shared passphrase")
	pace := fs.Bool("pace", true, "pace packets at the frame rate")
	fps := fs.Float64("fps", 30, "frame rate")
	reliable := fs.Bool("reliable", false, "listen for receiver NACKs and retransmit dropped I-frame packets")
	drain := fs.Duration("drain", 500*time.Millisecond, "with -reliable, how long to linger for late NACKs after the last packet")
	metrics := metricsFlag(fs)
	audit := auditFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	stopAudit, err := startAudit(*audit)
	if err != nil {
		return err
	}
	defer stopAudit()
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy, *frac, a)
	if err != nil {
		return err
	}
	s := transport.Session{
		Config: cfg, Encoded: encoded, FPS: *fps, MTU: 1400,
		Policy: pol, Key: deriveKey(*key, a), Device: energy.SamsungGalaxySII(),
	}
	var rep transport.LiveSendReport
	if *reliable {
		rep, err = transport.LiveUDPSendReliable(s, *rx, *ev, *pace, transport.ReliableUDPOptions{Drain: *drain})
	} else {
		rep, err = transport.LiveUDPSend(s, *rx, *ev, *pace)
	}
	if err != nil {
		return err
	}
	fmt.Printf("sent %d packets (%d encrypted, %d bytes) in %v; crypto time %v\n",
		rep.Packets, rep.Encrypted, rep.Bytes, rep.Elapsed.Round(time.Millisecond),
		rep.CryptoTime.Round(time.Microsecond))
	if *reliable {
		fmt.Printf("reliability: %d retransmits\n", rep.Retransmits)
	}
	return nil
}

func cmdRecv(args []string, withKey bool) error {
	name := "recv"
	if !withKey {
		name = "eavesdrop"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:5004", "listen address")
	in := fs.String("in", "clip.tvid", "original container (for config and PSNR reference)")
	alg := fs.String("alg", "aes256", "algorithm")
	key := fs.String("key", "open-sesame", "shared passphrase (recv only)")
	out := fs.String("out", "", "write reconstructed YUV here (optional)")
	wait := fs.Duration("wait", 10*time.Second, "how long to listen")
	loss := fs.Float64("loss", 0, "emulated reception loss probability")
	var nack *time.Duration
	if withKey {
		nack = fs.Duration("nack", 0, "NACK gaps back to the sender at this interval (0 = off; pair with send -reliable)")
	}
	metrics := metricsFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	var k []byte
	if withKey {
		k = deriveKey(*key, a)
	}
	rxr, err := transport.NewLiveReceiver(cfg, a, k, *addr, *loss, 1)
	if err != nil {
		return err
	}
	defer rxr.Close()
	if nack != nil && *nack > 0 {
		rxr.EnableNACK(*nack)
	}
	fmt.Printf("%s listening on %s for %v...\n", name, rxr.Addr(), *wait)
	time.Sleep(*wait)
	captured, usable := rxr.Stats()
	fmt.Printf("captured %d packets, %d usable, %d duplicates discarded\n", captured, usable, rxr.Duplicates())
	frames := rxr.Frames(len(encoded))
	decoded, err := codec.DecodeSequence(frames, cfg)
	if err != nil {
		return err
	}
	orig, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		return err
	}
	q, err := evalvid.Evaluate(orig, decoded)
	if err != nil {
		return err
	}
	fmt.Printf("reconstruction: PSNR %.2f dB, MOS %.2f\n", q.PSNR, q.MOS)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, fr := range decoded {
			if err := fr.WriteYUV(f); err != nil {
				return err
			}
		}
		fmt.Printf("wrote reconstruction to %s\n", *out)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	in := fs.String("in", "clip.tvid", "original container (for config and PSNR reference)")
	alg := fs.String("alg", "aes256", "algorithm")
	key := fs.String("key", "open-sesame", "shared passphrase")
	wait := fs.Duration("wait", 60*time.Second, "how long to accept uploads")
	headerOnly := fs.Int("headeronly", 0, "sender's header-only span (must match upload)")
	metrics := metricsFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	srv, err := transport.NewHTTPUploadServer(cfg, a, deriveKey(*key, a))
	if err != nil {
		return err
	}
	srv.HeaderOnlyBytes = *headerOnly
	hs := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("upload server on http://%s/ for %v (resume header: %s)\n", *addr, *wait, transport.NextSeqHeader)
	select {
	case err := <-errCh:
		return err
	case <-time.After(*wait):
	}
	hs.Close()
	fmt.Printf("received %d segments (%d duplicates), next seq %d\n",
		srv.Segments(), srv.DuplicateSegments(), srv.NextSeq())
	frames := srv.Frames(len(encoded))
	decoded, err := codec.DecodeSequence(frames, cfg)
	if err != nil {
		return err
	}
	orig, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		return err
	}
	q, err := evalvid.Evaluate(orig, decoded)
	if err != nil {
		return err
	}
	fmt.Printf("reconstruction: PSNR %.2f dB, MOS %.2f\n", q.PSNR, q.MOS)
	return nil
}

func cmdUpload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	in := fs.String("in", "clip.tvid", "input container")
	url := fs.String("url", "http://127.0.0.1:8080/upload", "upload endpoint")
	alg := fs.String("alg", "aes256", "algorithm")
	policy := fs.String("policy", "I", "policy")
	frac := fs.Float64("frac", 0.2, "P fraction for I+P")
	key := fs.String("key", "open-sesame", "shared passphrase")
	rate := fs.Float64("rate", 0, "pace the body at this many bytes/s (0 = unpaced)")
	attempts := fs.Int("attempts", 5, "consecutive fruitless attempts before degrading/aborting")
	backoffBase := fs.Duration("backoff", 100*time.Millisecond, "first retry gap (doubles up to -max-backoff)")
	backoffMax := fs.Duration("max-backoff", 5*time.Second, "retry gap cap")
	timeout := fs.Duration("timeout", 10*time.Second, "per-attempt timeout")
	deadline := fs.Duration("deadline", 0, "transfer deadline; on expiry degrade instead of failing (0 = none)")
	seed := fs.Uint64("seed", 1, "backoff jitter seed")
	degrade := fs.Bool("degrade", false, "on exhaustion, downgrade encryption then re-encode at lower quality instead of failing")
	metrics := metricsFlag(fs)
	audit := auditFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	stopAudit, err := startAudit(*audit)
	if err != nil {
		return err
	}
	defer stopAudit()
	cfg, encoded, err := loadContainer(*in)
	if err != nil {
		return err
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy, *frac, a)
	if err != nil {
		return err
	}
	s := transport.Session{
		Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
		Policy: pol, Key: deriveKey(*key, a), Device: energy.SamsungGalaxySII(),
	}
	var pacer *netem.Pacer
	if *rate > 0 {
		if pacer, err = netem.NewPacer(*rate); err != nil {
			return err
		}
	}
	rp := transport.RetryPolicy{
		MaxAttempts: *attempts, BaseBackoff: *backoffBase, MaxBackoff: *backoffMax,
		AttemptTimeout: *timeout, Deadline: *deadline, Seed: *seed,
	}
	var deg transport.Degrader
	if *degrade {
		raw, derr := codec.DecodeSequence(encoded, cfg)
		if derr != nil {
			return derr
		}
		deg = &transport.PolicyDegrader{Raw: raw}
	}
	rep, err := transport.ResumableHTTPUpload(s, *url, pacer, rp, deg)
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %d segments (%d encrypted, %d bytes) in %v\n",
		rep.Segments, rep.Encrypted, rep.Bytes, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("robustness: %d attempts, %d resumed, %d policy downgrades, %d re-encode restarts, %v backing off\n",
		rep.Attempts, rep.Resumes, rep.Downgrades, rep.Restarts, rep.BackoffTotal.Round(time.Millisecond))
	fmt.Printf("final policy: %s\n", rep.FinalPolicy.Name())
	return nil
}

// cmdLoadgen boots a sharded multi-tenant ingest server and storms it
// with simulated mobile clients, reporting session latency percentiles
// and server-side goodput. Without -in it generates a small synthetic
// clip, so a capacity check needs no prior artifacts.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	in := fs.String("in", "", "input container (empty = generate a small synthetic clip)")
	sessions := fs.Int("sessions", 5000, "concurrent simulated clients")
	alg := fs.String("alg", "aes256", "algorithm")
	policy := fs.String("policy", "I", "policy")
	frac := fs.Float64("frac", 0.2, "P fraction for I+P")
	key := fs.String("key", "open-sesame", "shared passphrase")
	loss := fs.Float64("loss", 0.02, "mean uplink loss per client (Gilbert–Elliott)")
	burst := fs.Float64("burst", 4, "mean loss-burst length")
	resume := fs.Float64("resume", 0.1, "fraction of clients that cut and resume mid-clip")
	gap := fs.Duration("gap", 0, "per-client inter-packet gap (0 = blast)")
	shards := fs.Int("shards", 0, "session-map shards (0 = default)")
	readers := fs.Int("readers", 0, "socket reader goroutines (0 = default)")
	maxSessions := fs.Int("max-sessions", 0, "admission cap (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", 250*time.Millisecond, "retry hint sent with admission rejects")
	rate := fs.Float64("rate", 0, "per-session token-bucket rate in packets/s (0 = unlimited)")
	sessionBurst := fs.Int("rate-burst", 64, "per-session token-bucket burst")
	idle := fs.Duration("idle", 5*time.Second, "idle-session eviction timeout")
	seed := fs.Uint64("seed", 1, "loss and jitter seed")
	metrics := metricsFlag(fs)
	audit := auditFlag(fs)
	fs.Parse(args)
	stopMetrics, err := startMetrics(*metrics)
	if err != nil {
		return err
	}
	defer stopMetrics()
	stopAudit, err := startAudit(*audit)
	if err != nil {
		return err
	}
	defer stopAudit()
	var (
		cfg     codec.Config
		encoded []*codec.EncodedFrame
	)
	if *in != "" {
		if cfg, encoded, err = loadContainer(*in); err != nil {
			return err
		}
	} else {
		clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 24, Motion: video.MotionMedium, Seed: 5})
		cfg = codec.Config{Width: 96, Height: 96, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16}
		if encoded, err = codec.EncodeSequence(clip, cfg); err != nil {
			return err
		}
	}
	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy, *frac, a)
	if err != nil {
		return err
	}
	k := deriveKey(*key, a)
	s := transport.Session{
		Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
		Policy: pol, Key: k, Device: energy.SamsungGalaxySII(),
	}
	srv, err := transport.NewIngestServer(transport.IngestConfig{
		Addr: "127.0.0.1:0", Cfg: cfg, Alg: a, Key: k,
		HeaderOnlyBytes: pol.HeaderOnlyBytes,
		Shards:          *shards, Readers: *readers,
		MaxSessions: *maxSessions, RetryAfter: *retryAfter,
		SessionRate: *rate, SessionBurst: *sessionBurst,
		IdleTimeout: *idle,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("ingest server on %s; storming it with %d clients...\n", srv.Addr(), *sessions)
	rep, err := transport.RunLoadgen(srv, s, transport.LoadgenConfig{
		Sessions: *sessions, MeanLoss: *loss, MeanBurst: *burst,
		ResumeFrac: *resume, Gap: *gap, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}
