#!/usr/bin/env bash
# bench.sh — parameterized perf harness for the hot-path benchmarks.
#
# Runs three benchmark groups and writes one JSON report:
#   - codec micro-benchmarks (DCT, motion search, packetizers),
#   - the vcrypt per-packet encrypt hot path, including the legacy
#     (pre-engine) construction so the speedup-vs-legacy ratio is
#     measured on the same machine in the same run,
#   - the end-to-end codec + figure benchmarks at the repo root.
#
# The seed-checkpoint baseline is read from a checked-in JSON file
# (scripts/baselines/seed.json by default) instead of constants embedded
# in this script; benchmarks named there get baseline_ns_per_op and
# speedup fields in the report. scripts/perfgate.sh consumes the report
# and fails CI on hot-path regressions.
#
# Usage: scripts/bench.sh [-pr LABEL] [-out FILE] [-baseline FILE] [-no-obs]
#        scripts/bench.sh output.json        (legacy positional form)
set -euo pipefail
cd "$(dirname "$0")/.."

pr_label="PR6: zero-copy encrypt-packetize-send hot path (keystream engine, pooled wire buffers, prefetch overlap)"
out=BENCH_PR6.json
baseline=scripts/baselines/seed.json
obs=1

usage() {
	sed -n '2,19p' "$0" >&2
}

while [ $# -gt 0 ]; do
	case "$1" in
	-pr)
		pr_label=$2
		shift 2
		;;
	-out)
		out=$2
		shift 2
		;;
	-baseline)
		baseline=$2
		shift 2
		;;
	-no-obs)
		obs=0
		shift
		;;
	-h | --help)
		usage
		exit 0
		;;
	-*)
		echo "bench.sh: unknown flag $1" >&2
		usage
		exit 2
		;;
	*)
		out=$1
		shift
		;;
	esac
done

if [ ! -f "$baseline" ]; then
	echo "bench.sh: baseline file $baseline not found" >&2
	exit 2
fi

tmp=$(mktemp)
obs_tmp=$(mktemp)
ledger_tmp=$(mktemp)
trap 'rm -f "$tmp" "$obs_tmp" "$ledger_tmp"' EXIT

echo "running codec micro-benchmarks..." >&2
go test -run '^$' -bench 'BenchmarkFDCT8$|BenchmarkIDCT8$|BenchmarkMotionSearch$|BenchmarkEncodeFrameParallel$|BenchmarkPacketizeInto$|BenchmarkPacketize$' \
	-benchmem -timeout 600s ./internal/codec | tee -a "$tmp" >&2

echo "running vcrypt hot-path benchmarks..." >&2
# 0.3s per sub-benchmark: 4 benchmarks x 5 algorithms, and the prefetched
# variant spends extra untimed wall clock generating keystream batches.
go test -run '^$' -bench 'BenchmarkEncryptPacket$|BenchmarkEncryptPackets$|BenchmarkEncryptPacketPrefetched$|BenchmarkEncryptPacketLegacy$' \
	-benchmem -benchtime 0.3s -timeout 900s ./internal/vcrypt | tee -a "$tmp" >&2

echo "running end-to-end codec and figure benchmarks..." >&2
go test -run '^$' -bench 'BenchmarkCodecEncode$|BenchmarkCodecDecode$|BenchmarkFig7DelaySamsung$|BenchmarkFig9FractionalP$' \
	-benchmem -timeout 1200s . | tee -a "$tmp" >&2

awk -v out="$out" -v pr="$pr_label" -v basefile="$baseline" '
function jstr(line, key,   m) {
	if (match(line, "\"" key "\": *\"[^\"]*\"")) {
		m = substr(line, RSTART, RLENGTH)
		sub("\"" key "\": *\"", "", m)
		sub("\"$", "", m)
		return m
	}
	return ""
}
function jnum(line, key,   m) {
	if (match(line, "\"" key "\": *-?[0-9.eE+]+")) {
		m = substr(line, RSTART, RLENGTH)
		sub("\"" key "\": *", "", m)
		return m
	}
	return ""
}
BEGIN {
	base_commit = ""; base_cpu = ""
	while ((getline line < basefile) > 0) {
		c = jstr(line, "commit");  if (c != "") base_commit = c
		c = jstr(line, "cpu");     if (c != "" && base_cpu == "") base_cpu = c
		bn = jstr(line, "name")
		if (bn != "") {
			v = jnum(line, "ns_per_op");     if (v != "") base_ns[bn] = v
			a = jnum(line, "allocs_per_op"); if (a != "") base_allocs[bn] = a
		}
	}
	close(basefile)
	n = 0
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	names[n] = name; nsv[n] = ns; av[n] = allocs; n++
	ns_of[name] = ns
	if (name ~ /^BenchmarkEncryptPacketLegacy\//) {
		alg = name
		sub(/^BenchmarkEncryptPacketLegacy\//, "", alg)
		if (!(alg in is_alg)) { algs[na++] = alg; is_alg[alg] = 1 }
	}
}
END {
	printf "{\n" > out
	printf "  \"pr\": \"%s\",\n", pr >> out
	printf "  \"cpu\": \"%s\",\n", cpu >> out
	printf "  \"baseline_commit\": \"%s\",\n", base_commit >> out
	printf "  \"baseline_cpu\": \"%s\",\n", base_cpu >> out
	printf "  \"benchmarks\": [\n" >> out
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", names[i], nsv[i] >> out
		if (av[i] != "") printf ", \"allocs_per_op\": %s", av[i] >> out
		if (names[i] in base_ns) {
			printf ", \"baseline_ns_per_op\": %.0f", base_ns[names[i]] >> out
			if (names[i] in base_allocs)
				printf ", \"baseline_allocs_per_op\": %.0f", base_allocs[names[i]] >> out
			printf ", \"speedup\": %.2f", base_ns[names[i]] / nsv[i] >> out
		}
		printf "}%s\n", (i < n-1 ? "," : "") >> out
	}
	printf "  ],\n" >> out
	# Per-algorithm hot-path summary: the pre-PR (legacy) per-packet
	# encrypt cost vs the engine with prefetched keystream, measured in
	# this same run, so the ratio is machine-independent.
	printf "  \"hot_path\": [\n" >> out
	for (i = 0; i < na; i++) {
		alg = algs[i]
		legacy = ns_of["BenchmarkEncryptPacketLegacy/" alg]
		hot = ns_of["BenchmarkEncryptPacketPrefetched/" alg]
		inline = ns_of["BenchmarkEncryptPacket/" alg]
		if (legacy == "" || hot == "") continue
		printf "    {\"alg\": \"%s\", \"legacy_ns_per_op\": %s, \"inline_ns_per_op\": %s, \"prefetched_ns_per_op\": %s, \"speedup_vs_legacy\": %.2f}%s\n", \
			alg, legacy, inline, hot, legacy / hot, (i < na-1 ? "," : "") >> out
	}
	printf "  ]\n}\n" >> out
}
' "$tmp"

echo "wrote $out" >&2

if [ "$obs" -eq 1 ]; then
	echo "running observability-tax benchmarks..." >&2
	go test -run '^$' -bench 'BenchmarkEncodeMetricsOff$|BenchmarkEncodeMetricsOn$' \
		-benchmem -count 5 -timeout 600s ./internal/codec | tee "$obs_tmp" >&2

	awk -v out=BENCH_PR3.json '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkEncodeMetrics/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; allocs = ""
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
		}
		if (ns == "") next
		# Best-of-N: the minimum is the least noisy estimate of the true cost.
		if (!(name in best) || ns + 0 < best[name] + 0) { best[name] = ns; al[name] = allocs }
	}
	END {
		off = best["BenchmarkEncodeMetricsOff"]
		on = best["BenchmarkEncodeMetricsOn"]
		overhead = (on / off - 1) * 100
		printf "{\n" > out
		printf "  \"pr\": \"PR3: zero-dependency observability layer\",\n" >> out
		printf "  \"cpu\": \"%s\",\n", cpu >> out
		printf "  \"benchmarks\": [\n" >> out
		printf "    {\"name\": \"BenchmarkEncodeMetricsOff\", \"ns_per_op\": %s, \"allocs_per_op\": %s},\n", off, al["BenchmarkEncodeMetricsOff"] >> out
		printf "    {\"name\": \"BenchmarkEncodeMetricsOn\", \"ns_per_op\": %s, \"allocs_per_op\": %s}\n", on, al["BenchmarkEncodeMetricsOn"] >> out
		printf "  ],\n" >> out
		printf "  \"metrics_on_overhead_percent\": %.2f\n", overhead >> out
		printf "}\n" >> out
		if (overhead > 2) {
			printf "FAIL: metrics-on encode overhead %.2f%% exceeds the 2%% budget\n", overhead > "/dev/stderr"
			exit 1
		}
	}
	' "$obs_tmp"

	echo "wrote BENCH_PR3.json" >&2
fi

echo "running audit-ledger benchmarks..." >&2
# The pipeline benchmark drives AppendBlocking through the sealer
# goroutine into io.Discard, so ns/op is the full wall-clock cost per
# entry: canonical encoding, leaf hashing, Merkle fold, chain header and
# JSON-line serialization included.
go test -run '^$' -bench 'BenchmarkLedgerPipeline$' \
	-benchmem -count 3 -timeout 600s ./internal/ledger | tee "$ledger_tmp" >&2

awk -v out=BENCH_PR8.json '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkLedgerPipeline\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	# Best-of-N: the minimum is the least noisy estimate of the true cost.
	if (!(name in best) || ns + 0 < best[name] + 0) { best[name] = ns; al[name] = allocs }
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	base = best["BenchmarkLedgerPipeline/batch1"]
	peak = 0
	printf "{\n" > out
	printf "  \"pr\": \"PR8: tamper-evident audit ledger (hash chain, Merkle batches) and ingest session lifecycle fixes\",\n" >> out
	printf "  \"cpu\": \"%s\",\n", cpu >> out
	printf "  \"benchmarks\": [\n" >> out
	for (i = 0; i < n; i++) {
		name = order[i]
		ns = best[name] + 0
		eps = 1e9 / ns
		if (eps > peak) peak = eps
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"entries_per_sec\": %.0f", \
			name, best[name], (al[name] == "" ? "null" : al[name]), eps >> out
		if (base != "" && name != "BenchmarkLedgerPipeline/batch1")
			printf ", \"speedup_vs_batch1\": %.2f", (base + 0) / ns >> out
		printf "}%s\n", (i < n-1 ? "," : "") >> out
	}
	printf "  ],\n" >> out
	printf "  \"peak_entries_per_sec\": %.0f\n", peak >> out
	printf "}\n" >> out
	# Hard gate: the ISSUE acceptance floor is 1M entries/sec at the best
	# batch size. Falling under it means event logging would become the
	# bottleneck of the very hot paths it audits.
	if (peak < 1e6) {
		printf "FAIL: peak ledger throughput %.0f entries/sec is under the 1M floor\n", peak > "/dev/stderr"
		exit 1
	}
}
' "$ledger_tmp"

echo "wrote BENCH_PR8.json" >&2
