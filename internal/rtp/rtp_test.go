package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	p := Packet{
		PayloadType: PayloadTypeVideo,
		Marker:      true,
		Sequence:    4242,
		Timestamp:   900001,
		SSRC:        0xDEADBEEF,
		Payload:     []byte("slice payload"),
	}
	got, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadType != p.PayloadType || got.Marker != p.Marker ||
		got.Sequence != p.Sequence || got.Timestamp != p.Timestamp ||
		got.SSRC != p.SSRC || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
	if !got.Encrypted() {
		t.Fatal("marker must signal encryption")
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short packet should fail")
	}
}

func TestParseRejectsBadVersion(t *testing.T) {
	b := Packet{}.Marshal()
	b[0] = 0x00 // version 0
	if _, err := Parse(b); err == nil {
		t.Fatal("bad version should fail")
	}
}

func TestParseRejectsPaddingAndCSRC(t *testing.T) {
	b := Packet{}.Marshal()
	b[0] = Version<<6 | 0x20
	if _, err := Parse(b); err == nil {
		t.Fatal("padding should be rejected")
	}
	b[0] = Version<<6 | 0x02
	if _, err := Parse(b); err == nil {
		t.Fatal("CSRC should be rejected")
	}
}

func TestSequencerIncrements(t *testing.T) {
	s := NewSequencer(7)
	a := s.Next([]byte("a"), 0, false)
	b := s.Next([]byte("b"), 1.0/30, true)
	if a.Sequence != 0 || b.Sequence != 1 {
		t.Fatalf("sequences %d %d", a.Sequence, b.Sequence)
	}
	if a.SSRC != 7 || b.SSRC != 7 {
		t.Fatal("SSRC wrong")
	}
	if !b.Marker || a.Marker {
		t.Fatal("markers wrong")
	}
	if b.Timestamp != uint32(ClockRate/30) {
		t.Fatalf("timestamp %d", b.Timestamp)
	}
}

func TestSequencerWraps(t *testing.T) {
	s := NewSequencer(1)
	s.seq = 65535
	a := s.Next(nil, 0, false)
	b := s.Next(nil, 0, false)
	if a.Sequence != 65535 || b.Sequence != 0 {
		t.Fatalf("wrap failed: %d %d", a.Sequence, b.Sequence)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, err := Parse(data)
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalAllocatesExactSize(t *testing.T) {
	p := Packet{Payload: make([]byte, 100)}
	if len(p.Marshal()) != HeaderSize+100 {
		t.Fatal("marshal size wrong")
	}
}

// TestMarshalIntoMatchesMarshal pins the zero-copy serialisation
// byte-identical to Marshal, both when the payload already sits behind
// the header space (aliasing, no copy) and when it is detached.
func TestMarshalIntoMatchesMarshal(t *testing.T) {
	payload := []byte("slice payload bytes")
	p := Packet{
		PayloadType: PayloadTypeVideo,
		Marker:      true,
		Sequence:    777,
		Timestamp:   123456,
		SSRC:        0xDEADBEEF,
		Payload:     payload,
	}
	want := p.Marshal()

	// Detached payload: MarshalInto copies it behind the header.
	got := p.MarshalInto(make([]byte, 0, HeaderSize+len(payload)))
	if !bytes.Equal(got, want) {
		t.Fatalf("detached MarshalInto differs:\n got %x\nwant %x", got, want)
	}

	// Aliasing payload: the wire bytes come out of the same buffer with
	// no copying.
	buf := make([]byte, HeaderSize, HeaderSize+len(payload))
	buf = append(buf, payload...)
	q := p
	q.Payload = buf[HeaderSize:]
	got = q.MarshalInto(buf)
	if !bytes.Equal(got, want) {
		t.Fatalf("aliasing MarshalInto differs:\n got %x\nwant %x", got, want)
	}
	if &got[0] != &buf[0] {
		t.Fatal("aliasing MarshalInto reallocated")
	}
	rt, err := Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt.Payload, payload) || !rt.Encrypted() || rt.Sequence != 777 {
		t.Fatal("round trip through MarshalInto/Parse lost fields")
	}
}

// TestMarshalIntoZeroAllocs pins the aliasing path at zero allocations.
func TestMarshalIntoZeroAllocs(t *testing.T) {
	buf := make([]byte, HeaderSize, HeaderSize+100)
	buf = append(buf, bytes.Repeat([]byte{7}, 100)...)
	p := Packet{PayloadType: PayloadTypeVideo, Sequence: 1, Payload: buf[HeaderSize:]}
	if allocs := testing.AllocsPerRun(100, func() {
		p.MarshalInto(buf)
	}); allocs != 0 {
		t.Fatalf("MarshalInto allocates %.1f times, want 0", allocs)
	}
}
