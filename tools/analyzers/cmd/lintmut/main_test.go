package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot is the root module relative to this package's directory.
const moduleRoot = "../../../.."

// TestMutantsApplyCleanly pins every mutant's anchor text to the
// current tree: a refactor that moves or duplicates an anchor fails
// here (cheaply) instead of inside the CI gate.
func TestMutantsApplyCleanly(t *testing.T) {
	ids := map[string]bool{}
	for _, m := range mutants {
		if ids[m.ID] {
			t.Errorf("duplicate mutant id %s", m.ID)
		}
		ids[m.ID] = true
		data, err := os.ReadFile(filepath.Join(moduleRoot, filepath.FromSlash(m.File)))
		if err != nil {
			t.Errorf("%s: %v", m.ID, err)
			continue
		}
		mutated, err := applyPatches(string(data), m.Patches)
		if err != nil {
			t.Errorf("%s: %v", m.ID, err)
			continue
		}
		if mutated == string(data) {
			t.Errorf("%s: patches are a no-op", m.ID)
		}
	}
	// The gate's two contractual mutants: an unencrypted I-frame UDP
	// send and a lock held across Pacer.Wait.
	for _, required := range []string{"udp-iframe-plain", "pacer-under-lock"} {
		if !ids[required] {
			t.Errorf("required mutant %s is missing", required)
		}
	}
}

// TestQuickGate runs the fast mutant subset end to end: the pristine
// tree must be clean and every quick mutant must be killed.
func TestQuickGate(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation gate type-checks the root module repeatedly")
	}
	if err := run(moduleRoot, true, false, defaultJobs(), io.Discard); err != nil {
		t.Fatal(err)
	}
}
