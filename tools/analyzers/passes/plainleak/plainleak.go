// Package plainleak is the paper's core invariant as a dataflow check:
// every packet payload the encryption policy selects must be ciphertext
// by the time it reaches a network write. Payloads are tainted where
// they are created (codec.Packetize, audio.Encode); the taint is
// cleared in exactly two ways — the payload passes through
// vcrypt.Cipher.EncryptPacket, or control flow crosses an edge on which
// the policy itself decided "do not encrypt this packet"
// (Selector.ShouldEncrypt false, Policy.Mode == ModeNone, or an
// rtp header marking the packet unencrypted). Any tainted value
// reaching net.Conn / UDP / io.Writer / HTTP-body writes in the
// transport and netem layers is a leak. The analysis is flow-sensitive
// and interprocedural (bottom-up summaries over the module call graph),
// so a payload that is packetized in one function, buffered in a
// second, and written in a third is still tracked.
package plainleak

import (
	"repro/tools/analyzers/lintkit"
)

// DefaultPackages is where network sinks live; the taint engine itself
// follows payloads through every module package via summaries.
var DefaultPackages = []string{
	"internal/transport",
	"internal/netem",
}

var spec = &lintkit.TaintSpec{
	Sources: []lintkit.FuncMatch{
		{Path: "internal/codec", Name: "Packetize"},
		{Path: "internal/codec", Name: "PacketizeInto"},
		{Path: "internal/audio", Name: "Encode"},
	},
	Sanitizers: []lintkit.SanitizerSpec{
		// cipher.EncryptPacket(seq, payload[:span]) encrypts the
		// backing array in place: position 0 is the receiver, 1 the
		// sequence number, 2 the payload.
		{Match: lintkit.FuncMatch{Path: "internal/vcrypt", Recv: "Cipher", Name: "EncryptPacket"}, Arg: 2},
		// cipher.EncryptPackets(baseSeq, payloads) is the batch form:
		// position 2 is the [][]byte whose members are encrypted in
		// place.
		{Match: lintkit.FuncMatch{Path: "internal/vcrypt", Recv: "Cipher", Name: "EncryptPackets"}, Arg: 2},
	},
	Sinks: []lintkit.SinkSpec{
		{Match: lintkit.FuncMatch{Path: "net", Recv: "Conn", Name: "Write"}, Args: []int{1}, What: "net.Conn.Write"},
		// *net.UDPConn/TCPConn promote Write from the unexported
		// embedded net.conn; the resolved method's receiver is that
		// type, not the exported wrapper.
		{Match: lintkit.FuncMatch{Path: "net", Recv: "conn", Name: "Write"}, Args: []int{1}, What: "net.Conn.Write"},
		{Match: lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "Write"}, Args: []int{1}, What: "net.UDPConn.Write"},
		{Match: lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "WriteToUDP"}, Args: []int{1}, What: "net.UDPConn.WriteToUDP"},
		{Match: lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "WriteTo"}, Args: []int{1}, What: "net.UDPConn.WriteTo"},
		{Match: lintkit.FuncMatch{Path: "net", Recv: "TCPConn", Name: "Write"}, Args: []int{1}, What: "net.TCPConn.Write"},
		{Match: lintkit.FuncMatch{Path: "io", Recv: "Writer", Name: "Write"}, Args: []int{1}, What: "io.Writer.Write"},
		{Match: lintkit.FuncMatch{Path: "io", Recv: "PipeWriter", Name: "Write"}, Args: []int{1}, What: "io.PipeWriter.Write"},
		{Match: lintkit.FuncMatch{Path: "net/http", Recv: "ResponseWriter", Name: "Write"}, Args: []int{1}, What: "http.ResponseWriter.Write"},
	},
	PolicyGuards: []lintkit.FuncMatch{
		{Path: "internal/vcrypt", Recv: "Selector", Name: "ShouldEncrypt"},
		{Path: "internal/rtp", Recv: "Packet", Name: "Encrypted"},
	},
	PolicyClearConsts: []lintkit.ConstMatch{
		{Path: "internal/vcrypt", Name: "ModeNone"},
	},
	SinkMessage: func(what string) string {
		return "plaintext packet payload reaches " + what +
			" without vcrypt encryption or an explicit policy decision"
	},
}

// Analyzer is the plainleak pass.
var Analyzer = &lintkit.Analyzer{
	Name: "plainleak",
	Doc: "Taint-tracks packet payloads from their creation in the codec " +
		"and audio packetizers to the network writes of the transport " +
		"and netem layers, and reports any payload that arrives at a " +
		"socket neither encrypted by vcrypt.Cipher.EncryptPacket nor " +
		"blessed by an explicit policy decision to send plaintext. This " +
		"is the paper's selective-encryption invariant checked statically.",
	Packages: DefaultPackages,
	Run:      run,
}

func run(pass *lintkit.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	lintkit.NewTaintEngine(pass.Prog, spec).Check(pass)
	return nil
}
