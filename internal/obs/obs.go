// Package obs is the reproduction's zero-dependency observability
// substrate: atomic counters and gauges, streaming histograms with
// quantile estimation, lightweight span tracing into a ring buffer, and
// Prometheus-style text exposition over HTTP (http.go).
//
// Design constraints, in priority order:
//
//  1. Off by default. Every Inc/Observe/StartSpan first loads one
//     atomic bool; while metrics are disabled the hot paths pay exactly
//     that load and nothing else, so deterministic outputs and the PR1
//     speedups are untouched.
//  2. Allocation-free when enabled. Counters and gauges are single
//     atomic words; a histogram observation is a bounds scan over a
//     fixed slice plus three atomic adds. Nothing on the
//     macroblock/packet hot path allocates or takes a lock.
//  3. Stdlib only.
//
// Metrics register themselves into the package-level Default registry at
// package init time (instrumented packages declare them as vars), so the
// exposition endpoint sees every metric without wiring. Names follow
// Prometheus conventions (snake_case, _total for counters, _seconds for
// durations) and may carry a fixed label set inline:
// `codec_frames_encoded_total{type="I"}`.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates every recording call. Exposition and Value accessors
// work regardless, so tests can read counters after disabling again.
var enabled atomic.Bool

// SetEnabled turns recording on or off globally. ServeDebug enables it
// as a side effect; tests flip it around the code under measurement.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// metric is anything the registry can expose.
type metric interface {
	metricName() string
	expose(w io.Writer)
}

// Registry holds an ordered set of uniquely named metrics.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// Default is the process-wide registry every New* constructor uses.
var Default = NewRegistry()

// NewRegistry builds an empty registry (tests use private ones).
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// register panics on duplicate names: metrics are package vars, so a
// duplicate is a programming error caught by any test that imports the
// package.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic("obs: duplicate metric " + m.metricName())
	}
	r.names[m.metricName()] = true
	r.metrics = append(r.metrics, m)
}

// Expose renders every registered metric in Prometheus text format,
// grouped so all series of one family share a single HELP/TYPE header.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		return baseName(ms[i].metricName()) < baseName(ms[j].metricName())
	})
	lastFamily := ""
	for _, m := range ms {
		if fam := baseName(m.metricName()); fam != lastFamily {
			lastFamily = fam
			writeHeader(w, m)
		}
		m.expose(w)
	}
}

// baseName strips the inline label set: `x_total{type="I"}` → `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func writeHeader(w io.Writer, m metric) {
	fam := baseName(m.metricName())
	help, typ := "", "untyped"
	switch v := m.(type) {
	case *Counter:
		help, typ = v.help, "counter"
	case *FloatCounter:
		help, typ = v.help, "counter"
	case *Gauge:
		help, typ = v.help, "gauge"
	case *Histogram:
		help, typ = v.help, "histogram"
	}
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", fam, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
}

// Counter is a monotonically increasing integer.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	Default.register(c)
	return c
}

// Inc adds one when metrics are enabled.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n when metrics are enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// FloatCounter is a monotonically increasing float (seconds totals).
type FloatCounter struct {
	bits atomic.Uint64
	name string
	help string
}

// NewFloatCounter registers a float counter in the Default registry.
func NewFloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{name: name, help: help}
	Default.register(c)
	return c
}

// Add accumulates v (CAS loop on the float bits) when enabled.
func (c *FloatCounter) Add(v float64) {
	if !enabled.Load() || v == 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *FloatCounter) metricName() string { return c.name }
func (c *FloatCounter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %g\n", c.name, c.Value())
}

// Gauge is an instantaneous integer value (queue depth, worker count,
// current rate). Set works even while metrics are disabled so wiring
// code can record configuration before enabling.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	Default.register(g)
	return g
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n when metrics are enabled.
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// Histogram is a fixed-bucket streaming histogram: cumulative counts
// are derived at exposition time, observations are three atomic adds.
// Quantiles are estimated by linear interpolation inside the bucket
// that crosses the requested rank — the standard Prometheus
// histogram_quantile estimate, computed locally.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    FloatCounter // reuse the CAS float add; not registered
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start with the given factor, for latency-style histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: bad ExpBuckets parameters")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets covers 1µs..~67s in powers of two: wide enough for
// per-packet delays, backoff gaps, and per-cell experiment wall times.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 2, 27) }

// NewHistogram registers a histogram with the given bucket upper
// bounds (nil selects TimeBuckets).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = TimeBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending: " + name)
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	Default.register(h)
	return h
}

// Observe records one value when metrics are enabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Bounds are few (≈27); a branch-predictable linear scan beats a
	// binary search for the small-latency common case and allocates
	// nothing.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the crossing bucket. It returns NaN with no
// observations. The top (+Inf) bucket clamps to its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: the best point estimate is its lower edge.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) metricName() string { return h.name }

// expose writes the cumulative-bucket Prometheus representation.
func (h *Histogram) expose(w io.Writer) {
	fam, labels := splitLabels(h.name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, labels, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, labels, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", fam, h.sum.Value())
		fmt.Fprintf(w, "%s_count %d\n", fam, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", fam, strings.TrimSuffix(labels, ","), h.sum.Value())
		fmt.Fprintf(w, "%s_count{%s} %d\n", fam, strings.TrimSuffix(labels, ","), h.count.Load())
	}
}

// splitLabels splits `name{a="b"}` into ("name", `a="b",`); the
// trailing comma lets the caller append the le label directly.
func splitLabels(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
