package lintkit

import (
	"go/ast"
	"go/types"
)

// Program is the whole set of packages loaded for one analyzer run. It
// gives interprocedural analyses (the taint engine, blocking-call
// summaries) access to the bodies of module-local functions across
// package boundaries, plus a shared cache so summaries are computed
// once per run, not once per analyzed package.
type Program struct {
	Packages []*Package

	decls  map[*types.Func]*FuncSource
	caches map[any]any

	cacheBuilds int
	cacheHits   int
}

// FuncSource locates the declaration of a module-local function.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// NewProgram indexes the declared functions and methods of pkgs.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Packages: pkgs,
		decls:    make(map[*types.Func]*FuncSource),
		caches:   make(map[any]any),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = &FuncSource{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	return p
}

// Source returns the declaration of fn when its package was loaded in
// this run, or nil for out-of-module (including standard library)
// functions.
func (p *Program) Source(fn *types.Func) *FuncSource {
	if p == nil {
		return nil
	}
	return p.decls[fn]
}

// Cache memoizes an analysis-wide value under key, building it on first
// use. Analyzers key by a private type to avoid collisions.
func (p *Program) Cache(key any, build func() any) any {
	if v, ok := p.caches[key]; ok {
		p.cacheHits++
		return v
	}
	v := build()
	p.caches[key] = v
	p.cacheBuilds++
	return v
}

// CacheStats reports how many Cache lookups built a fresh value and how
// many reused one — the observable form of "module-wide summaries are
// computed once per run, not once per package".
func (p *Program) CacheStats() (builds, hits int) {
	return p.cacheBuilds, p.cacheHits
}

// Funcs returns every indexed function in a deterministic order
// (file/position order within each package, packages in load order).
func (p *Program) Funcs() []*types.Func {
	var out []*types.Func
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out = append(out, fn)
				}
			}
		}
	}
	return out
}

// CallGraph is the static, module-local call graph: edges exist only
// for direct calls whose callee resolves to a declared function of the
// program. Calls through function values and interface methods have no
// edge — interprocedural clients must treat those conservatively.
type CallGraph struct {
	prog  *Program
	calls map[*types.Func][]*types.Func
}

// BuildCallGraph walks every indexed function body once.
func BuildCallGraph(p *Program) *CallGraph {
	cg := &CallGraph{prog: p, calls: make(map[*types.Func][]*types.Func)}
	for fn, src := range p.decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := FuncForCall(src.Pkg.Info, call)
			if callee == nil || p.decls[callee] == nil || seen[callee] {
				return true
			}
			seen[callee] = true
			cg.calls[fn] = append(cg.calls[fn], callee)
			return true
		})
	}
	return cg
}

// Callees returns the static callees of fn.
func (cg *CallGraph) Callees(fn *types.Func) []*types.Func { return cg.calls[fn] }

// BottomUp returns the strongly connected components of the call graph
// in bottom-up (callees before callers) order. A summary-based analysis
// processes components in this order, iterating inside each component
// until its summaries reach a fixpoint (mutual recursion).
func (cg *CallGraph) BottomUp() [][]*types.Func {
	// Tarjan's algorithm, iterative enough for analyzer-sized graphs.
	index := make(map[*types.Func]int)
	low := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.calls[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fn := range cg.prog.Funcs() {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation, which is exactly callees-first.
	return sccs
}
