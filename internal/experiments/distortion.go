package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// levelOrder is the x-axis of the paper's distortion/delay bar plots.
var levelOrder = []vcrypt.Mode{vcrypt.ModeNone, vcrypt.ModePFrames, vcrypt.ModeIFrames, vcrypt.ModeAll}

// Table1 reproduces the experimental setup table.
func Table1() *Table {
	return &Table{
		Title:   "Table 1: Experimental Setup",
		Columns: []string{"Parameter", "Values"},
		Rows: [][]string{
			{"Frame Size", fmt.Sprintf("CIF (%dx%d)", video.CIFWidth, video.CIFHeight)},
			{"GOP Size", "30, 50"},
			{"Video Motion", "slow-motion, fast-motion"},
			{"Encryption Algorithm", "AES128, AES256, 3DES"},
			{"Encryption Level", "none, I-frame, P-frame, all"},
			{"Wireless Devices", "Samsung Galaxy S-II, HTC Amaze 4G (profiles)"},
			{"Android Version", "Ice Cream Sandwich (4.0) — emulated via device profiles"},
		},
	}
}

// Fig2 reproduces "average distortion with distance": for each motion
// class, the measured mean distortion of a GOP concealed from d GOPs back,
// plus the polynomial fit the model consumes (Section 4.3.2).
func Fig2(f *Fixture) (*Table, error) {
	t := &Table{
		Title:   "Fig 2: Average distortion (MSE) vs reference distance",
		Columns: []string{"motion", "d=1", "d=2", "d=3", "d=4", "fit", "R2"},
	}
	allMotions := []video.MotionLevel{video.MotionLow, video.MotionMedium, video.MotionHigh}
	if err := f.PrefetchWorkloads(allMotions, []int{30}); err != nil {
		return nil, err
	}
	for _, motion := range allMotions {
		w, err := f.Workload(motion, 30)
		if err != nil {
			return nil, err
		}
		row := []string{motion.String()}
		var xs, ys []float64
		for d := 1; d <= 4; d++ {
			v := w.Dist.InterGOP.Eval(float64(d))
			if d > w.Dist.MaxDistance {
				v = w.Dist.InterGOP.Eval(float64(w.Dist.MaxDistance))
			}
			row = append(row, f2(v))
			xs = append(xs, float64(d))
			ys = append(ys, v)
		}
		row = append(row, w.Dist.InterGOP.String())
		row = append(row, f2(stats.RSquared(w.Dist.InterGOP, xs, ys)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"distance is in GOPs between the concealed GOP and its reference, as in the calibration of Section 4.3.2",
		"higher motion must give uniformly higher distortion at every distance")
	return t, nil
}

// DistortionResult carries one cell of Figs. 4/5 (or 14/15).
type DistortionResult struct {
	Motion       video.MotionLevel
	GOP          int
	Level        vcrypt.Mode
	AnalysisPSNR float64
	ExpPSNR      stats.Summary
	ExpMOS       stats.Summary
}

// RunDistortion produces the data behind Fig. 4 (PSNR) and Fig. 5 (MOS):
// slow/fast motion x GOP {30,50} x encryption level, analysis vs
// experiment, under AES-256 (the paper notes the algorithm does not change
// distortion, only delay). With tcp=true it produces Figs. 14/15 instead.
func RunDistortion(f *Fixture, tcp bool) ([]DistortionResult, error) {
	device := SamsungDevice()
	motions := []video.MotionLevel{video.MotionLow, video.MotionHigh}
	gops := []int{30, 50}
	if err := f.PrefetchWorkloads(motions, gops); err != nil {
		return nil, err
	}
	type cellSpec struct {
		motion video.MotionLevel
		gop    int
		level  vcrypt.Mode
	}
	var specs []cellSpec
	for _, motion := range motions {
		for _, gop := range gops {
			for _, level := range levelOrder {
				specs = append(specs, cellSpec{motion, gop, level})
			}
		}
	}
	out := make([]DistortionResult, len(specs))
	err := parallelFor(f.workers(), len(specs), func(i int) error {
		sp := specs[i]
		w, err := f.Workload(sp.motion, sp.gop)
		if err != nil {
			return err
		}
		cal, err := f.Calibrate(w, device)
		if err != nil {
			return err
		}
		pol := vcrypt.Policy{Mode: sp.level, Alg: vcrypt.AES256}
		pred, err := cal.Predict(pol)
		if err != nil {
			return err
		}
		cell, err := f.runCell(w, pol, device, tcp, false)
		if err != nil {
			return err
		}
		out[i] = DistortionResult{
			Motion:       sp.motion,
			GOP:          sp.gop,
			Level:        sp.level,
			AnalysisPSNR: pred.EavesdropperPSNR,
			ExpPSNR:      cell.PSNR,
			ExpMOS:       cell.MOS,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 renders the eavesdropper-PSNR comparison.
func Fig4(f *Fixture) (*Table, error) {
	res, err := RunDistortion(f, false)
	if err != nil {
		return nil, err
	}
	return distortionTable("Fig 4: Eavesdropper PSNR (dB), analysis vs experiment (AES256, RTP/UDP)", res, true), nil
}

// Fig5 renders the MOS table from the same runs.
func Fig5(f *Fixture) (*Table, error) {
	res, err := RunDistortion(f, false)
	if err != nil {
		return nil, err
	}
	return mosTable("Fig 5: Mean Opinion Score at the eavesdropper (RTP/UDP)", res), nil
}

// Fig14 is the HTTP/TCP distortion counterpart.
func Fig14(f *Fixture) (*Table, error) {
	res, err := RunDistortion(f, true)
	if err != nil {
		return nil, err
	}
	return distortionTable("Fig 14: Eavesdropper PSNR (dB) with HTTP/TCP", res, false), nil
}

// Fig15 is the HTTP/TCP MOS counterpart.
func Fig15(f *Fixture) (*Table, error) {
	res, err := RunDistortion(f, true)
	if err != nil {
		return nil, err
	}
	return mosTable("Fig 15: Mean Opinion Score at the eavesdropper with HTTP/TCP", res), nil
}

func distortionTable(title string, res []DistortionResult, withAnalysis bool) *Table {
	cols := []string{"motion", "GOP", "level", "exp PSNR(dB)"}
	if withAnalysis {
		cols = append(cols, "analysis PSNR(dB)")
	}
	t := &Table{Title: title, Columns: cols}
	for _, r := range res {
		row := []string{r.Motion.String(), fmt.Sprintf("%d", r.GOP), r.Level.String(),
			dbCI(r.ExpPSNR.Mean, r.ExpPSNR.CI95)}
		if withAnalysis {
			row = append(row, f2(r.AnalysisPSNR))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"I-frame encryption must degrade slow motion more than fast motion; P-frame encryption the reverse (Section 6.2)")
	return t
}

func mosTable(title string, res []DistortionResult) *Table {
	t := &Table{Title: title, Columns: []string{"motion", "GOP", "level", "MOS"}}
	for _, r := range res {
		t.Rows = append(t.Rows, []string{
			r.Motion.String(), fmt.Sprintf("%d", r.GOP), r.Level.String(),
			dbCI(r.ExpMOS.Mean, r.ExpMOS.CI95),
		})
	}
	t.Notes = append(t.Notes, "MOS ~1 under the partial policies means the stolen video is practically unviewable")
	return t
}

// Fig6 writes the screenshot counterparts: the eavesdropper's
// reconstructed middle frame per (motion, level) as PGM files.
func Fig6(f *Fixture, outDir string) (*Table, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 6: Eavesdropper screenshots (PGM files)",
		Columns: []string{"motion", "level", "file", "frame PSNR(dB)"},
	}
	device := SamsungDevice()
	for _, motion := range []video.MotionLevel{video.MotionLow, video.MotionHigh} {
		w, err := f.Workload(motion, 30)
		if err != nil {
			return nil, err
		}
		for _, level := range levelOrder {
			pol := vcrypt.Policy{Mode: level, Alg: vcrypt.AES256}
			s := f.Session(w, pol, device, f.opts.Seed+uint64(level))
			res, err := transport.RunUDP(s, f.opts.Seed+uint64(level))
			if err != nil {
				return nil, err
			}
			dec, err := codec.DecodeSequence(res.EavesFrames, w.Cfg)
			if err != nil {
				return nil, err
			}
			mid := len(dec) / 2
			name := fmt.Sprintf("fig6-%s-%s.pgm", motion, level)
			path := filepath.Join(outDir, name)
			file, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			if err := dec[mid].WritePGM(file); err != nil {
				file.Close()
				return nil, err
			}
			if err := file.Close(); err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				motion.String(), level.String(), name,
				f2(video.PSNR(w.Clip[mid], dec[mid])),
			})
		}
	}
	return t, nil
}
