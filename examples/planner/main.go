// Planner explores the fine-grained trade-off of Table 2 / Fig. 9: on a
// fast-motion clip, sweep the fraction of P-frame packets encrypted on top
// of the I-frames and watch delay rise while the eavesdropper's PSNR and
// MOS sink — then let the planner pick the knee point for a given
// confidentiality target.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

func main() {
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 90, Motion: video.MotionHigh, Seed: 13})
	cfg := codec.DefaultConfig(30)
	cfg.Width, cfg.Height = 176, 144
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		log.Fatal(err)
	}

	params := wifi.NewDefaultDCF(3)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		log.Fatal(err)
	}
	phy := wifi.PHY80211g()

	fmt.Printf("%-10s %10s %10s %6s %9s\n", "policy", "delay(ms)", "PSNR(dB)", "MOS", "power(W)")
	fracs := []float64{0, 0.10, 0.15, 0.20, 0.25, 0.30, 0.50}
	for _, frac := range fracs {
		pol := vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: frac, Alg: vcrypt.AES256}
		if frac == 0 {
			pol = vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
		}
		med := wifi.NewMedium(phy, wifi.Rate54, dcf, wifi.BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(4))
		med.ReceiverError = 0.01
		med.EavesdropperError = 0.03
		session := transport.Session{
			Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
			Policy: pol, Key: make([]byte, pol.Alg.KeySize()),
			Device: energy.SamsungGalaxySII(), Medium: med,
		}
		res, err := transport.RunUDP(session, 4)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := codec.DecodeSequence(res.EavesFrames, cfg)
		if err != nil {
			log.Fatal(err)
		}
		q, err := evalvid.Evaluate(clip, ev)
		if err != nil {
			log.Fatal(err)
		}
		name := "I"
		if frac > 0 {
			name = fmt.Sprintf("I+%d%%P", int(frac*100+0.5))
		}
		fmt.Printf("%-10s %10.2f %10.2f %6.2f %9.2f\n",
			name, res.MeanSojourn*1e3, q.PSNR, q.MOS, res.AveragePowerW)
	}

	// Let the analytical planner pick a policy for a 15 dB ceiling.
	dist, err := core.MeasureDistortion(clip, cfg, 1400)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(encoded, cfg, 30, 1400, energy.SamsungGalaxySII(), core.DefaultNetwork(), dist)
	if err != nil {
		log.Fatal(err)
	}
	var candidates []vcrypt.Policy
	candidates = append(candidates, vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256})
	for _, frac := range fracs[1:] {
		candidates = append(candidates, vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: frac, Alg: vcrypt.AES256})
	}
	best, _, err := core.Plan(cal, candidates, 17)
	if err != nil && err != core.ErrNoPolicyMeetsTarget {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner's pick for a 17 dB eavesdropper ceiling: %s\n", best.Policy.Name())
	fmt.Println("(the paper lands on I+20%P for fast motion: near-total obfuscation for ~6.5 ms extra delay)")
}
