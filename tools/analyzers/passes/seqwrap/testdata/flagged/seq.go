package transport

type packet struct {
	Sequence uint16
	Epoch    uint32
}

func rawCompare(a, b uint16) bool {
	seqA, seqB := a, b
	return seqA > seqB // want "raw ordering comparison on wrapping counter seqA"
}

func rawFieldCompare(p, q packet) bool {
	return p.Sequence <= q.Sequence // want "raw ordering comparison on wrapping counter Sequence"
}

func rawDistance(p, q packet) uint16 {
	return p.Sequence - q.Sequence // want "raw subtraction on wrapping counter Sequence wraps every 2\\^16"
}

func rawEpochCompare(p, q packet) bool {
	return p.Epoch < q.Epoch // want "raw ordering comparison on wrapping counter Epoch"
}

func rawSubAssign(p packet, lastSeq uint16) uint16 {
	lastSeq -= p.Sequence // want "raw subtraction on wrapping counter lastSeq wraps every 2\\^16"
	return lastSeq
}
