package netbound_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/netbound"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, netbound.Analyzer, "testdata/flagged", "repro/internal/transport")
}

func TestAllowed(t *testing.T) {
	lintkit.RunTestNone(t, netbound.Analyzer, "testdata/allowed", "repro/internal/transport")
}

func TestPackageFilter(t *testing.T) {
	// The pass gates the wire-facing packages only; the same code in,
	// say, a tooling package is out of scope.
	lintkit.RunTestNone(t, netbound.Analyzer, "testdata/flagged", "repro/internal/analytic")
}
