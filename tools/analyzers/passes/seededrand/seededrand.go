// Package seededrand forbids the global math/rand entry points in the
// repository's deterministic model and simulation packages. Every
// headline result (bit-identical parallel encode, reproducible netem
// chaos runs, the Figure-9 curves) depends on randomness flowing
// through an explicitly seeded generator — a *math/rand.Rand or the
// repo's stats.RNG — handed down the call path. The package-level
// convenience functions (rand.Intn, rand.Float64, ...) share hidden
// global state and, since Go 1.20, are runtime-seeded, so one stray
// call silently breaks reproducibility. Time-seeded sources
// (rand.NewSource(time.Now().UnixNano())) are rejected for the same
// reason even though they construct a local generator.
package seededrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the deterministic packages of the root module.
var DefaultPackages = []string{
	"internal/codec",
	"internal/netem",
	"internal/analytic",
	"internal/experiments",
	"internal/queuesim",
	"internal/traffic",
	"internal/stats",
}

// Analyzer is the seededrand pass.
var Analyzer = &lintkit.Analyzer{
	Name:     "seededrand",
	Doc:      "forbid global math/rand functions and time-seeded sources in deterministic code; thread a seeded *rand.Rand or stats.RNG instead",
	Packages: DefaultPackages,
	Run:      run,
}

// mathRandPaths covers both generations of the package.
var mathRandPaths = map[string]bool{"math/rand": true, "math/rand/v2": true}

// constructors build local generators and are fine by themselves (the
// seed they receive is checked separately for wall-clock taint).
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || !mathRandPaths[fn.Pkg().Path()] {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on *rand.Rand are explicit-generator use
				}
				if constructors[fn.Name()] {
					return true
				}
				pass.Reportf(n.Pos(), "use of global math/rand.%s shares hidden runtime-seeded state; thread a seeded *rand.Rand or stats.RNG through the call path", fn.Name())
			case *ast.CallExpr:
				fn := lintkit.FuncForCall(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil || !mathRandPaths[fn.Pkg().Path()] || !constructors[fn.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if pos, found := findWallClock(pass, arg); found {
						pass.Reportf(pos, "math/rand.%s seeded from the wall clock is unreproducible; derive the seed from the experiment configuration", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// findWallClock reports the position of a time.Now/time.Since call
// anywhere inside expr.
func findWallClock(pass *lintkit.Pass, expr ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && (lintkit.IsPkgFunc(fn, "time", "Now") || lintkit.IsPkgFunc(fn, "time", "Since")) {
			pos, found = sel.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
