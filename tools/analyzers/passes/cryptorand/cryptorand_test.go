package cryptorand_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/cryptorand"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, cryptorand.Analyzer, "testdata/flagged", "repro/internal/vcrypt")
}

func TestAllowMarker(t *testing.T) {
	lintkit.RunTestNone(t, cryptorand.Analyzer, "testdata/allowed", "repro/internal/vcrypt")
}

func TestPackageFilter(t *testing.T) {
	// Outside the crypto layer the same source is the seededrand pass's
	// business, not this one's.
	lintkit.RunTestNone(t, cryptorand.Analyzer, "testdata/flagged", "repro/internal/codec")
}
