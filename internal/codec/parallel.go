package codec

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/video"
)

// Intra-frame parallelism. Frames are coded one macroblock row at a time;
// rows are distributed over Config.Workers goroutines that claim row
// indices from a shared atomic counter (always in ascending order). Each
// row writes its chunks into a fresh per-row arena and stores them at
// their raster positions in EncodedFrame.MBData, so the assembled
// bitstream is byte-for-byte the one the serial encoder emits regardless
// of scheduling.
//
// I-frame, B-frame and decode rows are mutually independent (intra MBs
// predict from flat 128, inter MBs from the previous reconstruction, and
// every MB writes a disjoint pixel region). P-frame *encode* rows are
// not: the motion search of MB (my, mx) is seeded with the vector chosen
// at (my-1, mx). Dropping that predictor would change the bitstream, so
// P-rows run as a wavefront instead: row my-1 sends one token on a
// buffered channel after each macroblock it finishes, and row my receives
// one token before each of its own macroblocks, which keeps it exactly
// one column behind. The channel send/receive pair also orders the mvs[]
// writes of the row above before the reads below. Because rows are
// claimed in ascending order, the lowest unfinished row never waits on an
// unclaimed one, so the wavefront cannot deadlock.

// mbScratch bundles the per-worker buffers of the macroblock hot path:
// the bitstream writer (its buffer is recycled between macroblocks after
// the chunk is copied into the row arena), the three 8x8 sample blocks,
// and the motion-predictor candidate array.
type mbScratch struct {
	w       bitWriter
	samples [64]float64
	rec     [64]float64
	pred    [64]float64
	starts  [3][2]int
}

var scratchPool = sync.Pool{New: func() interface{} { return new(mbScratch) }}

func getScratch() *mbScratch   { return scratchPool.Get().(*mbScratch) }
func putScratch(sc *mbScratch) { scratchPool.Put(sc) }

// framePool recycles reconstruction frames (encoder references and the
// decoder's grey stand-in reference). Pooled frames come back dirty;
// every consumer either overwrites all three planes or fills them
// explicitly. Frames of the wrong geometry are dropped on Get.
var framePool sync.Pool

// getFrame returns a w x h frame with undefined contents.
func getFrame(w, h int) *video.Frame {
	for i := 0; i < 4; i++ {
		v := framePool.Get()
		if v == nil {
			break
		}
		f := v.(*video.Frame)
		if f.W == w && f.H == h {
			return f
		}
	}
	return video.NewFrame(w, h)
}

// putFrame returns a frame to the pool. Callers must not retain any
// reference to it afterwards.
func putFrame(f *video.Frame) {
	if f != nil {
		framePool.Put(f)
	}
}

// getGreyFrame returns a pooled frame with all planes at mid-grey.
func getGreyFrame(w, h int) *video.Frame {
	f := getFrame(w, h)
	for i := range f.Y {
		f.Y[i] = 128
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
	return f
}

// rowWorkers resolves the Workers knob against the macroblock row count:
// 0 and 1 both mean serial (the zero value keeps existing configurations
// byte-compatible), larger values are clamped to the row count.
func (c Config) rowWorkers(rows int) int {
	w := c.Workers
	if w > rows {
		w = rows
	}
	if w < 2 {
		return 1
	}
	return w
}

// parallelRows runs fn(my) for my in [0, rows) on workers goroutines.
// Rows are claimed in ascending order, which the P-frame wavefront relies
// on for deadlock freedom.
func parallelRows(workers, rows int, fn func(my int)) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				my := int(atomic.AddInt64(&next, 1)) - 1
				if my >= rows {
					return
				}
				fn(my)
			}
		}()
	}
	wg.Wait()
}

// encodeRow codes macroblock row my of a frame in the three batched
// phases of rowbatch.go. rowDone is the wavefront token array for
// P-frames (nil for I-frames and the serial path); tokens move entirely
// within the gather phase, which is the only phase that reads the row
// above's motion vectors — so a row's transform and emit phases overlap
// with its neighbours' gathers instead of serialising behind them. The
// row's chunks are packed into one arena allocation; the arena must be
// fresh per row because the MBData subslices outlive the call.
func (e *Encoder) encodeRow(src, recon *video.Frame, out *EncodedFrame, mvs [][2]int, ft FrameType, my int, sc *mbScratch, rowDone []chan struct{}) {
	cols := e.cfg.MBCols()
	b := rowBatchPool.Get().(*rowBatch)
	b.resize(blocksPerMB * cols)
	// Phase A: motion search and sample gathering, wavefront order.
	for mx := 0; mx < cols; mx++ {
		if rowDone != nil && my > 0 {
			<-rowDone[my-1]
		}
		if ft == IFrame {
			gatherIntraMB(b, src, mx, my)
		} else {
			starts := sc.starts[:0]
			if mx > 0 {
				starts = append(starts, mvs[my*cols+mx-1])
			}
			if my > 0 {
				starts = append(starts, mvs[(my-1)*cols+mx])
			}
			if e.prevMVs != nil {
				starts = append(starts, e.prevMVs[my*cols+mx])
			}
			x0, y0 := mx*mbSize, my*mbSize
			dx, dy := motionSearch(src, e.ref, x0, y0, e.cfg, starts)
			mvs[my*cols+mx] = [2]int{dx, dy}
			gatherInterMB(b, src, e.ref, mx, my, dx, dy)
		}
		if rowDone != nil {
			rowDone[my] <- struct{}{}
		}
	}
	// Phase B: batched DCT + quantisation over the whole row.
	qL, qC := e.cfg.QI, e.cfg.QI*1.2
	if ft != IFrame {
		qL, qC = e.cfg.QP, e.cfg.QP*1.2
	}
	for i := range b.samples {
		q := qL
		if i%blocksPerMB >= 4 {
			q = qC
		}
		b.nonzero[i] = quantiseBlock(&b.samples[i], q, &b.quant[i])
	}
	// Phase C: entropy coding and reconstruction, per macroblock.
	var arena []byte
	for mx := 0; mx < cols; mx++ {
		sc.w.reset()
		emitMB(b, sc, src, e.ref, recon, mvs, ft, mx, my, cols, qL, qC)
		chunk := sc.w.bytes()
		start := len(arena)
		arena = append(arena, chunk...)
		out.MBData[my*cols+mx] = arena[start:len(arena):len(arena)]
	}
	rowBatchPool.Put(b)
	// Row-granular accounting: two atomic adds per row, never per
	// macroblock, so the hot path stays allocation- and contention-free.
	mRowsEncoded.Inc()
	mMBsEncoded.Add(int64(cols))
}

// encodeRows codes every macroblock row of a frame, serially or on the
// configured worker pool.
func (e *Encoder) encodeRows(src, recon *video.Frame, out *EncodedFrame, mvs [][2]int, ft FrameType) {
	rows := e.cfg.MBRows()
	workers := e.cfg.rowWorkers(rows)
	timed := obs.Enabled()
	if timed {
		mRowWorkers.Set(int64(workers))
	}
	if workers <= 1 {
		sc := getScratch()
		for my := 0; my < rows; my++ {
			var t0 time.Time
			if timed {
				t0 = time.Now() //lint:allow walltime observability seam: times the row, never feeds the model
			}
			e.encodeRow(src, recon, out, mvs, ft, my, sc, nil)
			if timed {
				mRowEncodeSeconds.Observe(time.Since(t0).Seconds()) //lint:allow walltime observability seam: times the row, never feeds the model
			}
		}
		putScratch(sc)
		return
	}
	var rowDone []chan struct{}
	if ft != IFrame {
		cols := e.cfg.MBCols()
		rowDone = make([]chan struct{}, rows)
		for i := range rowDone {
			rowDone[i] = make(chan struct{}, cols)
		}
	}
	parallelRows(workers, rows, func(my int) {
		sc := getScratch()
		var t0 time.Time
		if timed {
			t0 = time.Now() //lint:allow walltime observability seam: times the row, never feeds the model
		}
		e.encodeRow(src, recon, out, mvs, ft, my, sc, rowDone)
		if timed {
			mRowEncodeSeconds.Observe(time.Since(t0).Seconds()) //lint:allow walltime observability seam: times the row, never feeds the model
		}
		putScratch(sc)
	})
}

// decodeRow reconstructs macroblock row my. ref is the prediction
// reference for inter rows (already resolved to a grey stand-in for a
// leading loss); conceal copies come from d.ref as in the serial path.
func (d *Decoder) decodeRow(ef *EncodedFrame, ref, out *video.Frame, my int) {
	cols := d.cfg.MBCols()
	for mx := 0; mx < cols; mx++ {
		chunk := ef.MBData[my*cols+mx]
		ok := chunk != nil
		if ok {
			r := newBitReader(chunk)
			var err error
			if ef.Type == IFrame {
				err = decodeIntraMB(r, out, mx, my, d.cfg.QI)
			} else {
				err = decodeInterMB(r, ref, out, mx, my, d.cfg)
			}
			ok = err == nil
		}
		if !ok {
			d.concealMB(out, mx, my)
		}
	}
}
