package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// The control-datagram parsers face the open socket directly: any host
// on the network can aim bytes at them before admission control has
// said a word. The fuzz targets below hold them to the full hostile
// contract — never panic, never admit a datagram that is not exactly
// one well-formed control message — and the seed corpora pin the
// boundary shapes (empty, magic-only, one byte short, one byte long,
// wrong magic) so `go test` exercises them even without -fuzz.

func FuzzParseReject(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TVRJ"))
	f.Add([]byte("TVRJ\x00\x00\x00"))
	f.Add(marshalReject(1500 * time.Millisecond))
	f.Add(append(marshalReject(time.Second), 0))
	f.Add(marshalFIN(0x7561))
	f.Fuzz(func(t *testing.T, data []byte) {
		retry, ok := parseReject(data)
		if !ok {
			if retry != 0 {
				t.Fatalf("rejected datagram still carried retry-after %v", retry)
			}
			return
		}
		if len(data) != 8 || [4]byte(data[:4]) != rejectMagic {
			t.Fatalf("admitted %d-byte datagram %q that is not a canonical TVRJ", len(data), data)
		}
		want := time.Duration(binary.BigEndian.Uint32(data[4:8])) * time.Millisecond
		if retry != want {
			t.Fatalf("retry-after = %v, want %v", retry, want)
		}
		if !bytes.Equal(marshalReject(retry), data) {
			t.Fatalf("marshalReject(%v) = %q does not round-trip %q", retry, marshalReject(retry), data)
		}
	})
}

func FuzzParseFIN(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TVFN"))
	f.Add([]byte("TVFN\x00\x00\x00"))
	f.Add(marshalFIN(0x7561))
	f.Add(append(marshalFIN(1), 0))
	f.Add(marshalReject(time.Second))
	f.Fuzz(func(t *testing.T, data []byte) {
		ssrc, ok := parseFIN(data)
		if !ok {
			if ssrc != 0 {
				t.Fatalf("rejected datagram still carried ssrc %d", ssrc)
			}
			return
		}
		if len(data) != 8 || [4]byte(data[:4]) != finMagic {
			t.Fatalf("admitted %d-byte datagram %q that is not a canonical TVFN", len(data), data)
		}
		if got := binary.BigEndian.Uint32(data[4:8]); ssrc != got {
			t.Fatalf("ssrc = %d, want %d", ssrc, got)
		}
		if !bytes.Equal(marshalFIN(ssrc), data) {
			t.Fatalf("marshalFIN(%d) does not round-trip %q", ssrc, data)
		}
	})
}

// TestControlDatagramRejection pins the exact-length contract outside
// the fuzzer: a datagram one byte long or short of the 8-byte frame is
// hostile, not a prefix of anything.
func TestControlDatagramRejection(t *testing.T) {
	hostile := [][]byte{
		nil,
		[]byte("TVRJ"),
		[]byte("TVFN"),
		[]byte("TVRJ\x00\x00\x00"),
		[]byte("TVFN\x00\x00\x00"),
		append(marshalReject(time.Second), 0xff),
		append(marshalFIN(7), 0xff),
		[]byte("XXXX\x00\x00\x00\x01"),
		bytes.Repeat([]byte{0}, 64),
	}
	for _, d := range hostile {
		if _, ok := parseReject(d); ok {
			t.Errorf("parseReject admitted hostile %d-byte datagram %q", len(d), d)
		}
		if _, ok := parseFIN(d); ok {
			t.Errorf("parseFIN admitted hostile %d-byte datagram %q", len(d), d)
		}
	}
	if retry, ok := parseReject(marshalReject(250 * time.Millisecond)); !ok || retry != 250*time.Millisecond {
		t.Errorf("canonical TVRJ round-trip failed: %v %v", retry, ok)
	}
	if ssrc, ok := parseFIN(marshalFIN(0xdeadbeef)); !ok || ssrc != 0xdeadbeef {
		t.Errorf("canonical TVFN round-trip failed: %d %v", ssrc, ok)
	}
}
