package walltime_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/walltime"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, walltime.Analyzer, "testdata/flagged", "repro/internal/queuesim")
}

func TestAllowMarkers(t *testing.T) {
	lintkit.RunTestNone(t, walltime.Analyzer, "testdata/allowed", "repro/internal/codec")
}

func TestPackageFilter(t *testing.T) {
	// Live transport code may read the clock; the pass only guards the
	// deterministic packages.
	lintkit.RunTestNone(t, walltime.Analyzer, "testdata/flagged", "repro/internal/transport")
}
