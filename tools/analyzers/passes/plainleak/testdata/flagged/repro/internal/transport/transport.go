// Package transport holds the flagged shapes: every function below
// leaks a packetized payload to a network write on some path.
package transport

import (
	"net"

	"repro/internal/buffer"
	"repro/internal/codec"
	"repro/internal/vcrypt"
)

// SendRaw forgets encryption entirely.
func SendRaw(conn net.Conn, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if _, err := conn.Write(p.Payload); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendDowngraded drops to plaintext when the policy says ModeNone — the
// blessed arm is fine — but the encrypting arm of the ladder forgets
// the cipher call, so ciphertext-mode packets leave in the clear.
func SendDowngraded(conn net.Conn, pol vcrypt.Policy, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if pol.Mode == vcrypt.ModeNone {
			if _, err := conn.Write(p.Payload); err != nil { // policy-sanctioned plaintext
				return err
			}
			continue
		}
		if _, err := conn.Write(p.Payload); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendGuarded consults the selector but never encrypts on the encrypt
// arm: the guard's false edge is blessed, the true edge still carries
// taint to the write below the merge.
func SendGuarded(conn net.Conn, sel *vcrypt.Selector, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if sel.ShouldEncrypt(p.Type == codec.IFrame) {
			_ = p // forgot vcrypt.Cipher.EncryptPacket here
		}
		if _, err := conn.Write(p.Payload); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendBuffered leaks through a helper in another package: the write is
// inside buffer.Flush, the finding lands at this call site.
func SendBuffered(conn net.Conn, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if err := buffer.Flush(conn, p.Payload); err != nil { // want `plaintext packet payload reaches a network write inside Flush`
			return err
		}
	}
	return nil
}

// SendZeroCopyRaw marshals into the wire buffer but forgets the
// in-place encryption before the socket.
func SendZeroCopyRaw(conn net.Conn, frame []byte) error {
	wps, err := codec.PacketizeInto(frame, 1200, 2)
	if err != nil {
		return err
	}
	for i := range wps {
		pkt := &wps[i]
		out := pkt.Wire(len(pkt.Payload))
		out[0], out[1] = 0x80, byte(i)
		if _, err := conn.Write(out); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendBatchLate stages a batch for EncryptPackets but writes the
// payloads before the batch call runs, so plaintext hits the wire.
func SendBatchLate(conn net.Conn, c *vcrypt.Cipher, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	payloads := make([][]byte, 0, len(pkts))
	for _, p := range pkts {
		payloads = append(payloads, p.Payload)
	}
	for _, p := range payloads {
		if _, err := conn.Write(p); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	c.EncryptPackets(0, payloads)
	return nil
}
