// Package netbound proves bounds on attacker-controlled integers. Any
// integer whose taint origin is an untrusted parse site (the
// binary.BigEndian / varint family reading bytes off the wire) must be
// provably within range before it is used as a slice index, a slice
// bound, a make size, or a loop/allocation count. The pass runs the
// lintkit interval abstract interpretation over every function of the
// wire-facing packages: a dynamic guard like `if n > len(buf) { return }`
// narrows the interval on the fallthrough edge, so correctly guarded
// parsers prove themselves and need no annotations. This is the static
// generalization of the two PR 4 fuzz findings — the Reassembler
// negative-index panic and the ReadContainer allocation bomb.
package netbound

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/analyzers/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "netbound",
	Doc: "attacker-controlled integers must carry a static bounds proof " +
		"before indexing, slicing, sizing make, or bounding a loop",
	Packages: []string{"internal/rtp", "internal/codec", "internal/transport"},
	Run:      run,
}

// maxAlloc is the largest allocation an unguarded-by-length untrusted
// size may request. It matches the tightest whole-message cap the
// protocol already enforces (the 16 MiB segment/frame limit), and the
// guards in tree use `> 1<<24`, which leaves exactly 1<<24 as the
// provable upper bound — so the comparison below is inclusive.
const maxAlloc = 1 << 24

// sourceNames is the untrusted parse family: every integer-returning
// decoder in encoding/binary that the wire parsers use. Matching by
// name alone (not receiver) covers both the BigEndian and LittleEndian
// ByteOrder methods and the package-level varint readers.
var sourceNames = map[string]bool{
	"Uint16":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Uvarint":     true,
	"Varint":      true,
	"ReadUvarint": true,
	"ReadVarint":  true,
}

func isSource(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "encoding/binary" && sourceNames[fn.Name()]
}

type sumsKey struct{}

func summaries(prog *lintkit.Program) lintkit.IntervalSummaries {
	if prog == nil {
		return nil
	}
	return prog.Cache(sumsKey{}, func() any {
		return lintkit.BuildIntervalSummaries(prog, isSource)
	}).(lintkit.IntervalSummaries)
}

func run(pass *lintkit.Pass) error {
	sums := summaries(pass.Prog)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ia := lintkit.AnalyzeFunc(pass.TypesInfo, pass.Prog, sums, isSource, fd)
			checkBody(pass, ia)
			// nested literals are analyzed standalone: captured values
			// start unconstrained, which is sound for any call site
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lintkit.AnalyzeFuncLit(pass.TypesInfo, pass.Prog, sums, isSource, lit))
				}
				return true
			})
		}
	}
	return nil
}

type finding struct {
	pos token.Pos
	msg string
}

// checkBody replays the solved analysis and reports every untrusted
// value reaching a sink without a bounds proof. Findings are collected
// and deduplicated because deferred calls appear twice in the CFG (at
// the defer statement and replayed in the exit block).
func checkBody(pass *lintkit.Pass, ia *lintkit.IntervalAnalysis) {
	seen := make(map[finding]bool)
	var found []finding
	report := func(pos token.Pos, msg string) {
		f := finding{pos, msg}
		if seen[f] {
			return
		}
		seen[f] = true
		found = append(found, f)
	}
	ia.Walk(func(b *lintkit.Block, n ast.Node, f lintkit.IntervalFact) {
		// shallow inspection: nested literals have their own solve, and
		// sub-statements of headers live in their own blocks
		var roots []ast.Node
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkRangeCount(pass, ia, f, n, report)
			if n.X != nil {
				roots = append(roots, n.X)
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				roots = append(roots, e)
			}
		case *ast.SelectStmt:
			// comm clauses are replayed in their own blocks
		default:
			roots = append(roots, n)
		}
		for _, root := range roots {
			ast.Inspect(root, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.IndexExpr:
					checkIndex(pass, ia, f, m, report)
				case *ast.SliceExpr:
					checkSlice(pass, ia, f, m, report)
				case *ast.CallExpr:
					checkMake(pass, ia, f, m, report)
				}
				return true
			})
		}
	}, func(b *lintkit.Block, e *lintkit.Edge, f lintkit.IntervalFact) {
		if e.Cond == nil || e.Negated || !ia.LoopHead(b) {
			return
		}
		checkLoopCond(pass, ia, f, e.Cond, report)
	})
	sort.Slice(found, func(i, j int) bool {
		if found[i].pos != found[j].pos {
			return found[i].pos < found[j].pos
		}
		return found[i].msg < found[j].msg
	})
	for _, f := range found {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// checkIndex requires untrusted indices to be provably within
// [0, len(base)-1] (or inside a fixed array's bounds).
func checkIndex(pass *lintkit.Pass, ia *lintkit.IntervalAnalysis, f lintkit.IntervalFact, e *ast.IndexExpr, report func(token.Pos, string)) {
	baseType := pass.TypesInfo.TypeOf(e.X)
	if baseType == nil {
		return
	}
	var arrLen int64 = -1
	switch u := baseType.Underlying().(type) {
	case *types.Slice:
	case *types.Array:
		arrLen = u.Len()
	case *types.Pointer:
		arr, ok := u.Elem().Underlying().(*types.Array)
		if !ok {
			return
		}
		arrLen = arr.Len()
	default:
		return // map index, type param, generic instantiation
	}
	v := ia.Eval(f, e.Index)
	if !v.Untrusted {
		return
	}
	if v.Lo < 0 {
		report(e.Index.Pos(), "untrusted index may be negative — prove it with a guard before indexing")
		return
	}
	if arrLen >= 0 {
		if v.Hi > arrLen-1 {
			report(e.Index.Pos(), "untrusted index lacks an upper-bound proof against the array length")
		}
		return
	}
	if sym, ok := lintkit.LenSymFor(pass.TypesInfo, e.X); ok {
		if v.BoundedBy(sym, -1) {
			return
		}
	}
	report(e.Index.Pos(), "untrusted index lacks a proof against len() of the indexed slice")
}

// checkSlice requires untrusted slice bounds to be provably within
// [0, len(base)].
func checkSlice(pass *lintkit.Pass, ia *lintkit.IntervalAnalysis, f lintkit.IntervalFact, e *ast.SliceExpr, report func(token.Pos, string)) {
	baseType := pass.TypesInfo.TypeOf(e.X)
	if baseType == nil {
		return
	}
	switch baseType.Underlying().(type) {
	case *types.Slice:
	case *types.Basic: // string
	default:
		return
	}
	sym, haveSym := lintkit.LenSymFor(pass.TypesInfo, e.X)
	for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
		if bound == nil {
			continue
		}
		v := ia.Eval(f, bound)
		if !v.Untrusted {
			continue
		}
		if v.Lo < 0 {
			report(bound.Pos(), "untrusted slice bound may be negative — prove it with a guard before slicing")
			continue
		}
		if haveSym && v.BoundedBy(sym, 0) {
			continue
		}
		report(bound.Pos(), "untrusted slice bound lacks a proof against len() of the sliced value")
	}
}

// checkMake requires untrusted make sizes to be non-negative and
// bounded — either by some len() the input already has, or by the
// protocol's inclusive 1<<24 allocation cap.
func checkMake(pass *lintkit.Pass, ia *lintkit.IntervalAnalysis, f lintkit.IntervalFact, call *ast.CallExpr, report func(token.Pos, string)) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	for _, size := range call.Args[1:] {
		v := ia.Eval(f, size)
		if !v.Untrusted {
			continue
		}
		if v.Lo < 0 {
			report(size.Pos(), "untrusted make size may be negative — prove it with a guard")
			continue
		}
		if v.Hi <= maxAlloc || v.HasSymHi() {
			continue
		}
		report(size.Pos(), "untrusted make size is unbounded — an attacker-sized allocation; cap it before allocating")
	}
}

// checkLoopCond flags loop conditions whose trip count an attacker
// controls without bound: an untrusted comparison operand with no
// finite and no symbolic upper bound.
func checkLoopCond(pass *lintkit.Pass, ia *lintkit.IntervalAnalysis, f lintkit.IntervalFact, cond ast.Expr, report func(token.Pos, string)) {
	cmp, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch cmp.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return
	}
	for _, operand := range []ast.Expr{cmp.X, cmp.Y} {
		v := ia.Eval(f, operand)
		if v.Untrusted && v.Hi == lintkit.PosInf && !v.HasSymHi() {
			report(operand.Pos(), "untrusted loop bound is unbounded — an attacker-controlled trip count; cap it before looping")
		}
	}
}

// checkRangeCount flags `for range n` over an untrusted, unbounded n.
func checkRangeCount(pass *lintkit.Pass, ia *lintkit.IntervalAnalysis, f lintkit.IntervalFact, rs *ast.RangeStmt, report func(token.Pos, string)) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return
	}
	v := ia.Eval(f, rs.X)
	if v.Untrusted && v.Hi == lintkit.PosInf && !v.HasSymHi() {
		report(rs.X.Pos(), "untrusted range count is unbounded — an attacker-controlled trip count; cap it before looping")
	}
}
