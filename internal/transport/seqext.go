package transport

// seqExtender maps the 16-bit RTP sequence numbers on the wire onto the
// sender's 64-bit extended sequence space (the cipher IV counter) using
// nearest-epoch estimation, the RFC 3711 §3.3.1 index-guess algorithm.
//
// For each arrival the candidate extensions are the sequence placed in
// the previous, current and next epoch; the one closest to the highest
// sequence delivered so far wins. A reordered straggler from just before
// a wrap (seq 65533 arriving after 0, 1 of the new epoch) therefore
// lands back in the OLD epoch instead of being misread as a huge forward
// jump — the bug the previous "bump epoch on any >32768 backwards step"
// heuristic had, which corrupted the IV stream and leapt maxSeq ~65536
// ahead.
type seqExtender struct {
	epoch   uint64 // current epoch base, always a multiple of 1<<16
	last    uint16 // highest sequence delivered within the current epoch
	started bool
}

// Extend returns the 64-bit extended sequence for wire sequence s.
// The epoch state only advances when s moves the stream head forward;
// reordered stragglers are extended into whatever epoch is nearest but
// never drag the reference backwards.
func (x *seqExtender) Extend(s uint16) uint64 {
	if !x.started {
		x.started = true
		x.last = s
		return uint64(s)
	}
	ref := x.epoch | uint64(x.last)
	// Adjacent candidates differ by exactly 1<<16, so two of them CAN
	// tie: an arrival exactly 1<<15 away from the reference is equally
	// close to the current epoch and to a neighbour. The strict-minimum
	// scan keeps the candidate examined first, so ties resolve to the
	// current epoch — on ambiguous evidence the stream does not cross a
	// wrap. TestSeqExtenderTieDistance pins this choice.
	best := x.epoch | uint64(s)
	if x.epoch >= 1<<16 {
		if c := (x.epoch - 1<<16) | uint64(s); seqDist(c, ref) < seqDist(best, ref) {
			best = c
		}
	}
	if c := (x.epoch + 1<<16) | uint64(s); seqDist(c, ref) < seqDist(best, ref) {
		best = c
	}
	if best > ref {
		x.epoch = best &^ 0xFFFF
		x.last = s
	}
	return best
}

func seqDist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
