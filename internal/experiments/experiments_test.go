package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/vcrypt"
	"repro/internal/video"
)

func testFixture(t *testing.T) *Fixture {
	t.Helper()
	f, err := NewFixture(Options{Width: 96, Height: 96, Frames: 150, Repetitions: 1, Seed: 1, Stations: 3})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 7 {
		t.Fatalf("Table 1 has %d rows", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GOP Size", "AES128, AES256, 3DES", "CIF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendered table:\n%s", want, out)
		}
	}
}

func TestWorkloadCachingAndShapes(t *testing.T) {
	f := testFixture(t)
	w1, err := f.Workload(video.MotionLow, 30)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := f.Workload(video.MotionLow, 30)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("workload should be cached")
	}
	if len(w1.Encoded) != 150 || w1.Cfg.GOPSize != 30 {
		t.Fatalf("workload shape wrong: %d frames GOP %d", len(w1.Encoded), w1.Cfg.GOPSize)
	}
	if err := w1.Dist.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCellPolicyOrderings(t *testing.T) {
	f := testFixture(t)
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		t.Fatal(err)
	}
	none, err := f.runCell(w, vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.TripleDES}, SamsungDevice(), false, false)
	if err != nil {
		t.Fatal(err)
	}
	all, err := f.runCell(w, vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.TripleDES}, SamsungDevice(), false, false)
	if err != nil {
		t.Fatal(err)
	}
	if all.Delay.Mean <= none.Delay.Mean {
		t.Fatalf("full encryption must cost delay: %v vs %v", all.Delay.Mean, none.Delay.Mean)
	}
	if all.Power.Mean <= none.Power.Mean {
		t.Fatalf("full encryption must cost power: %v vs %v", all.Power.Mean, none.Power.Mean)
	}
	if all.PSNR.Mean >= none.PSNR.Mean {
		t.Fatalf("full encryption must lower eavesdropper PSNR: %v vs %v", all.PSNR.Mean, none.PSNR.Mean)
	}
	// The receiver decodes usable video either way (channel losses on a
	// fast clip cost some quality, but it must stay far above the
	// eavesdropper's floor).
	if all.RxPSNR.Mean < 18 {
		t.Fatalf("receiver PSNR %v too low", all.RxPSNR.Mean)
	}
	if all.RxPSNR.Mean <= all.PSNR.Mean {
		t.Fatalf("receiver (%v dB) must beat eavesdropper (%v dB)", all.RxPSNR.Mean, all.PSNR.Mean)
	}
}

func TestRunCellHTTPSlower(t *testing.T) {
	f := testFixture(t)
	w, err := f.Workload(video.MotionLow, 30)
	if err != nil {
		t.Fatal(err)
	}
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	udp, err := f.runCell(w, pol, SamsungDevice(), false, false)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := f.runCell(w, pol, SamsungDevice(), true, false)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Delay.Mean <= udp.Delay.Mean {
		t.Fatalf("HTTP/TCP should be slower: %v vs %v", tcp.Delay.Mean, udp.Delay.Mean)
	}
}

func TestFig2Shapes(t *testing.T) {
	f := testFixture(t)
	tab, err := Fig2(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig 2 should have 3 motion rows, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "low" || tab.Rows[2][0] != "high" {
		t.Fatalf("row order wrong: %v", tab.Rows)
	}
}

func TestPowerSavingsComputation(t *testing.T) {
	res := []PowerResult{
		{Alg: vcrypt.AES256, GOP: 30, Motion: video.MotionLow, Level: vcrypt.ModeNone},
		{Alg: vcrypt.AES256, GOP: 30, Motion: video.MotionLow, Level: vcrypt.ModeIFrames},
		{Alg: vcrypt.AES256, GOP: 30, Motion: video.MotionLow, Level: vcrypt.ModeAll},
	}
	res[0].Power.Mean = 1.0
	res[1].Power.Mean = 1.1
	res[2].Power.Mean = 2.0
	incI, incAll, saved, err := PowerSavings(res, video.MotionLow, vcrypt.AES256, 30)
	if err != nil {
		t.Fatal(err)
	}
	if incI < 0.099 || incI > 0.101 {
		t.Fatalf("I increase %v want 0.10", incI)
	}
	if incAll != 1.0 {
		t.Fatalf("all increase %v want 1.0", incAll)
	}
	if saved < 0.899 || saved > 0.901 {
		t.Fatalf("saved %v want 0.90", saved)
	}
	if _, _, _, err := PowerSavings(nil, video.MotionLow, vcrypt.AES256, 30); err == nil {
		t.Fatal("missing cells should error")
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{}.fill()
	if o.Width != video.CIFWidth || o.Frames != 300 || o.Repetitions != 5 || o.Stations != 3 || o.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	full := Full()
	if full.Frames != 300 || full.Repetitions != 20 {
		t.Fatalf("Full wrong: %+v", full)
	}
	quick := Quick()
	if quick.Frames < 150 {
		t.Fatalf("Quick too short for GOP-50 calibration: %+v", quick)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "test",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== test ==") || !strings.Contains(out, "note: hello") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "xxx  y") {
		t.Fatalf("alignment wrong:\n%s", out)
	}
}

func TestExtensionsTable(t *testing.T) {
	f := testFixture(t)
	tab, err := ExtensionsTable(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 variants, got %d", len(tab.Rows))
	}
	find := func(name string) []string {
		for _, r := range tab.Rows {
			if r[0] == name {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	full := find("all (full payload)")
	hdr := find("all (header-only 64B)")
	padded := find("I-only + pad-to-MTU")
	// Header-only must be cheaper than full payload.
	var fd, hd float64
	fmt.Sscanf(full[1], "%f", &fd)
	fmt.Sscanf(hdr[1], "%f", &hd)
	if hd >= fd {
		t.Fatalf("header-only delay %v not below full %v", hd, fd)
	}
	// Padding must reduce the size-attack accuracy to near the base rate.
	var accPad float64
	fmt.Sscanf(padded[4], "%f", &accPad)
	if accPad > 95 {
		t.Fatalf("padding left the size attack at %.1f%%", accPad)
	}
}

// Regression guard on the headline validation: the analytical delay must
// track the measured delay within 20% on a representative cell (Fig. 7's
// agreement, pinned as a test).
func TestAnalysisTracksExperimentDelay(t *testing.T) {
	f := testFixture(t)
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := f.Calibrate(w, SamsungDevice())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []vcrypt.Mode{vcrypt.ModeNone, vcrypt.ModeAll} {
		pol := vcrypt.Policy{Mode: mode, Alg: vcrypt.TripleDES}
		pred, err := cal.Predict(pol)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := f.runCell(w, pol, SamsungDevice(), false, false)
		if err != nil {
			t.Fatal(err)
		}
		ratio := pred.MeanSojourn / cell.Delay.Mean
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("%v: analysis %.3f ms vs experiment %.3f ms (ratio %.2f)",
				mode, pred.MeanSojourn*1e3, cell.Delay.Mean*1e3, ratio)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		Title:   "csv",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "two, with comma"}},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"two, with comma\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q want %q", buf.String(), want)
	}
}

func TestSNRSweepShapes(t *testing.T) {
	f := testFixture(t)
	tab, err := SNRSweepTable(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 SNR rows, got %d", len(tab.Rows))
	}
	var firstPlain, lastPlain, firstEnc float64
	fmt.Sscanf(tab.Rows[0][2], "%f", &firstPlain)
	fmt.Sscanf(tab.Rows[len(tab.Rows)-1][2], "%f", &lastPlain)
	fmt.Sscanf(tab.Rows[0][3], "%f", &firstEnc)
	// Plaintext leak shrinks as the eavesdropper's channel worsens.
	if lastPlain >= firstPlain {
		t.Fatalf("plaintext PSNR should fall with SNR: %v -> %v", firstPlain, lastPlain)
	}
	// Encryption floors even the adjacent eavesdropper.
	if firstEnc > 20 {
		t.Fatalf("I-encrypted PSNR at high SNR is %v, want floor", firstEnc)
	}
}
