package analytic

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ServiceParams describes the per-packet service time of Eq. (3),
// T = Te + Tb + Tt: the (policy-dependent) encryption time, the MAC backoff
// time, and the transmission time. Times are in seconds.
//
// The paper parameterises packet selection with a single probability q(P)
// that a packet is encrypted (Eq. 4). Real policies select by frame class
// ("encrypt the I-frame packets"), so we carry one selection probability per
// class: EncI (probability an I-frame packet is encrypted) and EncP (same
// for P-frame packets). The paper's form is the special case EncI = EncP =
// q; the fraction of encrypted packets q(P) = PI*EncI + (1-PI)*EncP either
// way, which is what the distortion model consumes.
type ServiceParams struct {
	// PI is p_I, the probability an arriving packet belongs to an I-frame.
	PI float64

	// EncI, EncP are the per-class encryption selection probabilities of
	// the policy in effect.
	EncI, EncP float64

	// Encryption time of an MTU-sized I-frame packet and of a (smaller)
	// P-frame packet: mean and standard deviation of the Gaussian
	// variation model of Eq. (15).
	EncMeanI, EncSigmaI float64
	EncMeanP, EncSigmaP float64

	// Transmission times per class (Eq. 16).
	TxMeanI, TxSigmaI float64
	TxMeanP, TxSigmaP float64

	// PS is the packet success probability p_s of Section 4.1 and LambdaB
	// the backoff rate of Eq. (6)-(7): a packet waits a geometric number of
	// exponential(LambdaB) intervals, zero with probability PS.
	PS, LambdaB float64

	// MaxErlangOrder caps the phase count used to represent each
	// low-variance component (0 selects DefaultMaxErlangOrder).
	MaxErlangOrder int
}

// Validate reports whether the parameters are usable.
func (sp ServiceParams) Validate() error {
	switch {
	case sp.PI < 0 || sp.PI > 1:
		return fmt.Errorf("analytic: PI=%g out of [0,1]", sp.PI)
	case sp.EncI < 0 || sp.EncI > 1 || sp.EncP < 0 || sp.EncP > 1:
		return fmt.Errorf("analytic: encryption probabilities out of [0,1]")
	case sp.EncMeanI < 0 || sp.EncMeanP < 0:
		return fmt.Errorf("analytic: negative encryption means")
	case sp.TxMeanI <= 0 || sp.TxMeanP <= 0:
		return fmt.Errorf("analytic: transmission means must be positive")
	case sp.PS <= 0 || sp.PS > 1:
		return fmt.Errorf("analytic: PS=%g out of (0,1]", sp.PS)
	case sp.PS < 1 && sp.LambdaB <= 0:
		return fmt.Errorf("analytic: LambdaB must be positive when PS<1")
	}
	return nil
}

// EncryptedFraction returns q(P), the stationary fraction of packets the
// policy encrypts.
func (sp ServiceParams) EncryptedFraction() float64 {
	return sp.PI*sp.EncI + (1-sp.PI)*sp.EncP
}

// encMoments returns E[Te] and E[Te^2] of the encryption component, a
// mixture over {encrypted-I, encrypted-P, plaintext}.
func (sp ServiceParams) encMoments() (m1, m2 float64) {
	wI := sp.PI * sp.EncI
	wP := (1 - sp.PI) * sp.EncP
	m1 = wI*sp.EncMeanI + wP*sp.EncMeanP
	m2 = wI*(sp.EncMeanI*sp.EncMeanI+sp.EncSigmaI*sp.EncSigmaI) +
		wP*(sp.EncMeanP*sp.EncMeanP+sp.EncSigmaP*sp.EncSigmaP)
	return
}

// backoffMoments returns E[Tb] and E[Tb^2] from Eq. (7): Tb = 0 w.p. ps,
// else Exp(ps*lambdaB).
func (sp ServiceParams) backoffMoments() (m1, m2 float64) {
	if sp.PS >= 1 {
		return 0, 0
	}
	rate := sp.PS * sp.LambdaB
	m1 = (1 - sp.PS) / rate
	m2 = (1 - sp.PS) * 2 / (rate * rate)
	return
}

// txMoments returns E[Tt] and E[Tt^2], the I/P mixture of Eq. (8).
func (sp ServiceParams) txMoments() (m1, m2 float64) {
	m1 = sp.PI*sp.TxMeanI + (1-sp.PI)*sp.TxMeanP
	m2 = sp.PI*(sp.TxMeanI*sp.TxMeanI+sp.TxSigmaI*sp.TxSigmaI) +
		(1-sp.PI)*(sp.TxMeanP*sp.TxMeanP+sp.TxSigmaP*sp.TxSigmaP)
	return
}

// Moments returns the exact first and second raw moments of the total
// service time T = Te + Tb + Tt under the paper's mutual-independence
// assumption (Eq. 10): means add, and
// E[T^2] = sum E[X^2] + 2*sum_{i<j} E[X_i]E[X_j].
func (sp ServiceParams) Moments() (m1, m2 float64) {
	e1, e2 := sp.encMoments()
	b1, b2 := sp.backoffMoments()
	t1, t2 := sp.txMoments()
	m1 = e1 + b1 + t1
	m2 = e2 + b2 + t2 + 2*(e1*b1+e1*t1+b1*t1)
	return
}

// Mean returns E[T].
func (sp ServiceParams) Mean() float64 {
	m1, _ := sp.Moments()
	return m1
}

// LST evaluates the service-time Laplace-Stieltjes transform of Eq. (10)
// at real s: H(s) = He(s) * Hb(s) * Ht(s), with the Gaussian-variation
// component transforms of Eqs. (17) and (18) and the backoff transform of
// Eq. (7). Only valid for s < PS*LambdaB (the backoff transform's
// abscissa), matching the paper's s < lambda_b condition.
func (sp ServiceParams) LST(s float64) float64 {
	return sp.lstEnc(s) * sp.lstBackoff(s) * sp.lstTx(s)
}

func gaussLST(s, mu, sigma float64) float64 {
	return math.Exp(-mu*s + 0.5*sigma*sigma*s*s)
}

// lstEnc is Eq. (17) generalised to per-class selection probabilities; the
// plaintext branch contributes its mass at zero (the term the paper leaves
// implicit).
func (sp ServiceParams) lstEnc(s float64) float64 {
	wI := sp.PI * sp.EncI
	wP := (1 - sp.PI) * sp.EncP
	return wI*gaussLST(s, sp.EncMeanI, sp.EncSigmaI) +
		wP*gaussLST(s, sp.EncMeanP, sp.EncSigmaP) +
		(1 - wI - wP)
}

// lstBackoff is Eq. (7): Hb(s) = ps (lambdaB + s) / (s + ps*lambdaB).
func (sp ServiceParams) lstBackoff(s float64) float64 {
	if sp.PS >= 1 {
		return 1
	}
	return sp.PS * (sp.LambdaB + s) / (s + sp.PS*sp.LambdaB)
}

// lstTx is Eq. (18).
func (sp ServiceParams) lstTx(s float64) float64 {
	return sp.PI*gaussLST(s, sp.TxMeanI, sp.TxSigmaI) +
		(1-sp.PI)*gaussLST(s, sp.TxMeanP, sp.TxSigmaP)
}

// PH constructs the phase-type representation of the service time: the
// convolution of the three independent components, each component a
// mixture fitted to its class moments. Gaussian variations are represented
// by their first two moments (mixed-Erlang / hyperexponential fits); the
// truncation error is bounded by the MaxErlangOrder setting.
func (sp ServiceParams) PH() PH {
	order := sp.MaxErlangOrder
	if order <= 0 {
		order = DefaultMaxErlangOrder
	}
	fit := func(mean, sigma float64) PH {
		return PHFit2Moment(mean, sigma*sigma, order)
	}
	// Encryption component.
	wI := sp.PI * sp.EncI
	wP := (1 - sp.PI) * sp.EncP
	var enc PH
	switch {
	case stats.NearZero(wI) && stats.NearZero(wP):
		enc = PHZero()
	case sp.EncMeanI <= 0 && sp.EncMeanP <= 0:
		enc = PHZero()
	default:
		comps := []PH{PHZero(), PHZero(), PHZero()}
		if wI > 0 && sp.EncMeanI > 0 {
			comps[0] = fit(sp.EncMeanI, sp.EncSigmaI)
		}
		if wP > 0 && sp.EncMeanP > 0 {
			comps[1] = fit(sp.EncMeanP, sp.EncSigmaP)
		}
		enc = Mixture([]float64{wI, wP, 1 - wI - wP}, comps)
	}
	// Backoff component: atom at zero w.p. ps, else Exp(ps*lambdaB).
	var backoff PH
	if sp.PS >= 1 {
		backoff = PHZero()
	} else {
		rate := sp.PS * sp.LambdaB
		b := PHExponential(rate)
		b.Alpha[0] = 1 - sp.PS
		b.Mass0 = sp.PS
		backoff = b
	}
	// Transmission component.
	tx := Mixture(
		[]float64{sp.PI, 1 - sp.PI},
		[]PH{fit(sp.TxMeanI, sp.TxSigmaI), fit(sp.TxMeanP, sp.TxSigmaP)},
	)
	return ConvolveAll(enc, backoff, tx).Compress()
}
