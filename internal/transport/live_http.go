package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/netem"
	"repro/internal/vcrypt"
)

// HTTP/TCP transfer mode (Section 6.4). The upload body is a sequence of
// segments, each carrying the encrypted-flag in its header — the paper's
// "Marker bit in the option header" moved into an application framing
// header, which is equivalent for the receiver's decrypt-or-not decision:
//
//	flags(1) | seq(8, big endian) | length(4) | payload
//
// The eavesdropper overhears the TCP stream on the WiFi channel; the
// server exposes a Tap so a capture pipeline with its own loss filter can
// be attached, standing in for tcpdump on the open network.

const segmentHeaderSize = 1 + 8 + 4

const flagEncrypted = 0x01

// NextSeqHeader carries the server's next-needed (highest contiguous)
// sequence number on every response, so an interrupted client can resume
// from exactly where the server stopped instead of re-sending the clip.
const NextSeqHeader = "X-Thrifty-Next-Seq"

// RestartHeader announces a fresh sequence epoch on a POST: the client
// abandoned the previous stream (e.g. after a reduced-quality re-encode)
// and restarts at the given base sequence. The epoch jump keeps per-seq
// cipher IVs unique across the old and new clip bytes.
const RestartHeader = "X-Thrifty-Restart"

// putSegmentHeader writes the header of an n-byte segment into hdr's
// first segmentHeaderSize bytes. The flags byte is stored
// unconditionally: on the zero-copy path hdr is the headroom of a
// recycled wire buffer still holding a previous packet's bytes.
func putSegmentHeader(hdr []byte, seq uint64, encrypted bool, n int) {
	hdr[0] = 0
	if encrypted {
		hdr[0] = flagEncrypted
	}
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(n))
}

// WriteSegment frames one payload.
func WriteSegment(w io.Writer, seq uint64, encrypted bool, payload []byte) error {
	var hdr [segmentHeaderSize]byte
	putSegmentHeader(hdr[:], seq, encrypted, len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadSegment parses one framed segment.
func ReadSegment(r io.Reader) (seq uint64, encrypted bool, payload []byte, err error) {
	var hdr [segmentHeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	encrypted = hdr[0]&flagEncrypted != 0
	seq = binary.BigEndian.Uint64(hdr[1:9])
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > 1<<24 {
		return 0, false, nil, fmt.Errorf("transport: implausible segment of %d bytes", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, false, nil, err
	}
	return seq, encrypted, payload, nil
}

// HTTPUploadServer receives video uploads, decrypts marked segments and
// reassembles the clip, playing the commercial-upload-endpoint role of
// Section 6.4.
type HTTPUploadServer struct {
	cfg    codec.Config
	cipher *vcrypt.Cipher

	// HeaderOnlyBytes mirrors the sender's Policy.HeaderOnlyBytes
	// (0 = whole payload is encrypted). Set before serving.
	HeaderOnlyBytes int

	mu       sync.Mutex
	asm      *codec.Reassembler
	segments int
	next     uint64 // next-needed sequence (all below arrived contiguously)
	dups     int    // already-acknowledged segments received again

	// Tap, when non-nil, sees every segment exactly as it crossed the
	// wire (still encrypted), emulating a radio capture of the TCP
	// stream.
	Tap func(seq uint64, encrypted bool, payload []byte)
}

// NewHTTPUploadServer builds the handler state.
func NewHTTPUploadServer(cfg codec.Config, alg vcrypt.Algorithm, key []byte) (*HTTPUploadServer, error) {
	asm, err := codec.NewReassembler(cfg)
	if err != nil {
		return nil, err
	}
	cipher, err := vcrypt.NewCipher(alg, key)
	if err != nil {
		return nil, err
	}
	return &HTTPUploadServer{cfg: cfg, cipher: cipher, asm: asm}, nil
}

// ServeHTTP implements http.Handler: POST uploads marker-tagged
// segments; GET/HEAD report the resume point in NextSeqHeader so a
// client whose connection died mid-upload continues from the first
// unacknowledged segment.
func (s *HTTPUploadServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet, http.MethodHead:
		w.Header().Set(NextSeqHeader, strconv.FormatUint(s.NextSeq(), 10))
		w.WriteHeader(http.StatusOK)
		if req.Method == http.MethodGet {
			fmt.Fprintf(w, "next %d\n", s.NextSeq()) //lint:allow bitioerr best-effort status body; the header already carried the answer
		}
		return
	case http.MethodPost:
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
		return
	}
	if h := req.Header.Get(RestartHeader); h != "" {
		base, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			http.Error(w, "bad restart base", http.StatusBadRequest)
			return
		}
		if err := s.restart(base); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	br := bufio.NewReader(req.Body)
	count := 0
	for {
		seq, encrypted, payload, err := ReadSegment(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// The link died mid-segment: keep everything already
			// reassembled so the client can resume from NextSeq.
			w.Header().Set(NextSeqHeader, strconv.FormatUint(s.NextSeq(), 10))
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.Tap != nil {
			tapCopy := append([]byte(nil), payload...)
			s.Tap(seq, encrypted, tapCopy)
		}
		s.mu.Lock()
		if seq < s.next {
			// Duplicate of acknowledged data (a resume overshot): count
			// and drop — re-adding would double-decrypt the payload.
			s.dups++
			s.segments++
			s.mu.Unlock()
			mServerSegments.Inc()
			mServerDuplicates.Inc()
			continue
		}
		if seq > s.next {
			next := s.next
			s.mu.Unlock()
			w.Header().Set(NextSeqHeader, strconv.FormatUint(next, 10))
			http.Error(w, fmt.Sprintf("gap: got seq %d, need %d", seq, next), http.StatusConflict)
			return
		}
		if encrypted {
			span := len(payload)
			if s.HeaderOnlyBytes > 0 && s.HeaderOnlyBytes < span {
				span = s.HeaderOnlyBytes
			}
			s.cipher.DecryptPacket(seq, payload[:span])
		}
		if err := s.asm.Add(payload); err == nil {
			count++
		}
		s.segments++
		s.next++
		s.mu.Unlock()
		mServerSegments.Inc()
	}
	w.Header().Set(NextSeqHeader, strconv.FormatUint(s.NextSeq(), 10))
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok %d next %d\n", count, s.NextSeq()) //lint:allow bitioerr best-effort status body; the header already carried the answer
}

// restart abandons the current reassembly and expects the stream to begin
// again at the given base sequence.
func (s *HTTPUploadServer) restart(base uint64) error {
	asm, err := codec.NewReassembler(s.cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.asm = asm
	s.next = base
	s.mu.Unlock()
	return nil
}

// NextSeq returns the next sequence number the server needs — everything
// below it arrived contiguously and is acknowledged.
func (s *HTTPUploadServer) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// DuplicateSegments returns how many already-acknowledged segments were
// received again (zero when resumes never overshoot).
func (s *HTTPUploadServer) DuplicateSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Frames returns the reassembled clip.
func (s *HTTPUploadServer) Frames(total int) []*codec.EncodedFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asm.Frames(total)
}

// Segments returns how many segments arrived.
func (s *HTTPUploadServer) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segments
}

// HTTPUploadReport summarises a live HTTP upload.
type HTTPUploadReport struct {
	Segments  int
	Encrypted int
	Bytes     int
	Elapsed   time.Duration
}

// LiveHTTPUpload streams the session to the server URL as one POST,
// optionally pacing the body through a netem.Pacer to emulate the WiFi
// bottleneck.
func LiveHTTPUpload(s Session, url string, pacer *netem.Pacer) (HTTPUploadReport, error) {
	var rep HTTPUploadReport
	if err := s.Validate(); err != nil {
		return rep, err
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return rep, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return rep, err
	}
	pr, pw := io.Pipe()
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		defer pw.Close()
		pool := codec.NewBufPool()
		var wps []codec.WirePacket
		seq := uint64(0)
		for _, ef := range s.Encoded {
			var err error
			wps, err = codec.PacketizeInto(ef, s.MTU, segmentHeaderSize, pool, wps[:0])
			if err != nil {
				errCh <- err
				pw.CloseWithError(err) //lint:allow bitioerr pipe CloseWithError is documented to always return nil
				return
			}
			for i := range wps {
				pkt := &wps[i]
				payload := pkt.Payload
				encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
				// The segment header lands in the buffer's headroom and
				// the payload is encrypted where it already lies, so the
				// whole segment crosses the pipe in one copy-free write.
				wire := pkt.Wire(len(payload))
				putSegmentHeader(wire, seq, encrypted, len(payload))
				if encrypted {
					cipher.EncryptPacket(seq, wire[segmentHeaderSize:][:s.Policy.EncryptSpan(len(payload))])
					rep.Encrypted++
				}
				if pacer != nil {
					pacer.Wait(len(wire))
				}
				if _, err := pw.Write(wire); err != nil {
					errCh <- err
					return
				}
				pool.Put(pkt)
				rep.Segments++
				rep.Bytes += len(wire)
				seq++
			}
		}
		errCh <- nil
	}()
	resp, err := http.Post(url, "application/octet-stream", pr)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("transport: upload failed with status %s", resp.Status)
	}
	if err := <-errCh; err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
