package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Moment returns the k-th raw moment (1/n) Σ x^k.
func Moment(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Pow(x, float64(k))
	}
	return s / float64(len(xs))
}

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary aggregates the statistics the experiment harness reports for
// repeated runs: mean, standard deviation and a 95% confidence interval
// half-width, as in the paper's "20 repetitions, 95% confidence intervals"
// methodology (Section 6.1).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64 // half-width of the 95% confidence interval on the mean
}

// Summarize computes a Summary of xs. For n ≥ 30 the normal critical value
// 1.96 is used; for smaller n a Student-t critical value is looked up.
func Summarize(xs []float64) Summary {
	n := len(xs)
	s := Summary{N: n, Mean: Mean(xs), StdDev: StdDev(xs)}
	if n >= 2 {
		s.CI95 = tCritical95(n-1) * s.StdDev / math.Sqrt(float64(n))
	}
	return s
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func tCritical95(df int) float64 {
	// Table for small df, asymptote 1.96 beyond.
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the per-bin counts. Values outside the range are clamped to the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
