package transport

import (
	"fmt"
	"sort"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/ledger"
	"repro/internal/vcrypt"
)

// RunUDP executes the session over the simulated medium with RTP/UDP
// semantics: every packet is transmitted once by the sender's MAC (with
// collision retries inside the medium model); losses at the receiver are
// final. Real ciphers run over the real bitstream, so the receiver and
// eavesdropper reconstructions are genuine decodes of what each party
// could recover.
func RunUDP(s Session, seed uint64) (*Result, error) {
	return runSim(s, seed, false)
}

// TCPRetransmitDelay approximates the extra sender-side delay per
// retransmission round under TCP (fast retransmit / thin-stream RTO on a
// local WiFi RTT).
const TCPRetransmitDelay = 15e-3

// RunHTTP executes the session over the simulated medium with HTTP/TCP
// semantics (Section 6.4): delivery to the receiver is reliable (segments
// are retransmitted until received), which raises latency; the
// eavesdropper may capture any transmission attempt. The Marker-bit
// convention moves into the segment header, which the simulation treats
// identically.
func RunHTTP(s Session, seed uint64) (*Result, error) {
	return runSim(s, seed, true)
}

// workItem is one packet offered to the sender queue: a video slice or an
// audio frame.
type workItem struct {
	arrival  float64
	payload  []byte
	isIFrame bool
	isAudio  bool
	frameNum int // video display number or audio frame sequence
}

func runSim(s Session, seed uint64, tcp bool) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Medium == nil {
		return nil, fmt.Errorf("transport: simulated run needs a Medium")
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return nil, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return nil, err
	}
	// The ledger is a side artifact: emissions are non-blocking and the
	// sim's deterministic outputs do not depend on whether one is
	// installed.
	ledger.Emit(ledger.EventPolicy, "sim", 0, 0, s.Policy.Name())
	gap := s.DiskReadGap
	if gap == 0 {
		gap = DefaultDiskReadGap
	}
	s.Medium.Reseed(seed)
	meter := energy.NewMeter(s.Device)
	rxAsm, err := codec.NewReassembler(s.Config)
	if err != nil {
		return nil, err
	}
	evAsm, err := codec.NewReassembler(s.Config)
	if err != nil {
		return nil, err
	}

	// Build the producer's work list: video slices on the frame-capture
	// schedule, audio frames (if any) on their 20 ms cadence, merged by
	// arrival time. In unpaced mode everything is read back to back.
	var items []workItem
	for fi, ef := range s.Encoded {
		if ef == nil {
			return nil, fmt.Errorf("transport: nil encoded frame %d", fi)
		}
		pkts, err := codec.Packetize(ef, s.MTU)
		if err != nil {
			return nil, err
		}
		frameTime := float64(fi) / s.FPS
		for pi, pkt := range pkts {
			// Packetize allocates each payload exactly once for this work
			// list; padding grows it in place (or with a single realloc),
			// replacing the old copy-then-pad-with-make double allocation.
			payload := pkt.Payload
			if s.PadToMTU && len(payload) < s.MTU {
				payload = zeroPad(payload, s.MTU-len(payload))
			}
			items = append(items, workItem{
				arrival:  frameTime + float64(pi)*gap,
				payload:  payload,
				isIFrame: pkt.IsIFrame(),
				frameNum: pkt.FrameNumber,
			})
		}
	}
	var audioFrames []audio.Frame
	if s.Audio != nil {
		audioFrames, err = audio.Encode(s.Audio)
		if err != nil {
			return nil, err
		}
		for _, af := range audioFrames {
			items = append(items, workItem{
				arrival:  float64(af.Seq) * audio.FrameDuration,
				payload:  append([]byte(nil), af.Data...),
				isAudio:  true,
				frameNum: af.Seq,
			})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].arrival < items[j].arrival })
	if s.Unpaced {
		for i := range items {
			items[i].arrival = float64(i) * gap
		}
	}

	rxAudio := make([]audio.Frame, len(audioFrames))
	evAudio := make([]audio.Frame, len(audioFrames))
	copy(rxAudio, audioFrames)
	copy(evAudio, audioFrames)
	for i := range rxAudio {
		rxAudio[i].Data, evAudio[i].Data = nil, nil
	}

	var records []PacketRecord
	var serverFree float64
	var nEncrypted, nLost int
	var rxScratch []byte // receive-side decrypt buffer, reused per packet
	for seq, it := range items {
		arrival := it.arrival
		// Audio rides fully encrypted whenever the session encrypts at
		// all (the paper's "all of it can be encrypted" expectation);
		// video follows the policy's selection rule.
		var encrypt bool
		if it.isAudio {
			encrypt = s.Policy.Mode != vcrypt.ModeNone
		} else {
			encrypt = selector.ShouldEncrypt(it.isIFrame)
		}

		// The consumer thread serves packets FIFO.
		start := arrival
		if serverFree > start {
			start = serverFree
		}
		var encTime float64
		payload := it.payload
		if encrypt {
			span := len(payload)
			if !it.isAudio {
				span = s.Policy.EncryptSpan(len(payload))
			}
			encTime, err = s.Device.EncryptTime(s.Policy.Alg, span)
			if err != nil {
				return nil, err
			}
			// The work list is consumed exactly once, so the payload is
			// encrypted in place: the eavesdropper branch below only ever
			// reads plaintext packets, which this branch never touches.
			cipher.EncryptPacket(uint64(seq), payload[:span])
			nEncrypted++
			meter.AddCrypto(encTime)
			if span < len(payload) {
				ledger.Emit(ledger.EventHeaderOnly, "sim", uint64(seq), uint64(span), "")
			}
		} else {
			ledger.Emit(ledger.EventPlainPacket, "sim", uint64(seq), uint64(len(payload)), "")
		}
		rep, err := s.Medium.Transmit(len(payload))
		if err != nil {
			return nil, err
		}
		attempts, backoff, airtime := rep.Attempts, rep.Backoff, rep.Airtime
		receiverGot, eavesGot := rep.ReceiverGot, rep.EavesGot
		if tcp {
			// Reliable delivery: keep retransmitting until the receiver
			// decodes the segment. Each extra round costs a retransmission
			// delay plus channel time, and gives the eavesdropper another
			// chance to overhear.
			extraRounds := 0
			for !receiverGot {
				extraRounds++
				if extraRounds > 1000 {
					return nil, fmt.Errorf("transport: receiver error rate too high for TCP")
				}
				rep2, err := s.Medium.Transmit(len(payload))
				if err != nil {
					return nil, err
				}
				attempts += rep2.Attempts
				backoff += rep2.Backoff + TCPRetransmitDelay
				airtime += rep2.Airtime
				receiverGot = rep2.ReceiverGot
				eavesGot = eavesGot || rep2.EavesGot
			}
		}
		depart := start + encTime + backoff + airtime
		serverFree = depart
		meter.AddTx(airtime)

		rec := PacketRecord{
			Seq:          seq,
			FrameNumber:  it.frameNum,
			IFrame:       it.isIFrame,
			Audio:        it.isAudio,
			Encrypted:    encrypt,
			Size:         len(payload),
			Arrival:      arrival,
			ServiceStart: start,
			Departure:    depart,
			EncryptTime:  encTime,
			Backoff:      backoff,
			Airtime:      airtime,
			Attempts:     attempts,
			ReceiverGot:  receiverGot,
			EavesGot:     eavesGot,
		}
		records = append(records, rec)

		// Receiver path: decrypt flagged packets, reassemble. The
		// reassembler copies macroblock bytes out of the payload, so one
		// scratch buffer serves every video packet; audio frames are
		// retained and keep their own copy.
		if receiverGot {
			if it.isAudio {
				rx := append([]byte(nil), payload...)
				if encrypt {
					cipher.DecryptPacket(uint64(seq), rx)
				}
				rxAudio[it.frameNum].Data = rx
			} else {
				rxScratch = append(rxScratch[:0], payload...)
				if encrypt {
					cipher.DecryptPacket(uint64(seq), rxScratch[:s.Policy.EncryptSpan(len(rxScratch))])
				}
				if err := rxAsm.Add(rxScratch); err != nil {
					// A receive-side parse failure is data loss, not a
					// harness error.
					nLost++
				}
			}
		} else {
			nLost++
		}
		// Eavesdropper path: captured ciphertext is useless — an erasure;
		// captured plaintext parses normally. A garbled ciphertext parse
		// failure is expected and ignored.
		if eavesGot && !encrypt {
			if it.isAudio {
				evAudio[it.frameNum].Data = append([]byte(nil), it.payload...)
			} else {
				// The reassembler copies the macroblock bytes it keeps,
				// so the work-list payload can be fed to it directly.
				_ = evAsm.Add(it.payload) //lint:allow bitioerr eavesdropper feeds ciphertext; parse failures are the expected outcome
			}
		}
	}

	res := &Result{Records: records}
	playout := float64(len(s.Encoded)) / s.FPS
	res.Duration = playout
	if s.Unpaced {
		res.Duration = 0 // an upload lasts only as long as the transfer
	}
	if n := len(records); n > 0 {
		last := records[n-1].Departure
		if last > res.Duration {
			res.Duration = last
		}
		var w, so, sv float64
		for _, r := range records {
			w += r.Wait()
			so += r.Sojourn()
			sv += r.Sojourn() - r.Wait()
		}
		res.MeanWait = w / float64(n)
		res.MeanSojourn = so / float64(n)
		res.MeanService = sv / float64(n)
		res.EncryptedFraction = float64(nEncrypted) / float64(n)
		res.ReceiverLossRate = float64(nLost) / float64(n)
	}
	res.ReceiverFrames = rxAsm.Frames(len(s.Encoded))
	res.EavesFrames = evAsm.Frames(len(s.Encoded))
	if s.Audio != nil {
		res.ReceiverAudio = rxAudio
		res.EavesAudio = evAudio
	}
	power, err := meter.AveragePower(res.Duration)
	if err != nil {
		return nil, err
	}
	res.AveragePowerW = power
	res.EnergyJ = meter.EnergyJoules()
	return res, nil
}
