// Testdata for the floateq pass: exact float (and complex) equality is
// flagged outside the tolerance helpers; constant folds, integer
// comparisons and the NaN-test idiom are not.
package numdemo

func converged(prev, cur float64) bool {
	return prev == cur // want `floating-point == comparison`
}

func drifted(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func unitGain(g complex128) bool {
	return g == 1 // want `floating-point == comparison`
}

func intsAreFine(a, b int) bool { return a == b }

func constantFold() bool {
	// Both operands are compile-time constants; the comparison is folded
	// before any float arithmetic runs.
	return 0.1+0.2 == 0.30000000000000004
}

func isNaN(x float64) bool {
	return x != x // the self-comparison NaN test
}

// ApproxEqual mirrors the production tolerance helper: exact compares
// inside its body are the primitive everything else should call.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// NearZero is the second sanctioned helper name.
func NearZero(x float64) bool {
	return x == 0
}
