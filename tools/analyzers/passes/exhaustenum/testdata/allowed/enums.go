// Allowed shapes: exhaustive coverage, reasoned defaults, aliases,
// non-enum tags and out-of-scope switch forms.
package enumfix

import "io"

// FrameType mirrors the codec's frame classes.
type FrameType int

const (
	IFrame FrameType = iota
	PFrame
	BFrame
	// KeyFrame aliases IFrame: covering either name covers the value.
	KeyFrame FrameType = IFrame
)

func frameName(t FrameType) string {
	switch t {
	case KeyFrame:
		return "I"
	case PFrame:
		return "P"
	case BFrame:
		return "B"
	}
	return "?"
}

func frameWeight(t FrameType) int {
	switch t {
	case IFrame:
		return 10
	default:
		// P- and B-frames share the small-packet class; a new frame
		// type lands here deliberately until profiled.
		return 1
	}
}

func anyInt(n int) int {
	// Not an enum: plain int tag.
	switch n {
	case 0:
		return 1
	}
	return n
}

func nonConstant(t, other FrameType) string {
	// Non-constant case arm: out of scope for static coverage.
	switch t {
	case other:
		return "same"
	}
	return "different"
}

func tagless(t FrameType) string {
	// Tag-less switch: a chain of conditions, not a member dispatch.
	switch {
	case t == IFrame:
		return "I"
	}
	return "other"
}

func typeSwitch(v io.Reader) string {
	// Type switches are out of scope.
	switch v.(type) {
	case io.ReadCloser:
		return "closer"
	}
	return "reader"
}

func suppressed(t FrameType) string {
	//lint:allow exhaustenum migration shim: BFrame handling lands with the decoder change, tracked in DESIGN.md
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	}
	return "?"
}
