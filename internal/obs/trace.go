package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Span tracing. A span is a named timed region (one upload attempt, one
// figure cell, one NACK recovery); ending it appends an Event to a
// fixed-size ring buffer and feeds the span-duration histogram. Spans
// are small value types: starting one while metrics are disabled costs
// a single atomic load and records nothing, so hot paths can create
// them unconditionally.

// Event is one completed span in the ring buffer.
type Event struct {
	At   time.Time // end time
	Name string
	Dur  time.Duration
	Note string // optional free-form annotation
}

// Ring is a fixed-capacity overwrite-oldest event log.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever written
}

// NewRing builds a ring with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Trace is the process-wide span log; sized so a full experiment run's
// coarse spans fit without churn.
var Trace = NewRing(1024)

func (r *Ring) add(e Event) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Len returns how many events are currently held (≤ capacity).
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total returns how many events were ever recorded.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the held events oldest-first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.next < n {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, n)
	for i := r.next; i < r.next+n; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// write renders the snapshot as text for /debug/trace.
func (r *Ring) write(w io.Writer) {
	events := r.Snapshot()
	fmt.Fprintf(w, "# %d span(s) held, %d total\n", len(events), r.Total())
	for _, e := range events {
		if e.Note != "" {
			fmt.Fprintf(w, "%s %-32s %12v %s\n", e.At.Format(time.RFC3339Nano), e.Name, e.Dur, e.Note)
		} else {
			fmt.Fprintf(w, "%s %-32s %12v\n", e.At.Format(time.RFC3339Nano), e.Name, e.Dur)
		}
	}
}

// spanSeconds aggregates every span duration; per-name breakdown lives
// in the ring, which keeps the hot path free of map lookups.
var spanSeconds = NewHistogram("obs_span_seconds",
	"Durations of all completed obs spans.", nil)

// Span is an in-flight timed region. The zero Span (returned while
// metrics are disabled) is inert: End and Annotate are no-ops.
type Span struct {
	name  string
	note  string
	start time.Time
}

// StartSpan opens a span when metrics are enabled.
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{name: name, start: time.Now()}
}

// Annotate attaches a note exposed in the ring buffer. It returns the
// span so call sites can chain it onto StartSpan.
func (s Span) Annotate(format string, args ...any) Span {
	if s.start.IsZero() {
		return s
	}
	s.note = fmt.Sprintf(format, args...)
	return s
}

// End closes the span, recording its duration into the Trace ring and
// the obs_span_seconds histogram.
func (s Span) End() {
	if s.start.IsZero() {
		return
	}
	now := time.Now()
	d := now.Sub(s.start)
	spanSeconds.Observe(d.Seconds())
	Trace.add(Event{At: now, Name: s.name, Dur: d, Note: s.note})
}
