// Package ledger is the reproduction's tamper-evident audit log. The
// plainleak analyzer proves the *code* cannot leak plaintext; the ledger
// proves what a given *run* actually did: every security-relevant policy
// decision — a packet emitted in the clear under the selective-encryption
// policy, a header-only emission, a vcrypt downgrade taken under deadline
// pressure, a re-encode restart, a fresh sequence epoch, an ingest
// admission verdict — is appended as an Entry, batched, Merkle-rooted and
// hash-chained, so any after-the-fact edit (a flipped byte, a dropped
// entry, a reordered batch) is detectable by replaying the chain.
//
// Design constraints, in priority order:
//
//  1. The hot paths never block. Appending is one non-blocking channel
//     send; when the sealer falls behind, entries are dropped and counted
//     (ledger_entries_dropped_total), never queued unboundedly. A gap in
//     ledger coverage is visible in the drop counter; a stalled packet
//     path is not acceptable.
//  2. Millions of entries per second through batching. Per entry the
//     sealer pays one canonical encode, one SHA-256 leaf and an amortised
//     share of the Merkle tree and batch header; the batch size / max
//     wait trade-off is configurable (the military-audit-log
//     baseline-vs-batching grid in scripts/bench.sh measures it).
//  3. Stdlib crypto only (crypto/sha256), like everything else here.
//
// On disk a ledger is a sequence of JSON lines, one sealed batch per
// line, so `thriftyvid audit tail` is a cheap scan and `audit verify`
// streams arbitrarily long runs. Hashes are computed over a canonical
// fixed binary encoding of each entry (never over the JSON), so
// verification re-encodes what it parsed and any textual tamper that
// survives the JSON parser still changes a leaf.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"unicode/utf8"
)

// EventType classifies one security-relevant decision.
type EventType int

// The event kinds the transport layers emit.
const (
	// EventPolicy records the encryption policy in force when a transfer
	// or tenant session starts (Note carries Policy.Name()).
	EventPolicy EventType = iota
	// EventPlainPacket records a payload emitted fully in the clear under
	// the selection policy (A = wire sequence, B = payload bytes).
	EventPlainPacket
	// EventHeaderOnly records a payload whose first B bytes only were
	// encrypted (A = wire sequence) — the header-only trade-off leaves
	// the tail statistics in the clear, so each such emission is logged.
	EventHeaderOnly
	// EventDowngrade records one vcrypt.Downgrade ladder step taken under
	// deadline/retry pressure (Note carries "old -> new").
	EventDowngrade
	// EventReencode records a reduced-quality re-encode restart (Note
	// carries the coarsened quantiser pair).
	EventReencode
	// EventEpoch records a fresh 2^32-aligned sequence epoch (A = base).
	EventEpoch
	// EventSessionStart records an ingest admission (A = SSRC).
	EventSessionStart
	// EventSessionEnd records an ingest session closed by a client FIN
	// (A = SSRC).
	EventSessionEnd
	// EventEvict records an idle-sweeper eviction (A = SSRC).
	EventEvict
	// EventReject records an admission-control refusal (A = SSRC).
	EventReject
)

// String names the event for the JSON encoding and `audit tail`.
func (t EventType) String() string {
	switch t {
	case EventPolicy:
		return "policy"
	case EventPlainPacket:
		return "plain_packet"
	case EventHeaderOnly:
		return "header_only"
	case EventDowngrade:
		return "downgrade"
	case EventReencode:
		return "reencode"
	case EventEpoch:
		return "epoch"
	case EventSessionStart:
		return "session_start"
	case EventSessionEnd:
		return "session_end"
	case EventEvict:
		return "evict"
	case EventReject:
		return "reject"
	default:
		// Unknown values render as a number so a corrupted or
		// future-version log still prints rather than panicking.
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// eventTypeByName inverts String for the verifier's JSON decode.
var eventTypeByName = map[string]EventType{}

func init() {
	for t := EventPolicy; t <= EventReject; t++ {
		eventTypeByName[t.String()] = t
	}
}

// Entry is one audit event. Seq is assigned by the sealer in arrival
// order; Time is stamped at emission (wall clock, unix nanoseconds). A
// and B are event-specific numeric fields (wire sequence, SSRC, byte
// count, epoch base — see the EventType docs); Note is a short free-form
// detail such as a policy name. Entries never carry payload bytes.
type Entry struct {
	Seq   uint64
	Time  int64
	Type  EventType
	Actor string
	A, B  uint64
	Note  string
}

// appendCanonical appends the entry's canonical binary encoding: the
// bytes that are hashed. Length-prefixed strings keep the encoding
// injective (no two distinct entries share bytes).
func (e *Entry) appendCanonical(buf []byte) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], e.Seq)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Time))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(e.Type))
	buf = append(buf, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], e.A)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], e.B)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(e.Actor)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, e.Actor...)
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(e.Note)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, e.Note...)
	return buf
}

// Domain-separation prefixes (certificate-transparency style) so a leaf
// can never be confused with an interior node or a batch header.
const (
	tagLeaf   = 0x00
	tagNode   = 0x01
	tagHeader = 0x02
)

// leafHash hashes one entry into a Merkle leaf, reusing scratch for the
// canonical encoding.
func leafHash(e *Entry, scratch []byte) ([32]byte, []byte) {
	scratch = append(scratch[:0], tagLeaf)
	scratch = e.appendCanonical(scratch)
	return sha256.Sum256(scratch), scratch
}

// merkleRoot folds the leaves bottom-up in place. An unpaired node is
// promoted to the next level unchanged (no duplication, so the tree of
// n leaves has exactly n-1 interior hashes). Zero leaves yield the
// all-zero root; callers never seal empty batches.
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	var buf [1 + 64]byte
	buf[0] = tagNode
	for n := len(leaves); n > 1; {
		half := n / 2
		for i := 0; i < half; i++ {
			copy(buf[1:33], leaves[2*i][:])
			copy(buf[33:], leaves[2*i+1][:])
			leaves[i] = sha256.Sum256(buf[:])
		}
		if n%2 == 1 {
			leaves[half] = leaves[n-1]
			n = half + 1
		} else {
			n = half
		}
	}
	return leaves[0]
}

// Batch is one sealed group of entries: the unit of chaining. PrevHash
// is the previous batch's header hash (all zero for the first batch), so
// reordering or dropping a whole batch breaks the chain, and Root
// commits to every entry, so editing or dropping one entry breaks the
// batch.
type Batch struct {
	Index    uint64
	PrevHash [32]byte
	Root     [32]byte
	Count    uint32
	FirstSeq uint64
	SealedAt int64 // unix nanoseconds
	Entries  []Entry
}

// headerHash hashes the batch header — the chain link.
func (b *Batch) headerHash() [32]byte {
	var buf [1 + 8 + 32 + 32 + 4 + 8 + 8]byte
	buf[0] = tagHeader
	binary.BigEndian.PutUint64(buf[1:], b.Index)
	copy(buf[9:41], b.PrevHash[:])
	copy(buf[41:73], b.Root[:])
	binary.BigEndian.PutUint32(buf[73:], b.Count)
	binary.BigEndian.PutUint64(buf[77:], b.FirstSeq)
	binary.BigEndian.PutUint64(buf[85:], uint64(b.SealedAt))
	return sha256.Sum256(buf[:])
}

// jsonEntry is the wire form of one entry inside a batch line.
type jsonEntry struct {
	Seq   uint64 `json:"s"`
	Time  int64  `json:"t"`
	Kind  string `json:"k"`
	Actor string `json:"actor"`
	A     uint64 `json:"a,omitempty"`
	B     uint64 `json:"b,omitempty"`
	Note  string `json:"note,omitempty"`
}

// jsonBatch is the wire form of one ledger line. Hash is the batch's own
// header hash — redundant (the verifier recomputes it) but it lets a
// human diff two logs and `audit tail` show the chain head cheaply.
type jsonBatch struct {
	Index    uint64      `json:"i"`
	Prev     string      `json:"prev"`
	Root     string      `json:"root"`
	Count    uint32      `json:"n"`
	FirstSeq uint64      `json:"seq"`
	SealedAt int64       `json:"at"`
	Hash     string      `json:"h"`
	Entries  []jsonEntry `json:"e"`
}

// appendLine renders the sealed batch as one newline-terminated JSON
// line appended to buf. Hand-rolled: reflection-based json.Marshal cost
// ~3× the hashing itself and capped the pipeline well under the
// 1M entries/sec target.
func (b *Batch) appendLine(buf []byte) []byte {
	h := b.headerHash()
	buf = append(buf, `{"i":`...)
	buf = strconv.AppendUint(buf, b.Index, 10)
	buf = append(buf, `,"prev":"`...)
	buf = hex.AppendEncode(buf, b.PrevHash[:])
	buf = append(buf, `","root":"`...)
	buf = hex.AppendEncode(buf, b.Root[:])
	buf = append(buf, `","n":`...)
	buf = strconv.AppendUint(buf, uint64(b.Count), 10)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, b.FirstSeq, 10)
	buf = append(buf, `,"at":`...)
	buf = strconv.AppendInt(buf, b.SealedAt, 10)
	buf = append(buf, `,"h":"`...)
	buf = hex.AppendEncode(buf, h[:])
	buf = append(buf, `","e":[`...)
	for i := range b.Entries {
		if i > 0 {
			buf = append(buf, ',')
		}
		e := &b.Entries[i]
		buf = append(buf, `{"s":`...)
		buf = strconv.AppendUint(buf, e.Seq, 10)
		buf = append(buf, `,"t":`...)
		buf = strconv.AppendInt(buf, e.Time, 10)
		buf = append(buf, `,"k":"`...)
		buf = append(buf, e.Type.String()...)
		buf = append(buf, `","actor":`...)
		buf = appendJSONString(buf, e.Actor)
		buf = append(buf, `,"a":`...)
		buf = strconv.AppendUint(buf, e.A, 10)
		buf = append(buf, `,"b":`...)
		buf = strconv.AppendUint(buf, e.B, 10)
		buf = append(buf, `,"note":`...)
		buf = appendJSONString(buf, e.Note)
		buf = append(buf, '}')
	}
	buf = append(buf, `]}`...)
	return append(buf, '\n')
}

// appendJSONString appends s as a JSON string literal. The fast path
// covers plain printable ASCII (every actor/policy name the transports
// emit); anything needing escapes goes through encoding/json.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			out, _ := json.Marshal(s)
			return append(buf, out...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// decodeLine parses one ledger line back into a Batch plus the Hash
// field it claimed. Unknown event kinds are a verification failure, not
// a skip: an attacker must not be able to smuggle entries past the
// verifier by renaming them.
func decodeLine(line []byte) (Batch, [32]byte, error) {
	var jb jsonBatch
	var claimed [32]byte
	if err := json.Unmarshal(line, &jb); err != nil {
		return Batch{}, claimed, fmt.Errorf("ledger: unparseable batch line: %w", err)
	}
	b := Batch{
		Index:    jb.Index,
		Count:    jb.Count,
		FirstSeq: jb.FirstSeq,
		SealedAt: jb.SealedAt,
		Entries:  make([]Entry, len(jb.Entries)),
	}
	if err := decodeHex32(jb.Prev, &b.PrevHash); err != nil {
		return Batch{}, claimed, fmt.Errorf("ledger: batch %d prev: %w", jb.Index, err)
	}
	if err := decodeHex32(jb.Root, &b.Root); err != nil {
		return Batch{}, claimed, fmt.Errorf("ledger: batch %d root: %w", jb.Index, err)
	}
	if err := decodeHex32(jb.Hash, &claimed); err != nil {
		return Batch{}, claimed, fmt.Errorf("ledger: batch %d hash: %w", jb.Index, err)
	}
	for i := range jb.Entries {
		je := &jb.Entries[i]
		t, ok := eventTypeByName[je.Kind]
		if !ok {
			return Batch{}, claimed, fmt.Errorf("ledger: batch %d entry %d: unknown event kind %q", jb.Index, i, je.Kind)
		}
		b.Entries[i] = Entry{
			Seq: je.Seq, Time: je.Time, Type: t,
			Actor: je.Actor, A: je.A, B: je.B, Note: je.Note,
		}
	}
	return b, claimed, nil
}

func decodeHex32(s string, out *[32]byte) error {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	if len(raw) != 32 {
		return fmt.Errorf("hash is %d bytes, want 32", len(raw))
	}
	copy(out[:], raw)
	return nil
}
