package transport

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/evalvid"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// Header-only encryption (Policy.HeaderOnlyBytes) must blind the
// eavesdropper exactly like full-packet encryption while the receiver
// still decodes perfectly — at a fraction of the cipher time.
func TestHeaderOnlyEncryptionEquivalentConfidentiality(t *testing.T) {
	full := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256}
	hdr := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256, HeaderOnlyBytes: 64}

	sFull, clip := testSession(t, video.MotionMedium, full)
	sFull.Medium.ReceiverError = 0
	rFull, err := RunUDP(sFull, 7)
	if err != nil {
		t.Fatal(err)
	}
	sHdr, _ := testSession(t, video.MotionMedium, hdr)
	sHdr.Medium.ReceiverError = 0
	rHdr, err := RunUDP(sHdr, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Receiver: both decode cleanly.
	for name, res := range map[string]*Result{"full": rFull, "header": rHdr} {
		rx, err := codec.DecodeSequence(res.ReceiverFrames, sFull.Config)
		if err != nil {
			t.Fatal(err)
		}
		q, err := evalvid.Evaluate(clip, rx)
		if err != nil {
			t.Fatal(err)
		}
		if q.PSNR < 30 {
			t.Fatalf("%s: receiver PSNR %.1f", name, q.PSNR)
		}
	}
	// Eavesdropper: nothing usable either way.
	for name, res := range map[string]*Result{"full": rFull, "header": rHdr} {
		for i, ef := range res.EavesFrames {
			if ef != nil {
				t.Fatalf("%s: eavesdropper reassembled frame %d", name, i)
			}
		}
	}
	// Cost: the header-only run spends strictly less time in the cipher.
	var fullCrypto, hdrCrypto float64
	for _, rec := range rFull.Records {
		fullCrypto += rec.EncryptTime
	}
	for _, rec := range rHdr.Records {
		hdrCrypto += rec.EncryptTime
	}
	if hdrCrypto >= fullCrypto {
		t.Fatalf("header-only crypto time %v should undercut full %v", hdrCrypto, fullCrypto)
	}
}

func TestHeaderOnlyPolicyValidation(t *testing.T) {
	bad := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES128, HeaderOnlyBytes: 8}
	if err := bad.Validate(); err == nil {
		t.Fatal("prefix below the minimum should be rejected")
	}
	good := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES128, HeaderOnlyBytes: vcrypt.MinHeaderOnlyBytes}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.EncryptSpan(1000) != vcrypt.MinHeaderOnlyBytes {
		t.Fatal("span should clamp to the prefix")
	}
	if good.EncryptSpan(10) != 10 {
		t.Fatal("span should not exceed the payload")
	}
	if (vcrypt.Policy{}).EncryptSpan(1000) != 1000 {
		t.Fatal("zero prefix must mean whole payload")
	}
}

func TestPadToMTUHidesSizes(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	s.PadToMTU = true
	res, err := RunUDP(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Size != s.MTU {
			t.Fatalf("packet %d has size %d, want MTU %d", rec.Seq, rec.Size, s.MTU)
		}
	}
	// Receiver still decodes despite padding.
	rx, err := codec.DecodeSequence(res.ReceiverFrames, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	if rx[0] == nil {
		t.Fatal("padded stream must still decode")
	}
}

func TestSojournPercentileAndGoodput(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	res, err := RunUDP(s, 9)
	if err != nil {
		t.Fatal(err)
	}
	p50 := res.SojournPercentile(0.5)
	p99 := res.SojournPercentile(0.99)
	if !(p50 > 0 && p99 >= p50) {
		t.Fatalf("percentiles wrong: p50=%v p99=%v", p50, p99)
	}
	if res.Goodput() <= 0 {
		t.Fatal("goodput should be positive")
	}
	empty := &Result{}
	if empty.SojournPercentile(0.5) != 0 || empty.Goodput() != 0 {
		t.Fatal("empty result conventions violated")
	}
}
