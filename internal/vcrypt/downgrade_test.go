package vcrypt

import "testing"

func TestDowngradeLadderAll(t *testing.T) {
	ladder := DowngradeLadder(Policy{Mode: ModeAll, Alg: AES256})
	want := []Mode{ModeAll, ModeIPlusFracP, ModeIFrames}
	if len(ladder) != len(want) {
		t.Fatalf("ladder length %d, want %d: %v", len(ladder), len(want), ladder)
	}
	for i, p := range ladder {
		if p.Mode != want[i] {
			t.Fatalf("rung %d is %v, want %v", i, p.Mode, want[i])
		}
		if p.Alg != AES256 {
			t.Fatalf("rung %d changed algorithm to %v", i, p.Alg)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("rung %d invalid: %v", i, err)
		}
	}
}

func TestDowngradeCostMonotone(t *testing.T) {
	// Each rung must select strictly fewer packets (weighted by class)
	// than the one above it.
	cost := func(p Policy) float64 {
		encI, encP := p.ClassProbabilities()
		return encI + 4*encP // P packets dominate a clip's packet count
	}
	for _, start := range []Policy{
		{Mode: ModeAll, Alg: AES128},
		{Mode: ModePFrames, Alg: TripleDES},
		{Mode: ModeIPlusFracP, FracP: 0.5, Alg: AES256},
	} {
		ladder := DowngradeLadder(start)
		for i := 1; i < len(ladder); i++ {
			if cost(ladder[i]) >= cost(ladder[i-1]) {
				t.Fatalf("rung %d of %v not cheaper: %v -> %v", i, start, ladder[i-1], ladder[i])
			}
		}
	}
}

func TestDowngradeTerminates(t *testing.T) {
	for _, m := range []Mode{ModeNone, ModeIFrames, ModeHalfI} {
		if _, ok := Downgrade(Policy{Mode: m, Alg: AES128}); ok {
			t.Fatalf("mode %v should be a ladder floor", m)
		}
	}
}

func TestDowngradePreservesHeaderOnly(t *testing.T) {
	p := Policy{Mode: ModeAll, Alg: AES256, HeaderOnlyBytes: MinHeaderOnlyBytes}
	for {
		q, ok := Downgrade(p)
		if !ok {
			break
		}
		if q.HeaderOnlyBytes != MinHeaderOnlyBytes {
			t.Fatalf("downgrade dropped HeaderOnlyBytes: %v", q)
		}
		p = q
	}
}
