package codec

import "math"

// blockSize is the transform block size (8x8, as in MPEG-2/4 and the
// classic JPEG pipeline).
const blockSize = 8

// The 2-D orthonormal DCT-II is computed with the Arai-Agui-Nakajima
// (AAN) factorization: a 1-D scaled butterfly per row and per column (5
// multiplies and 29 adds each, against 64 multiplies for the naive inner
// product) followed by one 64-multiply scaling pass that folds the AAN
// scale factors and the orthonormal normalisation together. The inverse
// runs the mirrored flow graph with the scaling applied up front.
//
// aanScale[k] is the factor by which the k-th output of the scaled
// forward butterfly exceeds the JPEG-convention coefficient:
// 1 for k = 0 and sqrt(2)*cos(k*pi/16) otherwise. The JPEG convention
// coincides with the orthonormal one for an 8-point transform, so the
// combined 2-D correction is 1/(8*s[u]*s[v]).
var (
	fdctScale [64]float64 // multiply after the forward butterflies
	idctScale [64]float64 // multiply before the inverse butterflies
	// invQuantRamp[zz] = 1/(1+zz/16): the reciprocal of the frequency
	// ramp, so forward quantisation is two multiplies instead of a
	// division in the per-coefficient hot loop.
	invQuantRamp [64]float64
)

func init() {
	var s [blockSize]float64
	s[0] = 1
	for k := 1; k < blockSize; k++ {
		s[k] = math.Sqrt2 * math.Cos(float64(k)*math.Pi/16)
	}
	for u := 0; u < blockSize; u++ {
		for v := 0; v < blockSize; v++ {
			fdctScale[u*blockSize+v] = 1 / (8 * s[u] * s[v])
			idctScale[u*blockSize+v] = s[u] * s[v] / 8
		}
	}
	for zz := 0; zz < 64; zz++ {
		invQuantRamp[zz] = 1 / (1 + float64(zz)/16)
	}
}

// AAN butterfly constants.
const (
	aanC4  = 0.7071067811865476 // cos(4*pi/16) = sqrt(1/2)
	aanC6  = 0.3826834323650898 // cos(6*pi/16)
	aanQ   = 0.5411961001461969 // cos(6*pi/16) * sqrt(2)
	aanR   = 1.3065629648763766 // cos(2*pi/16) * sqrt(2)
	aanI2  = 1.4142135623730951 // sqrt(2)
	aanI5  = 1.8477590650225735 // 2*cos(2*pi/16)
	aanI10 = 1.0823922002923938 // 2*cos(6*pi/16)
	aanI12 = -2.613125929752753 // -(2*cos(2*pi/16) + 2*cos(6*pi/16) - ... ) AAN odd-part constant
)

// fdct8 computes the 2-D orthonormal DCT-II of an 8x8 block (row-major
// in/out) with the AAN factorization.
func fdct8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Row pass.
	for i := 0; i < 64; i += blockSize {
		d0, d1, d2, d3 := in[i], in[i+1], in[i+2], in[i+3]
		d4, d5, d6, d7 := in[i+4], in[i+5], in[i+6], in[i+7]

		t0, t7 := d0+d7, d0-d7
		t1, t6 := d1+d6, d1-d6
		t2, t5 := d2+d5, d2-d5
		t3, t4 := d3+d4, d3-d4

		t10, t13 := t0+t3, t0-t3
		t11, t12 := t1+t2, t1-t2
		tmp[i] = t10 + t11
		tmp[i+4] = t10 - t11
		z1 := (t12 + t13) * aanC4
		tmp[i+2] = t13 + z1
		tmp[i+6] = t13 - z1

		t10 = t4 + t5
		t11 = t5 + t6
		t12 = t6 + t7
		z5 := (t10 - t12) * aanC6
		z2 := aanQ*t10 + z5
		z4 := aanR*t12 + z5
		z3 := t11 * aanC4
		z11, z13 := t7+z3, t7-z3
		tmp[i+5] = z13 + z2
		tmp[i+3] = z13 - z2
		tmp[i+1] = z11 + z4
		tmp[i+7] = z11 - z4
	}
	// Column pass, scaling on the way out.
	for c := 0; c < blockSize; c++ {
		d0, d1, d2, d3 := tmp[c], tmp[c+8], tmp[c+16], tmp[c+24]
		d4, d5, d6, d7 := tmp[c+32], tmp[c+40], tmp[c+48], tmp[c+56]

		t0, t7 := d0+d7, d0-d7
		t1, t6 := d1+d6, d1-d6
		t2, t5 := d2+d5, d2-d5
		t3, t4 := d3+d4, d3-d4

		t10, t13 := t0+t3, t0-t3
		t11, t12 := t1+t2, t1-t2
		out[c] = (t10 + t11) * fdctScale[c]
		out[c+32] = (t10 - t11) * fdctScale[c+32]
		z1 := (t12 + t13) * aanC4
		out[c+16] = (t13 + z1) * fdctScale[c+16]
		out[c+48] = (t13 - z1) * fdctScale[c+48]

		t10 = t4 + t5
		t11 = t5 + t6
		t12 = t6 + t7
		z5 := (t10 - t12) * aanC6
		z2 := aanQ*t10 + z5
		z4 := aanR*t12 + z5
		z3 := t11 * aanC4
		z11, z13 := t7+z3, t7-z3
		out[c+40] = (z13 + z2) * fdctScale[c+40]
		out[c+24] = (z13 - z2) * fdctScale[c+24]
		out[c+8] = (z11 + z4) * fdctScale[c+8]
		out[c+56] = (z11 - z4) * fdctScale[c+56]
	}
}

// idct8 computes the inverse 2-D DCT with the mirrored AAN flow graph.
func idct8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Column pass, scaling on the way in.
	for c := 0; c < blockSize; c++ {
		d0 := in[c] * idctScale[c]
		d1 := in[c+8] * idctScale[c+8]
		d2 := in[c+16] * idctScale[c+16]
		d3 := in[c+24] * idctScale[c+24]
		d4 := in[c+32] * idctScale[c+32]
		d5 := in[c+40] * idctScale[c+40]
		d6 := in[c+48] * idctScale[c+48]
		d7 := in[c+56] * idctScale[c+56]

		t10, t11 := d0+d4, d0-d4
		t13 := d2 + d6
		t12 := (d2-d6)*aanI2 - t13
		t0, t3 := t10+t13, t10-t13
		t1, t2 := t11+t12, t11-t12

		z13, z10 := d5+d3, d5-d3
		z11, z12 := d1+d7, d1-d7
		t7 := z11 + z13
		tt11 := (z11 - z13) * aanI2
		z5 := (z10 + z12) * aanI5
		tt10 := aanI10*z12 - z5
		tt12 := aanI12*z10 + z5
		t6 := tt12 - t7
		t5 := tt11 - t6
		t4 := tt10 + t5

		tmp[c] = t0 + t7
		tmp[c+56] = t0 - t7
		tmp[c+8] = t1 + t6
		tmp[c+48] = t1 - t6
		tmp[c+16] = t2 + t5
		tmp[c+40] = t2 - t5
		tmp[c+32] = t3 + t4
		tmp[c+24] = t3 - t4
	}
	// Row pass.
	for i := 0; i < 64; i += blockSize {
		d0, d1, d2, d3 := tmp[i], tmp[i+1], tmp[i+2], tmp[i+3]
		d4, d5, d6, d7 := tmp[i+4], tmp[i+5], tmp[i+6], tmp[i+7]

		t10, t11 := d0+d4, d0-d4
		t13 := d2 + d6
		t12 := (d2-d6)*aanI2 - t13
		t0, t3 := t10+t13, t10-t13
		t1, t2 := t11+t12, t11-t12

		z13, z10 := d5+d3, d5-d3
		z11, z12 := d1+d7, d1-d7
		t7 := z11 + z13
		tt11 := (z11 - z13) * aanI2
		z5 := (z10 + z12) * aanI5
		tt10 := aanI10*z12 - z5
		tt12 := aanI12*z10 + z5
		t6 := tt12 - t7
		t5 := tt11 - t6
		t4 := tt10 + t5

		out[i] = t0 + t7
		out[i+7] = t0 - t7
		out[i+1] = t1 + t6
		out[i+6] = t1 - t6
		out[i+2] = t2 + t5
		out[i+5] = t2 - t5
		out[i+4] = t3 + t4
		out[i+3] = t3 - t4
	}
}

// zigzag maps coefficient index 0..63 to the raster position within the
// block, ordering coefficients from low to high frequency.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// quantStep returns the quantisation step for zig-zag position zz under
// base step q: a mild frequency ramp that spends bits on low frequencies,
// like the default MPEG intra matrix.
func quantStep(q float64, zz int) float64 {
	return q * (1 + float64(zz)/16)
}
