// Package transport holds the flagged audit-completeness shapes: a
// counter bump with no record at all, a record on only one branch
// ahead, a record of the wrong kind, an epoch mint with no trace, and
// an Emit through a variable kind (which credits nothing).
package transport

import "repro/internal/ledger"

type ctr struct{}

func (ctr) Inc() {}

var (
	mUploadDowngrades      = ctr{}
	mUploadRestarts        = ctr{}
	mIngestRejected        = ctr{}
	mIngestSessionsEvicted = ctr{}
)

func nextEpoch(used uint64) uint64 { return used + 1 }

// silentDowngrade takes the audited decision and leaves no trace.
func silentDowngrade() {
	mUploadDowngrades.Inc() // want `policy downgrade \(mUploadDowngrades\.Inc\) is not audited`
}

// oneArmOnly records the rejection on one branch only: the fall-
// through path reaches the exit without a trace.
func oneArmOnly(sampled bool) {
	mIngestRejected.Inc() // want `admission rejection \(mIngestRejected\.Inc\) is not audited`
	if sampled {
		ledger.Emit(ledger.EventReject, "ingest", 0, 0, "cap")
	}
}

// wrongKind writes a record, but of the wrong event type.
func wrongKind() {
	mIngestSessionsEvicted.Inc() // want `session eviction \(mIngestSessionsEvicted\.Inc\) is not audited`
	ledger.Emit(ledger.EventSessionEnd, "ingest", 0, 0, "fin")
}

// silentEpoch mints a fresh epoch without the EventEpoch record.
func silentEpoch(used uint64) uint64 {
	return nextEpoch(used) // want `epoch bump \(nextEpoch\) is not audited`
}

// variableKind emits through a non-constant kind, which the proof
// cannot credit to any trigger.
func variableKind(t ledger.EventType) {
	mUploadRestarts.Inc() // want `re-encode restart \(mUploadRestarts\.Inc\) is not audited`
	ledger.Emit(t, "upload", 0, 0, "")
}
