package codec

import (
	"fmt"

	"repro/internal/video"
)

// B-frame support. The paper's GOP definition (Section 2) is an I-frame
// followed by P and optionally B frames; its evaluation uses IPP...P, and
// so does this reproduction's, but the codec substrate would be incomplete
// without the optional part. With Config.BFrames = n > 0 the display
// structure becomes I B..B P B..B P ... and the encoder emits frames in
// coding order (each anchor before the B-frames that reference it), with
// EncodedFrame.Number still carrying the display index. B-frames predict
// each macroblock forward, backward, or bidirectionally from the two
// surrounding anchors, which is what makes them cheaper than P-frames.

// BFrame is the bidirectionally predicted frame type.
const BFrame FrameType = 2

// bMode is the per-macroblock prediction mode of a B frame.
const (
	bModeFwd = iota
	bModeBwd
	bModeBi
)

// ValidateB extends Config.Validate for B-frame use.
func (c Config) ValidateB() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.BFrames < 0 || c.BFrames > 3 {
		return fmt.Errorf("codec: BFrames %d out of [0,3]", c.BFrames)
	}
	if c.BFrames > 0 && c.GOPSize%(c.BFrames+1) != 0 {
		return fmt.Errorf("codec: GOP size %d not a multiple of the anchor distance %d", c.GOPSize, c.BFrames+1)
	}
	return nil
}

// EncodeSequenceB compresses a clip with the configured number of
// B-frames between anchors, returning frames in coding order. With
// cfg.BFrames == 0 it is identical to EncodeSequence.
func EncodeSequenceB(frames []*video.Frame, cfg Config) ([]*EncodedFrame, error) {
	if err := cfg.ValidateB(); err != nil {
		return nil, err
	}
	if cfg.BFrames == 0 {
		return EncodeSequence(frames, cfg)
	}
	// The inner encoder sees only the anchor frames, so its GOP counter
	// runs in anchor units.
	anchorCfg := cfg
	anchorCfg.GOPSize = cfg.GOPSize / (cfg.BFrames + 1)
	anchorCfg.BFrames = 0
	enc, err := NewEncoder(anchorCfg)
	if err != nil {
		return nil, err
	}
	// Anchor reconstructions stay referenced (prevAnchorRecon/curRecon)
	// across Encode calls, so they must not be recycled into the frame
	// pool when the encoder moves on.
	enc.retainRefs = true
	var out []*EncodedFrame
	step := cfg.BFrames + 1
	var prevAnchorRecon *video.Frame
	var prevAnchorIdx int
	for a := 0; a < len(frames); a += step {
		// Encode the anchor (I at GOP boundaries, P otherwise) through the
		// regular encoder, which maintains the anchor reference chain.
		ef, err := enc.Encode(frames[a])
		if err != nil {
			return nil, err
		}
		ef.Number = a
		out = append(out, ef)
		curRecon := enc.ref
		// Encode the B frames between the previous anchor and this one.
		if prevAnchorRecon != nil {
			for d := prevAnchorIdx + 1; d < a; d++ {
				bf := encodeBFrame(frames[d], prevAnchorRecon, curRecon, cfg)
				bf.Number = d
				out = append(out, bf)
			}
		}
		prevAnchorRecon = curRecon
		prevAnchorIdx = a
	}
	// Trailing frames after the last anchor have no backward reference;
	// encode them as ordinary P frames continuing the chain (forced P so
	// the anchor-unit GOP counter cannot spuriously restart a GOP).
	for d := prevAnchorIdx + 1; d < len(frames); d++ {
		ef, err := enc.encodeAs(frames[d], PFrame)
		if err != nil {
			return nil, err
		}
		ef.Number = d
		out = append(out, ef)
	}
	return out, nil
}

// encodeBFrame codes one bidirectional frame against two reconstructed
// anchors. It does not touch the anchor prediction chain. B macroblocks
// have no coded-neighbour dependencies, so rows parallelise freely.
func encodeBFrame(src, fwd, bwd *video.Frame, cfg Config) *EncodedFrame {
	cols, rows := cfg.MBCols(), cfg.MBRows()
	out := &EncodedFrame{Type: BFrame, MBData: make([][]byte, cols*rows)}
	row := func(my int) {
		sc := getScratch()
		var arena []byte
		for mx := 0; mx < cols; mx++ {
			sc.w.reset()
			encodeBMB(sc, src, fwd, bwd, mx, my, cfg)
			chunk := sc.w.bytes()
			start := len(arena)
			arena = append(arena, chunk...)
			out.MBData[my*cols+mx] = arena[start:len(arena):len(arena)]
		}
		putScratch(sc)
	}
	if workers := cfg.rowWorkers(rows); workers > 1 {
		parallelRows(workers, rows, row)
	} else {
		for my := 0; my < rows; my++ {
			row(my)
		}
	}
	return out
}

// biPredict fills pred with the chosen prediction for an 8x8 luma block.
func biPredictLuma(fwd, bwd *video.Frame, mode, x0, y0, fdx, fdy, bdx, bdy int, pred *[64]float64) {
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var v float64
			switch mode {
			case bModeFwd:
				v = float64(fwd.LumaAt(x0+x+fdx, y0+y+fdy))
			case bModeBwd:
				v = float64(bwd.LumaAt(x0+x+bdx, y0+y+bdy))
			default:
				v = 0.5 * (float64(fwd.LumaAt(x0+x+fdx, y0+y+fdy)) +
					float64(bwd.LumaAt(x0+x+bdx, y0+y+bdy)))
			}
			pred[y*blockSize+x] = v
		}
	}
}

func encodeBMB(sc *mbScratch, src, fwd, bwd *video.Frame, mx, my int, cfg Config) {
	w := &sc.w
	x0, y0 := mx*mbSize, my*mbSize
	fdx, fdy := motionSearch(src, fwd, x0, y0, cfg, nil)
	bdx, bdy := motionSearch(src, bwd, x0, y0, cfg, nil)
	sadF := sadMB(src, fwd, x0, y0, fdx, fdy)
	sadB := sadMB(src, bwd, x0, y0, bdx, bdy)
	sadBi := sadBiMB(src, fwd, bwd, x0, y0, fdx, fdy, bdx, bdy)
	mode := bModeBi
	if sadF <= sadB && sadF <= sadBi {
		mode = bModeFwd
	} else if sadB <= sadBi {
		mode = bModeBwd
	}
	w.writeBits(uint64(mode), 2)
	if mode != bModeBwd {
		w.writeSE(int64(fdx))
		w.writeSE(int64(fdy))
	}
	if mode != bModeFwd {
		w.writeSE(int64(bdx))
		w.writeSE(int64(bdy))
	}
	samples, rec, pred := &sc.samples, &sc.rec, &sc.pred
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			bx0, by0 := x0+bx*blockSize, y0+by*blockSize
			biPredictLuma(fwd, bwd, mode, bx0, by0, fdx, fdy, bdx, bdy, pred)
			for i := 0; i < blockSize; i++ {
				for j := 0; j < blockSize; j++ {
					samples[i*blockSize+j] = float64(src.Y[(by0+i)*src.W+bx0+j]) - pred[i*blockSize+j]
				}
			}
			encodeBlock(w, samples, cfg.QP*1.1, rec)
		}
	}
	// Chroma: predict with halved vectors per plane.
	encodeBChroma(sc, src, fwd, bwd, mode, mx, my, fdx, fdy, bdx, bdy, cfg)
}

func sadBiMB(src, fwd, bwd *video.Frame, x0, y0, fdx, fdy, bdx, bdy int) int {
	var sad int
	for y := 0; y < mbSize; y++ {
		for x := 0; x < mbSize; x++ {
			s := float64(src.Y[(y0+y)*src.W+x0+x])
			p := 0.5 * (float64(fwd.LumaAt(x0+x+fdx, y0+y+fdy)) + float64(bwd.LumaAt(x0+x+bdx, y0+y+bdy)))
			d := s - p
			if d < 0 {
				d = -d
			}
			sad += int(d)
		}
	}
	return sad
}

func bChromaPredict(fwdP, bwdP []byte, cw, ch, mode, x, y, fdx, fdy, bdx, bdy int) float64 {
	switch mode {
	case bModeFwd:
		return chromaAt(fwdP, cw, ch, x+fdx, y+fdy)
	case bModeBwd:
		return chromaAt(bwdP, cw, ch, x+bdx, y+bdy)
	default:
		return 0.5 * (chromaAt(fwdP, cw, ch, x+fdx, y+fdy) + chromaAt(bwdP, cw, ch, x+bdx, y+bdy))
	}
}

func encodeBChroma(sc *mbScratch, src, fwd, bwd *video.Frame, mode, mx, my, fdx, fdy, bdx, bdy int, cfg Config) {
	w, samples, rec := &sc.w, &sc.samples, &sc.rec
	cw, ch := src.W/2, src.H/2
	cx0, cy0 := mx*mbSize/2, my*mbSize/2
	for plane := 0; plane < 2; plane++ {
		sp, fp, bp := src.Cb, fwd.Cb, bwd.Cb
		if plane == 1 {
			sp, fp, bp = src.Cr, fwd.Cr, bwd.Cr
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				p := bChromaPredict(fp, bp, cw, ch, mode, cx0+x, cy0+y, fdx/2, fdy/2, bdx/2, bdy/2)
				samples[y*blockSize+x] = float64(sp[(cy0+y)*cw+cx0+x]) - p
			}
		}
		encodeBlock(w, samples, cfg.QP*1.3, rec)
	}
}

// decodeBMB reverses encodeBMB into the output frame.
func decodeBMB(r *bitReader, fwd, bwd, out *video.Frame, mx, my int, cfg Config) error {
	x0, y0 := mx*mbSize, my*mbSize
	m64, err := r.readBits(2)
	if err != nil {
		return err
	}
	mode := int(m64)
	if mode > bModeBi {
		return errCorrupt
	}
	var fdx, fdy, bdx, bdy int
	if mode != bModeBwd {
		v1, err := r.readSE()
		if err != nil {
			return err
		}
		v2, err := r.readSE()
		if err != nil {
			return err
		}
		fdx, fdy = int(v1), int(v2)
	}
	if mode != bModeFwd {
		v1, err := r.readSE()
		if err != nil {
			return err
		}
		v2, err := r.readSE()
		if err != nil {
			return err
		}
		bdx, bdy = int(v1), int(v2)
	}
	if fdx < -64 || fdx > 64 || fdy < -64 || fdy > 64 || bdx < -64 || bdx > 64 || bdy < -64 || bdy > 64 {
		return errCorrupt
	}
	var rec, pred [64]float64
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			bx0, by0 := x0+bx*blockSize, y0+by*blockSize
			if err := decodeBlock(r, cfg.QP*1.1, &rec); err != nil {
				return err
			}
			biPredictLuma(fwd, bwd, mode, bx0, by0, fdx, fdy, bdx, bdy, &pred)
			for i := 0; i < blockSize; i++ {
				for j := 0; j < blockSize; j++ {
					out.Y[(by0+i)*out.W+bx0+j] = clampByte(pred[i*blockSize+j] + rec[i*blockSize+j])
				}
			}
		}
	}
	cw, ch := out.W/2, out.H/2
	cx0, cy0 := x0/2, y0/2
	for plane := 0; plane < 2; plane++ {
		fp, bp, op := fwd.Cb, bwd.Cb, out.Cb
		if plane == 1 {
			fp, bp, op = fwd.Cr, bwd.Cr, out.Cr
		}
		if err := decodeBlock(r, cfg.QP*1.3, &rec); err != nil {
			return err
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				p := bChromaPredict(fp, bp, cw, ch, mode, cx0+x, cy0+y, fdx/2, fdy/2, bdx/2, bdy/2)
				op[(cy0+y)*cw+cx0+x] = clampByte(p + rec[y*blockSize+x])
			}
		}
	}
	return nil
}

// DecodeSequenceB reconstructs a coding-order stream produced by
// EncodeSequenceB into display order. Lost anchors conceal like the
// IPP...P decoder; a lost or damaged B frame is concealed by its forward
// anchor (B frames are not references, so the damage never propagates).
func DecodeSequenceB(encoded []*EncodedFrame, cfg Config) ([]*video.Frame, error) {
	if err := cfg.ValidateB(); err != nil {
		return nil, err
	}
	if cfg.BFrames == 0 {
		return DecodeSequence(encoded, cfg)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, ef := range encoded {
		if ef == nil {
			return nil, fmt.Errorf("codec: B-stream decode needs frame headers; drop macroblocks, not whole entries")
		}
		if ef.Number+1 > total {
			total = ef.Number + 1
		}
	}
	out := make([]*video.Frame, total)
	var prevAnchor, curAnchor *video.Frame
	for _, ef := range encoded {
		switch ef.Type {
		case IFrame, PFrame:
			f := dec.Decode(ef)
			out[ef.Number] = f
			prevAnchor, curAnchor = curAnchor, f
		case BFrame:
			fwd, bwd := prevAnchor, curAnchor
			if fwd == nil {
				fwd = bwd
			}
			if fwd == nil {
				return nil, fmt.Errorf("codec: B frame %d before any anchor", ef.Number)
			}
			out[ef.Number] = decodeBFrame(ef, fwd, bwd, cfg)
		default:
			return nil, fmt.Errorf("codec: unknown frame type %d", ef.Type)
		}
	}
	// Any display slots never covered (whole coding entries missing is
	// rejected above, so this only guards irregular inputs).
	for i, f := range out {
		if f == nil {
			g := video.NewFrame(cfg.Width, cfg.Height)
			for k := range g.Y {
				g.Y[k] = 128
			}
			out[i] = g
		}
	}
	return out, nil
}

func decodeBFrame(ef *EncodedFrame, fwd, bwd *video.Frame, cfg Config) *video.Frame {
	out := video.NewFrame(cfg.Width, cfg.Height)
	if bwd == nil {
		bwd = fwd
	}
	cols, rows := cfg.MBCols(), cfg.MBRows()
	row := func(my int) {
		for mx := 0; mx < cols; mx++ {
			chunk := ef.MBData[my*cols+mx]
			ok := chunk != nil
			if ok {
				if err := decodeBMB(newBitReader(chunk), fwd, bwd, out, mx, my, cfg); err != nil {
					ok = false
				}
			}
			if !ok {
				// Conceal from the forward anchor.
				concealBMB(out, fwd, mx, my)
			}
		}
	}
	if workers := cfg.rowWorkers(rows); workers > 1 {
		parallelRows(workers, rows, row)
	} else {
		for my := 0; my < rows; my++ {
			row(my)
		}
	}
	return out
}

func concealBMB(out, ref *video.Frame, mx, my int) {
	x0, y0 := mx*mbSize, my*mbSize
	for y := y0; y < y0+mbSize; y++ {
		copy(out.Y[y*out.W+x0:y*out.W+x0+mbSize], ref.Y[y*out.W+x0:y*out.W+x0+mbSize])
	}
	cw := out.W / 2
	cx0, cy0 := x0/2, y0/2
	for y := cy0; y < cy0+mbSize/2; y++ {
		copy(out.Cb[y*cw+cx0:y*cw+cx0+mbSize/2], ref.Cb[y*cw+cx0:y*cw+cx0+mbSize/2])
		copy(out.Cr[y*cw+cx0:y*cw+cx0+mbSize/2], ref.Cr[y*cw+cx0:y*cw+cx0+mbSize/2])
	}
}
