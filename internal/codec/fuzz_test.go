package codec

import (
	"bytes"
	"testing"
)

// fuzzConfig is a tiny but valid stream configuration: a 2x2 macroblock
// grid keeps reassembly allocations small while exercising every header
// path.
func fuzzConfig() Config {
	return Config{Width: 32, Height: 32, GOPSize: 4, QI: 8, QP: 10, SearchRange: 4}
}

// fuzzFrame builds a well-formed encoded frame for the fuzz seeds.
func fuzzFrame(cfg Config, number int, ft FrameType) *EncodedFrame {
	total := cfg.MBCols() * cfg.MBRows()
	ef := &EncodedFrame{Number: number, Type: ft, MBData: make([][]byte, total)}
	for i := range ef.MBData {
		ef.MBData[i] = []byte{byte(number), byte(i), 0xAB}
	}
	return ef
}

// FuzzReadContainer feeds arbitrary bytes to the container parser. The
// parser must reject or accept without panicking or over-allocating,
// and anything it accepts must serialise back.
func FuzzReadContainer(f *testing.F) {
	cfg := fuzzConfig()
	var buf bytes.Buffer
	if err := WriteContainer(&buf, cfg, []*EncodedFrame{fuzzFrame(cfg, 0, IFrame), fuzzFrame(cfg, 1, PFrame)}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])   // truncated mid-frame
	f.Add(valid[:5])              // truncated mid-header
	f.Add([]byte("TVID"))         // magic only
	f.Add([]byte("nope"))         // wrong magic
	f.Add(bytes.Repeat(valid, 2)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, frames, err := ReadContainer(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteContainer(&out, cfg, frames); err != nil {
			t.Fatalf("accepted container failed to re-serialise: %v", err)
		}
	})
}

// FuzzReassembler feeds arbitrary slice payloads through ParsePacket,
// SliceMBs and Reassembler.Add — the exact path an eavesdropper's
// garbled ciphertext takes. Damaged payloads must come back as errors,
// never as panics or out-of-range writes.
func FuzzReassembler(f *testing.F) {
	cfg := fuzzConfig()
	pkts, err := Packetize(fuzzFrame(cfg, 3, IFrame), 256)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range pkts {
		f.Add(p.Payload)
		if len(p.Payload) > 3 {
			f.Add(p.Payload[:len(p.Payload)-3]) // truncated slice
		}
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge varint
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ParsePacket(data); err != nil {
			return
		}
		r, err := NewReassembler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Add(data); err != nil {
			return
		}
		// An accepted slice must have landed inside the frame grid.
		total := cfg.MBCols() * cfg.MBRows()
		mbStart, chunks, err := SliceMBs(data)
		if err != nil {
			t.Fatalf("Add accepted a payload SliceMBs rejects: %v", err)
		}
		if mbStart < 0 || mbStart+len(chunks) > total {
			t.Fatalf("accepted slice range [%d,%d) outside %d macroblocks", mbStart, mbStart+len(chunks), total)
		}
	})
}
