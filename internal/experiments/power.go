package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// PowerResult is one bar of Figs. 10/11.
type PowerResult struct {
	Alg    vcrypt.Algorithm
	GOP    int
	Motion video.MotionLevel
	Level  vcrypt.Mode
	Power  stats.Summary // Watts
}

// RunPower measures the mean power over the stream for each (motion,
// algorithm, GOP, level) cell on one device (Section 6.3). Cells fan out
// on the fixture's worker budget with index-ordered results, like
// RunDelay.
func RunPower(f *Fixture, device energy.Profile) ([]PowerResult, error) {
	motions := []video.MotionLevel{video.MotionLow, video.MotionHigh}
	gops := []int{30, 50}
	if err := f.PrefetchWorkloads(motions, gops); err != nil {
		return nil, err
	}
	type cellSpec struct {
		motion video.MotionLevel
		alg    vcrypt.Algorithm
		gop    int
		level  vcrypt.Mode
	}
	var specs []cellSpec
	for _, motion := range motions {
		for _, alg := range delayAlgorithms {
			for _, gop := range gops {
				for _, level := range levelOrder {
					specs = append(specs, cellSpec{motion, alg, gop, level})
				}
			}
		}
	}
	out := make([]PowerResult, len(specs))
	err := parallelFor(f.workers(), len(specs), func(i int) error {
		sp := specs[i]
		w, err := f.Workload(sp.motion, sp.gop)
		if err != nil {
			return err
		}
		pol := vcrypt.Policy{Mode: sp.level, Alg: sp.alg}
		cell, err := f.runCell(w, pol, device, false, true)
		if err != nil {
			return err
		}
		out[i] = PowerResult{
			Alg: sp.alg, GOP: sp.gop, Motion: sp.motion, Level: sp.level, Power: cell.Power,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func powerTable(title string, res []PowerResult) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"motion", "alg", "GOP", "level", "power(W)"},
	}
	for _, r := range res {
		t.Rows = append(t.Rows, []string{
			r.Motion.String(), r.Alg.String(), fmt.Sprintf("%d", r.GOP), r.Level.String(),
			dbCI(r.Power.Mean, r.Power.CI95),
		})
	}
	t.Notes = append(t.Notes,
		"power(none) < power(I) < power(P) < power(all); the I-only policy avoids most of the full-encryption penalty (Section 6.3)")
	return t
}

// Fig10 is the Samsung power figure.
func Fig10(f *Fixture) (*Table, error) {
	res, err := RunPower(f, SamsungDevice())
	if err != nil {
		return nil, err
	}
	return powerTable("Fig 10: Power consumption (Samsung S-II)", res), nil
}

// Fig11 is the HTC power figure.
func Fig11(f *Fixture) (*Table, error) {
	res, err := RunPower(f, HTCDevice())
	if err != nil {
		return nil, err
	}
	return powerTable("Fig 11: Power consumption (HTC Amaze 4G)", res), nil
}

// PowerSavings summarises the headline numbers of Sections 1/6.3: the
// relative power increase of each level over the unencrypted stream and
// the fraction of the full-encryption penalty the I-only policy avoids.
func PowerSavings(res []PowerResult, motion video.MotionLevel, alg vcrypt.Algorithm, gop int) (increaseI, increaseAll, saved float64, err error) {
	var none, iOnly, all float64
	found := 0
	for _, r := range res {
		if r.Motion != motion || r.Alg != alg || r.GOP != gop {
			continue
		}
		switch r.Level {
		case vcrypt.ModeNone:
			none = r.Power.Mean
			found++
		case vcrypt.ModeIFrames:
			iOnly = r.Power.Mean
			found++
		case vcrypt.ModeAll:
			all = r.Power.Mean
			found++
		default:
			// The headline comparison of Sections 1/6.3 is none vs
			// I-only vs full; intermediate policies (P-frames,
			// I+fraction-of-P, half-I) are deliberately outside this
			// figure and are skipped, not an accident of a new Mode.
		}
	}
	if found < 3 || none == 0 {
		return 0, 0, 0, fmt.Errorf("experiments: missing cells for savings computation")
	}
	increaseI = (iOnly - none) / none
	increaseAll = (all - none) / none
	saved = 1 - (iOnly-none)/(all-none)
	return increaseI, increaseAll, saved, nil
}
