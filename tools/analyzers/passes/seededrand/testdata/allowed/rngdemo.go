// Testdata for the seededrand pass: an explicit marker suppresses the
// finding on its line.
package rngdemo

import "math/rand"

func legacyGlobal() int {
	return rand.Intn(10) //lint:allow seededrand contrived demo; the harness reseeds the global source
}
