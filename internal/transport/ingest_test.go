package transport

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/evalvid"
	"repro/internal/obs"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// ingestTestConfig mirrors a session's crypto and codec setup onto the
// ingest server.
func ingestTestConfig(s Session) IngestConfig {
	return IngestConfig{
		Addr:            "127.0.0.1:0",
		Cfg:             s.Config,
		Alg:             s.Policy.Alg,
		Key:             s.Key,
		HeaderOnlyBytes: s.Policy.HeaderOnlyBytes,
	}
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// sendSeg writes one wire segment as an RTP packet for the given tenant.
func sendSeg(t *testing.T, conn net.Conn, buf []byte, ssrc uint32, seg wireSegment) {
	t.Helper()
	p := rtp.Packet{
		PayloadType: rtp.PayloadTypeVideo,
		Marker:      seg.encrypted,
		Sequence:    uint16(seg.seq),
		Timestamp:   uint32(seg.seq),
		SSRC:        ssrc,
		Payload:     seg.payload,
	}
	if _, err := conn.Write(p.MarshalInto(buf)); err != nil {
		t.Fatal(err)
	}
}

func TestIngestSingleSessionReassembles(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, clip := testSession(t, video.MotionLow, pol)
	srv, err := NewIngestServer(ingestTestConfig(s))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const ssrc = 0xABCD
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	for i, seg := range segs {
		sendSeg(t, conn, buf, ssrc, seg)
		if i%64 == 63 {
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st, ok := srv.SessionStats(ssrc)
		return ok && st.Received == len(segs)
	}, "every segment to land")
	st, _ := srv.SessionStats(ssrc)
	if st.Usable != len(segs) || st.Duplicates != 0 || st.Throttled != 0 {
		t.Fatalf("session stats %+v", st)
	}
	got, err := codec.DecodeSequence(srv.SessionFrames(ssrc, len(s.Encoded)), s.Config)
	if err != nil {
		t.Fatal(err)
	}
	q, err := evalvid.Evaluate(clip, got)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 30 {
		t.Fatalf("ingest reassembly PSNR %.1f: encrypted payloads garbled", q.PSNR)
	}

	// A resume replay: the first ten segments again, all duplicates.
	for _, seg := range segs[:10] {
		sendSeg(t, conn, buf, ssrc, seg)
	}
	waitFor(t, 5*time.Second, func() bool {
		st, ok := srv.SessionStats(ssrc)
		return ok && st.Duplicates == 10
	}, "replayed segments to count as duplicates")

	// FIN releases the slot and attributes the close.
	if _, err := conn.Write(marshalFIN(ssrc)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 0 }, "FIN to release the session")
	tot := srv.Totals()
	if tot.SessionsStarted != 1 || tot.SessionsFinished != 1 || tot.SessionsEvicted != 0 {
		t.Fatalf("session lifecycle totals %+v", tot)
	}
	if tot.Packets != int64(len(segs)) || tot.Duplicates != 10 {
		t.Fatalf("packet totals %+v", tot)
	}
}

func TestIngestAdmissionRejectsPastCap(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.MaxSessions = 2
	cfg.Readers = 1 // deterministic arrival order
	cfg.RetryAfter = 30 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	conns := make([]net.Conn, 3)
	for i := range conns {
		if conns[i], err = net.Dial("udp", srv.Addr()); err != nil {
			t.Fatal(err)
		}
		defer conns[i].Close()
	}
	sendSeg(t, conns[0], buf, 1, segs[0])
	sendSeg(t, conns[1], buf, 2, segs[0])
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 2 }, "two tenants to be admitted")

	// The third tenant is over the cap: refused, and told when to retry.
	sendSeg(t, conns[2], buf, 3, segs[0])
	conns[2].SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck // UDP deadline set cannot fail
	rbuf := make([]byte, 64)
	n, err := conns[2].Read(rbuf)
	if err != nil {
		t.Fatalf("no reject datagram: %v", err)
	}
	retryAfter, ok := parseReject(rbuf[:n])
	if !ok || retryAfter != cfg.RetryAfter {
		t.Fatalf("reject parse %v %v, want %v", retryAfter, ok, cfg.RetryAfter)
	}
	if tot := srv.Totals(); tot.Rejected < 1 {
		t.Fatalf("rejected total %d", tot.Rejected)
	}
	if srv.ActiveSessions() != 2 {
		t.Fatalf("refused tenant became resident")
	}

	// A FIN frees a slot; the refused tenant's retry is admitted.
	if _, err := conns[0].Write(marshalFIN(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 1 }, "FIN to free a slot")
	sendSeg(t, conns[2], buf, 3, segs[0])
	waitFor(t, 2*time.Second, func() bool {
		_, ok := srv.SessionStats(3)
		return ok
	}, "retry to be admitted")
}

func TestIngestTokenBucketThrottles(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.SessionRate = 50
	cfg.SessionBurst = 4
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 40 {
		segs = segs[:40]
	}
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	const ssrc = 7
	for _, seg := range segs {
		sendSeg(t, conn, buf, ssrc, seg)
	}
	waitFor(t, 2*time.Second, func() bool {
		st, ok := srv.SessionStats(ssrc)
		return ok && st.Received+st.Throttled >= len(segs)/2
	}, "the blast to arrive")
	st, _ := srv.SessionStats(ssrc)
	if st.Throttled < 1 {
		t.Fatalf("no packet throttled by a %0.f pps bucket under a blast: %+v", cfg.SessionRate, st)
	}
	if st.Received > cfg.SessionBurst+6 {
		t.Fatalf("bucket admitted %d packets, burst is %d", st.Received, cfg.SessionBurst)
	}
	if tot := srv.Totals(); tot.Throttled != int64(st.Throttled) {
		t.Fatalf("totals %d vs session %d throttled", tot.Throttled, st.Throttled)
	}
}

func TestIngestIdleEviction(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.IdleTimeout = 60 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	sendSeg(t, conn, buf, 42, segs[0])
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 1 }, "the tenant to be admitted")
	// The phone walked out of range: no FIN, just silence.
	waitFor(t, 2*time.Second, func() bool { return srv.ActiveSessions() == 0 }, "the sweeper to evict the idle session")
	tot := srv.Totals()
	if tot.SessionsEvicted != 1 || tot.SessionsFinished != 0 {
		t.Fatalf("lifecycle totals %+v", tot)
	}
}

// The race-enabled smoke run of the load generator: a few hundred
// concurrent tenants with bursty loss and a resume storm, cross-checking
// the obs metrics against the server's own bookkeeping and proving the
// server winds down clean.
func TestLoadgenSmoke(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.IdleTimeout = 250 * time.Millisecond
	baseGoroutines := runtime.NumGoroutine()
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	pk0 := mIngestPackets.Value()
	dup0 := mIngestDuplicates.Value()
	use0 := mIngestUsable.Value()
	start0 := mIngestSessionsStarted.Value()
	fin0 := mIngestSessionsFinished.Value()
	evict0 := mIngestSessionsEvicted.Value()

	lc := LoadgenConfig{
		Sessions:   150,
		MeanLoss:   0.05,
		ResumeFrac: 0.2,
		Seed:       7,
	}
	rep, err := RunLoadgen(srv, s, lc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != lc.Sessions {
		t.Fatalf("report %v", rep)
	}
	if rep.Resumes == 0 || rep.PacketsLost == 0 {
		t.Fatalf("chaos did not bite: %v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("latency percentiles p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.GoodputBps <= 0 || rep.Server.Usable == 0 {
		t.Fatalf("no goodput measured: %v", rep)
	}
	if rep.Server.SessionsStarted == 0 {
		t.Fatalf("no sessions started: %v", rep)
	}
	if rep.Server.Packets+rep.Server.Duplicates > rep.PacketsSent {
		t.Fatalf("server counted more arrivals (%d+%d) than clients sent (%d)",
			rep.Server.Packets, rep.Server.Duplicates, rep.PacketsSent)
	}

	// Every tenant leaves — by FIN, or by eviction for the few whose FIN
	// the medium ate.
	// Quiescence, not just a momentary zero: packets still queued in the
	// server socket can resurrect the count, so require the totals to
	// hold still across a poll gap too.
	last := srv.Totals()
	waitFor(t, 5*time.Second, func() bool {
		time.Sleep(20 * time.Millisecond)
		tot := srv.Totals()
		settled := srv.ActiveSessions() == 0 && tot == last
		last = tot
		return settled
	}, "all sessions to drain")
	tot := srv.Totals()
	if tot.SessionsStarted < int64(lc.Sessions) {
		t.Fatalf("only %d sessions ever started of %d", tot.SessionsStarted, lc.Sessions)
	}
	if tot.SessionsFinished+tot.SessionsEvicted != tot.SessionsStarted {
		t.Fatalf("lifecycle leak: %+v", tot)
	}
	// The obs counters and the server's own totals increment on the same
	// code paths; after quiescence they must agree exactly.
	if got := mIngestPackets.Value() - pk0; got != tot.Packets {
		t.Fatalf("obs counted %d packets, server %d", got, tot.Packets)
	}
	if got := mIngestDuplicates.Value() - dup0; got != tot.Duplicates {
		t.Fatalf("obs counted %d duplicates, server %d", got, tot.Duplicates)
	}
	if got := mIngestUsable.Value() - use0; got != tot.Usable {
		t.Fatalf("obs counted %d usable, server %d", got, tot.Usable)
	}
	if got := mIngestSessionsStarted.Value() - start0; got != tot.SessionsStarted {
		t.Fatalf("obs counted %d starts, server %d", got, tot.SessionsStarted)
	}
	if got := (mIngestSessionsFinished.Value() - fin0) + (mIngestSessionsEvicted.Value() - evict0); got != tot.SessionsFinished+tot.SessionsEvicted {
		t.Fatalf("obs counted %d closes, server %d", got, tot.SessionsFinished+tot.SessionsEvicted)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+3
	}, "reader pool and sweeper goroutines to exit")
}

// Past the session cap the server pushes back with retry-after hints and
// clients ride them in: everyone either completes or gives up explicitly,
// and the cap is never breached.
func TestLoadgenBackpressure(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	cfg := ingestTestConfig(s)
	cfg.MaxSessions = 25
	cfg.RetryAfter = 25 * time.Millisecond
	cfg.IdleTimeout = 300 * time.Millisecond
	srv, err := NewIngestServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lc := LoadgenConfig{
		Sessions: 80,
		// Generous probe window: under -race the reject datagram can
		// take tens of milliseconds to come back, and a client that
		// stops listening too early wrongly assumes admission.
		AdmitProbe: 150 * time.Millisecond,
		Seed:       3,
	}
	rep, err := RunLoadgen(srv, s, lc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Unadmitted != rep.Sessions {
		t.Fatalf("clients unaccounted for: %v", rep)
	}
	if rep.Server.Rejected == 0 {
		t.Fatalf("cap of %d never pushed back on %d clients: %v", cfg.MaxSessions, lc.Sessions, rep)
	}
	if rep.AdmitRetries == 0 {
		t.Fatalf("no client rode a retry-after hint: %v", rep)
	}
	if rep.Completed < cfg.MaxSessions {
		t.Fatalf("only %d clients completed under a cap of %d", rep.Completed, cfg.MaxSessions)
	}
}
