// Package transport holds the flagged shapes: every function below
// leaks a packetized payload to a network write on some path.
package transport

import (
	"net"

	"repro/internal/buffer"
	"repro/internal/codec"
	"repro/internal/vcrypt"
)

// SendRaw forgets encryption entirely.
func SendRaw(conn net.Conn, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if _, err := conn.Write(p.Payload); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendDowngraded drops to plaintext when the policy says ModeNone — the
// blessed arm is fine — but the encrypting arm of the ladder forgets
// the cipher call, so ciphertext-mode packets leave in the clear.
func SendDowngraded(conn net.Conn, pol vcrypt.Policy, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if pol.Mode == vcrypt.ModeNone {
			if _, err := conn.Write(p.Payload); err != nil { // policy-sanctioned plaintext
				return err
			}
			continue
		}
		if _, err := conn.Write(p.Payload); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendGuarded consults the selector but never encrypts on the encrypt
// arm: the guard's false edge is blessed, the true edge still carries
// taint to the write below the merge.
func SendGuarded(conn net.Conn, sel *vcrypt.Selector, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if sel.ShouldEncrypt(p.Type == codec.IFrame) {
			_ = p // forgot vcrypt.Cipher.EncryptPacket here
		}
		if _, err := conn.Write(p.Payload); err != nil { // want `plaintext packet payload reaches net\.Conn\.Write`
			return err
		}
	}
	return nil
}

// SendBuffered leaks through a helper in another package: the write is
// inside buffer.Flush, the finding lands at this call site.
func SendBuffered(conn net.Conn, frame []byte) error {
	pkts, err := codec.Packetize(frame, 1200)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if err := buffer.Flush(conn, p.Payload); err != nil { // want `plaintext packet payload reaches a network write inside Flush`
			return err
		}
	}
	return nil
}
