package codec

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/video"
)

func testClip(t *testing.T, motion video.MotionLevel, frames int) []*video.Frame {
	t.Helper()
	return video.Generate(video.SceneConfig{W: 96, H: 96, Frames: frames, Motion: motion, Seed: 7})
}

func smallConfig(gop int) Config {
	return Config{Width: 96, Height: 96, GOPSize: gop, QI: 8, QP: 10, SearchRange: 16}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(30).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Width: 0, Height: 96, GOPSize: 30, QI: 8, QP: 8},
		{Width: 90, Height: 96, GOPSize: 30, QI: 8, QP: 8},
		{Width: 96, Height: 96, GOPSize: 0, QI: 8, QP: 8},
		{Width: 96, Height: 96, GOPSize: 30, QI: 0, QP: 8},
		{Width: 96, Height: 96, GOPSize: 30, QI: 8, QP: 8, SearchRange: 100},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestEncodeDecodeCleanChannel(t *testing.T) {
	clip := testClip(t, video.MotionMedium, 20)
	cfg := smallConfig(10)
	encoded, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSequence(encoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	psnr := video.SequencePSNR(clip, decoded)
	if psnr < 30 {
		t.Fatalf("clean-channel PSNR %.2f dB too low", psnr)
	}
}

func TestGOPStructure(t *testing.T) {
	clip := testClip(t, video.MotionLow, 25)
	cfg := smallConfig(10)
	encoded, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ef := range encoded {
		want := PFrame
		if i%10 == 0 {
			want = IFrame
		}
		if ef.Type != want {
			t.Fatalf("frame %d type %v want %v", i, ef.Type, want)
		}
		if ef.Number != i {
			t.Fatalf("frame %d numbered %d", i, ef.Number)
		}
	}
}

func TestIFramesLargerThanPFrames(t *testing.T) {
	for _, motion := range []video.MotionLevel{video.MotionLow, video.MotionHigh} {
		clip := testClip(t, motion, 20)
		cfg := smallConfig(10)
		encoded, err := EncodeSequence(clip, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var iSize, pSize, iN, pN int
		for _, ef := range encoded {
			if ef.Type == IFrame {
				iSize += ef.Size()
				iN++
			} else {
				pSize += ef.Size()
				pN++
			}
		}
		meanI := float64(iSize) / float64(iN)
		meanP := float64(pSize) / float64(pN)
		if meanI <= meanP {
			t.Fatalf("%v motion: mean I %v not larger than mean P %v", motion, meanI, meanP)
		}
	}
}

func TestFastMotionHasLargerPFrames(t *testing.T) {
	cfg := smallConfig(10)
	slow, err := EncodeSequence(testClip(t, video.MotionLow, 20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := EncodeSequence(testClip(t, video.MotionHigh, 20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pMean := func(efs []*EncodedFrame) float64 {
		var n, sum int
		for _, ef := range efs {
			if ef.Type == PFrame {
				sum += ef.Size()
				n++
			}
		}
		return float64(sum) / float64(n)
	}
	ps, pf := pMean(slow), pMean(fast)
	if pf < 2*ps {
		t.Fatalf("fast-motion P frames (%v B) should dwarf slow-motion ones (%v B)", pf, ps)
	}
}

func TestDecodeWithWholeFrameLoss(t *testing.T) {
	clip := testClip(t, video.MotionMedium, 12)
	cfg := smallConfig(12)
	encoded, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := DecodeSequence(encoded, cfg)
	damaged := append([]*EncodedFrame(nil), encoded...)
	damaged[5] = nil // lose one P frame entirely
	decoded, err := DecodeSequence(damaged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossyPSNR := video.SequencePSNR(clip, decoded)
	cleanPSNR := video.SequencePSNR(clip, full)
	if lossyPSNR >= cleanPSNR {
		t.Fatalf("loss should reduce PSNR: %v vs %v", lossyPSNR, cleanPSNR)
	}
	// Frame 4 (before the loss) must be untouched.
	if video.MSE(decoded[4], full[4]) != 0 {
		t.Fatal("frames before the loss must be unaffected")
	}
	// Frame 5 must be a copy of reconstruction 4 (frame-copy concealment).
	if video.MSE(decoded[5], full[4]) != 0 {
		t.Fatal("lost frame must be concealed by the previous reconstruction")
	}
}

func TestDecodeLeadingLossGivesGrey(t *testing.T) {
	cfg := smallConfig(6)
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := dec.Decode(nil)
	for _, v := range f.Y {
		if v != 128 {
			t.Fatal("leading loss should conceal to mid-grey")
		}
	}
}

func TestDecodeCorruptChunkConceals(t *testing.T) {
	clip := testClip(t, video.MotionMedium, 3)
	cfg := smallConfig(3)
	encoded, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a macroblock of the I-frame with random garbage.
	garbled := encoded[0].Clone()
	garbled.MBData[7] = []byte{0xFF, 0x00, 0x13, 0x37, 0xFF, 0xFF}
	dec, _ := NewDecoder(cfg)
	out := dec.Decode(garbled)
	if out == nil {
		t.Fatal("decode must not fail on corrupt chunks")
	}
	// And with a nil chunk.
	lost := encoded[0].Clone()
	lost.MBData[3] = nil
	dec2, _ := NewDecoder(cfg)
	if dec2.Decode(lost) == nil {
		t.Fatal("decode must not fail on missing chunks")
	}
}

func TestEncoderRejectsWrongSize(t *testing.T) {
	enc, err := NewEncoder(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(video.NewFrame(32, 32)); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestEncoderReset(t *testing.T) {
	clip := testClip(t, video.MotionLow, 3)
	enc, _ := NewEncoder(smallConfig(10))
	a, _ := enc.Encode(clip[0])
	enc.Encode(clip[1])
	enc.Reset()
	b, _ := enc.Encode(clip[0])
	if a.Type != IFrame || b.Type != IFrame {
		t.Fatal("first frame after reset must be an I-frame")
	}
	if a.Size() != b.Size() {
		t.Fatal("reset encoder must reproduce identical output")
	}
}

func TestFullSearchAtLeastAsGoodAsDiamond(t *testing.T) {
	clip := testClip(t, video.MotionHigh, 6)
	diamond := smallConfig(6)
	full := diamond
	full.FullSearch = true
	de, err := EncodeSequence(clip, diamond)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := EncodeSequence(clip, full)
	if err != nil {
		t.Fatal(err)
	}
	var db, fb int
	for i := range de {
		db += de[i].Size()
		fb += fe[i].Size()
	}
	// Full search should not be dramatically worse; allow 2% slack for
	// rate fluctuations from different-but-equal-SAD vectors.
	if float64(fb) > float64(db)*1.02 {
		t.Fatalf("full search produced more bytes (%d) than diamond (%d)", fb, db)
	}
}

func TestBitIORoundTrip(t *testing.T) {
	w := &bitWriter{}
	values := []uint64{0, 1, 2, 7, 63, 64, 1023, 99999}
	for _, v := range values {
		w.writeUE(v)
	}
	signed := []int64{0, 1, -1, 5, -17, 400, -100000}
	for _, v := range signed {
		w.writeSE(v)
	}
	w.writeBits(0b1011, 4)
	r := newBitReader(w.bytes())
	for _, v := range values {
		got, err := r.readUE()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("UE round trip %d -> %d", v, got)
		}
	}
	for _, v := range signed {
		got, err := r.readSE()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("SE round trip %d -> %d", v, got)
		}
	}
	got, err := r.readBits(4)
	if err != nil || got != 0b1011 {
		t.Fatalf("bits round trip got %b err %v", got, err)
	}
}

func TestBitReaderTruncated(t *testing.T) {
	r := newBitReader(nil)
	if _, err := r.readBit(); err == nil {
		t.Fatal("empty reader should error")
	}
	if _, err := r.readUE(); err == nil {
		t.Fatal("empty UE should error")
	}
}

func TestDCTRoundTrip(t *testing.T) {
	var in, freq, out [64]float64
	for i := range in {
		in[i] = float64((i*37)%256) - 128
	}
	fdct8(&in, &freq)
	idct8(&freq, &out)
	for i := range in {
		if math.Abs(in[i]-out[i]) > 1e-9 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, in[i], out[i])
		}
	}
}

func TestDCTParseval(t *testing.T) {
	var in, freq [64]float64
	for i := range in {
		in[i] = float64(i%16) - 8
	}
	fdct8(&in, &freq)
	var e1, e2 float64
	for i := range in {
		e1 += in[i] * in[i]
		e2 += freq[i] * freq[i]
	}
	if math.Abs(e1-e2) > 1e-6 {
		t.Fatalf("orthonormal DCT must preserve energy: %v vs %v", e1, e2)
	}
}

func TestBlockCodingRoundTripLowQuant(t *testing.T) {
	var samples, recon [64]float64
	for i := range samples {
		samples[i] = float64((i*13)%64) - 32
	}
	w := &bitWriter{}
	encodeBlock(w, &samples, 0.5, &recon)
	var dec [64]float64
	r := newBitReader(w.bytes())
	if err := decodeBlock(r, 0.5, &dec); err != nil {
		t.Fatal(err)
	}
	for i := range recon {
		if math.Abs(recon[i]-dec[i]) > 1e-9 {
			t.Fatalf("encoder/decoder reconstruction mismatch at %d", i)
		}
		if math.Abs(dec[i]-samples[i]) > 2 {
			t.Fatalf("low-quant reconstruction too far at %d: %v vs %v", i, dec[i], samples[i])
		}
	}
}

func TestBlockCodingZeroBlock(t *testing.T) {
	var samples, recon [64]float64
	w := &bitWriter{}
	encodeBlock(w, &samples, 8, &recon)
	if len(w.bytes()) != 1 {
		t.Fatalf("zero block should cost one byte, got %d", len(w.bytes()))
	}
	var dec [64]float64
	if err := decodeBlock(newBitReader(w.bytes()), 8, &dec); err != nil {
		t.Fatal(err)
	}
	for _, v := range dec {
		if v != 0 {
			t.Fatal("zero block must decode to zero")
		}
	}
}

// Property: decoding is deterministic and the clean-channel reconstruction
// error stays within the quantiser's reach for arbitrary random frames.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 8; trial++ {
		f := video.NewFrame(32, 32)
		for i := range f.Y {
			f.Y[i] = byte(rng.Intn(256))
		}
		for i := range f.Cb {
			f.Cb[i] = byte(rng.Intn(256))
			f.Cr[i] = byte(rng.Intn(256))
		}
		cfg := Config{Width: 32, Height: 32, GOPSize: 4, QI: 6, QP: 8, SearchRange: 8}
		enc, err := EncodeSequence([]*video.Frame{f, f, f}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d1, _ := DecodeSequence(enc, cfg)
		d2, _ := DecodeSequence(enc, cfg)
		for i := range d1 {
			if video.MSE(d1[i], d2[i]) != 0 {
				t.Fatal("decode is not deterministic")
			}
		}
		// Random noise is the codec's worst case; the reconstruction must
		// still be recognisable (bounded MSE) and identical frames 2,3
		// (static input) must decode almost losslessly via P-frames.
		if mse := video.MSE(f, d1[0]); mse > 2000 {
			t.Fatalf("trial %d: intra reconstruction MSE %v", trial, mse)
		}
		if mse := video.MSE(d1[1], d1[2]); mse > 1 {
			t.Fatalf("static P frames drifted: MSE %v", mse)
		}
	}
}
