package queuesim

import (
	"math"
	"testing"

	"repro/internal/analytic"
)

func poisson(rate float64) analytic.MMPP2 {
	return analytic.MMPP2{P1: 1, P2: 1, Lambda1: rate, Lambda2: rate}
}

func TestRunMatchesMM1(t *testing.T) {
	// Exponential-ish service via cv2=1 Gaussian is not exponential, so
	// instead check against the analytic QBD solver, which is exact for
	// the same parametric service model only in distribution fit; here we
	// use the tight-variance case and compare with P-K directly.
	mean := 0.002
	sp := analytic.ServiceParams{
		PI: 0, TxMeanI: mean, TxMeanP: mean, TxSigmaP: 0.0004, PS: 1,
	}
	lambda := 300.0
	res, err := Run(poisson(lambda), sp, Options{Duration: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := sp.Moments()
	pk, _ := analytic.MGOneWait(lambda, m1, m2)
	if math.Abs(res.MeanWait-pk) > 3*res.WaitCI95+0.05*pk {
		t.Fatalf("sim wait %v vs P-K %v (CI %v)", res.MeanWait, pk, res.WaitCI95)
	}
	if math.Abs(res.UtilBusy-lambda*m1) > 0.02 {
		t.Fatalf("utilisation %v vs rho %v", res.UtilBusy, lambda*m1)
	}
}

func TestRunMatchesQBDUnderMMPP(t *testing.T) {
	// The headline validation: DES vs matrix-geometric solver on a bursty
	// MMPP with policy-dependent service.
	arr := analytic.MMPP2{P1: 300, P2: 15, Lambda1: 1500, Lambda2: 120}
	sp := analytic.ServiceParams{
		PI:   arr.IFramePacketFraction(),
		EncI: 1, EncP: 0.2,
		EncMeanI: 0.8e-3, EncSigmaI: 0.1e-3,
		EncMeanP: 0.4e-3, EncSigmaP: 0.05e-3,
		TxMeanI: 1.6e-3, TxSigmaI: 0.15e-3,
		TxMeanP: 0.7e-3, TxSigmaP: 0.08e-3,
		PS: 0.93, LambdaB: 900,
		MaxErlangOrder: 24,
	}
	qbd, err := analytic.SolveQueue(arr, sp)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(arr, sp, Options{Duration: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Agreement within 10% (MMPP burstiness makes the CI wide; the QBD is
	// exact for the PH fit, the sim for the Gaussian model).
	if math.Abs(sim.MeanWait-qbd.MeanWait) > 0.10*qbd.MeanWait+3*sim.WaitCI95 {
		t.Fatalf("sim %v vs QBD %v (CI %v)", sim.MeanWait, qbd.MeanWait, sim.WaitCI95)
	}
	if math.Abs(sim.MeanService-qbd.MeanService) > 0.03*qbd.MeanService {
		t.Fatalf("service %v vs %v", sim.MeanService, qbd.MeanService)
	}
	// Realised encrypted fraction ~ q = pI*1 + (1-pI)*0.2.
	wantQ := sp.EncryptedFraction()
	if math.Abs(sim.EncryptedPct-wantQ) > 0.03 {
		t.Fatalf("encrypted fraction %v want %v", sim.EncryptedPct, wantQ)
	}
}

func TestRunPolicyOrdering(t *testing.T) {
	arr := analytic.MMPP2{P1: 400, P2: 10, Lambda1: 1000, Lambda2: 100}
	base := analytic.ServiceParams{
		PI:       arr.IFramePacketFraction(),
		EncMeanI: 0.9e-3, EncMeanP: 0.5e-3,
		TxMeanI: 1.8e-3, TxMeanP: 0.6e-3,
		PS: 1,
	}
	wait := func(encI, encP float64) float64 {
		sp := base
		sp.EncI, sp.EncP = encI, encP
		r, err := Run(arr, sp, Options{Duration: 1500, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanSojourn
	}
	none := wait(0, 0)
	iOnly := wait(1, 0)
	all := wait(1, 1)
	if !(none < iOnly && iOnly < all) {
		t.Fatalf("ordering violated: %v %v %v", none, iOnly, all)
	}
}

func TestRunErrors(t *testing.T) {
	sp := analytic.ServiceParams{PI: 0, TxMeanI: 1e-3, TxMeanP: 1e-3, PS: 1}
	if _, err := Run(poisson(10), sp, Options{Duration: 0}); err == nil {
		t.Fatal("zero duration should fail")
	}
	if _, err := Run(poisson(10), sp, Options{Duration: 10, WarmupFraction: 2}); err == nil {
		t.Fatal("warmup >= 1 should fail")
	}
	bad := sp
	bad.PS = 0
	if _, err := Run(poisson(10), bad, Options{Duration: 10}); err == nil {
		t.Fatal("invalid service should fail")
	}
	if _, err := Run(analytic.MMPP2{}, sp, Options{Duration: 10}); err == nil {
		t.Fatal("invalid arrival should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	arr := poisson(200)
	sp := analytic.ServiceParams{PI: 0, TxMeanI: 2e-3, TxMeanP: 2e-3, TxSigmaP: 0.2e-3, PS: 1}
	a, err := Run(arr, sp, Options{Duration: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(arr, sp, Options{Duration: 100, Seed: 9})
	if a.MeanWait != b.MeanWait || a.Packets != b.Packets {
		t.Fatal("same seed must reproduce exactly")
	}
}

func TestRunIFractionMatchesModel(t *testing.T) {
	arr := analytic.MMPP2{P1: 400, P2: 10, Lambda1: 1000, Lambda2: 100}
	sp := analytic.ServiceParams{PI: 0.2, TxMeanI: 1e-3, TxMeanP: 1e-3, PS: 1}
	res, err := Run(arr, sp, Options{Duration: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IFraction-arr.IFramePacketFraction()) > 0.02 {
		t.Fatalf("I fraction %v vs model %v", res.IFraction, arr.IFramePacketFraction())
	}
}

// The QBD solver reports the geometric decay rate of the queue-length
// tail; the simulator's sojourn-time distribution must show the matching
// heavier-tail ordering between bursty and smooth arrivals.
func TestTailHeavierUnderBurstiness(t *testing.T) {
	sp := analytic.ServiceParams{
		PI: 0, TxMeanI: 2e-3, TxMeanP: 2e-3, TxSigmaP: 0.3e-3, PS: 1,
	}
	bursty := analytic.MMPP2{P1: 40, P2: 10, Lambda1: 800, Lambda2: 50}
	smooth := poisson(bursty.MeanRate())
	tail := func(arr analytic.MMPP2) float64 {
		res, err := Run(arr, sp, Options{Duration: 2000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res.P99Wait
	}
	if tb, ts := tail(bursty), tail(smooth); tb <= ts {
		t.Fatalf("bursty p99 wait %v should exceed smooth %v", tb, ts)
	}
}
