// Package energy models the two smartphones of the paper's testbed
// (Table 1) closely enough to reproduce the power results of Section 6.3:
// per-cipher encryption throughput and per-packet overhead (which set both
// the encryption-time component of the delay model and the CPU energy),
// and a Monsoon-style meter that integrates idle, CPU-crypto and
// radio-transmit power over a stream and reports average Watts, including
// the uAh-to-Watt conversion of Eq. (29).
//
// The profiles are calibrated, not measured: the numbers are typical of
// 2011-class ARM Cortex-A9 / Snapdragon S3 software crypto (no AES
// instructions) and are chosen so the paper's orderings hold — AES128 ~
// AES256 << 3DES cost, none < I-only << P-only < all power, and large
// savings from I-only encryption. DESIGN.md documents this substitution.
package energy

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/vcrypt"
)

// Profile describes one device's crypto speed and power behaviour.
type Profile struct {
	Name string

	// ThroughputBps is sustained single-core encryption throughput in
	// bytes/second per algorithm.
	ThroughputBps map[vcrypt.Algorithm]float64
	// PerPacketOverhead is the fixed per-packet cost in seconds (buffer
	// management, IV setup, JNI-boundary crossing in the original app).
	PerPacketOverhead map[vcrypt.Algorithm]float64

	// IdlePower is the screen-on, radio-idle baseline in Watts.
	IdlePower float64
	// CPUActivePower is the *additional* power drawn while a core runs
	// the encryption loop.
	CPUActivePower float64
	// TxPower is the additional power drawn while the WiFi radio
	// transmits.
	TxPower float64
}

// SamsungGalaxySII returns the profile of the paper's first device
// (1.2 GHz dual-core Cortex-A9).
func SamsungGalaxySII() Profile {
	return Profile{
		Name: "Samsung Galaxy S-II",
		ThroughputBps: map[vcrypt.Algorithm]float64{
			vcrypt.AES128:    12e6,
			vcrypt.AES256:    9e6,
			vcrypt.TripleDES: 1.6e6,
			// CTR keystreams are feedback-free, so the second core can
			// precompute them during the pacing wait (vcrypt.Prefetch);
			// the hot path then pays one XOR pass plus a cheaper
			// per-packet setup (no chained block at the boundary).
			vcrypt.AES128CTR: 21e6,
			vcrypt.AES256CTR: 16e6,
		},
		PerPacketOverhead: map[vcrypt.Algorithm]float64{
			vcrypt.AES128:    200e-6,
			vcrypt.AES256:    220e-6,
			vcrypt.TripleDES: 350e-6,
			vcrypt.AES128CTR: 120e-6,
			vcrypt.AES256CTR: 130e-6,
		},
		IdlePower:      0.45,
		CPUActivePower: 2.0,
		TxPower:        0.5,
	}
}

// HTCAmaze4G returns the profile of the second device (1.5 GHz dual-core
// Snapdragon S3): a faster CPU, so encryption penalties are flatter, as in
// Figs. 8 and 11.
func HTCAmaze4G() Profile {
	return Profile{
		Name: "HTC Amaze 4G",
		ThroughputBps: map[vcrypt.Algorithm]float64{
			vcrypt.AES128:    17e6,
			vcrypt.AES256:    13e6,
			vcrypt.TripleDES: 2.3e6,
			vcrypt.AES128CTR: 30e6,
			vcrypt.AES256CTR: 23e6,
		},
		PerPacketOverhead: map[vcrypt.Algorithm]float64{
			vcrypt.AES128:    150e-6,
			vcrypt.AES256:    165e-6,
			vcrypt.TripleDES: 260e-6,
			vcrypt.AES128CTR: 90e-6,
			vcrypt.AES256CTR: 100e-6,
		},
		IdlePower:      0.55,
		CPUActivePower: 1.2,
		TxPower:        0.5,
	}
}

// ModernARMv8 returns a present-day phone profile: an ARMv8 core with the
// AES instruction-set extension, where block-cipher throughput is two
// orders of magnitude above the 2011 software loops and the fixed
// per-packet cost shrinks to syscall/JNI noise. It is not a paper testbed
// device (Devices excludes it); it exists to answer ROADMAP item 2's
// question — once encryption is nearly free, does "encrypt everything"
// dominate selective encryption? 3DES has no hardware path and stays slow.
func ModernARMv8() Profile {
	return Profile{
		Name: "Modern ARMv8 (AES ext)",
		ThroughputBps: map[vcrypt.Algorithm]float64{
			vcrypt.AES128:    900e6,
			vcrypt.AES256:    700e6,
			vcrypt.TripleDES: 9e6,
			// CTR pipelines across the AES units (no feedback chain),
			// OFB cannot; this is the one place the gap is large.
			vcrypt.AES128CTR: 2.4e9,
			vcrypt.AES256CTR: 1.8e9,
		},
		PerPacketOverhead: map[vcrypt.Algorithm]float64{
			vcrypt.AES128:    6e-6,
			vcrypt.AES256:    6e-6,
			vcrypt.TripleDES: 40e-6,
			vcrypt.AES128CTR: 4e-6,
			vcrypt.AES256CTR: 4e-6,
		},
		IdlePower:      0.35,
		CPUActivePower: 1.0,
		TxPower:        0.45,
	}
}

// Devices returns both testbed profiles.
func Devices() []Profile { return []Profile{SamsungGalaxySII(), HTCAmaze4G()} }

// EncryptTime returns the modelled time to encrypt one packet of the given
// payload size.
func (p Profile) EncryptTime(alg vcrypt.Algorithm, payloadBytes int) (float64, error) {
	tp, ok := p.ThroughputBps[alg]
	if !ok || tp <= 0 {
		return 0, fmt.Errorf("energy: %s has no throughput for %v", p.Name, alg)
	}
	if payloadBytes < 0 {
		return 0, fmt.Errorf("energy: negative payload")
	}
	return p.PerPacketOverhead[alg] + float64(payloadBytes)/tp, nil
}

// EncryptTimeStats returns the mean and standard deviation of the
// per-packet encryption time over a size class, the (mu, sigma) inputs of
// Eq. (15).
func (p Profile) EncryptTimeStats(alg vcrypt.Algorithm, sizes []int) (mean, sigma float64, err error) {
	if len(sizes) == 0 {
		return 0, 0, fmt.Errorf("energy: empty size class")
	}
	ts := make([]float64, len(sizes))
	for i, s := range sizes {
		t, err := p.EncryptTime(alg, s)
		if err != nil {
			return 0, 0, err
		}
		ts[i] = t
	}
	return stats.Mean(ts), stats.StdDev(ts), nil
}

// Meter integrates energy over a transfer, mirroring the Monsoon power
// monitor attached to the phones.
type Meter struct {
	profile Profile

	cryptoSeconds float64
	txSeconds     float64
	totalEnergyJ  float64
	extraJ        float64
}

// NewMeter starts a measurement for the device.
func NewMeter(p Profile) *Meter { return &Meter{profile: p} }

// AddCrypto records t seconds of encryption work.
func (m *Meter) AddCrypto(t float64) {
	if t < 0 {
		panic("energy: negative crypto time")
	}
	m.cryptoSeconds += t
}

// AddTx records t seconds of radio transmission.
func (m *Meter) AddTx(t float64) {
	if t < 0 {
		panic("energy: negative tx time")
	}
	m.txSeconds += t
}

// AddEnergy records an extra energy draw in Joules (e.g. TCP
// retransmission processing).
func (m *Meter) AddEnergy(j float64) {
	if j < 0 {
		panic("energy: negative energy")
	}
	m.extraJ += j
}

// AveragePower returns the mean power in Watts over a stream of the given
// duration: baseline plus duty-cycled CPU and radio components. duration
// must cover the busy periods recorded.
func (m *Meter) AveragePower(duration float64) (float64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("energy: non-positive duration")
	}
	if m.cryptoSeconds > duration*1.0001 || m.txSeconds > duration*1.0001 {
		return 0, fmt.Errorf("energy: busy time (crypto %.3fs, tx %.3fs) exceeds duration %.3fs",
			m.cryptoSeconds, m.txSeconds, duration)
	}
	energy := m.profile.IdlePower*duration +
		m.profile.CPUActivePower*m.cryptoSeconds +
		m.profile.TxPower*m.txSeconds +
		m.extraJ
	m.totalEnergyJ = energy
	return energy / duration, nil
}

// EnergyJoules returns the last integrated energy (valid after
// AveragePower).
func (m *Meter) EnergyJoules() float64 { return m.totalEnergyJ }

// MicroAmpHoursToWatts converts a Monsoon reading in uAh over a stream
// duration (seconds) at the given supply voltage into average Watts —
// Eq. (29) of the paper: v * Voltage * 3600 * 1e-6 / duration.
func MicroAmpHoursToWatts(uah, voltage, duration float64) (float64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("energy: non-positive duration")
	}
	return uah * voltage * 3600e-6 / duration, nil
}

// PaperSupplyVoltage is the 3.9 V supply the paper's monitor used.
const PaperSupplyVoltage = 3.9
