package auditemit

import (
	"testing"

	"repro/tools/analyzers/lintkit"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTestModule(t, Analyzer, "testdata/flagged")
}

func TestAllowed(t *testing.T) {
	lintkit.RunTestModule(t, Analyzer, "testdata/allowed")
}
