package vcrypt

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
)

// The paper assumes "the user has a valid key that has been established
// either using PKI or the standard Diffie-Hellman key exchange" before the
// video transfer starts (Section 3). This file supplies that substrate: an
// ECDH P-256 agreement plus an HKDF-SHA256 expansion to the session key of
// whichever symmetric algorithm the policy selects. The live transports
// can run it over any control channel; the tests run it in memory.

// Handshake is one party's ephemeral key-agreement state.
type Handshake struct {
	priv *ecdh.PrivateKey
}

// NewHandshake draws an ephemeral P-256 key pair. Pass nil for rng to use
// crypto/rand.
func NewHandshake(rng io.Reader) (*Handshake, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := ecdh.P256().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("vcrypt: handshake keygen: %w", err)
	}
	return &Handshake{priv: priv}, nil
}

// Public returns the marshalled public value to send to the peer.
func (h *Handshake) Public() []byte {
	return h.priv.PublicKey().Bytes()
}

// SessionKey combines the peer's public value into a shared secret and
// derives a key of the algorithm's size, bound to the context label so
// different uses of one agreement get independent keys.
func (h *Handshake) SessionKey(peerPublic []byte, alg Algorithm, context string) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("vcrypt: bad peer public key: %w", err)
	}
	secret, err := h.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("vcrypt: ECDH failed: %w", err)
	}
	size := alg.KeySize()
	if size == 0 {
		return nil, fmt.Errorf("vcrypt: unknown algorithm %d", alg)
	}
	return hkdf(secret, []byte("thriftyvid-hs"), []byte(context), size), nil
}

// SessionCipher is a convenience wrapper deriving the key and building the
// packet cipher in one step.
func (h *Handshake) SessionCipher(peerPublic []byte, alg Algorithm, context string) (*Cipher, error) {
	key, err := h.SessionKey(peerPublic, alg, context)
	if err != nil {
		return nil, err
	}
	return NewCipher(alg, key)
}

// hkdf implements RFC 5869 extract-and-expand with HMAC-SHA256.
func hkdf(secret, salt, info []byte, length int) []byte {
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)
	var out []byte
	var block []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(block)
		mac.Write(info)
		mac.Write([]byte{counter})
		block = mac.Sum(nil)
		out = append(out, block...)
	}
	return out[:length]
}
