package transport

import "repro/internal/vcrypt"

type extender struct{ epoch uint64 }

// Extend stands in for the seqext helper: a real function call whose
// result is the sanctioned extended sequence.
func (x *extender) Extend(seq uint16) uint64 { return x.epoch | uint64(seq) }

type sender struct {
	cipher vcrypt.Cipher
	ext    extender
	seq    uint64
}

func (s *sender) sendExtended(wire uint16, payload []byte) []byte {
	return s.cipher.EncryptPacket(s.ext.Extend(wire), payload) // extension call result is sanctioned
}

func (s *sender) sendCounter64(payload []byte) []byte {
	s.seq++
	return s.cipher.EncryptPacket(s.seq, payload) // native 64-bit counter
}

func (s *sender) sendLoop(payloads [][]byte) [][]byte {
	out := make([][]byte, 0, len(payloads))
	for i, p := range payloads {
		out = append(out, s.cipher.EncryptPacket(s.seq+uint64(i), p)) // int index is 64-bit
	}
	return out
}

func (s *sender) sendBatch(payloads [][]byte) [][]byte {
	return s.cipher.EncryptPackets(s.seq, payloads)
}

func (s *sender) sendJustified(seq16 uint16, payload []byte) []byte {
	//lint:allow ivunique handshake packets use the fixed pre-session IV space
	return s.cipher.EncryptPacket(uint64(seq16), payload)
}
