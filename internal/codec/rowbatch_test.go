package codec

import (
	"fmt"
	"testing"

	"repro/internal/video"
)

// perMBEncode replicates the pre-batching encode path — one full
// macroblock coded at a time via encodeIntraMB/encodeInterMB — with the
// same state evolution (reference chain, MV predictor seeding) as
// Encoder.Encode. It is the reference the batched row coder is pinned
// against.
func perMBEncode(e *Encoder, f *video.Frame) (*EncodedFrame, error) {
	ft := PFrame
	if e.count%e.cfg.GOPSize == 0 || e.ref == nil {
		ft = IFrame
	}
	recon := video.NewFrame(f.W, f.H)
	cols, rows := e.cfg.MBCols(), e.cfg.MBRows()
	out := &EncodedFrame{Number: e.count, Type: ft, MBData: make([][]byte, cols*rows)}
	mvs := make([][2]int, cols*rows)
	sc := getScratch()
	for my := 0; my < rows; my++ {
		var arena []byte
		for mx := 0; mx < cols; mx++ {
			sc.w.reset()
			if ft == IFrame {
				encodeIntraMB(sc, f, recon, mx, my, e.cfg.QI)
			} else {
				starts := sc.starts[:0]
				if mx > 0 {
					starts = append(starts, mvs[my*cols+mx-1])
				}
				if my > 0 {
					starts = append(starts, mvs[(my-1)*cols+mx])
				}
				if e.prevMVs != nil {
					starts = append(starts, e.prevMVs[my*cols+mx])
				}
				dx, dy := encodeInterMB(sc, f, e.ref, recon, mx, my, e.cfg, starts)
				mvs[my*cols+mx] = [2]int{dx, dy}
			}
			chunk := sc.w.bytes()
			start := len(arena)
			arena = append(arena, chunk...)
			out.MBData[my*cols+mx] = arena[start:len(arena):len(arena)]
		}
	}
	putScratch(sc)
	if ft == PFrame {
		e.prevMVs = mvs
	} else {
		e.prevMVs = nil
	}
	e.ref = recon
	e.count++
	return out, nil
}

// TestBatchedRowMatchesPerMB pins the three-phase batched row coder
// bit-identical to the per-macroblock reference across I and P frames,
// motion levels, and both motion estimators.
func TestBatchedRowMatchesPerMB(t *testing.T) {
	for _, motion := range []video.MotionLevel{video.MotionLow, video.MotionHigh} {
		for _, full := range []bool{false, true} {
			clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 10, Motion: motion, Seed: 47})
			cfg := smallConfig(4)
			cfg.FullSearch = full
			batched, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range clip {
				a, err := batched.Encode(f)
				if err != nil {
					t.Fatal(err)
				}
				b, err := perMBEncode(ref, f)
				if err != nil {
					t.Fatal(err)
				}
				encodedEqual(t, []*EncodedFrame{a}, []*EncodedFrame{b},
					fmt.Sprintf("motion=%v full=%v frame %d", motion, full, i))
			}
		}
	}
}
