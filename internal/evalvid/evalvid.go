// Package evalvid reproduces the video-quality toolkit role of the EvalVid
// suite in the paper's methodology (Section 6.1): PSNR between the
// original clip and a reconstruction (Eq. 28), the Mean Opinion Score
// mapping used for Figs. 5 and 15, and plain-text sender/receiver traces
// for offline analysis.
package evalvid

import (
	"fmt"
	"math"

	"repro/internal/video"
)

// MaxPSNR caps the PSNR of (near-)identical frames so sequence averages
// stay finite, as EvalVid does.
const MaxPSNR = 100.0

// PSNRFromMSE implements Eq. (28): 20 log10(255 / sqrt(MSE)).
func PSNRFromMSE(mse float64) float64 {
	if mse <= 0 {
		return MaxPSNR
	}
	p := 20 * math.Log10(255/math.Sqrt(mse))
	if p > MaxPSNR {
		return MaxPSNR
	}
	return p
}

// MOSFromPSNR maps PSNR (dB) to the 1..5 Mean Opinion Score with the
// standard EvalVid thresholds: >37 excellent (5), 31-37 good (4), 25-31
// fair (3), 20-25 poor (2), <20 bad (1).
func MOSFromPSNR(psnr float64) int {
	switch {
	case psnr > 37:
		return 5
	case psnr > 31:
		return 4
	case psnr > 25:
		return 3
	case psnr > 20:
		return 2
	default:
		return 1
	}
}

// Quality is the evaluation of one reconstruction against the original.
type Quality struct {
	MeanMSE      float64
	PSNR         float64 // PSNR of the mean MSE (EvalVid's aggregate)
	MOS          float64 // mean per-frame MOS
	PerFramePSNR []float64
}

// Evaluate compares a reconstruction with the original clip. The two
// sequences must have equal length; a nil reconstruction frame counts as
// maximally distorted (mid-grey comparison frame).
func Evaluate(orig, recon []*video.Frame) (Quality, error) {
	if len(orig) != len(recon) {
		return Quality{}, fmt.Errorf("evalvid: length mismatch %d vs %d", len(orig), len(recon))
	}
	if len(orig) == 0 {
		return Quality{}, fmt.Errorf("evalvid: empty clip")
	}
	q := Quality{PerFramePSNR: make([]float64, len(orig))}
	var mosSum float64
	for i := range orig {
		r := recon[i]
		if r == nil {
			r = video.NewFrame(orig[i].W, orig[i].H)
			for k := range r.Y {
				r.Y[k] = 128
			}
		}
		mse := video.MSE(orig[i], r)
		q.MeanMSE += mse
		p := PSNRFromMSE(mse)
		q.PerFramePSNR[i] = p
		mosSum += float64(MOSFromPSNR(p))
	}
	q.MeanMSE /= float64(len(orig))
	q.PSNR = PSNRFromMSE(q.MeanMSE)
	q.MOS = mosSum / float64(len(orig))
	return q, nil
}
