package analytic

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Fatalf("C(%d,%d) = %v want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestFrameSuccessSinglePacket(t *testing.T) {
	// n=1, s=0: frame succeeds iff its only packet is usable.
	if got := FrameSuccess(0.9, 1, 0); !near(got, 0.9, 1e-12) {
		t.Fatalf("single packet %v", got)
	}
}

func TestFrameSuccessAllPacketsNeeded(t *testing.T) {
	// n=4, s=3: all packets needed -> pd^4.
	pd := 0.8
	if got := FrameSuccess(pd, 4, 3); !near(got, math.Pow(pd, 4), 1e-12) {
		t.Fatalf("all-needed %v want %v", got, math.Pow(pd, 4))
	}
}

func TestFrameSuccessSensitivityMonotone(t *testing.T) {
	prev := 2.0
	for s := 0; s <= 7; s++ {
		got := FrameSuccess(0.85, 8, s)
		if got >= prev {
			t.Fatalf("success must fall as sensitivity rises: s=%d %v >= %v", s, got, prev)
		}
		prev = got
	}
}

func TestFrameSuccessEdgeCases(t *testing.T) {
	if FrameSuccess(0, 5, 1) != 0 {
		t.Fatal("pd=0 must give 0")
	}
	if FrameSuccess(1, 5, 4) != 1 {
		t.Fatal("pd=1 must give 1")
	}
	if FrameSuccess(0.5, 0, 0) != 0 {
		t.Fatal("n=0 must give 0")
	}
	// s out of range gets clamped rather than panicking.
	if got := FrameSuccess(0.9, 3, 99); got != FrameSuccess(0.9, 3, 2) {
		t.Fatalf("s clamp wrong: %v", got)
	}
}

func TestUsableProbability(t *testing.T) {
	if got := UsableProbability(0.9, 0); !near(got, 0.9, 1e-12) {
		t.Fatal("receiver usable prob wrong")
	}
	if got := UsableProbability(0.9, 1); got != 0 {
		t.Fatal("fully encrypted must be unusable")
	}
	if got := UsableProbability(0.9, 0.25); !near(got, 0.675, 1e-12) {
		t.Fatalf("partial: %v", got)
	}
}

func TestIntraGOPDistortionEndpoints(t *testing.T) {
	g, dmin, dmax := 30, 2.0, 500.0
	first := IntraGOPDistortion(1, g, dmin, dmax)
	last := IntraGOPDistortion(g-1, g, dmin, dmax)
	if !near(last, dmin/float64(g), 1e-9) {
		t.Fatalf("losing only the last frame: %v want %v", last, dmin/float64(g))
	}
	if first < 0.8*dmax {
		t.Fatalf("losing right after the I-frame should approach dmax: %v", first)
	}
	// Monotone: earlier loss hurts more.
	prev := math.Inf(1)
	for i := 1; i < g; i++ {
		d := IntraGOPDistortion(i, g, dmin, dmax)
		if d >= prev {
			t.Fatalf("intra distortion must fall with i: i=%d %v >= %v", i, d, prev)
		}
		prev = d
	}
}

func testModel() DistortionModel {
	return DistortionModel{
		G:         30,
		PISuccess: 0.95, PPSuccess: 0.98,
		DMin: 5, DMax: 400,
		InterGOP:       stats.Polynomial{Coeffs: []float64{100, 150}}, // 100 + 150 d
		MaxDistance:    4,
		BaseDistortion: 3,
	}
}

func TestExpectedDistortionCleanChannel(t *testing.T) {
	m := testModel()
	m.PISuccess, m.PPSuccess = 1, 1
	d, err := m.ExpectedDistortion(10)
	if err != nil {
		t.Fatal(err)
	}
	if !near(d, m.BaseDistortion, 1e-9) {
		t.Fatalf("clean channel distortion %v want base %v", d, m.BaseDistortion)
	}
	p, _ := m.ExpectedPSNR(10)
	if p < 40 {
		t.Fatalf("clean PSNR %v", p)
	}
}

func TestExpectedDistortionTotalBlackout(t *testing.T) {
	m := testModel()
	m.PISuccess = 0 // every I-frame unusable (e.g. eavesdropper vs I policy... plus all P encrypted)
	m.PPSuccess = 0
	d, err := m.ExpectedDistortion(10)
	if err != nil {
		t.Fatal(err)
	}
	// All GOPs concealed from ever-growing distance; distortion near the
	// clamped polynomial maximum.
	max := m.InterGOP.Eval(float64(m.MaxDistance))
	if d < 0.7*max {
		t.Fatalf("blackout distortion %v want near %v", d, max)
	}
}

func TestExpectedDistortionMonotoneInSuccess(t *testing.T) {
	m := testModel()
	prev := math.Inf(1)
	for _, ps := range []float64{0.2, 0.5, 0.8, 0.95, 1.0} {
		m.PISuccess, m.PPSuccess = ps, ps
		d, err := m.ExpectedDistortion(20)
		if err != nil {
			t.Fatal(err)
		}
		if d >= prev {
			t.Fatalf("distortion must fall as success rises: ps=%v %v >= %v", ps, d, prev)
		}
		prev = d
	}
}

func TestExpectedDistortionValidation(t *testing.T) {
	m := testModel()
	if _, err := m.ExpectedDistortion(0); err == nil {
		t.Fatal("zero GOPs should fail")
	}
	bad := m
	bad.G = 1
	if _, err := bad.ExpectedDistortion(5); err == nil {
		t.Fatal("tiny GOP should fail")
	}
	bad = m
	bad.InterGOP = stats.Polynomial{}
	if _, err := bad.ExpectedDistortion(5); err == nil {
		t.Fatal("missing polynomial should fail")
	}
	bad = m
	bad.DMax = 1
	bad.DMin = 2
	if _, err := bad.ExpectedDistortion(5); err == nil {
		t.Fatal("DMax < DMin should fail")
	}
}

func TestEavesdropperInputsPolicyEffect(t *testing.T) {
	base := EavesdropperInputs{PS: 0.95, NI: 8, NP: 1, SI: 5, SP: 0}
	// No encryption: eavesdropper sees what the channel delivers.
	pi0, pp0 := base.FrameSuccessRates()
	if pi0 <= 0 || pp0 != 0.95 {
		t.Fatalf("unencrypted rates (%v, %v)", pi0, pp0)
	}
	// I-frame policy: I-frames become undecodable for the eavesdropper.
	enc := base
	enc.EncI = 1
	piE, ppE := enc.FrameSuccessRates()
	if piE != 0 || ppE != pp0 {
		t.Fatalf("I policy rates (%v, %v)", piE, ppE)
	}
	// Fractional P encryption lowers the P rate.
	frac := base
	frac.EncP = 0.2
	_, ppF := frac.FrameSuccessRates()
	if !(ppF < pp0 && ppF > 0) {
		t.Fatalf("fractional rate %v", ppF)
	}
}

// The paper's key distortion claim (Section 6.2): encrypting I-frames
// hurts slow-motion content more than fast-motion; encrypting P-frames
// hurts fast-motion more. Slow motion has small sensitive P-frames and
// informative I-frames (low s_P); fast motion has informative P-frames
// (higher sensitivity and higher inter-GOP distortion growth).
func TestPolicyContentInteraction(t *testing.T) {
	type content struct {
		ni, np, si, sp int
		inter          stats.Polynomial
		dmin, dmax     float64
	}
	slow := content{ni: 8, np: 1, si: 5, sp: 0,
		inter: stats.Polynomial{Coeffs: []float64{80, 40}}, dmin: 3, dmax: 120}
	fast := content{ni: 9, np: 4, si: 6, sp: 2,
		inter: stats.Polynomial{Coeffs: []float64{150, 120}}, dmin: 40, dmax: 900}

	eval := func(c content, encI, encP float64) float64 {
		in := EavesdropperInputs{PS: 0.97, EncI: encI, EncP: encP, NI: c.ni, NP: c.np, SI: c.si, SP: c.sp}
		pi, pp := in.FrameSuccessRates()
		m := DistortionModel{
			G: 30, PISuccess: pi, PPSuccess: pp,
			DMin: c.dmin, DMax: c.dmax,
			InterGOP: c.inter, MaxDistance: 4, BaseDistortion: 2,
		}
		p, err := m.ExpectedPSNR(10)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	slowNone := eval(slow, 0, 0)
	slowI := eval(slow, 1, 0)
	slowP := eval(slow, 0, 1)
	fastNone := eval(fast, 0, 0)
	fastI := eval(fast, 1, 0)
	fastP := eval(fast, 0, 1)

	// Relative PSNR drops.
	dropSlowI := (slowNone - slowI) / slowNone
	dropFastI := (fastNone - fastI) / fastNone
	dropSlowP := (slowNone - slowP) / slowNone
	dropFastP := (fastNone - fastP) / fastNone
	if dropSlowI <= dropFastI {
		t.Fatalf("I encryption should hurt slow motion more: slow %.2f fast %.2f", dropSlowI, dropFastI)
	}
	if dropFastP <= dropSlowP {
		t.Fatalf("P encryption should hurt fast motion more: fast %.2f slow %.2f", dropFastP, dropSlowP)
	}
}
