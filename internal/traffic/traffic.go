// Package traffic implements the traffic-analysis side channel the paper's
// threat model names but leaves open (Section 3): "the eavesdropper may be
// able to distinguish packets as belonging to either I-frames or P-frames
// based on their size or other characteristics. While the sender can
// obfuscate these features by using techniques such as padding the
// payload, we do not consider these possibilities." This package considers
// them: size- and burst-based frame-class classifiers (the attack), their
// accuracy measurement, and the MTU-padding countermeasure whose cost the
// transport can then quantify.
package traffic

import (
	"fmt"
	"sort"
)

// Observation is what a passive observer sees of one packet: its wire size
// and capture time. No payload access is assumed.
type Observation struct {
	Size int
	Time float64
}

// SizeClassifier predicts that packets at least Threshold bytes long
// belong to I-frames (which fragment at the MTU, so they ride in maximal
// packets, while P-frames are typically smaller).
type SizeClassifier struct {
	Threshold int
}

// Classify reports the predicted class (true = I-frame packet).
func (c SizeClassifier) Classify(o Observation) bool { return o.Size >= c.Threshold }

// TrainSizeClassifier picks the threshold that minimises training error on
// labelled observations (labels: true = I-frame packet). It sweeps every
// distinct size boundary, O(n log n).
func TrainSizeClassifier(obs []Observation, labels []bool) (SizeClassifier, error) {
	if len(obs) != len(labels) || len(obs) == 0 {
		return SizeClassifier{}, fmt.Errorf("traffic: need matching non-empty observations and labels")
	}
	type pair struct {
		size int
		isI  bool
	}
	pairs := make([]pair, len(obs))
	for i, o := range obs {
		pairs[i] = pair{o.Size, labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].size < pairs[j].size })
	totalI := 0
	for _, p := range pairs {
		if p.isI {
			totalI++
		}
	}
	// With threshold below everything, all predicted I: errors = #P.
	bestErr := len(pairs) - totalI
	bestThresh := pairs[0].size
	// Walk thresholds upward: moving the threshold above pairs[i] flips
	// its prediction to P.
	errs := bestErr
	for i := 0; i < len(pairs); i++ {
		if pairs[i].isI {
			errs++ // an I packet now misclassified
		} else {
			errs-- // a P packet now correct
		}
		// Candidate threshold just above this size (skip ties).
		if i+1 < len(pairs) && pairs[i+1].size == pairs[i].size {
			continue
		}
		if errs < bestErr {
			bestErr = errs
			bestThresh = pairs[i].size + 1
		}
	}
	return SizeClassifier{Threshold: bestThresh}, nil
}

// Accuracy returns the fraction of observations a classifier labels
// correctly.
func Accuracy(c interface{ Classify(Observation) bool }, obs []Observation, labels []bool) float64 {
	if len(obs) == 0 || len(obs) != len(labels) {
		return 0
	}
	correct := 0
	for i, o := range obs {
		if c.Classify(o) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(obs))
}

// BaseRate returns the accuracy of always guessing the majority class —
// the floor a defeated classifier decays to.
func BaseRate(labels []bool) float64 {
	if len(labels) == 0 {
		return 0
	}
	nI := 0
	for _, l := range labels {
		if l {
			nI++
		}
	}
	if nI*2 > len(labels) {
		return float64(nI) / float64(len(labels))
	}
	return float64(len(labels)-nI) / float64(len(labels))
}

// BurstClassifier exploits timing: I-frames fragment into back-to-back
// packet bursts, so a packet whose neighbourhood (within Gap seconds)
// contains at least MinRun packets is classified as I-frame traffic. It
// works even when sizes are padded, which is why padding alone does not
// close the side channel (constant-rate cover traffic would).
type BurstClassifier struct {
	Gap    float64
	MinRun int
}

// ClassifyAll labels a whole capture at once (burst membership needs the
// neighbours). Observations must be in time order.
func (c BurstClassifier) ClassifyAll(obs []Observation) []bool {
	out := make([]bool, len(obs))
	i := 0
	for i < len(obs) {
		j := i
		for j+1 < len(obs) && obs[j+1].Time-obs[j].Time <= c.Gap {
			j++
		}
		run := j - i + 1
		if run >= c.MinRun {
			for k := i; k <= j; k++ {
				out[k] = true
			}
		}
		i = j + 1
	}
	return out
}

// AccuracyAll measures a whole-capture classifier.
func AccuracyAll(pred, labels []bool) float64 {
	if len(pred) != len(labels) || len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// PadTo returns the padded wire size under the pad-to-MTU countermeasure:
// every payload is grown to exactly mtu bytes (the slice format ignores
// trailing padding, so no framing changes are needed).
func PadTo(size, mtu int) int {
	if size >= mtu {
		return size
	}
	return mtu
}
