package stats

import (
	"fmt"
	"math"
)

// Polynomial is a real polynomial stored as coefficients in increasing
// degree order: p(x) = Coeffs[0] + Coeffs[1]*x + ... .
type Polynomial struct {
	Coeffs []float64
}

// Eval evaluates the polynomial at x using Horner's rule.
func (p Polynomial) Eval(x float64) float64 {
	var v float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Degree returns the nominal degree (len(Coeffs)-1).
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// String renders the polynomial in human-readable form.
func (p Polynomial) String() string {
	s := ""
	for i, c := range p.Coeffs {
		if i == 0 {
			s = fmt.Sprintf("%.6g", c)
			continue
		}
		s += fmt.Sprintf(" %+.6g*x^%d", c, i)
	}
	return s
}

// PolyFit fits a least-squares polynomial of the given degree to the points
// (xs[i], ys[i]), mirroring the degree-5 multinomial regression the paper
// uses to approximate inter-GOP distortion as a function of reference
// distance (Section 4.3.2). It solves the normal equations of the
// Vandermonde system; for the small degrees used here (≤ 8) this is
// numerically adequate after centring x.
func PolyFit(xs, ys []float64, degree int) (Polynomial, error) {
	if len(xs) != len(ys) {
		panic("stats: PolyFit length mismatch")
	}
	if degree < 0 {
		panic("stats: PolyFit negative degree")
	}
	if len(xs) < degree+1 {
		return Polynomial{}, fmt.Errorf("stats: PolyFit needs at least %d points, got %d", degree+1, len(xs))
	}
	n := degree + 1
	// Normal equations: (VᵀV) c = Vᵀy with V_{ij} = x_i^j.
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	pow := make([]float64, 2*degree+1)
	for k := range xs {
		x, y := xs[k], ys[k]
		pow[0] = 1
		for j := 1; j < len(pow); j++ {
			pow[j] = pow[j-1] * x
		}
		for i := 0; i < n; i++ {
			atb[i] += pow[i] * y
			for j := 0; j < n; j++ {
				ata.Set(i, j, ata.At(i, j)+pow[i+j])
			}
		}
	}
	c, err := ata.Solve(atb)
	if err != nil {
		return Polynomial{}, err
	}
	return Polynomial{Coeffs: c}, nil
}

// RSquared returns the coefficient of determination of the fit p on the
// points (xs, ys). 1 means a perfect fit.
func RSquared(p Polynomial, xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(ys) == 0 {
		panic("stats: RSquared length mismatch")
	}
	mean := Mean(ys)
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - p.Eval(xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if NearZero(ssTot) {
		if NearZero(ssRes) {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// LinearFit is a convenience wrapper fitting y = a + b*x and returning
// (a, b).
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	p, err := PolyFit(xs, ys, 1)
	if err != nil {
		return 0, 0, err
	}
	return p.Coeffs[0], p.Coeffs[1], nil
}
