package transport

import (
	"time"

	"repro/internal/codec"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// RetryPolicy configures how a live transfer survives a faulty link:
// per-attempt timeouts, capped exponential backoff with deterministic
// jitter, and an overall deadline after which the sender degrades (via a
// Degrader) instead of failing.
type RetryPolicy struct {
	// MaxAttempts is how many consecutive attempts may fail without the
	// server acknowledging new data before the transfer degrades or
	// aborts. Attempts that make progress reset the count. Default 5.
	MaxAttempts int
	// BaseBackoff is the first retry gap; each further consecutive
	// failure multiplies it by Multiplier up to MaxBackoff. Defaults:
	// 100ms base, 5s cap, multiplier 2.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// JitterFrac spreads each gap uniformly over ±*JitterFrac of its
	// nominal value, decorrelating retry storms. Drawn from a seeded RNG
	// so schedules are reproducible. nil selects the default 0.2;
	// Jitter(0) (or any non-positive fraction) disables jitter so the
	// backoff sequence is exactly the nominal one.
	JitterFrac *float64
	// AttemptTimeout bounds one attempt (including the resume-point
	// query). Default 10s.
	AttemptTimeout time.Duration
	// Deadline bounds the whole transfer; when exceeded the sender
	// consults its Degrader. Zero means no deadline. A degradation
	// grants the cheaper session a fresh deadline.
	Deadline time.Duration
	// Seed fixes the jitter sequence.
	Seed uint64
	// Sleep is a test hook; nil means time.Sleep.
	Sleep func(time.Duration)
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 5
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 100 * time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 5 * time.Second
	}
	if rp.Multiplier <= 1 {
		rp.Multiplier = 2
	}
	if rp.JitterFrac == nil {
		rp.JitterFrac = Jitter(0.2)
	} else if *rp.JitterFrac < 0 {
		// Normalise without writing through the caller's pointer.
		rp.JitterFrac = Jitter(0)
	}
	if rp.AttemptTimeout <= 0 {
		rp.AttemptTimeout = 10 * time.Second
	}
	if rp.Sleep == nil {
		rp.Sleep = time.Sleep
	}
	return rp
}

// Backoff yields the deterministic capped-exponential-with-jitter gap
// sequence of a RetryPolicy. Not safe for concurrent use.
type Backoff struct {
	rp  RetryPolicy
	rng *stats.RNG
	n   int
}

// NewBackoff builds the schedule generator (defaults applied).
func NewBackoff(rp RetryPolicy) *Backoff {
	rp = rp.withDefaults()
	return &Backoff{rp: rp, rng: stats.NewRNG(rp.Seed)}
}

// Next returns the gap to sleep before the next retry.
func (b *Backoff) Next() time.Duration {
	d := float64(b.rp.BaseBackoff)
	for i := 0; i < b.n && d < float64(b.rp.MaxBackoff); i++ {
		d *= b.rp.Multiplier
	}
	if d > float64(b.rp.MaxBackoff) {
		d = float64(b.rp.MaxBackoff)
	}
	b.n++
	if j := *b.rp.JitterFrac; j > 0 {
		d *= 1 - j + 2*j*b.rng.Float64()
	}
	return time.Duration(d)
}

// Jitter returns a pointer to frac for RetryPolicy.JitterFrac, so an
// explicit zero ("no jitter") is distinguishable from the unset field.
func Jitter(frac float64) *float64 { return &frac }

// Reset restarts the exponential growth (after an attempt that made
// progress); the jitter stream keeps advancing.
func (b *Backoff) Reset() { b.n = 0 }

// Degrader is consulted when the retry budget or the transfer deadline is
// exhausted: rather than fail, the sender ships a cheaper version of the
// remaining work. Degrade returns the replacement session, whether the
// clip itself changed (restart — the upload must begin again from a fresh
// sequence epoch), and false when no further degradation exists.
type Degrader interface {
	Degrade(s Session) (next Session, restart bool, ok bool)
}

// PolicyDegrader is the standard ladder: first walk the vcrypt policy
// downgrades (cheaper encryption for the remaining packets, no restart
// needed because the plaintext payload stream is unchanged), then — when
// the raw clip is available — re-encode it with coarsened quantisers so
// the whole transfer shrinks. The paper's planner picks the cheapest
// policy meeting a privacy floor; under deadline pressure the floor
// yields in the same order the planner ranks costs.
type PolicyDegrader struct {
	// Raw is the original clip; nil disables the re-encode rung.
	Raw []*video.Frame
	// QuantScale multiplies QI/QP per re-encode (default 1.6).
	QuantScale float64
	// MaxReencodes bounds successive re-encodes (default 1).
	MaxReencodes int

	reencodes int
}

// Degrade implements Degrader.
func (d *PolicyDegrader) Degrade(s Session) (Session, bool, bool) {
	if q, ok := vcrypt.Downgrade(s.Policy); ok {
		s.Policy = q
		return s, false, true
	}
	maxRe := d.MaxReencodes
	if maxRe <= 0 {
		maxRe = 1
	}
	if d.Raw == nil || d.reencodes >= maxRe {
		return s, false, false
	}
	scale := d.QuantScale
	if scale <= 1 {
		scale = 1.6
	}
	cfg := s.Config
	cfg.QI *= scale
	cfg.QP *= scale
	encoded, err := codec.EncodeSequence(d.Raw, cfg)
	if err != nil {
		return s, false, false
	}
	d.reencodes++
	s.Config = cfg
	s.Encoded = encoded
	return s, true, true
}
