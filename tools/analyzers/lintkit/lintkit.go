// Package lintkit is a small, dependency-free analysis framework with
// the same shape as golang.org/x/tools/go/analysis: an Analyzer owns a
// Run function that inspects one type-checked package through a Pass
// and reports diagnostics. It exists because this repository builds
// offline with the standard library only; see the module go.mod for the
// porting story.
//
// Suppression: a finding is dropped when the offending line, or the
// line directly above it, carries a comment of the form
//
//	//lint:allow <name>[,<name>...] [reason]
//
// naming the analyzer (or one of its aliases). The legacy
// //nolint:errcheck marker is honoured as an alias where an analyzer
// declares it. Allowlist comments are the escape hatch for legitimate
// measurement seams; the reason text is for the human reviewer.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:allow
	// markers.
	Name string
	// Aliases are additional marker names that suppress this analyzer
	// (e.g. "errcheck" for pre-existing //nolint:errcheck comments).
	Aliases []string
	// Doc is a one-paragraph description of the guarded invariant.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// ends with one of these suffixes ("internal/vcrypt" matches
	// "repro/internal/vcrypt"). Empty means every package.
	Packages []string
	// Run inspects one package.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer is configured to inspect the
// package with the given import path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, pat := range a.Packages {
		if importPath == pat || strings.HasSuffix(importPath, "/"+pat) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole loaded program, shared across packages of one
	// run: interprocedural analyzers reach cross-package function bodies
	// and memoize their summaries through it.
	Prog *Program

	allow allowIndex
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an allow marker suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(position.Filename, position.Line, p.Analyzer) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowMarker is one suppression name parsed from a //lint:allow or
// //nolint: comment. `used` flips when the marker actually suppresses
// a finding, which is what lets StaleAllows spot suppression rot.
type allowMarker struct {
	name string
	pos  token.Position
	used bool
}

// allowIndex maps filename -> line -> markers present on that line.
type allowIndex map[string]map[int][]*allowMarker

func (ai allowIndex) allows(filename string, line int, a *Analyzer) bool {
	lines := ai[filename]
	if lines == nil {
		return false
	}
	markers := append(append([]*allowMarker(nil), lines[line]...), lines[line-1]...)
	for _, m := range markers {
		if m.name == a.Name {
			m.used = true
			return true
		}
		for _, alias := range a.Aliases {
			if m.name == alias {
				m.used = true
				return true
			}
		}
	}
	return false
}

// buildAllowIndex scans every comment of the files for suppression
// markers. Both //lint:allow and //nolint: spellings contribute names.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := make(allowIndex)
	add := func(pos token.Pos, names string) {
		position := fset.Position(pos)
		lines := ai[position.Filename]
		if lines == nil {
			lines = make(map[int][]*allowMarker)
			ai[position.Filename] = lines
		}
		for _, n := range strings.Split(names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				lines[position.Line] = append(lines[position.Line], &allowMarker{name: n, pos: position})
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				for _, prefix := range []string{"lint:allow ", "nolint:"} {
					if rest, ok := strings.CutPrefix(text, prefix); ok {
						// Marker names end at the first space; the
						// remainder is the human-readable reason.
						names, _, _ := strings.Cut(rest, " ")
						add(c.Pos(), names)
					}
				}
			}
		}
	}
	return ai
}

// StaleAllows reports every suppression marker that names one of the
// analyzers just run yet suppressed no finding. Call it after
// RunAnalyzers/RunProgram on the same packages — usage is recorded as
// findings are filtered. Markers naming analyzers outside the run (a
// generic //nolint:errcheck aimed at other tooling, say) are left
// alone: their liveness cannot be judged here. Suppression rot is how
// lint gates die — a stale marker hides the next real finding on its
// line.
func StaleAllows(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]string) // marker name -> canonical analyzer name
	for _, a := range analyzers {
		known[a.Name] = a.Name
		for _, alias := range a.Aliases {
			known[alias] = a.Name
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, lines := range pkg.allow {
			for _, markers := range lines {
				for _, m := range markers {
					canonical, ok := known[m.name]
					if !ok || m.used {
						continue
					}
					out = append(out, Diagnostic{
						Pos:      m.pos,
						Analyzer: "staleallow",
						Message:  fmt.Sprintf("suppression %q matches no %s finding — remove the stale marker", m.name, canonical),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}

// RunAnalyzers applies every configured analyzer to every loaded
// package and returns the combined findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunProgram(NewProgram(pkgs), analyzers)
}

// RunProgram is RunAnalyzers over a caller-built Program, for callers
// that want to inspect the program afterwards (cache statistics, call
// graph) or share one program across several suites.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pkgs := prog.Packages
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				allow:     pkg.allow,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// FuncForCall resolves the *types.Func a call expression invokes, or
// nil for calls through function values, conversions and built-ins.
func FuncForCall(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (methods never match).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
