package codec

import (
	"fmt"

	"repro/internal/video"
)

// EncodeSequence compresses a clip into the GOP structure.
func EncodeSequence(frames []*video.Frame, cfg Config) ([]*EncodedFrame, error) {
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*EncodedFrame, len(frames))
	for i, f := range frames {
		ef, err := enc.Encode(f)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
		out[i] = ef
	}
	return out, nil
}

// DecodeSequence reconstructs a clip from (possibly damaged or partially
// missing) encoded frames; nil entries are concealed whole.
func DecodeSequence(encoded []*EncodedFrame, cfg Config) ([]*video.Frame, error) {
	dec, err := NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*video.Frame, len(encoded))
	for i, ef := range encoded {
		out[i] = dec.Decode(ef)
	}
	return out, nil
}

// ClipStats summarises the packet-level structure of an encoded clip,
// the calibration inputs of Section 6.1: per-class packet counts and
// sizes, the I-packet fraction p_I, and mean frame sizes.
type ClipStats struct {
	Frames        int
	GOPSize       int
	IFrames       int
	PFrames       int
	MeanISize     float64 // bytes per I-frame
	MeanPSize     float64 // bytes per P-frame
	IPackets      int
	PPackets      int
	IPacketSizes  []int
	PPacketSizes  []int
	TotalBytes    int
	IFraction     float64 // p_I: fraction of packets belonging to I-frames
	BytesFraction float64 // fraction of bytes belonging to I-frames
}

// AnalyzeClip packetizes every frame at the given MTU and accumulates the
// statistics the analytical model needs.
func AnalyzeClip(encoded []*EncodedFrame, cfg Config, mtu int) (ClipStats, error) {
	st := ClipStats{Frames: len(encoded), GOPSize: cfg.GOPSize}
	var iBytes, pBytes int
	for _, ef := range encoded {
		if ef == nil {
			continue
		}
		pkts, err := Packetize(ef, mtu)
		if err != nil {
			return ClipStats{}, err
		}
		size := ef.Size()
		if ef.Type == IFrame {
			st.IFrames++
			iBytes += size
			for _, p := range pkts {
				st.IPackets++
				st.IPacketSizes = append(st.IPacketSizes, len(p.Payload))
			}
		} else {
			st.PFrames++
			pBytes += size
			for _, p := range pkts {
				st.PPackets++
				st.PPacketSizes = append(st.PPacketSizes, len(p.Payload))
			}
		}
	}
	st.TotalBytes = iBytes + pBytes
	if st.IFrames > 0 {
		st.MeanISize = float64(iBytes) / float64(st.IFrames)
	}
	if st.PFrames > 0 {
		st.MeanPSize = float64(pBytes) / float64(st.PFrames)
	}
	if n := st.IPackets + st.PPackets; n > 0 {
		st.IFraction = float64(st.IPackets) / float64(n)
	}
	if st.TotalBytes > 0 {
		st.BytesFraction = float64(iBytes) / float64(st.TotalBytes)
	}
	return st, nil
}

// MeanPacketsPerIFrame returns n for Eq. (20)'s I-frame class: the average
// number of packets an I-frame fragments into.
func (s ClipStats) MeanPacketsPerIFrame() float64 {
	if s.IFrames == 0 {
		return 0
	}
	return float64(s.IPackets) / float64(s.IFrames)
}

// MeanPacketsPerPFrame returns n for the P-frame class (typically 1).
func (s ClipStats) MeanPacketsPerPFrame() float64 {
	if s.PFrames == 0 {
		return 0
	}
	return float64(s.PPackets) / float64(s.PFrames)
}
