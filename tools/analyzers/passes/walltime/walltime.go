// Package walltime forbids reading the wall clock (time.Now,
// time.Since, time.Until) in the deterministic model and simulation
// packages. Model code must be a pure function of its inputs and seeds:
// one stray time.Now() in a simulated path desynchronises repeated runs
// and silently breaks the reproducibility of the Figure-9 curves. The
// legitimate exceptions — observability measurement seams that time a
// computation without feeding the result back into the model, and the
// real-socket pacing/outage features of netem — carry an explicit
// //lint:allow walltime marker with a reason, so every wall-clock read
// in a deterministic package is individually justified.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the packages whose outputs must be reproducible
// from seeds. netem is included deliberately: its simulated impairments
// (Gilbert–Elliott, SeqBurst, Conditioner) are sequence-driven and
// deterministic, and its handful of real-time features (Pacer, outage
// epochs, proxy blackouts) are exactly the seams the allowlist is for.
var DefaultPackages = []string{
	"internal/codec",
	"internal/netem",
	"internal/analytic",
	"internal/experiments",
	"internal/queuesim",
	"internal/traffic",
	"internal/stats",
	"internal/wifi",
	"internal/core",
	"internal/energy",
	"internal/evalvid",
	"internal/video",
}

// Analyzer is the walltime pass.
var Analyzer = &lintkit.Analyzer{
	Name:     "walltime",
	Doc:      "forbid wall-clock reads in deterministic model/simulation code; annotate measurement seams with //lint:allow walltime",
	Packages: DefaultPackages,
	Run:      run,
}

var wallFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !wallFuncs[fn.Name()] || !lintkit.IsPkgFunc(fn, "time", fn.Name()) {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in deterministic model code; derive timing from the simulation clock, or annotate a measurement seam with //lint:allow walltime", fn.Name())
			return true
		})
	}
	return nil
}
