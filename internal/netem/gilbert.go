package netem

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// Dropper generalises the loss decision so receivers can plug in any loss
// model: i.i.d. Bernoulli (Filter), bursty two-state (GilbertElliott), or
// a targeted one-shot burst (SeqBurst). seq is the extended 64-bit packet
// sequence, which lets sequence-addressed models hit an exact packet run
// (e.g. "the second I-frame") regardless of arrival timing.
type Dropper interface {
	DropSeq(seq uint64) bool
}

// DropSeq lets the Bernoulli Filter serve as a Dropper; i.i.d. loss is
// indifferent to the sequence number.
func (f *Filter) DropSeq(uint64) bool { return f.Drop() }

// GilbertElliott is the classic two-state bursty-loss channel: a Good
// state with loss probability lossG and a Bad state with loss probability
// lossB, with per-packet transition probabilities pGB (Good→Bad) and pBG
// (Bad→Good). Real WiFi loss is bursty — collisions and fades wipe out
// runs of consecutive packets — which is the regime where losing an
// I-frame burst matters most, unlike the i.i.d. Filter. The stationary
// loss rate is πB·lossB + (1-πB)·lossG with πB = pGB/(pGB+pBG), and with
// lossB=1, lossG=0 the drop-burst length is geometric with mean 1/pBG.
// Safe for concurrent use; deterministic for a fixed seed.
type GilbertElliott struct {
	mu           sync.Mutex
	pGB, pBG     float64
	lossG, lossB float64
	bad          bool
	rng          *stats.RNG

	dropped, passed int
	run             int // length of the in-progress drop burst
	bursts          int // completed drop bursts
	burstTotal      int // packets in completed drop bursts
}

// NewGilbertElliott builds the general four-parameter model. All
// probabilities must lie in [0,1] and the transition probabilities must
// be positive so both states are reachable and left.
func NewGilbertElliott(pGB, pBG, lossG, lossB float64, seed uint64) (*GilbertElliott, error) {
	for _, p := range []float64{pGB, pBG, lossG, lossB} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("netem: Gilbert-Elliott probability %g out of [0,1]", p)
		}
	}
	if pGB <= 0 || pBG <= 0 {
		return nil, fmt.Errorf("netem: Gilbert-Elliott transitions (%g,%g) must be positive", pGB, pBG)
	}
	return &GilbertElliott{pGB: pGB, pBG: pBG, lossG: lossG, lossB: lossB, rng: stats.NewRNG(seed)}, nil
}

// NewBurstyLoss builds the two-parameter Gilbert channel (lossG=0,
// lossB=1) from the quantities an experimenter actually measures: the
// long-run loss rate meanLoss in [0,1) and the mean drop-burst length
// meanBurst ≥ 1 packets.
func NewBurstyLoss(meanLoss, meanBurst float64, seed uint64) (*GilbertElliott, error) {
	if meanLoss < 0 || meanLoss >= 1 {
		return nil, fmt.Errorf("netem: mean loss %g out of [0,1)", meanLoss)
	}
	if meanBurst < 1 {
		return nil, fmt.Errorf("netem: mean burst %g below one packet", meanBurst)
	}
	pBG := 1 / meanBurst
	pGB := pBG * meanLoss / (1 - meanLoss)
	if pGB > 1 {
		return nil, fmt.Errorf("netem: loss %g with burst %g needs pGB > 1", meanLoss, meanBurst)
	}
	if meanLoss == 0 {
		// Degenerate lossless channel: keep pGB positive but the Bad
		// state harmless so the constructor invariants hold.
		return NewGilbertElliott(1e-12, pBG, 0, 0, seed)
	}
	return NewGilbertElliott(pGB, pBG, 0, 1, seed)
}

// Drop advances the channel one packet and reports whether it is lost.
func (g *GilbertElliott) Drop() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Transition first, then sample in the new state: with lossB=1 the
	// dwell time in Bad — and hence the drop-burst length — is geometric
	// with mean 1/pBG.
	if g.bad {
		if g.rng.Bool(g.pBG) {
			g.bad = false
		}
	} else if g.rng.Bool(g.pGB) {
		g.bad = true
	}
	loss := g.lossG
	if g.bad {
		loss = g.lossB
	}
	if g.rng.Bool(loss) {
		g.dropped++
		g.run++
		mDropsGilbert.Inc()
		return true
	}
	g.passed++
	if g.run > 0 {
		g.bursts++
		g.burstTotal += g.run
		mBurstLength.Observe(float64(g.run))
		g.run = 0
	}
	return false
}

// DropSeq implements Dropper; the channel state does not depend on seq.
func (g *GilbertElliott) DropSeq(uint64) bool { return g.Drop() }

// Counts returns how many packets were dropped and passed so far.
func (g *GilbertElliott) Counts() (dropped, passed int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped, g.passed
}

// LossRate returns the empirical loss fraction so far.
func (g *GilbertElliott) LossRate() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dropped+g.passed == 0 {
		return 0
	}
	return float64(g.dropped) / float64(g.dropped+g.passed)
}

// MeanBurstLength returns the mean length of completed drop bursts.
func (g *GilbertElliott) MeanBurstLength() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.bursts == 0 {
		return 0
	}
	return float64(g.burstTotal) / float64(g.bursts)
}

// SeqBurst drops every sequence number in [from, from+count) exactly
// once, letting a test burst-drop a precise packet run (say, one
// I-frame's packets) while retransmissions of those packets pass. Safe
// for concurrent use.
type SeqBurst struct {
	mu       sync.Mutex
	from, to uint64
	seen     map[uint64]bool
}

// NewSeqBurst targets the count packets starting at sequence from.
func NewSeqBurst(from uint64, count int) *SeqBurst {
	if count < 0 {
		count = 0
	}
	return &SeqBurst{from: from, to: from + uint64(count), seen: make(map[uint64]bool)}
}

// DropSeq implements Dropper.
func (b *SeqBurst) DropSeq(seq uint64) bool {
	if seq < b.from || seq >= b.to {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.seen[seq] {
		return false
	}
	b.seen[seq] = true
	mDropsSeqBurst.Inc()
	return true
}

// Dropped returns how many distinct targeted sequences have been dropped.
func (b *SeqBurst) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.seen)
}
