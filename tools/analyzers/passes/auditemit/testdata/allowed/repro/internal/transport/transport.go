// Package transport holds the clean audit shapes: trigger and record
// adjacent in one block (either order), a record on every branch
// ahead, delegation to a module-local helper whose must-emit summary
// covers the kind, a deferred record replayed in the exit block, and
// the explicit allow escape hatch.
package transport

import "repro/internal/ledger"

type ctr struct{}

func (ctr) Inc() {}

var (
	mUploadDowngrades       = ctr{}
	mIngestRejected         = ctr{}
	mIngestSessionsStarted  = ctr{}
	mIngestSessionsFinished = ctr{}
)

func nextEpoch(used uint64) uint64 { return used + 1 }

// sameBlock: the record follows the trigger in the same block.
func sameBlock() {
	mUploadDowngrades.Inc()
	ledger.Emit(ledger.EventDowngrade, "upload", 0, 0, "ladder")
}

// recordFirst: block-level matching is order-insensitive, so writing
// the record before bumping the counter is equally audited.
func recordFirst() {
	ledger.Emit(ledger.EventReject, "ingest", 0, 0, "cap")
	mIngestRejected.Inc()
}

// bothArms: every path from the trigger to the exit writes the record.
func bothArms(fin bool) {
	mIngestSessionsFinished.Inc()
	if fin {
		ledger.Emit(ledger.EventSessionEnd, "ingest", 0, 0, "fin")
	} else {
		ledger.Emit(ledger.EventSessionEnd, "ingest", 0, 0, "timeout")
	}
}

// viaHelper delegates the record to a helper; the bottom-up must-emit
// summary of recordStart credits EventSessionStart here.
func viaHelper(ssrc uint64) {
	mIngestSessionsStarted.Inc()
	recordStart(ssrc)
}

func recordStart(ssrc uint64) {
	ledger.Emit(ledger.EventSessionStart, "ingest", ssrc, 0, "admitted")
}

// epochDeferred relies on a deferred record: the CFG replays deferred
// calls in the exit block, which every path reaches.
func epochDeferred(used uint64) uint64 {
	next := nextEpoch(used)
	defer ledger.Emit(ledger.EventEpoch, "upload", next, 0, "")
	return next
}

// allowedSilent is the escape hatch: the marker names the pass and the
// reason the ledger is off.
func allowedSilent() {
	mUploadDowngrades.Inc() //lint:allow auditemit lab harness measurement run with the ledger disabled
}
