package analytic

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// PH is a (possibly defective) continuous phase-type distribution with an
// atom at zero: with probability Mass0 the variable is exactly 0, otherwise
// it is the absorption time of a CTMC with initial row vector Alpha over the
// transient states and sub-generator S. Mass0 = 1 - sum(Alpha).
//
// Phase-type distributions are closed under mixture and convolution, which
// is exactly what the service time of Eq. (3) needs: T = Te + Tb + Tt where
// Te is a mixture over {I-encrypted, P-encrypted, plaintext}, Tb is zero
// with probability ps and exponential otherwise (Eq. 7), and Tt is a
// mixture over the I/P packet classes.
type PH struct {
	Alpha []float64
	S     *stats.Matrix
	Mass0 float64
}

// Dim returns the number of transient phases.
func (p PH) Dim() int { return len(p.Alpha) }

// Validate checks structural sanity of the representation.
func (p PH) Validate() error {
	if p.S == nil || p.S.Rows != p.S.Cols || p.S.Rows != len(p.Alpha) {
		return fmt.Errorf("analytic: PH shape mismatch")
	}
	sum := p.Mass0
	for _, a := range p.Alpha {
		if a < -1e-12 {
			return fmt.Errorf("analytic: negative initial probability %g", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("analytic: PH initial vector sums to %g, want 1", sum)
	}
	for i := 0; i < p.S.Rows; i++ {
		if p.S.At(i, i) >= 0 {
			return fmt.Errorf("analytic: PH diagonal must be negative at %d", i)
		}
		row := 0.0
		for j := 0; j < p.S.Cols; j++ {
			if i != j && p.S.At(i, j) < -1e-12 {
				return fmt.Errorf("analytic: negative off-diagonal at (%d,%d)", i, j)
			}
			row += p.S.At(i, j)
		}
		if row > 1e-9 {
			return fmt.Errorf("analytic: PH row %d sums to %g > 0", i, row)
		}
	}
	return nil
}

// ExitVector returns s* = -S e, the per-phase absorption rates.
func (p PH) ExitVector() []float64 {
	out := make([]float64, p.Dim())
	for i := 0; i < p.S.Rows; i++ {
		var row float64
		for j := 0; j < p.S.Cols; j++ {
			row += p.S.At(i, j)
		}
		out[i] = -row
	}
	return out
}

// PHExponential returns an exponential distribution with the given rate.
func PHExponential(rate float64) PH {
	if rate <= 0 {
		panic("analytic: PHExponential needs positive rate")
	}
	s := stats.NewMatrix(1, 1)
	s.Set(0, 0, -rate)
	return PH{Alpha: []float64{1}, S: s}
}

// PHErlang returns an Erlang distribution with k stages and the given total
// mean (each stage has rate k/mean).
func PHErlang(k int, mean float64) PH {
	if k <= 0 || mean <= 0 {
		panic("analytic: PHErlang needs k>0 and mean>0")
	}
	rate := float64(k) / mean
	s := stats.NewMatrix(k, k)
	for i := 0; i < k; i++ {
		s.Set(i, i, -rate)
		if i+1 < k {
			s.Set(i, i+1, rate)
		}
	}
	alpha := make([]float64, k)
	alpha[0] = 1
	return PH{Alpha: alpha, S: s}
}

// PHZero returns the distribution that is identically zero.
func PHZero() PH {
	s := stats.NewMatrix(1, 1)
	s.Set(0, 0, -1) // never entered: Alpha is all zero
	return PH{Alpha: []float64{0}, S: s, Mass0: 1}
}

// DefaultMaxErlangOrder bounds the number of stages used when fitting
// (near-)deterministic times. Higher orders match low variance better but
// quadratically inflate the QBD phase space; 32 keeps the relative error of
// a constant's variance representation at ~3% of the squared mean while a
// full queue solve stays well under a second. The trade-off is quantified
// by BenchmarkAblationErlangOrder.
const DefaultMaxErlangOrder = 32

// PHFit2Moment returns a phase-type distribution matching the given mean
// and variance:
//
//   - cv² ≥ 1: a two-phase hyperexponential with balanced means,
//   - 1/maxOrder ≤ cv² < 1: the classic mixed-Erlang fit (Tijms), an
//     Erlang(k-1)/Erlang(k) mixture matching both moments exactly,
//   - cv² < 1/maxOrder (including deterministic): Erlang(maxOrder), which
//     matches the mean exactly and has the smallest representable variance.
//
// maxOrder ≤ 0 selects DefaultMaxErlangOrder.
func PHFit2Moment(mean, variance float64, maxOrder int) PH {
	if mean <= 0 {
		panic("analytic: PHFit2Moment needs positive mean")
	}
	if maxOrder <= 0 {
		maxOrder = DefaultMaxErlangOrder
	}
	cv2 := variance / (mean * mean)
	switch {
	case cv2 >= 1:
		if stats.ApproxEqual(cv2, 1, 1e-9) {
			return PHExponential(1 / mean)
		}
		// Balanced-means H2: p1/mu1 = p2/mu2.
		p1 := 0.5 * (1 + math.Sqrt((cv2-1)/(cv2+1)))
		p2 := 1 - p1
		mu1 := 2 * p1 / mean
		mu2 := 2 * p2 / mean
		s := stats.NewMatrix(2, 2)
		s.Set(0, 0, -mu1)
		s.Set(1, 1, -mu2)
		return PH{Alpha: []float64{p1, p2}, S: s}
	case cv2 <= 1.0/float64(maxOrder):
		return PHErlang(maxOrder, mean)
	default:
		k := int(math.Ceil(1 / cv2))
		if k < 2 {
			k = 2
		}
		if k > maxOrder {
			k = maxOrder
		}
		// Mixture of Erlang(k-1) w.p. p and Erlang(k) w.p. 1-p, common rate.
		fk := float64(k)
		p := (fk*cv2 - math.Sqrt(fk*(1+cv2)-fk*fk*cv2)) / (1 + cv2)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		rate := (fk - p) / mean
		// One chain of k stages; start at stage 1 w.p. p (k-1 stages left)
		// or stage 0 w.p. 1-p (k stages).
		s := stats.NewMatrix(k, k)
		for i := 0; i < k; i++ {
			s.Set(i, i, -rate)
			if i+1 < k {
				s.Set(i, i+1, rate)
			}
		}
		alpha := make([]float64, k)
		alpha[0] = 1 - p
		if k >= 2 {
			alpha[1] = p
		}
		return PH{Alpha: alpha, S: s}
	}
}

// Mixture returns the mixture distribution sum_i weights[i]*comps[i]. The
// weights must be non-negative and sum to 1.
func Mixture(weights []float64, comps []PH) PH {
	if len(weights) != len(comps) || len(comps) == 0 {
		panic("analytic: Mixture needs matching non-empty weights/components")
	}
	var wsum, dim0 float64
	dim := 0
	for i, w := range weights {
		if w < 0 {
			panic("analytic: negative mixture weight")
		}
		wsum += w
		dim += comps[i].Dim()
		dim0 += w * comps[i].Mass0
	}
	if math.Abs(wsum-1) > 1e-9 {
		panic(fmt.Sprintf("analytic: mixture weights sum to %g", wsum))
	}
	alpha := make([]float64, dim)
	s := stats.NewMatrix(dim, dim)
	off := 0
	for i, c := range comps {
		for j, a := range c.Alpha {
			alpha[off+j] = weights[i] * a
		}
		for r := 0; r < c.S.Rows; r++ {
			for cc := 0; cc < c.S.Cols; cc++ {
				s.Set(off+r, off+cc, c.S.At(r, cc))
			}
		}
		off += c.Dim()
	}
	return PH{Alpha: alpha, S: s, Mass0: dim0}
}

// Convolve returns the distribution of the sum of two independent
// phase-type variables.
func Convolve(a, b PH) PH {
	na, nb := a.Dim(), b.Dim()
	dim := na + nb
	alpha := make([]float64, dim)
	for i, v := range a.Alpha {
		alpha[i] = v
	}
	// If a is zero (its atom), start directly in b.
	for j, v := range b.Alpha {
		alpha[na+j] += a.Mass0 * v
	}
	s := stats.NewMatrix(dim, dim)
	for r := 0; r < na; r++ {
		for c := 0; c < na; c++ {
			s.Set(r, c, a.S.At(r, c))
		}
	}
	exitA := a.ExitVector()
	for r := 0; r < na; r++ {
		for c := 0; c < nb; c++ {
			s.Set(r, na+c, exitA[r]*b.Alpha[c])
		}
	}
	for r := 0; r < nb; r++ {
		for c := 0; c < nb; c++ {
			s.Set(na+r, na+c, b.S.At(r, c))
		}
	}
	return PH{Alpha: alpha, S: s, Mass0: a.Mass0 * b.Mass0}
}

// ConvolveAll folds Convolve over the given distributions.
func ConvolveAll(ps ...PH) PH {
	if len(ps) == 0 {
		return PHZero()
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Convolve(out, p)
	}
	return out
}

// Compress removes phases that are unreachable (zero initial probability
// and zero inbound rate), shrinking convolution/mixture results. It is a
// cheap structural pass, not a minimal-order reduction, but it removes the
// dead branches that mixtures with zero weights produce.
func (p PH) Compress() PH {
	n := p.Dim()
	reach := make([]bool, n)
	// Seed with positive initial probabilities, then propagate.
	queue := make([]int, 0, n)
	for i, a := range p.Alpha {
		if a > 0 {
			reach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for j := 0; j < n; j++ {
			if i != j && !reach[j] && p.S.At(i, j) > 0 {
				reach[j] = true
				queue = append(queue, j)
			}
		}
	}
	keep := make([]int, 0, n)
	for i, r := range reach {
		if r {
			keep = append(keep, i)
		}
	}
	if len(keep) == n {
		return p
	}
	if len(keep) == 0 {
		return PHZero()
	}
	alpha := make([]float64, len(keep))
	s := stats.NewMatrix(len(keep), len(keep))
	for r, i := range keep {
		alpha[r] = p.Alpha[i]
		for c, j := range keep {
			s.Set(r, c, p.S.At(i, j))
		}
	}
	return PH{Alpha: alpha, S: s, Mass0: p.Mass0}
}

// Moment returns the k-th raw moment E[T^k] = k! * alpha * (-S)^{-k} * e
// (the atom at zero contributes nothing).
func (p PH) Moment(k int) float64 {
	if k <= 0 {
		panic("analytic: Moment needs k >= 1")
	}
	negS := p.S.Scale(-1)
	inv, err := negS.Inverse()
	if err != nil {
		panic("analytic: PH sub-generator singular: " + err.Error())
	}
	v := make([]float64, p.Dim())
	copy(v, p.Alpha)
	fact := 1.0
	for i := 1; i <= k; i++ {
		v = inv.VecMul(v)
		fact *= float64(i)
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	return fact * sum
}

// Mean returns E[T].
func (p PH) Mean() float64 { return p.Moment(1) }

// Variance returns Var[T].
func (p PH) Variance() float64 {
	m1 := p.Moment(1)
	return p.Moment(2) - m1*m1
}

// LST evaluates the Laplace-Stieltjes transform E[e^{-sT}] at real s ≥ 0:
// Mass0 + alpha (sI - S)^{-1} s*.
func (p PH) LST(s float64) float64 {
	n := p.Dim()
	m := stats.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -p.S.At(i, j)
			if i == j {
				v += s
			}
			m.Set(i, j, v)
		}
	}
	x, err := m.Solve(p.ExitVector())
	if err != nil {
		panic("analytic: LST solve failed: " + err.Error())
	}
	var sum float64
	for i, a := range p.Alpha {
		sum += a * x[i]
	}
	return p.Mass0 + sum
}

// Sample draws one value from the distribution.
func (p PH) Sample(rng *stats.RNG) float64 {
	u := rng.Float64()
	if u < p.Mass0 {
		return 0
	}
	// Choose initial phase.
	u -= p.Mass0
	phase := -1
	for i, a := range p.Alpha {
		if u < a {
			phase = i
			break
		}
		u -= a
	}
	if phase < 0 {
		phase = p.Dim() - 1
	}
	exit := p.ExitVector()
	var t float64
	for {
		rate := -p.S.At(phase, phase)
		t += rng.Exp(rate)
		// Absorb or jump.
		v := rng.Float64() * rate
		if v < exit[phase] {
			return t
		}
		v -= exit[phase]
		next := phase
		for j := 0; j < p.Dim(); j++ {
			if j == phase {
				continue
			}
			r := p.S.At(phase, j)
			if v < r {
				next = j
				break
			}
			v -= r
		}
		phase = next
	}
}
