// Package bitioerr flags discarded error returns in the bitstream and
// packet I/O packages. A dropped error from a container/stream writer
// truncates or corrupts a bitstream with no failing test to show for
// it, and a dropped transport error turns a broken socket into silent
// packet loss the experiment then misattributes to the channel. The
// pass is an errcheck scoped to the packages where a lost error means a
// corrupt artifact: every call whose result set includes an error must
// consume it, assign it, or carry an explicit //lint:allow bitioerr
// (or legacy //nolint:errcheck) marker stating why best-effort is
// correct there.
//
// Deliberately out of scope: deferred calls (the `defer f.Close()`
// idiom on read paths) and `go` statements, which cannot use their
// return values anyway; and hash.Hash.Write, whose API contract
// ("it never returns an error") makes the bare-call idiom in the
// HMAC/HKDF code correct.
package bitioerr

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the packages that produce or move bitstreams.
var DefaultPackages = []string{
	"internal/codec",
	"internal/rtp",
	"internal/transport",
	"internal/vcrypt",
	"internal/netem",
}

// Analyzer is the bitioerr pass.
var Analyzer = &lintkit.Analyzer{
	Name:     "bitioerr",
	Aliases:  []string{"errcheck"},
	Doc:      "flag discarded error returns in bitstream/packet I/O packages; silent write failures corrupt bitstreams",
	Packages: DefaultPackages,
	Run:      run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call)
				}
			case *ast.AssignStmt:
				// `_ = f()` and `_, _ = f()` discard explicitly; they
				// get flagged too so the justification lives in an
				// allow marker a reviewer can audit, not in a blank
				// identifier.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				report(pass, call)
			}
			return true
		})
	}
	return nil
}

// report flags call if its result set includes an error.
func report(pass *lintkit.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	if !resultsIncludeError(tv.Type) {
		return
	}
	if isHashWrite(pass, call) {
		return
	}
	name := calleeName(pass, call)
	pass.Reportf(call.Pos(), "error result of %s discarded; a silent I/O failure corrupts the bitstream — handle it or annotate with //lint:allow bitioerr", name)
}

func resultsIncludeError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isHashWrite reports whether call is hash.Hash.Write (statically
// typed as the hash.Hash interface), which is documented to never
// return an error.
func isHashWrite(pass *lintkit.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	named, ok := selection.Recv().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Hash" && obj.Pkg() != nil && obj.Pkg().Path() == "hash"
}

func calleeName(pass *lintkit.Pass, call *ast.CallExpr) string {
	if fn := lintkit.FuncForCall(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
