// Package transport holds the flagged ownership shapes: leaked pooled
// buffers (on loop back edges, at the exit, and on error paths), double
// Put, use after Put, retains without a reason, and the same defects
// reached through module-local wrappers via the bottom-up summaries.
package transport

import (
	"errors"

	"repro/internal/codec"
)

// leakLoop never releases its packets: every iteration re-binds pkt
// while the previous one still owns its buffer, and the last binding
// reaches the function exit owned.
func leakLoop(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	for i := range wps {
		pkt := &wps[i] // want `re-bound while a previous packet may still own` `may reach the function exit still owning`
		_ = pkt.Payload
	}
}

// leakOnErrorPath releases on the happy path only: the early return
// abandons the packet bound in the current iteration.
func leakOnErrorPath(ef *codec.EncodedFrame, pool *codec.BufPool) error {
	wps, err := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	if err != nil {
		return err
	}
	for i := range wps {
		pkt := &wps[i] // want `may reach the function exit still owning`
		if len(pkt.Payload) == 0 {
			return errors.New("transport: empty payload")
		}
		pool.Put(pkt)
	}
	return nil
}

// doublePut releases the same packet twice.
func doublePut(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	pool.Put(pkt)
	pool.Put(pkt) // want `double Put of packet pkt`
}

// useAfterPut touches the payload after the buffer may have been
// recycled by another goroutine's Get.
func useAfterPut(ef *codec.EncodedFrame, pool *codec.BufPool) int {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	pool.Put(pkt)
	return len(pkt.Payload) // want `use of packet pkt after BufPool\.Put`
}

// retainNoReason keeps the buffer out of the pool without saying why.
func retainNoReason(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	pkt.Retain() // want `Retain without a //lint:retain\(reason\) annotation`
}

// retainAfterPut tries to revive a packet some path already released.
func retainAfterPut(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	pool.Put(pkt)
	//lint:retain(too late: the pool may already have recycled the buffer)
	pkt.Retain() // want `Retain of packet pkt after BufPool\.Put`
}

// borrowDoesNotRelease passes the packet to a helper that only reads
// it: the bottom-up summary of inspect consumes nothing, so ownership
// stays here and leaks.
func borrowDoesNotRelease(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0] // want `may reach the function exit still owning`
	inspect(pkt)
}

func inspect(wp *codec.WirePacket) { _ = wp.Payload }

// wrappedAcquire leaks packets acquired through a wrapper: the
// returns-owned summary of mkPackets marks wps as a pooled source.
func wrappedAcquire(ef *codec.EncodedFrame, pool *codec.BufPool) {
	wps, _ := mkPackets(ef, pool)
	pkt := &wps[0] // want `may reach the function exit still owning`
	_ = pkt.Payload
}

func mkPackets(ef *codec.EncodedFrame, pool *codec.BufPool) ([]codec.WirePacket, error) {
	return codec.PacketizeInto(ef, 1200, 0, pool, nil)
}

// helperConsumesThenUse hands the packet to a consuming helper — the
// summary of release marks its second parameter consumed — and then
// touches the recycled buffer.
func helperConsumesThenUse(ef *codec.EncodedFrame, pool *codec.BufPool) int {
	wps, _ := codec.PacketizeInto(ef, 1200, 0, pool, nil)
	pkt := &wps[0]
	release(pool, pkt)
	return len(pkt.Payload) // want `use of packet pkt after BufPool\.Put`
}

func release(pool *codec.BufPool, wp *codec.WirePacket) { pool.Put(wp) }
