package transport

import (
	"math"
	"testing"

	"repro/internal/audio"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// Muxing an always-encrypted audio track must blind the eavesdropper on
// audio while barely moving the delay and power needles — the paper's
// Section 3 expectation made measurable.
func TestAudioMuxEncryptedCheaply(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	s.Medium.ReceiverError = 0
	noAudio, err := RunUDP(s, 11)
	if err != nil {
		t.Fatal(err)
	}

	s2, _ := testSession(t, video.MotionLow, pol)
	s2.Medium.ReceiverError = 0
	dur := float64(len(s2.Encoded)) / s2.FPS
	track := audio.Generate(8000, dur, 3)
	s2.Audio = track
	withAudio, err := RunUDP(s2, 11)
	if err != nil {
		t.Fatal(err)
	}

	// Audio packets present and always encrypted.
	var audioPkts, audioEnc int
	for _, r := range withAudio.Records {
		if r.Audio {
			audioPkts++
			if r.Encrypted {
				audioEnc++
			}
		}
	}
	wantFrames := int(dur/audio.FrameDuration + 0.5)
	if audioPkts != wantFrames {
		t.Fatalf("audio packets %d want %d", audioPkts, wantFrames)
	}
	if audioEnc != audioPkts {
		t.Fatal("audio must always be encrypted under an encrypting policy")
	}

	// Receiver reconstructs the track with solid SNR.
	rx, err := audio.Decode(withAudio.ReceiverAudio, track.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	snr, err := audio.SNR(track, rx)
	if err != nil {
		t.Fatal(err)
	}
	if snr < 15 {
		t.Fatalf("receiver audio SNR %.1f dB", snr)
	}

	// The eavesdropper gets only silence (every frame encrypted).
	for _, f := range withAudio.EavesAudio {
		if f.Data != nil {
			t.Fatal("eavesdropper captured usable audio")
		}
	}

	// And the cost of carrying the audio is marginal for the video: the
	// video packets' own delay moves by under 15%, power by under 10%.
	// (The overall per-packet mean shifts more simply because the small
	// audio packets carry the per-packet cipher overhead themselves.)
	videoSojourn := func(res *Result) float64 {
		var sum float64
		n := 0
		for _, r := range res.Records {
			if !r.Audio {
				sum += r.Sojourn()
				n++
			}
		}
		return sum / float64(n)
	}
	before, after := videoSojourn(noAudio), videoSojourn(withAudio)
	if after > before*1.15 {
		t.Fatalf("audio raised video delay %.3f -> %.3f ms", before*1e3, after*1e3)
	}
	if withAudio.AveragePowerW > noAudio.AveragePowerW*1.10 {
		t.Fatalf("audio raised power %.2f -> %.2f W", noAudio.AveragePowerW, withAudio.AveragePowerW)
	}
}

func TestAudioMuxPlaintextPolicy(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	s.Medium.ReceiverError = 0
	s.Medium.EavesdropperError = 0
	dur := float64(len(s.Encoded)) / s.FPS
	track := audio.Generate(8000, dur, 5)
	s.Audio = track
	res, err := RunUDP(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Under "none" nothing is encrypted, so the eavesdropper hears the
	// audio too.
	ev, err := audio.Decode(res.EavesAudio, track.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	snr, err := audio.SNR(track, ev)
	if err != nil {
		t.Fatal(err)
	}
	if snr < 15 || math.IsInf(snr, -1) {
		t.Fatalf("plaintext eavesdropper audio SNR %.1f dB", snr)
	}
}
