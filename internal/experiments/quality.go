package experiments

import (
	"fmt"

	"repro/internal/evalvid"
	"repro/internal/video"
)

// evalQuality wraps evalvid.Evaluate into the harness's compact pair.
func evalQuality(orig, recon []*video.Frame) (qualityPair, error) {
	q, err := evalvid.Evaluate(orig, recon)
	if err != nil {
		return qualityPair{}, err
	}
	return qualityPair{psnr: q.PSNR, mos: q.MOS}, nil
}

// ms renders seconds as milliseconds with two decimals.
func ms(seconds float64) string { return fmt.Sprintf("%.2f", seconds*1e3) }

// msCI renders a mean +/- CI pair in milliseconds.
func msCI(mean, ci float64) string {
	return fmt.Sprintf("%.2f±%.2f", mean*1e3, ci*1e3)
}

// dbCI renders a dB mean +/- CI pair.
func dbCI(mean, ci float64) string {
	return fmt.Sprintf("%.2f±%.2f", mean, ci)
}

// f2 renders a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
