package transport

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// A resume storm across tenants: several concurrent resumable uploads,
// each under its own session ID, share one flaky uplink that severs a
// connection mid-transfer and then blacks the link out, killing every
// in-flight body. Every tenant must still land its complete clip in its
// own session, the obs counters must match the uploaders' own reports,
// and nothing may leak once the dust settles. Run under -race this also
// exercises the per-session serialization against real retry traffic.
func TestChaosMultiSessionResumeStorm(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionMedium, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(segs))
	var totalBytes int
	for _, seg := range segs {
		totalBytes += segmentHeaderSize + len(seg.payload)
	}
	proxy, err := netem.NewFlakyProxy(hs.Listener.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// One clip's worth of upstream bytes into the storm, some tenant's
	// connection dies and the blackout kills everyone else mid-body.
	proxy.SetBlackout(100 * time.Millisecond)
	proxy.SetCutAfter(int64(totalBytes))

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	attempts0 := mUploadAttempts.Value()
	resumes0 := mUploadResumes.Value()
	srvSegs0 := mServerSegments.Value()
	srvDups0 := mServerDuplicates.Value()
	baseGoroutines := runtime.NumGoroutine()

	const tenants = 8
	reps := make([]ResumeReport, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			si := s
			si.SessionID = fmt.Sprintf("tenant-%d", i)
			rp := RetryPolicy{
				MaxAttempts:    12,
				BaseBackoff:    20 * time.Millisecond,
				MaxBackoff:     120 * time.Millisecond,
				AttemptTimeout: 5 * time.Second,
				Seed:           uint64(100 + i),
			}
			reps[i], errs[i] = ResumableHTTPUpload(si, "http://"+proxy.Addr(), nil, rp, nil)
		}(i)
	}
	wg.Wait()

	var attempts, resumes int
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("tenant %d did not survive the storm: %v (report %+v)", i, errs[i], reps[i])
		}
		attempts += reps[i].Attempts
		resumes += reps[i].Resumes
	}
	if attempts <= tenants {
		t.Fatalf("the cut severed nobody: %d attempts across %d tenants", attempts, tenants)
	}
	if resumes == 0 {
		t.Fatal("no tenant resumed from a partial upload")
	}

	// Every tenant's clip landed whole, in its own session.
	ref, err := codec.DecodeSequence(s.Encoded, s.Config)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		if got := srv.SessionNextSeq(id); got != n {
			t.Fatalf("session %s next %d, want %d", id, got, n)
		}
		frames, err := codec.DecodeSequence(srv.SessionFrames(id, len(s.Encoded)), s.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !framesEqual(frames, ref) {
			t.Fatalf("session %s clip differs from the reference", id)
		}
	}
	if got := srv.NextSeq(); got != 0 {
		t.Fatalf("default session advanced to %d on tenant traffic", got)
	}
	if got := len(srv.Sessions()); got != tenants {
		t.Fatalf("server lists %d sessions, want %d", got, tenants)
	}

	// Exported metrics agree with the uploaders' reports and with the
	// per-session bookkeeping.
	if a := mUploadAttempts.Value() - attempts0; a != int64(attempts) {
		t.Fatalf("obs counted %d attempts, reports sum to %d", a, attempts)
	}
	if r := mUploadResumes.Value() - resumes0; r != int64(resumes) {
		t.Fatalf("obs counted %d resumes, reports sum to %d", r, resumes)
	}
	var sumSegs, sumDups int
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		sumSegs += srv.SessionSegments(id)
		sumDups += srv.SessionDuplicates(id)
	}
	if got := mServerSegments.Value() - srvSegs0; got != int64(sumSegs) {
		t.Fatalf("obs counted %d server segments, sessions sum to %d", got, sumSegs)
	}
	if got := mServerDuplicates.Value() - srvDups0; got != int64(sumDups) {
		t.Fatalf("obs counted %d server duplicates, sessions sum to %d", got, sumDups)
	}

	// No goroutine may outlive the storm once idle keep-alive
	// connections (and with them the proxy's relay workers) are torn
	// down.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	waitFor(t, 3*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+3
	}, "storm goroutines to exit")
}
