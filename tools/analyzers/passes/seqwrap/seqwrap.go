// Package seqwrap bans raw ordering arithmetic on wrapping sequence
// counters. A uint16 RTP sequence number or uint32 epoch counter wraps,
// so `a < b` and `a - b` silently invert meaning every 2^16 (or 2^32)
// packets — exactly the PR 7 bug, where a reordered pre-wrap straggler
// extended into the wrong epoch and decrypted with the wrong IV. All
// ordering and distance math on these counters must go through the
// wrap-safe helpers in internal/transport/seqext.go (RFC 3711 §3.3.1
// nearest-epoch extension); this pass catches the raw forms at analysis
// time, everywhere but inside the sanctioned helper file itself.
// Equality tests are exempt: == and != are wrap-clean.
package seqwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/tools/analyzers/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "seqwrap",
	Doc: "raw uint16/uint32 sequence or epoch values must not be ordered " +
		"or subtracted outside seqext.go's wrap-safe helpers",
	Run: run,
}

// sanctionedFile is the one place raw wrap arithmetic is the point:
// the extension helpers themselves.
const sanctionedFile = "seqext.go"

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if name == sanctionedFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
					if off := seqOperand(pass.TypesInfo, n.X, n.Y); off != nil {
						pass.Reportf(n.OpPos, "raw ordering comparison on wrapping counter %s — use the wrap-safe seqext helpers", off.name)
					}
				case token.SUB:
					if off := seqOperand(pass.TypesInfo, n.X, n.Y); off != nil {
						pass.Reportf(n.OpPos, "raw subtraction on wrapping counter %s wraps every 2^%d — use the wrap-safe seqext helpers", off.name, off.bits)
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.SUB_ASSIGN {
					if off := seqOperand(pass.TypesInfo, n.Lhs[0], n.Rhs[0]); off != nil {
						pass.Reportf(n.TokPos, "raw subtraction on wrapping counter %s wraps every 2^%d — use the wrap-safe seqext helpers", off.name, off.bits)
					}
				}
			}
			return true
		})
	}
	return nil
}

type offender struct {
	name string
	bits int
}

// seqOperand returns the first operand that is a narrow wrapping
// counter: an identifier or field selection of underlying uint16 or
// uint32 whose name mentions seq or epoch.
func seqOperand(info *types.Info, exprs ...ast.Expr) *offender {
	for _, e := range exprs {
		if o := classify(info, e); o != nil {
			return o
		}
	}
	return nil
}

func classify(info *types.Info, e ast.Expr) *offender {
	e = ast.Unparen(e)
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return nil
	}
	lower := strings.ToLower(name)
	if !strings.Contains(lower, "seq") && !strings.Contains(lower, "epoch") {
		return nil
	}
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	switch b.Kind() {
	case types.Uint16:
		return &offender{name: name, bits: 16}
	case types.Uint32:
		return &offender{name: name, bits: 32}
	}
	return nil
}
