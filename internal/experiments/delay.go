package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// SamsungDevice and HTCDevice name the two testbed profiles.
func SamsungDevice() energy.Profile { return energy.SamsungGalaxySII() }

// HTCDevice returns the HTC Amaze 4G profile.
func HTCDevice() energy.Profile { return energy.HTCAmaze4G() }

// delayAlgorithms are the two algorithms the paper plots (AES128 behaves
// like AES256 and is relegated to the tech report).
var delayAlgorithms = []vcrypt.Algorithm{vcrypt.AES256, vcrypt.TripleDES}

// DelayResult is one bar of Figs. 7/8 (or 12/13).
type DelayResult struct {
	Alg           vcrypt.Algorithm
	GOP           int
	Motion        video.MotionLevel
	Level         vcrypt.Mode
	AnalysisDelay float64 // seconds (mean per-packet sojourn)
	ExpDelay      stats.Summary
}

// RunDelay produces the per-packet delay comparison for one device:
// algorithm x GOP x motion x level, analysis vs experiment. With tcp=true
// it produces the HTTP/TCP variants (Figs. 12/13), for which the paper
// shows experiment only. Cells run concurrently on the fixture's worker
// budget and land at their grid index, so the result order (and every
// number in it) matches the serial nested loops exactly.
func RunDelay(f *Fixture, device energy.Profile, tcp bool) ([]DelayResult, error) {
	motions := []video.MotionLevel{video.MotionLow, video.MotionHigh}
	gops := []int{30, 50}
	if err := f.PrefetchWorkloads(motions, gops); err != nil {
		return nil, err
	}
	type cellSpec struct {
		alg    vcrypt.Algorithm
		gop    int
		motion video.MotionLevel
		level  vcrypt.Mode
	}
	var specs []cellSpec
	for _, alg := range delayAlgorithms {
		for _, gop := range gops {
			for _, motion := range motions {
				for _, level := range levelOrder {
					specs = append(specs, cellSpec{alg, gop, motion, level})
				}
			}
		}
	}
	out := make([]DelayResult, len(specs))
	err := parallelFor(f.workers(), len(specs), func(i int) error {
		sp := specs[i]
		w, err := f.Workload(sp.motion, sp.gop)
		if err != nil {
			return err
		}
		cal, err := f.Calibrate(w, device)
		if err != nil {
			return err
		}
		pol := vcrypt.Policy{Mode: sp.level, Alg: sp.alg}
		pred, err := cal.Predict(pol)
		if err != nil {
			return err
		}
		cell, err := f.runCell(w, pol, device, tcp, false)
		if err != nil {
			return err
		}
		out[i] = DelayResult{
			Alg: sp.alg, GOP: sp.gop, Motion: sp.motion, Level: sp.level,
			AnalysisDelay: pred.MeanSojourn,
			ExpDelay:      cell.Delay,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func delayTable(title string, res []DelayResult, withAnalysis bool) *Table {
	cols := []string{"alg", "GOP", "motion", "level", "exp delay(ms)"}
	if withAnalysis {
		cols = append(cols, "analysis delay(ms)")
	}
	t := &Table{Title: title, Columns: cols}
	for _, r := range res {
		row := []string{
			r.Alg.String(), fmt.Sprintf("%d", r.GOP), r.Motion.String(), r.Level.String(),
			msCI(r.ExpDelay.Mean, r.ExpDelay.CI95),
		}
		if withAnalysis {
			row = append(row, ms(r.AnalysisDelay))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"delay(I) stays near delay(none); delay(P) approaches delay(all); 3DES costs more than AES (Section 6.2)")
	return t
}

// Fig7 is the Samsung delay comparison over RTP/UDP.
func Fig7(f *Fixture) (*Table, error) {
	res, err := RunDelay(f, SamsungDevice(), false)
	if err != nil {
		return nil, err
	}
	return delayTable("Fig 7: Per-packet delay, analysis vs experiment (Samsung S-II, RTP/UDP)", res, true), nil
}

// Fig8 is the HTC delay comparison over RTP/UDP.
func Fig8(f *Fixture) (*Table, error) {
	res, err := RunDelay(f, HTCDevice(), false)
	if err != nil {
		return nil, err
	}
	return delayTable("Fig 8: Per-packet delay, analysis vs experiment (HTC Amaze 4G, RTP/UDP)", res, true), nil
}

// Fig12 is the Samsung HTTP/TCP delay figure.
func Fig12(f *Fixture) (*Table, error) {
	res, err := RunDelay(f, SamsungDevice(), true)
	if err != nil {
		return nil, err
	}
	return delayTable("Fig 12: Per-packet delay with HTTP/TCP (Samsung S-II)", res, false), nil
}

// Fig13 is the HTC HTTP/TCP delay figure.
func Fig13(f *Fixture) (*Table, error) {
	res, err := RunDelay(f, HTCDevice(), true)
	if err != nil {
		return nil, err
	}
	return delayTable("Fig 13: Per-packet delay with HTTP/TCP (HTC Amaze 4G)", res, false), nil
}

// fracPSweep is the x-axis of Fig. 9a / Table 2.
var fracPSweep = []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.50}

// Fig9 sweeps the fraction of P-frame packets encrypted on top of all
// I-frame packets, for each algorithm and device, on the fast-motion clip
// (the finer-control policy of Section 6.2).
func Fig9(f *Fixture) (*Table, error) {
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 9a: Upload latency vs fraction of P-frame packets encrypted (fast motion, GOP=30)",
		Columns: []string{"device", "alg", "%P", "exp delay(ms)"},
	}
	type cellSpec struct {
		device energy.Profile
		alg    vcrypt.Algorithm
		frac   float64
	}
	var specs []cellSpec
	for _, device := range []energy.Profile{HTCDevice(), SamsungDevice()} {
		for _, alg := range []vcrypt.Algorithm{vcrypt.AES128, vcrypt.AES256, vcrypt.TripleDES} {
			for _, frac := range fracPSweep {
				specs = append(specs, cellSpec{device, alg, frac})
			}
		}
	}
	rows := make([][]string, len(specs))
	err = parallelFor(f.workers(), len(specs), func(i int) error {
		sp := specs[i]
		pol := vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: sp.frac, Alg: sp.alg}
		cell, err := f.runCell(w, pol, sp.device, false, false)
		if err != nil {
			return err
		}
		rows[i] = []string{
			sp.device.Name, sp.alg.String(), fmt.Sprintf("%d", int(sp.frac*100+0.5)),
			msCI(cell.Delay.Mean, cell.Delay.CI95),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "latency grows mildly with the encrypted P fraction; 20% suffices for obfuscation (Table 2)")
	return t, nil
}

// Table2 reproduces the delay/PSNR/MOS trade-off of the mixed policy on
// the Samsung device with AES-256 and the fast-motion clip.
func Table2(f *Fixture) (*Table, error) {
	w, err := f.Workload(video.MotionHigh, 30)
	if err != nil {
		return nil, err
	}
	device := SamsungDevice()
	t := &Table{
		Title:   "Table 2: Delay vs distortion for I + alpha*P encryption (Samsung S-II, AES256, fast motion)",
		Columns: []string{"policy", "delay(ms)", "PSNR(dB)", "MOS"},
	}
	policies := []vcrypt.Policy{{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}}
	for _, frac := range fracPSweep {
		policies = append(policies, vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: frac, Alg: vcrypt.AES256})
	}
	rows := make([][]string, len(policies))
	err = parallelFor(f.workers(), len(policies), func(i int) error {
		pol := policies[i]
		cell, err := f.runCell(w, pol, device, false, false)
		if err != nil {
			return err
		}
		label := "I"
		if pol.Mode == vcrypt.ModeIPlusFracP {
			label = fmt.Sprintf("I+%d%% P", int(pol.FracP*100+0.5))
		}
		rows[i] = []string{
			label,
			msCI(cell.Delay.Mean, cell.Delay.CI95),
			dbCI(cell.PSNR.Mean, cell.PSNR.CI95),
			f2(cell.MOS.Mean),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "PSNR and MOS at the eavesdropper sit at the floor once the I-frames plus any P fraction are encrypted")
	return t, nil
}
