package main

import "net"

// netListen opens an ephemeral loopback TCP listener for the demo server.
func netListen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
