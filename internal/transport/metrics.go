package transport

import (
	"repro/internal/obs"
)

// Observability wiring (PR3). Every call is gated inside obs on one
// atomic load, so the per-packet and per-segment paths pay nothing
// measurable while metrics are disabled and only atomic adds while
// they are enabled. The counters deliberately mirror the fields of
// ResumeReport / LiveSendReport / LiveReceiver.Stats so chaos tests
// can cross-check the exported values against local bookkeeping.
var (
	// Resumable HTTP upload (resume.go).
	mUploadAttempts = obs.NewCounter("transport_upload_attempts_total",
		"Upload POST attempts issued (including the first).")
	mUploadResumes = obs.NewCounter("transport_upload_resumes_total",
		"Attempts that resumed from a non-zero server offset.")
	mUploadDowngrades = obs.NewCounter(`transport_upload_degradations_total{kind="policy"}`,
		"Deadline-driven degradations, by rung of the ladder.")
	mUploadRestarts = obs.NewCounter(`transport_upload_degradations_total{kind="reencode"}`,
		"Deadline-driven degradations, by rung of the ladder.")
	mUploadBackoffSeconds = obs.NewFloatCounter("transport_upload_backoff_seconds_total",
		"Time spent sleeping between upload attempts.")
	mUploadAttemptSeconds = obs.NewHistogram("transport_upload_attempt_seconds",
		"Wall time of one upload attempt (stream start to verdict).", nil)
	mSegmentsSent = obs.NewCounter("transport_segments_sent_total",
		"Framed segments that entered the transport (retransmits included).")
	mSegmentBytesSent = obs.NewCounter("transport_segment_bytes_sent_total",
		"Bytes of framed segments that entered the transport.")
	mSegmentsEncrypted = obs.NewCounter("transport_segments_encrypted_total",
		"Sent segments whose payload was (partly) encrypted.")

	// Upload server (live_http.go).
	mServerSegments = obs.NewCounter("transport_server_segments_total",
		"Segments received by the upload server (duplicates included).")
	mServerDuplicates = obs.NewCounter("transport_server_duplicate_segments_total",
		"Already-acknowledged segments received again after a resume overshoot.")

	// Live UDP sender (live_udp.go).
	mUDPPacketsSent = obs.NewCounter("transport_udp_packets_sent_total",
		"RTP packets handed to the sender socket (first transmissions).")
	mUDPBytesSent = obs.NewCounter("transport_udp_bytes_sent_total",
		"RTP bytes handed to the sender socket (first transmissions).")
	mUDPEncrypted = obs.NewCounter("transport_udp_packets_encrypted_total",
		"Sent RTP packets whose payload was (partly) encrypted.")
	mNACKRetransmits = obs.NewCounter("transport_nack_retransmits_total",
		"I-frame packets retransmitted in answer to receiver NACKs.")

	// Live UDP receiver (live_udp.go).
	mRxCaptured = obs.NewCounter("transport_rx_packets_captured_total",
		"Packets captured after the loss filter, first deliveries only.")
	mRxUsable = obs.NewCounter("transport_rx_packets_usable_total",
		"Captured packets that decrypted and reassembled cleanly.")
	mRxDuplicates = obs.NewCounter("transport_rx_duplicate_packets_total",
		"Arrivals discarded because their sequence was already delivered.")
	mNACKsRequested = obs.NewCounter("transport_nacks_requested_total",
		"Missing sequences requested across all NACK datagrams.")
	mNACKRecoverySeconds = obs.NewHistogram("transport_nack_recovery_seconds",
		"Delay from a sequence's first NACK to its eventual arrival.", nil)

	// Multi-tenant UDP ingest (ingest.go).
	mIngestPackets = obs.NewCounter("transport_ingest_packets_total",
		"RTP packets accepted by the ingest server, first deliveries only.")
	mIngestBytes = obs.NewCounter("transport_ingest_bytes_total",
		"Payload bytes of first-delivery packets accepted by the ingest server.")
	mIngestUsable = obs.NewCounter("transport_ingest_packets_usable_total",
		"Accepted packets that decrypted and reassembled cleanly.")
	mIngestDuplicates = obs.NewCounter("transport_ingest_duplicate_packets_total",
		"Arrivals discarded because their session already delivered that sequence.")
	mIngestThrottled = obs.NewCounter("transport_ingest_throttled_packets_total",
		"Arrivals discarded by a session's token-bucket rate limiter.")
	mIngestRejected = obs.NewCounter("transport_ingest_rejected_packets_total",
		"Arrivals refused by admission control (session cap reached).")
	mIngestBadPackets = obs.NewCounter("transport_ingest_bad_packets_total",
		"Datagrams that parsed as neither RTP nor a control message.")
	mIngestSessionsStarted = obs.NewCounter("transport_ingest_sessions_started_total",
		"Sessions admitted by the ingest server.")
	mIngestSessionsFinished = obs.NewCounter("transport_ingest_sessions_finished_total",
		"Sessions closed by a client FIN.")
	mIngestSessionsEvicted = obs.NewCounter("transport_ingest_sessions_evicted_total",
		"Sessions evicted by the idle sweeper.")
	mIngestSessionsActive = obs.NewGauge("transport_ingest_sessions_active",
		"Sessions currently resident in the shard maps.")
	mIngestSessionSeconds = obs.NewHistogram("transport_ingest_session_seconds",
		"Lifetime of a finished session, first arrival to FIN/eviction.", nil)

	// Load generator (loadgen.go).
	mLoadgenSessionSeconds = obs.NewHistogram("transport_loadgen_session_seconds",
		"Client-side session completion latency, dial to final packet.", nil)
	mLoadgenGoodputBps = obs.NewGauge("transport_loadgen_goodput_bytes_per_second",
		"Server-side payload goodput measured over the last loadgen run.")
)
