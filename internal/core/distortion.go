package core

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/stats"
	"repro/internal/video"
)

// DistortionCalibration bundles the content-dependent inputs of the
// Section 4.3 model: the intra-GOP ramp endpoints (Eq. 21), the inter-GOP
// distortion-vs-distance polynomial (Fig. 2), the decoder sensitivities,
// and the coding-noise floor.
type DistortionCalibration struct {
	Motion      video.MotionLevel
	DMin, DMax  float64
	InterGOP    stats.Polynomial
	MaxDistance int
	BaseMSE     float64
	// NoReferenceMSE is the grey-concealment distortion of Case 3.
	NoReferenceMSE float64
	SI, SP         int
}

// Validate checks the calibration.
func (d DistortionCalibration) Validate() error {
	if d.DMax < d.DMin || d.DMin < 0 {
		return fmt.Errorf("core: bad intra ramp [%g, %g]", d.DMin, d.DMax)
	}
	if len(d.InterGOP.Coeffs) == 0 || d.MaxDistance < 1 {
		return fmt.Errorf("core: missing inter-GOP fit")
	}
	if d.SI < 0 || d.SP < 0 {
		return fmt.Errorf("core: negative sensitivity")
	}
	return nil
}

// MeasureDistortion performs the paper's offline distortion calibration
// (Section 4.3.2) on the codec substrate: it encodes the clip, injects
// controlled frame and packet losses, measures the resulting MSE with the
// quality toolkit, and fits the inter-GOP polynomial — the experiment that
// produces Fig. 2, packaged as a reusable calibration step.
func MeasureDistortion(clip []*video.Frame, cfg codec.Config, mtu int) (DistortionCalibration, error) {
	if len(clip) < 2*cfg.GOPSize {
		return DistortionCalibration{}, fmt.Errorf("core: clip of %d frames too short for GOP %d calibration", len(clip), cfg.GOPSize)
	}
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		return DistortionCalibration{}, err
	}
	clean, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		return DistortionCalibration{}, err
	}
	out := DistortionCalibration{Motion: video.AnalyzeMotion(clip), MaxDistance: 4}
	out.BaseMSE = video.SequenceMSE(clip, clean)
	// Case 3 ceiling: what a party that never decodes anything shows.
	grey := video.NewFrame(cfg.Width, cfg.Height)
	for i := range grey.Y {
		grey.Y[i] = 128
	}
	for _, fr := range clip {
		out.NoReferenceMSE += video.MSE(fr, grey)
	}
	out.NoReferenceMSE /= float64(len(clip))

	g := cfg.GOPSize
	numGOPs := len(clip) / g
	if numGOPs < 2 {
		return DistortionCalibration{}, fmt.Errorf("core: need at least 2 full GOPs")
	}

	// gopMSE measures the mean MSE of one GOP of a damaged decode against
	// the ORIGINAL clip (what the viewer compares against).
	gopMSE := func(decoded []*video.Frame, gop int) float64 {
		lo, hi := gop*g, (gop+1)*g
		if hi > len(clip) {
			hi = len(clip)
		}
		return video.SequenceMSE(clip[lo:hi], decoded[lo:hi])
	}
	damage := func(drop map[int]bool) ([]*video.Frame, error) {
		frames := make([]*codec.EncodedFrame, len(encoded))
		for i, ef := range encoded {
			if drop[i] {
				frames[i] = nil
			} else {
				frames[i] = ef
			}
		}
		return codec.DecodeSequence(frames, cfg)
	}

	// Intra-GOP endpoints, measured under the model's own semantics
	// (Section 4.3.2): when the i-th frame is the first loss, frame i and
	// every successor in the GOP are replaced by frame i-1. Losing only
	// the LAST P-frame gives the per-GOP minimum (Eq. 21: avg = dmin/G);
	// freezing the GOP right after its I-frame gives ~dmax.
	var dminSamples, dmaxSamples []float64
	for gop := 1; gop < numGOPs && gop <= 4; gop++ {
		lastP := gop*g + g - 1
		if lastP >= len(clip) {
			break
		}
		dLast, err := damage(map[int]bool{lastP: true})
		if err != nil {
			return DistortionCalibration{}, err
		}
		dminSamples = append(dminSamples, float64(g)*(gopMSE(dLast, gop)-out.BaseMSE))
		freeze := map[int]bool{}
		for fi := gop*g + 1; fi < (gop+1)*g && fi < len(clip); fi++ {
			freeze[fi] = true
		}
		dFirst, err := damage(freeze)
		if err != nil {
			return DistortionCalibration{}, err
		}
		dmaxSamples = append(dmaxSamples, gopMSE(dFirst, gop)-out.BaseMSE)
	}
	out.DMin = clampNonNeg(stats.Mean(dminSamples))
	out.DMax = clampNonNeg(stats.Mean(dmaxSamples))
	if out.DMax < out.DMin {
		out.DMax = out.DMin
	}

	// Inter-GOP distortion vs reference distance: drop the I-frames (and
	// with them the whole prediction chain) of d consecutive GOPs and
	// measure the distortion of the GOP at distance d from the last good
	// frame. Each distance contributes one point per feasible anchor.
	var xs, ys []float64
	distinct := map[int]bool{}
	maxD := out.MaxDistance
	if maxD > numGOPs-1 {
		maxD = numGOPs - 1
	}
	for d := 1; d <= maxD; d++ {
		for anchor := 1; anchor+d <= numGOPs; anchor++ {
			drop := map[int]bool{}
			// Losing the I-frame makes the decoder conceal it and every
			// following P-frame decodes against stale data; to mirror the
			// paper's model (the GOP is unrecoverable) drop the whole
			// GOP's frames for the d concealed GOPs.
			for k := 0; k < d; k++ {
				for f := (anchor + k) * g; f < (anchor+k+1)*g && f < len(clip); f++ {
					drop[f] = true
				}
			}
			dec, err := damage(drop)
			if err != nil {
				return DistortionCalibration{}, err
			}
			target := anchor + d - 1
			xs = append(xs, float64(d))
			ys = append(ys, clampNonNeg(gopMSE(dec, target)-out.BaseMSE))
			distinct[d] = true
			if len(xs) >= 24 {
				break
			}
		}
	}
	if len(distinct) < 2 {
		return DistortionCalibration{}, fmt.Errorf("core: not enough GOPs for the inter-GOP fit")
	}
	degree := 5
	if degree > len(distinct)-1 {
		degree = len(distinct) - 1
	}
	poly, err := stats.PolyFit(xs, ys, degree)
	if err != nil {
		return DistortionCalibration{}, err
	}
	out.InterGOP = poly
	out.MaxDistance = maxD

	// Decoder sensitivities: how many of the remaining n-1 packets of a
	// frame must be usable before the frame is "decodable" in the model's
	// sense (reconstruction within 3x the coding noise, floor 40).
	si, err := measureSensitivity(clip, encoded, cfg, mtu, codec.IFrame, out.BaseMSE)
	if err != nil {
		return DistortionCalibration{}, err
	}
	sp, err := measureSensitivity(clip, encoded, cfg, mtu, codec.PFrame, out.BaseMSE)
	if err != nil {
		return DistortionCalibration{}, err
	}
	out.SI, out.SP = si, sp
	return out, nil
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// measureSensitivity finds the smallest number of usable non-first slices
// that still reconstructs a frame of the class acceptably.
func measureSensitivity(clip []*video.Frame, encoded []*codec.EncodedFrame, cfg codec.Config, mtu int, class codec.FrameType, baseMSE float64) (int, error) {
	// Pick the first frame of the class beyond the stream start.
	idx := -1
	for i, ef := range encoded {
		if ef.Type == class && i > 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		if class == codec.IFrame {
			idx = 0
		} else {
			return 0, fmt.Errorf("core: no %v frame found", class)
		}
	}
	pkts, err := codec.Packetize(encoded[idx], mtu)
	if err != nil {
		return 0, err
	}
	n := len(pkts)
	if n <= 1 {
		return 0, nil
	}
	threshold := 3*baseMSE + 40
	rng := stats.NewRNG(12345)
	for s := 0; s <= n-1; s++ {
		// Keep the first slice plus s random of the rest; average a few
		// trials.
		var mse float64
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			keep := map[int]bool{0: true}
			perm := make([]int, n-1)
			for i := range perm {
				perm[i] = i + 1
			}
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			for _, p := range perm[:s] {
				keep[p] = true
			}
			re, err := codec.NewReassembler(cfg)
			if err != nil {
				return 0, err
			}
			frames := make([]*codec.EncodedFrame, len(encoded))
			copy(frames, encoded)
			for pi, pkt := range pkts {
				if keep[pi] {
					if err := re.Add(pkt.Payload); err != nil {
						return 0, err
					}
				}
			}
			if f := re.Frame(idx); f != nil {
				frames[idx] = f
			} else {
				frames[idx] = nil
			}
			dec, err := codec.DecodeSequence(frames, cfg)
			if err != nil {
				return 0, err
			}
			mse += video.MSE(clip[idx], dec[idx])
		}
		mse /= trials
		if mse <= threshold {
			return s, nil
		}
	}
	return n - 1, nil
}

// ProfileFor returns a stored distortion calibration for a motion class,
// for callers that skip the measurement step (the planner UI path of
// Fig. 1 where only "slow/fast" is known). The constants were produced by
// MeasureDistortion on the synthetic reference clips at CIF, GOP 30.
func ProfileFor(m video.MotionLevel) DistortionCalibration {
	switch m {
	case video.MotionLow:
		return DistortionCalibration{
			Motion: m, DMin: 40, DMax: 220,
			InterGOP:    stats.Polynomial{Coeffs: []float64{60, 45, -3}},
			MaxDistance: 4, BaseMSE: 4, NoReferenceMSE: 2600, SI: 6, SP: 0,
		}
	case video.MotionMedium:
		return DistortionCalibration{
			Motion: m, DMin: 150, DMax: 700,
			InterGOP:    stats.Polynomial{Coeffs: []float64{180, 160, -8}},
			MaxDistance: 4, BaseMSE: 5, NoReferenceMSE: 3000, SI: 7, SP: 0,
		}
	default:
		return DistortionCalibration{
			Motion: m, DMin: 500, DMax: 2200,
			InterGOP:    stats.Polynomial{Coeffs: []float64{600, 500, -20}},
			MaxDistance: 4, BaseMSE: 9, NoReferenceMSE: 3600, SI: 8, SP: 1,
		}
	}
}
