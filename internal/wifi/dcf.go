// Package wifi models the IEEE 802.11 substrate the paper's framework sits
// on: a Bianchi-style DCF fixed point supplying the packet success rate p_s
// of Section 4.1, an 802.11g OFDM airtime calculator for per-packet
// transmission times, and a broadcast medium simulator that plays the role
// of the open WiFi network (every station, including the eavesdropper,
// overhears every frame).
package wifi

import (
	"errors"
	"fmt"
	"math"
)

// DCFParams parameterises the distributed coordination function fixed
// point. The defaults (NewDefaultDCF) correspond to 802.11g with the
// standard contention window.
type DCFParams struct {
	Stations     int     // contending stations with persistent traffic
	CWMin        int     // minimum contention window (W)
	MaxBackoff   int     // maximum backoff stage m (CWmax = 2^m * CWmin)
	ChannelError float64 // independent per-packet channel error probability
}

// NewDefaultDCF returns 802.11g defaults: CWmin 16, 6 backoff stages.
func NewDefaultDCF(stations int) DCFParams {
	return DCFParams{Stations: stations, CWMin: 16, MaxBackoff: 6}
}

// DCFResult is the solution of the fixed point.
type DCFResult struct {
	Tau         float64 // per-slot transmission attempt probability
	PCollision  float64 // conditional collision probability
	SuccessRate float64 // packet success rate p_s (collision- and error-free)
	Iterations  int
}

// ErrNoConvergence is returned when the fixed-point iteration fails.
var ErrNoConvergence = errors.New("wifi: DCF fixed point did not converge")

// SolveDCF computes the Bianchi fixed point for n persistent stations:
//
//	tau = 2(1-2p) / ((1-2p)(W+1) + p W (1-(2p)^m))
//	p   = 1 - (1-tau)^(n-1)
//
// and combines the collision-free probability with the independent channel
// error rate into the packet success rate p_s used throughout Section 4.
// This is the role the model of [13] plays in the paper: a quick map from
// network conditions to p_s.
func SolveDCF(params DCFParams) (DCFResult, error) {
	if params.Stations < 1 {
		return DCFResult{}, fmt.Errorf("wifi: need at least one station, got %d", params.Stations)
	}
	if params.CWMin < 2 {
		return DCFResult{}, fmt.Errorf("wifi: CWMin %d too small", params.CWMin)
	}
	if params.ChannelError < 0 || params.ChannelError >= 1 {
		return DCFResult{}, fmt.Errorf("wifi: channel error %g out of [0,1)", params.ChannelError)
	}
	n := float64(params.Stations)
	w := float64(params.CWMin)
	m := float64(params.MaxBackoff)
	tauOf := func(p float64) float64 {
		if params.Stations == 1 {
			// No contention: the station transmits at the first backoff
			// expiry; the classic formula still applies with p=0.
			p = 0
		}
		den := (1-2*p)*(w+1) + p*w*(1-math.Pow(2*p, m))
		return 2 * (1 - 2*p) / den
	}
	p := 0.1
	const maxIter = 10000
	for i := 1; i <= maxIter; i++ {
		tau := tauOf(p)
		pNew := 1 - math.Pow(1-tau, n-1)
		// Damped iteration for stability at high contention.
		pNext := 0.5*p + 0.5*pNew
		if math.Abs(pNext-p) < 1e-12 {
			success := (1 - pNext) * (1 - params.ChannelError)
			if params.Stations == 1 {
				success = 1 - params.ChannelError
			}
			return DCFResult{
				Tau:         tauOf(pNext),
				PCollision:  pNext,
				SuccessRate: success,
				Iterations:  i,
			}, nil
		}
		p = pNext
	}
	return DCFResult{}, ErrNoConvergence
}

// BackoffRate estimates the paper's lambda_b, the rate of the exponential
// waiting intervals a collided packet experiences (Eq. 6-7), from the DCF
// solution and the mean slot duration: after a collision the station waits
// on average CW/2 slots of the current stage; we use the stage-averaged
// expected backoff window.
func BackoffRate(params DCFParams, res DCFResult, slotTime float64) float64 {
	if slotTime <= 0 {
		panic("wifi: BackoffRate needs positive slot time")
	}
	// Expected number of slots of one backoff interval, averaged over
	// stages weighted by the probability of reaching each stage.
	w := float64(params.CWMin)
	p := res.PCollision
	var num, den float64
	stageProb := 1.0
	for k := 0; k <= params.MaxBackoff; k++ {
		cw := w * math.Pow(2, float64(k))
		num += stageProb * (cw - 1) / 2
		den += stageProb
		stageProb *= p
	}
	meanSlots := num / den
	if meanSlots <= 0 {
		meanSlots = (w - 1) / 2
	}
	return 1 / (meanSlots * slotTime)
}
