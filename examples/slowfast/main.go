// Slowfast reproduces the paper's central content-dependence result
// (Section 6.2, Figs. 4 and 7) on a pocket scale: the same four encryption
// levels applied to a slow-motion and a fast-motion clip, reporting the
// eavesdropper's PSNR and the sender's per-packet delay for each. Expect
// I-frame encryption to crush the slow clip's confidentiality at almost no
// delay cost, while the fast clip needs P-frame coverage.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/evalvid"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

func buildMedium(seed uint64) *wifi.Medium {
	params := wifi.NewDefaultDCF(3)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		log.Fatal(err)
	}
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, wifi.Rate54, dcf, wifi.BackoffRate(params, dcf, phy.SlotTime), stats.NewRNG(seed))
	med.ReceiverError = 0.01
	med.EavesdropperError = 0.03
	return med
}

func main() {
	fmt.Printf("%-6s %-6s %12s %12s %14s\n", "clip", "level", "delay(ms)", "eav PSNR", "eav MOS")
	for _, motion := range []video.MotionLevel{video.MotionLow, video.MotionHigh} {
		clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 90, Motion: motion, Seed: 3})
		cfg := codec.DefaultConfig(30)
		cfg.Width, cfg.Height = 176, 144
		encoded, err := codec.EncodeSequence(clip, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, mode := range []vcrypt.Mode{vcrypt.ModeNone, vcrypt.ModePFrames, vcrypt.ModeIFrames, vcrypt.ModeAll} {
			pol := vcrypt.Policy{Mode: mode, Alg: vcrypt.AES256}
			session := transport.Session{
				Config: cfg, Encoded: encoded, FPS: 30, MTU: 1400,
				Policy: pol, Key: make([]byte, pol.Alg.KeySize()),
				Device: energy.SamsungGalaxySII(), Medium: buildMedium(9),
			}
			res, err := transport.RunUDP(session, 9)
			if err != nil {
				log.Fatal(err)
			}
			ev, err := codec.DecodeSequence(res.EavesFrames, cfg)
			if err != nil {
				log.Fatal(err)
			}
			q, err := evalvid.Evaluate(clip, ev)
			if err != nil {
				log.Fatal(err)
			}
			label := "slow"
			if motion == video.MotionHigh {
				label = "fast"
			}
			fmt.Printf("%-6s %-6s %12.2f %12.1f %14.2f\n",
				label, mode, res.MeanSojourn*1e3, q.PSNR, q.MOS)
		}
	}
	fmt.Println("\nreadings: 'I' floors the slow clip cheaply; the fast clip keeps leaking through P-frames,")
	fmt.Println("so only P/all (or I+20%P, see examples/planner) fully obfuscate it — Section 6.2's key result.")
}
