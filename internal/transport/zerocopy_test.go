package transport

import (
	"bytes"
	"encoding/binary"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// Golden wire-format equivalence: the zero-copy packetize+encrypt path
// (PacketizeInto → zeroPad → MarshalInto → encrypt-in-place) must put
// byte-identical datagrams/segments on the wire as the original
// allocate-per-packet path (Packetize → copy → pad-with-make → encrypt →
// Marshal). The legacy construction is replicated inside the tests so the
// equivalence stays checkable forever.

// goldenSession encodes a small clip with B-frames enabled so the wire
// format is exercised across all three frame types (I, P and B), and
// wraps it in a live-backend session (no Medium needed).
func goldenSession(t *testing.T, policy vcrypt.Policy) Session {
	t.Helper()
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 12, Motion: video.MotionMedium, Seed: 7})
	cfg := codec.Config{Width: 96, Height: 96, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16, BFrames: 1}
	encoded, err := codec.EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	types := map[codec.FrameType]bool{}
	for _, ef := range encoded {
		types[ef.Type] = true
	}
	for _, ft := range []codec.FrameType{codec.IFrame, codec.PFrame, codec.BFrame} {
		if !types[ft] {
			t.Fatalf("golden clip missing frame type %v", ft)
		}
	}
	key := make([]byte, policy.Alg.KeySize())
	for i := range key {
		key[i] = byte(i)
	}
	return Session{
		Config:  cfg,
		Encoded: encoded,
		FPS:     30,
		MTU:     600, // small enough that frames split into several slices
		Policy:  policy,
		Key:     key,
	}
}

// legacyDatagrams rebuilds the RTP datagrams exactly as the pre-zero-copy
// LiveUDPSend did: fresh payload copy per packet, pad with make, encrypt
// the copy in place, then Packet.Marshal into yet another allocation.
func legacyDatagrams(t *testing.T, s Session) [][]byte {
	t.Helper()
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		t.Fatal(err)
	}
	seqr := rtp.NewSequencer(0x7561) // the SSRC the live senders use
	var out [][]byte
	seq := 0
	for fi, ef := range s.Encoded {
		pkts, err := codec.Packetize(ef, s.MTU)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkt := range pkts {
			payload := append([]byte(nil), pkt.Payload...)
			if s.PadToMTU && len(payload) < s.MTU {
				payload = append(payload, make([]byte, s.MTU-len(payload))...)
			}
			encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
			if encrypted {
				cipher.EncryptPacket(uint64(seq), payload[:s.Policy.EncryptSpan(len(payload))])
			}
			out = append(out, seqr.Next(payload, float64(fi)/s.FPS, encrypted).Marshal())
			seq++
		}
	}
	return out
}

// captureDatagrams runs send against a raw capture socket and returns the
// datagrams it put on the wire, indexed by RTP sequence number so UDP
// reordering cannot produce false mismatches.
func captureDatagrams(t *testing.T, count int, send func(addr string) error) map[uint16][]byte {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan map[uint16][]byte, 1)
	go func() {
		got := make(map[uint16][]byte, count)
		buf := make([]byte, 65536)
		for len(got) < count {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // UDP deadline set cannot fail
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				break
			}
			if n < rtp.HeaderSize {
				continue
			}
			seq := binary.BigEndian.Uint16(buf[2:4])
			if _, dup := got[seq]; !dup {
				got[seq] = append([]byte(nil), buf[:n]...)
			}
		}
		done <- got
	}()
	if err := send(conn.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	return <-done
}

func compareWire(t *testing.T, want [][]byte, got map[uint16][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("captured %d datagrams, want %d", len(got), len(want))
	}
	for i, w := range want {
		g, ok := got[uint16(i)]
		if !ok {
			t.Fatalf("datagram with sequence %d never captured", i)
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("datagram %d differs from legacy path:\n got %x\nwant %x", i, g, w)
		}
	}
}

// TestLiveUDPSendWireIdentical checks the zero-copy UDP sender against the
// legacy construction for every cipher algorithm, with a mixed
// encrypted/plaintext policy so both sides of the selection guard cross
// the wire.
func TestLiveUDPSendWireIdentical(t *testing.T) {
	algs := []vcrypt.Algorithm{vcrypt.AES128, vcrypt.AES256, vcrypt.TripleDES, vcrypt.AES128CTR, vcrypt.AES256CTR}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			s := goldenSession(t, vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: alg})
			want := legacyDatagrams(t, s)
			got := captureDatagrams(t, len(want), func(addr string) error {
				_, err := LiveUDPSend(s, addr, "", false)
				return err
			})
			compareWire(t, want, got)
		})
	}
}

// TestLiveUDPSendWireIdenticalVariants covers the padded and header-only
// policy shapes, where the in-place zeroPad and the partial encrypt span
// could plausibly diverge from the legacy bytes.
func TestLiveUDPSendWireIdenticalVariants(t *testing.T) {
	cases := []struct {
		name   string
		policy vcrypt.Policy
		pad    bool
	}{
		{"pad-to-mtu", vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES128}, true},
		{"header-only", vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES128, HeaderOnlyBytes: vcrypt.MinHeaderOnlyBytes}, false},
		{"header-only-padded", vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256, HeaderOnlyBytes: vcrypt.MinHeaderOnlyBytes}, true},
		{"plaintext", vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := goldenSession(t, tc.policy)
			s.PadToMTU = tc.pad
			want := legacyDatagrams(t, s)
			got := captureDatagrams(t, len(want), func(addr string) error {
				_, err := LiveUDPSend(s, addr, "", false)
				return err
			})
			compareWire(t, want, got)
		})
	}
}

// TestLiveUDPSendReliableWireIdentical checks the reliable sender's
// zero-copy path (whose I-frame datagrams outlive the pool in the
// retransmit buffer) against the same golden bytes.
func TestLiveUDPSendReliableWireIdentical(t *testing.T) {
	s := goldenSession(t, vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128})
	want := legacyDatagrams(t, s)
	got := captureDatagrams(t, len(want), func(addr string) error {
		_, err := LiveUDPSendReliable(s, addr, "", false, ReliableUDPOptions{Drain: 20 * time.Millisecond})
		return err
	})
	compareWire(t, want, got)
}

// TestLiveHTTPUploadWireIdentical checks the zero-copy HTTP segment path
// against buildSegments (the Packetize-based construction the resumable
// uploader uses): same sequence numbers, same encrypted flags, same
// payload bytes as seen by the server's wire tap.
func TestLiveHTTPUploadWireIdentical(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256CTR}
	s := goldenSession(t, pol)
	want, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	type tapped struct {
		seq       uint64
		encrypted bool
		payload   []byte
	}
	var got []tapped
	srv.Tap = func(seq uint64, encrypted bool, payload []byte) {
		got = append(got, tapped{seq, encrypted, payload})
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	if _, err := LiveHTTPUpload(s, hs.URL, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("tapped %d segments, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.seq != w.seq || g.encrypted != w.encrypted {
			t.Fatalf("segment %d header: got (%d, %v), want (%d, %v)", i, g.seq, g.encrypted, w.seq, w.encrypted)
		}
		if !bytes.Equal(g.payload, w.payload) {
			t.Fatalf("segment %d payload differs from buildSegments:\n got %x\nwant %x", i, g.payload, w.payload)
		}
	}
}

// TestSendPathSteadyStateAllocs pins the composed per-packet send path —
// PacketizeInto, in-place zero-pad, MarshalInto, encrypt, pool return —
// at zero allocations per steady-state iteration. This is the
// transport-level half of the zero-copy guarantee; the codec- and
// cipher-level halves are pinned in their own packages.
func TestSendPathSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are meaningless")
	}
	s := goldenSession(t, vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES128})
	s.PadToMTU = true
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		t.Fatal(err)
	}
	seqr := rtp.NewSequencer(0x7561)
	pool := codec.NewBufPool()
	var wps []codec.WirePacket
	var packets, bytesOut int
	run := func() {
		seq := uint64(0)
		for fi, ef := range s.Encoded {
			var err error
			wps, err = codec.PacketizeInto(ef, s.MTU, rtp.HeaderSize, pool, wps[:0])
			if err != nil {
				t.Fatal(err)
			}
			for i := range wps {
				pkt := &wps[i]
				payload := pkt.Payload
				if len(payload) < s.MTU {
					payload = zeroPad(payload, s.MTU-len(payload))
				}
				encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
				out := seqr.Next(payload, float64(fi)/s.FPS, encrypted).MarshalInto(pkt.Wire(len(payload)))
				if encrypted {
					cipher.EncryptPacket(seq, out[rtp.HeaderSize:][:s.Policy.EncryptSpan(len(payload))])
				}
				packets++
				bytesOut += len(out)
				pool.Put(pkt)
				seq++
			}
		}
	}
	run() // warm the pool and the packet slice
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("send path allocates %.2f times per clip in steady state, want 0", avg)
	}
	if packets == 0 || bytesOut == 0 {
		t.Fatal("send path produced no packets")
	}
}

// TestZeroPad checks the shared padding helper against the obvious
// construction for lengths around the static block size.
func TestZeroPad(t *testing.T) {
	for _, n := range []int{0, 1, 7, len(zeroBlock) - 1, len(zeroBlock), len(zeroBlock) + 1, 3*len(zeroBlock) + 5} {
		seed := []byte{0xAA, 0xBB}
		got := zeroPad(append([]byte(nil), seed...), n)
		want := append(append([]byte(nil), seed...), make([]byte, n)...)
		if !bytes.Equal(got, want) {
			t.Fatalf("zeroPad(seed, %d) = %d bytes, mismatch", n, len(got))
		}
	}
	// Padding a dirty pooled buffer must yield zeros, not stale bytes.
	dirty := make([]byte, 0, 64)
	dirty = dirty[:32]
	for i := range dirty {
		dirty[i] = 0xFF
	}
	dirty = dirty[:8]
	padded := zeroPad(dirty, 16)
	for i := 8; i < 24; i++ {
		if padded[i] != 0 {
			t.Fatalf("byte %d after zeroPad is %#x, want 0", i, padded[i])
		}
	}
}
