// Package codec is a miniature stand-in for repro/internal/codec with
// just enough surface for the bufown fixtures: the ownership intrinsics
// (PacketizeInto, BufPool.Put, WirePacket.Retain) and the borrowing
// accessors the transport fixtures touch.
package codec

type EncodedFrame struct{ Number int }

type Packet struct{ Payload []byte }

func (p *Packet) IsIFrame() bool { return p != nil }

type WirePacket struct {
	Packet
	Headroom int
}

func (wp *WirePacket) Wire(n int) []byte { return wp.Payload[:n] }

func (wp *WirePacket) Retain() {}

type BufPool struct{ free int }

func NewBufPool() *BufPool { return &BufPool{} }

func (p *BufPool) Put(wp *WirePacket) { p.free++ }

func PacketizeInto(ef *EncodedFrame, mtu, headroom int, pool *BufPool, dst []WirePacket) ([]WirePacket, error) {
	return append(dst, WirePacket{}), nil
}
