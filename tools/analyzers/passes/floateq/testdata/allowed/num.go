// Testdata for the floateq pass: a justified marker keeps an exact
// comparison where exactness is the point.
package numdemo

func zeroMassSkip(weights []float64) float64 {
	var sum float64
	for _, w := range weights {
		if w == 0 { //lint:allow floateq exact zero-mass skip; an epsilon would drop real probability mass
			continue
		}
		sum += 1 / w
	}
	return sum
}
