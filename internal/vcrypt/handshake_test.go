package vcrypt

import (
	"bytes"
	"testing"
)

func TestHandshakeAgreesOnKey(t *testing.T) {
	alice, err := NewHandshake(nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewHandshake(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AES128, AES256, TripleDES} {
		ka, err := alice.SessionKey(bob.Public(), alg, "video")
		if err != nil {
			t.Fatal(err)
		}
		kb, err := bob.SessionKey(alice.Public(), alg, "video")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ka, kb) {
			t.Fatalf("%v: keys differ", alg)
		}
		if len(ka) != alg.KeySize() {
			t.Fatalf("%v: key size %d", alg, len(ka))
		}
	}
}

func TestHandshakeContextSeparation(t *testing.T) {
	alice, _ := NewHandshake(nil)
	bob, _ := NewHandshake(nil)
	k1, err := alice.SessionKey(bob.Public(), AES256, "video")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := alice.SessionKey(bob.Public(), AES256, "audio")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("different contexts must give independent keys")
	}
}

func TestHandshakeDifferentPeersDiffer(t *testing.T) {
	alice, _ := NewHandshake(nil)
	bob, _ := NewHandshake(nil)
	carol, _ := NewHandshake(nil)
	kb, _ := alice.SessionKey(bob.Public(), AES128, "v")
	kc, _ := alice.SessionKey(carol.Public(), AES128, "v")
	if bytes.Equal(kb, kc) {
		t.Fatal("sessions with different peers must have different keys")
	}
}

func TestHandshakeRejectsGarbagePublic(t *testing.T) {
	alice, _ := NewHandshake(nil)
	if _, err := alice.SessionKey([]byte("not a point"), AES256, "v"); err == nil {
		t.Fatal("bad public key should fail")
	}
	if _, err := alice.SessionKey(alice.Public(), Algorithm(9), "v"); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestHandshakeSessionCipherInterops(t *testing.T) {
	alice, _ := NewHandshake(nil)
	bob, _ := NewHandshake(nil)
	ca, err := alice.SessionCipher(bob.Public(), AES256, "stream")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := bob.SessionCipher(alice.Public(), AES256, "stream")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("I-frame slice bytes")
	orig := append([]byte(nil), payload...)
	ca.EncryptPacket(5, payload)
	cb.DecryptPacket(5, payload)
	if !bytes.Equal(payload, orig) {
		t.Fatal("handshake-derived ciphers do not interoperate")
	}
}

func TestHKDFDeterministicAndLength(t *testing.T) {
	a := hkdf([]byte("secret"), []byte("salt"), []byte("info"), 42)
	b := hkdf([]byte("secret"), []byte("salt"), []byte("info"), 42)
	if !bytes.Equal(a, b) {
		t.Fatal("HKDF must be deterministic")
	}
	if len(a) != 42 {
		t.Fatalf("length %d", len(a))
	}
	c := hkdf([]byte("secret"), []byte("salt"), []byte("other"), 42)
	if bytes.Equal(a, c) {
		t.Fatal("info must separate outputs")
	}
}
