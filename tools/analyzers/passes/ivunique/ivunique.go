// Package ivunique guards (key, IV) uniqueness. vcrypt derives the
// per-packet AES-CTR IV from the sequence argument of
// Cipher.EncryptPacket / EncryptPackets, so feeding it a raw wrapping
// counter (a uint16/uint32 sequence, or a 64-bit value truncated
// through one) repeats the keystream every wrap — the one failure mode
// selective encryption cannot survive, since a keystream reuse leaks
// plaintext XORs regardless of coverage policy. Every encrypt call
// must therefore pass the *extended* 64-bit sequence: a value whose
// derivation never flows through a narrow integer. The pass tracks
// narrowness through local assignments and conversions per file, which
// is exactly where the truncated-counter bug shape lives.
package ivunique

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "ivunique",
	Doc: "vcrypt EncryptPacket/EncryptPackets must take the extended " +
		"64-bit sequence, never a raw wrapping counter",
	Run: run,
}

var encryptFuncs = []lintkit.FuncMatch{
	{Path: "internal/vcrypt", Recv: "Cipher", Name: "EncryptPacket"},
	{Path: "internal/vcrypt", Recv: "Cipher", Name: "EncryptPackets"},
}

func isEncrypt(fn *types.Func) bool {
	for _, m := range encryptFuncs {
		if m.Matches(fn) {
			return true
		}
	}
	return false
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil
}

// checkFile runs a per-file fixpoint: narrowVars is the set of locals
// whose value may derive from a narrow (< 8 byte) wrapping integer,
// grown until stable, then every encrypt call with a narrow sequence
// argument is flagged.
func checkFile(pass *lintkit.Pass, file *ast.File) {
	narrowVars := make(map[types.Object]bool)
	for {
		changed := false
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || narrowVars[obj] {
					continue
				}
				if narrowExpr(pass.TypesInfo, narrowVars, assign.Rhs[i]) {
					narrowVars[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isEncrypt(lintkit.FuncForCall(pass.TypesInfo, call)) {
			return true
		}
		if narrowExpr(pass.TypesInfo, narrowVars, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "IV sequence derives from a narrow wrapping counter — keystream reuse on wrap; pass the extended 64-bit sequence")
		}
		return true
	})
}

// narrowExpr reports whether e's value may derive from a wrapping
// counter narrower than 64 bits. Results of real function calls are
// trusted (the extension helpers are exactly such calls); constants
// are values, not counters.
func narrowExpr(info *types.Info, narrowVars map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		if narrowVars[obj] {
			return true
		}
		return isNarrowInt(obj.Type())
	case *ast.SelectorExpr:
		return isNarrowInt(info.TypeOf(e))
	case *ast.BinaryExpr:
		return narrowExpr(info, narrowVars, e.X) || narrowExpr(info, narrowVars, e.Y)
	case *ast.UnaryExpr:
		return narrowExpr(info, narrowVars, e.X)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			// conversion: uint64(x) launders nothing — narrowness is a
			// property of the derivation, not the final type
			if isNarrowInt(info.TypeOf(e)) {
				// converting *into* a narrow type truncates: the result
				// is a wrapping counter whatever the operand was
				if tv, ok := info.Types[ast.Unparen(e.Args[0])]; ok && tv.Value != nil {
					return false
				}
				return true
			}
			return narrowExpr(info, narrowVars, e.Args[0])
		}
		// a real call: function results are sanctioned (SeqExtender
		// and friends return the extended sequence)
		return false
	}
	return false
}

func isNarrowInt(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Uint16, types.Uint32,
		types.Int8, types.Int16, types.Int32:
		return true
	}
	return false
}
