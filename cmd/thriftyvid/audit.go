package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ledger"
)

// The audit ledger rides on the send paths the same way metrics do: an
// opt-in -audit flag installs a process-wide appender, the hot paths
// emit events without blocking, and `thriftyvid audit verify` replays
// the hash chain afterwards.

// auditFlag registers the shared -audit flag on commands that transfer
// packets (empty = no ledger, the default, so hot paths pay only an
// atomic load).
func auditFlag(fs *flag.FlagSet) *string {
	return fs.String("audit", "", "append a tamper-evident audit ledger of policy decisions to this file (empty = off); verify it with \"thriftyvid audit verify\"")
}

// startAudit opens (appending to) the ledger file and installs the
// process-wide appender when path is non-empty. The returned func seals
// the final batch, uninstalls the appender and reports drops or write
// errors on stderr; call it (defer is fine) before reading the file.
func startAudit(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	a := ledger.NewAppender(f, ledger.Config{})
	ledger.Install(a)
	return func() {
		ledger.Install(nil)
		cerr := a.Close()
		if ferr := f.Close(); cerr == nil {
			cerr = ferr
		}
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "audit: ledger write failed: %v\n", cerr)
		}
		if d := a.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "audit: %d events dropped (sealer fell behind); the ledger still verifies but has coverage gaps\n", d)
		}
	}, nil
}

func cmdAudit(args []string) error {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, `usage: thriftyvid audit <verify|tail> [flags]`)
		os.Exit(2)
	}
	switch args[0] {
	case "verify":
		return cmdAuditVerify(args[1:])
	case "tail":
		return cmdAuditTail(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "unknown audit subcommand %q (want verify or tail)\n", args[0])
		os.Exit(2)
		return nil
	}
}

// cmdAuditVerify replays the ledger chain and recomputes every Merkle
// root and header hash; any tamper fails with a non-zero exit.
func cmdAuditVerify(args []string) error {
	fs := flag.NewFlagSet("audit verify", flag.ExitOnError)
	in := fs.String("in", "run.audit", "ledger file to verify")
	fs.Parse(args)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := ledger.Verify(f)
	if err != nil {
		return fmt.Errorf("ledger REJECTED: %w", err)
	}
	fmt.Printf("ledger OK: %d entries in %d batches, chain head %x\n",
		rep.Entries, rep.Batches, rep.HeadHash[:8])
	for _, kind := range []string{
		"policy", "plain_packet", "header_only", "downgrade", "reencode",
		"epoch", "session_start", "session_end", "evict", "reject",
	} {
		if n := rep.ByType[kind]; n > 0 {
			fmt.Printf("  %-14s %d\n", kind, n)
		}
	}
	return nil
}

// cmdAuditTail prints the last n entries, newest last.
func cmdAuditTail(args []string) error {
	fs := flag.NewFlagSet("audit tail", flag.ExitOnError)
	in := fs.String("in", "run.audit", "ledger file to read")
	n := fs.Int("n", 20, "entries to show")
	fs.Parse(args)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := ledger.Tail(f, *n)
	if err != nil {
		return err
	}
	for _, e := range entries {
		t := time.Unix(0, e.Time).Format("15:04:05.000")
		fmt.Printf("%8d  %s  %-13s %-12s a=%d b=%d %s\n",
			e.Seq, t, e.Type, e.Actor, e.A, e.B, e.Note)
	}
	return nil
}
