// Testdata for the cryptorand pass: math/rand is banned from the
// crypto layer at the import and at every resolved use; crypto/rand is
// the sanctioned source.
package vcryptdemo

import (
	crand "crypto/rand"
	"math/rand" // want `import of math/rand in the crypto layer`
)

func badKey() []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = byte(rand.Intn(256)) // want `use of math/rand\.Intn in the crypto layer`
	}
	return k
}

func goodKey() ([]byte, error) {
	k := make([]byte, 16)
	_, err := crand.Read(k)
	return k, err
}
