// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the reproduction's substrates. Each FigNN /
// TableNN function returns a Table whose rows mirror the bars/series of
// the corresponding plot; cmd/figures prints them and bench_test.go wraps
// each one in a benchmark so `go test -bench` re-derives the whole
// evaluation.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

// Options scales the experiments. The paper uses 300-frame CIF clips and
// 20 repetitions; Quick() keeps the same structure on smaller inputs so
// the full suite runs in seconds.
type Options struct {
	Width, Height int
	Frames        int
	Repetitions   int
	Seed          uint64
	// Stations sets WiFi contention for the medium.
	Stations int
	// Workers bounds the concurrency of the runner: figure cells and the
	// repetitions inside each cell fan out over this many goroutines, and
	// the same value drives the codec's macroblock-row workers. 0 selects
	// runtime.NumCPU(), 1 forces the serial path. Every setting produces
	// identical tables: cells and repetitions keep their per-(rep, policy,
	// gop) seeds and results are aggregated in index order.
	Workers int
}

// Full returns the paper-scale settings.
func Full() Options {
	return Options{Width: video.CIFWidth, Height: video.CIFHeight, Frames: 300, Repetitions: 20, Seed: 1, Stations: 3}
}

// Quick returns reduced settings for tests and benchmarks.
func Quick() Options {
	return Options{Width: 128, Height: 96, Frames: 200, Repetitions: 3, Seed: 1, Stations: 3}
}

func (o Options) fill() Options {
	if o.Width == 0 || o.Height == 0 {
		o.Width, o.Height = video.CIFWidth, video.CIFHeight
	}
	if o.Frames == 0 {
		o.Frames = 300
	}
	if o.Repetitions == 0 {
		o.Repetitions = 5
	}
	if o.Stations == 0 {
		o.Stations = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// parallelFor runs fn(0..n-1) on up to workers goroutines, claiming
// indices in ascending order, and returns the error of the lowest failing
// index (the one a serial loop would have hit first). workers <= 1 runs
// inline.
func parallelFor(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MTU is the application payload bound used throughout (WiFi MTU minus
// IP/UDP/RTP headers).
const MTU = 1400

// FPS is the clip frame rate (Section 4.3.2: 30 fps).
const FPS = 30.0

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Workload is one encoded clip under one GOP size.
type Workload struct {
	Name    string
	Motion  video.MotionLevel
	GOP     int
	Clip    []*video.Frame
	Cfg     codec.Config
	Encoded []*codec.EncodedFrame
	Dist    core.DistortionCalibration
}

// workloadEntry is one slot of the workload cache. The entry mutex
// serialises builders of the same key (concurrent requesters block only
// on the key they need, distinct keys build in parallel) and only a
// successful build is stored: a failed build leaves the slot empty so
// the next request retries instead of replaying the stale error
// forever, which is what a sync.Once here used to do.
type workloadEntry struct {
	mu sync.Mutex
	w  *Workload
}

// calEntry is the analogous slot of the calibration cache.
type calEntry struct {
	mu  sync.Mutex
	cal *core.Calibration
}

// Fixture caches workloads and channel state across figures. The caches
// are safe for concurrent use: the map itself is mutex-guarded and each
// entry builds under its own mutex, caching successes only.
type Fixture struct {
	opts      Options
	mu        sync.Mutex
	workloads map[string]*workloadEntry
	cals      map[string]*calEntry
	dcfParams wifi.DCFParams
	dcf       wifi.DCFResult
	backoff   float64

	// Build seams, defaulted to the real builders by NewFixture; tests
	// swap them to exercise the cache's failure paths.
	buildWorkloadFn func(video.MotionLevel, int) (*Workload, error)
	calibrateFn     func(*Workload, energy.Profile) (*core.Calibration, error)
}

// NewFixture prepares a fixture.
func NewFixture(opts Options) (*Fixture, error) {
	opts = opts.fill()
	params := wifi.NewDefaultDCF(opts.Stations)
	dcf, err := wifi.SolveDCF(params)
	if err != nil {
		return nil, err
	}
	f := &Fixture{
		opts:      opts,
		workloads: make(map[string]*workloadEntry),
		cals:      make(map[string]*calEntry),
		dcfParams: params,
		dcf:       dcf,
		backoff:   wifi.BackoffRate(params, dcf, wifi.PHY80211g().SlotTime),
	}
	f.buildWorkloadFn = f.buildWorkload
	f.calibrateFn = f.calibrate
	return f, nil
}

// Options returns the fixture's (filled) options.
func (f *Fixture) Options() Options { return f.opts }

// workers returns the resolved runner concurrency.
func (f *Fixture) workers() int { return f.opts.Workers }

// Workload encodes (and caches) a clip for a motion class and GOP size.
// Concurrent callers block only on the key they need; distinct workloads
// encode in parallel. Only successful builds are cached: a build error
// is returned to the caller and the next request retries.
func (f *Fixture) Workload(motion video.MotionLevel, gop int) (*Workload, error) {
	key := fmt.Sprintf("%v/%d", motion, gop)
	f.mu.Lock()
	e, ok := f.workloads[key]
	if !ok {
		e = &workloadEntry{}
		f.workloads[key] = e
	}
	f.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.w != nil {
		mWorkloadCacheHits.Inc()
		return e.w, nil
	}
	mWorkloadCacheMisses.Inc()
	w, err := f.buildWorkloadFn(motion, gop)
	if err != nil {
		return nil, err
	}
	e.w = w
	return w, nil
}

// PrefetchWorkloads builds the given (motion, gop) workloads concurrently
// on the fixture's worker budget; figures that need several workloads
// call it so clip generation and encoding overlap instead of serialising
// on first use.
func (f *Fixture) PrefetchWorkloads(motions []video.MotionLevel, gops []int) error {
	type spec struct {
		motion video.MotionLevel
		gop    int
	}
	var specs []spec
	for _, m := range motions {
		for _, g := range gops {
			specs = append(specs, spec{m, g})
		}
	}
	return parallelFor(f.workers(), len(specs), func(i int) error {
		_, err := f.Workload(specs[i].motion, specs[i].gop)
		return err
	})
}

func (f *Fixture) buildWorkload(motion video.MotionLevel, gop int) (*Workload, error) {
	clip := video.Generate(video.SceneConfig{
		W: f.opts.Width, H: f.opts.Height, Frames: f.opts.Frames,
		Motion: motion, Seed: f.opts.Seed + uint64(motion),
	})
	cfg := codec.DefaultConfig(gop)
	cfg.Width, cfg.Height = f.opts.Width, f.opts.Height
	cfg.Workers = f.opts.Workers
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		return nil, err
	}
	dist, err := core.MeasureDistortion(clip, cfg, MTU)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:    fmt.Sprintf("%v-motion GOP=%d", motion, gop),
		Motion:  motion,
		GOP:     gop,
		Clip:    clip,
		Cfg:     cfg,
		Encoded: encoded,
		Dist:    dist,
	}, nil
}

// Medium builds a fresh simulated channel.
func (f *Fixture) Medium(seed uint64) *wifi.Medium {
	phy := wifi.PHY80211g()
	med := wifi.NewMedium(phy, wifi.Rate54, f.dcf, f.backoff, stats.NewRNG(seed))
	med.ReceiverError = 0.01
	med.EavesdropperError = 0.03
	return med
}

// Calibrate runs (and caches) the model calibration for a workload and
// device. The calibration is deterministic in (workload, device), and the
// delay figures request the same pair once per algorithm, so caching
// removes redundant linear-system solves from the hot path. Callers
// receive a private shallow copy: some consumers (the ablation
// benchmarks) overwrite scalar fields of the returned struct.
func (f *Fixture) Calibrate(w *Workload, device energy.Profile) (*core.Calibration, error) {
	key := w.Name + "\x00" + device.Name
	f.mu.Lock()
	e, ok := f.cals[key]
	if !ok {
		e = &calEntry{}
		f.cals[key] = e
	}
	f.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cal == nil {
		mCalCacheMisses.Inc()
		cal, err := f.calibrateFn(w, device)
		if err != nil {
			return nil, err
		}
		e.cal = cal
	} else {
		mCalCacheHits.Inc()
	}
	c := *e.cal
	return &c, nil
}

// calibrate is the real calibration builder behind the cache.
func (f *Fixture) calibrate(w *Workload, device energy.Profile) (*core.Calibration, error) {
	net := core.Network{
		Stations: f.opts.Stations, Rate: wifi.Rate54,
		ReceiverError: 0.01, EavesdropperError: 0.03,
	}
	return core.Calibrate(w.Encoded, w.Cfg, FPS, MTU, device, net, w.Dist)
}

// Session assembles a transport session.
func (f *Fixture) Session(w *Workload, policy vcrypt.Policy, device energy.Profile, seed uint64) transport.Session {
	key := make([]byte, policy.Alg.KeySize())
	for i := range key {
		key[i] = byte(i*3 + 1)
	}
	return transport.Session{
		Config:  w.Cfg,
		Encoded: w.Encoded,
		FPS:     FPS,
		MTU:     MTU,
		Policy:  policy,
		Key:     key,
		Device:  device,
		Medium:  f.Medium(seed),
	}
}

// runStats are repeated-run summaries of one experimental cell.
type runStats struct {
	Delay  stats.Summary // mean per-packet sojourn (seconds)
	Wait   stats.Summary
	PSNR   stats.Summary // eavesdropper PSNR unless noted
	RxPSNR stats.Summary
	MOS    stats.Summary
	Power  stats.Summary
}

// runCell executes Repetitions transfers of one (workload, policy, device)
// cell and aggregates the measurements. unpaced selects the back-to-back
// upload mode (used by the power figures, matching the paper's
// methodology) instead of 30 fps streaming.
func (f *Fixture) runCell(w *Workload, policy vcrypt.Policy, device energy.Profile, tcp, unpaced bool) (runStats, error) {
	if obs.Enabled() {
		sp := obs.StartSpan("experiments.cell").Annotate("%s mode=%d dev=%s", w.Name, policy.Mode, device.Name)
		t0 := time.Now() //lint:allow walltime observability seam: times the cell, never feeds the model
		defer func() {
			mCellSeconds.Observe(time.Since(t0).Seconds()) //lint:allow walltime observability seam: times the cell, never feeds the model
			sp.End()
		}()
	}
	n := f.opts.Repetitions
	delays := make([]float64, n)
	waits := make([]float64, n)
	psnrs := make([]float64, n)
	rxpsnrs := make([]float64, n)
	moss := make([]float64, n)
	powers := make([]float64, n)
	// Repetitions are independent by construction (each gets its own seed
	// and Medium; the shared Workload is read-only in the transport), so
	// they fan out over the worker budget. Results land at their rep index,
	// which keeps the Summarize inputs in exactly the serial order.
	err := parallelFor(f.workers(), n, func(rep int) error {
		seed := f.opts.Seed*1000 + uint64(rep) + uint64(policy.Mode)*77 + uint64(w.GOP)
		s := f.Session(w, policy, device, seed)
		s.Unpaced = unpaced
		var res *transport.Result
		var err error
		if tcp {
			res, err = transport.RunHTTP(s, seed)
		} else {
			res, err = transport.RunUDP(s, seed)
		}
		if err != nil {
			return err
		}
		delays[rep] = res.MeanSojourn
		waits[rep] = res.MeanWait
		powers[rep] = res.AveragePowerW
		q, rq, err := evaluateReconstruction(w, s.Config, res)
		if err != nil {
			return err
		}
		psnrs[rep] = q.psnr
		moss[rep] = q.mos
		rxpsnrs[rep] = rq.psnr
		return nil
	})
	if err != nil {
		return runStats{}, err
	}
	return runStats{
		Delay:  stats.Summarize(delays),
		Wait:   stats.Summarize(waits),
		PSNR:   stats.Summarize(psnrs),
		RxPSNR: stats.Summarize(rxpsnrs),
		MOS:    stats.Summarize(moss),
		Power:  stats.Summarize(powers),
	}, nil
}

type qualityPair struct {
	psnr, mos float64
}

func evaluateReconstruction(w *Workload, cfg codec.Config, res *transport.Result) (eav, rx qualityPair, err error) {
	evDec, err := codec.DecodeSequence(res.EavesFrames, cfg)
	if err != nil {
		return eav, rx, err
	}
	qe, err := evalQuality(w.Clip, evDec)
	if err != nil {
		return eav, rx, err
	}
	rxDec, err := codec.DecodeSequence(res.ReceiverFrames, cfg)
	if err != nil {
		return eav, rx, err
	}
	qr, err := evalQuality(w.Clip, rxDec)
	if err != nil {
		return eav, rx, err
	}
	return qe, qr, nil
}

// WriteCSV renders the table as RFC-4180 CSV for external plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
