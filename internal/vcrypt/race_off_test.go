//go:build !race

package vcrypt

const raceEnabled = false
