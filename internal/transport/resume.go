package transport

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/codec"
	"repro/internal/ledger"
	"repro/internal/netem"
	"repro/internal/vcrypt"
)

// ResumeReport extends HTTPUploadReport with robustness accounting. The
// wire counters (Segments, Bytes, Encrypted) include retransmitted
// segments, so comparing Segments against the clip's segment count shows
// the retry overhead.
type ResumeReport struct {
	HTTPUploadReport
	Attempts     int           // POST attempts issued
	Resumes      int           // attempts that resumed from a non-zero offset
	Downgrades   int           // encryption-policy downgrades taken
	Restarts     int           // re-encode restarts taken
	BackoffTotal time.Duration // time spent sleeping between attempts
	FinalPolicy  vcrypt.Policy // policy in force when the transfer ended
}

// wireSegment is one pre-encrypted framed segment; rebuilding the exact
// bytes for any seq makes resumed attempts byte-identical to the
// original ones (the per-seq cipher IV fixes the keystream).
type wireSegment struct {
	seq       uint64
	encrypted bool
	payload   []byte
}

// buildSegments packetizes and encrypts the whole session starting at
// the given base sequence.
func buildSegments(s Session, base uint64) ([]wireSegment, error) {
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return nil, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return nil, err
	}
	var out []wireSegment
	var wps []codec.WirePacket
	seq := base
	for _, ef := range s.Encoded {
		wps, err = codec.PacketizeInto(ef, s.MTU, 0, nil, wps[:0])
		if err != nil {
			return nil, err
		}
		for i := range wps {
			pkt := &wps[i]
			// The pool-less zero-copy path hands each payload its own
			// buffer (same bytes as Packetize), so the segment owns it
			// outright and encrypts in place; Retain makes the transfer
			// of ownership to the segment store explicit.
			payload := pkt.Payload
			//lint:retain(segment store keeps every payload alive across resumed attempts)
			pkt.Retain()
			encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
			if encrypted {
				cipher.EncryptPacket(seq, payload[:s.Policy.EncryptSpan(len(payload))])
				if span := s.Policy.EncryptSpan(len(payload)); span < len(payload) {
					ledger.Emit(ledger.EventHeaderOnly, "segments", seq, uint64(span), "")
				}
			} else {
				ledger.Emit(ledger.EventPlainPacket, "segments", seq, uint64(len(payload)), "")
			}
			out = append(out, wireSegment{seq: seq, encrypted: encrypted, payload: payload})
			seq++
		}
	}
	return out, nil
}

// queryNextSeq asks the server for the resume point of one session (the
// empty sid is the default session).
func queryNextSeq(client *http.Client, url, sid string, timeout time.Duration) (uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	if sid != "" {
		req.Header.Set(SessionHeader, sid)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("transport: resume query status %s", resp.Status)
	}
	h := resp.Header.Get(NextSeqHeader)
	if h == "" {
		return 0, fmt.Errorf("transport: server does not report %s", NextSeqHeader)
	}
	return strconv.ParseUint(h, 10, 64)
}

// postSegments streams one upload attempt and reports what crossed into
// the transport before it ended.
func postSegments(client *http.Client, url, sid string, segs []wireSegment, restartBase string, pacer *netem.Pacer, timeout time.Duration) (sent, sentBytes, sentEnc int, next uint64, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, seg := range segs {
			if pacer != nil {
				pacer.Wait(segmentHeaderSize + len(seg.payload))
			}
			if werr := WriteSegment(pw, seg.seq, seg.encrypted, seg.payload); werr != nil {
				pw.CloseWithError(werr) //lint:allow bitioerr pipe CloseWithError is documented to always return nil
				return
			}
			sent++
			sentBytes += segmentHeaderSize + len(seg.payload)
			if seg.encrypted {
				sentEnc++
			}
		}
		pw.Close() //lint:allow bitioerr pipe Close is documented to always return nil
	}()
	collect := func() {
		pr.Close() //lint:allow bitioerr pipe Close always returns nil; this only unblocks a dead writer
		<-done
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		collect()
		return sent, sentBytes, sentEnc, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if sid != "" {
		req.Header.Set(SessionHeader, sid)
	}
	if restartBase != "" {
		req.Header.Set(RestartHeader, restartBase)
	}
	resp, err := client.Do(req)
	if err != nil {
		collect()
		return sent, sentBytes, sentEnc, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	collect()
	if resp.StatusCode != http.StatusOK {
		return sent, sentBytes, sentEnc, 0, fmt.Errorf("transport: upload attempt status %s", resp.Status)
	}
	next, err = strconv.ParseUint(resp.Header.Get(NextSeqHeader), 10, 64)
	if err != nil {
		return sent, sentBytes, sentEnc, 0, fmt.Errorf("transport: bad %s on success: %w", NextSeqHeader, err)
	}
	return sent, sentBytes, sentEnc, next, nil
}

// nextEpoch returns a fresh sequence-epoch base strictly above every
// sequence used so far, aligned to a 2^32 boundary so old and new
// streams can never share a cipher IV.
func nextEpoch(used uint64) uint64 {
	return (used>>32 + 1) << 32
}

// ResumableHTTPUpload uploads the session like LiveHTTPUpload but
// survives a faulty link: each attempt runs under a per-attempt timeout,
// consecutive failures back off exponentially (capped, jittered,
// deterministic under rp.Seed), and every retry first asks the server
// for its highest contiguous sequence and resumes there instead of
// re-sending acknowledged segments. When the retry budget or the
// transfer deadline is exhausted, the degrader (when non-nil) makes the
// remaining work cheaper — first by downgrading the encryption policy,
// then by re-encoding the clip at reduced quality and restarting under a
// fresh sequence epoch — rather than failing the transfer.
func ResumableHTTPUpload(s Session, url string, pacer *netem.Pacer, rp RetryPolicy, deg Degrader) (ResumeReport, error) {
	var rep ResumeReport
	rp = rp.withDefaults()
	if err := s.Validate(); err != nil {
		return rep, err
	}
	ledger.Emit(ledger.EventPolicy, "resume", 0, 0, s.Policy.Name())
	segs, err := buildSegments(s, 0)
	if err != nil {
		return rep, err
	}
	rep.FinalPolicy = s.Policy
	backoff := NewBackoff(rp)
	client := &http.Client{}
	start := time.Now()
	var deadlineAt time.Time
	if rp.Deadline > 0 {
		deadlineAt = start.Add(rp.Deadline)
	}
	var (
		base       uint64 // sequence of segs[0] (current epoch)
		serverNext uint64 // last known server resume point
		failures   int    // consecutive attempts without server progress
		lastErr    error
	)
	for {
		if rep.Attempts > 0 {
			if got, qerr := queryNextSeq(client, url, s.SessionID, rp.AttemptTimeout); qerr == nil {
				serverNext = got
			}
		}
		restartHdr := ""
		idx := 0
		if serverNext < base {
			// The server has not seen this epoch yet: announce it.
			restartHdr = strconv.FormatUint(base, 10)
		} else {
			idx = len(segs)
			if off := serverNext - base; off < uint64(len(segs)) {
				idx = int(off)
			}
		}
		rep.Attempts++
		mUploadAttempts.Inc()
		if idx > 0 {
			rep.Resumes++
			mUploadResumes.Inc()
		}
		attemptStart := time.Now()
		sent, bytes, enc, next, err := postSegments(client, url, s.SessionID, segs[idx:], restartHdr, pacer, rp.AttemptTimeout)
		mUploadAttemptSeconds.Observe(time.Since(attemptStart).Seconds())
		rep.Segments += sent
		rep.Bytes += bytes
		rep.Encrypted += enc
		mSegmentsSent.Add(int64(sent))
		mSegmentBytesSent.Add(int64(bytes))
		mSegmentsEncrypted.Add(int64(enc))
		if err == nil {
			if want := base + uint64(len(segs)); next != want {
				err = fmt.Errorf("transport: server acknowledged %d, want %d", next, want)
			} else {
				rep.Elapsed = time.Since(start)
				return rep, nil
			}
		}
		lastErr = err
		// Partial progress still counts: if the server advanced, reset
		// the failure streak and the backoff growth.
		progressed := false
		if got, qerr := queryNextSeq(client, url, s.SessionID, rp.AttemptTimeout); qerr == nil && got > serverNext {
			serverNext = got
			progressed = true
		}
		if progressed {
			failures = 0
			backoff.Reset()
		} else {
			failures++
		}
		// Exhaustion: too many fruitless attempts, or sleeping the next
		// backoff would blow the deadline (waiting out a dark link is
		// pointless once the budget cannot cover it).
		gap := backoff.Next()
		deadlineBlown := !deadlineAt.IsZero() && time.Now().Add(gap).After(deadlineAt)
		if failures >= rp.MaxAttempts || deadlineBlown {
			var (
				ns      Session
				restart bool
				ok      bool
			)
			if deg != nil {
				ns, restart, ok = deg.Degrade(s)
			}
			if !ok {
				rep.Elapsed = time.Since(start)
				return rep, fmt.Errorf("transport: upload failed after %d attempts: %w", rep.Attempts, lastErr)
			}
			oldPolicy := s.Policy.Name()
			s = ns
			rep.FinalPolicy = s.Policy
			if restart {
				base = nextEpoch(base + uint64(len(segs)))
				rep.Restarts++
				mUploadRestarts.Inc()
				ledger.Emit(ledger.EventReencode, "resume", 0, 0, oldPolicy)
				ledger.Emit(ledger.EventEpoch, "resume", base, 0, "")
			} else {
				rep.Downgrades++
				mUploadDowngrades.Inc()
				ledger.Emit(ledger.EventDowngrade, "resume", 0, 0, oldPolicy+" -> "+s.Policy.Name())
			}
			if segs, err = buildSegments(s, base); err != nil {
				rep.Elapsed = time.Since(start)
				return rep, err
			}
			// The degraded transfer earns a fresh budget and a fresh
			// backoff schedule.
			failures = 0
			backoff.Reset()
			gap = backoff.Next()
			if rp.Deadline > 0 {
				deadlineAt = time.Now().Add(rp.Deadline)
			}
		}
		rep.BackoffTotal += gap
		mUploadBackoffSeconds.Add(gap.Seconds())
		rp.Sleep(gap)
	}
}
