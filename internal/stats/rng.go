package stats

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used
// throughout the simulators so that every experiment is reproducible from a
// seed, independent of math/rand version drift across Go releases.
type RNG struct {
	state uint64
	// cached spare normal deviate for Box-Muller
	haveSpare bool
	spare     float64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant because the xorshift state must be non-zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponential deviate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 { //lint:allow floateq exact rejection of the measure-zero draw; an epsilon would bias the distribution
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Norm returns a normal deviate with the given mean and standard deviation
// using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	if r.haveSpare {
		r.haveSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.haveSpare = true
	return mean + stddev*u*f
}

// Geometric returns K ≥ 0 distributed P{K=k} = (1-p)^k p, i.e. the number
// of failures before the first success of a Bernoulli(p) sequence. This is
// exactly the collision-count distribution of Eq. (6) in the paper with
// p = packet success rate.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric needs p in (0,1]")
	}
	if p == 1 { //lint:allow floateq exact boundary: callers pass the literal 1.0 for a sure success
		return 0
	}
	u := r.Float64()
	for u == 0 { //lint:allow floateq exact rejection of the measure-zero draw; an epsilon would bias the distribution
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Split derives an independent generator from r, for deterministic fan-out
// across goroutines or sub-simulations.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Shuffle permutes the integers [0, n) with Fisher-Yates and calls swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
