// Package rtp is the miniature wire header of the plainleak fixtures:
// the Marker bit records the encryption decision on the packet itself.
package rtp

// Packet is an RTP packet with the encrypted-payload flag.
type Packet struct {
	Marker  bool
	Payload []byte
}

// Encrypted reports whether the payload travels as ciphertext.
func (p Packet) Encrypted() bool { return p.Marker }
