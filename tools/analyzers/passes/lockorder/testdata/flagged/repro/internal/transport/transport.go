// Package transport holds the flagged ordering shapes: a two-function
// cycle between the shard and session lock classes (both directions
// are reported — each acquisition witnesses the cycle), the same
// reversal reached through a helper's may-acquire summary, same-class
// nesting, and a malformed declaration comment.
package transport

import "sync"

type shard struct {
	mu       sync.Mutex
	sessions map[int]*session
}

type session struct {
	mu     sync.Mutex
	lastAt int
}

// sweep nests session under shard; fine alone, but refresh below
// closes the loop, so this acquisition is one witness of the cycle.
func sweep(sh *shard) {
	sh.mu.Lock()
	for _, sess := range sh.sessions {
		sess.mu.Lock() // want `acquiring session\.mu while shard\.mu is held creates a lock-order cycle`
		_ = sess.lastAt
		sess.mu.Unlock()
	}
	sh.mu.Unlock()
}

// refresh nests shard under session — the reverse direction.
func refresh(sess *session, sh *shard) {
	sess.mu.Lock()
	sh.mu.Lock() // want `acquiring shard\.mu while session\.mu is held creates a lock-order cycle`
	sh.mu.Unlock()
	sess.mu.Unlock()
}

// viaHelper reverses the order interprocedurally: lockShard's
// may-acquire summary contains shard.mu, so the call under the session
// lock is an edge too.
func viaHelper(sess *session, sh *shard) {
	sess.mu.Lock()
	lockShard(sh) // want `acquiring shard\.mu while session\.mu is held creates a lock-order cycle`
	sess.mu.Unlock()
}

func lockShard(sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}

// pair holds two locks of one class at once: no instance order exists.
func pair(a, b *session) {
	a.mu.Lock()
	b.mu.Lock() // want `same-class locks have no defined instance order`
	b.mu.Unlock()
	a.mu.Unlock()
}

//lint:lockorder shard.mu before session.mu always // want `malformed //lint:lockorder declaration`
func placeholder() {}
