package codec

import "repro/internal/video"

// Macroblock coding. Each macroblock is 16x16 luma (four 8x8 transform
// blocks) plus one 8x8 block in each half-resolution chroma plane. Intra
// macroblocks predict from a flat 128 level so that every macroblock — and
// therefore every slice the packetizer forms — is independently decodable;
// inter macroblocks carry an absolute motion vector and residual blocks
// against the previous reconstructed frame.

// loadBlock copies an 8x8 region of a plane into samples, offsetting by
// -bias (128 for intra, 0 for residual paths handled separately).
func loadBlock(plane []byte, stride, x0, y0 int, bias float64, samples *[64]float64) {
	for y := 0; y < blockSize; y++ {
		row := (y0+y)*stride + x0
		for x := 0; x < blockSize; x++ {
			samples[y*blockSize+x] = float64(plane[row+x]) - bias
		}
	}
}

// storeBlock writes reconstructed samples (plus bias) back to a plane.
func storeBlock(plane []byte, stride, x0, y0 int, bias float64, recon *[64]float64) {
	for y := 0; y < blockSize; y++ {
		row := (y0+y)*stride + x0
		for x := 0; x < blockSize; x++ {
			plane[row+x] = clampByte(recon[y*blockSize+x] + bias)
		}
	}
}

// encodeIntraMB codes one intra macroblock and writes its reconstruction.
// The bitstream goes to sc.w; sample buffers come from sc so the hot path
// stays allocation-free.
func encodeIntraMB(sc *mbScratch, src, recon *video.Frame, mx, my int, q float64) {
	w, samples, rec := &sc.w, &sc.samples, &sc.rec
	x0, y0 := mx*mbSize, my*mbSize
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			loadBlock(src.Y, src.W, x0+bx*blockSize, y0+by*blockSize, 128, samples)
			encodeBlock(w, samples, q, rec)
			storeBlock(recon.Y, recon.W, x0+bx*blockSize, y0+by*blockSize, 128, rec)
		}
	}
	cw := src.W / 2
	cx0, cy0 := x0/2, y0/2
	loadBlock(src.Cb, cw, cx0, cy0, 128, samples)
	encodeBlock(w, samples, q*1.2, rec)
	storeBlock(recon.Cb, cw, cx0, cy0, 128, rec)
	loadBlock(src.Cr, cw, cx0, cy0, 128, samples)
	encodeBlock(w, samples, q*1.2, rec)
	storeBlock(recon.Cr, cw, cx0, cy0, 128, rec)
}

// decodeIntraMB reverses encodeIntraMB.
func decodeIntraMB(r *bitReader, out *video.Frame, mx, my int, q float64) error {
	x0, y0 := mx*mbSize, my*mbSize
	var rec [64]float64
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			if err := decodeBlock(r, q, &rec); err != nil {
				return err
			}
			storeBlock(out.Y, out.W, x0+bx*blockSize, y0+by*blockSize, 128, &rec)
		}
	}
	cw := out.W / 2
	cx0, cy0 := x0/2, y0/2
	if err := decodeBlock(r, q*1.2, &rec); err != nil {
		return err
	}
	storeBlock(out.Cb, cw, cx0, cy0, 128, &rec)
	if err := decodeBlock(r, q*1.2, &rec); err != nil {
		return err
	}
	storeBlock(out.Cr, cw, cx0, cy0, 128, &rec)
	return nil
}

// maxInt is the largest int (used as a no-op SAD early-exit limit).
const maxInt = int(^uint(0) >> 1)

// sadMB computes the sum of absolute luma differences between the source
// macroblock at (x0, y0) and the reference block displaced by (dx, dy),
// clamping reference coordinates at the frame edge.
func sadMB(src, ref *video.Frame, x0, y0, dx, dy int) int {
	return sadMBLimit(src, ref, x0, y0, dx, dy, maxInt)
}

// sadMBLimit is sadMB with a row-granular early exit: once the partial sum
// reaches limit the (partial, >= limit) value is returned. Callers that
// compare with a strict `< best` see exactly the selections the full sum
// would give, because any bailed candidate already lost. Displacements
// that keep the whole block inside the reference skip the per-pixel edge
// clamping.
func sadMBLimit(src, ref *video.Frame, x0, y0, dx, dy, limit int) int {
	var sad int
	rx0, ry0 := x0+dx, y0+dy
	if rx0 >= 0 && ry0 >= 0 && rx0+mbSize <= ref.W && ry0+mbSize <= ref.H {
		for y := 0; y < mbSize; y++ {
			so := (y0+y)*src.W + x0
			ro := (ry0+y)*ref.W + rx0
			srow := src.Y[so : so+mbSize]
			rrow := ref.Y[ro : ro+mbSize]
			for x := 0; x < mbSize; x++ {
				d := int(srow[x]) - int(rrow[x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
			if sad >= limit {
				return sad
			}
		}
		return sad
	}
	for y := 0; y < mbSize; y++ {
		sy := y0 + y
		for x := 0; x < mbSize; x++ {
			s := int(src.Y[sy*src.W+x0+x])
			r := int(ref.LumaAt(x0+x+dx, sy+dy))
			d := s - r
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= limit {
			return sad
		}
	}
	return sad
}

// largeDiamond and smallDiamond are the classic DS motion-search patterns.
var largeDiamond = [][2]int{{0, -2}, {-1, -1}, {1, -1}, {-2, 0}, {2, 0}, {-1, 1}, {1, 1}, {0, 2}}
var smallDiamond = [][2]int{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}

// motionSearch finds an integer-pel motion vector for the macroblock.
// starts lists predictor candidates (neighbour and co-located vectors)
// seeded alongside (0,0); on textured content the SAD surface only has a
// basin near the true displacement, so good predictors are what make the
// diamond search competitive with full search.
func motionSearch(src, ref *video.Frame, x0, y0 int, cfg Config, starts [][2]int) (int, int) {
	if cfg.SearchRange == 0 {
		return 0, 0
	}
	if cfg.FullSearch {
		bestDX, bestDY := 0, 0
		best := sadMB(src, ref, x0, y0, 0, 0)
		for dy := -cfg.SearchRange; dy <= cfg.SearchRange; dy++ {
			for dx := -cfg.SearchRange; dx <= cfg.SearchRange; dx++ {
				if s := sadMBLimit(src, ref, x0, y0, dx, dy, best); s < best {
					best, bestDX, bestDY = s, dx, dy
				}
			}
		}
		return bestDX, bestDY
	}
	// Diamond search from the best candidate.
	cx, cy := 0, 0
	best := sadMB(src, ref, x0, y0, 0, 0)
	for _, st := range starts {
		dx, dy := st[0], st[1]
		if dx == 0 && dy == 0 {
			continue
		}
		if dx < -cfg.SearchRange || dx > cfg.SearchRange || dy < -cfg.SearchRange || dy > cfg.SearchRange {
			continue
		}
		if s := sadMBLimit(src, ref, x0, y0, dx, dy, best); s < best {
			best, cx, cy = s, dx, dy
		}
	}
	for {
		improved := false
		for _, d := range largeDiamond {
			dx, dy := cx+d[0], cy+d[1]
			if dx < -cfg.SearchRange || dx > cfg.SearchRange || dy < -cfg.SearchRange || dy > cfg.SearchRange {
				continue
			}
			if s := sadMBLimit(src, ref, x0, y0, dx, dy, best); s < best {
				best, cx, cy, improved = s, dx, dy, true
			}
		}
		if !improved {
			break
		}
	}
	for _, d := range smallDiamond {
		dx, dy := cx+d[0], cy+d[1]
		if dx < -cfg.SearchRange || dx > cfg.SearchRange || dy < -cfg.SearchRange || dy > cfg.SearchRange {
			continue
		}
		if s := sadMBLimit(src, ref, x0, y0, dx, dy, best); s < best {
			best, cx, cy = s, dx, dy
		}
	}
	return cx, cy
}

// loadResidual fills samples with source minus motion-compensated
// reference for one 8x8 luma block. Blocks whose displaced footprint lies
// fully inside the reference skip the per-pixel edge clamping of LumaAt.
func loadResidual(src, ref *video.Frame, x0, y0, dx, dy int, samples *[64]float64) {
	rx0, ry0 := x0+dx, y0+dy
	if rx0 >= 0 && ry0 >= 0 && rx0+blockSize <= ref.W && ry0+blockSize <= ref.H {
		for y := 0; y < blockSize; y++ {
			so := (y0+y)*src.W + x0
			ro := (ry0+y)*ref.W + rx0
			srow := src.Y[so : so+blockSize]
			rrow := ref.Y[ro : ro+blockSize]
			for x := 0; x < blockSize; x++ {
				samples[y*blockSize+x] = float64(srow[x]) - float64(rrow[x])
			}
		}
		return
	}
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			s := float64(src.Y[(y0+y)*src.W+x0+x])
			r := float64(ref.LumaAt(x0+x+dx, y0+y+dy))
			samples[y*blockSize+x] = s - r
		}
	}
}

// storeCompensated writes prediction+residual into the output luma plane,
// with the same interior fast path as loadResidual.
func storeCompensated(out, ref *video.Frame, x0, y0, dx, dy int, rec *[64]float64) {
	rx0, ry0 := x0+dx, y0+dy
	if rx0 >= 0 && ry0 >= 0 && rx0+blockSize <= ref.W && ry0+blockSize <= ref.H {
		for y := 0; y < blockSize; y++ {
			oo := (y0+y)*out.W + x0
			ro := (ry0+y)*ref.W + rx0
			orow := out.Y[oo : oo+blockSize]
			rrow := ref.Y[ro : ro+blockSize]
			for x := 0; x < blockSize; x++ {
				orow[x] = clampByte(float64(rrow[x]) + rec[y*blockSize+x])
			}
		}
		return
	}
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			p := float64(ref.LumaAt(x0+x+dx, y0+y+dy))
			out.Y[(y0+y)*out.W+x0+x] = clampByte(p + rec[y*blockSize+x])
		}
	}
}

// chromaAt reads a chroma sample with clamping.
func chromaAt(plane []byte, cw, ch, x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if x >= cw {
		x = cw - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= ch {
		y = ch - 1
	}
	return float64(plane[y*cw+x])
}

// encodeInterMB codes one predicted macroblock: motion vector plus
// residual blocks for luma and chroma. It returns the chosen motion
// vector so the encoder can seed its neighbour predictors. The bitstream
// goes to sc.w; sample buffers come from sc.
func encodeInterMB(sc *mbScratch, src, ref, recon *video.Frame, mx, my int, cfg Config, starts [][2]int) (int, int) {
	w, samples, rec := &sc.w, &sc.samples, &sc.rec
	x0, y0 := mx*mbSize, my*mbSize
	dx, dy := motionSearch(src, ref, x0, y0, cfg, starts)
	w.writeSE(int64(dx))
	w.writeSE(int64(dy))
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			bx0, by0 := x0+bx*blockSize, y0+by*blockSize
			loadResidual(src, ref, bx0, by0, dx, dy, samples)
			encodeBlock(w, samples, cfg.QP, rec)
			storeCompensated(recon, ref, bx0, by0, dx, dy, rec)
		}
	}
	// Chroma residuals with halved motion.
	cw, ch := src.W/2, src.H/2
	cx0, cy0 := x0/2, y0/2
	cdx, cdy := dx/2, dy/2
	for plane := 0; plane < 2; plane++ {
		sp, rp, op := src.Cb, ref.Cb, recon.Cb
		if plane == 1 {
			sp, rp, op = src.Cr, ref.Cr, recon.Cr
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				s := float64(sp[(cy0+y)*cw+cx0+x])
				r := chromaAt(rp, cw, ch, cx0+x+cdx, cy0+y+cdy)
				samples[y*blockSize+x] = s - r
			}
		}
		encodeBlock(w, samples, cfg.QP*1.2, rec)
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				p := chromaAt(rp, cw, ch, cx0+x+cdx, cy0+y+cdy)
				op[(cy0+y)*cw+cx0+x] = clampByte(p + rec[y*blockSize+x])
			}
		}
	}
	return dx, dy
}

// decodeInterMB reverses encodeInterMB against the decoder's reference.
func decodeInterMB(r *bitReader, ref, out *video.Frame, mx, my int, cfg Config) error {
	x0, y0 := mx*mbSize, my*mbSize
	dx64, err := r.readSE()
	if err != nil {
		return err
	}
	dy64, err := r.readSE()
	if err != nil {
		return err
	}
	dx, dy := int(dx64), int(dy64)
	if dx < -64 || dx > 64 || dy < -64 || dy > 64 {
		return errCorrupt
	}
	if ref == nil {
		// P-frame with no reference (leading loss): decode residuals
		// against mid-grey so the stream stays in lockstep. Decode hoists
		// this to one pooled frame per frame; the fallback covers direct
		// callers.
		grey := getGreyFrame(out.W, out.H)
		defer putFrame(grey)
		ref = grey
	}
	var rec [64]float64
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			if err := decodeBlock(r, cfg.QP, &rec); err != nil {
				return err
			}
			storeCompensated(out, ref, x0+bx*blockSize, y0+by*blockSize, dx, dy, &rec)
		}
	}
	cw, ch := out.W/2, out.H/2
	cx0, cy0 := x0/2, y0/2
	cdx, cdy := dx/2, dy/2
	for plane := 0; plane < 2; plane++ {
		rp, op := ref.Cb, out.Cb
		if plane == 1 {
			rp, op = ref.Cr, out.Cr
		}
		if err := decodeBlock(r, cfg.QP*1.2, &rec); err != nil {
			return err
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				p := chromaAt(rp, cw, ch, cx0+x+cdx, cy0+y+cdy)
				op[(cy0+y)*cw+cx0+x] = clampByte(p + rec[y*blockSize+x])
			}
		}
	}
	return nil
}
