package evalvid

import (
	"math"
	"testing"

	"repro/internal/video"
)

func TestPSNRFromMSE(t *testing.T) {
	if PSNRFromMSE(0) != MaxPSNR {
		t.Fatal("zero MSE should cap at MaxPSNR")
	}
	want := 20 * math.Log10(255.0/10)
	if got := PSNRFromMSE(100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PSNR(100) = %v want %v", got, want)
	}
	if PSNRFromMSE(1e-30) != MaxPSNR {
		t.Fatal("tiny MSE should cap")
	}
}

func TestMOSThresholds(t *testing.T) {
	cases := []struct {
		psnr float64
		mos  int
	}{
		{40, 5}, {37.01, 5}, {37, 4}, {31.5, 4}, {31, 3}, {26, 3},
		{25, 2}, {21, 2}, {20, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := MOSFromPSNR(c.psnr); got != c.mos {
			t.Fatalf("MOS(%v) = %d want %d", c.psnr, got, c.mos)
		}
	}
}

func TestEvaluateIdentical(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 32, H: 32, Frames: 4, Motion: video.MotionLow, Seed: 1})
	q, err := Evaluate(clip, clip)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR != MaxPSNR || q.MOS != 5 || q.MeanMSE != 0 {
		t.Fatalf("identical clips: %+v", q)
	}
	if len(q.PerFramePSNR) != 4 {
		t.Fatal("per-frame PSNR missing")
	}
}

func TestEvaluateNilFramesAreWorstCase(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 32, H: 32, Frames: 3, Motion: video.MotionHigh, Seed: 2})
	recon := []*video.Frame{clip[0], nil, clip[2]}
	q, err := Evaluate(clip, recon)
	if err != nil {
		t.Fatal(err)
	}
	if q.PerFramePSNR[0] != MaxPSNR || q.PerFramePSNR[2] != MaxPSNR {
		t.Fatal("present frames should be perfect")
	}
	if q.PerFramePSNR[1] >= 30 {
		t.Fatalf("nil frame PSNR %v should be low", q.PerFramePSNR[1])
	}
	if q.MOS >= 5 {
		t.Fatal("MOS should drop with a missing frame")
	}
}

func TestEvaluateErrors(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 32, H: 32, Frames: 2, Motion: video.MotionLow, Seed: 3})
	if _, err := Evaluate(clip, clip[:1]); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestEvaluateAggregateUsesMeanMSE(t *testing.T) {
	a := video.NewFrame(8, 8)
	b := video.NewFrame(8, 8)
	c := video.NewFrame(8, 8)
	for i := range c.Y {
		c.Y[i] = 20 // MSE 400
	}
	q, err := Evaluate([]*video.Frame{a, a}, []*video.Frame{b, c})
	if err != nil {
		t.Fatal(err)
	}
	if q.MeanMSE != 200 {
		t.Fatalf("mean MSE %v want 200", q.MeanMSE)
	}
	if math.Abs(q.PSNR-PSNRFromMSE(200)) > 1e-12 {
		t.Fatal("aggregate PSNR should come from mean MSE")
	}
}
