package transport

import (
	"fmt"
	"io"
)

// WriteSenderTrace writes a per-packet sender trace in an EvalVid-like
// plain-text format: seq, time the packet entered the queue, departure,
// size, frame, class, encrypted flag.
func WriteSenderTrace(w io.Writer, records []PacketRecord) error {
	if _, err := fmt.Fprintln(w, "# seq arrival departure size frame class encrypted"); err != nil {
		return err
	}
	for _, r := range records {
		class := "P"
		if r.IFrame {
			class = "I"
		}
		enc := 0
		if r.Encrypted {
			enc = 1
		}
		if _, err := fmt.Fprintf(w, "%d %.9f %.9f %d %d %s %d\n",
			r.Seq, r.Arrival, r.Departure, r.Size, r.FrameNumber, class, enc); err != nil {
			return err
		}
	}
	return nil
}

// WriteReceiverTrace writes the delivery outcome per packet: seq,
// departure time, received-by-receiver and captured-by-eavesdropper flags.
func WriteReceiverTrace(w io.Writer, records []PacketRecord) error {
	if _, err := fmt.Fprintln(w, "# seq departure receiver eavesdropper"); err != nil {
		return err
	}
	for _, r := range records {
		rx, ev := 0, 0
		if r.ReceiverGot {
			rx = 1
		}
		if r.EavesGot {
			ev = 1
		}
		if _, err := fmt.Fprintf(w, "%d %.9f %d %d\n", r.Seq, r.Departure, rx, ev); err != nil {
			return err
		}
	}
	return nil
}
